// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 7), one benchmark per artifact. The primary metric
// is block I/Os per operation (io/insert, io/lookup), reported alongside
// wall time; the paper's plots are the per-scheme sub-benchmark rows.
//
// The workload sizes follow the laptop-scale default of internal/bench
// (1/100 of the paper's); run cmd/boxbench with -scale for larger runs.
package boxes

import (
	"fmt"
	"testing"

	"boxes/internal/bench"
	"boxes/internal/order"
	"boxes/internal/reflog"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

func benchConfig() bench.Config { return bench.Default() }

// runUpdateBench executes one insertion workload for one scheme per
// b.N iteration, reporting amortized and tail I/O costs.
func runUpdateBench(b *testing.B, spec bench.SchemeSpec, cfg bench.Config, workload func(order.Labeler, *bench.Recorder) error) {
	b.Helper()
	var avg, max float64
	var ops int
	for i := 0; i < b.N; i++ {
		l, store, err := spec.New(cfg.BlockSize)
		if err != nil {
			b.Fatal(err)
		}
		rec := bench.NewRecorder(store)
		if err := workload(l, rec); err != nil {
			b.Fatal(err)
		}
		avg = rec.Avg()
		max = float64(rec.Max())
		ops = rec.N()
	}
	b.ReportMetric(avg, "io/insert")
	b.ReportMetric(max, "maxio")
	b.ReportMetric(float64(ops), "inserts")
}

// BenchmarkFig5ConcentratedUpdateCost regenerates Figure 5: amortized
// update cost under the concentrated (adversarial) insertion sequence.
func BenchmarkFig5ConcentratedUpdateCost(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range bench.UpdateSchemes(cfg.NaiveKs) {
		b.Run(spec.Name, func(b *testing.B) {
			runUpdateBench(b, spec, cfg, func(l order.Labeler, rec *bench.Recorder) error {
				return bench.Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems)
			})
		})
	}
}

// BenchmarkFig6ConcentratedDistribution regenerates Figure 6: the
// distribution of individual insertion costs under concentrated insertion
// (reported as the 90th/99th percentile and maximum cost).
func BenchmarkFig6ConcentratedDistribution(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range bench.UpdateSchemes(cfg.NaiveKs) {
		b.Run(spec.Name, func(b *testing.B) {
			var p90, p99, max float64
			for i := 0; i < b.N; i++ {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				rec := bench.NewRecorder(store)
				if err := bench.Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
					b.Fatal(err)
				}
				dist := rec.CCDF()
				p90 = costAtFraction(dist, 0.10)
				p99 = costAtFraction(dist, 0.01)
				max = float64(rec.Max())
			}
			b.ReportMetric(p90, "io_p90")
			b.ReportMetric(p99, "io_p99")
			b.ReportMetric(max, "io_max")
		})
	}
}

// costAtFraction returns the smallest cost with at most frac of the
// operations above it.
func costAtFraction(dist []bench.CCDFPoint, frac float64) float64 {
	for _, p := range dist {
		if p.FracAbove <= frac {
			return float64(p.Cost)
		}
	}
	if len(dist) == 0 {
		return 0
	}
	return float64(dist[len(dist)-1].Cost)
}

// BenchmarkFig7ScatteredUpdateCost regenerates Figure 7: amortized update
// cost under evenly scattered insertions (the naive schemes' best case).
func BenchmarkFig7ScatteredUpdateCost(b *testing.B) {
	cfg := benchConfig()
	ks := append([]int{1}, cfg.NaiveKs...)
	for _, spec := range bench.UpdateSchemes(ks) {
		b.Run(spec.Name, func(b *testing.B) {
			runUpdateBench(b, spec, cfg, func(l order.Labeler, rec *bench.Recorder) error {
				return bench.Scattered(l, rec, cfg.BaseElems, cfg.InsertElems)
			})
		})
	}
}

// BenchmarkFig8XMarkUpdateCost regenerates Figure 8: amortized update cost
// while an XMark document builds up element-at-a-time in document order.
func BenchmarkFig8XMarkUpdateCost(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range bench.UpdateSchemes(cfg.NaiveKs) {
		b.Run(spec.Name, func(b *testing.B) {
			runUpdateBench(b, spec, cfg, func(l order.Labeler, rec *bench.Recorder) error {
				rec.Skip = cfg.XMarkPrime
				return bench.XMarkDocOrder(l, rec, cfg.XMarkElems, cfg.Seed)
			})
		})
	}
}

// BenchmarkFig9XMarkDistribution regenerates Figure 9: the cost
// distribution of the XMark build-up.
func BenchmarkFig9XMarkDistribution(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range bench.UpdateSchemes(cfg.NaiveKs) {
		b.Run(spec.Name, func(b *testing.B) {
			var p90, p99, max float64
			for i := 0; i < b.N; i++ {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				rec := bench.NewRecorder(store)
				rec.Skip = cfg.XMarkPrime
				if err := bench.XMarkDocOrder(l, rec, cfg.XMarkElems, cfg.Seed); err != nil {
					b.Fatal(err)
				}
				dist := rec.CCDF()
				p90 = costAtFraction(dist, 0.10)
				p99 = costAtFraction(dist, 0.01)
				max = float64(rec.Max())
			}
			b.ReportMetric(p90, "io_p90")
			b.ReportMetric(p99, "io_p99")
			b.ReportMetric(max, "io_max")
		})
	}
}

// BenchmarkQueryLookupCost regenerates the in-text "Query performance"
// numbers of Section 7: label lookup I/Os per scheme, including the LIDF
// indirection, plus start/end pair lookups.
func BenchmarkQueryLookupCost(b *testing.B) {
	cfg := benchConfig()
	tags := xmlgen.XMark(cfg.XMarkElems, cfg.Seed).TagStream()
	specs := []bench.SchemeSpec{bench.WBoxSpec(), bench.WBoxOSpec(), bench.BBoxSpec(), bench.BBoxOSpec(), bench.NaiveSpec(16)}
	for _, spec := range specs {
		b.Run(spec.Name, func(b *testing.B) {
			l, store, err := spec.New(cfg.BlockSize)
			if err != nil {
				b.Fatal(err)
			}
			elems, err := l.BulkLoad(tags)
			if err != nil {
				b.Fatal(err)
			}
			store.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := elems[i%len(elems)]
				if _, err := l.Lookup(e.Start); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(store.Stats().Total())/float64(b.N), "io/lookup")
			b.ReportMetric(float64(l.Height()), "height")
		})
	}
}

// BenchmarkBulkVsElementInsert regenerates the "Other findings" numbers:
// total I/O of inserting a subtree element-at-a-time versus with the bulk
// subtree-insert operation.
func BenchmarkBulkVsElementInsert(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range []bench.SchemeSpec{bench.WBoxSpec(), bench.BBoxSpec()} {
		b.Run(spec.Name+"/element", func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				rec := bench.NewRecorder(store)
				if err := bench.Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
					b.Fatal(err)
				}
				total = float64(rec.Total())
			}
			b.ReportMetric(total, "total_io")
		})
		b.Run(spec.Name+"/bulk", func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				elems, err := l.BulkLoad(xmlgen.TwoLevel(cfg.BaseElems).TagStream())
				if err != nil {
					b.Fatal(err)
				}
				store.ResetStats()
				if _, err := l.InsertSubtreeBefore(elems[0].End, xmlgen.TwoLevel(cfg.InsertElems).TagStream()); err != nil {
					b.Fatal(err)
				}
				total = float64(store.Stats().Total())
			}
			b.ReportMetric(total, "total_io")
		})
	}
}

// BenchmarkLabelBits regenerates the label-length findings: bits per label
// after the concentrated stress, against Theorems 4.4 and 5.1.
func BenchmarkLabelBits(b *testing.B) {
	cfg := benchConfig()
	for _, spec := range bench.UpdateSchemes([]int{16, 64}) {
		b.Run(spec.Name, func(b *testing.B) {
			var bits float64
			for i := 0; i < b.N; i++ {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				rec := bench.NewRecorder(store)
				if err := bench.Concentrated(l, rec, cfg.BaseElems, cfg.InsertElems); err != nil {
					b.Fatal(err)
				}
				bits = float64(l.LabelBits())
				_ = store
			}
			b.ReportMetric(bits, "label_bits")
		})
	}
}

// BenchmarkCachingLogging regenerates the Section 6 ablation: average
// lookup I/O under no caching, basic caching, and caching+logging.
func BenchmarkCachingLogging(b *testing.B) {
	cfg := benchConfig()
	tags := xmlgen.XMark(cfg.XMarkElems, cfg.Seed).TagStream()
	modes := []struct {
		name string
		k    int // -1 off, 0 basic, >0 logged
	}{{"off", -1}, {"basic", 0}, {"log64", 64}}
	for _, spec := range []bench.SchemeSpec{bench.WBoxSpec(), bench.BBoxSpec()} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", spec.Name, m.name), func(b *testing.B) {
				l, store, err := spec.New(cfg.BlockSize)
				if err != nil {
					b.Fatal(err)
				}
				elems, err := l.BulkLoad(tags)
				if err != nil {
					b.Fatal(err)
				}
				var cache *reflog.Cache
				if m.k >= 0 {
					cache = reflog.NewCache(l, reflog.NewLog(m.k))
				}
				refs := make([]reflog.Ref, 256)
				for i := range refs {
					lid := elems[(i*97)%len(elems)].Start
					if cache != nil {
						refs[i], err = cache.NewRef(lid)
						if err != nil {
							b.Fatal(err)
						}
					} else {
						refs[i] = reflog.Ref{LID: lid}
					}
				}
				store.ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%64 == 0 {
						// A steady trickle of updates ages the cache.
						if _, err := l.InsertElementBefore(elems[i%len(elems)].End); err != nil {
							b.Fatal(err)
						}
					}
					ref := &refs[i%len(refs)]
					if cache != nil {
						if _, _, err := cache.Lookup(ref); err != nil {
							b.Fatal(err)
						}
					} else if _, err := l.Lookup(ref.LID); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(store.Stats().Total())/float64(b.N), "io/op")
			})
		}
	}
}

// BenchmarkWBoxOPairLookup measures W-BOX-O's single-I/O pair retrieval
// against the basic W-BOX fallback (Section 4's "further optimization").
func BenchmarkWBoxOPairLookup(b *testing.B) {
	cfg := benchConfig()
	tags := xmlgen.XMark(cfg.XMarkElems, cfg.Seed).TagStream()
	for _, spec := range []bench.SchemeSpec{bench.WBoxSpec(), bench.WBoxOSpec()} {
		b.Run(spec.Name, func(b *testing.B) {
			l, store, err := spec.New(cfg.BlockSize)
			if err != nil {
				b.Fatal(err)
			}
			wl := l.(*wbox.Labeler)
			elems, err := l.BulkLoad(tags)
			if err != nil {
				b.Fatal(err)
			}
			store.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := elems[i%len(elems)]
				if _, _, err := wl.LookupPair(e.Start, e.End); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(store.Stats().Total())/float64(b.N), "io/pair")
		})
	}
}
