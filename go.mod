module boxes

go 1.22
