// Quickstart: load a document, look up labels, check ancestorship, edit
// the document, and watch the labels stay consistent.
package main

import (
	"fmt"
	"log"

	"boxes"
)

func main() {
	// A W-BOX gives constant-cost label lookups (2 block I/Os) and
	// logarithmic amortized updates.
	st, err := boxes.Open(boxes.Options{Scheme: boxes.WBox})
	if err != nil {
		log.Fatal(err)
	}

	// Load a small XMark-shaped auction document.
	tree := boxes.GenerateXMark(10_000, 42)
	doc, err := st.Load(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d elements; tree height %d; labels need %d bits\n",
		tree.Elements(), st.Height(), st.LabelBits())

	// Element 0 is the root <site>; element 1 is <regions>. Their label
	// spans decide ancestorship with two integer comparisons — no tree
	// traversal.
	site, err := st.LookupSpan(doc.Elems[0])
	if err != nil {
		log.Fatal(err)
	}
	regions, err := st.LookupSpan(doc.Elems[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site=%v regions=%v, site contains regions: %v\n",
		site, regions, site.Contains(regions))

	// Insert a new element as the last child of <regions>: pass the end
	// label's LID. The returned LIDs are immutable: they can be stored in
	// any index and will keep resolving to current labels.
	novel, err := st.InsertElementBefore(doc.Elems[1].End)
	if err != nil {
		log.Fatal(err)
	}
	span, err := st.LookupSpan(novel)
	if err != nil {
		log.Fatal(err)
	}
	// Labels are dynamic: the insertion may have shifted other labels, so
	// a span captured before an update (like `regions` above) can be
	// stale. Always re-resolve through the immutable LIDs.
	regions, err = st.LookupSpan(doc.Elems[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted element has span %v; inside re-resolved regions %v: %v\n",
		span, regions, regions.Contains(span))

	// Updates may relabel, but LIDs never change. Re-resolving the spans
	// always reflects the current labeling.
	for i := 0; i < 1_000; i++ {
		if _, err := st.InsertElementBefore(novel.Start); err != nil {
			log.Fatal(err)
		}
	}
	span2, err := st.LookupSpan(novel)
	if err != nil {
		log.Fatal(err)
	}
	regions2, err := st.LookupSpan(doc.Elems[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 1000 sibling inserts: span %v -> %v, still inside regions: %v\n",
		span, span2, regions2.Contains(span2))

	fmt.Printf("total block I/O: %v\n", st.Stats())
}
