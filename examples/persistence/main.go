// Persistence: build a labeling on a file-backed store, checkpoint it,
// simulate a process restart by closing and reopening the file, and keep
// working — the immutable LIDs recorded before the restart still resolve.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"boxes"
)

func main() {
	dir, err := os.MkdirTemp("", "boxes-persist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "labels.box")

	// --- First "process": build, edit, checkpoint, close. --------------
	fb, err := boxes.CreateFileBackend(path, 8192)
	if err != nil {
		log.Fatal(err)
	}
	st, err := boxes.Open(boxes.Options{Scheme: boxes.WBox, Backend: fb})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := st.Load(boxes.GenerateXMark(20_000, 11))
	if err != nil {
		log.Fatal(err)
	}
	// Record some LIDs the way an index would.
	kept := []boxes.ElemLIDs{doc.Elems[0], doc.Elems[777], doc.Elems[4242]}
	spans := make([]boxes.Span, len(kept))
	for i, e := range kept {
		spans[i], err = st.LookupSpan(e)
		if err != nil {
			log.Fatal(err)
		}
	}
	if _, err := st.InsertElementBefore(kept[1].Start); err != nil {
		log.Fatal(err)
	}
	if err := st.Save(); err != nil {
		log.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpointed %d labels into %s (%d KiB) and closed the file\n",
		st.Count(), filepath.Base(path), info.Size()/1024)

	// --- Second "process": reopen and continue. ------------------------
	fb2, err := boxes.OpenFileBackend(path)
	if err != nil {
		log.Fatal(err)
	}
	st2, err := boxes.OpenExisting(fb2, boxes.Options{Caching: boxes.CachingLogged, LogK: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened: scheme=%v count=%d height=%d\n", st2.Scheme(), st2.Count(), st2.Height())

	for i, e := range kept {
		span, err := st2.LookupSpan(e)
		if err != nil {
			log.Fatalf("LID pair %v did not survive the restart: %v", e, err)
		}
		note := "unchanged"
		if span != spans[i] {
			note = fmt.Sprintf("relabeled from %v (expected: an element was inserted nearby)", spans[i])
		}
		fmt.Printf("  kept element %d -> span %v (%s)\n", i, span, note)
	}

	// The reopened store supports the full operation set.
	ne, err := st2.InsertElementBefore(kept[2].Start)
	if err != nil {
		log.Fatal(err)
	}
	if err := st2.DeleteElement(ne); err != nil {
		log.Fatal(err)
	}
	if err := st2.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("edits after reopen succeed; all invariants hold")
}
