// Editing: dynamic document maintenance — bulk subtree insertion and
// deletion, adversarial (concentrated) single-element insertions, and the
// caching+logging layer that keeps lookups nearly free while the document
// churns.
package main

import (
	"fmt"
	"log"

	"boxes"
)

func main() {
	// W-BOX-O with the Section 6 caching+logging layer: reads of cached
	// references cost no I/O as long as recent modifications are
	// replayable from the log.
	st, err := boxes.Open(boxes.Options{
		Scheme:  boxes.WBoxO,
		Caching: boxes.CachingLogged,
		LogK:    256,
	})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := st.Load(boxes.GenerateXMark(30_000, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base document: %d labels, height %d\n", st.Count(), st.Height())

	// --- Bulk subtree insertion -------------------------------------
	// Attach a whole generated fragment as the last child of <regions>
	// (element 1) in one operation; far cheaper than element-at-a-time.
	st.ResetStats()
	fragment := boxes.GenerateXMark(2_000, 9)
	subElems, err := st.InsertSubtreeBefore(doc.Elems[1].End, fragment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk insert of %d elements: %v\n", fragment.Elements(), st.Stats())

	// --- Adversarial single-element insertions -----------------------
	// Squeeze pairs into one spot — the pattern that breaks gap-based
	// labeling — and watch the amortized cost stay low.
	st.ResetStats()
	right := subElems[0].End
	const pairs = 2_000
	for i := 0; i < pairs; i++ {
		if _, err := st.InsertElementBefore(right); err != nil {
			log.Fatal(err)
		}
		r, err := st.InsertElementBefore(right)
		if err != nil {
			log.Fatal(err)
		}
		right = r.Start
	}
	ios := st.Stats()
	fmt.Printf("%d concentrated element inserts: %v (%.2f I/Os each)\n",
		2*pairs, ios, float64(ios.Total())/(2*pairs))

	// --- Cached reads under churn ------------------------------------
	// Hold augmented references to some labels, keep modifying the
	// document, and read through the cache: the modification log repairs
	// the cached values without I/O.
	cache := st.Cache()
	refs := make([]boxes.CacheRef, 0, 100)
	for i := 0; i < 100; i++ {
		ref, err := cache.NewRef(doc.Elems[i*37%len(doc.Elems)].Start)
		if err != nil {
			log.Fatal(err)
		}
		refs = append(refs, ref)
	}
	st.ResetStats()
	reads := 0
	for round := 0; round < 50; round++ {
		if _, err := st.InsertElementBefore(right); err != nil {
			log.Fatal(err)
		}
		for i := range refs {
			got, _, err := cache.Lookup(&refs[i])
			if err != nil {
				log.Fatal(err)
			}
			want, err := st.Lookup(refs[i].LID)
			if err != nil {
				log.Fatal(err)
			}
			if got != want {
				log.Fatalf("cache answered %d, structure says %d", got, want)
			}
			reads++
		}
	}
	fmt.Printf("cached reads under churn: %d reads, outcomes fresh=%d replayed=%d miss=%d\n",
		reads, cache.Fresh, cache.Replayed, cache.Misses)

	// --- Bulk subtree deletion ---------------------------------------
	st.ResetStats()
	if err := st.DeleteSubtree(subElems[0]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk delete of the fragment: %v; %d labels remain\n", st.Stats(), st.Count())

	if err := st.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all structural invariants hold after the editing session")
}
