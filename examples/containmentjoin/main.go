// Containment join: the query-processing workload order-based labels were
// designed for. Finds every (open_auction, increase) ancestor/descendant
// pair in an auction document using only label comparisons, and contrasts
// the label-based join with naive tree navigation.
package main

import (
	"fmt"
	"log"
	"time"

	"boxes"
)

func main() {
	// B-BOX: the update-optimized structure; we pay O(log_B N) per label
	// lookup when materializing the join inputs.
	st, err := boxes.Open(boxes.Options{Scheme: boxes.BBox})
	if err != nil {
		log.Fatal(err)
	}
	tree := boxes.GenerateXMark(60_000, 7)
	doc, err := st.Load(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d elements, height %d\n", tree.Elements(), st.Height())

	// Materialize the spans of both element sets (an index would keep
	// these; here we fetch them through the labeling).
	st.ResetStats()
	anc, err := doc.SpansOf("open_auction")
	if err != nil {
		log.Fatal(err)
	}
	desc, err := doc.SpansOf("increase")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inputs: %d open_auction spans, %d increase spans (%v to fetch)\n",
		len(anc), len(desc), st.Stats())

	// The stack-based containment join runs in O(in + out) comparisons of
	// integer labels — no tree access at all.
	start := time.Now()
	pairs := boxes.ContainmentJoin(anc, desc)
	fmt.Printf("containment join: %d pairs in %v, zero block I/O\n",
		len(pairs), time.Since(start).Round(time.Microsecond))

	// Cross-check against direct tree navigation.
	nodes := tree.Nodes()
	start = time.Now()
	walked := 0
	var countUnder func(n *boxes.Node) int
	countUnder = func(n *boxes.Node) int {
		c := 0
		if n.Name == "increase" {
			c++
		}
		for _, ch := range n.Children {
			c += countUnder(ch)
		}
		return c
	}
	for _, n := range nodes {
		if n.Name == "open_auction" {
			walked += countUnder(n)
		}
	}
	fmt.Printf("tree navigation finds the same %d pairs in %v\n",
		walked, time.Since(start).Round(time.Microsecond))
	if walked != len(pairs) {
		log.Fatalf("join mismatch: labels found %d, tree found %d", len(pairs), walked)
	}

	// Twig matching composes the same primitive.
	elems, err := doc.LabeledElems()
	if err != nil {
		log.Fatal(err)
	}
	twig := boxes.ParseTwig("//open_auction//bidder/increase")
	matches := boxes.MatchTwig(elems, twig)
	fmt.Printf("twig //open_auction//bidder/increase: %d matches\n", len(matches))
}
