package fsck

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
)

const testBlockSize = 512

// buildStore creates a durable file-backed store, applies a few dozen
// updates, and closes it cleanly.
func buildStore(t *testing.T, path string, opts core.Options) []order.ElemLIDs {
	t.Helper()
	fb, err := pager.CreateFile(path, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	opts.BlockSize = testBlockSize
	opts.Backend = fb
	opts.Durable = true
	st, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	elems := []order.ElemLIDs{e}
	for i := 0; i < 40; i++ {
		at := elems[i%len(elems)]
		ne, err := st.InsertElementBefore(at.End)
		if err != nil {
			t.Fatal(err)
		}
		elems = append(elems, ne)
	}
	if err := st.DeleteElement(elems[3]); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	return elems
}

func TestCheckCleanStore(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"wbox", core.Options{Scheme: core.SchemeWBox}},
		{"wbox-o", core.Options{Scheme: core.SchemeWBoxO}},
		{"bbox", core.Options{Scheme: core.SchemeBBox}},
		{"naive", core.Options{Scheme: core.SchemeNaive, NaiveK: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.box")
			buildStore(t, path, tc.opts)
			rep, err := Check(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() {
				t.Fatalf("clean store reported problems: %v", rep.Problems)
			}
			if len(rep.Orphans) != 0 {
				t.Fatalf("clean store has orphans: %v", rep.Orphans)
			}
			if rep.Labels == 0 {
				t.Fatal("no labels restored")
			}
		})
	}
}

func TestCheckDetectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	buildStore(t, path, core.Options{Scheme: core.SchemeWBox})

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	off := int64(2*testBlockSize + 100)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x08
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := Check(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("bit flip not reported")
	}
	found := false
	for _, p := range rep.Problems {
		if p.Block == 2 && p.Severity == SevError {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error names block 2: %v", rep.Problems)
	}
}

func TestCheckFindsAndRepairsOrphans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	buildStore(t, path, core.Options{Scheme: core.SchemeBBox})

	// Leak a block: allocate and write it outside any structure.
	fb, err := pager.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.WriteBlock(id, make([]byte, testBlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("orphan must be a warning, got: %v", rep.Problems)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != id {
		t.Fatalf("orphans = %v, want [%d]", rep.Orphans, id)
	}

	rep, err = Check(path, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("repaired = %d, want 1", rep.Repaired)
	}
	rep, err = Check(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("orphans after repair: %v", rep.Orphans)
	}
	if !rep.Clean() {
		t.Fatalf("store unclean after repair: %v", rep.Problems)
	}
}

func TestCheckNoSavedStructure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bare.box")
	fb, err := pager.CreateFile(path, testBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("bare store reported errors: %v", rep.Problems)
	}
	if rep.Scheme != "" {
		t.Fatalf("scheme = %q for a bare store", rep.Scheme)
	}
}

func TestCheckUnopenableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(path, Options{}); err == nil {
		t.Fatal("junk file accepted")
	}
}

func TestCheckWritesCrashDumpOnProblems(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	buildStore(t, path, core.Options{Scheme: core.SchemeWBox})

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(2*testBlockSize+5)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	crashDir := filepath.Join(t.TempDir(), "crash")
	rep, err := Check(path, Options{CrashDir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corruption not reported")
	}
	ents, err := os.ReadDir(crashDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no crash dump written (err=%v)", err)
	}
}

func TestCheckSurvivesCrashMidRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	buildStore(t, path, core.Options{Scheme: core.SchemeWBox})

	// Leak two blocks so repair frees more than one.
	fb, err := pager.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		id, err := fb.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := fb.WriteBlock(id, make([]byte, testBlockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// A repair interrupted at any write point must leave the store clean
	// (repair is one atomic transaction: fully applied or not at all).
	for at := 1; ; at++ {
		dir := t.TempDir()
		crashPath := filepath.Join(dir, "crash.box")
		copyStore(t, path, crashPath)
		ctrl := pager.NewCrashController(at, true)
		_, err := checkWithController(crashPath, ctrl)
		if !ctrl.Crashed() {
			break // repair completed before the crash point
		}
		_ = err
		rep, err := Check(crashPath, Options{})
		if err != nil {
			t.Fatalf("crash@%d: %v", at, err)
		}
		if !rep.Clean() {
			t.Fatalf("crash@%d left unclean store: %v", at, rep.Problems)
		}
		if n := len(rep.Orphans); n != 0 && n != 2 {
			t.Fatalf("crash@%d: %d orphans, want 0 or 2 (all-or-nothing)", at, n)
		}
	}
}

// checkWithController runs the repair path with crash injection; it mirrors
// Check but opens the file through a controller.
func checkWithController(path string, ctrl *pager.CrashController) (*Report, error) {
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{CrashControl: ctrl})
	if err != nil {
		return nil, err
	}
	defer fb.Close()
	probe := pager.NewStore(fb)
	free, err := fb.FreeBlocks()
	if err != nil {
		return nil, err
	}
	inFree := make(map[pager.BlockID]bool)
	for _, id := range free {
		inFree[id] = true
	}
	st, err := core.OpenExisting(fb, core.Options{})
	if err != nil {
		return nil, err
	}
	reachable := make(map[pager.BlockID]bool)
	if err := st.Labeler().(blockWalker).WalkBlocks(func(id pager.BlockID) error {
		reachable[id] = true
		return nil
	}); err != nil {
		return nil, err
	}
	if head, err := fb.MetaRoot(); err == nil && head != pager.NilBlock {
		ids, err := probe.BlobBlocks(head)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			reachable[id] = true
		}
	}
	probe.BeginOp()
	var ferr error
	for id := pager.BlockID(1); id < fb.Bound(); id++ {
		if !reachable[id] && !inFree[id] {
			if ferr = probe.Free(id); ferr != nil {
				break
			}
		}
	}
	if err := probe.EndOp(); ferr == nil {
		ferr = err
	}
	return nil, ferr
}

func copyStore(t *testing.T, from, to string) {
	t.Helper()
	for _, suffix := range []string{"", ".crc", ".wal"} {
		data, err := os.ReadFile(from + suffix)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(to+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
