// Package fsck is the offline consistency checker behind cmd/boxfsck: it
// opens a stored box file (running WAL recovery exactly as any open
// does), verifies every block's checksum, walks the free list, restores
// the labeling structure and checks its invariants, and cross-references
// the blocks the structure claims against the free list — reporting
// blocks that are neither reachable nor free (leaked orphans, repairable)
// and blocks that are both (corruption).
package fsck

import (
	"errors"
	"fmt"

	"boxes/internal/core"
	"boxes/internal/obs"
	"boxes/internal/pager"
)

// Options configures a check.
type Options struct {
	// Repair frees orphaned blocks (reachable by nothing, absent from the
	// free list) in one atomic transaction after the scan.
	Repair bool
	// CrashDir, when set, writes a flight-recorder dump tagged
	// stage=fsck whenever the check finds problems or fails outright.
	CrashDir string
	// Verbose has no effect on the checks; cmd/boxfsck uses it to print
	// per-block progress.
	Verbose bool
}

// Severity classifies a finding.
type Severity int

const (
	// SevError findings mean the store is damaged or inconsistent.
	SevError Severity = iota
	// SevWarn findings are recoverable oddities (leaked blocks, a store
	// with no saved structure to check).
	SevWarn
)

func (s Severity) String() string {
	if s == SevWarn {
		return "warn"
	}
	return "error"
}

// Problem is one finding.
type Problem struct {
	Severity Severity
	Block    pager.BlockID // NilBlock when not block-specific
	Message  string
}

func (p Problem) String() string {
	if p.Block != pager.NilBlock {
		return fmt.Sprintf("%s: block %d: %s", p.Severity, p.Block, p.Message)
	}
	return fmt.Sprintf("%s: %s", p.Severity, p.Message)
}

// Report is the outcome of one check.
type Report struct {
	Path      string
	BlockSize int
	Bound     pager.BlockID // exclusive upper bound of ever-allocated IDs
	Allocated uint64
	FreeCount int
	Scheme    string // restored scheme name, "" if none saved
	Labels    uint64 // live labels in the restored structure

	Recovery pager.RecoveryInfo
	Problems []Problem
	Orphans  []pager.BlockID // neither reachable nor free
	Repaired int             // orphans freed (with Options.Repair)
}

// Clean reports whether the store passed with no errors (warnings,
// including repaired orphans, do not make a store unclean).
func (r *Report) Clean() bool {
	for _, p := range r.Problems {
		if p.Severity == SevError {
			return false
		}
	}
	return true
}

func (r *Report) errorf(blk pager.BlockID, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Severity: SevError, Block: blk, Message: fmt.Sprintf(format, args...)})
}

func (r *Report) warnf(blk pager.BlockID, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{Severity: SevWarn, Block: blk, Message: fmt.Sprintf(format, args...)})
}

// blockWalker is implemented by every labeling scheme (and lidf.File):
// it visits the store blocks the structure occupies.
type blockWalker interface {
	WalkBlocks(func(pager.BlockID) error) error
}

// Check opens the store at path and runs every check. The returned error
// is non-nil only when the file cannot be examined at all (unreadable,
// unrecoverable header); detected damage is returned inside the Report.
func Check(path string, opts Options) (*Report, error) {
	rep, err := check(path, opts)
	if opts.CrashDir != "" {
		if err != nil {
			dumpFsckFailure(opts.CrashDir, path, err)
		} else if !rep.Clean() {
			dumpFsckFailure(opts.CrashDir, path, fmt.Errorf("fsck: %s: %d problems", path, len(rep.Problems)))
		}
	}
	return rep, err
}

func dumpFsckFailure(dir, path string, err error) {
	fr := obs.NewFlightRecorder(obs.NewRegistry(), dir, 0)
	fr.DumpFailure("fsck", err, map[string]string{"stage": "fsck", "store": path})
}

func check(path string, opts Options) (*Report, error) {
	fb, err := pager.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer fb.Close()

	rep := &Report{
		Path:      path,
		BlockSize: fb.BlockSize(),
		Bound:     fb.Bound(),
		Allocated: fb.NumBlocks(),
		Recovery:  fb.RecoveryInfo(),
	}
	if rep.Recovery.SidecarRebuilt {
		rep.warnf(pager.NilBlock, "checksum sidecar was missing and has been rebuilt; pre-existing corruption is no longer detectable")
	}

	// Pass 1: every ever-allocated block must verify against its checksum.
	for id := pager.BlockID(1); id < fb.Bound(); id++ {
		if err := fb.VerifyBlock(id); err != nil {
			rep.errorf(id, "checksum verification failed: %v", err)
		}
	}

	// Pass 2: the free list must be acyclic, in-range, and readable.
	free, err := fb.FreeBlocks()
	inFree := make(map[pager.BlockID]bool, len(free))
	for _, id := range free {
		if inFree[id] {
			rep.errorf(id, "appears on the free list twice")
		}
		inFree[id] = true
	}
	rep.FreeCount = len(free)
	if err != nil {
		rep.errorf(pager.NilBlock, "free list walk: %v", err)
		// The free set is unreliable; orphan analysis would misfire.
		return rep, nil
	}
	if got, want := uint64(fb.Bound()-1)-uint64(len(free)), fb.NumBlocks(); got != want {
		rep.errorf(pager.NilBlock, "header counts %d allocated blocks but %d exist outside the free list", want, got)
	}

	// Pass 3: restore the labeling structure and check its invariants
	// (tree balance, label order, LIDF cross-references).
	st, err := core.OpenExisting(fb, core.Options{})
	if errors.Is(err, core.ErrNoSavedStore) {
		rep.warnf(pager.NilBlock, "no saved structure metadata; structural checks skipped")
		return rep, nil
	}
	if err != nil {
		rep.errorf(pager.NilBlock, "restoring saved structure: %v", err)
		return rep, nil
	}
	rep.Scheme = st.Scheme().String()
	rep.Labels = st.Count()
	if err := st.CheckInvariants(); err != nil {
		rep.errorf(pager.NilBlock, "structure invariants: %v", err)
	}

	// Pass 4: reachability. Every block is either reachable from the
	// structure (tree nodes, LIDF extents, the metadata blob chain) or on
	// the free list — never both, never neither.
	reachable := make(map[pager.BlockID]bool)
	walker, ok := st.Labeler().(blockWalker)
	if !ok {
		rep.warnf(pager.NilBlock, "scheme %s cannot enumerate its blocks; reachability checks skipped", rep.Scheme)
		return rep, nil
	}
	walkErr := walker.WalkBlocks(func(id pager.BlockID) error {
		if id == pager.NilBlock || id >= fb.Bound() {
			rep.errorf(id, "structure references a block outside the file (bound %d)", fb.Bound())
			return nil
		}
		if reachable[id] {
			rep.errorf(id, "referenced twice by the structure")
			return nil
		}
		reachable[id] = true
		return nil
	})
	if walkErr != nil {
		rep.errorf(pager.NilBlock, "structure walk: %v", walkErr)
		return rep, nil
	}
	probe := pager.NewStore(fb)
	if head, err := fb.MetaRoot(); err == nil && head != pager.NilBlock {
		blobBlocks, err := probe.BlobBlocks(head)
		for _, id := range blobBlocks {
			if reachable[id] {
				rep.errorf(id, "metadata blob block also referenced by the structure")
			}
			reachable[id] = true
		}
		if err != nil {
			rep.errorf(pager.NilBlock, "metadata blob chain: %v", err)
		}
	}
	for _, id := range free {
		if reachable[id] {
			rep.errorf(id, "reachable from the structure but also on the free list")
		}
	}
	for id := pager.BlockID(1); id < fb.Bound(); id++ {
		if !reachable[id] && !inFree[id] {
			rep.Orphans = append(rep.Orphans, id)
		}
	}
	if len(rep.Orphans) > 0 {
		rep.warnf(pager.NilBlock, "%d orphaned blocks (allocated, unreachable, not free)", len(rep.Orphans))
	}

	// Pass 5 (optional): repair. Freeing the orphans is one atomic
	// transaction, so a crash mid-repair cannot make things worse.
	if opts.Repair && len(rep.Orphans) > 0 && rep.Clean() {
		probe.BeginOp()
		var ferr error
		for _, id := range rep.Orphans {
			if ferr = probe.Free(id); ferr != nil {
				break
			}
		}
		if err := probe.EndOp(); ferr == nil {
			ferr = err
		}
		if ferr != nil {
			rep.errorf(pager.NilBlock, "repair: %v", ferr)
		} else {
			rep.Repaired = len(rep.Orphans)
		}
	}
	return rep, nil
}
