package crashmatrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// removeStore deletes a store file and its sidecars.
func removeStore(path string) {
	for _, suffix := range []string{"", ".crc", ".wal"} {
		os.Remove(path + suffix)
	}
}

// TestDoubleCrashMatrix cuts power a second time during recovery itself:
// for every raw write point of the scripted workload, crash there, then
// sweep every raw write point of the WAL redo that the reopen performs —
// full cuts and torn half-writes — and require that a third, unharassed
// reopen still lands fsck-clean on an exact operation boundary. Redo is
// idempotent physical replay, so no prefix of it, torn or not, may change
// which boundaries are admissible.
func TestDoubleCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("double-crash sweep is not short")
	}
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			golden := filepath.Join(dir, "golden.box")
			copyStore(t, base, golden)
			snapshots, writePoints := goldenRun(t, golden, cfg, baseLIDs, baseElems)
			if writePoints == 0 {
				t.Fatal("script performed no writes; sweep is vacuous")
			}

			redoCuts := 0
			for at := 1; at <= writePoints; at++ {
				crash := filepath.Join(dir, fmt.Sprintf("crash-%d.box", at))
				copyStore(t, base, crash)
				opsDone, crashed := runUntilCrash(t, crash, cfg, at, baseLIDs, baseElems)
				if !crashed {
					removeStore(crash)
					continue
				}

				// Probe how many raw writes the redo of this cut performs,
				// with a count-only controller on a scratch copy.
				probe := filepath.Join(dir, "probe.box")
				copyStore(t, crash, probe)
				dc := pager.NewDiskController()
				fb, err := pager.OpenFileOpts(probe, pager.FileOptions{NoSync: true, DiskControl: dc})
				if err != nil {
					t.Fatalf("at=%d: probe reopen: %v", at, err)
				}
				redoWrites := dc.Writes()
				fb.Close()
				removeStore(probe)

				for q := 1; q <= redoWrites; q++ {
					for _, torn := range []bool{false, true} {
						tag := fmt.Sprintf("%s/at=%d/redo=%d/torn=%v", cfg.name, at, q, torn)
						dbl := filepath.Join(dir, "double.box")
						copyStore(t, crash, dbl)

						kind := pager.DiskCrash
						if torn {
							kind = pager.DiskTornCrash
						}
						dc2 := pager.NewDiskController()
						dc2.PlanWrite(q, kind)
						fb2, err := pager.OpenFileOpts(dbl, pager.FileOptions{NoSync: true, DiskControl: dc2})
						if err == nil {
							// The cut landed after redo finished its writes
							// (e.g. in the WAL truncate the open tolerates);
							// the file is simply recovered.
							fb2.Close()
						} else if !errors.Is(err, pager.ErrCrashed) {
							t.Fatalf("%s: second reopen failed with a non-crash error: %v", tag, err)
						}
						redoCuts++

						// Third open runs undisturbed and must recover to the
						// same admissible boundary as a single crash would.
						checkRecovered(t, dbl, cfg, snapshots, opsDone, tag)
						removeStore(dbl)
					}
				}
				removeStore(crash)
			}
			if redoCuts == 0 {
				t.Fatal("no redo write point was ever cut; double-crash sweep is vacuous")
			}
		})
	}
}

// runUntilCrash replays the script over a copy of the base store with a
// power cut planned at raw write point `at`, returning how many ops fully
// completed and whether the cut fired.
func runUntilCrash(t *testing.T, path string, cfg schemeConfig, at int, baseLIDs []order.LID, baseElems []order.ElemLIDs) (opsDone int, crashed bool) {
	t.Helper()
	ctrl := pager.NewCrashController(at, false)
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true, CrashControl: ctrl})
	if err != nil {
		t.Fatalf("at=%d: open: %v", at, err)
	}
	st, err := core.OpenExisting(fb, runtimeOpts())
	if err != nil {
		t.Fatalf("at=%d: OpenExisting: %v", at, err)
	}
	w := rebuildWorld(st, baseLIDs, baseElems)
	for j := 0; j < scriptOps; j++ {
		if err := scriptOp(w, j); err != nil {
			if !errors.Is(err, pager.ErrCrashed) {
				t.Fatalf("at=%d: op %d failed with a non-crash error: %v", at, j, err)
			}
			break
		}
		opsDone++
	}
	fb.Close()
	return opsDone, ctrl.Crashed()
}
