// Package crashmatrix is the end-to-end crash harness of the durability
// work: for every labeling scheme (caching and reflog on) it runs a
// scripted update workload over a durable file-backed store, cuts power at
// every raw write point — full cuts and torn half-writes — reopens the
// file through normal recovery, and checks that boxfsck-level
// verification passes and that every label and its order matches the
// no-crash oracle at an exact operation boundary (the k ops that finished
// before the cut, or k+1 when the commit record was already durable).
package crashmatrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"boxes/internal/core"
	"boxes/internal/fsck"
	"boxes/internal/order"
	"boxes/internal/pager"
)

const blockSize = 512

// schemeConfig is one row of the crash matrix.
type schemeConfig struct {
	name    string
	opts    core.Options // structural options for the initial build
	ordinal bool         // check ordinal labels against oracle positions
}

func matrix() []schemeConfig {
	return []schemeConfig{
		{"wbox", core.Options{Scheme: core.SchemeWBox}, false},
		{"wbox-o", core.Options{Scheme: core.SchemeWBoxO, Ordinal: true}, true},
		{"bbox", core.Options{Scheme: core.SchemeBBox}, false},
		{"bbox-o", core.Options{Scheme: core.SchemeBBox, Ordinal: true}, true},
		{"naive-8", core.Options{Scheme: core.SchemeNaive, NaiveK: 8}, false},
	}
}

// runtimeOpts are the runtime options every reopen uses: durable commits,
// the Section 6 reflog cache, and a small block LRU — the harness must
// prove recovery correct with the caching layers in play, not around them.
func runtimeOpts() core.Options {
	return core.Options{
		Durable:     true,
		Caching:     core.CachingLogged,
		LogK:        16,
		CacheBlocks: 8,
	}
}

// world is the deterministic script state: the store under test, the
// in-memory oracle, and the element list the script picks targets from.
type world struct {
	st     *core.Store
	oracle *order.Oracle
	elems  []order.ElemLIDs
}

// buildBase creates a durable store at path, inserts a small document, and
// closes it cleanly. It returns the oracle LID order of the base document
// and its element list; LID allocation is deterministic, so both are valid
// for every crashed or golden replay of the same base file.
func buildBase(t *testing.T, path string, cfg schemeConfig) ([]order.LID, []order.ElemLIDs) {
	t.Helper()
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: blockSize, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := cfg.opts
	opts.BlockSize = blockSize
	opts.Backend = fb
	opts.Durable = true
	st, err := core.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{st: st, oracle: order.NewOracle()}
	e, err := st.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	w.oracle.InsertFirstElement(e)
	w.elems = append(w.elems, e)
	for i := 0; i < 7; i++ {
		at := w.elems[i%len(w.elems)]
		ne, err := st.InsertElementBefore(at.End)
		if err != nil {
			t.Fatal(err)
		}
		w.oracle.InsertElementBefore(ne, at.End)
		w.elems = append(w.elems, ne)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	return append([]order.LID(nil), w.oracle.LIDs()...), append([]order.ElemLIDs(nil), w.elems...)
}

// rebuildWorld reconstructs the script state over a reopened store from
// the deterministic base bookkeeping.
func rebuildWorld(st *core.Store, baseLIDs []order.LID, baseElems []order.ElemLIDs) *world {
	w := &world{st: st, oracle: order.NewOracle()}
	w.oracle.Load(baseLIDs)
	w.elems = append(w.elems, baseElems...)
	return w
}

const scriptOps = 6

// scriptOp applies the j-th (0-based) scripted operation to the store and
// mirrors it into the oracle. Targets depend only on j and the element
// list, so crashed and golden runs perform identical work.
func scriptOp(w *world, j int) error {
	if j == 3 {
		// Delete the element inserted by op 2; nothing was inserted inside
		// it, so it is a leaf and DeleteElement is legal.
		e := w.elems[len(w.elems)-1]
		if err := w.st.DeleteElement(e); err != nil {
			return err
		}
		w.elems = w.elems[:len(w.elems)-1]
		w.oracle.Delete(e.Start)
		w.oracle.Delete(e.End)
		return nil
	}
	at := w.elems[(j*3)%4] // early elements only, so op 2's insert stays a leaf
	ne, err := w.st.InsertElementBefore(at.End)
	if err != nil {
		return err
	}
	if err := w.oracle.InsertElementBefore(ne, at.End); err != nil {
		return err
	}
	w.elems = append(w.elems, ne)
	return nil
}

// copyStore clones the data file and its WAL/checksum companions.
func copyStore(t *testing.T, from, to string) {
	t.Helper()
	for _, suffix := range []string{"", ".crc", ".wal"} {
		data, err := os.ReadFile(from + suffix)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(to+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// goldenRun replays the full script without crashing, counting raw write
// points and snapshotting the oracle after every op. snapshots[k] is the
// oracle LID order after k script ops.
func goldenRun(t *testing.T, path string, cfg schemeConfig, baseLIDs []order.LID, baseElems []order.ElemLIDs) (snapshots [][]order.LID, writePoints int) {
	t.Helper()
	ctrl := pager.NewCrashController(0, false)
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true, CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	rt := runtimeOpts()
	st, err := core.OpenExisting(fb, rt)
	if err != nil {
		t.Fatal(err)
	}
	w := rebuildWorld(st, baseLIDs, baseElems)
	snapshots = append(snapshots, append([]order.LID(nil), w.oracle.LIDs()...))
	for j := 0; j < scriptOps; j++ {
		if err := scriptOp(w, j); err != nil {
			t.Fatalf("golden op %d: %v", j, err)
		}
		snapshots = append(snapshots, append([]order.LID(nil), w.oracle.LIDs()...))
	}
	writePoints = ctrl.Writes()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshots, writePoints
}

// checkRecovered opens the crashed file through normal recovery and
// verifies it matches the oracle after opsDone or opsDone+1 script ops.
func checkRecovered(t *testing.T, path string, cfg schemeConfig, snapshots [][]order.LID, opsDone int, tag string) {
	t.Helper()

	// boxfsck-level verification first: checksums, free list, invariants,
	// reachability. A crash must never leak or corrupt a block.
	rep, err := fsck.Check(path, fsck.Options{})
	if err != nil {
		t.Fatalf("%s: fsck: %v", tag, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s: fsck unclean: %v", tag, rep.Problems)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("%s: fsck found %d orphans: %v", tag, len(rep.Orphans), rep.Orphans)
	}

	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatalf("%s: reopen: %v", tag, err)
	}
	defer fb.Close()
	st, err := core.OpenExisting(fb, runtimeOpts())
	if err != nil {
		t.Fatalf("%s: OpenExisting: %v", tag, err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants: %v", tag, err)
	}

	// The recovered state must sit at an exact op boundary: all of the
	// opsDone completed ops, plus possibly the in-flight op if its commit
	// record hit the disk before the cut.
	var errs []string
	for _, k := range []int{opsDone, opsDone + 1} {
		if k >= len(snapshots) {
			continue
		}
		o := order.NewOracle()
		o.Load(snapshots[k])
		if err := o.CheckAgainst(st.Labeler(), cfg.ordinal); err != nil {
			errs = append(errs, fmt.Sprintf("k=%d: %v", k, err))
			continue
		}
		// Same order check through the Store's lookup path, which runs the
		// reflog cache the runtime options enable.
		var prev order.Label
		for i, lid := range snapshots[k] {
			lab, err := st.Lookup(lid)
			if err != nil {
				t.Fatalf("%s: cached lookup of %d: %v", tag, lid, err)
			}
			if i > 0 && lab <= prev {
				t.Fatalf("%s: cached lookups out of order at %d", tag, i)
			}
			prev = lab
		}
		return // matched an admissible boundary
	}
	t.Fatalf("%s: recovered store (count %d) matches neither %d nor %d completed ops: %v",
		tag, st.Count(), opsDone, opsDone+1, errs)
}

// TestCrashMatrix is the full sweep: every scheme, every write point of
// the scripted workload, full cuts and torn writes.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix sweep is not short")
	}
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			golden := filepath.Join(dir, "golden.box")
			copyStore(t, base, golden)
			snapshots, writePoints := goldenRun(t, golden, cfg, baseLIDs, baseElems)
			if writePoints == 0 {
				t.Fatal("script performed no writes; sweep is vacuous")
			}

			for _, torn := range []bool{false, true} {
				for at := 1; at <= writePoints; at++ {
					tag := fmt.Sprintf("%s/at=%d/torn=%v", cfg.name, at, torn)
					crash := filepath.Join(dir, fmt.Sprintf("crash-%d-%v.box", at, torn))
					copyStore(t, base, crash)

					ctrl := pager.NewCrashController(at, torn)
					fb, err := pager.OpenFileOpts(crash, pager.FileOptions{NoSync: true, CrashControl: ctrl})
					if err != nil {
						t.Fatalf("%s: open: %v", tag, err)
					}
					st, err := core.OpenExisting(fb, runtimeOpts())
					if err != nil {
						t.Fatalf("%s: OpenExisting: %v", tag, err)
					}
					w := rebuildWorld(st, baseLIDs, baseElems)
					opsDone := 0
					for j := 0; j < scriptOps; j++ {
						if err := scriptOp(w, j); err != nil {
							if !errors.Is(err, pager.ErrCrashed) {
								t.Fatalf("%s: op %d failed with a non-crash error: %v", tag, j, err)
							}
							break
						}
						opsDone++
					}
					fb.Close() // errors expected after a cut; descriptors still close
					if !ctrl.Crashed() {
						if opsDone != scriptOps {
							t.Fatalf("%s: no crash but only %d ops", tag, opsDone)
						}
						// Point beyond the workload's writes (Close syncs fewer
						// times than the golden run): state is simply final.
					}
					checkRecovered(t, crash, cfg, snapshots, opsDone, tag)
					os.Remove(crash)
					os.Remove(crash + ".crc")
					os.Remove(crash + ".wal")
				}
			}
		})
	}
}
