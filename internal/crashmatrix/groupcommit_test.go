package crashmatrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// groupRuntimeOpts is runtimeOpts with WAL group commit enabled: all
// commits route through the committer goroutine, so the sweep proves the
// async commit path preserves the recovery contract.
func groupRuntimeOpts() core.Options {
	rt := runtimeOpts()
	rt.Durability = &pager.Durability{Every: 4}
	return rt
}

const batchScriptOps = 4

// batchScriptOp applies the j-th scripted ApplyBatch (two inserts and a
// read per batch) and mirrors it into the oracle. Targets depend only on j
// and the element list, so crashed and golden runs perform identical work.
func batchScriptOp(w *world, j int) error {
	at1 := w.elems[(j*3)%4]
	at2 := w.elems[(j*5+1)%4]
	ops := []core.Op{
		{Kind: core.OpInsertBefore, LID: at1.End},
		{Kind: core.OpInsertBefore, LID: at2.End},
		{Kind: core.OpLookupSpan, Elem: at1},
	}
	results, err := w.st.ApplyBatch(ops)
	if err != nil {
		return err
	}
	for k, op := range ops {
		if op.Kind != core.OpInsertBefore {
			continue
		}
		e := results[k].Elem
		if err := w.oracle.InsertElementBefore(e, op.LID); err != nil {
			return fmt.Errorf("oracle mirror: %w", err)
		}
		w.elems = append(w.elems, e)
	}
	return nil
}

// goldenGroupRun replays the batch script without crashing, counting raw
// write points and snapshotting the oracle after every batch. snapshots[k]
// is the oracle LID order after k complete batches.
func goldenGroupRun(t *testing.T, path string, baseLIDs []order.LID, baseElems []order.ElemLIDs) (snapshots [][]order.LID, writePoints int) {
	t.Helper()
	ctrl := pager.NewCrashController(0, false)
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true, CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.OpenExisting(fb, groupRuntimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := rebuildWorld(st, baseLIDs, baseElems)
	snapshots = append(snapshots, append([]order.LID(nil), w.oracle.LIDs()...))
	for j := 0; j < batchScriptOps; j++ {
		if err := batchScriptOp(w, j); err != nil {
			t.Fatalf("golden batch %d: %v", j, err)
		}
		snapshots = append(snapshots, append([]order.LID(nil), w.oracle.LIDs()...))
	}
	writePoints = ctrl.Writes()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshots, writePoints
}

// TestCrashMatrixGroupCommit extends the crash matrix to ApplyBatch under
// WAL group commit: every scheme, a scripted workload of multi-op batches,
// power cut at every write point of the committer goroutine, full cuts and
// torn half-writes. The recovered store must sit at an exact BATCH
// boundary — all completed batches plus possibly the in-flight one if its
// commit record was durable — never at a partial batch: a batch's
// mutations share one WAL transaction, so recovery replays all of it or
// none of it.
func TestCrashMatrixGroupCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix sweep is not short")
	}
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			golden := filepath.Join(dir, "golden.box")
			copyStore(t, base, golden)
			snapshots, writePoints := goldenGroupRun(t, golden, baseLIDs, baseElems)
			if writePoints == 0 {
				t.Fatal("batch script performed no writes; sweep is vacuous")
			}

			for _, torn := range []bool{false, true} {
				for at := 1; at <= writePoints; at++ {
					tag := fmt.Sprintf("%s/group/at=%d/torn=%v", cfg.name, at, torn)
					crash := filepath.Join(dir, fmt.Sprintf("gcrash-%d-%v.box", at, torn))
					copyStore(t, base, crash)

					ctrl := pager.NewCrashController(at, torn)
					fb, err := pager.OpenFileOpts(crash, pager.FileOptions{NoSync: true, CrashControl: ctrl})
					if err != nil {
						t.Fatalf("%s: open: %v", tag, err)
					}
					st, err := core.OpenExisting(fb, groupRuntimeOpts())
					if err != nil {
						t.Fatalf("%s: OpenExisting: %v", tag, err)
					}
					w := rebuildWorld(st, baseLIDs, baseElems)
					opsDone := 0
					for j := 0; j < batchScriptOps; j++ {
						if err := batchScriptOp(w, j); err != nil {
							if !errors.Is(err, pager.ErrCrashed) {
								t.Fatalf("%s: batch %d failed with a non-crash error: %v", tag, j, err)
							}
							break
						}
						opsDone++
					}
					fb.Close() // errors expected after a cut; descriptors still close
					if !ctrl.Crashed() && opsDone != batchScriptOps {
						t.Fatalf("%s: no crash but only %d batches", tag, opsDone)
					}
					checkRecovered(t, crash, cfg, snapshots, opsDone, tag)
					os.Remove(crash)
					os.Remove(crash + ".crc")
					os.Remove(crash + ".wal")
				}
			}
		})
	}
}
