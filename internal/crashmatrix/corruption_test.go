package crashmatrix

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"boxes/internal/core"
	"boxes/internal/fsck"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// flipByte XORs one bit into the file at off.
func flipByte(t *testing.T, path string, off int64, mask byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= mask
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionHeaderFlip: a flipped bit in the file header must surface
// as a typed corruption error at open, never as a store running on
// garbage geometry.
func TestCorruptionHeaderFlip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.box")
	buildBase(t, base, matrix()[0])

	for _, off := range []int64{9, 20, 30, 45} { // blockSize, freeHead, metaRoot, headerCRC
		crash := filepath.Join(dir, "hdr.box")
		copyStore(t, base, crash)
		flipByte(t, crash, off, 0x04)
		_, err := pager.OpenFile(crash)
		if !errors.Is(err, pager.ErrCorrupt) {
			t.Fatalf("header flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestCorruptionBlockFlips flips one byte in every ever-allocated block —
// tree node blocks, LIDF blocks, and the metadata blob alike — and
// asserts three things: fsck names the damaged block, any failure along
// the open/check/lookup path is a typed pager.ErrCorrupt (never a panic),
// and when nothing fails the labels still match the oracle (a flip may
// not silently reorder anything).
func TestCorruptionBlockFlips(t *testing.T) {
	for _, cfg := range []schemeConfig{matrix()[0], matrix()[2], matrix()[4]} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, _ := buildBase(t, base, cfg)

			fb, err := pager.OpenFile(base)
			if err != nil {
				t.Fatal(err)
			}
			bound := fb.Bound()
			if err := fb.Close(); err != nil {
				t.Fatal(err)
			}

			for id := pager.BlockID(1); id < bound; id++ {
				crash := filepath.Join(dir, "flip.box")
				copyStore(t, base, crash)
				flipByte(t, crash, int64(id)*blockSize+37, 0x20)

				rep, err := fsck.Check(crash, fsck.Options{})
				if err != nil {
					t.Fatalf("block %d: fsck refused the file: %v", id, err)
				}
				if rep.Clean() {
					t.Fatalf("block %d: fsck missed the flipped byte", id)
				}
				named := false
				for _, p := range rep.Problems {
					if p.Block == id && p.Severity == fsck.SevError {
						named = true
					}
				}
				if !named {
					t.Fatalf("block %d: fsck did not name the block: %v", id, rep.Problems)
				}

				// The normal open path must fail typed or stay correct.
				err = openAndSweep(crash, baseLIDs, cfg.ordinal)
				if err != nil && !errors.Is(err, pager.ErrCorrupt) {
					t.Fatalf("block %d: untyped failure: %v", id, err)
				}
			}
		})
	}
}

// openAndSweep opens the store, checks invariants, and looks up every
// oracle LID in order. It returns nil only if everything is consistent.
func openAndSweep(path string, lids []order.LID, ordinal bool) error {
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		return err
	}
	defer fb.Close()
	st, err := core.OpenExisting(fb, core.Options{})
	if err != nil {
		return err
	}
	if err := st.CheckInvariants(); err != nil {
		return err
	}
	o := order.NewOracle()
	o.Load(lids)
	return o.CheckAgainst(st.Labeler(), ordinal)
}

// TestCorruptionWALTail covers both WAL damage cases. A flipped byte in a
// frame of a *committed* transaction that was never applied must be a
// typed corruption error at open (the commit promised data the log can no
// longer deliver). A flipped byte in an *uncommitted* tail is discarded by
// recovery: the open succeeds and the pre-crash images are intact.
func TestCorruptionWALTail(t *testing.T) {
	// walHeaderSize(16) and the frame layout (kind u8 + id u64 + payload +
	// crc u32) are fixed by the WAL format documented in DESIGN.md.
	const walHeader = 16
	const bs = 128

	setup := func(t *testing.T, crashAt int) string {
		path := filepath.Join(t.TempDir(), "wal.box")
		fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: bs, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		var ids []pager.BlockID
		for i := 0; i < 2; i++ {
			id, err := fb.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}

		ctrl := pager.NewCrashController(crashAt, false)
		fb, err = pager.OpenFileOpts(path, pager.FileOptions{NoSync: true, CrashControl: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		fb.BeginBatch()
		img := make([]byte, bs)
		for i, id := range ids {
			img[0] = byte(0xA0 + i)
			if err := fb.WriteBlock(id, img); err != nil {
				t.Fatal(err)
			}
		}
		if err := fb.CommitBatch(); !errors.Is(err, pager.ErrCrashed) {
			t.Fatalf("commit survived the cut: %v", err)
		}
		if !ctrl.Crashed() {
			t.Fatalf("controller never fired (crashAt=%d, writes=%d)", crashAt, ctrl.Writes())
		}
		fb.Close()
		return path
	}

	t.Run("committed-frame", func(t *testing.T) {
		// Write points in CommitBatch: frame, frame, commit record, then
		// the in-place applies. Crashing at point 4 leaves a fully
		// committed transaction in the WAL with nothing applied.
		path := setup(t, 4)
		flipByte(t, path+".wal", walHeader+9+50, 0x01) // payload of frame 1
		_, err := pager.OpenFile(path)
		if !errors.Is(err, pager.ErrCorrupt) {
			t.Fatalf("flipped committed frame: err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("uncommitted-tail", func(t *testing.T) {
		// Crashing at point 3 cuts the commit record itself: the two
		// frames are a dead tail recovery must throw away, flipped or not.
		path := setup(t, 3)
		flipByte(t, path+".wal", walHeader+9+50, 0x01)
		fb, err := pager.OpenFile(path)
		if err != nil {
			t.Fatalf("flipped uncommitted tail rejected: %v", err)
		}
		defer fb.Close()
		if rec := fb.RecoveryInfo(); rec.Replayed || rec.DiscardedBytes == 0 {
			t.Fatalf("tail not discarded: %+v", rec)
		}
		buf := make([]byte, bs)
		if err := fb.ReadBlock(1, buf); err != nil {
			t.Fatalf("block 1 unreadable after discard: %v", err)
		}
		if buf[0] != 0 {
			t.Fatalf("discarded transaction leaked into block 1: %x", buf[0])
		}
	})
}

// TestConcurrentLookupsAfterRecovery is the -race walk: crash a durable
// store mid-workload, recover it, fsck it, then hammer the recovered
// store through a SyncStore from concurrent readers while a writer keeps
// inserting. Run with `go test -race` (the CI race job does).
func TestConcurrentLookupsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.box")
	cfg := matrix()[0]
	baseLIDs, baseElems := buildBase(t, base, cfg)

	// Crash partway through the scripted workload.
	ctrl := pager.NewCrashController(25, true)
	fb, err := pager.OpenFileOpts(base, pager.FileOptions{NoSync: true, CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.OpenExisting(fb, runtimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := rebuildWorld(st, baseLIDs, baseElems)
	for j := 0; j < scriptOps; j++ {
		if err := scriptOp(w, j); err != nil {
			break
		}
	}
	fb.Close()
	if !ctrl.Crashed() {
		t.Fatal("controller never fired; workload too small for crash point 25")
	}

	rep, err := fsck.Check(base, fsck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("recovered store unclean: %v", rep.Problems)
	}

	fb, err = pager.OpenFileOpts(base, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	plain, err := core.OpenExisting(fb, runtimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	ss := core.NewSyncStore(plain)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 20; pass++ {
				for _, lid := range baseLIDs {
					if _, err := ss.Lookup(lid); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := baseElems[0]
		for i := 0; i < 15; i++ {
			if _, err := ss.InsertElementBefore(at.End); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent access over recovered store: %v", err)
	}
	if err := ss.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent churn: %v", err)
	}
}
