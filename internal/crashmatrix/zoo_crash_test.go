package crashmatrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/workload"
)

// The zoo crash sweep: instead of the fixed script of TestCrashMatrix,
// the operations come from the adaptive workload sources of
// internal/workload — steady-state churn (tombstone-heavy deletes) and
// the BKS bisection adversary (min-gap hammering) — and power is cut at
// every raw write point of each. The sources are deterministic functions
// of their seed and the labels they observe, and the store's state is
// deterministic up to the cut, so the crashed run performs exactly the
// golden run's op prefix and checkRecovered can hold it to an exact op
// boundary.

// zooWorld adapts the crash-matrix world to workload.View: docOrder maps
// start-tag document-order positions to element indices (elems itself is
// append-only; deletes only remove the docOrder entry).
type zooWorld struct {
	w        *world
	docOrder []int
}

// newZooWorld rebuilds the script state and recovers document order by
// sorting the base elements by their current start labels (labels are
// deterministic across replays of the same base file).
func newZooWorld(st *core.Store, baseLIDs []order.LID, baseElems []order.ElemLIDs) (*zooWorld, error) {
	z := &zooWorld{w: rebuildWorld(st, baseLIDs, baseElems)}
	labels := make([]order.Label, len(z.w.elems))
	for i, e := range z.w.elems {
		lab, err := st.Lookup(e.Start)
		if err != nil {
			return nil, fmt.Errorf("zoo world: label of base element %d: %w", i, err)
		}
		labels[i] = lab
		z.docOrder = append(z.docOrder, i)
	}
	sort.Slice(z.docOrder, func(a, b int) bool { return labels[z.docOrder[a]] < labels[z.docOrder[b]] })
	return z, nil
}

func (z *zooWorld) Len() int { return len(z.docOrder) }

func (z *zooWorld) Label(pos int) (order.Label, error) {
	return z.w.st.Lookup(z.w.elems[z.docOrder[pos]].Start)
}

func (z *zooWorld) EndLabel(pos int) (order.Label, error) {
	return z.w.st.Lookup(z.w.elems[z.docOrder[pos]].End)
}

// apply performs one positional operation on the store, mirroring it into
// the oracle only after the store succeeded (a crashed op leaves the
// oracle at the last completed boundary).
func (z *zooWorld) apply(op workload.Op) error {
	n := len(z.docOrder)
	pos := op.Pos
	if n > 0 {
		pos %= n
		if pos < 0 {
			pos += n
		}
	}
	switch op.Kind {
	case workload.Insert:
		if n == 0 {
			e, err := z.w.st.InsertFirstElement()
			if err != nil {
				return err
			}
			z.w.oracle.InsertFirstElement(e)
			z.w.elems = append(z.w.elems, e)
			z.docOrder = append(z.docOrder[:0], len(z.w.elems)-1)
			return nil
		}
		at := z.w.elems[z.docOrder[pos]]
		ne, err := z.w.st.InsertElementBefore(at.Start)
		if err != nil {
			return err
		}
		if err := z.w.oracle.InsertElementBefore(ne, at.Start); err != nil {
			return err
		}
		z.w.elems = append(z.w.elems, ne)
		ni := len(z.w.elems) - 1
		z.docOrder = append(z.docOrder, 0)
		copy(z.docOrder[pos+1:], z.docOrder[pos:])
		z.docOrder[pos] = ni
		return nil
	case workload.Delete:
		if n == 0 {
			return nil
		}
		e := z.w.elems[z.docOrder[pos]]
		if err := z.w.st.DeleteElement(e); err != nil {
			return err
		}
		z.w.oracle.Delete(e.Start)
		z.w.oracle.Delete(e.End)
		z.docOrder = append(z.docOrder[:pos], z.docOrder[pos+1:]...)
		return nil
	case workload.Lookup:
		if n == 0 {
			return nil
		}
		_, err := z.w.st.Lookup(z.w.elems[z.docOrder[pos]].Start)
		return err
	}
	return fmt.Errorf("zoo world: unknown op kind %d", op.Kind)
}

const zooOps = 6

// zooSource is one workload column of the sweep. Constructors, not
// values: every golden and crashed run needs a fresh source replaying the
// same decisions.
type zooSource struct {
	name string
	mk   func() workload.Source
}

func zooSources() []zooSource {
	return []zooSource{
		// Churn with target below the base size: a burst of tombstoning
		// deletes down to the low-water mark, then refill.
		{"churn", func() workload.Source { return workload.NewChurn(3, 6) }},
		// The bisection adversary: every insert lands in the tightest
		// label gap the labeler currently exposes.
		{"bisect", func() workload.Source { return workload.NewBisect(4) }},
	}
}

// zooGoldenRun replays the full zoo workload without crashing, counting
// raw write points and snapshotting the oracle after every op.
func zooGoldenRun(t *testing.T, path string, src workload.Source, baseLIDs []order.LID, baseElems []order.ElemLIDs) (snapshots [][]order.LID, writePoints int) {
	t.Helper()
	ctrl := pager.NewCrashController(0, false)
	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true, CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.OpenExisting(fb, runtimeOpts())
	if err != nil {
		t.Fatal(err)
	}
	z, err := newZooWorld(st, baseLIDs, baseElems)
	if err != nil {
		t.Fatal(err)
	}
	snapshots = append(snapshots, append([]order.LID(nil), z.w.oracle.LIDs()...))
	for j := 0; j < zooOps; j++ {
		op, err := src.Next(z)
		if err != nil {
			t.Fatalf("golden %s op %d: %v", src.Name(), j, err)
		}
		if err := z.apply(op); err != nil {
			t.Fatalf("golden %s op %d (%s @%d): %v", src.Name(), j, op.Kind, op.Pos, err)
		}
		snapshots = append(snapshots, append([]order.LID(nil), z.w.oracle.LIDs()...))
	}
	writePoints = ctrl.Writes()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshots, writePoints
}

// TestZooCrashSweep cuts power at every raw write point of the churn and
// adversary workloads, on every scheme, with full cuts and torn writes,
// and holds the recovered store to an exact op boundary of the golden
// run.
func TestZooCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo crash sweep is not short")
	}
	for _, cfg := range matrix() {
		for _, zs := range zooSources() {
			cfg, zs := cfg, zs
			t.Run(cfg.name+"/"+zs.name, func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				base := filepath.Join(dir, "base.box")
				baseLIDs, baseElems := buildBase(t, base, cfg)

				golden := filepath.Join(dir, "golden.box")
				copyStore(t, base, golden)
				snapshots, writePoints := zooGoldenRun(t, golden, zs.mk(), baseLIDs, baseElems)
				if writePoints == 0 {
					t.Fatal("zoo workload performed no writes; sweep is vacuous")
				}

				for _, torn := range []bool{false, true} {
					for at := 1; at <= writePoints; at++ {
						tag := fmt.Sprintf("%s/%s/at=%d/torn=%v", cfg.name, zs.name, at, torn)
						crash := filepath.Join(dir, fmt.Sprintf("crash-%d-%v.box", at, torn))
						copyStore(t, base, crash)

						ctrl := pager.NewCrashController(at, torn)
						fb, err := pager.OpenFileOpts(crash, pager.FileOptions{NoSync: true, CrashControl: ctrl})
						if err != nil {
							t.Fatalf("%s: open: %v", tag, err)
						}
						st, err := core.OpenExisting(fb, runtimeOpts())
						if err != nil {
							t.Fatalf("%s: OpenExisting: %v", tag, err)
						}
						z, err := newZooWorld(st, baseLIDs, baseElems)
						if err != nil {
							t.Fatalf("%s: %v", tag, err)
						}
						src := zs.mk()
						opsDone := 0
						for j := 0; j < zooOps; j++ {
							op, err := src.Next(z)
							if err == nil {
								err = z.apply(op)
							}
							if err != nil {
								if !errors.Is(err, pager.ErrCrashed) {
									t.Fatalf("%s: op %d failed with a non-crash error: %v", tag, j, err)
								}
								break
							}
							opsDone++
						}
						fb.Close() // errors expected after a cut
						if !ctrl.Crashed() && opsDone != zooOps {
							t.Fatalf("%s: no crash but only %d ops", tag, opsDone)
						}
						checkRecovered(t, crash, cfg, snapshots, opsDone, tag)
						os.Remove(crash)
						os.Remove(crash + ".crc")
						os.Remove(crash + ".wal")
					}
				}
			})
		}
	}
}
