package crashmatrix

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"boxes/internal/core"
	"boxes/internal/fsck"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// TestNoSpaceMatrix fails exactly one raw write with ENOSPC at every
// write point of the scripted workload and checks the full-disk contract
// (DESIGN.md §13): if the device filled before the commit record became
// durable, the operation aborts cleanly to the pre-op state — the store
// is NOT read-only degraded, and retrying the op once space returns
// succeeds, ending in the exact golden final state. If the device filled
// after the durability point, the commit path is poisoned and a reopen
// recovers the transaction from the WAL. Either way the file stays
// fsck-clean.
func TestNoSpaceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("ENOSPC sweep is not short")
	}
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			golden := filepath.Join(dir, "golden.box")
			copyStore(t, base, golden)
			snapshots, writePoints := goldenRun(t, golden, cfg, baseLIDs, baseElems)
			if writePoints == 0 {
				t.Fatal("script performed no writes; sweep is vacuous")
			}

			aborts, poisons := 0, 0
			for at := 1; at <= writePoints; at++ {
				tag := fmt.Sprintf("%s/at=%d", cfg.name, at)
				work := filepath.Join(dir, "work.box")
				copyStore(t, base, work)

				dc := pager.NewDiskController()
				dc.PlanWrite(at, pager.DiskNoSpace)
				fb, err := pager.OpenFileOpts(work, pager.FileOptions{NoSync: true, DiskControl: dc})
				if err != nil {
					t.Fatalf("%s: open: %v", tag, err)
				}
				st, err := core.OpenExisting(fb, runtimeOpts())
				if err != nil {
					t.Fatalf("%s: OpenExisting: %v", tag, err)
				}
				w := rebuildWorld(st, baseLIDs, baseElems)

				opsDone := 0
				poisoned := false
				for j := 0; j < scriptOps; j++ {
					err := scriptOp(w, j)
					if err == nil {
						opsDone++
						continue
					}
					if !errors.Is(err, pager.ErrNoSpace) && !errors.Is(err, pager.ErrPoisoned) {
						t.Fatalf("%s: op %d failed with a non-ENOSPC error: %v", tag, j, err)
					}
					if fb.Poisoned() != nil {
						// The device filled after the commit record was
						// durable: the backend refuses further commits and
						// the reopen below must recover the transaction.
						if !st.Degraded() {
							t.Fatalf("%s: poisoned backend but store not degraded", tag)
						}
						poisoned = true
						poisons++
						break
					}
					// Clean abort: the one full write must not latch
					// read-only mode, and the op must succeed when retried
					// now that the (one-shot) device space is back.
					if st.Degraded() {
						t.Fatalf("%s: ENOSPC before the durability point degraded the store: %v", tag, st.DegradedCause())
					}
					if !errors.Is(err, pager.ErrNoSpace) {
						t.Fatalf("%s: clean abort surfaced as %v, want ErrNoSpace", tag, err)
					}
					if err := scriptOp(w, j); err != nil {
						t.Fatalf("%s: retry of op %d after ENOSPC failed: %v", tag, j, err)
					}
					aborts++
					opsDone++
				}

				if poisoned {
					fb.Close()
					checkRecovered(t, work, cfg, snapshots, opsDone, tag)
					removeStore(work)
					continue
				}
				if opsDone != scriptOps {
					t.Fatalf("%s: only %d/%d ops completed without a poison", tag, opsDone, scriptOps)
				}
				// The full script ran (with at most one mid-script abort
				// and retry): the store must sit at the golden final state.
				o := order.NewOracle()
				o.Load(snapshots[scriptOps])
				if err := o.CheckAgainst(st.Labeler(), cfg.ordinal); err != nil {
					t.Fatalf("%s: final state diverged from golden: %v", tag, err)
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("%s: invariants: %v", tag, err)
				}
				if err := fb.Close(); err != nil {
					// The planned fault can land in Close's WAL truncate;
					// recovery must still be clean.
					if !errors.Is(err, pager.ErrNoSpace) && !errors.Is(err, pager.ErrPoisoned) {
						t.Fatalf("%s: close: %v", tag, err)
					}
				}
				rep, err := fsck.Check(work, fsck.Options{})
				if err != nil {
					t.Fatalf("%s: fsck: %v", tag, err)
				}
				if !rep.Clean() || len(rep.Orphans) != 0 {
					t.Fatalf("%s: fsck unclean after ENOSPC run: %v (orphans %d)", tag, rep.Problems, len(rep.Orphans))
				}
				removeStore(work)
			}
			if aborts == 0 {
				t.Fatal("no write point produced a clean ENOSPC abort; sweep is vacuous")
			}
			t.Logf("%s: %d clean aborts, %d post-durability poisons over %d write points", cfg.name, aborts, poisons, writePoints)
		})
	}
}
