// Resilience acceptance tests over the crash-matrix harness: the same
// scripted workload and oracle, but instead of cutting power the device
// misbehaves while the process keeps running — transient write faults the
// retry layer must absorb, a permanent write fault that must flip the
// store into read-only degraded mode with lookups still serving the
// committed prefix, a hot backup taken while a writer is mid-workload,
// and checksum corruption surfacing as typed errors under concurrent
// readers.
package crashmatrix

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boxes/internal/core"
	"boxes/internal/faults"
	"boxes/internal/fsck"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// testRetry is a fast deterministic retry budget: real backoff shapes are
// covered by the faults package's own tests, here the sleeps would only
// slow the sweep down.
func testRetry() *faults.RetryPolicy {
	return &faults.RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: time.Microsecond,
		MaxBackoff:     10 * time.Microsecond,
		Multiplier:     2,
		Seed:           1,
		Sleep:          func(time.Duration) {},
	}
}

// TestTransientFaultSweep injects a transient fault into every k-th raw
// block write, for a sweep of k, and requires the full script to complete
// with zero surfaced errors on every scheme: the retry layer must absorb
// all of them, and the final labels must match the oracle exactly.
func TestTransientFaultSweep(t *testing.T) {
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			totalInjected := 0
			for _, k := range []int{2, 3, 5, 7, 13} {
				tag := fmt.Sprintf("%s/k=%d", cfg.name, k)
				work := filepath.Join(dir, fmt.Sprintf("k%d.box", k))
				copyStore(t, base, work)

				fb, err := pager.OpenFileOpts(work, pager.FileOptions{NoSync: true})
				if err != nil {
					t.Fatalf("%s: open: %v", tag, err)
				}
				sched := faults.NewSchedule(int64(k))
				sched.FailEveryKth(k, faults.ModeTransient, faults.OpWrite)
				rt := runtimeOpts()
				rt.Retry = testRetry()
				rt.Metrics = obs.NewRegistry()
				st, err := core.OpenExisting(pager.NewFaultBackend(fb, sched), rt)
				if err != nil {
					t.Fatalf("%s: OpenExisting: %v", tag, err)
				}
				w := rebuildWorld(st, baseLIDs, baseElems)
				for j := 0; j < scriptOps; j++ {
					if err := scriptOp(w, j); err != nil {
						t.Fatalf("%s: op %d surfaced a transient fault: %v", tag, j, err)
					}
				}
				if st.Degraded() {
					t.Fatalf("%s: transient faults must not flip degraded mode (cause: %v)",
						tag, st.DegradedCause())
				}
				if err := st.CheckInvariants(); err != nil {
					t.Fatalf("%s: invariants: %v", tag, err)
				}
				if err := w.oracle.CheckAgainst(st.Labeler(), cfg.ordinal); err != nil {
					t.Fatalf("%s: final labels diverge from the oracle: %v", tag, err)
				}
				var prev order.Label
				for i, lid := range w.oracle.LIDs() {
					lab, err := st.Lookup(lid)
					if err != nil {
						t.Fatalf("%s: lookup of %d: %v", tag, lid, err)
					}
					if i > 0 && lab <= prev {
						t.Fatalf("%s: cached lookups out of order at %d", tag, i)
					}
					prev = lab
				}
				// A scheme whose script performs fewer than k writes cannot
				// trip the every-k-th rule; the aggregate check below keeps
				// the sweep honest.
				if sched.Injected() == 0 && sched.Writes() >= k {
					t.Fatalf("%s: %d writes ran but no fault ever fired", tag, sched.Writes())
				}
				if sched.Injected() > 0 && rt.Metrics.Counter(obs.CtrPagerRetries) == 0 {
					t.Fatalf("%s: %d faults fired but no retry was recorded", tag, sched.Injected())
				}
				totalInjected += sched.Injected()
				if err := st.Close(); err != nil {
					t.Fatalf("%s: close: %v", tag, err)
				}
				os.Remove(work)
				os.Remove(work + ".crc")
				os.Remove(work + ".wal")
			}
			if totalInjected == 0 {
				t.Fatal("no fault fired at any k; the sweep is vacuous")
			}
		})
	}
}

// TestPermanentWriteFaultDegrades lands a permanent fault on a raw write
// in the middle of the workload. The failing operation must surface the
// injected error, the store must flip into read-only degraded mode —
// mutations rejected with the typed ErrReadOnly — while lookups keep
// answering exactly the committed prefix; and after ClearDegraded over a
// healed device the script resumes to the full oracle state.
func TestPermanentWriteFaultDegrades(t *testing.T) {
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			// Probe pass: count the script's raw writes on an identical
			// copy, so the fault lands mid-workload deterministically.
			probe := filepath.Join(dir, "probe.box")
			copyStore(t, base, probe)
			pfb, err := pager.OpenFileOpts(probe, pager.FileOptions{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			psched := faults.NewSchedule(1) // no rules: pure pass-through counter
			pst, err := core.OpenExisting(pager.NewFaultBackend(pfb, psched), runtimeOpts())
			if err != nil {
				t.Fatal(err)
			}
			pw := rebuildWorld(pst, baseLIDs, baseElems)
			for j := 0; j < scriptOps; j++ {
				if err := scriptOp(pw, j); err != nil {
					t.Fatalf("probe op %d: %v", j, err)
				}
			}
			totalWrites := psched.Writes()
			if err := pst.Close(); err != nil {
				t.Fatal(err)
			}
			if totalWrites < 4 {
				t.Fatalf("script performs only %d writes; a mid-workload fault cannot land", totalWrites)
			}
			failAt := totalWrites / 2

			work := filepath.Join(dir, "degraded.box")
			copyStore(t, base, work)
			fb, err := pager.OpenFileOpts(work, pager.FileOptions{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			sched := faults.NewSchedule(7)
			sched.FailEveryKth(failAt, faults.ModePermanent, faults.OpWrite)
			rt := runtimeOpts()
			rt.Retry = testRetry() // permanent faults must not be retried away
			rt.Metrics = obs.NewRegistry()
			st, err := core.OpenExisting(pager.NewFaultBackend(fb, sched), rt)
			if err != nil {
				t.Fatal(err)
			}
			w := rebuildWorld(st, baseLIDs, baseElems)
			opsDone := 0
			var opErr error
			for j := 0; j < scriptOps; j++ {
				if err := scriptOp(w, j); err != nil {
					opErr = err
					break
				}
				opsDone++
			}
			if opErr == nil {
				t.Fatalf("fault armed at write %d of %d never surfaced", failAt, totalWrites)
			}
			if !errors.Is(opErr, pager.ErrInjected) {
				t.Fatalf("failing op returned %v, want the injected fault", opErr)
			}
			if !st.Degraded() {
				t.Fatal("permanent write fault did not flip degraded mode")
			}
			if st.DegradedCause() == nil {
				t.Fatal("degraded mode reports no cause")
			}
			if got := rt.Metrics.Counter(obs.CtrCoreDegraded); got != 1 {
				t.Fatalf("degraded counter = %d, want 1", got)
			}

			// Mutations are rejected with the typed sentinel...
			if _, err := st.InsertElementBefore(w.elems[0].End); !errors.Is(err, core.ErrReadOnly) {
				t.Fatalf("mutation in degraded mode returned %v, want ErrReadOnly", err)
			}
			if err := st.Save(); !errors.Is(err, core.ErrReadOnly) {
				t.Fatalf("Save in degraded mode returned %v, want ErrReadOnly", err)
			}

			// ...while lookups keep serving exactly the committed prefix:
			// the oracle mirror holds the opsDone completed operations.
			if err := w.oracle.CheckAgainst(st.Labeler(), cfg.ordinal); err != nil {
				t.Fatalf("degraded lookups diverge from the %d-op oracle: %v", opsDone, err)
			}
			var prev order.Label
			for i, lid := range w.oracle.LIDs() {
				lab, err := st.Lookup(lid)
				if err != nil {
					t.Fatalf("degraded lookup of %d: %v", lid, err)
				}
				if i > 0 && lab <= prev {
					t.Fatalf("degraded lookups out of order at %d", i)
				}
				prev = lab
			}

			// Heal the device and resume: the failed op and the rest of the
			// script must complete from the committed prefix.
			sched.FailEveryKth(0, faults.ModePermanent, faults.OpWrite)
			st.ClearDegraded()
			for j := opsDone; j < scriptOps; j++ {
				if err := scriptOp(w, j); err != nil {
					t.Fatalf("op %d after recovery: %v", j, err)
				}
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("invariants after recovery: %v", err)
			}
			if err := w.oracle.CheckAgainst(st.Labeler(), cfg.ordinal); err != nil {
				t.Fatalf("labels after recovery diverge from the oracle: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// syncWorld mirrors world over a SyncStore, for scripts driven from a
// writer goroutine while other goroutines read or back up.
type syncWorld struct {
	ss     *core.SyncStore
	oracle *order.Oracle
	elems  []order.ElemLIDs
}

// syncScriptOp is scriptOp routed through the SyncStore's locked mutators.
func syncScriptOp(w *syncWorld, j int) error {
	if j == 3 {
		e := w.elems[len(w.elems)-1]
		if err := w.ss.DeleteElement(e); err != nil {
			return err
		}
		w.elems = w.elems[:len(w.elems)-1]
		w.oracle.Delete(e.Start)
		w.oracle.Delete(e.End)
		return nil
	}
	at := w.elems[(j*3)%4]
	ne, err := w.ss.InsertElementBefore(at.End)
	if err != nil {
		return err
	}
	if err := w.oracle.InsertElementBefore(ne, at.End); err != nil {
		return err
	}
	w.elems = append(w.elems, ne)
	return nil
}

// TestHotBackupDuringWorkload snapshots the store while a writer is in the
// middle of the script. The backup must verify fsck-clean, open without
// any WAL replay, and hold exactly the labels of some operation boundary
// between the last op known finished before the copy and the first known
// after it.
func TestHotBackupDuringWorkload(t *testing.T) {
	for _, cfg := range matrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			base := filepath.Join(dir, "base.box")
			baseLIDs, baseElems := buildBase(t, base, cfg)

			// LID allocation is deterministic, so a clean replay on a copy
			// yields the oracle state after every op boundary.
			golden := filepath.Join(dir, "golden.box")
			copyStore(t, base, golden)
			snapshots, _ := goldenRun(t, golden, cfg, baseLIDs, baseElems)

			work := filepath.Join(dir, "work.box")
			copyStore(t, base, work)
			fb, err := pager.OpenFileOpts(work, pager.FileOptions{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			st, err := core.OpenExisting(fb, runtimeOpts())
			if err != nil {
				t.Fatal(err)
			}
			ss := core.NewSyncStore(st)

			var done atomic.Int32
			werrc := make(chan error, 1)
			go func() {
				defer close(werrc)
				w := &syncWorld{ss: ss, oracle: order.NewOracle()}
				w.oracle.Load(baseLIDs)
				w.elems = append(w.elems, baseElems...)
				for j := 0; j < scriptOps; j++ {
					if err := syncScriptOp(w, j); err != nil {
						werrc <- fmt.Errorf("writer op %d: %w", j, err)
						return
					}
					done.Add(1)
					time.Sleep(time.Millisecond)
				}
			}()

			for done.Load() < 2 {
				time.Sleep(100 * time.Microsecond)
			}
			lo := int(done.Load())
			backup := filepath.Join(dir, "backup.box")
			if err := ss.Backup(backup); err != nil {
				t.Fatalf("hot backup: %v", err)
			}
			hi := int(done.Load())
			if err, ok := <-werrc; ok && err != nil {
				t.Fatal(err)
			}
			if err := ss.Close(); err != nil {
				t.Fatal(err)
			}

			rep, err := fsck.Check(backup, fsck.Options{})
			if err != nil {
				t.Fatalf("fsck over the backup: %v", err)
			}
			if !rep.Clean() {
				t.Fatalf("backup is fsck-unclean: %v", rep.Problems)
			}
			bfb, err := pager.OpenFile(backup)
			if err != nil {
				t.Fatalf("open backup: %v", err)
			}
			defer bfb.Close()
			if rec := bfb.RecoveryInfo(); rec.Replayed || rec.DiscardedBytes > 0 {
				t.Fatalf("backup needed WAL recovery: %+v", rec)
			}
			bst, err := core.OpenExisting(bfb, runtimeOpts())
			if err != nil {
				t.Fatalf("OpenExisting over backup: %v", err)
			}
			if err := bst.CheckInvariants(); err != nil {
				t.Fatalf("backup invariants: %v", err)
			}

			// The copy ran between operations (mutators are excluded), so it
			// must sit at an exact boundary in [lo, hi+1]: the counter is
			// bumped after an op returns, so op hi+1 may have committed
			// before the copy started.
			hiK := hi + 1
			if hiK > scriptOps {
				hiK = scriptOps
			}
			var errs []string
			matched := -1
			for k := lo; k <= hiK; k++ {
				o := order.NewOracle()
				o.Load(snapshots[k])
				if err := o.CheckAgainst(bst.Labeler(), cfg.ordinal); err != nil {
					errs = append(errs, fmt.Sprintf("k=%d: %v", k, err))
					continue
				}
				matched = k
				break
			}
			if matched < 0 {
				t.Fatalf("backup matches no op boundary in [%d, %d]: %v", lo, hiK, errs)
			}
		})
	}
}

// TestCorruptReadsTypedUnderConcurrentReaders corrupts every data block
// under a live SyncStore and hammers it from concurrent readers: every
// lookup must either return the exact pre-corruption label or fail with
// the typed pager.ErrCorrupt — never a wrong or partial label. A mutation
// racing the readers hits the corruption on its write path and must flip
// the store into degraded mode. Run under -race in CI.
func TestCorruptReadsTypedUnderConcurrentReaders(t *testing.T) {
	cfg := matrix()[0] // wbox: every lookup does real block I/O
	dir := t.TempDir()
	path := filepath.Join(dir, "store.box")
	baseLIDs, baseElems := buildBase(t, path, cfg)

	fb, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	// Caching off and no block LRU: reads must reach the (corrupt) disk.
	st, err := core.OpenExisting(fb, core.Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	ss := core.NewSyncStore(st)

	// Expected labels before corruption; no mutation succeeds afterwards,
	// so they stay the only admissible lookup answers.
	expected := make(map[order.LID]order.Label, len(baseLIDs))
	for _, lid := range baseLIDs {
		lab, err := ss.Lookup(lid)
		if err != nil {
			t.Fatal(err)
		}
		expected[lid] = lab
	}

	// Rot every data block through a separate descriptor, under the open
	// store's feet (block 0 is the header; checksums live in the sidecar,
	// so the mismatch is detectable on every read).
	raw, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xAA}, blockSize)
	for id := pager.BlockID(1); id < fb.Bound(); id++ {
		if _, err := raw.WriteAt(junk, int64(id)*int64(blockSize)); err != nil {
			t.Fatal(err)
		}
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	var corrupt atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 25; pass++ {
				for _, lid := range baseLIDs {
					lab, err := ss.Lookup(lid)
					if err != nil {
						if !errors.Is(err, pager.ErrCorrupt) {
							t.Errorf("lookup of %d: error is not typed ErrCorrupt: %v", lid, err)
						}
						corrupt.Add(1)
						continue
					}
					if lab != expected[lid] {
						t.Errorf("lookup of %d: wrong label %v (want %v) instead of a typed error",
							lid, lab, expected[lid])
					}
				}
			}
		}()
	}

	// A mutation races the readers, hits the corruption on its write path,
	// and flips the store read-only; the readers above keep running.
	if _, err := ss.InsertElementBefore(baseElems[0].End); !errors.Is(err, pager.ErrCorrupt) {
		t.Fatalf("mutation over corrupt blocks returned %v, want ErrCorrupt", err)
	}
	if !ss.Degraded() {
		t.Fatal("write-path corruption did not flip degraded mode")
	}
	if _, err := ss.InsertElementBefore(baseElems[0].End); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("mutation in degraded mode returned %v, want ErrReadOnly", err)
	}
	wg.Wait()
	if corrupt.Load() == 0 {
		t.Fatal("no corrupt read was ever observed; the sweep is vacuous")
	}
}
