package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A cancelled context aborts the retry loop mid-backoff: the sleep is cut
// short and the error carries both ctx.Err and the last transient failure.
func TestDoCtxCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetrier(RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Hour, // without cancellation this test hangs
		Jitter:         0,
	})
	attempts := 0
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	retries, err := r.DoCtx(ctx, func() error {
		attempts++
		return ErrTransient
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff was not interrupted (took %v)", elapsed)
	}
	if attempts != 1 || retries != 0 {
		t.Fatalf("want 1 attempt, 0 retries; got %d, %d", attempts, retries)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want last transient failure in chain, got %v", err)
	}
}

// A deadline that expires between attempts stops the loop before the
// budget runs out.
func TestDoCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	r := NewRetrier(RetryPolicy{
		MaxAttempts:    1000,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		Jitter:         0,
	})
	_, err := r.DoCtx(ctx, func() error { return ErrTransient })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	var ex *ExhaustedError
	if errors.As(err, &ex) {
		t.Fatalf("deadline abort must not look like an exhausted budget: %v", err)
	}
}

// A context that is already dead fails before the first attempt runs.
func TestDoCtxDeadBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRetrier(DefaultRetryPolicy())
	ran := false
	_, err := r.DoCtx(ctx, func() error { ran = true; return nil })
	if ran {
		t.Fatal("fn ran under a dead context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// Cancellation is still a clean no-op for the healthy paths: success and
// permanent failure behave exactly like Do.
func TestDoCtxPassThrough(t *testing.T) {
	ctx := context.Background()
	r := NewRetrier(DefaultRetryPolicy())
	if retries, err := r.DoCtx(ctx, func() error { return nil }); err != nil || retries != 0 {
		t.Fatalf("success: retries=%d err=%v", retries, err)
	}
	perm := errors.New("permanent")
	if _, err := r.DoCtx(ctx, func() error { return perm }); !errors.Is(err, perm) {
		t.Fatalf("permanent error must return verbatim, got %v", err)
	}
	// A zero-backoff policy with ctx support still exhausts the budget.
	r2 := NewRetrier(RetryPolicy{MaxAttempts: 3})
	_, err := r2.DoCtx(ctx, func() error { return ErrTransient })
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("want ExhaustedError after 3 attempts, got %v", err)
	}
}
