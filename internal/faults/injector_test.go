package faults

import "testing"

func TestScheduleBudget(t *testing.T) {
	s := NewSchedule(1)
	s.SetBudget(3)
	for i := 0; i < 3; i++ {
		if d := s.Decide(OpWrite); d.Fail {
			t.Fatalf("op %d inside budget failed", i)
		}
	}
	d := s.Decide(OpRead)
	if !d.Fail || d.Mode != ModePermanent {
		t.Fatalf("post-budget op: %+v, want permanent failure", d)
	}
	if s.Injected() != 1 || s.Ops() != 4 {
		t.Fatalf("injected=%d ops=%d", s.Injected(), s.Ops())
	}
}

func TestScheduleFailNextHeals(t *testing.T) {
	s := NewSchedule(1)
	s.ArmFailNext(2)
	for i := 0; i < 2; i++ {
		d := s.Decide(OpWrite)
		if !d.Fail || d.Mode != ModeTransient {
			t.Fatalf("armed op %d: %+v, want transient failure", i, d)
		}
	}
	if s.Armed() != 0 {
		t.Fatalf("burst not drained")
	}
	if d := s.Decide(OpWrite); d.Fail {
		t.Fatalf("healed op failed: %+v", d)
	}
}

func TestScheduleCrashAtWrite(t *testing.T) {
	s := NewSchedule(1)
	s.CrashAtWrite(2, true)
	if d := s.Decide(OpWrite); d.Fail {
		t.Fatalf("write 1 failed early")
	}
	if d := s.Decide(OpRead); d.Fail {
		t.Fatalf("reads do not advance the write clock")
	}
	d := s.Decide(OpWrite)
	if !d.Fail || d.Mode != ModeCrash || !d.Torn {
		t.Fatalf("crash point: %+v, want torn crash", d)
	}
	if !s.Dead() {
		t.Fatalf("device should be dead")
	}
	// Everything after the cut fails, reads included, without counting.
	opsBefore := s.Ops()
	if d := s.Decide(OpRead); !d.Fail || d.Mode != ModeCrash {
		t.Fatalf("post-crash read: %+v", d)
	}
	if s.Ops() != opsBefore {
		t.Fatalf("dead-device ops were counted")
	}
	if s.Writes() != 2 {
		t.Fatalf("writes = %d, want 2", s.Writes())
	}
}

func TestScheduleEveryKth(t *testing.T) {
	s := NewSchedule(1)
	s.FailEveryKth(3, ModeTransient, OpWrite)
	fails := 0
	for i := 0; i < 9; i++ {
		if d := s.Decide(OpWrite); d.Fail {
			if d.Mode != ModeTransient {
				t.Fatalf("mode %v", d.Mode)
			}
			fails++
		}
		if d := s.Decide(OpRead); d.Fail {
			t.Fatalf("read failed under a write-only rule")
		}
	}
	if fails != 3 {
		t.Fatalf("9 writes with k=3: %d failures, want 3", fails)
	}
}

func TestScheduleSeededProbabilityDeterministic(t *testing.T) {
	run := func() []bool {
		s := NewSchedule(99)
		s.FailWithProbability(0.3, ModeTransient)
		out := make([]bool, 50)
		for i := range out {
			out[i] = s.Decide(OpWrite).Fail
		}
		return out
	}
	a, b := run(), run()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule at op %d", i)
		}
		some = some || a[i]
	}
	if !some {
		t.Fatalf("p=0.3 over 50 ops fired nothing")
	}
}
