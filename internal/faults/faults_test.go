package faults

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"
)

type methodTransient struct{ t bool }

func (m methodTransient) Error() string   { return "method-marked" }
func (m methodTransient) Transient() bool { return m.t }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Permanent},
		{"plain", errors.New("boom"), Permanent},
		{"marker", ErrTransient, Transient},
		{"wrapped marker", fmt.Errorf("write: %w", ErrTransient), Transient},
		{"method true", methodTransient{t: true}, Transient},
		{"method false", methodTransient{t: false}, Permanent},
		{"eintr", fmt.Errorf("pread: %w", syscall.EINTR), Transient},
		{"eagain", syscall.EAGAIN, Transient},
		{"short write", io.ErrShortWrite, Transient},
		{"enospc", syscall.ENOSPC, Permanent},
		{"exhausted wraps transient", &ExhaustedError{Attempts: 3, Err: ErrTransient}, Permanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetrierSucceedsAfterTransients(t *testing.T) {
	var slept []time.Duration
	r := NewRetrier(RetryPolicy{
		MaxAttempts:    5,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		Multiplier:     2,
		Seed:           7,
		Sleep:          func(d time.Duration) { slept = append(slept, d) },
	})
	calls := 0
	retries, err := r.Do(func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flap: %w", ErrTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 and 3", retries, calls)
	}
	// Jitter 0: backoffs are exactly 1ms then 2ms.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestRetrierPermanentStopsImmediately(t *testing.T) {
	r := NewRetrier(DefaultRetryPolicy())
	boom := errors.New("device on fire")
	calls := 0
	retries, err := r.Do(func() error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the permanent error verbatim", err)
	}
	if retries != 0 || calls != 1 {
		t.Fatalf("retries=%d calls=%d, want no retries of a permanent error", retries, calls)
	}
}

func TestRetrierExhaustion(t *testing.T) {
	p := DefaultRetryPolicy()
	p.MaxAttempts = 3
	p.Sleep = func(time.Duration) {}
	r := NewRetrier(p)
	calls := 0
	retries, err := r.Do(func() error {
		calls++
		return fmt.Errorf("still flapping: %w", ErrTransient)
	})
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("err = %v, want ExhaustedError with 3 attempts", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted error should wrap its transient cause, got %v", err)
	}
	if Classify(err) != Permanent {
		t.Fatalf("an exhausted budget must classify Permanent")
	}
}

func TestRetrierJitterDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		var slept []time.Duration
		r := NewRetrier(RetryPolicy{
			MaxAttempts:    6,
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     80 * time.Millisecond,
			Multiplier:     2,
			Jitter:         0.5,
			Seed:           42,
			Sleep:          func(d time.Duration) { slept = append(slept, d) },
		})
		r.Do(func() error { return ErrTransient })
		return slept
	}
	a, b := mk(), mk()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("want 5 sleeps, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different jitter: %v vs %v", a, b)
		}
		base := 10 * time.Millisecond << i
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if a[i] > base || a[i] < base/2 {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, a[i], base/2, base)
		}
	}
}
