package faults

import (
	"math/rand"
	"sync"
)

// Op is the kind of backend operation a fault decision applies to.
type Op int

const (
	OpRead Op = iota
	OpWrite
	OpAllocate
	OpFree
	// OpSync is an fsync/durability barrier. Faults injected on it must
	// surface as SyncError so they classify Permanent (never retried).
	OpSync
	numOps
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAllocate:
		return "allocate"
	case OpFree:
		return "free"
	case OpSync:
		return "sync"
	default:
		return "op?"
	}
}

// Mode is how an injected fault behaves.
type Mode int

const (
	// ModeTransient faults clear on retry (classified Transient).
	ModeTransient Mode = iota
	// ModePermanent faults persist for the failing call but the device
	// keeps answering (classified Permanent).
	ModePermanent
	// ModeCrash kills the device: the failing operation and every
	// operation after it fail, reads included, until reopen.
	ModeCrash
	// ModeNoSpace fails a write with ErrNoSpace: the device is full but
	// healthy, so the op aborts cleanly and later ops may succeed.
	ModeNoSpace
)

func (m Mode) String() string {
	switch m {
	case ModeTransient:
		return "transient"
	case ModePermanent:
		return "permanent"
	case ModeCrash:
		return "crash"
	case ModeNoSpace:
		return "nospace"
	default:
		return "mode?"
	}
}

// Decision is an Injector's verdict for one operation.
type Decision struct {
	Fail bool
	Mode Mode
	// Torn marks a crashing write that persists a torn half-block image
	// before dying (only meaningful with Fail && Mode == ModeCrash on
	// OpWrite).
	Torn bool
}

// Injector decides, per operation, whether a fault fires. Implementations
// must be safe for concurrent use; Schedule is the standard one.
type Injector interface {
	Decide(op Op) Decision
}

// Schedule is the one deterministic, seeded fault engine behind the
// pager's injection backends (FlakyBackend, CrashBackend, FaultBackend).
// It composes every historical injection shape — a success budget that
// then fails permanently, an armed burst of transient faults, a power cut
// at the n-th write (optionally torn), a fault every k-th operation, and
// seeded random faults — under one precedence order, so the crash matrix
// and the retry tests share fault schedules that replay exactly.
//
// Decision precedence: dead device > armed transient burst > crash point >
// every-k-th > random > exhausted budget.
type Schedule struct {
	mu  sync.Mutex
	rng *rand.Rand

	budget   int // ops that succeed before permanent failure; < 0 = unlimited
	failNext int // burst: fail this many ops transiently, then heal

	crashAtWrite int // 1-based write that cuts power; 0 = never
	crashTorn    bool

	noSpaceAtWrite int // 1-based write that hits ENOSPC (one-shot); 0 = never
	failSyncAt     int // 1-based sync that fails (one-shot); 0 = never

	everyK    int // every k-th eligible op fails; 0 = off
	everyMode Mode
	everyOps  [numOps]bool
	matched   int // eligible ops seen by the every-k-th rule

	prob     float64 // per-eligible-op fault probability; 0 = off
	probMode Mode
	probOps  [numOps]bool

	ops      int // total operations decided (while alive)
	writes   int // write operations decided (while alive)
	syncs    int // sync operations decided (while alive)
	injected int // faults fired, the dead-device tail excluded
	dead     bool
}

// NewSchedule returns an empty schedule (no faults) with a deterministic
// jitter stream seeded by seed (0 means 1).
func NewSchedule(seed int64) *Schedule {
	if seed == 0 {
		seed = 1
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), budget: -1}
}

// SetBudget allows n operations to succeed before every further one fails
// permanently (a device that dies and stays dead, but keeps answering).
// Negative n removes the budget.
func (s *Schedule) SetBudget(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = n
}

// ArmFailNext makes the next n operations fail transiently, after which
// the device heals.
func (s *Schedule) ArmFailNext(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNext = n
}

// Armed reports how many transient burst failures remain armed.
func (s *Schedule) Armed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failNext
}

// CrashAtWrite cuts power at the n-th write (1-based; 0 disables). With
// torn set, the fatal write is marked torn so the backend persists a
// half-written image first.
func (s *Schedule) CrashAtWrite(n int, torn bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashAtWrite = n
	s.crashTorn = torn
}

// NoSpaceAtWrite makes the n-th write (1-based; 0 disables) fail with
// ErrNoSpace, one-shot: the device is full for exactly that write and
// has space again afterward — the sharpest probe of the clean-abort
// contract (the op must roll back to pre-op state and the next op must
// succeed).
func (s *Schedule) NoSpaceAtWrite(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noSpaceAtWrite = n
}

// FailSyncAt makes the n-th sync (1-based; 0 disables) fail, one-shot.
// Backends render the failure as a SyncError, which classifies
// Permanent regardless of errno — a failed fsync must never be
// retried-and-trusted.
func (s *Schedule) FailSyncAt(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failSyncAt = n
}

// Syncs reports the sync operations decided while the device was alive.
func (s *Schedule) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// FailEveryKth fires a fault of the given mode on every k-th eligible
// operation (k <= 0 disables). ops restricts eligibility; none means all.
func (s *Schedule) FailEveryKth(k int, mode Mode, ops ...Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.everyK = k
	s.everyMode = mode
	s.everyOps = opMask(ops)
	s.matched = 0
}

// FailWithProbability fires a fault of the given mode on each eligible
// operation with probability p, drawn from the schedule's seeded stream.
// ops restricts eligibility; none means all.
func (s *Schedule) FailWithProbability(p float64, mode Mode, ops ...Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prob = p
	s.probMode = mode
	s.probOps = opMask(ops)
}

func opMask(ops []Op) [numOps]bool {
	var m [numOps]bool
	if len(ops) == 0 {
		for i := range m {
			m[i] = true
		}
		return m
	}
	for _, o := range ops {
		if o >= 0 && o < numOps {
			m[o] = true
		}
	}
	return m
}

// Ops reports the operations decided while the device was alive.
func (s *Schedule) Ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Writes reports the write operations decided while the device was alive.
func (s *Schedule) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Injected reports the faults fired so far (the dead-device tail, where
// every operation fails, is not counted).
func (s *Schedule) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// Dead reports whether a crash point has fired.
func (s *Schedule) Dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// Decide implements Injector.
func (s *Schedule) Decide(op Op) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return Decision{Fail: true, Mode: ModeCrash}
	}
	s.ops++
	if op == OpWrite {
		s.writes++
	}
	if op == OpSync {
		s.syncs++
	}
	if s.failNext > 0 {
		s.failNext--
		s.injected++
		return Decision{Fail: true, Mode: ModeTransient}
	}
	if s.crashAtWrite > 0 && op == OpWrite && s.writes == s.crashAtWrite {
		s.dead = true
		s.injected++
		return Decision{Fail: true, Mode: ModeCrash, Torn: s.crashTorn}
	}
	if s.noSpaceAtWrite > 0 && op == OpWrite && s.writes == s.noSpaceAtWrite {
		s.noSpaceAtWrite = 0
		s.injected++
		return Decision{Fail: true, Mode: ModeNoSpace}
	}
	if s.failSyncAt > 0 && op == OpSync && s.syncs == s.failSyncAt {
		s.failSyncAt = 0
		s.injected++
		return Decision{Fail: true, Mode: ModePermanent}
	}
	if s.everyK > 0 && s.everyOps[op] {
		s.matched++
		if s.matched%s.everyK == 0 {
			s.injected++
			return Decision{Fail: true, Mode: s.everyMode}
		}
	}
	if s.prob > 0 && s.probOps[op] && s.rng.Float64() < s.prob {
		s.injected++
		return Decision{Fail: true, Mode: s.probMode}
	}
	if s.budget >= 0 && s.ops > s.budget {
		s.injected++
		return Decision{Fail: true, Mode: ModePermanent}
	}
	return Decision{}
}
