package faults

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
)

// TestClassifySyncErrorPermanent pins the fsyncgate rule: an error that
// passed through an fsync classifies Permanent even when the wrapped
// errno is one Classify would otherwise call Transient — after a failed
// fsync the kernel may have dropped the dirty pages, so "retry and trust
// the next success" silently loses the write.
func TestClassifySyncErrorPermanent(t *testing.T) {
	cases := []error{
		&SyncError{Err: errors.New("EIO")},
		&SyncError{Err: syscall.EINTR},
		&SyncError{Err: ErrTransient},
		fmt.Errorf("commit: %w", &SyncError{Err: syscall.EAGAIN}),
	}
	for _, err := range cases {
		if got := Classify(err); got != Permanent {
			t.Errorf("Classify(%v) = %v, want Permanent", err, got)
		}
	}
}

// TestClassifyNoSpacePermanent: a full disk is not a flake — backoff and
// retry cannot create free space, so ErrNoSpace (and raw ENOSPC) must
// classify Permanent and skip the retry loop entirely.
func TestClassifyNoSpacePermanent(t *testing.T) {
	cases := []error{
		ErrNoSpace,
		fmt.Errorf("wal append: %w", ErrNoSpace),
		syscall.ENOSPC,
		fmt.Errorf("pwrite: %w", syscall.ENOSPC),
	}
	for _, err := range cases {
		if got := Classify(err); got != Permanent {
			t.Errorf("Classify(%v) = %v, want Permanent", err, got)
		}
	}
}

// TestScheduleNoSpaceAtWrite checks the one-shot full-disk injection: the
// n-th write fails with ModeNoSpace, everything before and after is
// healthy (space "came back").
func TestScheduleNoSpaceAtWrite(t *testing.T) {
	s := NewSchedule(1)
	s.NoSpaceAtWrite(2)
	if d := s.Decide(OpWrite); d.Fail {
		t.Fatalf("write 1 failed early: %+v", d)
	}
	d := s.Decide(OpWrite)
	if !d.Fail || d.Mode != ModeNoSpace {
		t.Fatalf("write 2: %+v, want ModeNoSpace failure", d)
	}
	if d := s.Decide(OpWrite); d.Fail {
		t.Fatalf("write 3 failed after the one-shot: %+v", d)
	}
	if s.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", s.Injected())
	}
}

// TestScheduleFailSyncAt checks the sync-point clock: only OpSync
// decisions advance it, and the armed sync fails exactly once.
func TestScheduleFailSyncAt(t *testing.T) {
	s := NewSchedule(1)
	s.FailSyncAt(2)
	if d := s.Decide(OpSync); d.Fail {
		t.Fatalf("sync 1 failed early: %+v", d)
	}
	if d := s.Decide(OpWrite); d.Fail {
		t.Fatalf("writes must not advance the sync clock: %+v", d)
	}
	d := s.Decide(OpSync)
	if !d.Fail {
		t.Fatalf("sync 2: %+v, want failure", d)
	}
	if s.Syncs() != 2 {
		t.Fatalf("syncs = %d, want 2", s.Syncs())
	}
	if d := s.Decide(OpSync); d.Fail {
		t.Fatalf("sync 3 failed after the one-shot: %+v", d)
	}
}
