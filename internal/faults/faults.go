// Package faults is the error taxonomy and fault-handling toolkit shared
// by the pager and its tests: it classifies backend errors as transient or
// permanent, runs bounded retry loops with exponential backoff and seeded
// jitter, and provides one deterministic, seeded fault Schedule behind
// which the pager's injection backends (flaky, crash) are unified.
//
// The package sits below the pager (it imports nothing from this module),
// so both production code and fault-injection tests can share it without
// cycles.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"syscall"
	"time"
)

// Class partitions backend errors by whether retrying can help.
type Class int

const (
	// Permanent errors do not go away by retrying: corruption, closed
	// backends, crashed devices, exhausted retry budgets, logic errors.
	Permanent Class = iota
	// Transient errors are expected to succeed on retry: interrupted
	// syscalls, short writes, injected faults marked transient.
	Transient
)

func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// ErrTransient marks an error as retryable. Fault injectors and backends
// wrap it (fmt.Errorf("...%w...", faults.ErrTransient)) to signal that the
// failure is expected to clear on retry.
var ErrTransient = errors.New("transient fault")

// ErrNoSpace marks a write that failed because the device is out of
// space. It is Permanent for retry purposes (retrying in a tight loop
// will not free disk), but unlike other permanent write faults the store
// aborts the current transaction cleanly and stays writable — the next
// op may succeed once space is reclaimed. The pager re-exports it as
// pager.ErrNoSpace.
var ErrNoSpace = errors.New("no space left on device")

// SyncError wraps a failed fsync. An fsync failure is categorically
// non-retryable no matter what errno it carries: after a failed fsync
// the kernel may have dropped the dirty pages, so a later fsync that
// returns nil proves nothing about the earlier writes (the "fsyncgate"
// semantics). Classify reports it Permanent even when the wrapped cause
// is nominally transient, and the Retrier therefore never re-runs it.
type SyncError struct {
	Err error
}

func (e *SyncError) Error() string {
	return fmt.Sprintf("faults: fsync failed (non-retryable): %v", e.Err)
}

func (e *SyncError) Unwrap() error { return e.Err }

// transienter is the interface form of the transient marker, for errors
// that cannot wrap ErrTransient directly.
type transienter interface {
	Transient() bool
}

// Classify sorts err into Transient or Permanent.
//
// An exhausted retry budget (ExhaustedError) is Permanent even though it
// wraps a transient cause — retrying has already been tried. A failed
// fsync (SyncError) is Permanent regardless of the wrapped errno: the
// kernel may already have dropped the dirty pages, so retrying the sync
// cannot re-establish durability (checked before the transient markers
// so a SyncError wrapping EINTR still refuses retry). ENOSPC
// (ErrNoSpace) is Permanent — space does not come back in a backoff
// loop. Everything explicitly marked transient (ErrTransient, a
// Transient() bool method), interrupted or would-block syscalls, and
// short writes are Transient. Everything else — including nil — is
// Permanent: the caller only asks after a failure, and an unknown
// failure must not be retried blindly.
func Classify(err error) Class {
	if err == nil {
		return Permanent
	}
	var ex *ExhaustedError
	if errors.As(err, &ex) {
		return Permanent
	}
	var se *SyncError
	if errors.As(err, &se) {
		return Permanent
	}
	if errors.Is(err, ErrNoSpace) || errors.Is(err, syscall.ENOSPC) {
		return Permanent
	}
	if errors.Is(err, ErrTransient) {
		return Transient
	}
	var t transienter
	if errors.As(err, &t) && t.Transient() {
		return Transient
	}
	if errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN) {
		return Transient
	}
	if errors.Is(err, io.ErrShortWrite) {
		return Transient
	}
	return Permanent
}

// ExhaustedError reports a retry loop that ran out of attempts. It wraps
// the final transient cause; Classify reports it Permanent.
type ExhaustedError struct {
	Attempts int   // total attempts made (initial try + retries)
	Err      error // the last failure
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("faults: %d attempts exhausted: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// RetryPolicy bounds a retry loop. The zero value is useless; start from
// DefaultRetryPolicy and override.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values below 1 are treated as 1 (no retries).
	MaxAttempts int
	// InitialBackoff is the sleep before the first retry.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier grows the backoff between retries (values below 1 mean 2).
	Multiplier float64
	// Jitter is the fraction of each backoff randomized away, in [0, 1]:
	// the actual sleep is backoff * (1 - Jitter*u) for uniform u in [0, 1).
	Jitter float64
	// Seed makes the jitter sequence deterministic; 0 means seed 1.
	Seed int64
	// Sleep replaces time.Sleep, for tests. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is a sane bounded budget: 4 attempts, 1ms initial
// backoff doubling to at most 50ms, half-jittered.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.5,
	}
}

// Retrier runs functions under a RetryPolicy. It is safe for concurrent
// use; the jitter stream is shared (mutex-guarded) so a fixed seed still
// yields a deterministic sequence under sequential use.
type Retrier struct {
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetrier builds a Retrier from p, normalizing out-of-range fields.
func NewRetrier(p RetryPolicy) *Retrier {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.MaxBackoff > 0 && p.InitialBackoff > p.MaxBackoff {
		p.InitialBackoff = p.MaxBackoff
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return &Retrier{policy: p, rng: rand.New(rand.NewSource(seed))}
}

// Policy returns the normalized policy the retrier runs under.
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// Do runs fn until it succeeds, fails permanently, or the attempt budget
// runs out. It returns the number of retries performed (0 when the first
// attempt settled it) and the outcome: nil, the permanent error verbatim,
// or an ExhaustedError wrapping the last transient failure.
func (r *Retrier) Do(fn func() error) (retries int, err error) {
	return r.DoCtx(context.Background(), fn)
}

// DoCtx is Do with cancellation: a context that expires aborts the loop —
// including mid-backoff, where the sleep is cut short — and the call
// returns ctx.Err() wrapped with the last transient failure (or alone when
// the context was dead before the first attempt). The deadline paths of a
// network client and a draining server both need this: a bounded retry
// budget must never outlive the request it serves.
func (r *Retrier) DoCtx(ctx context.Context, fn func() error) (retries int, err error) {
	if cerr := ctx.Err(); cerr != nil {
		return 0, cerr
	}
	backoff := r.policy.InitialBackoff
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || Classify(err) == Permanent {
			return attempt - 1, err
		}
		if attempt >= r.policy.MaxAttempts {
			return attempt - 1, &ExhaustedError{Attempts: attempt, Err: err}
		}
		if backoff > 0 {
			if !r.sleepCtx(ctx, r.jittered(backoff)) {
				return attempt - 1, fmt.Errorf("faults: retry aborted after %d attempt(s): %w (last failure: %w)",
					attempt, ctx.Err(), err)
			}
			backoff = time.Duration(float64(backoff) * r.policy.Multiplier)
			if r.policy.MaxBackoff > 0 && backoff > r.policy.MaxBackoff {
				backoff = r.policy.MaxBackoff
			}
		} else if cerr := ctx.Err(); cerr != nil {
			return attempt - 1, fmt.Errorf("faults: retry aborted after %d attempt(s): %w (last failure: %w)",
				attempt, cerr, err)
		}
	}
}

func (r *Retrier) jittered(d time.Duration) time.Duration {
	if r.policy.Jitter == 0 {
		return d
	}
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * (1 - r.policy.Jitter*u))
}

// sleepCtx sleeps for d or until ctx expires, whichever comes first, and
// reports whether the full sleep completed. A custom Sleep hook (tests)
// runs uninterruptible but still honors a context that was already dead.
func (r *Retrier) sleepCtx(ctx context.Context, d time.Duration) bool {
	if r.policy.Sleep != nil {
		r.policy.Sleep(d)
		return ctx.Err() == nil
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
