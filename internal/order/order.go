// Package order defines the types shared by every dynamic labeling scheme
// in this repository: immutable label IDs (LIDs), labels, the tag streams
// used for bulk loading, and the Labeler interface that W-BOX, B-BOX, and
// the naive baseline all implement.
//
// Terminology follows the paper. An XML element e carries a pair of labels
// (start, end); a *valid* labeling orders labels exactly as the
// corresponding tags appear in the document. Labels are dynamic — they may
// change on updates — so every label is reached through an immutable LID,
// a record number in the LIDF heap file (package lidf).
package order

import (
	"errors"
	"fmt"
	"math/big"
)

// LID is an immutable label identifier: the record number of the label's
// slot in the LIDF. The zero value is reserved and never identifies a
// label.
type LID uint64

// NilLID is the invalid LID.
const NilLID LID = 0

// Label is a dynamic label value. For W-BOX and naive-k it is the label
// integer itself; for B-BOX it is the packed component vector (see package
// bbox), which compares correctly as an unsigned integer among labels
// obtained at the same point in time.
type Label = uint64

// ElemLIDs holds the pair of LIDs assigned to one element.
type ElemLIDs struct {
	Start LID
	End   LID
}

// Tag is one start or end tag in a document tag stream. Elem identifies
// the element within the stream (indices are local to the stream) so that
// bulk loading can pair each start tag with its end tag.
type Tag struct {
	Elem  int32
	Start bool
}

// TagStreamFromPairs builds the canonical nested tag stream
// <0><1></1><2></2>...</0> used in tests.
func TagStreamFromPairs(n int) []Tag {
	tags := make([]Tag, 0, 2*n)
	tags = append(tags, Tag{Elem: 0, Start: true})
	for i := 1; i < n; i++ {
		tags = append(tags, Tag{Elem: int32(i), Start: true}, Tag{Elem: int32(i), Start: false})
	}
	tags = append(tags, Tag{Elem: 0, Start: false})
	return tags
}

// ValidateTagStream checks that tags form a well-formed document: every
// element has exactly one start and one end tag, properly nested, with the
// start first.
func ValidateTagStream(tags []Tag) error {
	if len(tags) == 0 {
		return errors.New("order: empty tag stream")
	}
	if len(tags)%2 != 0 {
		return errors.New("order: odd number of tags")
	}
	var stack []int32
	seen := make(map[int32]int, len(tags)/2)
	for i, t := range tags {
		if t.Start {
			if seen[t.Elem] != 0 {
				return fmt.Errorf("order: tag %d: element %d started twice", i, t.Elem)
			}
			seen[t.Elem] = 1
			stack = append(stack, t.Elem)
		} else {
			if len(stack) == 0 {
				return fmt.Errorf("order: tag %d: end tag with empty stack", i)
			}
			top := stack[len(stack)-1]
			if top != t.Elem {
				return fmt.Errorf("order: tag %d: end of %d does not match open %d", i, t.Elem, top)
			}
			if seen[t.Elem] != 1 {
				return fmt.Errorf("order: tag %d: element %d ended in state %d", i, t.Elem, seen[t.Elem])
			}
			seen[t.Elem] = 2
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("order: %d elements left open", len(stack))
	}
	return nil
}

// Errors shared by the labeling schemes.
var (
	// ErrUnknownLID is returned when a LID does not identify a live label.
	ErrUnknownLID = errors.New("order: unknown or deleted LID")
	// ErrNotEmpty is returned by bulk-loading into a non-empty structure.
	ErrNotEmpty = errors.New("order: structure is not empty")
	// ErrEmpty is returned by operations that need an existing label when
	// the structure is empty.
	ErrEmpty = errors.New("order: structure is empty")
	// ErrLabelOverflow is returned when a label no longer fits the
	// scheme's label width (e.g. the W-BOX range would exceed 64 bits).
	ErrLabelOverflow = errors.New("order: label width exhausted")
	// ErrNoOrdinal is returned by OrdinalLookup on a structure built
	// without ordinal support.
	ErrNoOrdinal = errors.New("order: ordinal labeling support not enabled")
)

// UpdateLogger receives a succinct description of every change a labeling
// scheme makes to existing label values. The caching-and-logging layer of
// Section 6 (package reflog) implements it to keep cached label values
// repairable without I/O.
type UpdateLogger interface {
	// LogShift records that every label in [lo, hi] changed by delta.
	LogShift(lo, hi Label, delta int64)
	// LogInvalidate records that labels in [lo, hi] changed in a way that
	// cannot be described succinctly; cached values in the range must be
	// re-fetched.
	LogInvalidate(lo, hi Label)
}

// LoggingLabeler is implemented by schemes that can report label-value
// changes to an UpdateLogger.
type LoggingLabeler interface {
	SetLogger(lg UpdateLogger)
}

// OrdinalLoggingLabeler is implemented by schemes with ordinal support
// that can report ordinal-label changes to an UpdateLogger. Ordinal
// effects are particularly succinct — an insertion at ordinal position o
// is exactly "[o, ∞): +1" (the paper's example "[142857, ∞): +2") and
// structural reorganizations never change ordinals at all.
type OrdinalLoggingLabeler interface {
	SetOrdinalLogger(lg UpdateLogger)
}

// BigLabeler is implemented by schemes whose labels can exceed 64 bits
// (naive-k for large k). Lookup on such schemes returns ErrLabelOverflow
// for oversized labels; LookupBig always works.
type BigLabeler interface {
	LookupBig(lid LID) (*big.Int, error)
}

// Labeler is the operational interface shared by W-BOX, B-BOX and naive-k.
// It corresponds one-to-one with the "Supported operations" list in
// Section 3 of the paper, plus the bulk operations of Sections 4 and 5.
type Labeler interface {
	// Lookup returns the current value of the label identified by lid.
	Lookup(lid LID) (Label, error)

	// InsertBefore inserts a new label immediately before the label
	// identified by lidOld and returns its LID. This is the low-level
	// operation the paper calls insert-before.
	InsertBefore(lidOld LID) (LID, error)

	// InsertElementBefore inserts a new element (a start/end label pair)
	// immediately before the tag identified by lidOld: if lidOld is a
	// start label the new element becomes the previous sibling; if it is
	// an end label the new element becomes the last child.
	InsertElementBefore(lidOld LID) (ElemLIDs, error)

	// InsertFirstElement bootstraps an empty structure with a single
	// element (used when a document is built element-at-a-time from
	// scratch, as in the XMark experiment).
	InsertFirstElement() (ElemLIDs, error)

	// Delete removes the label identified by lid.
	Delete(lid LID) error

	// BulkLoad builds the structure from a well-formed document tag
	// stream; the structure must be empty. The returned slice maps each
	// element index in the stream to its LID pair.
	BulkLoad(tags []Tag) ([]ElemLIDs, error)

	// InsertSubtreeBefore bulk-inserts a whole subtree (given as a tag
	// stream) immediately before the tag identified by lidOld.
	InsertSubtreeBefore(lidOld LID, tags []Tag) ([]ElemLIDs, error)

	// DeleteSubtree removes the contiguous label range
	// [label(start), label(end)], i.e. an element and all its
	// descendants. start and end must be the LIDs of one element's
	// start and end labels.
	DeleteSubtree(start, end LID) error

	// OrdinalLookup returns the exact ordinal position of the tag in the
	// document (0-based), for structures built with ordinal support.
	OrdinalLookup(lid LID) (uint64, error)

	// Count returns the number of live labels.
	Count() uint64

	// LabelBits returns the number of bits a label of this structure
	// currently requires (the paper's "length of a label" metric).
	LabelBits() int

	// Height returns the current tree height (1 = leaves only); the
	// naive scheme reports 1.
	Height() int

	// CheckInvariants validates every structural invariant the scheme
	// promises, returning the first violation. It is used heavily by the
	// property-based tests.
	CheckInvariants() error
}
