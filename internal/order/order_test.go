package order

import (
	"testing"
	"testing/quick"
)

func TestTagStreamFromPairs(t *testing.T) {
	tags := TagStreamFromPairs(3)
	if len(tags) != 6 {
		t.Fatalf("len = %d, want 6", len(tags))
	}
	if err := ValidateTagStream(tags); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTagStreamRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name string
		tags []Tag
	}{
		{"empty", nil},
		{"odd", []Tag{{0, true}}},
		{"unclosed", []Tag{{0, true}, {1, true}}},
		{"crossing", []Tag{{0, true}, {1, true}, {0, false}, {1, false}}},
		{"end-first", []Tag{{0, false}, {0, true}}},
		{"double-start", []Tag{{0, true}, {0, true}, {0, false}, {0, false}}},
	}
	for _, c := range cases {
		if err := ValidateTagStream(c.tags); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateTagStreamAcceptsNesting(t *testing.T) {
	tags := []Tag{
		{0, true},
		{1, true}, {2, true}, {2, false}, {1, false},
		{3, true}, {3, false},
		{0, false},
	}
	if err := ValidateTagStream(tags); err != nil {
		t.Fatal(err)
	}
}

func TestValidateQuickGeneratedPairs(t *testing.T) {
	f := func(n uint8) bool {
		m := int(n%50) + 1
		return ValidateTagStream(TagStreamFromPairs(m)) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOracleInsertDelete(t *testing.T) {
	o := NewOracle()
	if err := o.InsertFirstElement(ElemLIDs{Start: 1, End: 2}); err != nil {
		t.Fatal(err)
	}
	// New last child of element (1,2): insert before end LID 2.
	if err := o.InsertElementBefore(ElemLIDs{Start: 3, End: 4}, 2); err != nil {
		t.Fatal(err)
	}
	// New previous sibling of (3,4): insert before its start LID 3.
	if err := o.InsertElementBefore(ElemLIDs{Start: 5, End: 6}, 3); err != nil {
		t.Fatal(err)
	}
	want := []LID{1, 5, 6, 3, 4, 2}
	got := o.LIDs()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if err := o.DeleteRange(5, 6); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 || o.Position(5) != -1 || o.Position(3) != 1 {
		t.Fatalf("after range delete: %v", o.LIDs())
	}
	if err := o.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := o.Delete(3); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestOracleInsertSliceBefore(t *testing.T) {
	o := NewOracle()
	o.Load([]LID{1, 2})
	if err := o.InsertSliceBefore([]LID{10, 11, 12}, 2); err != nil {
		t.Fatal(err)
	}
	want := []LID{1, 10, 11, 12, 2}
	for i, w := range want {
		if o.LIDs()[i] != w {
			t.Fatalf("order = %v, want %v", o.LIDs(), want)
		}
	}
}
