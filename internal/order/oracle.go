package order

import (
	"fmt"
	"math/big"
)

// Oracle is a trivially correct in-memory reference model of a maintained
// ordered list of labels. Tests drive a Labeler and the Oracle with the
// same operations and then check that the Labeler's labels order its LIDs
// exactly as the Oracle does, and that ordinal labels equal Oracle
// positions. It is O(n) per operation and meant only for testing.
type Oracle struct {
	lids []LID
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle { return &Oracle{} }

// Load initializes the oracle with lids in document order.
func (o *Oracle) Load(lids []LID) {
	o.lids = append(o.lids[:0], lids...)
}

// Len returns the number of labels.
func (o *Oracle) Len() int { return len(o.lids) }

// LIDs returns the labels' LIDs in document order. The returned slice is
// the oracle's own storage; callers must not modify it.
func (o *Oracle) LIDs() []LID { return o.lids }

// Position returns the 0-based position of lid, or -1 if absent.
func (o *Oracle) Position(lid LID) int {
	for i, l := range o.lids {
		if l == lid {
			return i
		}
	}
	return -1
}

// InsertBefore records that newLID was inserted immediately before oldLID.
func (o *Oracle) InsertBefore(newLID, oldLID LID) error {
	p := o.Position(oldLID)
	if p < 0 {
		return fmt.Errorf("oracle: unknown LID %d", oldLID)
	}
	o.lids = append(o.lids, 0)
	copy(o.lids[p+1:], o.lids[p:])
	o.lids[p] = newLID
	return nil
}

// InsertElementBefore records an element insertion: start then end,
// immediately before oldLID.
func (o *Oracle) InsertElementBefore(e ElemLIDs, oldLID LID) error {
	if err := o.InsertBefore(e.End, oldLID); err != nil {
		return err
	}
	return o.InsertBefore(e.Start, e.End)
}

// InsertFirstElement records the bootstrap insertion into an empty list.
func (o *Oracle) InsertFirstElement(e ElemLIDs) error {
	if len(o.lids) != 0 {
		return fmt.Errorf("oracle: not empty")
	}
	o.lids = []LID{e.Start, e.End}
	return nil
}

// Delete removes lid.
func (o *Oracle) Delete(lid LID) error {
	p := o.Position(lid)
	if p < 0 {
		return fmt.Errorf("oracle: unknown LID %d", lid)
	}
	o.lids = append(o.lids[:p], o.lids[p+1:]...)
	return nil
}

// DeleteRange removes the contiguous range from start to end inclusive.
func (o *Oracle) DeleteRange(start, end LID) error {
	i, j := o.Position(start), o.Position(end)
	if i < 0 || j < 0 || i > j {
		return fmt.Errorf("oracle: bad range %d..%d (%d..%d)", start, end, i, j)
	}
	o.lids = append(o.lids[:i], o.lids[j+1:]...)
	return nil
}

// InsertSliceBefore inserts lids (in order) immediately before oldLID.
func (o *Oracle) InsertSliceBefore(lids []LID, oldLID LID) error {
	p := o.Position(oldLID)
	if p < 0 {
		return fmt.Errorf("oracle: unknown LID %d", oldLID)
	}
	out := make([]LID, 0, len(o.lids)+len(lids))
	out = append(out, o.lids[:p]...)
	out = append(out, lids...)
	out = append(out, o.lids[p:]...)
	o.lids = out
	return nil
}

// CheckAgainst verifies that the labeler assigns strictly increasing labels
// along the oracle's document order, and (if ordinals are enabled) that
// ordinal labels equal oracle positions.
func (o *Oracle) CheckAgainst(l Labeler, checkOrdinals bool) error {
	if got := l.Count(); got != uint64(len(o.lids)) {
		return fmt.Errorf("oracle: labeler holds %d labels, oracle %d", got, len(o.lids))
	}
	bl, isBig := l.(BigLabeler)
	var prevBig *big.Int
	var prev Label
	for i, lid := range o.lids {
		if isBig {
			lab, err := bl.LookupBig(lid)
			if err != nil {
				return fmt.Errorf("oracle: big lookup of lid %d (pos %d): %w", lid, i, err)
			}
			if i > 0 && lab.Cmp(prevBig) <= 0 {
				return fmt.Errorf("oracle: labels out of order at pos %d: %v <= %v", i, lab, prevBig)
			}
			prevBig = lab
			if checkOrdinals {
				ord, err := l.OrdinalLookup(lid)
				if err != nil {
					return fmt.Errorf("oracle: ordinal lookup of lid %d (pos %d): %w", lid, i, err)
				}
				if ord != uint64(i) {
					return fmt.Errorf("oracle: ordinal of lid %d = %d, want %d", lid, ord, i)
				}
			}
			continue
		}
		lab, err := l.Lookup(lid)
		if err != nil {
			return fmt.Errorf("oracle: lookup of lid %d (pos %d): %w", lid, i, err)
		}
		if i > 0 && lab <= prev {
			return fmt.Errorf("oracle: labels out of order at pos %d: %d <= %d", i, lab, prev)
		}
		prev = lab
		if checkOrdinals {
			ord, err := l.OrdinalLookup(lid)
			if err != nil {
				return fmt.Errorf("oracle: ordinal lookup of lid %d (pos %d): %w", lid, i, err)
			}
			if ord != uint64(i) {
				return fmt.Errorf("oracle: ordinal of lid %d = %d, want %d", lid, ord, i)
			}
		}
	}
	return nil
}
