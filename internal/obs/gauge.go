package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GaugeValue is one structural health sample: a metric family name, an
// ordered label set, and the value measured at collection time. Unlike the
// registry's counters — which accumulate events as they happen — gauges
// describe the *current shape* of a structure (tree height, occupancy,
// balance slack, fragmentation) and are evaluated only when someone asks.
type GaugeValue struct {
	Name   string      `json:"name"`
	Help   string      `json:"help,omitempty"`
	Labels [][2]string `json:"labels,omitempty"` // ordered key/value pairs
	Value  float64     `json:"value"`
}

// G builds a GaugeValue from alternating label key/value arguments:
//
//	G("boxes_tree_height", "Tree height in levels.", 3, "scheme", "W-BOX")
//
// An odd trailing key is ignored.
func G(name, help string, value float64, kv ...string) GaugeValue {
	g := GaugeValue{Name: name, Help: help, Value: value}
	for i := 0; i+1 < len(kv); i += 2 {
		g.Labels = append(g.Labels, [2]string{kv[i], kv[i+1]})
	}
	return g
}

// WithLabel returns a copy of gs with an extra label prepended to every
// value. The core layer uses it to stamp a store's scheme name onto the
// gauges its structures report.
func WithLabel(gs []GaugeValue, key, value string) []GaugeValue {
	out := make([]GaugeValue, len(gs))
	for i, g := range gs {
		labels := make([][2]string, 0, len(g.Labels)+1)
		labels = append(labels, [2]string{key, value})
		labels = append(labels, g.Labels...)
		g.Labels = labels
		out[i] = g
	}
	return out
}

// LabelString renders the label set in Prometheus selector form,
// `{k="v",...}`, with values escaped; empty labels render as "".
func (g GaugeValue) LabelString() string {
	if len(g.Labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range g.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, kv[0], escapeLabel(kv[1]))
	}
	b.WriteByte('}')
	return b.String()
}

// Key returns the gauge's fully qualified identity (name + rendered
// labels), the flattened form used by bench snapshots and crash dumps.
func (g GaugeValue) Key() string { return g.Name + g.LabelString() }

// Collector is a source of scrape-time gauges. Every structure in the
// repository (the BOXes, the LIDF, the modification log, the pager)
// implements it: collection walks the live structure, so values are always
// current, and structures that are expensive to walk pay that cost only
// when someone is looking.
//
// Collectors are invoked on the scraping goroutine. Structures in this
// repository follow a single-writer discipline, so register a collector
// for a live store only if scrapes are serialized against updates (see
// core.SyncStore) or the store is quiescent; collectors must tolerate
// failure mid-walk (e.g. injected I/O errors) by returning what they have,
// typically with a *_walk_errors gauge recording the interruption.
type Collector interface {
	CollectGauges() []GaugeValue
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []GaugeValue

// CollectGauges implements Collector.
func (f CollectorFunc) CollectGauges() []GaugeValue { return f() }

// RegisterCollector adds a scrape-time gauge source to the registry. The
// registry never copies gauge values between scrapes: each exposition (or
// Snapshot, or crash dump) re-evaluates every collector.
func (r *Registry) RegisterCollector(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// GatherGauges evaluates every registered collector, in registration
// order, and returns the concatenated samples.
func (r *Registry) GatherGauges() []GaugeValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	var out []GaugeValue
	for _, c := range cs {
		out = append(out, c.CollectGauges()...)
	}
	return out
}

// OccupancyBounds are the bucket bounds shared by the per-level
// node-occupancy distributions every tree structure exports, expressed as
// fill ratios (records or children held over the node's capacity).
var OccupancyBounds = []float64{0.25, 0.5, 0.75, 0.9, 1}

// BucketGauges renders a set of observations as a cumulative distribution
// in gauge form: one sample per bound carrying an `le` label (plus a final
// +Inf bucket), each counting the observations <= that bound. The extra
// label pairs in kv are attached to every sample. Gauge-form buckets let
// scrape-time distributions (occupancy, gap sizes) ride the same Collector
// path as scalar gauges.
func BucketGauges(name, help string, bounds []float64, values []float64, kv ...string) []GaugeValue {
	out := make([]GaugeValue, 0, len(bounds)+1)
	for _, b := range bounds {
		var n int
		for _, v := range values {
			if v <= b {
				n++
			}
		}
		le := strconv.FormatFloat(b, 'g', -1, 64)
		out = append(out, G(name, help, float64(n), append([]string{"le", le}, kv...)...))
	}
	out = append(out, G(name, help, float64(len(values)), append([]string{"le", "+Inf"}, kv...)...))
	return out
}

// gaugeFamily groups samples sharing a metric family name for exposition.
type gaugeFamily struct {
	name    string
	help    string
	samples []GaugeValue
}

// groupGauges buckets samples by family name, preserving first-seen order
// of families and sample order within each family, so that the exposition
// emits exactly one # TYPE line per family no matter how many schemes (or
// structures) report into the registry.
func groupGauges(gs []GaugeValue) []gaugeFamily {
	index := make(map[string]int, len(gs))
	var fams []gaugeFamily
	for _, g := range gs {
		i, ok := index[g.Name]
		if !ok {
			i = len(fams)
			index[g.Name] = i
			fams = append(fams, gaugeFamily{name: g.Name, help: g.Help})
		}
		if fams[i].help == "" {
			fams[i].help = g.Help
		}
		fams[i].samples = append(fams[i].samples, g)
	}
	return fams
}

// SortGauges orders samples by family name, then by rendered labels —
// the deterministic order used by reports and tests.
func SortGauges(gs []GaugeValue) {
	sort.SliceStable(gs, func(i, j int) bool {
		if gs[i].Name != gs[j].Name {
			return gs[i].Name < gs[j].Name
		}
		return gs[i].LabelString() < gs[j].LabelString()
	})
}
