package obs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestLedgerAttribution drives costs through the writer slot and checks
// every unit lands in the (scheme, op) cell that caused it.
func TestLedgerAttribution(t *testing.T) {
	r := NewRegistry()
	row := r.SchemeIndex("W-BOX")
	if row != 0 {
		t.Fatalf("first interned scheme got row %d, want 0", row)
	}

	r.SetWriterCell(row, OpInsert)
	r.Inc(CtrWBoxSplits)     // counter-fed cost
	r.CostRelabeled(10)      // direct cost, no structural counter
	r.CostIO(false, true, 5) // exclusive-path write
	r.ClearWriterOp()
	r.CostIO(true, false, 3) // shared read path: row 0, lookup

	cells := map[string]uint64{}
	for _, c := range r.LedgerCells() {
		cells[c.Scheme+"/"+c.Op+"/"+c.Kind] = c.Value
	}
	want := map[string]uint64{
		"W-BOX/insert/splits":            1,
		"W-BOX/insert/relabeled_records": 10,
		"W-BOX/insert/block_writes":      1,
		"W-BOX/lookup/block_reads":       1,
	}
	for k, v := range want {
		if cells[k] != v {
			t.Errorf("cell %s = %d, want %d (all: %v)", k, cells[k], v, cells)
		}
	}
	if len(cells) != len(want) {
		t.Errorf("unexpected extra cells: %v", cells)
	}
	if err := r.CheckLedger(true); err != nil {
		t.Errorf("strict conservation after attributed costs: %v", err)
	}
	if reads, writes := r.LedgerIO(); reads != 1 || writes != 1 {
		t.Errorf("LedgerIO = (%d, %d), want (1, 1)", reads, writes)
	}
}

// TestLedgerClearedSlotDefaultsToLookup checks unattributed work (no op in
// flight) lands in row 0's lookup cell rather than being dropped — the
// conservation invariant requires every unit to land somewhere.
func TestLedgerClearedSlotDefaultsToLookup(t *testing.T) {
	r := NewRegistry()
	r.SchemeIndex("W-BOX")
	r.CostRelabeled(3)
	cells := r.LedgerCells()
	if len(cells) != 1 || cells[0].Op != "lookup" || cells[0].Value != 3 {
		t.Fatalf("cells = %+v, want one lookup cell of 3", cells)
	}
	if err := r.CheckLedger(true); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

// TestCheckLedgerDetectsMissingCell breaks conservation from below (a total
// bumped without its cell) and checks even the relaxed form reports it.
func TestCheckLedgerDetectsMissingCell(t *testing.T) {
	r := NewRegistry()
	r.ledgerTotals[CostSplits].Add(1)
	err := r.CheckLedger(false)
	if err == nil || !strings.Contains(err.Error(), "cell sum") {
		t.Fatalf("err = %v, want cell-sum violation", err)
	}
}

// TestCheckLedgerStrictVsRelaxed bumps a cost-mapped structural counter
// without the ledger write that normally accompanies it: the monotone live
// form (counters run ahead of cells) must accept it, strict must not.
func TestCheckLedgerStrictVsRelaxed(t *testing.T) {
	r := NewRegistry()
	r.counters[CtrWBoxSplits].Add(1)
	if err := r.CheckLedger(false); err != nil {
		t.Errorf("relaxed check rejected counter-ahead state: %v", err)
	}
	if err := r.CheckLedger(true); err == nil {
		t.Error("strict check accepted counter/cell mismatch")
	}
}

// TestLedgerWindowRotation runs past the window size and checks the
// windowed gauges appear and reflect only the last completed window.
func TestLedgerWindowRotation(t *testing.T) {
	r := NewRegistry()
	scheme := "W-BOX"
	row := r.SchemeIndex(scheme)
	// First window: expensive inserts (10 relabeled records each).
	for i := 0; i < ledgerWindow; i++ {
		c := r.Begin(scheme, OpInsert, 0, 0)
		r.SetWriterCell(row, OpInsert)
		r.CostRelabeled(10)
		r.ClearWriterOp()
		r.End(c, 0, 0, nil)
	}
	// Second window: free inserts.
	for i := 0; i < ledgerWindow; i++ {
		c := r.Begin(scheme, OpInsert, 0, 0)
		r.End(c, 0, 0, nil)
	}
	gs := map[string]float64{}
	for _, g := range r.AmortizedGauges(scheme) {
		gs[g.Name] = g.Value
	}
	if got := gs["boxes_amortized_relabels_per_insert"]; got != 5 {
		t.Errorf("lifetime relabels/insert = %v, want 5 (half expensive, half free)", got)
	}
	if got, ok := gs["boxes_amortized_window_relabels_per_insert"]; !ok || got != 0 {
		t.Errorf("window relabels/insert = %v (present=%v), want 0 for the free second window", got, ok)
	}
	if err := r.CheckLedger(true); err != nil {
		t.Errorf("conservation after windows: %v", err)
	}
}

// TestSchemeInterningOverflow interns more schemes than the ledger has
// rows: overflow shares the last row and conservation still holds.
func TestSchemeInterningOverflow(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 12; i++ {
		idx := r.SchemeIndex(fmt.Sprintf("scheme-%d", i))
		want := i
		if want >= maxLedgerSchemes {
			want = maxLedgerSchemes - 1
		}
		if idx != want {
			t.Errorf("scheme-%d interned to row %d, want %d", i, idx, want)
		}
	}
	if n := len(r.LedgerSchemes()); n != maxLedgerSchemes {
		t.Errorf("%d ledger rows named, want %d", n, maxLedgerSchemes)
	}
	// Re-interning is stable.
	if idx := r.SchemeIndex("scheme-3"); idx != 3 {
		t.Errorf("re-intern scheme-3 = %d, want 3", idx)
	}
	r.SetWriterCell(r.SchemeIndex("scheme-11"), OpInsert)
	r.CostRelabeled(2)
	r.ClearWriterOp()
	if err := r.CheckLedger(true); err != nil {
		t.Errorf("conservation with overflow rows: %v", err)
	}
}

// TestExpositionIncludesLedger checks /metrics carries the cost cells and
// the amortized gauges once ops have run.
func TestExpositionIncludesLedger(t *testing.T) {
	r := NewRegistry()
	row := r.SchemeIndex("W-BOX")
	c := r.Begin("W-BOX", OpInsert, 0, 0)
	r.SetWriterCell(row, OpInsert)
	r.Inc(CtrWBoxSplits)
	r.ClearWriterOp()
	r.End(c, 0, 0, nil)

	text := r.String()
	for _, want := range []string{
		`boxes_cost_total{scheme="W-BOX",op="insert",kind="splits"} 1`,
		`boxes_cost_ops_total{scheme="W-BOX",op="insert"} 1`,
		`boxes_amortized_splits_per_insert{scheme="W-BOX"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestFormatLedger exercises the human rendering used by boxinspect
// -ledger and the boxtop panel.
func TestFormatLedger(t *testing.T) {
	r := NewRegistry()
	row := r.SchemeIndex("B-BOX")
	c := r.Begin("B-BOX", OpDelete, 0, 0)
	r.SetWriterCell(row, OpDelete)
	r.Inc(CtrBBoxMerges)
	r.ClearWriterOp()
	r.End(c, 0, 0, nil)

	out := FormatLedger(r)
	for _, want := range []string{"scheme B-BOX", "merges", "conservation: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatLedger output missing %q:\n%s", want, out)
		}
	}
}

// TestLedgerErroredOpsStillCount: failed operations still paid their costs,
// so they must count toward the op totals the ratios divide by.
func TestLedgerErroredOpsStillCount(t *testing.T) {
	r := NewRegistry()
	c := r.Begin("W-BOX", OpInsert, 0, 0)
	r.End(c, 0, 0, errors.New("injected"))
	ops := r.LedgerOpCounts()
	if len(ops) != 1 || ops[0].Count != 1 {
		t.Fatalf("op counts = %+v, want one insert", ops)
	}
}
