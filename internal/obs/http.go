package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry at /metrics in
// Prometheus text format, a JSON latency-attribution summary at
// /debug/spans (per-op and per-phase p50/p99 plus captured slow ops — what
// cmd/boxtop renders), the cost ledger and heat maps at /debug/heat, plus
// the standard net/http/pprof profiling endpoints under /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.SpansDebug())
	})
	mux.HandleFunc("/debug/heat", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.HeatDebug())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts serving Handler(r) on addr (":0" picks a free port) in a
// background goroutine and returns the listener, whose Addr reports the
// bound address. Close the listener to stop serving.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln, nil
}
