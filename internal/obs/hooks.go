package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Event describes one completed operation, delivered to TraceHook.OpEnd.
type Event struct {
	Scheme   string        // labeling scheme of the store that ran the op
	Op       Op            // operation kind
	Start    time.Time     // when the operation began
	Duration time.Duration // wall time
	Reads    uint64        // block reads charged to this operation
	Writes   uint64        // block writes charged to this operation
	Err      error         // the operation's error, if any
	Class    string        // faults classification of Err ("transient"/"permanent"), "" on success
}

// TraceHook observes operation boundaries. Implementations must be safe
// for concurrent use and should be fast: hooks run inline on the
// operation's goroutine.
type TraceHook interface {
	// OpStart fires when an operation begins.
	OpStart(scheme string, op Op)
	// OpEnd fires when an operation completes, with its I/O delta and
	// duration.
	OpEnd(ev Event)
}

// SlogHook is a TraceHook emitting one structured log record per completed
// operation (and, optionally, per start) via log/slog.
type SlogHook struct {
	Logger *slog.Logger
	Level  slog.Level
	// LogStarts additionally emits a record at operation start.
	LogStarts bool
}

// NewSlogHook creates a hook logging completed operations at LevelDebug.
// A nil logger uses slog.Default().
func NewSlogHook(l *slog.Logger) *SlogHook {
	if l == nil {
		l = slog.Default()
	}
	return &SlogHook{Logger: l, Level: slog.LevelDebug}
}

// OpStart implements TraceHook.
func (h *SlogHook) OpStart(scheme string, op Op) {
	if !h.LogStarts || !h.Logger.Enabled(context.Background(), h.Level) {
		return
	}
	h.Logger.LogAttrs(context.Background(), h.Level, "boxes.op.start",
		slog.String("scheme", scheme),
		slog.String("op", op.String()),
	)
}

// OpEnd implements TraceHook.
func (h *SlogHook) OpEnd(ev Event) {
	if !h.Logger.Enabled(context.Background(), h.Level) {
		return
	}
	attrs := []slog.Attr{
		slog.String("scheme", ev.Scheme),
		slog.String("op", ev.Op.String()),
		slog.Duration("duration", ev.Duration),
		slog.Uint64("reads", ev.Reads),
		slog.Uint64("writes", ev.Writes),
	}
	if ev.Err != nil {
		attrs = append(attrs, slog.String("error", ev.Err.Error()))
		if ev.Class != "" {
			attrs = append(attrs, slog.String("error_class", ev.Class))
		}
	}
	h.Logger.LogAttrs(context.Background(), h.Level, "boxes.op", attrs...)
}

// RingEvent is one record captured by a RingHook: either an operation
// start (Start == true, Event carries scheme and op only) or a completed
// operation with its full Event.
type RingEvent struct {
	Start bool
	Event Event
}

// RingHook is a TraceHook retaining the last N events in a ring buffer.
// It exists for tests and post-mortem inspection of recent operations.
type RingHook struct {
	mu      sync.Mutex
	buf     []RingEvent
	next    int
	wrapped bool
}

// NewRingHook creates a ring hook retaining the last n events (n < 1 is
// treated as 64).
func NewRingHook(n int) *RingHook {
	if n < 1 {
		n = 64
	}
	return &RingHook{buf: make([]RingEvent, n)}
}

func (h *RingHook) push(ev RingEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buf[h.next] = ev
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.wrapped = true
	}
}

// OpStart implements TraceHook.
func (h *RingHook) OpStart(scheme string, op Op) {
	h.push(RingEvent{Start: true, Event: Event{Scheme: scheme, Op: op}})
}

// OpEnd implements TraceHook.
func (h *RingHook) OpEnd(ev Event) {
	h.push(RingEvent{Event: ev})
}

// Events returns the retained events, oldest first.
func (h *RingHook) Events() []RingEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.wrapped {
		out := make([]RingEvent, h.next)
		copy(out, h.buf[:h.next])
		return out
	}
	out := make([]RingEvent, 0, len(h.buf))
	out = append(out, h.buf[h.next:]...)
	out = append(out, h.buf[:h.next]...)
	return out
}

var (
	_ TraceHook = (*SlogHook)(nil)
	_ TraceHook = (*RingHook)(nil)
)
