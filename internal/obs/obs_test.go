package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	h := &hist{bounds: ioBounds}
	// One observation exactly on each bound lands in that bound's bucket.
	for _, b := range ioBounds {
		h.observe(b)
	}
	for i, b := range ioBounds {
		if got := h.counts[i].Load(); got != 1 {
			t.Errorf("bucket le=%d: count %d, want 1", b, got)
		}
	}
	if got := h.counts[len(ioBounds)].Load(); got != 0 {
		t.Errorf("overflow bucket: count %d, want 0", got)
	}
	// One past the largest bound overflows.
	h.observe(ioBounds[len(ioBounds)-1] + 1)
	if got := h.counts[len(ioBounds)].Load(); got != 1 {
		t.Errorf("overflow bucket after big observation: count %d, want 1", got)
	}
	// A bound+1 value in the middle lands in the next bucket (le semantics).
	h2 := &hist{bounds: ioBounds}
	h2.observe(3) // bounds ... 2, 4 ... => le=4 bucket, index 3
	if got := h2.counts[3].Load(); got != 1 {
		t.Errorf("observe(3): le=4 bucket count %d, want 1", got)
	}
	var wantSum uint64
	for _, b := range ioBounds {
		wantSum += b
	}
	wantSum += ioBounds[len(ioBounds)-1] + 1
	if got := h.sum.Load(); got != wantSum {
		t.Errorf("sum %d, want %d", got, wantSum)
	}
}

func TestLatencyBoundsShape(t *testing.T) {
	if len(latencyBounds)+1 > maxBuckets || len(ioBounds)+1 > maxBuckets {
		t.Fatalf("bounds exceed maxBuckets=%d", maxBuckets)
	}
	for i := 1; i < len(latencyBounds); i++ {
		if latencyBounds[i] != latencyBounds[i-1]*2 {
			t.Fatalf("latency bounds not exponential at %d", i)
		}
	}
}

func TestBeginEndRecords(t *testing.T) {
	r := NewRegistry()
	c := r.Begin("W-BOX", OpInsert, 10, 20)
	r.End(c, 13, 25, nil)
	if got := r.OpCount(OpInsert); got != 1 {
		t.Fatalf("OpCount = %d, want 1", got)
	}
	s := r.Snapshot().Ops["insert"]
	if s.Reads.Sum != 3 || s.Writes.Sum != 5 {
		t.Errorf("I/O delta sums = (%d, %d), want (3, 5)", s.Reads.Sum, s.Writes.Sum)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d, want 0", s.Errors)
	}
	// Errors count; counter reset mid-op saturates instead of wrapping.
	c = r.Begin("W-BOX", OpInsert, 100, 100)
	r.End(c, 0, 0, errors.New("boom"))
	s = r.Snapshot().Ops["insert"]
	if s.Errors != 1 {
		t.Errorf("errors = %d, want 1", s.Errors)
	}
	if s.Reads.Sum != 3 || s.Writes.Sum != 5 {
		t.Errorf("saturated delta changed sums to (%d, %d)", s.Reads.Sum, s.Writes.Sum)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Inc(CtrWBoxSplits)
	r.Add(CtrWBoxSplits, 3)
	r.SetScheme("W-BOX")
	r.AddHook(NewRingHook(4))
	c := r.Begin("W-BOX", OpLookup, 0, 0)
	r.End(c, 1, 1, nil)
	if r.Counter(CtrWBoxSplits) != 0 || r.OpCount(OpLookup) != 0 {
		t.Fatal("nil registry recorded something")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
	snap := r.Snapshot()
	if len(snap.Ops) != 0 && snap.Ops["lookup"].Count != 0 {
		t.Fatal("nil snapshot non-empty")
	}
}

func TestNoHookFastPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	allocs := testing.AllocsPerRun(1000, func() {
		c := r.Begin("W-BOX", OpLookup, 0, 0)
		r.End(c, 1, 0, nil)
	})
	if allocs != 0 {
		t.Fatalf("no-hook Begin/End allocates %v times per op, want 0", allocs)
	}
}

func TestTraceHookOrderingAndPayload(t *testing.T) {
	r := NewRegistry()
	h := NewRingHook(8)
	r.AddHook(h)
	c := r.Begin("B-BOX", OpDelete, 5, 5)
	r.End(c, 7, 6, nil)
	evs := h.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (start, end)", len(evs))
	}
	if !evs[0].Start || evs[1].Start {
		t.Fatalf("event order wrong: %+v", evs)
	}
	end := evs[1].Event
	if end.Scheme != "B-BOX" || end.Op != OpDelete || end.Reads != 2 || end.Writes != 1 {
		t.Errorf("end event payload = %+v", end)
	}
	if end.Duration < 0 {
		t.Errorf("negative duration %v", end.Duration)
	}
}

func TestRingHookWraps(t *testing.T) {
	h := NewRingHook(3)
	for i := 0; i < 5; i++ {
		h.OpEnd(Event{Op: Op(i % int(numOps)), Duration: time.Duration(i)})
	}
	evs := h.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Oldest-first: durations 2, 3, 4.
	for i, ev := range evs {
		if ev.Event.Duration != time.Duration(i+2) {
			t.Fatalf("event %d has duration %v, want %d", i, ev.Event.Duration, i+2)
		}
	}
}

func TestWriteToPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.SetScheme("W-BOX")
	r.Inc(CtrWBoxSplits)
	r.Add(CtrLIDFAllocs, 7)
	c := r.Begin("W-BOX", OpLookup, 0, 0)
	r.End(c, 2, 0, nil)

	out := r.String()
	for _, want := range []string{
		`boxes_store_info{scheme="W-BOX"} 1`,
		`boxes_ops_total{op="lookup"} 1`,
		`boxes_op_errors_total{op="lookup"} 0`,
		`# TYPE boxes_op_duration_seconds histogram`,
		`boxes_op_reads_bucket{op="lookup",le="2"} 1`,
		`boxes_op_reads_bucket{op="lookup",le="+Inf"} 1`,
		`boxes_op_reads_sum{op="lookup"} 2`,
		`boxes_op_reads_count{op="lookup"} 1`,
		"wbox_splits_total 1",
		"lidf_allocs_total 7",
		"bbox_rebuilds_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and end with the count.
	if !strings.Contains(out, `boxes_op_reads_bucket{op="lookup",le="0"} 0`) {
		t.Error("le=0 bucket should be 0 (observation was 2 reads)")
	}
}

func TestFormatCounters(t *testing.T) {
	r := NewRegistry()
	r.Inc(CtrBBoxMerges)
	r.Add(CtrBBoxSplits, 2)
	got := r.Snapshot().FormatCounters()
	if got != "bbox_merges_total=1 bbox_splits_total=2" {
		t.Fatalf("FormatCounters = %q", got)
	}
}

func TestSnapshotTotals(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		c := r.Begin("naive", OpDelete, 0, 0)
		r.End(c, uint64(i), 0, nil)
	}
	s := r.Snapshot().Ops["delete"]
	if s.Count != 5 || s.Reads.Total() != 5 {
		t.Fatalf("snapshot count=%d reads.Total=%d, want 5/5", s.Count, s.Reads.Total())
	}
	if s.Reads.Sum != 0+1+2+3+4 {
		t.Fatalf("reads sum = %d, want 10", s.Reads.Sum)
	}
}
