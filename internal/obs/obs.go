// Package obs is the observability subsystem shared by every layer of the
// repository: a low-overhead metrics registry (atomic counters and
// fixed-bucket histograms, no external dependencies), per-operation series
// recording wall time and block-I/O deltas, and a pluggable trace-hook
// interface for structured operation logging.
//
// The paper's entire argument is an I/O-accounting argument — W-BOX's
// 1-I/O lookups, B-BOX's O(1) amortized updates, the caching layer's
// near-zero read cost — and the online-labeling literature frames every
// bound as per-update amortized work. The registry makes those quantities
// observable on real workloads: each logical operation is charged its own
// I/O delta (captured via pager.Store counter snapshots around the
// operation) and its own wall time, and every structural event the
// amortization hides (splits, relabels, rebuilds, merges, cache repairs)
// has a dedicated counter.
//
// The no-hook fast path performs no allocations: Begin/End manipulate a
// by-value OpCtx and atomic counters only, so instrumentation can stay on
// in production.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/faults"
)

// Op identifies one per-operation metric series.
type Op uint8

// The operation kinds recorded by the registry. They correspond to the
// Labeler operations the paper analyses, plus bulk loading and invariant
// checking (the latter so that tools can report check durations from the
// same snapshot).
const (
	OpLookup Op = iota
	OpInsert
	OpDelete
	OpSubtreeInsert
	OpSubtreeDelete
	OpBulkLoad
	OpCheck
	OpBatch
	numOps
)

var opNames = [numOps]string{
	OpLookup:        "lookup",
	OpInsert:        "insert",
	OpDelete:        "delete",
	OpSubtreeInsert: "subtree_insert",
	OpSubtreeDelete: "subtree_delete",
	OpBulkLoad:      "bulk_load",
	OpCheck:         "check",
	OpBatch:         "batch",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Ops returns every operation kind, in exposition order.
func Ops() []Op {
	out := make([]Op, numOps)
	for i := range out {
		out[i] = Op(i)
	}
	return out
}

// Counter identifies one structural counter: an event the amortized
// analyses hide inside per-update bounds.
type Counter uint8

// Structural counters wired into the hot paths of every layer.
const (
	// CtrWBoxSplits counts W-BOX node splits (Section 4).
	CtrWBoxSplits Counter = iota
	// CtrWBoxRelabels counts the subtree relabelings piggybacked on W-BOX
	// splits (the O(w(n)/B) work the weight-balanced analysis amortizes).
	CtrWBoxRelabels
	// CtrWBoxReclaims counts tombstone reclaims on insertion.
	CtrWBoxReclaims
	// CtrWBoxRebuilds counts W-BOX global rebuilds (tombstones reached
	// half the structure, or a bulk insert rebuilt the tree).
	CtrWBoxRebuilds
	// CtrBBoxSplits counts B-BOX node splits (Section 5).
	CtrBBoxSplits
	// CtrBBoxBorrows counts B-BOX underflow repairs by borrowing.
	CtrBBoxBorrows
	// CtrBBoxMerges counts B-BOX underflow repairs by merging.
	CtrBBoxMerges
	// CtrBBoxRebuilds counts B-BOX global rebuilds (subtree splice fell
	// back to rebuilding the whole tree).
	CtrBBoxRebuilds
	// CtrNaiveRelabels counts naive-k global relabelings.
	CtrNaiveRelabels
	// CtrLIDFAllocs counts LIDF record allocations.
	CtrLIDFAllocs
	// CtrLIDFFrees counts LIDF record frees.
	CtrLIDFFrees
	// CtrPagerCacheHits counts global LRU block-cache hits.
	CtrPagerCacheHits
	// CtrPagerCacheMisses counts global LRU block-cache misses.
	CtrPagerCacheMisses
	// CtrPagerIOErrors counts backend I/O failures surfaced by the pager.
	CtrPagerIOErrors
	// CtrPagerInjectedFailures counts failures injected by a FlakyBackend,
	// so fault-injection runs are observable.
	CtrPagerInjectedFailures
	// CtrPagerWALCommits counts write-ahead log transactions committed.
	CtrPagerWALCommits
	// CtrPagerWALFrames counts block images appended to the write-ahead log.
	CtrPagerWALFrames
	// CtrPagerWALSyncs counts write-ahead log fsyncs — the durability
	// points. Group commit amortizes several transactions over one.
	CtrPagerWALSyncs
	// CtrPagerWALGroups counts commit groups flushed by the group-commit
	// committer (each covers one or more transactions and one WAL fsync).
	CtrPagerWALGroups
	// CtrPagerChecksumFailures counts blocks whose CRC32-C did not match
	// their contents on read — detected corruption.
	CtrPagerChecksumFailures
	// CtrReflogHits counts cache lookups answered fresh (Section 6).
	CtrReflogHits
	// CtrReflogRepairs counts cache lookups repaired by log replay.
	CtrReflogRepairs
	// CtrReflogMisses counts cache lookups that paid the full I/O cost.
	CtrReflogMisses
	// CtrReflogInvalidations counts invalidation sweeps pushed into the
	// modification log (updates whose effects are not succinct).
	CtrReflogInvalidations
	// CtrPagerRetries counts retry attempts after transient backend
	// failures (one per re-issued operation, successful or not).
	CtrPagerRetries
	// CtrPagerRetrySuccesses counts operations that succeeded only after
	// one or more retries — transient faults absorbed by the retry layer.
	CtrPagerRetrySuccesses
	// CtrPagerRetryExhausted counts operations whose retry budget ran out,
	// surfacing the fault as a permanent error.
	CtrPagerRetryExhausted
	// CtrPagerScrubBlocks counts blocks whose checksums the online
	// scrubber verified.
	CtrPagerScrubBlocks
	// CtrPagerScrubCorrupt counts corrupt blocks the scrubber found.
	CtrPagerScrubCorrupt
	// CtrPagerScrubRepairs counts corrupt blocks the scrubber repaired
	// from a committed WAL or group-commit image.
	CtrPagerScrubRepairs
	// CtrPagerScrubPasses counts completed full scrub passes.
	CtrPagerScrubPasses
	// CtrCoreDegraded counts transitions of a store into read-only
	// degraded mode after a permanent write-path fault.
	CtrCoreDegraded
	// CtrPagerPoisoned counts backends poisoned by a failed fsync or a
	// post-durability-point commit failure (see pager.ErrPoisoned).
	CtrPagerPoisoned
	// CtrCoreOpAborts counts durable operations rolled back cleanly to
	// the committed state after a commit failure that did not degrade the
	// store (ENOSPC, transient commit faults).
	CtrCoreOpAborts
	// CtrSimHistories counts simulated histories run to completion by the
	// deterministic simulation harness (internal/sim).
	CtrSimHistories
	// CtrSimOps counts logical operations executed across simulated
	// histories.
	CtrSimOps
	// CtrSimRestarts counts crash-restart cycles (close, fsck, reopen,
	// oracle resync) the simulator drove.
	CtrSimRestarts
	// CtrSimFaultsCrash counts injected power cuts (full and torn).
	CtrSimFaultsCrash
	// CtrSimFaultsNoSpace counts injected ENOSPC write failures.
	CtrSimFaultsNoSpace
	// CtrSimFaultsSyncFail counts injected fsync failures.
	CtrSimFaultsSyncFail
	// CtrSimFaultsTransient counts injected transient I/O flakes.
	CtrSimFaultsTransient
	// CtrSimRedoCrashes counts second crashes injected during WAL redo
	// (crash-during-recovery points).
	CtrSimRedoCrashes
	// CtrSimMinimizeRuns counts replays executed by the history minimizer
	// while shrinking a failure.
	CtrSimMinimizeRuns
	// CtrSimMinimizeEventsIn counts events entering the minimizer (the
	// failing traces' sizes); together with CtrSimMinimizeEventsOut it
	// yields the harness's aggregate shrink ratio.
	CtrSimMinimizeEventsIn
	// CtrSimMinimizeEventsOut counts events surviving minimization.
	CtrSimMinimizeEventsOut
	numCounters
)

var counterNames = [numCounters]string{
	CtrWBoxSplits:            "wbox_splits_total",
	CtrWBoxRelabels:          "wbox_relabels_total",
	CtrWBoxReclaims:          "wbox_tombstone_reclaims_total",
	CtrWBoxRebuilds:          "wbox_rebuilds_total",
	CtrBBoxSplits:            "bbox_splits_total",
	CtrBBoxBorrows:           "bbox_borrows_total",
	CtrBBoxMerges:            "bbox_merges_total",
	CtrBBoxRebuilds:          "bbox_rebuilds_total",
	CtrNaiveRelabels:         "naive_relabels_total",
	CtrLIDFAllocs:            "lidf_allocs_total",
	CtrLIDFFrees:             "lidf_frees_total",
	CtrPagerCacheHits:        "pager_cache_hits_total",
	CtrPagerCacheMisses:      "pager_cache_misses_total",
	CtrPagerIOErrors:         "pager_io_errors_total",
	CtrPagerInjectedFailures: "pager_injected_failures_total",
	CtrPagerWALCommits:       "pager_wal_commits_total",
	CtrPagerWALFrames:        "pager_wal_frames_total",
	CtrPagerWALSyncs:         "pager_wal_syncs_total",
	CtrPagerWALGroups:        "pager_wal_groups_total",
	CtrPagerChecksumFailures: "pager_checksum_failures_total",
	CtrReflogHits:            "reflog_cache_hits_total",
	CtrReflogRepairs:         "reflog_cache_repairs_total",
	CtrReflogMisses:          "reflog_cache_misses_total",
	CtrReflogInvalidations:   "reflog_invalidation_sweeps_total",
	CtrPagerRetries:          "pager_retries_total",
	CtrPagerRetrySuccesses:   "pager_retry_successes_total",
	CtrPagerRetryExhausted:   "pager_retry_exhausted_total",
	CtrPagerScrubBlocks:      "pager_scrub_blocks_total",
	CtrPagerScrubCorrupt:     "pager_scrub_corrupt_total",
	CtrPagerScrubRepairs:     "pager_scrub_repairs_total",
	CtrPagerScrubPasses:      "pager_scrub_passes_total",
	CtrCoreDegraded:          "core_degraded_transitions_total",
	CtrPagerPoisoned:         "pager_poisoned_total",
	CtrCoreOpAborts:          "core_op_aborts_total",
	CtrSimHistories:          "sim_histories_total",
	CtrSimOps:                "sim_ops_total",
	CtrSimRestarts:           "sim_restarts_total",
	CtrSimFaultsCrash:        "sim_faults_crash_total",
	CtrSimFaultsNoSpace:      "sim_faults_nospace_total",
	CtrSimFaultsSyncFail:     "sim_faults_syncfail_total",
	CtrSimFaultsTransient:    "sim_faults_transient_total",
	CtrSimRedoCrashes:        "sim_redo_crashes_total",
	CtrSimMinimizeRuns:       "sim_minimize_runs_total",
	CtrSimMinimizeEventsIn:   "sim_minimize_events_in_total",
	CtrSimMinimizeEventsOut:  "sim_minimize_events_out_total",
}

func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown_total"
}

// Histogram bucket bounds. Latency bounds are exponential in nanoseconds
// (1.024µs .. ~1.07s); I/O-delta bounds are 0 plus powers of two, matching
// the per-op block counts the paper reports (1-I/O lookups, O(log_B N)
// updates, occasional O(N/B) rebuild spikes).
var (
	latencyBounds = func() []uint64 {
		b := make([]uint64, 21)
		for i := range b {
			b[i] = 1024 << uint(i)
		}
		return b
	}()
	ioBounds = []uint64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// maxBuckets bounds the per-histogram counter array (largest bound set
// plus one overflow bucket).
const maxBuckets = 22

// hist is a fixed-bucket histogram with atomic counters. counts[i] holds
// observations <= bounds[i]; counts[len(bounds)] is the overflow bucket.
type hist struct {
	bounds []uint64
	counts [maxBuckets]atomic.Uint64
	sum    atomic.Uint64
}

func (h *hist) observe(v uint64) {
	h.sum.Add(v)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// opSeries is the per-operation metric bundle: invocation and error
// counts, a wall-time histogram, and read/write I/O-delta histograms.
type opSeries struct {
	count   atomic.Uint64
	errors  atomic.Uint64
	latency hist
	reads   hist
	writes  hist
}

// LockKind distinguishes the SyncStore lock paths whose acquisition waits
// are recorded via ObserveLockWait.
type LockKind uint8

const (
	// LockRead is the shared path (lookups under the read lock).
	LockRead LockKind = iota
	// LockWrite is the exclusive path (mutations under the write lock).
	LockWrite
	numLockKinds
)

var lockKindNames = [numLockKinds]string{
	LockRead:  "read",
	LockWrite: "write",
}

func (k LockKind) String() string {
	if int(k) < len(lockKindNames) {
		return lockKindNames[k]
	}
	return "unknown"
}

// Registry is the metrics hub one store (or a whole benchmark run) reports
// into. All methods are safe for concurrent use and nil-receiver-safe, so
// uninstrumented configurations cost a single predicted branch.
type Registry struct {
	counters  [numCounters]atomic.Uint64
	ops       [numOps]opSeries
	lockWaits [numLockKinds]hist
	phases    [numPhaseRows][numPhases]hist
	writerOp  atomic.Int32 // packed current exclusive-section cell; see SetWriterCell
	tracer    *Tracer
	hooks     atomic.Pointer[[]TraceHook]

	// Amortized-cost ledger (ledger.go): per-(scheme, op, kind) attribution
	// cells, per-kind global totals, per-(scheme, op) completed-op counts,
	// and the sliding amortization window.
	ledgerCells    [maxLedgerSchemes][numOps][numCostKinds]atomic.Uint64
	ledgerTotals   [numCostKinds]atomic.Uint64
	ledgerOps      [maxLedgerSchemes][numOps]atomic.Uint64
	ledgerOpsTotal atomic.Uint64
	ledgerIdx      atomic.Pointer[map[string]int] // scheme name -> ledger row

	winMu       sync.Mutex
	winStart    ledgerWindowSnap // ledger state at current window start
	winStartOps uint64
	winLast     ledgerWindowSnap // delta of the last completed window
	winLastOps  uint64

	// Heat maps (heat.go): insertion/reflog density over the label key
	// space and read/write heat over block ids.
	heatLabel heatSpace
	heatBlock heatSpace

	mu          sync.Mutex
	schemes     []string    // scheme names of the stores reporting here
	ledgerNames []string    // interned ledger row names, in row order
	collectors  []Collector // scrape-time gauge sources (RegisterCollector)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.ops {
		r.ops[i].latency.bounds = latencyBounds
		r.ops[i].reads.bounds = ioBounds
		r.ops[i].writes.bounds = ioBounds
	}
	for i := range r.lockWaits {
		r.lockWaits[i].bounds = latencyBounds
	}
	for row := range r.phases {
		for ph := range r.phases[row] {
			r.phases[row][ph].bounds = latencyBounds
		}
	}
	r.tracer = newTracer()
	r.heatLabel.initHeat("label", labelSeriesNames[:])
	r.heatBlock.initHeat("block", blockSeriesNames[:])
	r.RegisterCollector(CollectorFunc(func() []GaugeValue {
		out := r.amortizedGaugesAll()
		out = append(out, r.heatLabel.heatGauges()...)
		out = append(out, r.heatBlock.heatGauges()...)
		return out
	}))
	return r
}

// ObserveLockWait records how long one SyncStore lock acquisition waited.
// The shared read path should spend its time in the structure, not the
// lock; these histograms make reader starvation and writer convoying
// visible.
func (r *Registry) ObserveLockWait(k LockKind, d time.Duration) {
	if r == nil || k >= numLockKinds {
		return
	}
	if d < 0 {
		d = 0
	}
	r.lockWaits[k].observe(uint64(d))
}

// SetScheme records that a store using the named scheme reports into this
// registry (exposed as boxes_store_info). Duplicates are ignored.
func (r *Registry) SetScheme(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	seen := false
	for _, s := range r.schemes {
		if s == name {
			seen = true
			break
		}
	}
	if !seen {
		r.schemes = append(r.schemes, name)
	}
	r.mu.Unlock()
	// Intern the scheme into the ledger too, so the store's own scheme
	// claims row 0 before any operation runs.
	r.SchemeIndex(name)
}

// Schemes returns the scheme names recorded via SetScheme.
func (r *Registry) Schemes() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.schemes))
	copy(out, r.schemes)
	return out
}

// AddHook installs a trace hook. Hooks should be installed before
// operations begin; installation is safe concurrently with running
// operations, but an operation in flight when the hook is added may miss
// its start event.
func (r *Registry) AddHook(h TraceHook) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.hooks.Load()
	var next []TraceHook
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, h)
	r.hooks.Store(&next)
}

// Inc adds one to a structural counter and, for ledger-mapped counters,
// attributes the event to the current writer cell (counter first, then
// cell, then total — the order the conservation invariant relies on).
func (r *Registry) Inc(c Counter) {
	if r == nil {
		return
	}
	r.counters[c].Add(1)
	if k := counterCost[c]; k >= 0 {
		r.costAdd(CostKind(k), 1)
	}
}

// Add adds n to a structural counter, with the same ledger attribution as
// Inc.
func (r *Registry) Add(c Counter, n uint64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
	if k := counterCost[c]; k >= 0 {
		r.costAdd(CostKind(k), n)
	}
}

// Counter reads a structural counter.
func (r *Registry) Counter(c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// OpCount reads the invocation count of an operation series.
func (r *Registry) OpCount(op Op) uint64 {
	if r == nil {
		return 0
	}
	return r.ops[op].count.Load()
}

// OpCtx carries one in-flight operation's starting point between Begin and
// End. It is passed by value and never escapes, keeping the fast path
// allocation-free.
type OpCtx struct {
	scheme    string
	schemeIdx int // ledger row of scheme
	op        Op
	start     time.Time
	reads     uint64
	writes    uint64
	active    bool
}

// Begin opens a per-operation measurement: reads/writes are the pager's
// cumulative I/O counters at operation start. The scheme name is carried
// into trace events.
func (r *Registry) Begin(scheme string, op Op, reads, writes uint64) OpCtx {
	if r == nil {
		return OpCtx{}
	}
	c := OpCtx{scheme: scheme, schemeIdx: r.SchemeIndex(scheme), op: op, start: time.Now(), reads: reads, writes: writes, active: true}
	if hooks := r.hooks.Load(); hooks != nil {
		for _, h := range *hooks {
			h.OpStart(scheme, op)
		}
	}
	return c
}

// End closes a measurement opened by Begin: reads/writes are the pager's
// cumulative counters at operation end; the element-wise difference from
// the Begin snapshot is the operation's I/O charge. It returns the measured
// wall time so callers can attribute a residual phase (zero for an inactive
// context).
func (r *Registry) End(c OpCtx, reads, writes uint64, err error) time.Duration {
	if r == nil || !c.active {
		return 0
	}
	d := time.Since(c.start)
	if d < 0 {
		d = 0
	}
	dr := satSub(reads, c.reads)
	dw := satSub(writes, c.writes)
	s := &r.ops[c.op]
	s.count.Add(1)
	r.noteLedgerOp(c.schemeIdx, c.op)
	if err != nil {
		s.errors.Add(1)
	}
	s.latency.observe(uint64(d))
	s.reads.observe(dr)
	s.writes.observe(dw)
	if hooks := r.hooks.Load(); hooks != nil {
		ev := Event{
			Scheme:   c.scheme,
			Op:       c.op,
			Start:    c.start,
			Duration: d,
			Reads:    dr,
			Writes:   dw,
			Err:      err,
		}
		if err != nil {
			ev.Class = faults.Classify(err).String()
		}
		for _, h := range *hooks {
			h.OpEnd(ev)
		}
	}
	return d
}

// satSub returns a-b, saturating at zero (the counters may have been reset
// mid-operation).
func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}
