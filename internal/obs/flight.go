// Flight recorder: a trace hook that retains the most recent operations
// and, the moment an operation fails, dumps them — together with a full
// metrics snapshot and the structural health gauges — to a JSON crash file
// for post-mortem analysis (boxinspect -crash pretty-prints one).
//
// The recorder exists because the failures that matter here are
// *structural*: an injected I/O fault or invariant violation surfaces as
// one failed operation, but the explanation lives in the events leading up
// to it (a rebuild storm, a split cascade, an exhausted gap) and in the
// shape of the structure at the instant of failure. The dump freezes both.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"boxes/internal/faults"
)

// EventRecord is the JSON-serializable form of a trace event.
type EventRecord struct {
	Start    bool      `json:"start,omitempty"` // an op-start marker (no timing)
	Scheme   string    `json:"scheme"`
	Op       string    `json:"op"`
	Began    time.Time `json:"began,omitempty"`
	Duration int64     `json:"duration_ns,omitempty"`
	Reads    uint64    `json:"reads,omitempty"`
	Writes   uint64    `json:"writes,omitempty"`
	Error    string    `json:"error,omitempty"`
	// ErrorClass is the faults classification of Error ("transient" or
	// "permanent"), so degraded-mode entries are distinguishable post-mortem.
	ErrorClass string `json:"error_class,omitempty"`
}

func toEventRecord(re RingEvent) EventRecord {
	r := EventRecord{
		Start:  re.Start,
		Scheme: re.Event.Scheme,
		Op:     re.Event.Op.String(),
	}
	if !re.Start {
		r.Began = re.Event.Start
		r.Duration = int64(re.Event.Duration)
		r.Reads = re.Event.Reads
		r.Writes = re.Event.Writes
		if re.Event.Err != nil {
			r.Error = re.Event.Err.Error()
			r.ErrorClass = re.Event.Class
			if r.ErrorClass == "" {
				r.ErrorClass = faults.Classify(re.Event.Err).String()
			}
		}
	}
	return r
}

// CrashDump is the on-disk schema of one flight-recorder dump.
type CrashDump struct {
	Version int           `json:"version"`
	Time    time.Time     `json:"time"`
	Trigger EventRecord   `json:"trigger"`        // the operation that failed
	Tags    StringMap     `json:"tags,omitempty"` // caller-supplied context (crash point, stage, ...)
	Events  []EventRecord `json:"recent_events"`  // ring contents, oldest first
	Metrics Snapshot      `json:"metrics"`        // full registry snapshot
	Gauges  []GaugeValue  `json:"gauges"`         // structural health at dump time
	// SlowOps carries the span trees of recent slow operations when the
	// registry's tracer captured any (additive; absent in older dumps).
	SlowOps []SlowOp `json:"slow_ops,omitempty"`
}

// StringMap is a plain string-to-string map; the alias keeps the CrashDump
// schema self-describing.
type StringMap = map[string]string

// crashDumpVersion is bumped whenever the CrashDump schema changes shape.
const crashDumpVersion = 1

// FlightRecorder is a TraceHook that keeps the last N operation events in
// a ring and dumps a crash file on every operation error. Install it on a
// registry with AddHook (core.Options.CrashDir does this for stores).
//
// Gauge collection at dump time runs the registry's registered collectors;
// they walk structures that may be mid-failure, so collectors tolerate
// errors and the dump records whatever could be gathered.
type FlightRecorder struct {
	reg  *Registry
	ring *RingHook
	dir  string

	mu    sync.Mutex
	limit int
	dumps int
	last  string
	err   error
}

// NewFlightRecorder creates a recorder retaining the last ringSize events
// (ringSize < 1 selects 64) and writing crash files into dir (created on
// first dump). At most 8 dumps are written per recorder, so a persistent
// fault (e.g. a dead disk) cannot flood the directory; raise or lower the
// cap with SetDumpLimit.
func NewFlightRecorder(reg *Registry, dir string, ringSize int) *FlightRecorder {
	return &FlightRecorder{reg: reg, ring: NewRingHook(ringSize), dir: dir, limit: 8}
}

// SetDumpLimit caps the number of crash files this recorder will write.
func (f *FlightRecorder) SetDumpLimit(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.limit = n
}

// Dumps reports how many crash files have been written.
func (f *FlightRecorder) Dumps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dumps
}

// LastDump returns the path of the most recent crash file ("" if none).
func (f *FlightRecorder) LastDump() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Err returns the first error encountered while writing a dump, if any.
func (f *FlightRecorder) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// OpStart implements TraceHook.
func (f *FlightRecorder) OpStart(scheme string, op Op) { f.ring.OpStart(scheme, op) }

// OpEnd implements TraceHook: the event enters the ring, and if it failed
// the recorder writes a crash dump on the spot (on the operation's own
// goroutine, so the structure is not mutating underneath the gauge walk).
func (f *FlightRecorder) OpEnd(ev Event) {
	f.ring.OpEnd(ev)
	if ev.Err == nil {
		return
	}
	f.dump(ev, nil)
}

// DumpFailure writes a crash dump for a failure that is not a traced
// operation — a WAL recovery that errored at open, an fsck run that found
// problems, a crash-matrix reopen that did not come back clean. The stage
// names the phase ("recovery", "fsck", ...), err is the failure, and tags
// carry whatever context makes the dump actionable (crash point, torn
// flag, scheme, store path). Dumps count against the same limit as
// operation-failure dumps.
func (f *FlightRecorder) DumpFailure(stage string, err error, tags map[string]string) {
	if err == nil {
		return
	}
	f.dump(Event{Scheme: stage, Op: OpCheck, Err: err}, tags)
}

func (f *FlightRecorder) dump(ev Event, tags map[string]string) {
	f.mu.Lock()
	if f.limit >= 0 && f.dumps >= f.limit {
		f.mu.Unlock()
		return
	}
	f.dumps++
	seq := f.dumps
	f.mu.Unlock()

	events := f.ring.Events()
	recs := make([]EventRecord, len(events))
	for i, re := range events {
		recs[i] = toEventRecord(re)
	}
	snap := f.reg.Snapshot() // includes one gauge collection
	d := CrashDump{
		Version: crashDumpVersion,
		Time:    time.Now(),
		Trigger: toEventRecord(RingEvent{Event: ev}),
		Tags:    tags,
		Events:  recs,
		Metrics: snap,
		Gauges:  snap.Gauges,
		SlowOps: f.reg.Tracer().SlowOps(),
	}
	name := fmt.Sprintf("crash-%s-%s-%d-%d.json", sanitize(ev.Scheme), ev.Op, time.Now().UnixNano(), seq)
	path := filepath.Join(f.dir, name)
	if err := writeCrashDump(path, d); err != nil {
		f.mu.Lock()
		if f.err == nil {
			f.err = err
		}
		f.mu.Unlock()
		return
	}
	f.mu.Lock()
	f.last = path
	f.mu.Unlock()
}

// sanitize keeps scheme names filesystem-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unknown"
	}
	return string(out)
}

func writeCrashDump(path string, d CrashDump) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCrashDump parses a crash file written by a FlightRecorder.
func ReadCrashDump(path string) (*CrashDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d CrashDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("obs: crash dump %s: %w", path, err)
	}
	if d.Version != crashDumpVersion {
		return nil, fmt.Errorf("obs: crash dump %s: unsupported version %d", path, d.Version)
	}
	return &d, nil
}

var _ TraceHook = (*FlightRecorder)(nil)
