package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HistSnapshot is a point-in-time copy of one histogram. Counts[i] holds
// observations <= Bounds[i]; Counts[len(Bounds)] is the overflow bucket.
type HistSnapshot struct {
	Bounds []uint64
	Counts []uint64
	Sum    uint64
}

// Total returns the number of observations.
func (h HistSnapshot) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Sub returns the bucket-wise difference h - old (the observations made
// between the two snapshots), saturating at zero per bucket.
func (h HistSnapshot) Sub(old HistSnapshot) HistSnapshot {
	out := HistSnapshot{Bounds: h.Bounds, Counts: make([]uint64, len(h.Counts)), Sum: satSub(h.Sum, old.Sum)}
	for i := range h.Counts {
		ov := uint64(0)
		if i < len(old.Counts) {
			ov = old.Counts[i]
		}
		out.Counts[i] = satSub(h.Counts[i], ov)
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts,
// returning the upper bound of the bucket containing the quantile (the
// largest finite bound for overflow observations). Returns 0 for an empty
// histogram.
func (h HistSnapshot) Quantile(q float64) uint64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest rank whose cumulative share reaches q.
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}

// OpSnapshot is a point-in-time copy of one per-operation series.
type OpSnapshot struct {
	Op      string
	Count   uint64
	Errors  uint64
	Latency HistSnapshot // nanoseconds
	Reads   HistSnapshot // block reads per op
	Writes  HistSnapshot // block writes per op
}

// LatencyTotal returns the cumulative wall time of the series.
func (o OpSnapshot) LatencyTotal() time.Duration { return time.Duration(o.Latency.Sum) }

// Snapshot is a consistent-enough (per-counter atomic) copy of a
// registry's state, the programmatic form of the /metrics exposition.
type Snapshot struct {
	Schemes  []string
	Ops      map[string]OpSnapshot
	Counters map[string]uint64
	// LockWaits holds the SyncStore lock acquisition wait histograms
	// (nanoseconds), keyed by lock kind ("read", "write").
	LockWaits map[string]HistSnapshot
	// Phases holds the phase-latency histograms (nanoseconds), keyed by
	// row ("insert", "lookup", ..., "wal", "scrub") then phase name. Only
	// rows and phases with at least one observation appear.
	Phases map[string]map[string]HistSnapshot
	// Gauges holds the structural health samples of every registered
	// collector, evaluated at snapshot time (nil when none are registered).
	Gauges []GaugeValue
}

func snapHist(h *hist) HistSnapshot {
	n := len(h.bounds) + 1
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, n),
		Sum:    h.sum.Load(),
	}
	for i := 0; i < n; i++ {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Ops:      make(map[string]OpSnapshot, numOps),
		Counters: make(map[string]uint64, numCounters),
	}
	if r == nil {
		return s
	}
	s.Schemes = r.Schemes()
	for op := Op(0); op < numOps; op++ {
		series := &r.ops[op]
		s.Ops[op.String()] = OpSnapshot{
			Op:      op.String(),
			Count:   series.count.Load(),
			Errors:  series.errors.Load(),
			Latency: snapHist(&series.latency),
			Reads:   snapHist(&series.reads),
			Writes:  snapHist(&series.writes),
		}
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[c.String()] = r.counters[c].Load()
	}
	s.LockWaits = make(map[string]HistSnapshot, numLockKinds)
	for k := LockKind(0); k < numLockKinds; k++ {
		s.LockWaits[k.String()] = snapHist(&r.lockWaits[k])
	}
	s.Phases = make(map[string]map[string]HistSnapshot)
	for row := 0; row < numPhaseRows; row++ {
		for ph := Phase(0); ph < numPhases; ph++ {
			h := &r.phases[row][ph]
			hs := snapHist(h)
			if hs.Total() == 0 {
				continue
			}
			rn := phaseRowName(row)
			if s.Phases[rn] == nil {
				s.Phases[rn] = make(map[string]HistSnapshot)
			}
			s.Phases[rn][ph.String()] = hs
		}
	}
	s.Gauges = r.GatherGauges()
	return s
}

// escapeLabel escapes a label value for the Prometheus text exposition
// format, which recognizes exactly three escapes inside label values:
// backslash, double quote, and newline. (fmt's %q is not equivalent: it
// emits Go escapes like \t and é that Prometheus parsers reject.)
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) printf(format string, args ...any) {
	if cw.err != nil {
		return
	}
	n, err := fmt.Fprintf(cw.w, format, args...)
	cw.n += int64(n)
	cw.err = err
}

// secs renders a nanosecond quantity as seconds for Prometheus.
func secs(ns uint64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// writeOpHist emits one histogram family with an op label. unit selects
// bound rendering: "s" converts nanosecond bounds to seconds.
func writeOpHist(cw *countingWriter, name, help, unit string, sel func(*opSeries) *hist, r *Registry) {
	cw.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for op := Op(0); op < numOps; op++ {
		h := sel(&r.ops[op])
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := strconv.FormatUint(b, 10)
			if unit == "s" {
				le = secs(b)
			}
			cw.printf("%s_bucket{op=\"%s\",le=\"%s\"} %d\n", name, escapeLabel(op.String()), le, cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		cw.printf("%s_bucket{op=\"%s\",le=\"+Inf\"} %d\n", name, escapeLabel(op.String()), cum)
		if unit == "s" {
			cw.printf("%s_sum{op=\"%s\"} %s\n", name, escapeLabel(op.String()), secs(h.sum.Load()))
		} else {
			cw.printf("%s_sum{op=\"%s\"} %d\n", name, escapeLabel(op.String()), h.sum.Load())
		}
		cw.printf("%s_count{op=\"%s\"} %d\n", name, escapeLabel(op.String()), cum)
	}
}

// WriteTo writes the registry's state in the Prometheus text exposition
// format (version 0.0.4). It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if r == nil {
		return 0, nil
	}

	cw.printf("# HELP boxes_store_info Labeling schemes reporting into this registry.\n# TYPE boxes_store_info gauge\n")
	for _, s := range r.Schemes() {
		cw.printf("boxes_store_info{scheme=\"%s\"} 1\n", escapeLabel(s))
	}

	cw.printf("# HELP boxes_ops_total Operations executed, by operation kind.\n# TYPE boxes_ops_total counter\n")
	for op := Op(0); op < numOps; op++ {
		cw.printf("boxes_ops_total{op=\"%s\"} %d\n", escapeLabel(op.String()), r.ops[op].count.Load())
	}
	cw.printf("# HELP boxes_op_errors_total Operations that returned an error, by operation kind.\n# TYPE boxes_op_errors_total counter\n")
	for op := Op(0); op < numOps; op++ {
		cw.printf("boxes_op_errors_total{op=\"%s\"} %d\n", escapeLabel(op.String()), r.ops[op].errors.Load())
	}

	writeOpHist(cw, "boxes_op_duration_seconds", "Wall time per operation.", "s",
		func(s *opSeries) *hist { return &s.latency }, r)
	writeOpHist(cw, "boxes_op_reads", "Block reads charged per operation.", "",
		func(s *opSeries) *hist { return &s.reads }, r)
	writeOpHist(cw, "boxes_op_writes", "Block writes charged per operation.", "",
		func(s *opSeries) *hist { return &s.writes }, r)

	cw.printf("# HELP boxes_lock_wait_seconds SyncStore lock acquisition wait, by lock kind.\n# TYPE boxes_lock_wait_seconds histogram\n")
	for k := LockKind(0); k < numLockKinds; k++ {
		h := &r.lockWaits[k]
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			cw.printf("boxes_lock_wait_seconds_bucket{lock=\"%s\",le=\"%s\"} %d\n", escapeLabel(k.String()), secs(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		cw.printf("boxes_lock_wait_seconds_bucket{lock=\"%s\",le=\"+Inf\"} %d\n", escapeLabel(k.String()), cum)
		cw.printf("boxes_lock_wait_seconds_sum{lock=\"%s\"} %s\n", escapeLabel(k.String()), secs(h.sum.Load()))
		cw.printf("boxes_lock_wait_seconds_count{lock=\"%s\"} %d\n", escapeLabel(k.String()), cum)
	}

	// Phase-latency histograms: where each operation's wall time went. Only
	// series with observations are emitted (the full op x phase matrix is
	// mostly empty), under a single # TYPE announcement.
	cw.printf("# HELP boxes_phase_duration_seconds Operation wall time attributed by phase.\n# TYPE boxes_phase_duration_seconds histogram\n")
	for row := 0; row < numPhaseRows; row++ {
		for ph := Phase(0); ph < numPhases; ph++ {
			h := &r.phases[row][ph]
			var cum uint64
			var counts [maxBuckets]uint64
			for i := 0; i <= len(h.bounds); i++ {
				counts[i] = h.counts[i].Load()
				cum += counts[i]
			}
			if cum == 0 {
				continue
			}
			labels := fmt.Sprintf("op=\"%s\",phase=\"%s\"", escapeLabel(phaseRowName(row)), escapeLabel(ph.String()))
			cum = 0
			for i, b := range h.bounds {
				cum += counts[i]
				cw.printf("boxes_phase_duration_seconds_bucket{%s,le=\"%s\"} %d\n", labels, secs(b), cum)
			}
			cum += counts[len(h.bounds)]
			cw.printf("boxes_phase_duration_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
			cw.printf("boxes_phase_duration_seconds_sum{%s} %s\n", labels, secs(h.sum.Load()))
			cw.printf("boxes_phase_duration_seconds_count{%s} %d\n", labels, cum)
		}
	}

	// Structural counters, one # TYPE line per metric family. Several
	// schemes (and several stores) may report into one registry; families
	// must still be announced exactly once, so the values of any family
	// already emitted are folded into the first announcement.
	typed := make(map[string]bool, numCounters)
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if typed[name] {
			continue
		}
		typed[name] = true
		total := r.counters[c].Load()
		for d := c + 1; d < numCounters; d++ {
			if d.String() == name {
				total += r.counters[d].Load()
			}
		}
		cw.printf("# TYPE %s counter\n%s %d\n", name, name, total)
	}

	// The amortized-cost ledger: every structural event and block I/O
	// attributed to the (scheme, op) that caused it. Only nonzero cells are
	// emitted; the conservation invariant ties their sums to the structural
	// counters above.
	if cells := r.LedgerCells(); len(cells) > 0 {
		cw.printf("# HELP boxes_cost_total Structural and I/O cost attributed to the causing (scheme, op).\n# TYPE boxes_cost_total counter\n")
		for _, c := range cells {
			cw.printf("boxes_cost_total{scheme=\"%s\",op=\"%s\",kind=\"%s\"} %d\n",
				escapeLabel(c.Scheme), escapeLabel(c.Op), escapeLabel(c.Kind), c.Value)
		}
		cw.printf("# HELP boxes_cost_ops_total Completed operations per ledger (scheme, op) row.\n# TYPE boxes_cost_ops_total counter\n")
		for _, oc := range r.LedgerOpCounts() {
			cw.printf("boxes_cost_ops_total{scheme=\"%s\",op=\"%s\"} %d\n",
				escapeLabel(oc.Scheme), escapeLabel(oc.Op), oc.Count)
		}
	}

	// Scrape-time structural gauges: every registered collector walks its
	// structure now, and samples sharing a family are grouped under a
	// single # TYPE line regardless of which scheme reported them.
	for _, fam := range groupGauges(r.GatherGauges()) {
		if fam.help != "" {
			cw.printf("# HELP %s %s\n", fam.name, fam.help)
		}
		cw.printf("# TYPE %s gauge\n", fam.name)
		for _, g := range fam.samples {
			cw.printf("%s%s %s\n", fam.name, g.LabelString(), strconv.FormatFloat(g.Value, 'g', -1, 64))
		}
	}
	return cw.n, cw.err
}

// String renders the registry in Prometheus text format (for debugging).
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// FormatCounters renders the non-zero structural counters of a snapshot as
// "name=value" pairs sorted by name — the compact form the CLIs print.
func (s Snapshot) FormatCounters() string {
	names := make([]string, 0, len(s.Counters))
	for name, v := range s.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, s.Counters[name])
	}
	return strings.Join(parts, " ")
}

var _ io.WriterTo = (*Registry)(nil)
