// The amortized-cost ledger.
//
// The paper's headline claims are amortized — W-BOX inserts cost
// O(log_B N) amortized with 1-I/O lookups, B-BOX updates O(1) amortized —
// and the lower-bound literature (Bulánek–Koucký–Saks) proves naive gap
// schemes can be forced into Ω(log²) relabeling. The structural counters
// (Inc/Add) record that the events happened; the ledger additionally
// records WHO PAID: every relabel, split, merge, rebuild, reclaim, reflog
// outcome, and block read/write is attributed to the (scheme, operation)
// cell that caused it, using the same atomic writer slot that phase
// attribution rides on (no context threading; see span.go).
//
// From the cells the registry derives amortized ratios — relabeled records
// per insert, I/Os per op, splits per insert — both over the store's whole
// lifetime and over a sliding window of the last ledgerWindow operations,
// so a scheme whose amortized cost GROWS with N (the naive-k collapse) is
// distinguishable from one that is merely paying a constant.
//
// Conservation invariant: every cost increment bumps, in order, (1) the
// structural counter when one exists, (2) the attributed cell, (3) the
// per-kind global total. A reader that loads totals first, then cells,
// then counters therefore always observes counterSum >= cellSum >= total;
// at quiescence all three are equal. CheckLedger verifies this, difftest
// asserts it after every fuzzed operation, and a -race test scrapes it
// against live writers.
package obs

import (
	"fmt"
	"sort"
)

// CostKind identifies one attributed cost category.
type CostKind uint8

const (
	// CostSplits: node splits (W-BOX and B-BOX).
	CostSplits CostKind = iota
	// CostRelabels: relabel sweeps (one per triggering event).
	CostRelabels
	// CostRelabeledRecs: individual records rewritten by relabeling — the
	// quantity the amortized bounds are actually about. A W-BOX subtree
	// relabel charges the subtree's record count; a naive-k global sweep
	// charges the whole document, which is what makes its ratio grow.
	CostRelabeledRecs
	// CostMerges: B-BOX underflow merges.
	CostMerges
	// CostBorrows: B-BOX underflow borrows.
	CostBorrows
	// CostRebuilds: global rebuilds (both BOX schemes).
	CostRebuilds
	// CostReclaims: W-BOX tombstone reclaims.
	CostReclaims
	// CostLIDFAllocs: LIDF record allocations.
	CostLIDFAllocs
	// CostLIDFFrees: LIDF record frees.
	CostLIDFFrees
	// CostReflogHits: reflog cache lookups answered fresh.
	CostReflogHits
	// CostReflogRepairs: reflog cache lookups repaired by log replay.
	CostReflogRepairs
	// CostReflogMisses: reflog cache lookups that paid the full I/O cost.
	CostReflogMisses
	// CostBlockReads: pager block reads (cache misses and write-through
	// reads alike — everything the pager counts as a read I/O).
	CostBlockReads
	// CostBlockWrites: pager block writes.
	CostBlockWrites
	numCostKinds
)

var costKindNames = [numCostKinds]string{
	CostSplits:        "splits",
	CostRelabels:      "relabels",
	CostRelabeledRecs: "relabeled_records",
	CostMerges:        "merges",
	CostBorrows:       "borrows",
	CostRebuilds:      "rebuilds",
	CostReclaims:      "tombstone_reclaims",
	CostLIDFAllocs:    "lidf_allocs",
	CostLIDFFrees:     "lidf_frees",
	CostReflogHits:    "reflog_hits",
	CostReflogRepairs: "reflog_repairs",
	CostReflogMisses:  "reflog_misses",
	CostBlockReads:    "block_reads",
	CostBlockWrites:   "block_writes",
}

func (k CostKind) String() string {
	if int(k) < len(costKindNames) {
		return costKindNames[k]
	}
	return "unknown"
}

// CostKinds returns every cost kind, in exposition order.
func CostKinds() []CostKind {
	out := make([]CostKind, numCostKinds)
	for i := range out {
		out[i] = CostKind(i)
	}
	return out
}

// counterCost maps each structural counter to the cost kind it feeds, or
// -1 for counters that are deliberately unattributed: WAL, scrubber, and
// retry counters are incremented by background goroutines that hold no
// writer slot, and cache hit/miss counters already appear in the ledger as
// block reads (a hit is the absence of an I/O). Keeping them out preserves
// the exactness of the conservation invariant.
var counterCost = func() [numCounters]int8 {
	var m [numCounters]int8
	for i := range m {
		m[i] = -1
	}
	m[CtrWBoxSplits] = int8(CostSplits)
	m[CtrWBoxRelabels] = int8(CostRelabels)
	m[CtrWBoxReclaims] = int8(CostReclaims)
	m[CtrWBoxRebuilds] = int8(CostRebuilds)
	m[CtrBBoxSplits] = int8(CostSplits)
	m[CtrBBoxBorrows] = int8(CostBorrows)
	m[CtrBBoxMerges] = int8(CostMerges)
	m[CtrBBoxRebuilds] = int8(CostRebuilds)
	m[CtrNaiveRelabels] = int8(CostRelabels)
	m[CtrLIDFAllocs] = int8(CostLIDFAllocs)
	m[CtrLIDFFrees] = int8(CostLIDFFrees)
	m[CtrReflogHits] = int8(CostReflogHits)
	m[CtrReflogRepairs] = int8(CostReflogRepairs)
	m[CtrReflogMisses] = int8(CostReflogMisses)
	return m
}()

// maxLedgerSchemes bounds the per-scheme attribution rows. Registries in
// this repository serve at most five schemes (the difftest worlds each get
// their own registry); should more than eight ever report into one, the
// overflow schemes share the last row — attribution coarsens but
// conservation still holds.
const maxLedgerSchemes = 8

// ledgerWindow is the operation count per amortization window: windowed
// ratios cover the last completed ledgerWindow-op slice, so growth over
// time is visible even when lifetime averages smooth it away.
const ledgerWindow = 1024

// ledgerWindowSnap is one point-in-time aggregate of the ledger: per
// scheme, the op-summed kind totals and the per-op counts.
type ledgerWindowSnap struct {
	kinds [maxLedgerSchemes][numCostKinds]uint64
	ops   [maxLedgerSchemes][numOps]uint64
}

func diffSnap(cur, prev ledgerWindowSnap) ledgerWindowSnap {
	var d ledgerWindowSnap
	for s := 0; s < maxLedgerSchemes; s++ {
		for k := 0; k < int(numCostKinds); k++ {
			d.kinds[s][k] = satSub(cur.kinds[s][k], prev.kinds[s][k])
		}
		for o := 0; o < int(numOps); o++ {
			d.ops[s][o] = satSub(cur.ops[s][o], prev.ops[s][o])
		}
	}
	return d
}

// snapLedger aggregates the live cells; called at window rotation and by
// scrape-time gauges.
func (r *Registry) snapLedger() ledgerWindowSnap {
	var s ledgerWindowSnap
	for si := 0; si < maxLedgerSchemes; si++ {
		for o := 0; o < int(numOps); o++ {
			s.ops[si][o] = r.ledgerOps[si][o].Load()
			for k := 0; k < int(numCostKinds); k++ {
				s.kinds[si][k] += r.ledgerCells[si][o][k].Load()
			}
		}
	}
	return s
}

// SchemeIndex interns a scheme name into a ledger row and returns its
// index. The first scheme registered (via SetScheme at store open, or the
// first Begin) gets row 0 — the row unattributed shared-path work defaults
// to. The read path is one atomic pointer load plus a map lookup.
func (r *Registry) SchemeIndex(name string) int {
	if r == nil {
		return 0
	}
	if m := r.ledgerIdx.Load(); m != nil {
		if i, ok := (*m)[name]; ok {
			return i
		}
	}
	return r.internScheme(name)
}

func (r *Registry) internScheme(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.ledgerIdx.Load()
	if old != nil {
		if i, ok := (*old)[name]; ok {
			return i
		}
	}
	next := make(map[string]int)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	i := len(r.ledgerNames)
	if i >= maxLedgerSchemes {
		i = maxLedgerSchemes - 1 // overflow schemes share the last row
	} else {
		r.ledgerNames = append(r.ledgerNames, name)
	}
	next[name] = i
	r.ledgerIdx.Store(&next)
	return i
}

// LedgerSchemes returns the interned scheme names; a row index in the
// ledger exposition indexes this slice.
func (r *Registry) LedgerSchemes() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.ledgerNames))
	copy(out, r.ledgerNames)
	return out
}

// costAdd attributes n units of kind k to the current writer cell and the
// global total, in that order (see the conservation note atop this file).
func (r *Registry) costAdd(k CostKind, n uint64) {
	s, o := r.writerCell()
	r.ledgerCells[s][o][k].Add(n)
	r.ledgerTotals[k].Add(n)
}

// CostRelabeled charges n relabeled records to the current operation. The
// schemes call this from their relabel sweeps with the number of records
// actually rewritten — the quantity the amortized bounds govern.
func (r *Registry) CostRelabeled(n uint64) {
	if r == nil || n == 0 {
		return
	}
	r.costAdd(CostRelabeledRecs, n)
}

// CostIO attributes one block I/O (write=false: read) to the current
// operation and samples the block heat map. Callers on the shared read
// path (reader=true) are statically lookups on the registry's first
// scheme; exclusive-path callers resolve through the writer slot.
func (r *Registry) CostIO(reader, write bool, block uint64) {
	if r == nil {
		return
	}
	s, o := 0, OpLookup
	if !reader {
		s, o = r.writerCell()
	}
	k, series := CostBlockReads, heatSeriesBlockReads
	if write {
		k, series = CostBlockWrites, heatSeriesBlockWrites
	}
	r.ledgerCells[s][o][k].Add(1)
	r.ledgerTotals[k].Add(1)
	r.heatBlock.sample(series, block)
}

// noteLedgerOp counts one completed operation against its scheme row and
// rotates the amortization window every ledgerWindow ops.
func (r *Registry) noteLedgerOp(scheme int, op Op) {
	if scheme < 0 || scheme >= maxLedgerSchemes {
		scheme = maxLedgerSchemes - 1
	}
	r.ledgerOps[scheme][op].Add(1)
	n := r.ledgerOpsTotal.Add(1)
	if n%ledgerWindow == 0 {
		r.rotateLedgerWindow(n)
	}
}

// rotateLedgerWindow closes the current amortization window. TryLock: if
// another rotation (or a scrape of the window) is in flight, this
// rotation is skipped — the next multiple catches up, and a slightly long
// window only makes the ratios smoother.
func (r *Registry) rotateLedgerWindow(n uint64) {
	if !r.winMu.TryLock() {
		return
	}
	defer r.winMu.Unlock()
	cur := r.snapLedger()
	r.winLast = diffSnap(cur, r.winStart)
	r.winLastOps = satSub(n, r.winStartOps)
	r.winStart = cur
	r.winStartOps = n
}

// LedgerIO returns the ledger's global block read/write totals, for
// cross-checking against the pager's own I/O statistics.
func (r *Registry) LedgerIO() (reads, writes uint64) {
	if r == nil {
		return 0, 0
	}
	return r.ledgerTotals[CostBlockReads].Load(), r.ledgerTotals[CostBlockWrites].Load()
}

// CheckLedger verifies the conservation invariant. With strict=false it
// allows the monotone live form (counterSum >= cellSum >= total, which
// holds at any instant given the increment order); with strict=true it
// demands exact equality, valid only at quiescence (no op in flight).
func (r *Registry) CheckLedger(strict bool) error {
	if r == nil {
		return nil
	}
	// Load order mirrors the increment order reversed: totals first, then
	// cells, then counters — so each later read includes at least every
	// increment the earlier read saw.
	var totals [numCostKinds]uint64
	for k := range totals {
		totals[k] = r.ledgerTotals[k].Load()
	}
	var cellSums [numCostKinds]uint64
	for s := 0; s < maxLedgerSchemes; s++ {
		for o := 0; o < int(numOps); o++ {
			for k := 0; k < int(numCostKinds); k++ {
				cellSums[k] += r.ledgerCells[s][o][k].Load()
			}
		}
	}
	var counterSums [numCostKinds]uint64
	hasCounter := [numCostKinds]bool{}
	for c := Counter(0); c < numCounters; c++ {
		if k := counterCost[c]; k >= 0 {
			counterSums[k] += r.counters[c].Load()
			hasCounter[k] = true
		}
	}
	for k := CostKind(0); k < numCostKinds; k++ {
		if cellSums[k] < totals[k] {
			return fmt.Errorf("ledger %s: cell sum %d < global total %d", k, cellSums[k], totals[k])
		}
		if hasCounter[k] && counterSums[k] < cellSums[k] {
			return fmt.Errorf("ledger %s: counter sum %d < cell sum %d", k, counterSums[k], cellSums[k])
		}
		if strict {
			if cellSums[k] != totals[k] {
				return fmt.Errorf("ledger %s: cell sum %d != global total %d (strict)", k, cellSums[k], totals[k])
			}
			if hasCounter[k] && counterSums[k] != cellSums[k] {
				return fmt.Errorf("ledger %s: counter sum %d != cell sum %d (strict)", k, counterSums[k], cellSums[k])
			}
		}
	}
	return nil
}

// ratio is n/d with the 0/0 convention the amortized gauges want.
func ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// amortizedForRow builds the boxes_amortized_* gauges for one interned
// scheme row from a lifetime snapshot and the last completed window.
func amortizedForRow(name string, row int, life, win ledgerWindowSnap, winOps uint64) []GaugeValue {
	inserts := life.ops[row][OpInsert] + life.ops[row][OpSubtreeInsert]
	var totalOps uint64
	for o := 0; o < int(numOps); o++ {
		totalOps += life.ops[row][o]
	}
	ios := life.kinds[row][CostBlockReads] + life.kinds[row][CostBlockWrites]
	out := []GaugeValue{
		G("boxes_amortized_relabels_per_insert",
			"Amortized relabeled records per insert over the store lifetime (the paper's headline bound).",
			ratio(life.kinds[row][CostRelabeledRecs], inserts), "scheme", name),
		G("boxes_amortized_splits_per_insert",
			"Amortized node splits per insert over the store lifetime.",
			ratio(life.kinds[row][CostSplits], inserts), "scheme", name),
		G("boxes_amortized_ios_per_op",
			"Amortized block I/Os (reads+writes) per operation over the store lifetime.",
			ratio(ios, totalOps), "scheme", name),
	}
	if winOps > 0 {
		wInserts := win.ops[row][OpInsert] + win.ops[row][OpSubtreeInsert]
		var wOps uint64
		for o := 0; o < int(numOps); o++ {
			wOps += win.ops[row][o]
		}
		wIOs := win.kinds[row][CostBlockReads] + win.kinds[row][CostBlockWrites]
		out = append(out,
			G("boxes_amortized_window_relabels_per_insert",
				"Relabeled records per insert over the last completed amortization window.",
				ratio(win.kinds[row][CostRelabeledRecs], wInserts), "scheme", name),
			G("boxes_amortized_window_ios_per_op",
				"Block I/Os per operation over the last completed amortization window.",
				ratio(wIOs, wOps), "scheme", name),
		)
	}
	return out
}

// AmortizedGauges returns the amortized-ratio gauges for one scheme (by
// the name it reports under), or nil when the scheme never reported.
func (r *Registry) AmortizedGauges(scheme string) []GaugeValue {
	if r == nil {
		return nil
	}
	m := r.ledgerIdx.Load()
	if m == nil {
		return nil
	}
	row, ok := (*m)[scheme]
	if !ok {
		return nil
	}
	life := r.snapLedger()
	win, winOps := r.lastWindow()
	return amortizedForRow(scheme, row, life, win, winOps)
}

// amortizedGaugesAll emits the amortized gauges for every interned scheme;
// this is the scrape-time collector registered by NewRegistry.
func (r *Registry) amortizedGaugesAll() []GaugeValue {
	names := r.LedgerSchemes()
	if len(names) == 0 {
		return nil
	}
	life := r.snapLedger()
	win, winOps := r.lastWindow()
	var out []GaugeValue
	for row, name := range names {
		out = append(out, amortizedForRow(name, row, life, win, winOps)...)
	}
	return out
}

func (r *Registry) lastWindow() (ledgerWindowSnap, uint64) {
	r.winMu.Lock()
	defer r.winMu.Unlock()
	return r.winLast, r.winLastOps
}

// LedgerCell is one nonzero (scheme, op, kind) attribution for exposition.
type LedgerCell struct {
	Scheme string `json:"scheme"`
	Op     string `json:"op"`
	Kind   string `json:"kind"`
	Value  uint64 `json:"value"`
}

// LedgerOpCount is one nonzero per-scheme operation count.
type LedgerOpCount struct {
	Scheme string `json:"scheme"`
	Op     string `json:"op"`
	Count  uint64 `json:"count"`
}

// LedgerCells returns the nonzero attribution cells, in (scheme, op, kind)
// order.
func (r *Registry) LedgerCells() []LedgerCell {
	if r == nil {
		return nil
	}
	names := r.LedgerSchemes()
	var out []LedgerCell
	for row, name := range names {
		for o := Op(0); o < numOps; o++ {
			for k := CostKind(0); k < numCostKinds; k++ {
				v := r.ledgerCells[row][o][k].Load()
				if v == 0 {
					continue
				}
				out = append(out, LedgerCell{Scheme: name, Op: o.String(), Kind: k.String(), Value: v})
			}
		}
	}
	return out
}

// LedgerOpCounts returns the nonzero per-scheme operation counts.
func (r *Registry) LedgerOpCounts() []LedgerOpCount {
	if r == nil {
		return nil
	}
	names := r.LedgerSchemes()
	var out []LedgerOpCount
	for row, name := range names {
		for o := Op(0); o < numOps; o++ {
			if n := r.ledgerOps[row][o].Load(); n > 0 {
				out = append(out, LedgerOpCount{Scheme: name, Op: o.String(), Count: n})
			}
		}
	}
	return out
}

// FormatLedger renders the ledger as aligned text for boxinspect -ledger
// and the boxtop panel: one block per scheme, cells sorted by value
// descending, followed by the amortized ratios.
func FormatLedger(r *Registry) string {
	if r == nil {
		return "no registry\n"
	}
	cells := r.LedgerCells()
	opsRows := r.LedgerOpCounts()
	var b []byte
	byScheme := map[string][]LedgerCell{}
	var order []string
	for _, c := range cells {
		if _, ok := byScheme[c.Scheme]; !ok {
			order = append(order, c.Scheme)
		}
		byScheme[c.Scheme] = append(byScheme[c.Scheme], c)
	}
	for _, scheme := range order {
		b = append(b, fmt.Sprintf("scheme %s\n", scheme)...)
		for _, oc := range opsRows {
			if oc.Scheme == scheme {
				b = append(b, fmt.Sprintf("  ops %-16s %12d\n", oc.Op, oc.Count)...)
			}
		}
		sc := byScheme[scheme]
		sort.Slice(sc, func(i, j int) bool { return sc[i].Value > sc[j].Value })
		for _, c := range sc {
			b = append(b, fmt.Sprintf("  %-10s %-18s %12d\n", c.Op, c.Kind, c.Value)...)
		}
		for _, g := range r.AmortizedGauges(scheme) {
			b = append(b, fmt.Sprintf("  %-29s %12.4f\n", g.Name, g.Value)...)
		}
	}
	if err := r.CheckLedger(false); err != nil {
		b = append(b, fmt.Sprintf("conservation: VIOLATED: %v\n", err)...)
	} else {
		b = append(b, "conservation: ok\n"...)
	}
	return string(b)
}
