package obs

import (
	"encoding/json"
	"io"
	"time"
)

// chromeEvent is one record of the Chrome trace-event JSON format (the
// "JSON Array Format" both chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the tracer's recorded spans as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each lane becomes one named thread, so the writer,
// per-reader goroutines, the group-commit committer, its queue, and the
// scrubber render as parallel tracks — group-commit coalescing appears as
// several op spans on the writer lane overlapping one fsync span on the
// committer lane. Timestamps are microseconds relative to the earliest
// recorded span.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	spans := t.Spans()
	lanes := t.Lanes()
	events := make([]chromeEvent, 0, len(spans)+len(lanes))
	for i, name := range lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: int32(i),
			Args: map[string]any{"name": name},
		})
	}
	var t0 time.Time
	for _, sp := range spans {
		if t0.IsZero() || sp.Start.Before(t0) {
			t0 = sp.Start
		}
	}
	for _, sp := range spans {
		args := map[string]any{"id": sp.ID}
		if sp.Parent != 0 {
			args["parent"] = sp.Parent
		}
		if sp.Scheme != "" {
			args["scheme"] = sp.Scheme
		}
		if sp.N != 0 {
			args["n"] = sp.N
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X", Pid: 1, Tid: sp.Lane,
			Ts:   float64(sp.Start.Sub(t0)) / float64(time.Microsecond),
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
