package obs

import "time"

// DurHist is a standalone fixed-bucket duration histogram for layers whose
// rows live outside the Registry's op/phase enums — the server's per-RPC
// phase latencies, for example. It shares the exponential nanosecond
// bounds (1.024µs .. ~1.07s) and lock-free atomic buckets of the per-op
// latency histograms, so its snapshots interoperate with HistSnapshot's
// Quantile/Sub machinery. The zero value is NOT usable; call NewDurHist.
type DurHist struct {
	h hist
}

// NewDurHist returns an empty duration histogram.
func NewDurHist() *DurHist {
	return &DurHist{h: hist{bounds: latencyBounds}}
}

// Observe records one duration. Negative durations clamp to zero. Safe
// for concurrent use; nil-receiver-safe.
func (d *DurHist) Observe(dur time.Duration) {
	if d == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	d.h.observe(uint64(dur))
}

// Snapshot copies the current bucket counts (nanosecond bounds).
func (d *DurHist) Snapshot() HistSnapshot {
	if d == nil {
		return HistSnapshot{}
	}
	return snapHist(&d.h)
}
