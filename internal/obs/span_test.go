package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPhaseHistogramRows(t *testing.T) {
	r := NewRegistry()
	r.ObservePhase(OpInsert, PhaseBlockWrite, 2*time.Millisecond)
	r.ObservePhaseWAL(PhaseFsync, 5*time.Millisecond)
	r.ObservePhaseScrub(1 * time.Millisecond)
	r.SetWriterOp(OpDelete)
	r.ObservePhaseAuto(false, PhaseBlockRead, time.Millisecond)
	r.ObservePhaseAuto(true, PhaseBlockRead, time.Millisecond)
	r.ClearWriterOp()
	// With no writer op installed the auto row falls back to lookup.
	r.ObservePhaseAuto(false, PhaseRetryBackoff, time.Millisecond)

	snap := r.Snapshot()
	for _, want := range []struct{ row, phase string }{
		{"insert", "block_write"},
		{"wal", "fsync"},
		{"scrub", "scrub_batch"},
		{"delete", "block_read"},
		{"lookup", "block_read"},
		{"lookup", "retry_backoff"},
	} {
		h, ok := snap.Phases[want.row][want.phase]
		if !ok || h.Total() != 1 {
			t.Errorf("phase %s.%s: want 1 observation, got %+v", want.row, want.phase, h)
		}
	}
	if _, ok := snap.Phases["insert"]["block_read"]; ok {
		t.Error("empty phase series leaked into the snapshot")
	}
}

func TestPhaseExposition(t *testing.T) {
	r := NewRegistry()
	r.ObservePhase(OpInsert, PhaseFsyncWait, 3*time.Millisecond)
	r.ObservePhaseWAL(PhaseQueueWait, time.Millisecond)
	out := r.String()
	if n := strings.Count(out, "# TYPE boxes_phase_duration_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one # TYPE for the phase family, got %d", n)
	}
	for _, want := range []string{
		`boxes_phase_duration_seconds_bucket{op="insert",phase="fsync_wait",le="+Inf"} 1`,
		`boxes_phase_duration_seconds_count{op="wal",phase="queue_wait"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(out, `phase="block_read"`) {
		t.Error("empty phase series emitted")
	}
}

func TestHistSnapshotSubAndQuantile(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 90; i++ {
		r.ObservePhase(OpInsert, PhaseStructure, 2*time.Microsecond)
	}
	before := r.Snapshot()
	for i := 0; i < 9; i++ {
		r.ObservePhase(OpInsert, PhaseStructure, 2*time.Microsecond)
	}
	r.ObservePhase(OpInsert, PhaseStructure, 500*time.Microsecond)
	after := r.Snapshot()

	d := after.Phases["insert"]["structure"].Sub(before.Phases["insert"]["structure"])
	if got := d.Total(); got != 10 {
		t.Fatalf("delta total: want 10, got %d", got)
	}
	p50, p99 := d.Quantile(0.50), d.Quantile(0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %d should be below p99 %d", p50, p99)
	}
	if p50 < uint64(2*time.Microsecond) || p50 > uint64(4*time.Microsecond) {
		t.Errorf("p50 bucket bound out of range: %d", p50)
	}
	if p99 < uint64(500*time.Microsecond) {
		t.Errorf("p99 should cover the 500µs outlier, got %d", p99)
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestTracerDisabledIsNullAndAllocFree(t *testing.T) {
	var nilT *Tracer
	sp := nilT.StartOp("s", OpInsert, false)
	sp.End(nil) // must not panic

	r := NewRegistry()
	tr := r.Tracer()
	if tr.Enabled() {
		t.Fatal("fresh tracer should be disabled")
	}
	if n := testing.AllocsPerRun(200, func() {
		sp := tr.StartOp("scheme", OpInsert, false)
		sp2 := tr.StartAuto(false, "child")
		sp2.End(nil)
		sp.End(nil)
		tr.RecordAuto(false, "x", time.Time{}, 0)
	}); n != 0 {
		t.Fatalf("disabled tracer path allocates: %v allocs/op", n)
	}
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d spans", len(got))
	}
}

func TestTracerSpanHierarchyAndLanes(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.Start(TraceOptions{Capacity: 128})

	op := tr.StartOp("B-BOX", OpInsert, false)
	if tr.WriterSpanID() != op.ID() {
		t.Fatalf("writer span not installed")
	}
	child := tr.StartAuto(false, "block_write")
	child.End(nil)
	tr.RecordSpan(LaneQueue, "queue_wait", op.ID(), time.Now(), time.Millisecond, 0, nil)
	g := tr.StartLane(LaneCommitter, "commit_group", 0)
	g.EndCount(3, nil)
	op.End(nil)
	if tr.WriterSpanID() != 0 {
		t.Fatal("writer span not cleared at op end")
	}

	reader := tr.StartOp("B-BOX", OpLookup, true)
	rchild := tr.StartAuto(true, "block_read")
	rchild.End(errors.New("boom"))
	reader.End(nil)

	spans := tr.Spans()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["block_write"].Parent != op.ID() {
		t.Errorf("child not parented to writer op: %+v", byName["block_write"])
	}
	if byName["queue_wait"].Parent != op.ID() {
		t.Errorf("queue wait not parented to enqueuing op")
	}
	if byName["commit_group"].N != 3 {
		t.Errorf("commit_group payload count lost: %+v", byName["commit_group"])
	}
	if byName["block_read"].Parent != reader.ID() {
		t.Errorf("reader child not parented to reader op")
	}
	if byName["block_read"].Err == "" {
		t.Error("child error not recorded")
	}
	lanes := tr.Lanes()
	laneSet := map[string]bool{}
	for _, l := range lanes {
		laneSet[l] = true
	}
	for _, want := range []string{LaneWriter, LaneQueue, LaneCommitter} {
		if !laneSet[want] {
			t.Errorf("lane %q missing from %v", want, lanes)
		}
	}
	if byName["insert"].Lane != 0 {
		t.Error("writer op should sit on lane 0")
	}
	if byName["lookup"].Lane == byName["insert"].Lane {
		t.Error("reader op should get its own lane")
	}
}

func TestSlowOpCapture(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.Start(TraceOptions{SlowOp: time.Millisecond, SlowRing: 4})

	fast := tr.StartOp("W-BOX", OpLookup, false)
	fast.End(nil)
	slow := tr.StartOp("W-BOX", OpInsert, false)
	child := tr.StartAuto(false, "fsync_wait")
	time.Sleep(2 * time.Millisecond)
	child.End(nil)
	slow.End(nil)

	got := tr.SlowOps()
	if len(got) != 1 {
		t.Fatalf("want 1 slow op, got %d", len(got))
	}
	if got[0].Root.Name != "insert" {
		t.Fatalf("wrong root captured: %+v", got[0].Root)
	}
	found := false
	for _, s := range got[0].Tree {
		if s.Name == "fsync_wait" {
			found = true
		}
	}
	if !found {
		t.Errorf("slow-op tree missing child span: %+v", got[0].Tree)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.Start(TraceOptions{})
	op := tr.StartOp("B-BOX", OpInsert, false)
	child := tr.StartAuto(false, "frame_write")
	child.End(nil)
	op.EndCount(0, errors.New("bad"))
	g := tr.StartLane(LaneCommitter, "commit_group", 0)
	g.EndCount(2, nil)

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	var meta, dur int
	names := map[string]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			dur++
			names[e["name"].(string)] = true
			if _, ok := e["dur"]; !ok {
				t.Errorf("X event missing dur: %v", e)
			}
		}
	}
	if meta < 2 { // writer lane + committer lane
		t.Errorf("want thread_name metadata per lane, got %d", meta)
	}
	if dur != 3 {
		t.Errorf("want 3 duration events, got %d", dur)
	}
	for _, want := range []string{"insert", "frame_write", "commit_group"} {
		if !names[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
}

func TestSpansDebugEndpoint(t *testing.T) {
	r := NewRegistry()
	c := r.Begin("B-BOX", OpInsert, 0, 0)
	r.End(c, 3, 2, nil)
	r.ObservePhase(OpInsert, PhaseBlockWrite, time.Millisecond)
	r.ObservePhase(OpInsert, PhaseStructure, 2*time.Millisecond)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d SpansDebug
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.TracingEnabled {
		t.Error("tracing should be off")
	}
	if len(d.Ops) != 1 || d.Ops[0].Op != "insert" || d.Ops[0].Count != 1 {
		t.Errorf("ops summary wrong: %+v", d.Ops)
	}
	if len(d.Phases) != 2 {
		t.Fatalf("want 2 phase rows, got %+v", d.Phases)
	}
	// Sorted by total descending: structure (2ms) first.
	if d.Phases[0].Phase != "structure" || d.Phases[1].Phase != "block_write" {
		t.Errorf("phase rows not sorted by total: %+v", d.Phases)
	}
}
