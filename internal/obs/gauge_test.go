package obs

import (
	"strings"
	"testing"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab\there"}, // only \ " \n are escaped in the text format
		{`all"three\of` + "\nthem", `all\"three\\of\nthem`},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	g := G("m", "", 1, "scheme", `W"BOX`)
	if got, want := g.LabelString(), `{scheme="W\"BOX"}`; got != want {
		t.Errorf("LabelString = %q, want %q", got, want)
	}
}

func TestBucketGauges(t *testing.T) {
	gs := BucketGauges("occ", "help", []float64{0.5, 1}, []float64{0.2, 0.6, 0.9, 1.5}, "level", "0")
	if len(gs) != 3 {
		t.Fatalf("got %d samples, want 3 (two bounds + +Inf)", len(gs))
	}
	wantCounts := []float64{1, 3, 4} // <=0.5, <=1, +Inf
	wantLe := []string{"0.5", "1", "+Inf"}
	for i, g := range gs {
		if g.Value != wantCounts[i] {
			t.Errorf("bucket %d: value %v, want %v", i, g.Value, wantCounts[i])
		}
		if g.Labels[0] != [2]string{"le", wantLe[i]} {
			t.Errorf("bucket %d: first label %v, want le=%s", i, g.Labels[0], wantLe[i])
		}
		if g.Labels[1] != [2]string{"level", "0"} {
			t.Errorf("bucket %d: extra label %v not carried", i, g.Labels[1])
		}
	}
	if got := BucketGauges("e", "", []float64{1}, nil); got[len(got)-1].Value != 0 {
		t.Errorf("+Inf bucket of empty observations = %v, want 0", got[len(got)-1].Value)
	}
}

func TestWithLabelPrepends(t *testing.T) {
	in := []GaugeValue{G("m", "", 1, "level", "2")}
	out := WithLabel(in, "scheme", "W-BOX")
	if got, want := out[0].LabelString(), `{scheme="W-BOX",level="2"}`; got != want {
		t.Errorf("labels = %q, want %q", got, want)
	}
	if len(in[0].Labels) != 1 {
		t.Error("WithLabel mutated its input")
	}
}

// TestExpositionSingleTypePerFamily loads a registry with two collectors
// that report the same gauge families (as two schemes sharing a registry
// do) and checks the exposition announces each family exactly once —
// duplicate # TYPE lines are rejected by Prometheus parsers.
func TestExpositionSingleTypePerFamily(t *testing.T) {
	r := NewRegistry()
	for _, scheme := range []string{"W-BOX", "B-BOX"} {
		scheme := scheme
		r.RegisterCollector(CollectorFunc(func() []GaugeValue {
			return WithLabel([]GaugeValue{
				G("boxes_tree_height", "Tree height.", 2),
				G("boxes_labels_live", "Live labels.", 10),
			}, "scheme", scheme)
		}))
	}
	text := r.String()

	seen := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			seen[strings.Fields(line)[2]]++
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("family %s announced %d times", name, n)
		}
	}
	// Both schemes' samples must survive the grouping.
	for _, want := range []string{
		`boxes_tree_height{scheme="W-BOX"} 2`,
		`boxes_tree_height{scheme="B-BOX"} 2`,
		`boxes_labels_live{scheme="W-BOX"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotCarriesGauges(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(CollectorFunc(func() []GaugeValue {
		return []GaugeValue{G("g", "", 7)}
	}))
	snap := r.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 7 {
		t.Fatalf("snapshot gauges = %+v", snap.Gauges)
	}
}

func TestSortGauges(t *testing.T) {
	gs := []GaugeValue{
		G("b", "", 1, "scheme", "z"),
		G("a", "", 1),
		G("b", "", 1, "scheme", "a"),
	}
	SortGauges(gs)
	if gs[0].Name != "a" || gs[1].Key() != `b{scheme="a"}` || gs[2].Key() != `b{scheme="z"}` {
		t.Errorf("order = %v %v %v", gs[0].Key(), gs[1].Key(), gs[2].Key())
	}
}
