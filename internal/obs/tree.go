package obs

import "strconv"

// TreeStats accumulates per-level structural statistics during one health
// walk of a tree structure (W-BOX, B-BOX). Centralizing the aggregation
// here keeps the gauge family names — and therefore the dashboards —
// identical across structures; the core layer distinguishes them with a
// scheme label.
type TreeStats struct {
	nodes     []int       // node count per level (0 = leaves)
	occ       [][]float64 // occupancy ratios per level
	slack     []uint64    // min balance slack per level
	haveSlack []bool
	errs      int // blocks the walk failed to read
}

// NewTreeStats creates an accumulator for a tree of the given height.
func NewTreeStats(height int) *TreeStats {
	return &TreeStats{
		nodes:     make([]int, height),
		occ:       make([][]float64, height),
		slack:     make([]uint64, height),
		haveSlack: make([]bool, height),
	}
}

// Observe records one node: its level (leaves at 0), fill ratio, and —
// when haveSlack — its distance to the nearest split/merge threshold.
// The per-level slack gauge keeps the minimum, the tightest node.
func (t *TreeStats) Observe(level int, occupancy float64, slack uint64, haveSlack bool) {
	if level < 0 || level >= len(t.nodes) {
		t.errs++
		return
	}
	t.nodes[level]++
	t.occ[level] = append(t.occ[level], occupancy)
	if haveSlack && (!t.haveSlack[level] || slack < t.slack[level]) {
		t.slack[level] = slack
		t.haveSlack[level] = true
	}
}

// AddError records a block the walk could not read; the resulting gauges
// are partial and boxes_health_walk_errors says so.
func (t *TreeStats) AddError() { t.errs++ }

// Errors reports how many blocks the walk failed to read.
func (t *TreeStats) Errors() int { return t.errs }

// Gauges renders the accumulated statistics as the shared tree-health
// families: boxes_tree_nodes, boxes_node_occupancy (bucketed), and
// boxes_balance_slack, each with a level label, plus
// boxes_health_walk_errors.
func (t *TreeStats) Gauges() []GaugeValue {
	var gs []GaugeValue
	for lv := range t.nodes {
		lvs := strconv.Itoa(lv)
		gs = append(gs, G("boxes_tree_nodes", "Nodes per tree level (0 = leaves).",
			float64(t.nodes[lv]), "level", lvs))
		gs = append(gs, BucketGauges("boxes_node_occupancy",
			"Per-level distribution of node fill ratios (records or children over capacity).",
			OccupancyBounds, t.occ[lv], "level", lvs)...)
		if t.haveSlack[lv] {
			gs = append(gs, G("boxes_balance_slack",
				"Minimum per-level distance (in weight or entry units) to a split or merge threshold.",
				float64(t.slack[lv]), "level", lvs))
		}
	}
	gs = append(gs, G("boxes_health_walk_errors",
		"Blocks the health walk failed to read (non-zero means partial gauges).",
		float64(t.errs)))
	return gs
}
