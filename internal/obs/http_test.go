package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.SetScheme("B-BOX")
	r.Inc(CtrBBoxSplits)
	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ct, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{`boxes_store_info{scheme="B-BOX"} 1`, "bbox_splits_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, _, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ status=%d", code)
	}
}
