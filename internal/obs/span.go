// Span tracing and phase-latency attribution.
//
// Two instruments share one phase taxonomy:
//
//   - Phase histograms are ALWAYS ON: every instrumented section (a backend
//     block read, a WAL fsync, a commit-ticket wait, ...) adds its duration
//     to a fixed-bucket histogram keyed by (row, phase), where the row is
//     the operation kind the section ran under — or one of two auxiliary
//     rows ("wal" for the committer goroutine, "scrub" for the scrubber) for
//     work that belongs to no single operation. The cost is one time.Now
//     pair plus an atomic histogram add per section.
//
//   - Span RECORDING is opt-in (Tracer.Start, boxbench/boxload -trace, or a
//     slow-op threshold): sections additionally push SpanRecords — with
//     parent/child links and goroutine-lane assignment — into a ring, from
//     which Chrome trace-event JSON and slow-op trees are built. When the
//     tracer is off, every span call is a null span: one atomic load, zero
//     allocations.
//
// Attribution without context threading: the registry keeps a single
// "current writer op" slot (SetWriterOp/ClearWriterOp), valid because every
// non-lookup core operation runs in an exclusive writer section (the
// single-goroutine contract, or a SyncStore write lock), while concurrent
// shared-mode readers are statically lookups. Deep layers (the pager, the
// retry sleeper) resolve their phase row as "lookup if on the shared read
// path, else the writer op" — exact in both modes.
package obs

import (
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one latency phase inside (or alongside) an operation.
// The per-op phases are disjoint: structure is the residual of op wall time
// not covered by any instrumented section, so the per-op rows sum to the
// measured latency (exactly in exclusive mode, approximately under
// concurrent shared readers). retry_backoff is the exception — the backoff
// sleep happens *inside* a block_read/block_write section, so it overlaps
// them and is excluded from coverage sums.
type Phase uint8

const (
	// PhaseStructure is in-memory structure work: op wall time minus every
	// other attributed phase (computed as a residual by core).
	PhaseStructure Phase = iota
	// PhaseLockWaitRead is time spent acquiring the SyncStore read lock
	// (recorded outside the op window; attribution only, not coverage).
	PhaseLockWaitRead
	// PhaseLockWaitWrite is time spent acquiring the SyncStore write lock
	// (recorded outside the op window; attribution only, not coverage).
	PhaseLockWaitWrite
	// PhaseBlockRead is backend block fetch time (cache misses).
	PhaseBlockRead
	// PhaseBlockWrite is backend block flush time (EndOp flushes and
	// write-through writes).
	PhaseBlockWrite
	// PhaseWALCommit is the synchronous commit call at EndOp: the inline
	// three-phase WAL protocol, or just the enqueue under group commit.
	PhaseWALCommit
	// PhaseMetaPersist is the durable-mode metadata blob rewrite.
	PhaseMetaPersist
	// PhaseFsyncWait is the commit-ticket wait: time until the group
	// committer made the operation durable (includes its queue wait).
	PhaseFsyncWait
	// PhaseRetryBackoff is time sleeping between transient-fault retries.
	// It overlaps block_read/block_write by construction.
	PhaseRetryBackoff
	// PhaseQueueWait is a transaction's wait in the group-commit queue,
	// enqueue to committer pickup (recorded on the "wal" row; the op-level
	// fsync_wait already contains it).
	PhaseQueueWait
	// PhaseFrameWrite is WAL frame + commit-record append time ("wal" row).
	PhaseFrameWrite
	// PhaseFsync is the WAL fsync itself — the durability point ("wal" row).
	PhaseFsync
	// PhaseApply is the post-fsync in-place apply, header write, data/crc
	// syncs and WAL truncate ("wal" row).
	PhaseApply
	// PhaseScrubBatch is one scrubber verification batch ("scrub" row).
	PhaseScrubBatch
	numPhases
)

var phaseNames = [numPhases]string{
	PhaseStructure:     "structure",
	PhaseLockWaitRead:  "lock_wait_read",
	PhaseLockWaitWrite: "lock_wait_write",
	PhaseBlockRead:     "block_read",
	PhaseBlockWrite:    "block_write",
	PhaseWALCommit:     "wal_commit",
	PhaseMetaPersist:   "meta_persist",
	PhaseFsyncWait:     "fsync_wait",
	PhaseRetryBackoff:  "retry_backoff",
	PhaseQueueWait:     "queue_wait",
	PhaseFrameWrite:    "frame_write",
	PhaseFsync:         "fsync",
	PhaseApply:         "apply",
	PhaseScrubBatch:    "scrub_batch",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Phases returns every phase, in declaration order.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Phase rows: one per operation kind, plus auxiliary rows for goroutines
// whose work belongs to no single operation.
const (
	rowWAL       = int(numOps)     // the group-commit committer
	rowScrub     = int(numOps) + 1 // the background scrubber
	numPhaseRows = int(numOps) + 2
)

// phaseRowName renders a phase row for exposition ("insert", "wal", ...).
func phaseRowName(row int) string {
	switch {
	case row < int(numOps):
		return Op(row).String()
	case row == rowWAL:
		return "wal"
	case row == rowScrub:
		return "scrub"
	default:
		return "unknown"
	}
}

// ObservePhase records a phase duration against an operation row.
func (r *Registry) ObservePhase(op Op, ph Phase, d time.Duration) {
	if r == nil || op >= numOps || ph >= numPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	r.phases[op][ph].observe(uint64(d))
}

// ObservePhaseWAL records a committer-side phase on the "wal" row.
func (r *Registry) ObservePhaseWAL(ph Phase, d time.Duration) {
	if r == nil || ph >= numPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	r.phases[rowWAL][ph].observe(uint64(d))
}

// ObservePhaseScrub records one scrubber batch on the "scrub" row.
func (r *Registry) ObservePhaseScrub(d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.phases[rowScrub][PhaseScrubBatch].observe(uint64(d))
}

// ObservePhaseAuto records a phase against the current operation: the
// lookup row when the caller runs on the shared read path, else the writer
// op installed by SetWriterOp. Deep layers (the pager) use this so phase
// attribution needs no per-call op threading.
func (r *Registry) ObservePhaseAuto(reader bool, ph Phase, d time.Duration) {
	if reader {
		r.ObservePhase(OpLookup, ph, d)
		return
	}
	r.ObservePhase(r.WriterOp(), ph, d)
}

// SetWriterCell installs (scheme row, op) as the current exclusive-section
// cell, packed into one atomic word: (scheme << 8) | (op + 1), 0 = none.
// Core calls it at op begin for every operation that runs exclusively (all
// mutators, and every op when the pager is not in shared mode); concurrent
// shared-mode readers never touch the slot. The ledger and the phase
// histograms both resolve attribution through it.
func (r *Registry) SetWriterCell(scheme int, op Op) {
	if r == nil {
		return
	}
	if scheme < 0 || scheme >= maxLedgerSchemes {
		scheme = maxLedgerSchemes - 1
	}
	r.writerOp.Store(int32(scheme)<<8 | (int32(op) + 1))
}

// SetWriterOp installs op on scheme row 0 — the single-store registry
// shorthand (the store's own scheme claims row 0 at SetScheme time).
func (r *Registry) SetWriterOp(op Op) { r.SetWriterCell(0, op) }

// ClearWriterOp clears the slot installed by SetWriterCell/SetWriterOp.
func (r *Registry) ClearWriterOp() {
	if r == nil {
		return
	}
	r.writerOp.Store(0)
}

// writerCell decodes the packed slot: (row 0, OpLookup) when none is
// installed — exact for shared-mode readers, which are statically lookups.
func (r *Registry) writerCell() (int, Op) {
	v := r.writerOp.Load()
	if v <= 0 {
		return 0, OpLookup
	}
	return int(v >> 8), Op(v&0xff) - 1
}

// WriterOp returns the current exclusive-section operation, or OpLookup
// when none is installed.
func (r *Registry) WriterOp() Op {
	if r == nil {
		return OpLookup
	}
	_, op := r.writerCell()
	return op
}

// Tracer returns the registry's span tracer (nil for a nil registry; all
// Tracer methods are nil-receiver-safe).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Reserved lane names. Lane 0 is always the writer lane; reader goroutines
// get per-goroutine lanes; the committer, its queue, and the scrubber get
// dedicated lanes so group-commit coalescing is visible in a trace.
const (
	LaneWriter    = "writer"
	LaneCommitter = "committer"
	LaneQueue     = "commit-queue"
	LaneScrubber  = "scrubber"
)

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Lane   int32     `json:"lane"`
	Name   string    `json:"name"`
	Scheme string    `json:"scheme,omitempty"`
	Start  time.Time `json:"start"`
	Dur    int64     `json:"duration_ns"`
	N      int       `json:"n,omitempty"` // payload count (group size, blocks flushed, ...)
	Err    string    `json:"error,omitempty"`
}

// SlowOp is one slow operation captured by the tracer: its root span and
// the descendant spans that were in the ring when it ended (children end
// before their parents, so in-op phases are present; spans that outlive the
// op — e.g. a queue wait resolved after a deferred return — are best-effort).
type SlowOp struct {
	Root SpanRecord   `json:"root"`
	Tree []SpanRecord `json:"tree,omitempty"`
}

// TraceOptions configures Tracer.Start.
type TraceOptions struct {
	// Capacity is the span ring size (default 65536).
	Capacity int
	// SlowOp, when > 0, captures the span tree of any root operation span
	// whose duration meets the threshold.
	SlowOp time.Duration
	// SlowRing is how many slow ops are retained (default 32).
	SlowRing int
	// SlowLogger, when set, additionally logs one structured record per
	// slow op at level Warn.
	SlowLogger *slog.Logger
}

// maxSlowTree bounds the spans collected per slow op.
const maxSlowTree = 256

// maxLanes bounds distinct reader lanes; overflow readers share one lane.
const maxLanes = 64

// Tracer records hierarchical spans when enabled. The zero value (and a nil
// pointer) is a disabled tracer whose every method is a cheap no-op.
type Tracer struct {
	on         atomic.Bool
	slowNs     atomic.Int64
	nextID     atomic.Uint64
	writerSpan atomic.Uint64 // current writer-rooted op span ID

	mu          sync.Mutex
	spans       []SpanRecord
	next        int
	wrapped     bool
	laneNames   []string
	laneIdx     map[string]int32
	readers     map[uint64]readerCtx // goroutine ID -> current reader op span
	slow        []SlowOp
	slowNext    int
	slowWrapped bool
	slowLog     *slog.Logger
}

type readerCtx struct {
	span uint64
	lane int32
}

func newTracer() *Tracer { return &Tracer{} }

// Start enables span recording. Restarting an enabled tracer resets it.
func (t *Tracer) Start(o TraceOptions) {
	if t == nil {
		return
	}
	if o.Capacity < 1 {
		o.Capacity = 65536
	}
	if o.SlowRing < 1 {
		o.SlowRing = 32
	}
	t.mu.Lock()
	t.spans = make([]SpanRecord, o.Capacity)
	t.next, t.wrapped = 0, false
	t.laneNames = []string{LaneWriter}
	t.laneIdx = map[string]int32{LaneWriter: 0}
	t.readers = make(map[uint64]readerCtx)
	t.slow = make([]SlowOp, o.SlowRing)
	t.slowNext, t.slowWrapped = 0, false
	t.slowLog = o.SlowLogger
	t.slowNs.Store(int64(o.SlowOp))
	t.mu.Unlock()
	t.on.Store(true)
}

// Stop disables span recording; recorded spans stay readable.
func (t *Tracer) Stop() {
	if t == nil {
		return
	}
	t.on.Store(false)
	t.writerSpan.Store(0)
}

// Enabled reports whether spans are being recorded. This is the null-span
// fast path: one atomic load.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// WriterSpanID returns the ID of the current writer-rooted operation span
// (0 when none, or when tracing is off). Used to parent queue-wait spans.
func (t *Tracer) WriterSpanID() uint64 {
	if !t.Enabled() {
		return 0
	}
	return t.writerSpan.Load()
}

// Span is an open span handle, passed by value. The zero Span is a null
// span: End does nothing.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	lane   int32
	gid    uint64 // reader root spans: goroutine to unregister at End
	root   bool
	start  time.Time
	name   string
	scheme string
}

// ID returns the span's identifier (0 for a null span).
func (sp Span) ID() uint64 { return sp.id }

// laneLocked interns a lane name; t.mu must be held.
func (t *Tracer) laneLocked(name string) int32 {
	if idx, ok := t.laneIdx[name]; ok {
		return idx
	}
	if len(t.laneNames) >= maxLanes {
		name = "overflow"
		if idx, ok := t.laneIdx[name]; ok {
			return idx
		}
	}
	idx := int32(len(t.laneNames))
	t.laneNames = append(t.laneNames, name)
	t.laneIdx[name] = idx
	return idx
}

// gid parses the current goroutine's ID from runtime.Stack. It costs ~1µs
// and is called only while tracing is enabled, on reader-path spans.
func gid() uint64 {
	var b [64]byte
	n := runtime.Stack(b[:], false)
	// "goroutine 123 [...":
	i := 0
	for i < n && (b[i] < '0' || b[i] > '9') {
		i++
	}
	var id uint64
	for ; i < n && b[i] >= '0' && b[i] <= '9'; i++ {
		id = id*10 + uint64(b[i]-'0')
	}
	return id
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// StartOp opens a root operation span on the writer lane (reader=false) or
// the calling goroutine's reader lane.
func (t *Tracer) StartOp(scheme string, op Op, reader bool) Span {
	if !t.Enabled() {
		return Span{}
	}
	id := t.nextID.Add(1)
	sp := Span{t: t, id: id, root: true, start: time.Now(), name: op.String(), scheme: scheme}
	if reader {
		g := gid()
		sp.gid = g
		t.mu.Lock()
		sp.lane = t.laneLocked("reader-" + itoa(g))
		t.readers[g] = readerCtx{span: id, lane: sp.lane}
		t.mu.Unlock()
	} else {
		t.writerSpan.Store(id)
	}
	return sp
}

// StartAuto opens a child span under the current operation: the writer op
// span (reader=false) or the calling goroutine's reader op span.
func (t *Tracer) StartAuto(reader bool, name string) Span {
	if !t.Enabled() {
		return Span{}
	}
	sp := Span{t: t, id: t.nextID.Add(1), start: time.Now(), name: name}
	if reader {
		g := gid()
		t.mu.Lock()
		if rc, ok := t.readers[g]; ok {
			sp.parent, sp.lane = rc.span, rc.lane
		} else {
			sp.lane = t.laneLocked("reader-" + itoa(g))
		}
		t.mu.Unlock()
	} else {
		sp.parent = t.writerSpan.Load()
	}
	return sp
}

// StartLane opens a span on a named lane (committer, scrubber, ...) with an
// explicit parent (0 for none).
func (t *Tracer) StartLane(lane, name string, parent uint64) Span {
	if !t.Enabled() {
		return Span{}
	}
	sp := Span{t: t, id: t.nextID.Add(1), parent: parent, start: time.Now(), name: name}
	t.mu.Lock()
	sp.lane = t.laneLocked(lane)
	t.mu.Unlock()
	return sp
}

// RecordSpan records an already-measured interval as a completed span on a
// named lane — for waits whose start and duration are only known after the
// fact (queue waits measured at committer pickup).
func (t *Tracer) RecordSpan(lane, name string, parent uint64, start time.Time, d time.Duration, n int, err error) {
	if !t.Enabled() {
		return
	}
	rec := SpanRecord{ID: t.nextID.Add(1), Parent: parent, Name: name, Start: start, Dur: int64(d), N: n}
	if err != nil {
		rec.Err = err.Error()
	}
	t.mu.Lock()
	rec.Lane = t.laneLocked(lane)
	t.pushLocked(rec)
	t.mu.Unlock()
}

// RecordAuto records an already-measured interval on the current
// operation's lane (writer, or the calling goroutine's reader lane).
func (t *Tracer) RecordAuto(reader bool, name string, start time.Time, d time.Duration) {
	if !t.Enabled() {
		return
	}
	rec := SpanRecord{ID: t.nextID.Add(1), Name: name, Start: start, Dur: int64(d)}
	t.mu.Lock()
	if reader {
		g := gid()
		if rc, ok := t.readers[g]; ok {
			rec.Parent, rec.Lane = rc.span, rc.lane
		} else {
			rec.Lane = t.laneLocked("reader-" + itoa(g))
		}
	} else {
		rec.Parent = t.writerSpan.Load()
	}
	t.pushLocked(rec)
	t.mu.Unlock()
}

// End closes the span. Null spans return immediately.
func (sp Span) End(err error) { sp.EndCount(0, err) }

// EndCount closes the span with a payload count (rendered as args.n in the
// Chrome trace).
func (sp Span) EndCount(n int, err error) {
	t := sp.t
	if t == nil || !t.on.Load() {
		return
	}
	d := time.Since(sp.start)
	rec := SpanRecord{
		ID: sp.id, Parent: sp.parent, Lane: sp.lane, Name: sp.name,
		Scheme: sp.scheme, Start: sp.start, Dur: int64(d), N: n,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if sp.root && sp.gid == 0 {
		t.writerSpan.CompareAndSwap(sp.id, 0)
	}
	slowNs := t.slowNs.Load()
	slow := sp.root && slowNs > 0 && int64(d) >= slowNs
	var captured SlowOp
	t.mu.Lock()
	t.pushLocked(rec)
	if sp.root && sp.gid != 0 {
		if rc, ok := t.readers[sp.gid]; ok && rc.span == sp.id {
			delete(t.readers, sp.gid)
		}
	}
	if slow {
		captured = SlowOp{Root: rec, Tree: t.collectTreeLocked(sp.id)}
		t.slow[t.slowNext] = captured
		t.slowNext++
		if t.slowNext == len(t.slow) {
			t.slowNext, t.slowWrapped = 0, true
		}
	}
	log := t.slowLog
	t.mu.Unlock()
	if slow && log != nil {
		log.Warn("boxes.slow_op",
			slog.String("op", rec.Name),
			slog.String("scheme", rec.Scheme),
			slog.Duration("duration", d),
			slog.Int("spans", len(captured.Tree)),
			slog.String("error", rec.Err),
		)
	}
}

// pushLocked appends a record to the span ring; t.mu must be held.
func (t *Tracer) pushLocked(rec SpanRecord) {
	if len(t.spans) == 0 {
		return
	}
	t.spans[t.next] = rec
	t.next++
	if t.next == len(t.spans) {
		t.next, t.wrapped = 0, true
	}
}

// collectTreeLocked gathers the descendants of root still present in the
// ring, in chronological order. Scanning newest-to-oldest visits parents
// before their children (a child ends before its parent), so one pass
// closes the transitive set.
func (t *Tracer) collectTreeLocked(root uint64) []SpanRecord {
	n := len(t.spans)
	if n == 0 {
		return nil
	}
	count := t.next
	if t.wrapped {
		count = n
	}
	ids := map[uint64]bool{root: true}
	var tree []SpanRecord
	for i := 0; i < count && len(tree) < maxSlowTree; i++ {
		idx := (t.next - 1 - i + n) % n
		rec := t.spans[idx]
		if rec.ID == root || rec.ID == 0 {
			continue
		}
		if ids[rec.Parent] {
			ids[rec.ID] = true
			tree = append(tree, rec)
		}
	}
	for i, j := 0, len(tree)-1; i < j; i, j = i+1, j-1 {
		tree[i], tree[j] = tree[j], tree[i]
	}
	return tree
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]SpanRecord, t.next)
		copy(out, t.spans[:t.next])
		return out
	}
	out := make([]SpanRecord, 0, len(t.spans))
	out = append(out, t.spans[t.next:]...)
	out = append(out, t.spans[:t.next]...)
	return out
}

// Lanes returns the interned lane names; a SpanRecord's Lane indexes this
// slice.
func (t *Tracer) Lanes() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.laneNames))
	copy(out, t.laneNames)
	return out
}

// OpStat is one operation row of the /debug/spans summary.
type OpStat struct {
	Op      string `json:"op"`
	Count   uint64 `json:"count"`
	Errors  uint64 `json:"errors,omitempty"`
	TotalNs uint64 `json:"total_ns"`
	P50Ns   uint64 `json:"p50_ns"`
	P99Ns   uint64 `json:"p99_ns"`
}

// PhaseStat is one (op, phase) row of the /debug/spans summary.
type PhaseStat struct {
	Op      string `json:"op"`
	Phase   string `json:"phase"`
	Count   uint64 `json:"count"`
	TotalNs uint64 `json:"total_ns"`
	P50Ns   uint64 `json:"p50_ns"`
	P99Ns   uint64 `json:"p99_ns"`
}

// SpansDebug is the payload of the /debug/spans endpoint: per-op and
// per-phase latency summaries plus the captured slow operations.
type SpansDebug struct {
	TracingEnabled bool        `json:"tracing_enabled"`
	Ops            []OpStat    `json:"ops"`
	Phases         []PhaseStat `json:"phases"`
	SlowOps        []SlowOp    `json:"slow_ops,omitempty"`
}

// SpansDebug summarizes the registry's latency state for the /debug/spans
// endpoint: non-empty op rows, non-empty phase rows sorted by total time
// descending, and the tracer's slow-op captures.
func (r *Registry) SpansDebug() SpansDebug {
	var out SpansDebug
	if r == nil {
		return out
	}
	out.TracingEnabled = r.tracer.Enabled()
	for op := Op(0); op < numOps; op++ {
		s := &r.ops[op]
		h := snapHist(&s.latency)
		if n := s.count.Load(); n > 0 {
			out.Ops = append(out.Ops, OpStat{
				Op: op.String(), Count: n, Errors: s.errors.Load(),
				TotalNs: h.Sum, P50Ns: h.Quantile(0.50), P99Ns: h.Quantile(0.99),
			})
		}
	}
	for row := 0; row < numPhaseRows; row++ {
		for ph := Phase(0); ph < numPhases; ph++ {
			h := snapHist(&r.phases[row][ph])
			n := h.Total()
			if n == 0 {
				continue
			}
			out.Phases = append(out.Phases, PhaseStat{
				Op: phaseRowName(row), Phase: ph.String(), Count: n,
				TotalNs: h.Sum, P50Ns: h.Quantile(0.50), P99Ns: h.Quantile(0.99),
			})
		}
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].TotalNs > out.Phases[j].TotalNs })
	out.SlowOps = r.tracer.SlowOps()
	return out
}

// SlowOps returns the captured slow operations, oldest first.
func (t *Tracer) SlowOps() []SlowOp {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.slowWrapped {
		out := make([]SlowOp, t.slowNext)
		copy(out, t.slow[:t.slowNext])
		return out
	}
	out := make([]SlowOp, 0, len(t.slow))
	out = append(out, t.slow[t.slowNext:]...)
	out = append(out, t.slow[:t.slowNext]...)
	return out
}
