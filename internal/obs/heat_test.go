package obs

import (
	"sync"
	"testing"
)

// TestHeatSampleExact: keys inside the initial range land in exact buckets
// with bucket width 1.
func TestHeatSampleExact(t *testing.T) {
	r := NewRegistry()
	r.HeatLabelInsert(0)
	r.HeatLabelInsert(7)
	r.HeatLabelInsert(7)
	r.HeatLabelInsert(255)

	snap := r.HeatDebug().Label
	if snap.BucketWidth != 1 || snap.Shift != 0 {
		t.Fatalf("width = %d shift = %d, want 1/0", snap.BucketWidth, snap.Shift)
	}
	ins := snap.Series[heatSeriesInserts]
	if ins.Samples != 4 {
		t.Errorf("samples = %d, want 4", ins.Samples)
	}
	for b, want := range map[int]uint64{0: 1, 7: 2, 255: 1} {
		if ins.Counts[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, ins.Counts[b], want)
		}
	}
}

// TestHeatGrowFoldsExactly: a key beyond the range doubles the bucket width
// and folds counts pairwise; single-threaded the fold loses nothing.
func TestHeatGrowFoldsExactly(t *testing.T) {
	r := NewRegistry()
	for k := uint64(0); k < 256; k++ {
		r.HeatLabelInsert(k)
	}
	r.HeatLabelInsert(1000) // needs shift 2: 1000>>2 = 250

	snap := r.HeatDebug().Label
	if snap.Shift != 2 || snap.BucketWidth != 4 {
		t.Fatalf("shift = %d width = %d, want 2/4", snap.Shift, snap.BucketWidth)
	}
	ins := snap.Series[heatSeriesInserts]
	if ins.Samples != 257 {
		t.Errorf("samples = %d, want 257", ins.Samples)
	}
	var total uint64
	for b, c := range ins.Counts {
		total += c
		switch {
		case b < 64: // original 256 keys folded to 4 per bucket
			if c != 4 {
				t.Errorf("bucket %d = %d, want 4", b, c)
			}
		case b == 250: // the sample that forced the growth
			if c != 1 {
				t.Errorf("bucket 250 = %d, want 1", c)
			}
		default:
			if c != 0 {
				t.Errorf("bucket %d = %d, want 0", b, c)
			}
		}
	}
	if total != 257 {
		t.Errorf("count total = %d, want 257 (fold must conserve)", total)
	}
}

// TestHeatSharedScale: every series of a space folds together, so bucket i
// means the same key range in all of them.
func TestHeatSharedScale(t *testing.T) {
	r := NewRegistry()
	r.HeatLabelInsert(40)
	r.HeatReflog(ReflogMiss, 40)
	r.HeatLabelInsert(4000) // forces shift 4: 4000>>4 = 250

	snap := r.HeatDebug().Label
	if snap.Shift != 4 {
		t.Fatalf("shift = %d, want 4", snap.Shift)
	}
	b := 40 >> 4
	if got := snap.Series[heatSeriesInserts].Counts[b]; got != 1 {
		t.Errorf("insert bucket %d = %d, want 1", b, got)
	}
	if got := snap.Series[heatSeriesReflogMisses].Counts[b]; got != 1 {
		t.Errorf("miss bucket %d = %d, want 1 (series must share the scale)", b, got)
	}
}

// TestHeatReflogSeriesRouting maps each outcome to its named series.
func TestHeatReflogSeriesRouting(t *testing.T) {
	r := NewRegistry()
	r.HeatReflog(ReflogHit, 1)
	r.HeatReflog(ReflogRepair, 2)
	r.HeatReflog(ReflogRepair, 2)
	r.HeatReflog(ReflogMiss, 3)

	snap := r.HeatDebug().Label
	want := map[string]uint64{"inserts": 0, "reflog_hits": 1, "reflog_repairs": 2, "reflog_misses": 1}
	for _, s := range snap.Series {
		if s.Samples != want[s.Name] {
			t.Errorf("series %s samples = %d, want %d", s.Name, s.Samples, want[s.Name])
		}
	}
}

// TestHeatGauges: the /metrics summary reports sample counts, hot-bucket
// share, and occupancy, skipping empty series.
func TestHeatGauges(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 9; i++ {
		r.HeatLabelInsert(5)
	}
	r.HeatLabelInsert(200)

	gs := map[string]float64{}
	for _, g := range r.heatLabel.heatGauges() {
		gs[g.Key()] = g.Value
	}
	if len(gs) != 3 {
		t.Fatalf("gauges = %v, want exactly the 3 insert-series gauges", gs)
	}
	sel := `{space="label",series="inserts"}`
	if got := gs["boxes_heat_samples"+sel]; got != 10 {
		t.Errorf("samples = %v, want 10", got)
	}
	if got := gs["boxes_heat_hot_bucket_share"+sel]; got != 0.9 {
		t.Errorf("hot share = %v, want 0.9", got)
	}
	if got := gs["boxes_heat_occupied_buckets"+sel]; got != 2 {
		t.Errorf("occupied = %v, want 2", got)
	}
}

// TestHeatBlockSpaceFedByCostIO: the block space and ledger share one entry
// point.
func TestHeatBlockSpaceFedByCostIO(t *testing.T) {
	r := NewRegistry()
	r.CostIO(true, false, 9)
	r.CostIO(false, true, 9)

	snap := r.HeatDebug().Block
	if got := snap.Series[heatSeriesBlockReads].Counts[9]; got != 1 {
		t.Errorf("read bucket 9 = %d, want 1", got)
	}
	if got := snap.Series[heatSeriesBlockWrites].Counts[9]; got != 1 {
		t.Errorf("write bucket 9 = %d, want 1", got)
	}
}

// TestHeatConcurrentSamples hammers one space from many goroutines across
// a growth boundary; run under -race this is the data-race check, and the
// invariants checked after are the ones the design promises even with the
// documented bounded loss: shift large enough for every key, and per-series
// sample totals exact (samples is a plain atomic add).
func TestHeatConcurrentSamples(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Walk outward so growth happens mid-flight, several times.
				r.HeatLabelInsert(uint64(i) * uint64(g+1))
			}
		}(g)
	}
	wg.Wait()

	snap := r.HeatDebug().Label
	maxKey := uint64(perG-1) * goroutines
	if maxKey>>snap.Shift >= heatBuckets {
		t.Errorf("shift %d does not cover max key %d", snap.Shift, maxKey)
	}
	ins := snap.Series[heatSeriesInserts]
	if ins.Samples != goroutines*perG {
		t.Errorf("samples = %d, want %d", ins.Samples, goroutines*perG)
	}
	var total uint64
	for _, c := range ins.Counts {
		total += c
	}
	if total > ins.Samples {
		t.Errorf("bucket total %d exceeds samples %d", total, ins.Samples)
	}
}
