package obs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runOp drives one instrumented operation through the registry, optionally
// failing it.
func runOp(r *Registry, scheme string, op Op, err error) {
	c := r.Begin(scheme, op, 0, 0)
	r.End(c, 3, 1, err)
}

func TestFlightRecorderDumpsOnError(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	f := NewFlightRecorder(r, dir, 16)
	r.AddHook(f)
	r.RegisterCollector(CollectorFunc(func() []GaugeValue {
		return []GaugeValue{G("boxes_tree_height", "h", 3, "scheme", "W-BOX")}
	}))

	for i := 0; i < 5; i++ {
		runOp(r, "W-BOX", OpInsert, nil)
	}
	if f.Dumps() != 0 {
		t.Fatalf("dumps after successes = %d, want 0", f.Dumps())
	}
	runOp(r, "W-BOX", OpInsert, errors.New("injected failure: budget exhausted"))

	if f.Dumps() != 1 {
		t.Fatalf("dumps = %d, want 1", f.Dumps())
	}
	if f.Err() != nil {
		t.Fatalf("recorder error: %v", f.Err())
	}
	path := f.LastDump()
	if path == "" {
		t.Fatal("no dump path recorded")
	}

	d, err := ReadCrashDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trigger.Scheme != "W-BOX" || d.Trigger.Op != "insert" {
		t.Errorf("trigger = %+v", d.Trigger)
	}
	if !strings.Contains(d.Trigger.Error, "injected failure") {
		t.Errorf("trigger error = %q", d.Trigger.Error)
	}
	// The ring holds starts and ends of the preceding ops plus the failure.
	if len(d.Events) < 6 {
		t.Errorf("only %d events retained", len(d.Events))
	}
	last := d.Events[len(d.Events)-1]
	if last.Error == "" {
		t.Errorf("newest ring event is not the failure: %+v", last)
	}
	// The dump carries the registered structural gauge alongside the
	// registry's own amortized-ledger gauges.
	found := false
	for _, g := range d.Gauges {
		if g.Name == "boxes_tree_height" {
			found = true
		}
	}
	if !found {
		t.Errorf("boxes_tree_height missing from gauges = %+v", d.Gauges)
	}
	if d.Metrics.Ops["insert"].Errors != 1 {
		t.Errorf("metrics snapshot errors = %d, want 1", d.Metrics.Ops["insert"].Errors)
	}
}

func TestFlightRecorderRespectsDumpLimit(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	f := NewFlightRecorder(r, dir, 8)
	f.SetDumpLimit(2)
	r.AddHook(f)

	for i := 0; i < 5; i++ {
		runOp(r, "B-BOX", OpDelete, errors.New("persistent fault"))
	}
	if f.Dumps() != 2 {
		t.Fatalf("dumps = %d, want 2", f.Dumps())
	}
	files, err := filepath.Glob(filepath.Join(dir, "crash-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d crash files on disk, want 2: %v", len(files), files)
	}
}

func TestReadCrashDumpRejectsBadVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCrashDump(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("naive-4/k=2"); got != "naive-4_k_2" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "unknown" {
		t.Errorf("sanitize empty = %q", got)
	}
}
