// Label-space and block heat maps.
//
// Two fixed-resolution (256-bucket) histogram spaces answer "WHERE does
// the work land":
//
//   - The label space maps insertion density over the 64-bit label key
//     space, with parallel series attributing reflog-cache outcomes (hit,
//     repair, miss) to the same buckets — so a skewed workload shows up as
//     a hot insertion band, and the reflog series show whether the cache
//     absorbs exactly that band (the paper's §6 claim) or pays misses in
//     it.
//   - The block space maps read/write heat over pager block ids, fed from
//     the same CostIO call that feeds the ledger.
//
// Both spaces auto-scale by range doubling: when a key exceeds the covered
// range, the bucket width doubles and every series folds in place
// (counts[j] = counts[2j] + counts[2j+1]). All series of a space share one
// scale, so cross-series bucket comparison is always valid. The fold bumps
// the shift before rewriting counts; a sample racing the fold may land one
// bucket off or be overwritten — a bounded, documented loss (single-
// threaded use is exact), which keeps the sample fast path to two atomic
// adds with no lock.
package obs

import (
	"sync"
	"sync/atomic"
)

// heatBuckets is the fixed resolution of every heat space.
const heatBuckets = 256

// heatSpace is one auto-scaling heat-map space: parallel series of 256
// atomic buckets sharing a single power-of-two bucket width (1<<shift).
// It is embedded in Registry and initialized in place (initHeat), never
// copied.
type heatSpace struct {
	name        string
	seriesNames []string
	mu          sync.Mutex // serializes folds and snapshots
	shift       atomic.Uint32
	series      [][heatBuckets]atomic.Uint64
	samples     []atomic.Uint64
}

func (h *heatSpace) initHeat(name string, seriesNames []string) {
	h.name = name
	h.seriesNames = seriesNames
	h.series = make([][heatBuckets]atomic.Uint64, len(seriesNames))
	h.samples = make([]atomic.Uint64, len(seriesNames))
}

// Series indices of the label heat space.
const (
	heatSeriesInserts = iota
	heatSeriesReflogHits
	heatSeriesReflogRepairs
	heatSeriesReflogMisses
	numLabelSeries
)

// Series indices of the block heat space.
const (
	heatSeriesBlockReads = iota
	heatSeriesBlockWrites
	numBlockSeries
)

var labelSeriesNames = [numLabelSeries]string{
	heatSeriesInserts:       "inserts",
	heatSeriesReflogHits:    "reflog_hits",
	heatSeriesReflogRepairs: "reflog_repairs",
	heatSeriesReflogMisses:  "reflog_misses",
}

var blockSeriesNames = [numBlockSeries]string{
	heatSeriesBlockReads:  "reads",
	heatSeriesBlockWrites: "writes",
}

// ReflogOutcome classifies one reflog-cache lookup for heat attribution.
type ReflogOutcome uint8

const (
	// ReflogHit: answered fresh from the cache.
	ReflogHit ReflogOutcome = iota
	// ReflogRepair: repaired by modification-log replay.
	ReflogRepair
	// ReflogMiss: paid the full I/O cost.
	ReflogMiss
)

// HeatLabelInsert samples one insertion at the given label key.
func (r *Registry) HeatLabelInsert(label uint64) {
	if r == nil {
		return
	}
	r.heatLabel.sample(heatSeriesInserts, label)
}

// HeatReflog attributes one reflog-cache outcome to the label heat bucket
// of the looked-up key, on the series matching the outcome.
func (r *Registry) HeatReflog(outcome ReflogOutcome, label uint64) {
	if r == nil {
		return
	}
	series := heatSeriesReflogHits
	switch outcome {
	case ReflogRepair:
		series = heatSeriesReflogRepairs
	case ReflogMiss:
		series = heatSeriesReflogMisses
	}
	r.heatLabel.sample(series, label)
}

// HeatSeriesSnap is one series of a heat-space snapshot.
type HeatSeriesSnap struct {
	Name    string   `json:"name"`
	Samples uint64   `json:"samples"`
	Counts  []uint64 `json:"counts"`
}

// HeatSpaceSnap is a point-in-time copy of one heat space. Bucket i covers
// keys [i*BucketWidth, (i+1)*BucketWidth).
type HeatSpaceSnap struct {
	Space       string           `json:"space"`
	Shift       uint32           `json:"shift"`
	BucketWidth uint64           `json:"bucket_width"`
	Buckets     int              `json:"buckets"`
	Series      []HeatSeriesSnap `json:"series"`
}

// snapshot copies the space under the fold lock, so the scale and counts
// are mutually consistent.
func (h *heatSpace) snapshot() HeatSpaceSnap {
	h.mu.Lock()
	defer h.mu.Unlock()
	shift := h.shift.Load()
	out := HeatSpaceSnap{
		Space:       h.name,
		Shift:       shift,
		BucketWidth: uint64(1) << shift,
		Buckets:     heatBuckets,
	}
	for i := range h.series {
		s := HeatSeriesSnap{
			Name:    h.seriesNames[i],
			Samples: h.samples[i].Load(),
			Counts:  make([]uint64, heatBuckets),
		}
		for j := 0; j < heatBuckets; j++ {
			s.Counts[j] = h.series[i][j].Load()
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// heatGauges summarizes one space for /metrics: per series, the sample
// count, the share of samples in the hottest bucket (skew measure), and
// the number of occupied buckets (spread measure).
func (h *heatSpace) heatGauges() []GaugeValue {
	snap := h.snapshot()
	var out []GaugeValue
	for _, s := range snap.Series {
		var total, hottest uint64
		occupied := 0
		for _, c := range s.Counts {
			total += c
			if c > hottest {
				hottest = c
			}
			if c > 0 {
				occupied++
			}
		}
		if total == 0 {
			continue
		}
		out = append(out,
			G("boxes_heat_samples", "Heat-map samples recorded.", float64(total),
				"space", snap.Space, "series", s.Name),
			G("boxes_heat_hot_bucket_share", "Share of samples in the hottest bucket (1/256 = uniform, 1 = a single hot spot).",
				float64(hottest)/float64(total), "space", snap.Space, "series", s.Name),
			G("boxes_heat_occupied_buckets", "Number of nonzero heat buckets (out of 256).", float64(occupied),
				"space", snap.Space, "series", s.Name),
		)
	}
	return out
}

// HeatDebugPayload is the /debug/heat JSON document: both heat spaces, the
// full cost ledger, per-scheme op counts, the amortized ratios, and a
// live (relaxed) conservation check.
type HeatDebugPayload struct {
	Label          HeatSpaceSnap   `json:"label_space"`
	Block          HeatSpaceSnap   `json:"block_space"`
	Ledger         []LedgerCell    `json:"ledger"`
	Ops            []LedgerOpCount `json:"ops"`
	Amortized      []GaugeValue    `json:"amortized"`
	ConservationOK bool            `json:"conservation_ok"`
	ConservationEr string          `json:"conservation_error,omitempty"`
}

// HeatDebug assembles the /debug/heat payload.
func (r *Registry) HeatDebug() HeatDebugPayload {
	var out HeatDebugPayload
	if r == nil {
		return out
	}
	out.Label = r.heatLabel.snapshot()
	out.Block = r.heatBlock.snapshot()
	out.Ledger = r.LedgerCells()
	out.Ops = r.LedgerOpCounts()
	out.Amortized = r.amortizedGaugesAll()
	if err := r.CheckLedger(false); err != nil {
		out.ConservationEr = err.Error()
	} else {
		out.ConservationOK = true
	}
	return out
}

// sample adds one observation at key to the given series, doubling the
// space's range first when the key falls outside it.
func (h *heatSpace) sample(series int, key uint64) {
	sh := h.shift.Load()
	if key>>sh >= heatBuckets {
		h.grow(key)
		sh = h.shift.Load()
	}
	b := key >> sh
	if b >= heatBuckets {
		// A concurrent grow raced our reload; clamp rather than drop.
		b = heatBuckets - 1
	}
	h.series[series][b].Add(1)
	h.samples[series].Add(1)
}

// grow doubles the bucket width until key fits, folding every series in
// place. The shift is bumped before the fold so concurrent samples use the
// new scale immediately; a sample landing in a bucket mid-fold may be
// overwritten (bounded loss, see the package comment).
func (h *heatSpace) grow(key uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		sh := h.shift.Load()
		if key>>sh < heatBuckets {
			return
		}
		h.shift.Store(sh + 1)
		for s := range h.series {
			c := &h.series[s]
			for j := 0; j < heatBuckets/2; j++ {
				c[j].Store(c[2*j].Load() + c[2*j+1].Load())
			}
			for j := heatBuckets / 2; j < heatBuckets; j++ {
				c[j].Store(0)
			}
		}
	}
}
