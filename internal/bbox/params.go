// Package bbox implements B-BOX, the back-linked B-tree for ordering XML
// of Section 5 of the paper, including the ordinal-labeling variant the
// experiments call B-BOX-O.
//
// A B-BOX stores no label values at all. Leaves hold only LIDs; internal
// nodes hold only child pointers (plus optional size fields) and a
// back-link to their parent. The label of a record is the vector of child
// ordinals on the root-to-leaf path, reconstructed bottom-up on demand, and
// exposed packed into a uint64 (fixed bits per component) so that labels
// obtained at the same time compare correctly as integers.
package bbox

import (
	"fmt"
)

const nodeHeaderSize = 16 // type(1) count(2) pad(5) parent(8)

// Params holds the structural parameters of a B-BOX.
type Params struct {
	BlockSize int
	// Ordinal maintains per-entry size fields (the paper's B-BOX-O),
	// enabling exact ordinal labels at O(log_B N) update cost.
	Ordinal bool
	// Relaxed lowers the minimum fan-out from B/2 to B/4, the Section 5
	// variant that guarantees O(1) amortized updates under mixed
	// insert/delete workloads at the price of slightly longer labels.
	Relaxed bool

	LeafCap   int // max records per leaf
	Fanout    int // max children per internal node
	MinLeaf   int // min records per non-root leaf
	MinFanout int // min children per non-root internal node

	compBits uint // bits per label component when packing into a uint64
}

// NewParams derives B-BOX parameters from the block size.
func NewParams(blockSize int, ordinal, relaxed bool) (Params, error) {
	leafCap := (blockSize - nodeHeaderSize) / 8
	entrySize := 8
	if ordinal {
		entrySize = 16
	}
	fanout := (blockSize - nodeHeaderSize) / entrySize
	if leafCap < 8 || fanout < 8 {
		return Params{}, fmt.Errorf("bbox: block size %d too small (leaf cap %d, fan-out %d)", blockSize, leafCap, fanout)
	}
	div := 2
	if relaxed {
		div = 4
	}
	p := Params{
		BlockSize: blockSize,
		Ordinal:   ordinal,
		Relaxed:   relaxed,
		LeafCap:   leafCap,
		Fanout:    fanout,
		MinLeaf:   leafCap / div,
		MinFanout: fanout / div,
	}
	maxSlot := leafCap
	if fanout > maxSlot {
		maxSlot = fanout
	}
	for (1 << p.compBits) < maxSlot {
		p.compBits++
	}
	return p, nil
}

// maxPackedHeight is the deepest tree whose labels still pack into 64 bits.
func (p Params) maxPackedHeight() int { return 64 / int(p.compBits) }
