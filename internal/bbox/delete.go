package bbox

import (
	"fmt"

	"boxes/internal/order"
	"boxes/internal/pager"
)

// DeleteSubtree implements order.Labeler: remove the contiguous record
// range from start's position to end's position (an element and its
// descendants). The tree is "ripped" along both boundary paths: interior
// subtrees are freed wholesale in O(N'/B) I/Os, boundary nodes are edited
// in place, and underflows are repaired with ordinary borrows and merges —
// O(B·log_B N) structure cost as in Section 5.
func (l *Labeler) DeleteSubtree(start, end order.LID) (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	stepsS, err := l.pathOf(start)
	if err != nil {
		return err
	}
	stepsE, err := l.pathOf(end)
	if err != nil {
		return err
	}
	h := l.height
	pathS := make([]int, h)
	pathE := make([]int, h)
	for k, st := range stepsS {
		pathS[h-1-k] = st.pos
	}
	for k, st := range stepsE {
		pathE[h-1-k] = st.pos
	}
	for d := 0; d < h; d++ {
		if pathS[d] < pathE[d] {
			break
		}
		if pathS[d] > pathE[d] {
			return fmt.Errorf("bbox: delete range start after end")
		}
	}
	predLID, err := l.findPredecessor(stepsS)
	if err != nil {
		return err
	}
	succLID, err := l.findSuccessor(stepsE)
	if err != nil {
		return err
	}
	if l.p.Ordinal && l.ologger != nil {
		o1, err := l.ordinalOfPos(stepsS[0].n, stepsS[0].pos)
		if err != nil {
			return err
		}
		o2, err := l.ordinalOfPos(stepsE[0].n, stepsE[0].pos)
		if err != nil {
			return err
		}
		l.ologger.LogInvalidate(o1, o2)
		l.logOrdinalShift(o2+1, -int64(o2-o1+1))
	}

	removed, empty, err := l.removeRangeNode(l.root, pathS, pathE, 0, true, true)
	if err != nil {
		return err
	}
	l.count -= removed
	l.logInvalidateAll()
	if empty {
		l.root = pager.NilBlock
		l.height = 0
		return nil
	}
	return l.repairAlong([]order.LID{predLID, succLID})
}

// removeRangeNode removes every record between the top-down child-index
// paths pathS and pathE (inclusive at both ends) from blk's subtree.
func (l *Labeler) removeRangeNode(blk pager.BlockID, pathS, pathE []int, depth int, onLeft, onRight bool) (removed uint64, empty bool, err error) {
	n, err := l.readNode(blk)
	if err != nil {
		return 0, false, err
	}
	if n.leaf {
		lo := 0
		if onLeft {
			lo = pathS[depth]
		}
		hi := len(n.lids) - 1
		if onRight {
			hi = pathE[depth]
		}
		for _, lid := range n.lids[lo : hi+1] {
			if err := l.file.Free(lid); err != nil {
				return 0, false, err
			}
		}
		removed = uint64(hi + 1 - lo)
		n.lids = append(n.lids[:lo], n.lids[hi+1:]...)
		if len(n.lids) == 0 {
			if err := l.store.Free(n.blk); err != nil {
				return 0, false, err
			}
			return removed, true, nil
		}
		return removed, false, l.writeNode(n)
	}

	lo := 0
	if onLeft {
		lo = pathS[depth]
	}
	hi := len(n.ents) - 1
	if onRight {
		hi = pathE[depth]
	}
	keep := append([]entry(nil), n.ents[:lo]...)
	for i := lo; i <= hi; i++ {
		leftBoundary := onLeft && i == lo
		rightBoundary := onRight && i == hi
		if !leftBoundary && !rightBoundary {
			w, err := l.freeSubtreeLIDs(n.ents[i].child)
			if err != nil {
				return 0, false, err
			}
			removed += w
			continue
		}
		rem, childEmpty, err := l.removeRangeNode(n.ents[i].child, pathS, pathE, depth+1, leftBoundary, rightBoundary)
		if err != nil {
			return 0, false, err
		}
		removed += rem
		if childEmpty {
			continue
		}
		e := n.ents[i]
		e.size -= rem
		keep = append(keep, e)
	}
	keep = append(keep, n.ents[hi+1:]...)
	if len(keep) == 0 {
		if err := l.store.Free(n.blk); err != nil {
			return 0, false, err
		}
		return removed, true, nil
	}
	n.ents = keep
	return removed, false, l.writeNode(n)
}

// freeSubtreeLIDs releases blk's whole subtree: every node block and the
// LIDF records of every label below it.
func (l *Labeler) freeSubtreeLIDs(blk pager.BlockID) (uint64, error) {
	n, err := l.readNode(blk)
	if err != nil {
		return 0, err
	}
	var removed uint64
	if n.leaf {
		for _, lid := range n.lids {
			if err := l.file.Free(lid); err != nil {
				return 0, err
			}
		}
		removed = uint64(len(n.lids))
	} else {
		for i := range n.ents {
			w, err := l.freeSubtreeLIDs(n.ents[i].child)
			if err != nil {
				return 0, err
			}
			removed += w
		}
	}
	if err := l.store.Free(n.blk); err != nil {
		return 0, err
	}
	return removed, nil
}
