package bbox

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"boxes/internal/pager"
)

// MarshalMeta serializes the B-BOX's root pointer, height, count, and LIDF
// bookkeeping so the structure can be reopened over a persistent backend.
func (l *Labeler) MarshalMeta() []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, boolByte(l.p.Ordinal))
	binary.Write(&buf, binary.LittleEndian, boolByte(l.p.Relaxed))
	binary.Write(&buf, binary.LittleEndian, uint64(l.root))
	binary.Write(&buf, binary.LittleEndian, uint32(l.height))
	binary.Write(&buf, binary.LittleEndian, l.count)
	lm := l.file.MarshalMeta()
	binary.Write(&buf, binary.LittleEndian, uint32(len(lm)))
	buf.Write(lm)
	return buf.Bytes()
}

// RestoreMeta restores state saved by MarshalMeta into a freshly created
// (empty) B-BOX with identical parameters over the same backend.
func (l *Labeler) RestoreMeta(data []byte) error {
	r := bytes.NewReader(data)
	var ordinal, relaxed uint8
	if err := binary.Read(r, binary.LittleEndian, &ordinal); err != nil {
		return fmt.Errorf("bbox: meta: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &relaxed); err != nil {
		return err
	}
	if (ordinal == 1) != l.p.Ordinal || (relaxed == 1) != l.p.Relaxed {
		return fmt.Errorf("bbox: meta flags (%d,%d) do not match parameters (%v,%v)",
			ordinal, relaxed, l.p.Ordinal, l.p.Relaxed)
	}
	var root uint64
	var height uint32
	if err := binary.Read(r, binary.LittleEndian, &root); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &height); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &l.count); err != nil {
		return err
	}
	var lmLen uint32
	if err := binary.Read(r, binary.LittleEndian, &lmLen); err != nil {
		return err
	}
	lm := make([]byte, lmLen)
	if _, err := r.Read(lm); err != nil {
		return err
	}
	if err := l.file.RestoreMeta(lm); err != nil {
		return err
	}
	l.root = pager.BlockID(root)
	l.height = int(height)
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
