package bbox

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
)

// TestQuickMixedWithSubtreeOps drives random workloads that interleave
// element inserts/deletes with bulk subtree inserts and deletes, checking
// the full labeling validity and structural invariants after every bulk
// operation and at the end.
func TestQuickMixedWithSubtreeOps(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		ordinal := sel%2 == 1
		relaxed := (sel/2)%2 == 1
		store := pager.NewMemStore(512)
		p, err := NewParams(512, ordinal, relaxed)
		if err != nil {
			return false
		}
		l, err := New(store, p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		o := order.NewOracle()
		elems, err := l.BulkLoad(order.TagStreamFromPairs(30))
		if err != nil {
			return false
		}
		lids := make([]order.LID, 0, 60)
		for i, e := range elems {
			if i == 0 {
				lids = append(lids, e.Start)
			} else {
				lids = append(lids, e.Start, e.End)
			}
		}
		lids = append(lids, elems[0].End)
		o.Load(lids)
		// Track insertable subtree roots (element pairs) for deletion.
		subtrees := [][]order.ElemLIDs{}
		live := append([]order.ElemLIDs(nil), elems...)
		for i := 0; i < 40; i++ {
			switch rng.Intn(5) {
			case 0: // subtree insert
				target := live[rng.Intn(len(live))]
				anchor := target.Start
				n := 3 + rng.Intn(10)
				tags := order.TagStreamFromPairs(n)
				newElems, err := l.InsertSubtreeBefore(anchor, tags)
				if err != nil {
					t.Logf("subtree insert: %v", err)
					return false
				}
				newLids := make([]order.LID, len(tags))
				for j, tg := range tags {
					if tg.Start {
						newLids[j] = newElems[tg.Elem].Start
					} else {
						newLids[j] = newElems[tg.Elem].End
					}
				}
				if err := o.InsertSliceBefore(newLids, anchor); err != nil {
					return false
				}
				subtrees = append(subtrees, newElems)
				if err := l.CheckInvariants(); err != nil {
					t.Logf("after subtree insert: %v", err)
					return false
				}
			case 1: // subtree delete
				if len(subtrees) == 0 {
					continue
				}
				idx := rng.Intn(len(subtrees))
				st := subtrees[idx]
				subtrees = append(subtrees[:idx], subtrees[idx+1:]...)
				root := st[0]
				if err := l.DeleteSubtree(root.Start, root.End); err != nil {
					t.Logf("subtree delete: %v", err)
					return false
				}
				if err := o.DeleteRange(root.Start, root.End); err != nil {
					return false
				}
				if err := l.CheckInvariants(); err != nil {
					t.Logf("after subtree delete: %v", err)
					return false
				}
			case 2: // element delete (only from base doc tail, keeping it simple)
				if len(live) > 2 {
					idx := 1 + rng.Intn(len(live)-1)
					v := live[idx]
					if err := l.Delete(v.Start); err != nil {
						t.Logf("delete: %v", err)
						return false
					}
					if err := l.Delete(v.End); err != nil {
						return false
					}
					if o.Delete(v.Start) != nil || o.Delete(v.End) != nil {
						return false
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			default: // element insert
				target := live[rng.Intn(len(live))]
				anchor := target.End
				if rng.Intn(2) == 0 {
					anchor = target.Start
				}
				ne, err := l.InsertElementBefore(anchor)
				if err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				if err := o.InsertElementBefore(ne, anchor); err != nil {
					return false
				}
				live = append(live, ne)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Logf("final invariants: %v", err)
			return false
		}
		if err := o.CheckAgainst(l, ordinal); err != nil {
			t.Logf("final oracle: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
