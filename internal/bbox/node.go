package bbox

import (
	"encoding/binary"
	"fmt"

	"boxes/internal/order"
	"boxes/internal/pager"
)

const (
	nodeTypeLeaf     = 1
	nodeTypeInternal = 2
)

// entry is one child entry of an internal node.
type entry struct {
	child pager.BlockID
	size  uint64 // records below child (maintained only with Ordinal)
}

// node is the in-memory image of one B-BOX block.
type node struct {
	blk    pager.BlockID
	leaf   bool
	parent pager.BlockID // back-link; NilBlock at the root

	lids []order.LID // leaf records
	ents []entry     // internal entries
}

func (n *node) count() int {
	if n.leaf {
		return len(n.lids)
	}
	return len(n.ents)
}

// findLID returns the index of lid in a leaf, or -1.
func (n *node) findLID(lid order.LID) int {
	for i, l := range n.lids {
		if l == lid {
			return i
		}
	}
	return -1
}

// findChild returns the index of the entry pointing at child, or -1.
func (n *node) findChild(child pager.BlockID) int {
	for i := range n.ents {
		if n.ents[i].child == child {
			return i
		}
	}
	return -1
}

// size reports the number of records in n's subtree, from the in-memory
// image (entry size fields for internal nodes).
func (n *node) size() uint64 {
	if n.leaf {
		return uint64(len(n.lids))
	}
	var s uint64
	for i := range n.ents {
		s += n.ents[i].size
	}
	return s
}

func (l *Labeler) readNode(blk pager.BlockID) (*node, error) {
	buf, err := l.store.Read(blk)
	if err != nil {
		return nil, err
	}
	return l.decodeNode(blk, buf)
}

func (l *Labeler) decodeNode(blk pager.BlockID, buf []byte) (*node, error) {
	typ := buf[0]
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	parent := pager.BlockID(binary.LittleEndian.Uint64(buf[8:16]))
	n := &node{blk: blk, parent: parent}
	off := nodeHeaderSize
	switch typ {
	case nodeTypeLeaf:
		n.leaf = true
		if count > l.p.LeafCap {
			return nil, fmt.Errorf("bbox: leaf %d holds %d records, cap %d", blk, count, l.p.LeafCap)
		}
		n.lids = make([]order.LID, count)
		for i := 0; i < count; i++ {
			n.lids[i] = order.LID(binary.LittleEndian.Uint64(buf[off : off+8]))
			off += 8
		}
	case nodeTypeInternal:
		if count > l.p.Fanout {
			return nil, fmt.Errorf("bbox: node %d holds %d entries, fan-out %d", blk, count, l.p.Fanout)
		}
		n.ents = make([]entry, count)
		for i := 0; i < count; i++ {
			n.ents[i].child = pager.BlockID(binary.LittleEndian.Uint64(buf[off : off+8]))
			off += 8
			if l.p.Ordinal {
				n.ents[i].size = binary.LittleEndian.Uint64(buf[off : off+8])
				off += 8
			}
		}
	default:
		return nil, fmt.Errorf("bbox: block %d has unknown node type %d", blk, typ)
	}
	return n, nil
}

func (l *Labeler) writeNode(n *node) error {
	buf := make([]byte, l.p.BlockSize)
	if n.leaf {
		buf[0] = nodeTypeLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.lids)))
	} else {
		buf[0] = nodeTypeInternal
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.ents)))
	}
	binary.LittleEndian.PutUint64(buf[8:16], uint64(n.parent))
	off := nodeHeaderSize
	if n.leaf {
		if len(n.lids) > l.p.LeafCap {
			return fmt.Errorf("bbox: leaf %d overflow: %d records", n.blk, len(n.lids))
		}
		for _, lid := range n.lids {
			binary.LittleEndian.PutUint64(buf[off:off+8], uint64(lid))
			off += 8
		}
	} else {
		if len(n.ents) > l.p.Fanout {
			return fmt.Errorf("bbox: node %d overflow: %d entries", n.blk, len(n.ents))
		}
		for i := range n.ents {
			binary.LittleEndian.PutUint64(buf[off:off+8], uint64(n.ents[i].child))
			off += 8
			if l.p.Ordinal {
				binary.LittleEndian.PutUint64(buf[off:off+8], n.ents[i].size)
				off += 8
			}
		}
	}
	return l.store.Write(n.blk, buf)
}

func (l *Labeler) allocNode(leaf bool, parent pager.BlockID) (*node, error) {
	blk, err := l.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &node{blk: blk, leaf: leaf, parent: parent}, nil
}
