package bbox

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// BulkLoad implements order.Labeler: a single pass over the tag stream
// packs the leaves, internal levels are stacked on top, and back-links are
// assigned as nodes are written: O(N/B) I/Os, no sorting.
func (l *Labeler) BulkLoad(tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if l.root != pager.NilBlock {
		return nil, order.ErrNotEmpty
	}
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	elems, lids, err := l.allocTagLIDs(tags)
	if err != nil {
		return nil, err
	}
	top, height, err := l.buildTree(lids)
	if err != nil {
		return nil, err
	}
	l.root = top.blk
	l.height = height
	l.count = uint64(len(lids))
	return elems, nil
}

// allocTagLIDs allocates LIDF pairs for every element of a tag stream and
// returns both the per-element pairs and the flat LID sequence in document
// order.
func (l *Labeler) allocTagLIDs(tags []order.Tag) ([]order.ElemLIDs, []order.LID, error) {
	elems := make([]order.ElemLIDs, len(tags)/2)
	lids := make([]order.LID, len(tags))
	for i, t := range tags {
		if t.Start {
			s, e, err := l.file.AllocPair()
			if err != nil {
				return nil, nil, err
			}
			elems[t.Elem] = order.ElemLIDs{Start: s, End: e}
			lids[i] = s
		} else {
			lids[i] = elems[t.Elem].End
		}
	}
	return elems, lids, nil
}

// buildTree builds a detached B-BOX over lids (in document order), writing
// every node and pointing the LIDF at the leaves. It returns the top node
// (whose parent is NilBlock) and the height.
func (l *Labeler) buildTree(lids []order.LID) (*node, int, error) {
	if len(lids) == 0 {
		return nil, 0, order.ErrEmpty
	}
	// Pack leaves.
	var leaves []*node
	for off := 0; off < len(lids); off += l.p.LeafCap {
		end := off + l.p.LeafCap
		if end > len(lids) {
			end = len(lids)
		}
		leaf, err := l.allocNode(true, pager.NilBlock)
		if err != nil {
			return nil, 0, err
		}
		leaf.lids = append(leaf.lids, lids[off:end]...)
		leaves = append(leaves, leaf)
	}
	if len(leaves) >= 2 {
		last, prev := leaves[len(leaves)-1], leaves[len(leaves)-2]
		if len(last.lids) < l.p.MinLeaf {
			combined := append(append([]order.LID(nil), prev.lids...), last.lids...)
			half := (len(combined) + 1) / 2
			prev.lids = append(prev.lids[:0:0], combined[:half]...)
			last.lids = append(last.lids[:0:0], combined[half:]...)
		}
	}
	// Stack internal levels.
	levels := [][]*node{leaves}
	cur := leaves
	for len(cur) > 1 {
		var next []*node
		for off := 0; off < len(cur); off += l.p.Fanout {
			end := off + l.p.Fanout
			if end > len(cur) {
				end = len(cur)
			}
			n, err := l.allocNode(false, pager.NilBlock)
			if err != nil {
				return nil, 0, err
			}
			for _, c := range cur[off:end] {
				n.ents = append(n.ents, entry{child: c.blk})
			}
			next = append(next, n)
		}
		if len(next) >= 2 {
			last, prev := next[len(next)-1], next[len(next)-2]
			if len(last.ents) < l.p.MinFanout {
				combined := append(append([]entry(nil), prev.ents...), last.ents...)
				half := (len(combined) + 1) / 2
				prev.ents = append(prev.ents[:0:0], combined[:half]...)
				last.ents = append(last.ents[:0:0], combined[half:]...)
			}
		}
		levels = append(levels, next)
		cur = next
	}
	// Back-links and sizes: every node knows its children's images.
	byBlk := make(map[pager.BlockID]*node)
	for _, lvl := range levels {
		for _, n := range lvl {
			byBlk[n.blk] = n
		}
	}
	sizes := make(map[pager.BlockID]uint64)
	for _, leaf := range leaves {
		sizes[leaf.blk] = uint64(len(leaf.lids))
	}
	for _, lvl := range levels[1:] {
		for _, n := range lvl {
			var total uint64
			for i := range n.ents {
				byBlk[n.ents[i].child].parent = n.blk
				n.ents[i].size = sizes[n.ents[i].child]
				total += n.ents[i].size
			}
			sizes[n.blk] = total
		}
	}
	// Write everything and point the LIDF at the leaves.
	for _, lvl := range levels {
		for _, n := range lvl {
			if err := l.writeNode(n); err != nil {
				return nil, 0, err
			}
		}
	}
	for _, leaf := range leaves {
		for _, lid := range leaf.lids {
			if err := l.file.SetU64(lid, uint64(leaf.blk)); err != nil {
				return nil, 0, err
			}
		}
	}
	return cur[0], len(levels), nil
}

// planTreeHeight predicts buildTree's height for n records.
func (p Params) planTreeHeight(n int) int {
	if n <= 0 {
		return 0
	}
	cnt := (n + p.LeafCap - 1) / p.LeafCap
	h := 1
	for cnt > 1 {
		cnt = (cnt + p.Fanout - 1) / p.Fanout
		h++
	}
	return h
}

// collectLIDs gathers the LIDs below blk in document order; when free is
// set every node of the subtree is released and the LIDF records are NOT
// touched (the caller re-homes or frees them).
func (l *Labeler) collectLIDs(blk pager.BlockID, free bool) ([]order.LID, error) {
	n, err := l.readNode(blk)
	if err != nil {
		return nil, err
	}
	var out []order.LID
	if n.leaf {
		out = append(out, n.lids...)
	} else {
		for i := range n.ents {
			sub, err := l.collectLIDs(n.ents[i].child, free)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
	}
	if free {
		if err := l.store.Free(n.blk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InsertSubtreeBefore implements order.Labeler using the paper's "ripping"
// technique: bulk load the new data into a detached B-BOX T', rip the host
// tree open along the insertion path for height(T') levels, and graft T'
// into the gap so all leaves stay at the same depth. Cost:
// O(N'/B + B·log_B N).
func (l *Labeler) InsertSubtreeBefore(lidOld order.LID, tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf0, idx0, err := l.leafOf(lidOld)
	if err != nil {
		return nil, err
	}
	if l.p.Ordinal && l.ologger != nil {
		ord, err := l.ordinalOfPos(leaf0, idx0)
		if err != nil {
			return nil, err
		}
		l.logOrdinalShift(ord, int64(len(tags)))
	}
	elems, newLIDs, err := l.allocTagLIDs(tags)
	if err != nil {
		return nil, err
	}
	hp := l.p.planTreeHeight(len(newLIDs))
	if hp >= l.height {
		// T' would be as tall as the host: rebuild the combined tree.
		if err := l.rebuildSplice(lidOld, newLIDs); err != nil {
			return nil, err
		}
		l.logInvalidateAll()
		return elems, nil
	}
	if err := l.ripAndGraft(lidOld, newLIDs, hp); err != nil {
		return nil, err
	}
	l.logInvalidateAll()
	return elems, nil
}

// rebuildSplice rebuilds the whole tree with newLIDs inserted immediately
// before lidOld.
func (l *Labeler) rebuildSplice(lidOld order.LID, newLIDs []order.LID) error {
	l.store.Observer().Inc(obs.CtrBBoxRebuilds)
	all, err := l.collectLIDs(l.root, true)
	if err != nil {
		return err
	}
	at := -1
	for i, lid := range all {
		if lid == lidOld {
			at = i
			break
		}
	}
	if at < 0 {
		return order.ErrUnknownLID
	}
	merged := make([]order.LID, 0, len(all)+len(newLIDs))
	merged = append(merged, all[:at]...)
	merged = append(merged, newLIDs...)
	merged = append(merged, all[at:]...)
	top, height, err := l.buildTree(merged)
	if err != nil {
		return err
	}
	l.root = top.blk
	l.height = height
	l.count = uint64(len(merged))
	return nil
}

// ripAndGraft opens the tree along lidOld's path and grafts a freshly
// built T' (height hp < height) into the gap.
func (l *Labeler) ripAndGraft(lidOld order.LID, newLIDs []order.LID, hp int) error {
	steps, err := l.pathOf(lidOld)
	if err != nil {
		return err
	}
	predLID, err := l.findPredecessor(steps)
	if err != nil {
		return err
	}

	tp, tpHeight, err := l.buildTree(newLIDs)
	if err != nil {
		return err
	}
	if tpHeight != hp {
		return fmt.Errorf("bbox: built T' height %d, planned %d", tpHeight, hp)
	}

	// s = lowest level at which the insertion point falls strictly inside
	// a node; below s the gap already lies between sibling subtrees.
	s := -1
	for k := 0; k < len(steps); k++ {
		if steps[k].pos > 0 {
			s = k
			break
		}
	}

	w := steps[hp].n
	graftAt := steps[hp].pos // insert T' before w's child at this index

	if s >= 0 && s < hp {
		// Split levels s..hp-1 along the path. The left half keeps its
		// block (so its records/children stay put); the right half is
		// new.
		var c2 *node // right half of the level below
		for k := s; k < hp; k++ {
			n := steps[k].n
			pos := steps[k].pos
			v, err := l.allocNode(n.leaf, n.parent)
			if err != nil {
				return err
			}
			switch {
			case n.leaf:
				v.lids = append(v.lids, n.lids[pos:]...)
				n.lids = n.lids[:pos]
				for _, lid := range v.lids {
					if err := l.file.SetU64(lid, uint64(v.blk)); err != nil {
						return err
					}
				}
			case k == s:
				// First split at an internal level: the gap falls
				// between children, so no lower half exists yet.
				v.ents = append(v.ents, n.ents[pos:]...)
				n.ents = n.ents[:pos]
				if err := l.relinkChildren(v); err != nil {
					return err
				}
			default:
				// n keeps entries up to and including the (already
				// split) child's left half; v takes the right half of
				// the child plus the following entries.
				v.ents = append(v.ents, entry{child: c2.blk, size: c2.size()})
				v.ents = append(v.ents, n.ents[pos+1:]...)
				n.ents = n.ents[:pos+1]
				n.ents[pos].size = n.ents[pos].size - v.ents[0].size // left child shrank
				if err := l.relinkChildren(v); err != nil {
					return err
				}
			}
			if err := l.writeNode(n); err != nil {
				return err
			}
			if err := l.writeNode(v); err != nil {
				return err
			}
			c2 = v
			// Levels above the first split go through "inside" handling:
			// their path position points at n, and v must be inserted
			// after it.
			if k+1 < hp {
				steps[k+1].pos = steps[k+1].n.findChild(n.blk)
				if steps[k+1].pos < 0 {
					return fmt.Errorf("bbox: rip: node %d missing from parent", n.blk)
				}
			}
		}
		// Fix the sizes of the rip levels above s: the left-half entries
		// shrank. Recompute from images lazily: the entries for the kept
		// halves were adjusted inline above.
		// Graft point: w's child at graftAt is the left half; insert the
		// right half after it and T' between them.
		i := w.findChild(steps[hp-1].n.blk)
		if i < 0 {
			return fmt.Errorf("bbox: rip: level-%d node missing from parent", hp-1)
		}
		left := steps[hp-1].n
		w.ents[i].size = l.subtreeSizeOf(left)
		w.ents = append(w.ents, entry{}, entry{})
		copy(w.ents[i+3:], w.ents[i+1:])
		w.ents[i+1] = entry{child: tp.blk, size: uint64(len(newLIDs))}
		w.ents[i+2] = entry{child: c2.blk, size: l.subtreeSizeOf(c2)}
		tp.parent = w.blk
		if err := l.writeNode(tp); err != nil {
			return err
		}
		c2.parent = w.blk
		if err := l.writeNode(c2); err != nil {
			return err
		}
	} else {
		// The gap is already between subtrees at level hp: graft T'
		// directly before w's child at graftAt.
		w.ents = append(w.ents, entry{})
		copy(w.ents[graftAt+1:], w.ents[graftAt:])
		w.ents[graftAt] = entry{child: tp.blk, size: uint64(len(newLIDs))}
		tp.parent = w.blk
		if err := l.writeNode(tp); err != nil {
			return err
		}
	}
	l.count += uint64(len(newLIDs))
	// Ancestors above w gained the new records.
	if l.p.Ordinal {
		if err := l.bumpSizes(w.parent, w.blk, int64(len(newLIDs))); err != nil {
			return err
		}
	}
	// w gained one or two entries; split if it overflows (cascades up).
	if err := l.splitAndPropagate(w); err != nil {
		return err
	}
	// The rip edges (and T''s root, which is no longer a root) may
	// underflow; repair along the anchors.
	return l.repairAlong([]order.LID{predLID, lidOld, newLIDs[0]})
}

// subtreeSizeOf reports the record count below n using its in-memory image
// (sizes for internal nodes are meaningful only with Ordinal; without it a
// direct walk is needed, but sizes are then unused anyway).
func (l *Labeler) subtreeSizeOf(n *node) uint64 {
	return n.size()
}

// findPredecessor returns the LID of the record immediately before the
// record whose bottom-up path is steps, or NilLID if it is the first.
func (l *Labeler) findPredecessor(steps []pathStep) (order.LID, error) {
	for k := 0; k < len(steps); k++ {
		if steps[k].pos == 0 {
			continue
		}
		if k == 0 {
			return steps[0].n.lids[steps[0].pos-1], nil
		}
		blk := steps[k].n.ents[steps[k].pos-1].child
		return l.rightmostLID(blk)
	}
	return order.NilLID, nil
}

// findSuccessor returns the LID of the record immediately after the record
// whose bottom-up path is steps, or NilLID if it is the last.
func (l *Labeler) findSuccessor(steps []pathStep) (order.LID, error) {
	for k := 0; k < len(steps); k++ {
		if steps[k].pos >= steps[k].n.count()-1 {
			continue
		}
		if k == 0 {
			return steps[0].n.lids[steps[0].pos+1], nil
		}
		blk := steps[k].n.ents[steps[k].pos+1].child
		return l.leftmostLID(blk)
	}
	return order.NilLID, nil
}

func (l *Labeler) rightmostLID(blk pager.BlockID) (order.LID, error) {
	for {
		n, err := l.readNode(blk)
		if err != nil {
			return order.NilLID, err
		}
		if n.leaf {
			return n.lids[len(n.lids)-1], nil
		}
		blk = n.ents[len(n.ents)-1].child
	}
}

func (l *Labeler) leftmostLID(blk pager.BlockID) (order.LID, error) {
	for {
		n, err := l.readNode(blk)
		if err != nil {
			return order.NilLID, err
		}
		if n.leaf {
			return n.lids[0], nil
		}
		blk = n.ents[0].child
	}
}

// repairAlong restores occupancy minima for every node on the paths of the
// given anchor LIDs, plus the root's own invariant, iterating until clean.
func (l *Labeler) repairAlong(anchors []order.LID) error {
	for {
		fixed := false
		for _, a := range anchors {
			if a == order.NilLID {
				continue
			}
			if live, err := l.file.Live(a); err != nil || !live {
				continue
			}
			steps, err := l.pathOf(a)
			if err != nil {
				return err
			}
			for k := 0; k < len(steps); k++ {
				n := steps[k].n
				if n.parent == pager.NilBlock {
					continue
				}
				minOcc := l.p.MinFanout
				if n.leaf {
					minOcc = l.p.MinLeaf
				}
				if n.count() < minOcc {
					if err := l.fixUnderflow(n); err != nil {
						return err
					}
					fixed = true
					break
				}
			}
			if fixed {
				break
			}
		}
		if fixed {
			continue
		}
		// Root invariant: an internal root with one child collapses.
		if l.root != pager.NilBlock {
			root, err := l.readNode(l.root)
			if err != nil {
				return err
			}
			if !root.leaf && len(root.ents) == 1 {
				child, err := l.readNode(root.ents[0].child)
				if err != nil {
					return err
				}
				child.parent = pager.NilBlock
				if err := l.writeNode(child); err != nil {
					return err
				}
				if err := l.store.Free(root.blk); err != nil {
					return err
				}
				l.root = child.blk
				l.height--
				continue
			}
		}
		return nil
	}
}
