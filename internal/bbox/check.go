package bbox

import (
	"fmt"

	"boxes/internal/pager"
)

// CheckInvariants implements order.Labeler: every back-link is the exact
// inverse of a child pointer, all leaves sit at the same depth, occupancy
// stays within bounds, size fields (Ordinal) equal true subtree counts, and
// the LIDF points every live LID at its containing leaf. Intended for
// tests; reads the whole structure.
func (l *Labeler) CheckInvariants() (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	if l.root == pager.NilBlock {
		if l.count != 0 {
			return fmt.Errorf("bbox: empty tree with count %d", l.count)
		}
		if l.file.Count() != 0 {
			return fmt.Errorf("bbox: empty tree but LIDF holds %d records", l.file.Count())
		}
		return nil
	}
	root, err := l.readNode(l.root)
	if err != nil {
		return err
	}
	if root.parent != pager.NilBlock {
		return fmt.Errorf("bbox: root has parent %d", root.parent)
	}
	if !root.leaf && len(root.ents) < 2 {
		return fmt.Errorf("bbox: internal root with %d children", len(root.ents))
	}
	total, err := l.checkNode(root, true, l.height)
	if err != nil {
		return err
	}
	if total != l.count {
		return fmt.Errorf("bbox: counted %d records, tracking %d", total, l.count)
	}
	if l.file.Count() != l.count {
		return fmt.Errorf("bbox: LIDF holds %d records, count %d", l.file.Count(), l.count)
	}
	return nil
}

// checkNode validates n's subtree and returns its record count.
// levelsLeft is the number of levels n's subtree must span (1 = leaf).
func (l *Labeler) checkNode(n *node, isRoot bool, levelsLeft int) (uint64, error) {
	if n.leaf {
		if levelsLeft != 1 {
			return 0, fmt.Errorf("bbox: leaf %d at wrong depth (%d levels left)", n.blk, levelsLeft)
		}
		if len(n.lids) > l.p.LeafCap {
			return 0, fmt.Errorf("bbox: leaf %d holds %d records, cap %d", n.blk, len(n.lids), l.p.LeafCap)
		}
		if !isRoot && len(n.lids) < l.p.MinLeaf {
			return 0, fmt.Errorf("bbox: leaf %d holds %d records, min %d", n.blk, len(n.lids), l.p.MinLeaf)
		}
		for i, lid := range n.lids {
			got, err := l.file.GetU64(lid)
			if err != nil {
				return 0, fmt.Errorf("bbox: leaf %d record %d (lid %d): LIDF: %w", n.blk, i, lid, err)
			}
			if pager.BlockID(got) != n.blk {
				return 0, fmt.Errorf("bbox: lid %d LIDF points at block %d, record lives in %d", lid, got, n.blk)
			}
		}
		return uint64(len(n.lids)), nil
	}
	if levelsLeft <= 1 {
		return 0, fmt.Errorf("bbox: internal node %d deeper than height", n.blk)
	}
	if len(n.ents) > l.p.Fanout {
		return 0, fmt.Errorf("bbox: node %d has %d children, fan-out %d", n.blk, len(n.ents), l.p.Fanout)
	}
	if !isRoot && len(n.ents) < l.p.MinFanout {
		return 0, fmt.Errorf("bbox: node %d has %d children, min %d", n.blk, len(n.ents), l.p.MinFanout)
	}
	var total uint64
	for i := range n.ents {
		child, err := l.readNode(n.ents[i].child)
		if err != nil {
			return 0, err
		}
		if child.parent != n.blk {
			return 0, fmt.Errorf("bbox: node %d back-link points at %d, parent is %d", child.blk, child.parent, n.blk)
		}
		sub, err := l.checkNode(child, false, levelsLeft-1)
		if err != nil {
			return 0, err
		}
		if l.p.Ordinal && n.ents[i].size != sub {
			return 0, fmt.Errorf("bbox: node %d entry %d size %d, actual %d", n.blk, i, n.ents[i].size, sub)
		}
		total += sub
	}
	return total, nil
}
