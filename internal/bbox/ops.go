package bbox

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// InsertBefore implements order.Labeler: the new record lands in lidOld's
// leaf; an overflowing node splits, moving its right half to a fresh
// sibling and updating the relocated records' LIDF entries (leaf) or the
// relocated children's back-links (internal), exactly as in Section 5.
func (l *Labeler) InsertBefore(lidOld order.LID) (_ order.LID, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	lidNew, err := l.file.Alloc()
	if err != nil {
		return order.NilLID, err
	}
	if err := l.insertAt(lidNew, lidOld); err != nil {
		return order.NilLID, err
	}
	return lidNew, nil
}

func (l *Labeler) insertAt(lidNew, lidOld order.LID) error {
	leaf, idx, err := l.leafOf(lidOld)
	if err != nil {
		return err
	}
	var shiftLo, shiftHi uint64
	logShift := false
	if l.logger != nil {
		steps, err := l.pathOf(lidOld)
		if err != nil {
			return err
		}
		if lo, err := l.packSteps(steps); err == nil {
			steps[0].pos = len(leaf.lids) - 1
			hi, _ := l.packSteps(steps)
			shiftLo, shiftHi = lo, hi
			logShift = true
			// B-BOX labels are implicit path vectors; the packed label is
			// only materialized on this reflog path, so the heat map
			// samples here rather than paying a root walk per insert.
			l.store.Observer().HeatLabelInsert(lo)
		}
	}
	if l.p.Ordinal && l.ologger != nil {
		ord, err := l.ordinalOfPos(leaf, idx)
		if err != nil {
			return err
		}
		l.logOrdinalShift(ord, +1)
	}
	leaf.lids = append(leaf.lids, 0)
	copy(leaf.lids[idx+1:], leaf.lids[idx:])
	leaf.lids[idx] = lidNew
	if err := l.file.SetU64(lidNew, uint64(leaf.blk)); err != nil {
		return err
	}
	l.count++
	if l.p.Ordinal {
		if err := l.bumpSizes(leaf.parent, leaf.blk, 1); err != nil {
			return err
		}
	}
	if len(leaf.lids) > l.p.LeafCap {
		return l.splitAndPropagate(leaf)
	}
	if logShift {
		l.logShift(shiftLo, shiftHi, +1)
	}
	return l.writeNode(leaf)
}

// bumpSizes adds delta to the size field of the entry leading to childBlk
// in every ancestor starting at parentBlk: the size maintenance that makes
// B-BOX-O updates O(log_B N) amortized instead of O(1).
func (l *Labeler) bumpSizes(parentBlk, childBlk pager.BlockID, delta int64) error {
	for parentBlk != pager.NilBlock {
		p, err := l.readNode(parentBlk)
		if err != nil {
			return err
		}
		i := p.findChild(childBlk)
		if i < 0 {
			return fmt.Errorf("bbox: size bump: node %d missing from parent %d", childBlk, p.blk)
		}
		p.ents[i].size = uint64(int64(p.ents[i].size) + delta)
		if err := l.writeNode(p); err != nil {
			return err
		}
		childBlk = p.blk
		parentBlk = p.parent
	}
	return nil
}

// splitAndPropagate splits n (whose in-memory image overflows) and cascades
// up the tree, growing a new root if necessary.
func (l *Labeler) splitAndPropagate(n *node) error {
	var topChanged *node
	for {
		capacity := l.p.Fanout
		if n.leaf {
			capacity = l.p.LeafCap
		}
		if n.count() <= capacity {
			if err := l.writeNode(n); err != nil {
				return err
			}
			break
		}
		m := (n.count() + 1) / 2
		l.store.Observer().Inc(obs.CtrBBoxSplits)
		v, err := l.allocNode(n.leaf, n.parent)
		if err != nil {
			return err
		}
		if n.leaf {
			v.lids = append(v.lids, n.lids[m:]...)
			n.lids = n.lids[:m]
			for _, lid := range v.lids {
				if err := l.file.SetU64(lid, uint64(v.blk)); err != nil {
					return err
				}
			}
		} else {
			v.ents = append(v.ents, n.ents[m:]...)
			n.ents = n.ents[:m]
			if err := l.relinkChildren(v); err != nil {
				return err
			}
		}
		if err := l.writeNode(n); err != nil {
			return err
		}
		if err := l.writeNode(v); err != nil {
			return err
		}
		if n.parent == pager.NilBlock {
			nr, err := l.allocNode(false, pager.NilBlock)
			if err != nil {
				return err
			}
			nr.ents = []entry{
				{child: n.blk, size: n.size()},
				{child: v.blk, size: v.size()},
			}
			if err := l.writeNode(nr); err != nil {
				return err
			}
			n.parent = nr.blk
			v.parent = nr.blk
			if err := l.writeNode(n); err != nil {
				return err
			}
			if err := l.writeNode(v); err != nil {
				return err
			}
			l.root = nr.blk
			l.height++
			l.logInvalidateAll()
			return nil
		}
		p, err := l.readNode(n.parent)
		if err != nil {
			return err
		}
		i := p.findChild(n.blk)
		if i < 0 {
			return fmt.Errorf("bbox: split: node %d missing from parent %d", n.blk, p.blk)
		}
		p.ents[i].size = n.size()
		p.ents = append(p.ents, entry{})
		copy(p.ents[i+2:], p.ents[i+1:])
		p.ents[i+1] = entry{child: v.blk, size: v.size()}
		topChanged = p
		n = p
	}
	if topChanged != nil {
		l.logInvalidateNode(topChanged)
	}
	return nil
}

// relinkChildren points the back-links of all of v's children at v: the
// O(B) cost of an internal split.
func (l *Labeler) relinkChildren(v *node) error {
	for i := range v.ents {
		c, err := l.readNode(v.ents[i].child)
		if err != nil {
			return err
		}
		c.parent = v.blk
		if err := l.writeNode(c); err != nil {
			return err
		}
	}
	return nil
}

// InsertElementBefore implements order.Labeler.
func (l *Labeler) InsertElementBefore(lidOld order.LID) (_ order.ElemLIDs, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	start, end, err := l.file.AllocPair()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.insertAt(end, lidOld); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.insertAt(start, end); err != nil {
		return order.ElemLIDs{}, err
	}
	return order.ElemLIDs{Start: start, End: end}, nil
}

// InsertFirstElement implements order.Labeler.
func (l *Labeler) InsertFirstElement() (_ order.ElemLIDs, err error) {
	if l.root != pager.NilBlock {
		return order.ElemLIDs{}, order.ErrNotEmpty
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	start, end, err := l.file.AllocPair()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	leaf, err := l.allocNode(true, pager.NilBlock)
	if err != nil {
		return order.ElemLIDs{}, err
	}
	leaf.lids = []order.LID{start, end}
	if err := l.writeNode(leaf); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.file.SetU64(start, uint64(leaf.blk)); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.file.SetU64(end, uint64(leaf.blk)); err != nil {
		return order.ElemLIDs{}, err
	}
	l.root = leaf.blk
	l.height = 1
	l.count = 2
	return order.ElemLIDs{Start: start, End: end}, nil
}

// Delete implements order.Labeler: remove the record; an underflowing leaf
// first borrows from a sibling and otherwise merges with one, cascading up.
func (l *Labeler) Delete(lid order.LID) (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf, idx, err := l.leafOf(lid)
	if err != nil {
		return err
	}
	if l.logger != nil && idx+1 < len(leaf.lids) {
		steps, err := l.pathOf(lid)
		if err != nil {
			return err
		}
		steps[0].pos = idx + 1
		if lo, err := l.packSteps(steps); err == nil {
			steps[0].pos = len(leaf.lids) - 1
			hi, _ := l.packSteps(steps)
			l.logShift(lo, hi, -1)
		}
	}
	if l.p.Ordinal && l.ologger != nil {
		ord, err := l.ordinalOfPos(leaf, idx)
		if err != nil {
			return err
		}
		l.logOrdinalShift(ord, -1)
	}
	leaf.lids = append(leaf.lids[:idx], leaf.lids[idx+1:]...)
	if err := l.file.Free(lid); err != nil {
		return err
	}
	l.count--
	if l.p.Ordinal {
		if err := l.bumpSizes(leaf.parent, leaf.blk, -1); err != nil {
			return err
		}
	}
	if leaf.parent == pager.NilBlock {
		if len(leaf.lids) == 0 {
			if err := l.store.Free(leaf.blk); err != nil {
				return err
			}
			l.root = pager.NilBlock
			l.height = 0
			return nil
		}
		return l.writeNode(leaf)
	}
	if len(leaf.lids) < l.p.MinLeaf {
		return l.fixUnderflow(leaf)
	}
	return l.writeNode(leaf)
}

// fixUnderflow restores the minimum occupancy of non-root node n by
// borrowing from a sibling or merging with one, cascading upward.
func (l *Labeler) fixUnderflow(n *node) error {
	p, err := l.readNode(n.parent)
	if err != nil {
		return err
	}
	i := p.findChild(n.blk)
	if i < 0 {
		return fmt.Errorf("bbox: underflow: node %d missing from parent %d", n.blk, p.blk)
	}
	if len(p.ents) == 1 {
		// n is its parent's only child, so it has no siblings to borrow
		// from or merge with. At the root this collapses a level; below
		// the root (transient state during subtree-operation repair) the
		// parent must be repaired first — merging it into its own
		// sibling gives n siblings, and the caller's repair loop will
		// come back for n.
		if p.parent != pager.NilBlock {
			return l.fixUnderflow(p)
		}
		n.parent = pager.NilBlock
		if err := l.writeNode(n); err != nil {
			return err
		}
		if err := l.store.Free(p.blk); err != nil {
			return err
		}
		l.root = n.blk
		l.height--
		l.logInvalidateAll()
		return nil
	}
	minOcc := l.p.MinFanout
	if n.leaf {
		minOcc = l.p.MinLeaf
	}

	// Borrow from the left sibling.
	if i > 0 {
		sib, err := l.readNode(p.ents[i-1].child)
		if err != nil {
			return err
		}
		if sib.count() > minOcc {
			l.store.Observer().Inc(obs.CtrBBoxBorrows)
			moved, err := l.moveItems(sib, n, sib.count()-1, 1, true)
			if err != nil {
				return err
			}
			p.ents[i-1].size -= moved
			p.ents[i].size += moved
			if err := l.writeNode(sib); err != nil {
				return err
			}
			if err := l.writeNode(n); err != nil {
				return err
			}
			if err := l.writeNode(p); err != nil {
				return err
			}
			l.logInvalidateNode(p)
			return nil
		}
	}
	// Borrow from the right sibling.
	if i < len(p.ents)-1 {
		sib, err := l.readNode(p.ents[i+1].child)
		if err != nil {
			return err
		}
		if sib.count() > minOcc {
			l.store.Observer().Inc(obs.CtrBBoxBorrows)
			moved, err := l.moveItems(sib, n, 0, 1, false)
			if err != nil {
				return err
			}
			p.ents[i+1].size -= moved
			p.ents[i].size += moved
			if err := l.writeNode(sib); err != nil {
				return err
			}
			if err := l.writeNode(n); err != nil {
				return err
			}
			if err := l.writeNode(p); err != nil {
				return err
			}
			l.logInvalidateNode(p)
			return nil
		}
	}
	// Merge with a sibling: move everything into the left node of the
	// pair and drop the right one.
	l.store.Observer().Inc(obs.CtrBBoxMerges)
	var left, right *node
	var rightIdx int
	if i > 0 {
		var err error
		left, err = l.readNode(p.ents[i-1].child)
		if err != nil {
			return err
		}
		right = n
		rightIdx = i
	} else {
		var err error
		right, err = l.readNode(p.ents[i+1].child)
		if err != nil {
			return err
		}
		left = n
		rightIdx = i + 1
	}
	moved, err := l.moveItems(right, left, 0, right.count(), false)
	if err != nil {
		return err
	}
	p.ents[rightIdx-1].size += moved
	p.ents = append(p.ents[:rightIdx], p.ents[rightIdx+1:]...)
	if err := l.store.Free(right.blk); err != nil {
		return err
	}
	if err := l.writeNode(left); err != nil {
		return err
	}
	l.logInvalidateNode(p)

	if p.parent == pager.NilBlock {
		if len(p.ents) == 1 {
			// Collapse the root.
			child, err := l.readNode(p.ents[0].child)
			if err != nil {
				return err
			}
			child.parent = pager.NilBlock
			if err := l.writeNode(child); err != nil {
				return err
			}
			if err := l.store.Free(p.blk); err != nil {
				return err
			}
			l.root = child.blk
			l.height--
			l.logInvalidateAll()
			return nil
		}
		return l.writeNode(p)
	}
	if len(p.ents) < l.p.MinFanout {
		return l.fixUnderflow(p)
	}
	return l.writeNode(p)
}

// moveItems moves cnt items from src (starting at srcIdx) to dst,
// prepending when toFront is set and appending otherwise, fixing LIDF
// pointers (leaf) or child back-links (internal). It returns the number of
// records transferred (subtree sizes for internal entries).
func (l *Labeler) moveItems(src, dst *node, srcIdx, cnt int, toFront bool) (uint64, error) {
	var transferred uint64
	if src.leaf {
		items := append([]order.LID(nil), src.lids[srcIdx:srcIdx+cnt]...)
		src.lids = append(src.lids[:srcIdx], src.lids[srcIdx+cnt:]...)
		if toFront {
			dst.lids = append(append([]order.LID(nil), items...), dst.lids...)
		} else {
			dst.lids = append(dst.lids, items...)
		}
		for _, lid := range items {
			if err := l.file.SetU64(lid, uint64(dst.blk)); err != nil {
				return 0, err
			}
		}
		transferred = uint64(cnt)
		return transferred, nil
	}
	items := append([]entry(nil), src.ents[srcIdx:srcIdx+cnt]...)
	src.ents = append(src.ents[:srcIdx], src.ents[srcIdx+cnt:]...)
	if toFront {
		dst.ents = append(append([]entry(nil), items...), dst.ents...)
	} else {
		dst.ents = append(dst.ents, items...)
	}
	for _, e := range items {
		c, err := l.readNode(e.child)
		if err != nil {
			return 0, err
		}
		c.parent = dst.blk
		if err := l.writeNode(c); err != nil {
			return 0, err
		}
		transferred += e.size
	}
	return transferred, nil
}
