package bbox

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

func newLabeler(t *testing.T, blockSize int, ordinal, relaxed bool) (*Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(blockSize)
	p, err := NewParams(blockSize, ordinal, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func variants(t *testing.T, f func(t *testing.T, l *Labeler, store *pager.Store)) {
	t.Helper()
	cases := []struct {
		name             string
		ordinal, relaxed bool
	}{
		{"basic", false, false},
		{"ordinal", true, false},
		{"relaxed", false, true},
		{"ordinal-relaxed", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l, store := newLabeler(t, 512, c.ordinal, c.relaxed)
			f(t, l, store)
		})
	}
}

func loadAndTrack(t *testing.T, l *Labeler, tags []order.Tag) ([]order.ElemLIDs, *order.Oracle) {
	t.Helper()
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	lids := make([]order.LID, len(tags))
	for i, tg := range tags {
		if tg.Start {
			lids[i] = elems[tg.Elem].Start
		} else {
			lids[i] = elems[tg.Elem].End
		}
	}
	o := order.NewOracle()
	o.Load(lids)
	return elems, o
}

func TestParamsDerivation(t *testing.T) {
	p, err := NewParams(8192, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.LeafCap != (8192-16)/8 {
		t.Errorf("leaf cap = %d", p.LeafCap)
	}
	if p.Fanout != p.LeafCap {
		t.Errorf("fan-out %d != leaf cap %d without ordinal", p.Fanout, p.LeafCap)
	}
	po, _ := NewParams(8192, true, false)
	if po.Fanout != p.Fanout/2 {
		t.Errorf("ordinal fan-out %d, want %d (size fields halve it)", po.Fanout, p.Fanout/2)
	}
	pr, _ := NewParams(8192, false, true)
	if pr.MinFanout != p.Fanout/4 {
		t.Errorf("relaxed min fan-out %d, want B/4=%d", pr.MinFanout, p.Fanout/4)
	}
	if _, err := NewParams(32, false, false); err == nil {
		t.Error("tiny block accepted")
	}
}

func TestInsertFirstElement(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		e, err := l.InsertFirstElement()
		if err != nil {
			t.Fatal(err)
		}
		s, err := l.Lookup(e.Start)
		if err != nil {
			t.Fatal(err)
		}
		en, err := l.Lookup(e.End)
		if err != nil {
			t.Fatal(err)
		}
		if s >= en {
			t.Fatalf("start %d >= end %d", s, en)
		}
		if _, err := l.InsertFirstElement(); !errors.Is(err, order.ErrNotEmpty) {
			t.Fatalf("err = %v", err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBulkLoadXMark(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		tags := xmlgen.XMark(600, 1).TagStream()
		_, o := loadAndTrack(t, l, tags)
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
		if l.Height() < 2 {
			t.Fatalf("height = %d, want >= 2 for %d labels", l.Height(), len(tags))
		}
	})
}

func TestConcentratedInsertion(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		tags := order.TagStreamFromPairs(50)
		elems, o := loadAndTrack(t, l, tags)
		sub, err := l.InsertElementBefore(elems[0].End)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.InsertElementBefore(sub, elems[0].End); err != nil {
			t.Fatal(err)
		}
		right := sub.End
		for i := 0; i < 200; i++ {
			left, err := l.InsertElementBefore(right)
			if err != nil {
				t.Fatalf("pair %d: %v", i, err)
			}
			if err := o.InsertElementBefore(left, right); err != nil {
				t.Fatal(err)
			}
			r, err := l.InsertElementBefore(right)
			if err != nil {
				t.Fatalf("pair %d: %v", i, err)
			}
			if err := o.InsertElementBefore(r, right); err != nil {
				t.Fatal(err)
			}
			right = r.Start
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestLookupCostIsHeightPlusOne(t *testing.T) {
	l, store := newLabeler(t, 512, false, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(4000))
	if err != nil {
		t.Fatal(err)
	}
	h := l.Height()
	if h < 3 {
		t.Fatalf("height %d too small for the test", h)
	}
	for _, lid := range []order.LID{elems[0].Start, elems[2000].Start, elems[3999].End} {
		before := store.Stats()
		if _, err := l.Lookup(lid); err != nil {
			t.Fatal(err)
		}
		d := store.Stats().Sub(before)
		if int(d.Total()) != h+1 {
			t.Fatalf("lookup cost = %v, want height+1 = %d", d, h+1)
		}
	}
}

func TestCompareLIDs(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	tags := xmlgen.XMark(500, 9).TagStream()
	elems, o := loadAndTrack(t, l, tags)
	lids := o.LIDs()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := rng.Intn(len(lids))
		b := rng.Intn(len(lids))
		got, err := l.CompareLIDs(lids[a], lids[b])
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if got != want {
			t.Fatalf("CompareLIDs(pos %d, pos %d) = %d, want %d", a, b, got, want)
		}
	}
	_ = elems
}

func TestCompareCheaperThanTwoLookups(t *testing.T) {
	l, store := newLabeler(t, 512, false, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(4000))
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent labels share a leaf: comparison should stop at the leaf.
	a, b := elems[100].Start, elems[100].End
	before := store.Stats()
	if _, err := l.CompareLIDs(a, b); err != nil {
		t.Fatal(err)
	}
	cmp := store.Stats().Sub(before).Total()
	before = store.Stats()
	if _, err := l.Lookup(a); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Lookup(b); err != nil {
		t.Fatal(err)
	}
	two := store.Stats().Sub(before).Total()
	if cmp >= two {
		t.Fatalf("LCA comparison cost %d not below two lookups %d", cmp, two)
	}
}

func TestDeleteWithUnderflow(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		tags := order.TagStreamFromPairs(600)
		elems, o := loadAndTrack(t, l, tags)
		// Delete a large contiguous batch one label at a time to force
		// borrows, merges, and height collapse.
		for i := 100; i < 550; i++ {
			for _, lid := range []order.LID{elems[i].Start, elems[i].End} {
				if err := l.Delete(lid); err != nil {
					t.Fatalf("elem %d: %v", i, err)
				}
				if err := o.Delete(lid); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeleteToEmpty(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(e.Start); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(e.End); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 || l.Height() != 0 {
		t.Fatalf("count=%d height=%d after emptying", l.Count(), l.Height())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And the structure is reusable.
	if _, err := l.InsertFirstElement(); err != nil {
		t.Fatal(err)
	}
}

func TestOrdinalLookup(t *testing.T) {
	l, _ := newLabeler(t, 512, true, false)
	tags := xmlgen.XMark(400, 2).TagStream()
	_, o := loadAndTrack(t, l, tags)
	if err := o.CheckAgainst(l, true); err != nil {
		t.Fatal(err)
	}
}

func TestOrdinalUnsupported(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	e, _ := l.InsertFirstElement()
	if _, err := l.OrdinalLookup(e.Start); !errors.Is(err, order.ErrNoOrdinal) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubtreeInsertRip(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		tags := order.TagStreamFromPairs(3000) // tall enough host
		elems, o := loadAndTrack(t, l, tags)
		sub := xmlgen.XMark(80, 3).TagStream() // short T': uses the rip path
		newElems, err := l.InsertSubtreeBefore(elems[1500].Start, sub)
		if err != nil {
			t.Fatal(err)
		}
		newLids := make([]order.LID, len(sub))
		for i, tg := range sub {
			if tg.Start {
				newLids[i] = newElems[tg.Elem].Start
			} else {
				newLids[i] = newElems[tg.Elem].End
			}
		}
		if err := o.InsertSliceBefore(newLids, elems[1500].Start); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSubtreeInsertAtEveryBoundary(t *testing.T) {
	// Rip insertion at the very first tag, at a leaf boundary, and at the
	// last tag.
	l, _ := newLabeler(t, 512, false, false)
	tags := order.TagStreamFromPairs(3000)
	elems, o := loadAndTrack(t, l, tags)
	anchors := []order.LID{
		elems[0].Start, // document start (whole path leftmost)
		elems[31].End,  // likely interior
		elems[0].End,   // document end tag
	}
	for _, anchor := range anchors {
		sub := order.TagStreamFromPairs(40)
		newElems, err := l.InsertSubtreeBefore(anchor, sub)
		if err != nil {
			t.Fatalf("anchor %d: %v", anchor, err)
		}
		newLids := make([]order.LID, len(sub))
		for i, tg := range sub {
			if tg.Start {
				newLids[i] = newElems[tg.Elem].Start
			} else {
				newLids[i] = newElems[tg.Elem].End
			}
		}
		if err := o.InsertSliceBefore(newLids, anchor); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("anchor %d: %v", anchor, err)
		}
		if err := o.CheckAgainst(l, false); err != nil {
			t.Fatalf("anchor %d: %v", anchor, err)
		}
	}
}

func TestSubtreeInsertTallFallsBackToRebuild(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	tags := order.TagStreamFromPairs(100)
	elems, o := loadAndTrack(t, l, tags)
	sub := xmlgen.TwoLevel(2000).TagStream() // taller than host
	newElems, err := l.InsertSubtreeBefore(elems[50].Start, sub)
	if err != nil {
		t.Fatal(err)
	}
	newLids := make([]order.LID, len(sub))
	for i, tg := range sub {
		if tg.Start {
			newLids[i] = newElems[tg.Elem].Start
		} else {
			newLids[i] = newElems[tg.Elem].End
		}
	}
	if err := o.InsertSliceBefore(newLids, elems[50].Start); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckAgainst(l, false); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeDelete(t *testing.T) {
	variants(t, func(t *testing.T, l *Labeler, _ *pager.Store) {
		tags := xmlgen.XMark(900, 4).TagStream()
		elems, o := loadAndTrack(t, l, tags)
		if err := l.DeleteSubtree(elems[1].Start, elems[1].End); err != nil {
			t.Fatal(err)
		}
		if err := o.DeleteRange(elems[1].Start, elems[1].End); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSubtreeDeleteAll(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	tags := order.TagStreamFromPairs(800)
	elems, _ := loadAndTrack(t, l, tags)
	if err := l.DeleteSubtree(elems[0].Start, elems[0].End); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 || l.Height() != 0 {
		t.Fatalf("count=%d height=%d", l.Count(), l.Height())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelBitsBound(t *testing.T) {
	// Theorem 5.1: a B-BOX label takes no more than
	// log N + 1 + (log N - 1)/(log B - 1) bits.
	l, _ := newLabeler(t, 512, false, false)
	if _, err := l.BulkLoad(order.TagStreamFromPairs(30000)); err != nil {
		t.Fatal(err)
	}
	n := 60000.0
	logN := 0.0
	for v := n; v >= 2; v /= 2 {
		logN++
	}
	logB := 0.0
	for v := float64(l.p.LeafCap + 1); v >= 2; v /= 2 {
		logB++
	}
	bound := logN + 1 + (logN-1)/(logB-1)
	if got := float64(l.LabelBits()); got > bound+1 {
		t.Fatalf("label bits %v exceed Theorem 5.1 bound %v", got, bound)
	}
}

func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		ordinal := sel%2 == 1
		relaxed := (sel/2)%2 == 1
		store := pager.NewMemStore(512)
		p, err := NewParams(512, ordinal, relaxed)
		if err != nil {
			return false
		}
		l, err := New(store, p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		o := order.NewOracle()
		e, err := l.InsertFirstElement()
		if err != nil {
			return false
		}
		if err := o.InsertFirstElement(e); err != nil {
			return false
		}
		live := []order.ElemLIDs{e}
		for i := 0; i < 200; i++ {
			switch {
			case len(live) > 1 && rng.Intn(3) == 0:
				idx := 1 + rng.Intn(len(live)-1)
				v := live[idx]
				if err := l.Delete(v.Start); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				if err := l.Delete(v.End); err != nil {
					t.Logf("delete: %v", err)
					return false
				}
				if o.Delete(v.Start) != nil || o.Delete(v.End) != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			default:
				target := live[rng.Intn(len(live))]
				anchor := target.Start
				if rng.Intn(2) == 0 {
					anchor = target.End
				}
				ne, err := l.InsertElementBefore(anchor)
				if err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				if err := o.InsertElementBefore(ne, anchor); err != nil {
					return false
				}
				live = append(live, ne)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if err := o.CheckAgainst(l, ordinal); err != nil {
			t.Logf("oracle: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
