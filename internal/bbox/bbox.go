package bbox

import (
	"fmt"

	"boxes/internal/lidf"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// Labeler is a B-BOX. It implements order.Labeler.
type Labeler struct {
	store *pager.Store
	file  *lidf.File
	p     Params

	root   pager.BlockID
	height int // levels (1 = a single leaf); 0 when empty
	count  uint64

	logger  order.UpdateLogger
	ologger order.UpdateLogger // ordinal-label effects (requires Ordinal)
}

// New creates an empty B-BOX over store with the given parameters.
func New(store *pager.Store, p Params) (*Labeler, error) {
	if p.BlockSize != store.BlockSize() {
		return nil, fmt.Errorf("bbox: params block size %d != store block size %d", p.BlockSize, store.BlockSize())
	}
	f, err := lidf.New(store, 8)
	if err != nil {
		return nil, err
	}
	return &Labeler{store: store, file: f, p: p}, nil
}

// NewDefault creates an empty B-BOX (no ordinal support) with parameters
// derived from the store's block size.
func NewDefault(store *pager.Store) (*Labeler, error) {
	p, err := NewParams(store.BlockSize(), false, false)
	if err != nil {
		return nil, err
	}
	return New(store, p)
}

// Params returns the structural parameters in use.
func (l *Labeler) Params() Params { return l.p }

// SetLogger implements order.LoggingLabeler.
func (l *Labeler) SetLogger(lg order.UpdateLogger) { l.logger = lg }

// SetOrdinalLogger implements order.OrdinalLoggingLabeler: lg receives
// ordinal-label effects. Requires ordinal support (B-BOX-O).
func (l *Labeler) SetOrdinalLogger(lg order.UpdateLogger) { l.ologger = lg }

// ordinalOfPos computes the ordinal position of the record at index idx of
// leaf by walking the back-links and summing the size fields left of the
// path, without needing a LID.
func (l *Labeler) ordinalOfPos(leaf *node, idx int) (uint64, error) {
	ord := uint64(idx)
	child := leaf
	for child.parent != pager.NilBlock {
		p, err := l.readNode(child.parent)
		if err != nil {
			return 0, err
		}
		ci := p.findChild(child.blk)
		if ci < 0 {
			return 0, fmt.Errorf("bbox: node %d missing from parent %d", child.blk, p.blk)
		}
		for q := 0; q < ci; q++ {
			ord += p.ents[q].size
		}
		child = p
	}
	return ord, nil
}

func (l *Labeler) logOrdinalShift(ord uint64, delta int64) {
	if l.ologger != nil {
		l.ologger.LogShift(ord, ^uint64(0), delta)
	}
}

// Count implements order.Labeler.
func (l *Labeler) Count() uint64 { return l.count }

// Height implements order.Labeler.
func (l *Labeler) Height() int { return l.height }

// LabelBits implements order.Labeler: bits for the root component plus
// compBits for every level below it.
func (l *Labeler) LabelBits() int {
	if l.height == 0 {
		return 0
	}
	root, err := l.readNode(l.root)
	if err != nil {
		return l.height * int(l.p.compBits)
	}
	rootBits := 1
	for v := root.count() - 1; v > 1; v >>= 1 {
		rootBits++
	}
	return rootBits + (l.height-1)*int(l.p.compBits)
}

// leafOf reads the leaf currently holding lid's record via the LIDF.
func (l *Labeler) leafOf(lid order.LID) (*node, int, error) {
	blkU, err := l.file.GetU64(lid)
	if err != nil {
		return nil, 0, err
	}
	leaf, err := l.readNode(pager.BlockID(blkU))
	if err != nil {
		return nil, 0, err
	}
	idx := leaf.findLID(lid)
	if idx < 0 {
		return nil, 0, fmt.Errorf("bbox: LIDF points lid %d at block %d, record missing", lid, leaf.blk)
	}
	return leaf, idx, nil
}

// pathStep is one level of a bottom-up path.
type pathStep struct {
	n   *node
	pos int // position of the lower node (or record) within n
}

// pathOf returns lid's bottom-up path: element 0 is the leaf (pos = record
// index), the last element is the root (pos = child index taken). Cost: one
// LIDF I/O plus height node I/Os, exactly the paper's lookup walk.
func (l *Labeler) pathOf(lid order.LID) ([]pathStep, error) {
	leaf, idx, err := l.leafOf(lid)
	if err != nil {
		return nil, err
	}
	steps := []pathStep{{n: leaf, pos: idx}}
	child := leaf
	for child.parent != pager.NilBlock {
		p, err := l.readNode(child.parent)
		if err != nil {
			return nil, err
		}
		ci := p.findChild(child.blk)
		if ci < 0 {
			return nil, fmt.Errorf("bbox: node %d not found in parent %d", child.blk, p.blk)
		}
		steps = append(steps, pathStep{n: p, pos: ci})
		child = p
	}
	return steps, nil
}

// packSteps packs a bottom-up path into the uint64 label: the root
// component occupies the high bits, the leaf position the low bits.
func (l *Labeler) packSteps(steps []pathStep) (order.Label, error) {
	if len(steps) > l.p.maxPackedHeight() {
		return 0, order.ErrLabelOverflow
	}
	var packed uint64
	for i := len(steps) - 1; i >= 0; i-- {
		packed = packed<<l.p.compBits | uint64(steps[i].pos)
	}
	return packed, nil
}

// Lookup implements order.Labeler: the label is reconstructed bottom-up
// from the back-links (Theorem 5.2: O(log_B N) I/Os).
func (l *Labeler) Lookup(lid order.LID) (_ order.Label, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	steps, err := l.pathOf(lid)
	if err != nil {
		return 0, err
	}
	return l.packSteps(steps)
}

// LookupPair reconstructs two labels in one logical operation, so the LIDF
// block and any shared upper tree nodes are fetched once. For an element's
// start/end pair the two bottom-up walks share most of their path.
func (l *Labeler) LookupPair(a, b order.LID) (la, lb order.Label, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	stepsA, err := l.pathOf(a)
	if err != nil {
		return 0, 0, err
	}
	la, err = l.packSteps(stepsA)
	if err != nil {
		return 0, 0, err
	}
	stepsB, err := l.pathOf(b)
	if err != nil {
		return 0, 0, err
	}
	lb, err = l.packSteps(stepsB)
	return la, lb, err
}

// Components returns the label as its raw component vector, root first —
// the multi-component form of Section 5.
func (l *Labeler) Components(lid order.LID) (_ []int, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	steps, err := l.pathOf(lid)
	if err != nil {
		return nil, err
	}
	comps := make([]int, len(steps))
	for i, s := range steps {
		comps[len(steps)-1-i] = s.pos
	}
	return comps, nil
}

// CompareLIDs orders two labels by walking bottom-up in parallel and
// stopping at the lowest common ancestor, the comparison shortcut of
// Section 5. It returns -1, 0 or +1.
func (l *Labeler) CompareLIDs(a, b order.LID) (_ int, err error) {
	if a == b {
		return 0, nil
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leafA, posA, err := l.leafOf(a)
	if err != nil {
		return 0, err
	}
	leafB, posB, err := l.leafOf(b)
	if err != nil {
		return 0, err
	}
	// posIn[blk] = position history for each walk.
	type walker struct {
		n   *node
		pos int
	}
	wa := walker{leafA, posA}
	wb := walker{leafB, posB}
	seenA := map[pager.BlockID]int{leafA.blk: posA}
	seenB := map[pager.BlockID]int{leafB.blk: posB}
	for {
		if pb, ok := seenB[wa.n.blk]; ok {
			// wa.n is the LCA; compare b's position there against a's.
			pa := seenA[wa.n.blk]
			return cmpInt(pa, pb), nil
		}
		if pa, ok := seenA[wb.n.blk]; ok {
			pb := seenB[wb.n.blk]
			return cmpInt(pa, pb), nil
		}
		progress := false
		if wa.n.parent != pager.NilBlock {
			p, err := l.readNode(wa.n.parent)
			if err != nil {
				return 0, err
			}
			ci := p.findChild(wa.n.blk)
			wa = walker{p, ci}
			seenA[p.blk] = ci
			progress = true
			if pb, ok := seenB[p.blk]; ok {
				return cmpInt(ci, pb), nil
			}
		}
		if wb.n.parent != pager.NilBlock {
			p, err := l.readNode(wb.n.parent)
			if err != nil {
				return 0, err
			}
			ci := p.findChild(wb.n.blk)
			wb = walker{p, ci}
			seenB[p.blk] = ci
			progress = true
			if pa, ok := seenA[p.blk]; ok {
				return cmpInt(pa, ci), nil
			}
		}
		if !progress {
			return 0, fmt.Errorf("bbox: LIDs %d and %d share no ancestor", a, b)
		}
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// OrdinalLookup implements order.Labeler: the bottom-up walk accumulates
// the size fields left of the path (Section 5, "Ordinal labeling support").
func (l *Labeler) OrdinalLookup(lid order.LID) (_ uint64, err error) {
	if !l.p.Ordinal {
		return 0, order.ErrNoOrdinal
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	steps, err := l.pathOf(lid)
	if err != nil {
		return 0, err
	}
	ord := uint64(steps[0].pos)
	for _, s := range steps[1:] {
		for j := 0; j < s.pos; j++ {
			ord += s.n.ents[j].size
		}
	}
	return ord, nil
}

// prefixRange computes the packed label interval covered by node n's
// subtree, for update logging. It walks n's back-links to the root.
func (l *Labeler) prefixRange(n *node) (uint64, uint64, error) {
	var comps []int
	child := n
	for child.parent != pager.NilBlock {
		p, err := l.readNode(child.parent)
		if err != nil {
			return 0, 0, err
		}
		ci := p.findChild(child.blk)
		if ci < 0 {
			return 0, 0, fmt.Errorf("bbox: node %d missing from parent %d", child.blk, p.blk)
		}
		comps = append([]int{ci}, comps...)
		child = p
	}
	depth := len(comps)
	if l.height > l.p.maxPackedHeight() {
		return 0, ^uint64(0), nil
	}
	var lo uint64
	for _, c := range comps {
		lo = lo<<l.p.compBits | uint64(c)
	}
	rest := uint(l.height-depth) * l.p.compBits
	lo <<= rest
	hi := lo | (uint64(1)<<rest - 1)
	return lo, hi, nil
}

func (l *Labeler) logShift(lo, hi uint64, delta int64) {
	if l.logger != nil && lo <= hi {
		l.logger.LogShift(lo, hi, delta)
	}
}

func (l *Labeler) logInvalidateNode(n *node) {
	if l.logger == nil {
		return
	}
	lo, hi, err := l.prefixRange(n)
	if err != nil {
		lo, hi = 0, ^uint64(0)
	}
	l.logger.LogInvalidate(lo, hi)
}

func (l *Labeler) logInvalidateAll() {
	if l.logger != nil {
		l.logger.LogInvalidate(0, ^uint64(0))
	}
}

var _ order.Labeler = (*Labeler)(nil)
var _ order.LoggingLabeler = (*Labeler)(nil)
var _ order.OrdinalLoggingLabeler = (*Labeler)(nil)
