package bbox

import (
	"reflect"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
)

func TestLeafSerializationRoundTrip(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	n, err := l.allocNode(true, 42)
	if err != nil {
		t.Fatal(err)
	}
	n.lids = []order.LID{3, 1, 4, 1, 5, 9}
	if err := l.writeNode(n); err != nil {
		t.Fatal(err)
	}
	got, err := l.readNode(n.blk)
	if err != nil {
		t.Fatal(err)
	}
	if !got.leaf || got.parent != 42 {
		t.Fatalf("header: leaf=%v parent=%d", got.leaf, got.parent)
	}
	if !reflect.DeepEqual(got.lids, n.lids) {
		t.Fatalf("lids = %v", got.lids)
	}
}

func TestInternalSerializationWithAndWithoutSizes(t *testing.T) {
	for _, ordinal := range []bool{false, true} {
		l, _ := newLabeler(t, 512, ordinal, false)
		n, err := l.allocNode(false, 7)
		if err != nil {
			t.Fatal(err)
		}
		n.ents = []entry{{child: 10, size: 100}, {child: 11, size: 200}}
		if err := l.writeNode(n); err != nil {
			t.Fatal(err)
		}
		got, err := l.readNode(n.blk)
		if err != nil {
			t.Fatal(err)
		}
		if got.leaf || got.parent != 7 || len(got.ents) != 2 {
			t.Fatalf("header: %+v", got)
		}
		for i := range n.ents {
			if got.ents[i].child != n.ents[i].child {
				t.Fatalf("child %d = %d", i, got.ents[i].child)
			}
			wantSize := n.ents[i].size
			if !ordinal {
				wantSize = 0 // size fields are not stored without Ordinal
			}
			if got.ents[i].size != wantSize {
				t.Fatalf("ordinal=%v size %d = %d, want %d", ordinal, i, got.ents[i].size, wantSize)
			}
		}
	}
}

func TestWriteNodeRejectsOverflow(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	n, _ := l.allocNode(true, 0)
	n.lids = make([]order.LID, l.p.LeafCap+1)
	if err := l.writeNode(n); err == nil {
		t.Fatal("overflowing leaf accepted")
	}
	m, _ := l.allocNode(false, 0)
	m.ents = make([]entry, l.p.Fanout+1)
	if err := l.writeNode(m); err == nil {
		t.Fatal("overflowing internal node accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	l, store := newLabeler(t, 512, false, false)
	blk, err := store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(blk, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.readNode(blk); err == nil {
		t.Fatal("decoded a zeroed block")
	}
}

func TestQuickLeafRoundTrip(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	f := func(lids []uint64, parent uint32) bool {
		if len(lids) > l.p.LeafCap {
			lids = lids[:l.p.LeafCap]
		}
		n, err := l.allocNode(true, pager.BlockID(parent))
		if err != nil {
			return false
		}
		for _, v := range lids {
			n.lids = append(n.lids, order.LID(v))
		}
		if err := l.writeNode(n); err != nil {
			return false
		}
		got, err := l.readNode(n.blk)
		if err != nil {
			return false
		}
		if len(n.lids) == 0 {
			return len(got.lids) == 0
		}
		return reflect.DeepEqual(got.lids, n.lids) && got.parent == n.parent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
