package bbox

import (
	"boxes/internal/obs"
	"boxes/internal/pager"
)

// CollectGauges implements obs.Collector: it walks the whole tree and
// reports the structural health of the B-BOX — height, per-level node
// counts and occupancy distributions, minimum occupancy slack (distance to
// the Section 5 split and underflow thresholds), and label-packing
// headroom — plus the LIDF's gauges. Like CheckInvariants it reads every
// block; run it on a quiescent structure and expect O(N/B) I/Os.
func (l *Labeler) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("boxes_tree_height", "Tree height in levels (0 = empty).", float64(l.height)),
		obs.G("boxes_labels_live", "Live labels in the structure.", float64(l.count)),
	}
	if max := l.p.maxPackedHeight(); max > 0 && l.height > 0 {
		// A B-BOX has no label range to exhaust; the scarce resource is the
		// 64-bit packing budget, compBits per level.
		gs = append(gs, obs.G("boxes_label_space_utilization",
			"Fraction of the 64-bit label packing budget consumed by the tree height.",
			float64(l.height)/float64(max)))
		gs = append(gs, obs.G("bbox_pack_headroom_levels",
			"Levels the tree can still grow before packed labels overflow 64 bits.",
			float64(max-l.height)))
	}
	gs = append(gs, l.file.CollectGauges()...)
	if l.root == pager.NilBlock {
		return gs
	}

	t := obs.NewTreeStats(l.height)
	func() {
		var err error
		l.store.BeginOp()
		defer l.store.EndOpInto(&err)
		root, rerr := l.readNode(l.root)
		if rerr != nil {
			t.AddError()
			return
		}
		l.healthNode(root, l.height-1, true, t)
	}()
	return append(gs, t.Gauges()...)
}

// healthNode records one node's statistics and recurses. B-BOX nodes do
// not store their level, so it is threaded down the walk (leaves at 0).
func (l *Labeler) healthNode(n *node, level int, isRoot bool, t *obs.TreeStats) {
	capacity, minOcc := l.p.Fanout, l.p.MinFanout
	if n.leaf {
		capacity, minOcc = l.p.LeafCap, l.p.MinLeaf
	}
	count := n.count()
	occ := float64(count) / float64(capacity)
	// Slack to the nearest occupancy threshold: a node splits when it
	// reaches capacity and (unless it is the root) underflows below minOcc.
	slack := uint64(capacity - count)
	if !isRoot {
		if count > minOcc {
			if d := uint64(count - minOcc); d < slack {
				slack = d
			}
		} else {
			slack = 0
		}
	}
	t.Observe(level, occ, slack, true)
	if n.leaf {
		return
	}
	for i := range n.ents {
		child, err := l.readNode(n.ents[i].child)
		if err != nil {
			t.AddError()
			continue
		}
		l.healthNode(child, level-1, false, t)
	}
}

var _ obs.Collector = (*Labeler)(nil)

// WalkBlocks calls visit for every store block the structure occupies:
// the LIDF's extents and every tree node reachable from the root. fsck
// uses it to cross-check on-disk reachability against the free list.
func (l *Labeler) WalkBlocks(visit func(pager.BlockID) error) error {
	if err := l.file.WalkBlocks(visit); err != nil {
		return err
	}
	if l.root == pager.NilBlock {
		return nil
	}
	return l.walkNodeBlocks(l.root, visit)
}

func (l *Labeler) walkNodeBlocks(blk pager.BlockID, visit func(pager.BlockID) error) error {
	if err := visit(blk); err != nil {
		return err
	}
	n, err := l.readNode(blk)
	if err != nil {
		return err
	}
	if n.leaf {
		return nil
	}
	for i := range n.ents {
		if err := l.walkNodeBlocks(n.ents[i].child, visit); err != nil {
			return err
		}
	}
	return nil
}
