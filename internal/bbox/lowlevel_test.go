package bbox

import (
	"testing"

	"boxes/internal/order"
)

// TestInsertBeforeSingleLabels exercises the low-level single-label
// insert-before operation (Section 3's primitive) directly.
func TestInsertBeforeSingleLabels(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	// Build a chain of labels before the end label; each must order
	// strictly between its predecessor and the end.
	prev := e.Start
	for i := 0; i < 200; i++ {
		lid, err := l.InsertBefore(e.End)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		cmp, err := l.CompareLIDs(prev, lid)
		if err != nil {
			t.Fatal(err)
		}
		if cmp != -1 {
			t.Fatalf("insert %d: new label not after previous (cmp=%d)", i, cmp)
		}
		cmp, err = l.CompareLIDs(lid, e.End)
		if err != nil {
			t.Fatal(err)
		}
		if cmp != -1 {
			t.Fatalf("insert %d: new label not before end (cmp=%d)", i, cmp)
		}
		prev = lid
	}
	if l.Count() != 202 {
		t.Fatalf("count = %d", l.Count())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(3000))
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() < 3 {
		t.Fatalf("height %d too small", l.Height())
	}
	for _, e := range []order.ElemLIDs{elems[0], elems[1500], elems[2999]} {
		comps, err := l.Components(e.Start)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != l.Height() {
			t.Fatalf("components = %v, want %d of them", comps, l.Height())
		}
		// Packing the components must reproduce Lookup's label.
		var packed uint64
		for _, c := range comps {
			if c < 0 {
				t.Fatalf("negative component in %v", comps)
			}
			packed = packed<<l.p.compBits | uint64(c)
		}
		direct, err := l.Lookup(e.Start)
		if err != nil {
			t.Fatal(err)
		}
		if packed != direct {
			t.Fatalf("packed components %v = %d, Lookup = %d", comps, packed, direct)
		}
	}
}

func TestComponentsOrderMatchesDocument(t *testing.T) {
	l, _ := newLabeler(t, 512, false, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(500))
	if err != nil {
		t.Fatal(err)
	}
	// Component vectors must compare lexicographically like the labels.
	a, err := l.Components(elems[100].Start)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Components(elems[400].Start)
	if err != nil {
		t.Fatal(err)
	}
	less := false
	for i := range a {
		if a[i] != b[i] {
			less = a[i] < b[i]
			break
		}
	}
	if !less {
		t.Fatalf("component vectors out of order: %v vs %v", a, b)
	}
}
