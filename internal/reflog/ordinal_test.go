package reflog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/bbox"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/wbox"
	"boxes/internal/xmlgen"
)

func newOrdinalWBox(t *testing.T) (order.Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(512)
	p, err := wbox.NewParams(512, wbox.Basic, true)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wbox.New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func newOrdinalBBox(t *testing.T) (order.Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(512)
	p, err := bbox.NewParams(512, true, false)
	if err != nil {
		t.Fatal(err)
	}
	l, err := bbox.New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func ordinalMakers() map[string]func(*testing.T) (order.Labeler, *pager.Store) {
	return map[string]func(*testing.T) (order.Labeler, *pager.Store){
		"wbox-ordinal": newOrdinalWBox,
		"bbox-ordinal": newOrdinalBBox,
	}
}

func TestOrdinalCacheReplaysInserts(t *testing.T) {
	for name, mk := range ordinalMakers() {
		t.Run(name, func(t *testing.T) {
			l, store := mk(t)
			cache := NewOrdinalCache(l, NewLog(64))
			elems, err := l.BulkLoad(order.TagStreamFromPairs(100))
			if err != nil {
				t.Fatal(err)
			}
			// Warm a ref to a label late in the document.
			ref, err := cache.NewRef(elems[0].End)
			if err != nil {
				t.Fatal(err)
			}
			// Insert a handful of elements before it (each adds 2 tags).
			for i := 0; i < 5; i++ {
				if _, err := l.InsertElementBefore(elems[50].Start); err != nil {
					t.Fatal(err)
				}
			}
			before := store.Stats()
			got, out, err := cache.Lookup(&ref)
			if err != nil {
				t.Fatal(err)
			}
			if out != HitReplayed {
				t.Fatalf("outcome = %v, want HitReplayed", out)
			}
			if d := store.Stats().Sub(before); d.Total() != 0 {
				t.Fatalf("replayed ordinal lookup cost %v I/Os", d)
			}
			want, err := l.OrdinalLookup(ref.LID)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("replayed ordinal %d, direct %d", got, want)
			}
		})
	}
}

func TestOrdinalCacheSurvivesStructuralReorganization(t *testing.T) {
	// Splits and relabels change regular labels but never ordinals: the
	// ordinal cache should keep replaying right through a storm of
	// concentrated insertions that reorganizes the tree.
	for name, mk := range ordinalMakers() {
		t.Run(name, func(t *testing.T) {
			l, _ := mk(t)
			cache := NewOrdinalCache(l, NewLog(4096))
			elems, err := l.BulkLoad(order.TagStreamFromPairs(60))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := cache.NewRef(elems[0].End)
			if err != nil {
				t.Fatal(err)
			}
			right := elems[30].Start
			for i := 0; i < 300; i++ {
				r, err := l.InsertElementBefore(right)
				if err != nil {
					t.Fatal(err)
				}
				right = r.Start
			}
			got, out, err := cache.Lookup(&ref)
			if err != nil {
				t.Fatal(err)
			}
			if out != HitReplayed {
				t.Fatalf("outcome = %v, want HitReplayed despite splits", out)
			}
			want, err := l.OrdinalLookup(ref.LID)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("replayed ordinal %d, direct %d", got, want)
			}
		})
	}
}

func TestOrdinalCacheSubtreeOps(t *testing.T) {
	for name, mk := range ordinalMakers() {
		t.Run(name, func(t *testing.T) {
			l, _ := mk(t)
			cache := NewOrdinalCache(l, NewLog(64))
			tags := order.TagStreamFromPairs(2000)
			elems, err := l.BulkLoad(tags)
			if err != nil {
				t.Fatal(err)
			}
			lateRef, err := cache.NewRef(elems[0].End)
			if err != nil {
				t.Fatal(err)
			}
			earlyRef, err := cache.NewRef(elems[10].Start)
			if err != nil {
				t.Fatal(err)
			}
			// Bulk-insert a subtree in the middle.
			sub := xmlgen.TwoLevel(40).TagStream()
			subElems, err := l.InsertSubtreeBefore(elems[1000].Start, sub)
			if err != nil {
				t.Fatal(err)
			}
			for _, ref := range []*Ref{&lateRef, &earlyRef} {
				got, _, err := cache.Lookup(ref)
				if err != nil {
					t.Fatal(err)
				}
				want, err := l.OrdinalLookup(ref.LID)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("after subtree insert: cached %d, direct %d", got, want)
				}
			}
			// And delete it again.
			if err := l.DeleteSubtree(subElems[0].Start, subElems[0].End); err != nil {
				t.Fatal(err)
			}
			for _, ref := range []*Ref{&lateRef, &earlyRef} {
				got, _, err := cache.Lookup(ref)
				if err != nil {
					t.Fatal(err)
				}
				want, err := l.OrdinalLookup(ref.LID)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("after subtree delete: cached %d, direct %d", got, want)
				}
			}
		})
	}
}

// Property: ordinal cache answers always equal direct ordinal lookups
// through random mixed workloads.
func TestQuickOrdinalCacheCoherence(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		store := pager.NewMemStore(512)
		var l order.Labeler
		if sel%2 == 0 {
			p, err := wbox.NewParams(512, wbox.Basic, true)
			if err != nil {
				return false
			}
			l, err = wbox.New(store, p)
			if err != nil {
				return false
			}
		} else {
			p, err := bbox.NewParams(512, true, false)
			if err != nil {
				return false
			}
			l, err = bbox.New(store, p)
			if err != nil {
				return false
			}
		}
		k := []int{1, 16, 256}[(sel/2)%3]
		cache := NewOrdinalCache(l, NewLog(k))
		elems, err := l.BulkLoad(order.TagStreamFromPairs(50))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, len(elems))
		for i, e := range elems {
			r, err := cache.NewRef(e.End)
			if err != nil {
				return false
			}
			refs[i] = r
		}
		live := append([]order.ElemLIDs(nil), elems...)
		for i := 0; i < 100; i++ {
			switch rng.Intn(4) {
			case 0:
				target := live[rng.Intn(len(live))]
				ne, err := l.InsertElementBefore(target.Start)
				if err != nil {
					return false
				}
				live = append(live, ne)
			case 1:
				if len(live) > len(elems) {
					idx := len(elems) + rng.Intn(len(live)-len(elems))
					v := live[idx]
					if err := l.Delete(v.Start); err != nil {
						return false
					}
					if err := l.Delete(v.End); err != nil {
						return false
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			default:
				ref := &refs[rng.Intn(len(refs))]
				got, _, err := cache.Lookup(ref)
				if err != nil {
					return false
				}
				want, err := l.OrdinalLookup(ref.LID)
				if err != nil {
					return false
				}
				if got != want {
					t.Logf("ordinal cache %d != direct %d (k=%d sel=%d)", got, want, k, sel)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
