package reflog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/bbox"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/wbox"
)

func newWBox(t *testing.T) (order.Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(512)
	p, err := wbox.NewParams(512, wbox.Basic, false)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wbox.New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func newBBox(t *testing.T) (order.Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(512)
	l, err := bbox.NewDefault(store)
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func TestFreshHitCostsNoIO(t *testing.T) {
	l, store := newWBox(t)
	cache := NewCache(l, NewLog(8))
	elems, err := l.BulkLoad(order.TagStreamFromPairs(100))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cache.NewRef(elems[50].Start)
	if err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	v, out, err := cache.Lookup(&ref)
	if err != nil {
		t.Fatal(err)
	}
	if out != HitFresh {
		t.Fatalf("outcome = %v, want HitFresh", out)
	}
	if d := store.Stats().Sub(before); d.Total() != 0 {
		t.Fatalf("fresh hit cost %v I/Os, want 0", d)
	}
	direct, _ := l.Lookup(elems[50].Start)
	if v != direct {
		t.Fatalf("cached %d != direct %d", v, direct)
	}
}

func TestBasicCachingInvalidatedByAnyUpdate(t *testing.T) {
	l, _ := newWBox(t)
	cache := NewCache(l, NewLog(0)) // basic caching: no log
	elems, err := l.BulkLoad(order.TagStreamFromPairs(100))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cache.NewRef(elems[50].Start)
	if err != nil {
		t.Fatal(err)
	}
	// An update far away still bumps last-modified.
	if _, err := l.InsertElementBefore(elems[90].Start); err != nil {
		t.Fatal(err)
	}
	_, out, err := cache.Lookup(&ref)
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("outcome = %v, want Miss under basic caching", out)
	}
	// The refreshed cache serves the next read.
	_, out, _ = cache.Lookup(&ref)
	if out != HitFresh {
		t.Fatalf("second outcome = %v, want HitFresh", out)
	}
}

func TestLoggingReplaysShifts(t *testing.T) {
	for name, mk := range map[string]func(*testing.T) (order.Labeler, *pager.Store){
		"wbox": newWBox,
		"bbox": newBBox,
	} {
		t.Run(name, func(t *testing.T) {
			l, store := mk(t)
			cache := NewCache(l, NewLog(16))
			elems, err := l.BulkLoad(order.TagStreamFromPairs(40))
			if err != nil {
				t.Fatal(err)
			}
			// Cache refs for every label.
			refs := make([]Ref, 0, len(elems)*2)
			for _, e := range elems {
				for _, lid := range []order.LID{e.Start, e.End} {
					r, err := cache.NewRef(lid)
					if err != nil {
						t.Fatal(err)
					}
					refs = append(refs, r)
				}
			}
			// A handful of leaf-local inserts: replayable shifts.
			for i := 0; i < 3; i++ {
				if _, err := l.InsertElementBefore(elems[20].Start); err != nil {
					t.Fatal(err)
				}
			}
			sawReplay := false
			for i := range refs {
				before := store.Stats()
				v, out, err := cache.Lookup(&refs[i])
				if err != nil {
					t.Fatal(err)
				}
				direct, err := l.Lookup(refs[i].LID)
				if err != nil {
					t.Fatal(err)
				}
				if v != direct {
					t.Fatalf("ref %d: cached answer %d != direct %d (outcome %v)", i, v, direct, out)
				}
				d := store.Stats().Sub(before)
				if out != Miss && d.Reads > 0 {
					// The direct Lookup above cost I/O, but the cache
					// answer itself must not have; re-derive by checking
					// outcome only (stats include the verification
					// lookup). Just ensure replays happen at all.
					_ = d
				}
				if out == HitReplayed {
					sawReplay = true
				}
			}
			if !sawReplay {
				t.Fatal("no lookup was answered by log replay")
			}
		})
	}
}

func TestLogOverflowForcesMiss(t *testing.T) {
	l, _ := newWBox(t)
	cache := NewCache(l, NewLog(2))
	elems, err := l.BulkLoad(order.TagStreamFromPairs(100))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cache.NewRef(elems[10].Start)
	if err != nil {
		t.Fatal(err)
	}
	// More updates than the log holds.
	for i := 0; i < 5; i++ {
		if _, err := l.InsertElementBefore(elems[50].Start); err != nil {
			t.Fatal(err)
		}
	}
	_, out, err := cache.Lookup(&ref)
	if err != nil {
		t.Fatal(err)
	}
	if out != Miss {
		t.Fatalf("outcome = %v, want Miss once the log wrapped", out)
	}
}

func TestInvalidationForcesMissInsideRangeOnly(t *testing.T) {
	g := NewLog(8)
	lo := order.Label(100)
	hi := order.Label(200)
	g.LogInvalidate(lo, hi)

	l, _ := newWBox(t)
	cache := &Cache{fetch: l.Lookup, log: g}
	elems, err := l.BulkLoad(order.TagStreamFromPairs(300))
	if err != nil {
		t.Fatal(err)
	}
	// Craft refs: one whose cached value is inside the invalidated range,
	// one outside. (LastCached predates the invalidation entry.)
	inside := Ref{LID: elems[80].Start, Cached: 150, LastCached: 1}
	outside := Ref{LID: elems[250].Start, Cached: 400, LastCached: 1}
	if _, out, _ := cache.Lookup(&inside); out != Miss {
		t.Fatalf("inside outcome = %v, want Miss", out)
	}
	if _, out, _ := cache.Lookup(&outside); out != HitReplayed {
		t.Fatalf("outside outcome = %v, want HitReplayed", out)
	}
}

// Property: through any random workload, a cached lookup always equals a
// direct lookup, for both structures and several log sizes.
func TestQuickCacheCoherence(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		var l order.Labeler
		store := pager.NewMemStore(512)
		if sel%2 == 0 {
			p, err := wbox.NewParams(512, wbox.Basic, false)
			if err != nil {
				return false
			}
			l, err = wbox.New(store, p)
			if err != nil {
				return false
			}
		} else {
			var err error
			l, err = bbox.NewDefault(store)
			if err != nil {
				return false
			}
		}
		k := []int{0, 1, 8, 64}[(sel/2)%4]
		cache := NewCache(l, NewLog(k))
		elems, err := l.BulkLoad(order.TagStreamFromPairs(60))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, len(elems))
		for i, e := range elems {
			r, err := cache.NewRef(e.Start)
			if err != nil {
				return false
			}
			refs[i] = r
		}
		live := append([]order.ElemLIDs(nil), elems...)
		for i := 0; i < 80; i++ {
			if rng.Intn(3) == 0 {
				target := live[rng.Intn(len(live))]
				anchor := target.Start
				if rng.Intn(2) == 0 {
					anchor = target.End
				}
				ne, err := l.InsertElementBefore(anchor)
				if err != nil {
					return false
				}
				live = append(live, ne)
				continue
			}
			ref := &refs[rng.Intn(len(refs))]
			got, _, err := cache.Lookup(ref)
			if err != nil {
				return false
			}
			want, err := l.Lookup(ref.LID)
			if err != nil {
				return false
			}
			if got != want {
				t.Logf("cache answered %d, direct %d (k=%d)", got, want, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
