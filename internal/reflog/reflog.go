// Package reflog implements the caching and logging techniques of
// Section 6 of the paper, which remove the dereferencing cost that the
// LID indirection and the BOX structures add to lookups.
//
// References held in indexes are augmented with the cached label value and
// a last-cached timestamp. The document keeps a last-modified timestamp
// and, in the caching+logging mode, a FIFO log of the last k modifications,
// each described succinctly as a range effect ("+1 to every label in
// [l, l_max]") or, when an update reorganized multiple leaves, as a range
// invalidation. A lookup whose cached value predates only logged
// modifications replays their effects and answers with no I/O at all.
package reflog

import (
	"boxes/internal/obs"
	"boxes/internal/order"
)

// Entry is one logged modification.
type Entry struct {
	Ts         uint64 // logical timestamp of the modification
	Lo, Hi     order.Label
	Delta      int64 // label shift; ignored when Invalidate is set
	Invalidate bool  // cached labels in [Lo, Hi] cannot be repaired
}

// Log is the document-level modification log plus timestamps. It
// implements order.UpdateLogger, so it can be attached to any BOX via
// SetLogger. A Log with K == 0 degenerates to the "basic caching" approach
// (a single last-modified timestamp).
type Log struct {
	k       int
	clock   uint64
	lastMod uint64
	entries []Entry // FIFO, oldest first
	dropped bool    // an entry has been evicted from the FIFO
	obs     *obs.Registry
}

// SetObserver routes the log's metrics (invalidation sweeps) to r.
func (g *Log) SetObserver(r *obs.Registry) { g.obs = r }

// NewLog creates a modification log keeping the last k entries (k == 0 is
// the basic-caching mode). Logical time starts at 1 so that a timestamp of
// 0 always means "never cached".
func NewLog(k int) *Log {
	return &Log{k: k, clock: 1}
}

// K reports the log capacity.
func (g *Log) K() int { return g.k }

// Now returns the current logical time.
func (g *Log) Now() uint64 { return g.clock }

// LastModified returns the time of the last label-changing modification.
func (g *Log) LastModified() uint64 { return g.lastMod }

// Tick advances logical time without recording a modification; callers use
// it to order reads between writes if they need distinct timestamps.
func (g *Log) Tick() uint64 {
	g.clock++
	return g.clock
}

func (g *Log) push(e Entry) {
	g.clock++
	e.Ts = g.clock
	g.lastMod = g.clock
	if g.k == 0 {
		return
	}
	if len(g.entries) == g.k {
		copy(g.entries, g.entries[1:])
		g.entries = g.entries[:g.k-1]
		g.dropped = true
	}
	g.entries = append(g.entries, e)
}

// DropAll forgets every logged modification and marks the log lossy, so no
// cached value taken before the call can be repaired by replay: every later
// cache hit re-validates through a full structure lookup. Core uses it when
// entering degraded mode, where the in-memory labeler is rolled back to the
// last committed metadata and cached labels may postdate the rollback.
func (g *Log) DropAll() {
	g.clock++
	g.lastMod = g.clock
	g.entries = g.entries[:0]
	g.dropped = true
}

// replayableFrom reports whether every modification made after ts is still
// in the log.
func (g *Log) replayableFrom(ts uint64) bool {
	if g.k == 0 {
		return false
	}
	if !g.dropped {
		return true
	}
	// Evicted entries all have timestamps below entries[0].Ts; they are
	// harmless only if they cannot postdate ts.
	return len(g.entries) > 0 && g.entries[0].Ts <= ts+1
}

// LogShift implements order.UpdateLogger.
func (g *Log) LogShift(lo, hi order.Label, delta int64) {
	g.push(Entry{Lo: lo, Hi: hi, Delta: delta})
}

// LogInvalidate implements order.UpdateLogger.
func (g *Log) LogInvalidate(lo, hi order.Label) {
	g.obs.Inc(obs.CtrReflogInvalidations)
	g.push(Entry{Lo: lo, Hi: hi, Invalidate: true})
}

// Ref is an augmented reference to a label: the immutable LID, the cached
// value, and when it was cached. The zero Ref (LastCached == 0, before any
// modification) is treated as never-cached.
type Ref struct {
	LID        order.LID
	Cached     order.Label
	LastCached uint64
}

// Repair outcome classification, exposed for the experiments.
type Outcome int

const (
	// HitFresh means the cached value was current (no replay needed).
	HitFresh Outcome = iota
	// HitReplayed means the cached value was repaired from the log.
	HitReplayed
	// Miss means the full lookup cost had to be paid.
	Miss
)

// Cache wraps a Labeler with the Section 6 lookup protocol. The same type
// serves regular labels (NewCache) and ordinal labels (NewOrdinalCache);
// only the fetch path and the log feeding it differ.
type Cache struct {
	fetch func(order.LID) (order.Label, error)
	log   *Log
	obs   *obs.Registry

	// Stats.
	Fresh    uint64
	Replayed uint64
	Misses   uint64
}

// SetObserver routes the cache's metrics (hits, repairs, misses) — and its
// log's — to r.
func (c *Cache) SetObserver(r *obs.Registry) {
	c.obs = r
	c.log.SetObserver(r)
}

// NewCache wires a labeler and a log together: the log is attached as the
// labeler's update logger, and lookups through the cache consult it.
func NewCache(l order.Labeler, g *Log) *Cache {
	if ll, ok := l.(order.LoggingLabeler); ok {
		ll.SetLogger(g)
	}
	return &Cache{fetch: l.Lookup, log: g}
}

// NewOrdinalCache wires a labeler's ordinal labels to a (separate) log:
// the log receives ordinal effects ("[o, ∞): ±1"), and lookups through the
// cache answer OrdinalLookup queries. The labeler must have ordinal
// support enabled.
func NewOrdinalCache(l order.Labeler, g *Log) *Cache {
	if ol, ok := l.(order.OrdinalLoggingLabeler); ok {
		ol.SetOrdinalLogger(g)
	}
	return &Cache{fetch: l.OrdinalLookup, log: g}
}

// Log returns the underlying modification log.
func (c *Cache) Log() *Log { return c.log }

// NewRef builds a reference for lid with a warm cache entry (one full
// lookup).
func (c *Cache) NewRef(lid order.LID) (Ref, error) {
	v, err := c.fetch(lid)
	if err != nil {
		return Ref{}, err
	}
	return Ref{LID: lid, Cached: v, LastCached: c.log.Now()}, nil
}

// Lookup returns the label behind ref, repairing or refreshing the cached
// value as needed, and reports how the answer was obtained.
func (c *Cache) Lookup(ref *Ref) (order.Label, Outcome, error) {
	if ref.LastCached > 0 && ref.LastCached >= c.log.LastModified() {
		c.Fresh++
		c.obs.Inc(obs.CtrReflogHits)
		c.obs.HeatReflog(obs.ReflogHit, uint64(ref.Cached))
		return ref.Cached, HitFresh, nil
	}
	if ref.LastCached > 0 && c.log.replayableFrom(ref.LastCached) {
		// Every modification since last-cached is in the log: replay.
		v := ref.Cached
		ok := true
		for _, e := range c.log.entries {
			if e.Ts <= ref.LastCached {
				continue
			}
			if v < e.Lo || v > e.Hi {
				continue
			}
			if e.Invalidate {
				ok = false
				break
			}
			v = order.Label(int64(v) + e.Delta)
		}
		if ok {
			ref.Cached = v
			ref.LastCached = c.log.Now()
			c.Replayed++
			c.obs.Inc(obs.CtrReflogRepairs)
			c.obs.HeatReflog(obs.ReflogRepair, uint64(v))
			return v, HitReplayed, nil
		}
	}
	v, err := c.fetch(ref.LID)
	if err != nil {
		return 0, Miss, err
	}
	ref.Cached = v
	ref.LastCached = c.log.Now()
	c.Misses++
	c.obs.Inc(obs.CtrReflogMisses)
	c.obs.HeatReflog(obs.ReflogMiss, uint64(v))
	return v, Miss, nil
}

var _ order.UpdateLogger = (*Log)(nil)
