package reflog

import "boxes/internal/obs"

// CollectGauges implements obs.Collector for the modification log: fill
// level, entry ages in logical-time ticks, and whether the FIFO has ever
// evicted an entry (once it has, references older than the log window can
// no longer be repaired and must pay the full lookup cost). Everything is
// in-memory state; collection costs no I/O.
func (g *Log) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("reflog_entries", "Modifications currently held in the FIFO log.", float64(len(g.entries))),
		obs.G("reflog_capacity", "Log capacity k (0 = basic caching, timestamps only).", float64(g.k)),
		obs.G("reflog_last_modified_age", "Logical-time ticks since the last label-changing modification.",
			float64(g.clock-g.lastMod)),
	}
	if len(g.entries) > 0 {
		gs = append(gs, obs.G("reflog_oldest_entry_age",
			"Logical-time ticks since the oldest logged modification; the replay window's reach.",
			float64(g.clock-g.entries[0].Ts)))
	}
	dropped := 0.0
	if g.dropped {
		dropped = 1
	}
	gs = append(gs, obs.G("reflog_dropped",
		"1 once the FIFO has evicted an entry (references older than the window cannot be repaired).",
		dropped))
	return gs
}

// CollectGauges implements obs.Collector for a cache: the cumulative hit
// breakdown as gauges, mirroring the Fresh/Replayed/Misses stats fields.
func (c *Cache) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("reflog_lookups_fresh", "Cache lookups answered with a current cached value.", float64(c.Fresh)),
		obs.G("reflog_lookups_replayed", "Cache lookups repaired by log replay.", float64(c.Replayed)),
		obs.G("reflog_lookups_missed", "Cache lookups that paid the full I/O cost.", float64(c.Misses)),
	}
	return append(gs, c.log.CollectGauges()...)
}

var _ obs.Collector = (*Log)(nil)
var _ obs.Collector = (*Cache)(nil)
