package naive

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

func newLabeler(t *testing.T, k int) (*Labeler, *pager.Store) {
	t.Helper()
	store := pager.NewMemStore(1024)
	l, err := New(store, Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return l, store
}

func TestNewValidation(t *testing.T) {
	store := pager.NewMemStore(1024)
	if _, err := New(store, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(store, Config{K: 4, CapacityBits: 200}); err == nil {
		t.Fatal("CapacityBits=200 accepted")
	}
}

func TestInsertFirstAndLookup(t *testing.T) {
	l, _ := newLabeler(t, 4)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Lookup(e.Start)
	if err != nil {
		t.Fatal(err)
	}
	en, err := l.Lookup(e.End)
	if err != nil {
		t.Fatal(err)
	}
	if s >= en {
		t.Fatalf("start %d >= end %d", s, en)
	}
	if l.Count() != 2 {
		t.Fatalf("count = %d", l.Count())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidLabeling(t *testing.T) {
	l, _ := newLabeler(t, 8)
	tree := xmlgen.XMark(500, 1)
	tags := tree.TagStream()
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	o := order.NewOracle()
	lids := make([]order.LID, len(tags))
	for i, tg := range tags {
		if tg.Start {
			lids[i] = elems[tg.Elem].Start
		} else {
			lids[i] = elems[tg.Elem].End
		}
	}
	o.Load(lids)
	if err := o.CheckAgainst(l, false); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcentratedInsertsTriggerRelabels(t *testing.T) {
	l, _ := newLabeler(t, 2)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	// Repeatedly insert as last child: squeezes into the gap before End.
	for i := 0; i < 50; i++ {
		if _, err := l.InsertElementBefore(e.End); err != nil {
			t.Fatal(err)
		}
	}
	if l.Relabels() == 0 {
		t.Fatal("concentrated insertion never triggered a relabel with k=2")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScatteredInsertsAvoidRelabels(t *testing.T) {
	l, _ := newLabeler(t, 8)
	tags := order.TagStreamFromPairs(100)
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	// One insert in front of each existing element: every gap is 2^8,
	// so midpoints always exist.
	for _, e := range elems[1:] {
		if _, err := l.InsertElementBefore(e.Start); err != nil {
			t.Fatal(err)
		}
	}
	if l.Relabels() != 0 {
		t.Fatalf("scattered inserts relabeled %d times with k=8", l.Relabels())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBigLabels(t *testing.T) {
	store := pager.NewMemStore(8192)
	l, err := New(store, Config{K: 64})
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Lookup(e.End); !errors.Is(err, order.ErrLabelOverflow) {
		t.Fatalf("Lookup err = %v, want ErrLabelOverflow", err)
	}
	b, err := l.LookupBig(e.End)
	if err != nil {
		t.Fatal(err)
	}
	if b.BitLen() != 66 { // 2 << 64 = 2^65
		t.Fatalf("end label bitlen = %d, want 66", b.BitLen())
	}
	if got, want := l.LabelBits(), 32+64; got != want {
		t.Fatalf("LabelBits = %d, want %d", got, want)
	}
}

func TestDeleteMergesGaps(t *testing.T) {
	l, _ := newLabeler(t, 4)
	tags := order.TagStreamFromPairs(20)
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	victim := elems[5]
	if err := l.Delete(victim.Start); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(victim.End); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Lookup(victim.Start); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("deleted lookup err = %v", err)
	}
	if err := l.Delete(victim.Start); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestSubtreeInsertWithinGap(t *testing.T) {
	l, _ := newLabeler(t, 10) // gaps of 1024: plenty of room
	base := order.TagStreamFromPairs(10)
	elems, err := l.BulkLoad(base)
	if err != nil {
		t.Fatal(err)
	}
	sub := xmlgen.TwoLevel(50).TagStream()
	if _, err := l.InsertSubtreeBefore(elems[3].Start, sub); err != nil {
		t.Fatal(err)
	}
	if l.Relabels() != 0 {
		t.Fatalf("subtree fitting in gap caused %d relabels", l.Relabels())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.Count() != uint64(len(base)+len(sub)) {
		t.Fatalf("count = %d", l.Count())
	}
}

func TestSubtreeInsertOverflowingGapRelabels(t *testing.T) {
	l, _ := newLabeler(t, 2) // gaps of 4: too small for 50 labels
	base := order.TagStreamFromPairs(10)
	elems, err := l.BulkLoad(base)
	if err != nil {
		t.Fatal(err)
	}
	sub := xmlgen.TwoLevel(25).TagStream()
	if _, err := l.InsertSubtreeBefore(elems[3].Start, sub); err != nil {
		t.Fatal(err)
	}
	if l.Relabels() != 1 {
		t.Fatalf("relabels = %d, want 1", l.Relabels())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteSubtree(t *testing.T) {
	l, _ := newLabeler(t, 6)
	tree := xmlgen.XMark(200, 5)
	tags := tree.TagStream()
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the subtree of the second top-level element (element index
	// of "regions" is 1 in preorder).
	if err := l.DeleteSubtree(elems[1].Start, elems[1].End); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.Count() >= uint64(len(tags)) {
		t.Fatalf("count did not shrink: %d", l.Count())
	}
}

func TestDeleteSubtreeRejectsBadRange(t *testing.T) {
	l, _ := newLabeler(t, 6)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(5))
	if err != nil {
		t.Fatal(err)
	}
	// end before start in document order
	if err := l.DeleteSubtree(elems[0].End, elems[0].Start); err == nil {
		t.Fatal("reversed range accepted")
	}
}

func TestOrdinalUnsupported(t *testing.T) {
	l, _ := newLabeler(t, 4)
	e, _ := l.InsertFirstElement()
	if _, err := l.OrdinalLookup(e.Start); !errors.Is(err, order.ErrNoOrdinal) {
		t.Fatalf("err = %v, want ErrNoOrdinal", err)
	}
}

// Property: random insert/delete sequences preserve a valid labeling (the
// oracle sees identical order), for small k (frequent relabels) and large.
func TestQuickRandomOpsValidLabeling(t *testing.T) {
	f := func(seed int64, kSel uint8) bool {
		k := []int{1, 2, 4, 8}[kSel%4]
		store := pager.NewMemStore(1024)
		l, err := New(store, Config{K: k})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		o := order.NewOracle()
		e, err := l.InsertFirstElement()
		if err != nil {
			return false
		}
		if err := o.InsertFirstElement(e); err != nil {
			return false
		}
		live := []order.ElemLIDs{e}
		for i := 0; i < 120; i++ {
			switch {
			case len(live) > 1 && rng.Intn(4) == 0:
				// delete a random non-root element's labels
				idx := 1 + rng.Intn(len(live)-1)
				v := live[idx]
				if err := l.Delete(v.Start); err != nil {
					return false
				}
				if err := l.Delete(v.End); err != nil {
					return false
				}
				if err := o.Delete(v.Start); err != nil {
					return false
				}
				if err := o.Delete(v.End); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			default:
				target := live[rng.Intn(len(live))]
				var anchor order.LID
				if rng.Intn(2) == 0 {
					anchor = target.Start
				} else {
					anchor = target.End
				}
				ne, err := l.InsertElementBefore(anchor)
				if err != nil {
					return false
				}
				if err := o.InsertElementBefore(ne, anchor); err != nil {
					return false
				}
				live = append(live, ne)
			}
		}
		if err := o.CheckAgainst(l, false); err != nil {
			return false
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
