package naive

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"boxes/internal/order"
)

// MarshalMeta serializes the naive scheme's configuration, counters, LIDF
// bookkeeping, and the in-memory document-order directory (as the LID
// sequence in document order).
func (l *Labeler) MarshalMeta() []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(l.cfg.K))
	binary.Write(&buf, binary.LittleEndian, uint32(l.cfg.CapacityBits))
	binary.Write(&buf, binary.LittleEndian, l.relabels)
	lm := l.file.MarshalMeta()
	binary.Write(&buf, binary.LittleEndian, uint32(len(lm)))
	buf.Write(lm)
	binary.Write(&buf, binary.LittleEndian, uint64(len(l.dir)))
	for lid := l.head; lid != order.NilLID; lid = l.dir[lid].next {
		binary.Write(&buf, binary.LittleEndian, uint64(lid))
	}
	return buf.Bytes()
}

// RestoreMeta restores state saved by MarshalMeta into a freshly created
// (empty) naive labeler with identical configuration.
func (l *Labeler) RestoreMeta(data []byte) error {
	r := bytes.NewReader(data)
	var k, capBits uint32
	if err := binary.Read(r, binary.LittleEndian, &k); err != nil {
		return fmt.Errorf("naive: meta: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &capBits); err != nil {
		return err
	}
	if int(k) != l.cfg.K || int(capBits) != l.cfg.CapacityBits {
		return fmt.Errorf("naive: meta config (k=%d, bits=%d) does not match (k=%d, bits=%d)",
			k, capBits, l.cfg.K, l.cfg.CapacityBits)
	}
	if err := binary.Read(r, binary.LittleEndian, &l.relabels); err != nil {
		return err
	}
	var lmLen uint32
	if err := binary.Read(r, binary.LittleEndian, &lmLen); err != nil {
		return err
	}
	lm := make([]byte, lmLen)
	if _, err := r.Read(lm); err != nil {
		return err
	}
	if err := l.file.RestoreMeta(lm); err != nil {
		return err
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	l.dir = make(map[order.LID]*dirNode, n)
	l.head = order.NilLID
	l.tail = order.NilLID
	prev := order.NilLID
	for i := uint64(0); i < n; i++ {
		var lid uint64
		if err := binary.Read(r, binary.LittleEndian, &lid); err != nil {
			return err
		}
		cur := order.LID(lid)
		l.dir[cur] = &dirNode{prev: prev}
		if prev == order.NilLID {
			l.head = cur
		} else {
			l.dir[prev].next = cur
		}
		prev = cur
	}
	l.tail = prev
	return nil
}
