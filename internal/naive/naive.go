// Package naive implements the naive gap-based relabeling scheme the paper
// uses as its baseline (Section 1 and Section 7): adjacent labels are
// initially 2^k apart, insertions take the midpoint of the surrounding gap,
// and when a gap is exhausted *every* label is reassigned to restore equal
// 2^k gaps.
//
// Each LIDF record stores the label value and the length of the gap between
// it and the previous label, exactly as described in Section 7. Labels are
// capacityBits+k bits wide, so for large k they exceed a machine word; they
// are stored as fixed-width big-endian byte strings and manipulated as
// big.Ints. As in the paper, relabeling is granted an in-memory sort: the
// scheme keeps the document order of LIDs in memory and streams over the
// LIDF once (read + write per block) per relabel, a lower bound on the real
// cost of the naive approach.
package naive

import (
	"errors"
	"fmt"
	"math/big"

	"boxes/internal/lidf"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// Config parameterizes the scheme.
type Config struct {
	// K is the number of extra bits per label: the initial gap between
	// adjacent labels is 2^K. The paper evaluates naive-1 through
	// naive-256.
	K int
	// CapacityBits bounds the number of labels the scheme can ever hold
	// at 2^CapacityBits; a label is CapacityBits+K bits wide. Defaults
	// to 32.
	CapacityBits int
}

type dirNode struct {
	prev, next order.LID
}

// Labeler is the naive-k dynamic labeling scheme.
type Labeler struct {
	store *pager.Store
	file  *lidf.File
	cfg   Config

	width int // label width in bytes

	// In-memory document-order directory (head/tail sentinels omitted;
	// NilLID means none). The paper grants naive in-memory ordering for
	// relabeling; holding it costs no I/O.
	dir  map[order.LID]*dirNode
	head order.LID
	tail order.LID

	relabels uint64 // number of global relabelings performed
}

// New creates an empty naive-k labeler over store.
func New(store *pager.Store, cfg Config) (*Labeler, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("naive: K must be >= 1, got %d", cfg.K)
	}
	if cfg.CapacityBits == 0 {
		cfg.CapacityBits = 32
	}
	if cfg.CapacityBits < 4 || cfg.CapacityBits > 56 {
		// The relabeling fast path shifts a CapacityBits-wide counter by
		// up to 7 bits inside a uint64, so 56 is the ceiling.
		return nil, fmt.Errorf("naive: CapacityBits out of range: %d (want 4..56)", cfg.CapacityBits)
	}
	width := (cfg.CapacityBits + cfg.K + 7) / 8
	payload := 2 * width // label + gap
	if payload < 8 {
		payload = 8
	}
	f, err := lidf.New(store, payload)
	if err != nil {
		return nil, err
	}
	return &Labeler{
		store: store,
		file:  f,
		cfg:   cfg,
		width: width,
		dir:   make(map[order.LID]*dirNode),
	}, nil
}

// Relabels reports how many global relabelings have occurred.
func (l *Labeler) Relabels() uint64 { return l.relabels }

// Count implements order.Labeler.
func (l *Labeler) Count() uint64 { return uint64(len(l.dir)) }

// LabelBits implements order.Labeler: a naive-k label is log(capacity)+k
// bits long.
func (l *Labeler) LabelBits() int { return l.cfg.CapacityBits + l.cfg.K }

// Height implements order.Labeler; the naive scheme has no tree.
func (l *Labeler) Height() int { return 1 }

// OrdinalLookup implements order.Labeler; the naive scheme cannot produce
// ordinal labels without a full scan.
func (l *Labeler) OrdinalLookup(order.LID) (uint64, error) {
	return 0, order.ErrNoOrdinal
}

func (l *Labeler) putRecord(lid order.LID, label, gap *big.Int) error {
	buf := make([]byte, 2*l.width)
	label.FillBytes(buf[:l.width])
	gap.FillBytes(buf[l.width : 2*l.width])
	return l.file.Set(lid, buf)
}

func (l *Labeler) getRecord(lid order.LID) (label, gap *big.Int, err error) {
	p, err := l.file.Get(lid)
	if err != nil {
		return nil, nil, err
	}
	label = new(big.Int).SetBytes(p[:l.width])
	gap = new(big.Int).SetBytes(p[l.width : 2*l.width])
	return label, gap, nil
}

// LookupBig returns the (possibly >64-bit) label of lid.
func (l *Labeler) LookupBig(lid order.LID) (*big.Int, error) {
	label, _, err := l.getRecord(lid)
	return label, err
}

// Lookup implements order.Labeler. If the label exceeds 64 bits (large k),
// it returns order.ErrLabelOverflow; use LookupBig instead.
func (l *Labeler) Lookup(lid order.LID) (order.Label, error) {
	label, err := l.LookupBig(lid)
	if err != nil {
		return 0, err
	}
	if !label.IsUint64() {
		return 0, order.ErrLabelOverflow
	}
	return label.Uint64(), nil
}

// dirInsertBefore links newLID immediately before oldLID in the in-memory
// directory; oldLID == NilLID appends at the tail.
func (l *Labeler) dirInsertBefore(newLID, oldLID order.LID) error {
	n := &dirNode{}
	if oldLID == order.NilLID {
		n.prev = l.tail
		if l.tail != order.NilLID {
			l.dir[l.tail].next = newLID
		} else {
			l.head = newLID
		}
		l.tail = newLID
	} else {
		old, ok := l.dir[oldLID]
		if !ok {
			return order.ErrUnknownLID
		}
		n.prev = old.prev
		n.next = oldLID
		if old.prev != order.NilLID {
			l.dir[old.prev].next = newLID
		} else {
			l.head = newLID
		}
		old.prev = newLID
	}
	l.dir[newLID] = n
	return nil
}

func (l *Labeler) dirRemove(lid order.LID) error {
	n, ok := l.dir[lid]
	if !ok {
		return order.ErrUnknownLID
	}
	if n.prev != order.NilLID {
		l.dir[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next != order.NilLID {
		l.dir[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
	delete(l.dir, lid)
	return nil
}

// encodeShifted writes v<<k into buf as a big-endian integer. It requires
// v << (k%8) to fit in 64 bits, which CapacityBits <= 56 guarantees.
func encodeShifted(buf []byte, v uint64, k int) {
	for i := range buf {
		buf[i] = 0
	}
	x := v << uint(k%8)
	for j := len(buf) - 1 - k/8; j >= 0 && x > 0; j-- {
		buf[j] = byte(x)
		x >>= 8
	}
}

// relabelAll reassigns every live label to (i+1)<<K in document order. The
// encoding is done with direct byte manipulation: a relabel touches every
// record, and this loop dominates the naive scheme's running time.
func (l *Labeler) relabelAll() error {
	l.relabels++
	l.store.Observer().Inc(obs.CtrNaiveRelabels)
	// Every live record gets rewritten; charging them all is exactly what
	// makes the naive scheme's amortized relabels-per-insert ratio grow
	// with N while the BOX schemes stay bounded.
	l.store.Observer().CostRelabeled(uint64(len(l.dir)))
	if uint64(len(l.dir)) > (uint64(1) << uint(l.cfg.CapacityBits)) {
		return order.ErrLabelOverflow
	}
	buf := make([]byte, 2*l.width)
	encodeShifted(buf[l.width:], 1, l.cfg.K) // gap = 1<<K, constant
	i := uint64(0)
	for lid := l.head; lid != order.NilLID; lid = l.dir[lid].next {
		i++
		encodeShifted(buf[:l.width], i, l.cfg.K)
		if err := l.file.Set(lid, buf); err != nil {
			return err
		}
	}
	return nil
}

// InsertBefore implements order.Labeler.
func (l *Labeler) InsertBefore(lidOld order.LID) (_ order.LID, err error) {
	if _, ok := l.dir[lidOld]; !ok {
		return order.NilLID, order.ErrUnknownLID
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	lidNew, err := l.file.Alloc()
	if err != nil {
		return order.NilLID, err
	}
	if err := l.dirInsertBefore(lidNew, lidOld); err != nil {
		return order.NilLID, err
	}
	oldLabel, oldGap, err := l.getRecord(lidOld)
	if err != nil {
		return order.NilLID, err
	}
	if oldGap.Cmp(big.NewInt(2)) < 0 {
		// Gap exhausted: global relabeling (the expensive case).
		if err := l.relabelAll(); err != nil {
			return order.NilLID, err
		}
		return lidNew, nil
	}
	// Midpoint insertion: new label = old - gap/2.
	half := new(big.Int).Rsh(oldGap, 1)
	newLabel := new(big.Int).Sub(oldLabel, half)
	newGap := new(big.Int).Sub(oldGap, half)
	if err := l.putRecord(lidNew, newLabel, newGap); err != nil {
		return order.NilLID, err
	}
	if err := l.putRecord(lidOld, oldLabel, half); err != nil {
		return order.NilLID, err
	}
	if newLabel.IsUint64() {
		l.store.Observer().HeatLabelInsert(newLabel.Uint64())
	}
	return lidNew, nil
}

// InsertElementBefore implements order.Labeler.
func (l *Labeler) InsertElementBefore(lidOld order.LID) (order.ElemLIDs, error) {
	end, err := l.InsertBefore(lidOld)
	if err != nil {
		return order.ElemLIDs{}, err
	}
	start, err := l.InsertBefore(end)
	if err != nil {
		return order.ElemLIDs{}, err
	}
	return order.ElemLIDs{Start: start, End: end}, nil
}

// InsertFirstElement implements order.Labeler.
func (l *Labeler) InsertFirstElement() (_ order.ElemLIDs, err error) {
	if len(l.dir) != 0 {
		return order.ElemLIDs{}, order.ErrNotEmpty
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	start, err := l.file.Alloc()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	end, err := l.file.Alloc()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.dirInsertBefore(start, order.NilLID); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.dirInsertBefore(end, order.NilLID); err != nil {
		return order.ElemLIDs{}, err
	}
	one := new(big.Int).Lsh(big.NewInt(1), uint(l.cfg.K))
	two := new(big.Int).Lsh(big.NewInt(2), uint(l.cfg.K))
	if err := l.putRecord(start, one, one); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.putRecord(end, two, one); err != nil {
		return order.ElemLIDs{}, err
	}
	return order.ElemLIDs{Start: start, End: end}, nil
}

// Delete implements order.Labeler.
func (l *Labeler) Delete(lid order.LID) (err error) {
	n, ok := l.dir[lid]
	if !ok {
		return order.ErrUnknownLID
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	_, gap, err := l.getRecord(lid)
	if err != nil {
		return err
	}
	if n.next != order.NilLID {
		succLabel, succGap, err := l.getRecord(n.next)
		if err != nil {
			return err
		}
		succGap.Add(succGap, gap)
		if err := l.putRecord(n.next, succLabel, succGap); err != nil {
			return err
		}
	}
	if err := l.file.Free(lid); err != nil {
		return err
	}
	return l.dirRemove(lid)
}

// BulkLoad implements order.Labeler.
func (l *Labeler) BulkLoad(tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if len(l.dir) != 0 {
		return nil, order.ErrNotEmpty
	}
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	if uint64(len(tags)) > (uint64(1) << uint(l.cfg.CapacityBits)) {
		return nil, order.ErrLabelOverflow
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	elems := make([]order.ElemLIDs, len(tags)/2)
	gap := new(big.Int).Lsh(big.NewInt(1), uint(l.cfg.K))
	label := new(big.Int)
	for i, t := range tags {
		lid, err := l.file.Alloc()
		if err != nil {
			return nil, err
		}
		if err := l.dirInsertBefore(lid, order.NilLID); err != nil {
			return nil, err
		}
		label.Lsh(big.NewInt(int64(i+1)), uint(l.cfg.K))
		if err := l.putRecord(lid, label, gap); err != nil {
			return nil, err
		}
		if t.Start {
			elems[t.Elem].Start = lid
		} else {
			elems[t.Elem].End = lid
		}
	}
	return elems, nil
}

// InsertSubtreeBefore implements order.Labeler: the new labels are spread
// evenly within the gap preceding lidOld if it is large enough; otherwise a
// global relabeling is performed.
func (l *Labeler) InsertSubtreeBefore(lidOld order.LID, tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if _, ok := l.dir[lidOld]; !ok {
		return nil, order.ErrUnknownLID
	}
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	elems := make([]order.ElemLIDs, len(tags)/2)
	lids := make([]order.LID, len(tags))
	for i, t := range tags {
		lid, err := l.file.Alloc()
		if err != nil {
			return nil, err
		}
		lids[i] = lid
		if t.Start {
			elems[t.Elem].Start = lid
		} else {
			elems[t.Elem].End = lid
		}
	}
	// Link into the directory in order, all before lidOld.
	anchor := lidOld
	for i := len(lids) - 1; i >= 0; i-- {
		if err := l.dirInsertBefore(lids[i], anchor); err != nil {
			return nil, err
		}
		anchor = lids[i]
	}

	oldLabel, oldGap, err := l.getRecord(lidOld)
	if err != nil {
		return nil, err
	}
	n := int64(len(lids))
	if oldGap.Cmp(big.NewInt(n+1)) < 0 {
		if err := l.relabelAll(); err != nil {
			return nil, err
		}
		return elems, nil
	}
	// Evenly spread: label_j = prev + floor(gap*(j+1)/(n+1)).
	prev := new(big.Int).Sub(oldLabel, oldGap)
	lastLabel := new(big.Int).Set(prev)
	for j, lid := range lids {
		off := new(big.Int).Mul(oldGap, big.NewInt(int64(j+1)))
		off.Div(off, big.NewInt(n+1))
		lab := new(big.Int).Add(prev, off)
		g := new(big.Int).Sub(lab, lastLabel)
		if err := l.putRecord(lid, lab, g); err != nil {
			return nil, err
		}
		if lab.IsUint64() {
			l.store.Observer().HeatLabelInsert(lab.Uint64())
		}
		lastLabel.Set(lab)
	}
	newOldGap := new(big.Int).Sub(oldLabel, lastLabel)
	if err := l.putRecord(lidOld, oldLabel, newOldGap); err != nil {
		return nil, err
	}
	return elems, nil
}

// DeleteSubtree implements order.Labeler.
func (l *Labeler) DeleteSubtree(start, end order.LID) (err error) {
	if _, ok := l.dir[start]; !ok {
		return order.ErrUnknownLID
	}
	if _, ok := l.dir[end]; !ok {
		return order.ErrUnknownLID
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	// Collect the contiguous range [start, end].
	var toDelete []order.LID
	found := false
	for lid := start; lid != order.NilLID; lid = l.dir[lid].next {
		toDelete = append(toDelete, lid)
		if lid == end {
			found = true
			break
		}
	}
	if !found {
		return errors.New("naive: end does not follow start in document order")
	}
	gapSum := new(big.Int)
	succ := l.dir[end].next
	for _, lid := range toDelete {
		_, gap, err := l.getRecord(lid)
		if err != nil {
			return err
		}
		gapSum.Add(gapSum, gap)
		if err := l.file.Free(lid); err != nil {
			return err
		}
		if err := l.dirRemove(lid); err != nil {
			return err
		}
	}
	if succ != order.NilLID {
		succLabel, succGap, err := l.getRecord(succ)
		if err != nil {
			return err
		}
		succGap.Add(succGap, gapSum)
		if err := l.putRecord(succ, succLabel, succGap); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants implements order.Labeler: labels are strictly increasing
// along document order and every gap field equals the distance to the
// previous label.
func (l *Labeler) CheckInvariants() (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	prev := new(big.Int).SetInt64(0)
	first := true
	count := 0
	for lid := l.head; lid != order.NilLID; lid = l.dir[lid].next {
		label, gap, err := l.getRecord(lid)
		if err != nil {
			return fmt.Errorf("naive: record %d: %w", lid, err)
		}
		if !first && label.Cmp(prev) <= 0 {
			return fmt.Errorf("naive: label of %d (%v) not greater than predecessor (%v)", lid, label, prev)
		}
		want := new(big.Int).Sub(label, prev)
		if gap.Cmp(want) != 0 {
			return fmt.Errorf("naive: gap of %d = %v, want %v", lid, gap, want)
		}
		prev.Set(label)
		first = false
		count++
	}
	if count != len(l.dir) {
		return fmt.Errorf("naive: directory walk found %d records, map holds %d", count, len(l.dir))
	}
	if uint64(count) != l.file.Count() {
		return fmt.Errorf("naive: LIDF holds %d records, directory %d", l.file.Count(), count)
	}
	return nil
}

var _ order.Labeler = (*Labeler)(nil)
