package naive

import (
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// gapLog2Bounds buckets gap sizes by their base-2 logarithm: the initial
// gaps are 2^K and midpoint insertion halves them, so log2(gap) is exactly
// "insertions this gap can still absorb". The upper bounds cover naive-1
// through naive-256.
var gapLog2Bounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// CollectGauges implements obs.Collector: label-space utilization against
// the 2^CapacityBits ceiling and the distribution of remaining gap sizes —
// the quantity whose exhaustion triggers the naive scheme's global
// relabelings. Reading the gaps streams the whole LIDF, so collection costs
// O(N/B) I/Os; run it on a quiescent structure.
func (l *Labeler) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("boxes_tree_height", "Tree height in levels (the naive scheme has no tree).", 1),
		obs.G("boxes_labels_live", "Live labels in the structure.", float64(len(l.dir))),
		obs.G("boxes_label_space_utilization",
			"Fraction of the 2^CapacityBits label capacity in use.",
			float64(len(l.dir))/float64(uint64(1)<<uint(l.cfg.CapacityBits))),
	}
	gs = append(gs, l.file.CollectGauges()...)

	// Gap distribution: log2 of every live record's gap field. A mass of
	// small gaps means relabeling is imminent.
	var logs []float64
	errs := 0
	func() {
		var err error
		l.store.BeginOp()
		defer l.store.EndOpInto(&err)
		for lid := l.head; lid != order.NilLID; lid = l.dir[lid].next {
			_, gap, gerr := l.getRecord(lid)
			if gerr != nil {
				errs++
				continue
			}
			lg := gap.BitLen() - 1
			if lg < 0 {
				lg = 0
			}
			logs = append(logs, float64(lg))
		}
	}()
	gs = append(gs, obs.BucketGauges("naive_gap_log2",
		"Distribution of log2(gap) over live labels; a gap of 2^g absorbs g midpoint insertions.",
		gapLog2Bounds, logs)...)
	gs = append(gs, obs.G("boxes_health_walk_errors",
		"Records the health walk failed to read (non-zero means partial gauges).",
		float64(errs)))
	return gs
}

var _ obs.Collector = (*Labeler)(nil)

// WalkBlocks calls visit for every store block the structure occupies.
// The naive scheme keeps its directory in memory, so its only on-disk
// footprint is the LIDF.
func (l *Labeler) WalkBlocks(visit func(pager.BlockID) error) error {
	return l.file.WalkBlocks(visit)
}
