package difftest

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/workload"
	"boxes/internal/xmlgen"
)

// Zoo runs adaptive workload sources (internal/workload) against all five
// scheme worlds at once. The source observes the labels of a single pilot
// world (worlds[0], W-BOX) and emits positional operations; each op is
// then applied identically to every world, so the differential contract
// of the byte-script harness — same logical script everywhere, oracle
// equality and strict ledger conservation after every check point — holds
// for adversarial, skewed and churning workloads too. (Byte scripts cannot
// express these: they are capped at maxScriptOps and have no way to feed
// the labeler's state back into the next operation.)
type Zoo struct {
	e *Engine
	// docOrder maps start-tag document-order positions to element
	// append-indices (the worlds' elems slices stay index-parallel).
	docOrder []int
}

// NewZoo builds a fresh five-world engine and bulk-loads base into every
// world (pass nil to start from an empty document).
func NewZoo(base *xmlgen.Tree) (*Zoo, error) {
	e, err := New()
	if err != nil {
		return nil, err
	}
	z := &Zoo{e: e}
	if base == nil {
		return z, nil
	}
	tags := base.TagStream()
	for _, w := range e.worlds {
		doc, err := w.st.Load(base)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: load base: %w", w.name, err)
		}
		lids := make([]order.LID, len(tags))
		for i, tg := range tags {
			if tg.Start {
				lids[i] = doc.Elems[tg.Elem].Start
			} else {
				lids[i] = doc.Elems[tg.Elem].End
			}
		}
		w.oracle.Load(lids)
		w.elems = append(w.elems, doc.Elems...)
	}
	// Preorder element order is start-tag document order.
	z.docOrder = make([]int, len(e.worlds[0].elems))
	for i := range z.docOrder {
		z.docOrder[i] = i
	}
	return z, nil
}

// Len implements workload.View.
func (z *Zoo) Len() int { return len(z.docOrder) }

// Label implements workload.View over the pilot world's labels.
func (z *Zoo) Label(pos int) (order.Label, error) {
	w := z.e.worlds[0]
	return w.st.Lookup(w.elems[z.docOrder[pos]].Start)
}

// EndLabel implements workload.View for the pilot world's end tags.
func (z *Zoo) EndLabel(pos int) (order.Label, error) {
	w := z.e.worlds[0]
	return w.st.Lookup(w.elems[z.docOrder[pos]].End)
}

// Apply performs one positional operation in every world (Pos clamped
// into range; Insert on an empty document bootstraps).
func (z *Zoo) Apply(op workload.Op) error {
	n := len(z.docOrder)
	pos := op.Pos
	if n > 0 {
		pos %= n
		if pos < 0 {
			pos += n
		}
	}
	switch op.Kind {
	case workload.Insert:
		if n == 0 {
			if err := z.e.insertFirst(); err != nil {
				return err
			}
			z.docOrder = append(z.docOrder[:0], len(z.e.worlds[0].elems)-1)
			return nil
		}
		j := z.docOrder[pos]
		if err := z.e.insertBeforeAt(j, false); err != nil {
			return err
		}
		ni := len(z.e.worlds[0].elems) - 1
		z.docOrder = append(z.docOrder, 0)
		copy(z.docOrder[pos+1:], z.docOrder[pos:])
		z.docOrder[pos] = ni
		return nil
	case workload.Delete:
		if n == 0 {
			return nil
		}
		j := z.docOrder[pos]
		if err := z.e.deleteElementAt(j); err != nil {
			return err
		}
		z.docOrder = append(z.docOrder[:pos], z.docOrder[pos+1:]...)
		for i, v := range z.docOrder {
			if v > j {
				z.docOrder[i] = v - 1
			}
		}
		return nil
	case workload.Lookup:
		if n == 0 {
			return nil
		}
		j := z.docOrder[pos]
		return z.e.lookupsAt(j, j, false)
	}
	return fmt.Errorf("difftest: unknown workload op kind %d", op.Kind)
}

// Run pulls nops operations from src, applies each to every world, and
// verifies all worlds (oracle equality, cross-world counts, strict ledger
// conservation) every verifyEvery ops and at the end, finishing with the
// deep structural invariant check.
func (z *Zoo) Run(src workload.Source, nops, verifyEvery int) error {
	for i := 0; i < nops; i++ {
		op, err := src.Next(z)
		if err != nil {
			return fmt.Errorf("difftest: %s: op %d: %w", src.Name(), i, err)
		}
		if err := z.Apply(op); err != nil {
			return fmt.Errorf("difftest: %s: op %d (%s @%d): %w", src.Name(), i, op.Kind, op.Pos, err)
		}
		if verifyEvery > 0 && (i+1)%verifyEvery == 0 {
			if err := z.e.verify(); err != nil {
				return fmt.Errorf("difftest: %s: after op %d: %w", src.Name(), i, err)
			}
		}
	}
	if err := z.e.verify(); err != nil {
		return fmt.Errorf("difftest: %s: final verify: %w", src.Name(), err)
	}
	return z.e.finalCheck()
}

// Counter reads a metrics counter from the named scheme world's registry
// (0 when the scheme is not part of the matrix), letting tests assert
// structural events — e.g. that churn actually reached the W-BOX global
// rebuild.
func (z *Zoo) Counter(scheme string, c obs.Counter) uint64 {
	for _, w := range z.e.worlds {
		if w.name == scheme {
			return w.st.MetricsRegistry().Counter(c)
		}
	}
	return 0
}
