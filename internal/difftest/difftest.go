// Package difftest is a cross-scheme differential fuzz harness: one
// randomized operation script drives every labeling scheme (W-BOX,
// W-BOX-O, B-BOX, B-BOX-O, naive-k) plus the trivially correct in-memory
// oracle, and after every operation each scheme's label order is checked
// against the oracle and the schemes are checked against each other
// (counts always; exact ordinal positions where supported). Because every
// world receives the identical positional script, any divergence — a label
// out of order, a wrong ordinal, a count mismatch, an operation that
// errors on one scheme but not another — is a real bug in exactly one
// scheme's maintenance logic.
//
// Scripts are plain byte strings so the harness plugs directly into go
// test's native fuzzing (FuzzOps) as well as seeded property tests.
package difftest

import (
	"errors"
	"fmt"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/xmlgen"
)

const blockSize = 512

// maxScriptOps bounds the number of decoded operations per script, keeping
// the after-every-op O(n) oracle sweep affordable under fuzzing.
const maxScriptOps = 64

// world is one scheme under test with its private oracle mirror. Scripts
// are positional (they name element indices, not LIDs), so every world
// performs the same logical operation even though LID values may differ.
type world struct {
	name    string
	st      *core.Store
	oracle  *order.Oracle
	elems   []order.ElemLIDs
	ordinal bool
}

// Engine holds the five scheme worlds one script runs against.
type Engine struct {
	worlds []*world
	ops    int // decoded operations executed
}

// Config is one scheme of the shared test matrix: its display name, the
// structural core.Options selecting it, and whether it supports ordinal
// (rank) queries.
type Config struct {
	Name    string
	Opts    core.Options
	Ordinal bool
}

// Configs is the scheme matrix shared by the differential fuzzer and the
// deterministic simulator (internal/sim): every dynamic scheme of the
// paper plus the naive baseline.
func Configs() []Config {
	return []Config{
		{"wbox", core.Options{Scheme: core.SchemeWBox, Ordinal: true}, true},
		{"wbox-o", core.Options{Scheme: core.SchemeWBoxO, Ordinal: true}, true},
		{"bbox", core.Options{Scheme: core.SchemeBBox}, false},
		{"bbox-o", core.Options{Scheme: core.SchemeBBox, Ordinal: true, RelaxedFanout: true}, true},
		{"naive-8", core.Options{Scheme: core.SchemeNaive, NaiveK: 8}, false},
	}
}

// New builds a fresh engine with one in-memory store per scheme.
func New() (*Engine, error) {
	e := &Engine{}
	for _, cfg := range Configs() {
		opts := cfg.Opts
		opts.BlockSize = blockSize
		st, err := core.Open(opts)
		if err != nil {
			return nil, fmt.Errorf("difftest: open %s: %w", cfg.Name, err)
		}
		e.worlds = append(e.worlds, &world{
			name:    cfg.Name,
			st:      st,
			oracle:  order.NewOracle(),
			ordinal: cfg.Ordinal,
		})
	}
	return e, nil
}

// script is a cursor over the fuzz input.
type script struct {
	data []byte
	pos  int
}

// next returns the next input byte, or false when the script is exhausted.
func (s *script) next() (byte, bool) {
	if s.pos >= len(s.data) {
		return 0, false
	}
	b := s.data[s.pos]
	s.pos++
	return b, true
}

// Exec decodes and runs one script, verifying every world after every
// operation. The returned error pinpoints the diverging world and op.
func Exec(data []byte) error {
	e, err := New()
	if err != nil {
		return err
	}
	return e.run(data)
}

func (e *Engine) run(data []byte) error {
	s := &script{data: data}
	for e.ops < maxScriptOps {
		kind, ok := s.next()
		if !ok {
			break
		}
		if err := e.step(kind, s); err != nil {
			return err
		}
		if err := e.verify(); err != nil {
			return fmt.Errorf("after op %d (kind %d): %w", e.ops, kind%7, err)
		}
		e.ops++
	}
	return e.finalCheck()
}

// step decodes one operation from the script and applies it to every world.
func (e *Engine) step(kind byte, s *script) error {
	w0 := e.worlds[0]
	if len(w0.elems) == 0 {
		// Only bootstrap is meaningful on an empty document.
		return e.insertFirst()
	}
	switch kind % 7 {
	case 0:
		return e.insertBefore(s)
	case 1:
		return e.insertSubtree(s)
	case 2:
		return e.deleteElement(s)
	case 3:
		return e.deleteSubtree(s)
	case 4:
		return e.lookups(s)
	case 5:
		return e.batch(s)
	default:
		return e.insertBefore(s)
	}
}

// target picks an element index and a side (start/end tag) from the script.
func (e *Engine) target(s *script) (idx int, end bool) {
	b, _ := s.next()
	c, _ := s.next()
	n := len(e.worlds[0].elems)
	if n == 0 {
		return 0, false
	}
	return int(b) % n, c&1 == 1
}

func (w *world) tagAt(idx int, end bool) order.LID {
	if end {
		return w.elems[idx].End
	}
	return w.elems[idx].Start
}

func (e *Engine) insertFirst() error {
	for _, w := range e.worlds {
		elem, err := w.st.InsertFirstElement()
		if err != nil {
			return fmt.Errorf("%s: insert-first: %w", w.name, err)
		}
		if err := w.oracle.InsertFirstElement(elem); err != nil {
			return fmt.Errorf("%s: oracle insert-first: %w", w.name, err)
		}
		w.elems = append(w.elems, elem)
	}
	return nil
}

func (e *Engine) insertBefore(s *script) error {
	idx, end := e.target(s)
	return e.insertBeforeAt(idx, end)
}

func (e *Engine) insertBeforeAt(idx int, end bool) error {
	for _, w := range e.worlds {
		at := w.tagAt(idx, end)
		elem, err := w.st.InsertElementBefore(at)
		if err != nil {
			return fmt.Errorf("%s: insert-before elem %d: %w", w.name, idx, err)
		}
		if err := w.oracle.InsertElementBefore(elem, at); err != nil {
			return fmt.Errorf("%s: oracle insert-before: %w", w.name, err)
		}
		w.elems = append(w.elems, elem)
	}
	return nil
}

// insertSubtree bulk-inserts a small two-level subtree. The LID order of a
// TwoLevel(k) insertion is root.Start, child_i.Start, child_i.End ...,
// root.End — exactly the returned element slice flattened in document
// order.
func (e *Engine) insertSubtree(s *script) error {
	idx, end := e.target(s)
	b, _ := s.next()
	k := 2 + int(b)%3 // 2..4 elements
	tree := xmlgen.TwoLevel(k)
	for _, w := range e.worlds {
		at := w.tagAt(idx, end)
		elems, err := w.st.InsertSubtreeBefore(at, tree)
		if err != nil {
			return fmt.Errorf("%s: insert-subtree(%d) at elem %d: %w", w.name, k, idx, err)
		}
		if len(elems) != k {
			return fmt.Errorf("%s: insert-subtree returned %d elements, want %d", w.name, len(elems), k)
		}
		lids := make([]order.LID, 0, 2*k)
		lids = append(lids, elems[0].Start)
		for _, c := range elems[1:] {
			lids = append(lids, c.Start, c.End)
		}
		lids = append(lids, elems[0].End)
		if err := w.oracle.InsertSliceBefore(lids, at); err != nil {
			return fmt.Errorf("%s: oracle insert-subtree: %w", w.name, err)
		}
		w.elems = append(w.elems, elems...)
	}
	return nil
}

func (e *Engine) deleteElement(s *script) error {
	idx, _ := e.target(s)
	return e.deleteElementAt(idx)
}

func (e *Engine) deleteElementAt(idx int) error {
	for _, w := range e.worlds {
		elem := w.elems[idx]
		if err := w.st.DeleteElement(elem); err != nil {
			return fmt.Errorf("%s: delete-element %d: %w", w.name, idx, err)
		}
		if err := w.oracle.Delete(elem.Start); err != nil {
			return fmt.Errorf("%s: oracle delete start: %w", w.name, err)
		}
		if err := w.oracle.Delete(elem.End); err != nil {
			return fmt.Errorf("%s: oracle delete end: %w", w.name, err)
		}
		w.elems = append(w.elems[:idx], w.elems[idx+1:]...)
	}
	return nil
}

func (e *Engine) deleteSubtree(s *script) error {
	idx, _ := e.target(s)
	return e.deleteSubtreeAt(idx)
}

func (e *Engine) deleteSubtreeAt(idx int) error {
	for _, w := range e.worlds {
		elem := w.elems[idx]
		if err := w.st.DeleteSubtree(elem); err != nil {
			return fmt.Errorf("%s: delete-subtree %d: %w", w.name, idx, err)
		}
		if err := w.oracle.DeleteRange(elem.Start, elem.End); err != nil {
			return fmt.Errorf("%s: oracle delete-range: %w", w.name, err)
		}
		// Drop every element whose tags fell inside the deleted range.
		live := w.elems[:0]
		for _, el := range w.elems {
			if w.oracle.Position(el.Start) >= 0 {
				live = append(live, el)
			}
		}
		w.elems = live
	}
	return nil
}

// lookups runs the read path: span lookup, pairwise compare, and ordinal
// lookup, cross-checking results between worlds and against the oracle.
func (e *Engine) lookups(s *script) error {
	idx, _ := e.target(s)
	jdx, jend := e.target(s)
	return e.lookupsAt(idx, jdx, jend)
}

func (e *Engine) lookupsAt(idx, jdx int, jend bool) error {
	var wantOrd int64 = -1
	for _, w := range e.worlds {
		sp, err := w.st.LookupSpan(w.elems[idx])
		if err != nil {
			return fmt.Errorf("%s: lookup-span %d: %w", w.name, idx, err)
		}
		if sp.Start >= sp.End {
			return fmt.Errorf("%s: span of elem %d inverted: [%d, %d]", w.name, idx, sp.Start, sp.End)
		}
		a, b := w.tagAt(idx, false), w.tagAt(jdx, jend)
		cmp, err := w.st.Compare(a, b)
		if err != nil {
			return fmt.Errorf("%s: compare: %w", w.name, err)
		}
		pa, pb := w.oracle.Position(a), w.oracle.Position(b)
		want := 0
		if pa < pb {
			want = -1
		} else if pa > pb {
			want = 1
		}
		if cmp != want {
			return fmt.Errorf("%s: compare(%d, %d) = %d, oracle order says %d", w.name, a, b, cmp, want)
		}
		if !w.ordinal {
			continue
		}
		ord, err := w.st.OrdinalLookup(w.tagAt(jdx, jend))
		if err != nil {
			return fmt.Errorf("%s: ordinal-lookup: %w", w.name, err)
		}
		if p := w.oracle.Position(w.tagAt(jdx, jend)); int(ord) != p {
			return fmt.Errorf("%s: ordinal %d, oracle position %d", w.name, ord, p)
		}
		if wantOrd >= 0 && int64(ord) != wantOrd {
			return fmt.Errorf("%s: ordinal %d disagrees with another scheme's %d", w.name, ord, wantOrd)
		}
		wantOrd = int64(ord)
	}
	return nil
}

// batch routes a short run of mutations and reads through ApplyBatch, so
// the batch path and the one-op-per-call path are differentially tested
// against each other (each world's oracle is updated from the batch's
// positional results).
func (e *Engine) batch(s *script) error {
	b, _ := s.next()
	n := 2 + int(b)%3 // 2..4 ops per batch
	type plan struct {
		kind core.OpKind
		idx  int
		end  bool
	}
	plans := make([]plan, 0, n)
	inserts := 0
	for i := 0; i < n; i++ {
		kb, _ := s.next()
		idx, end := e.target(s)
		switch kb % 3 {
		case 0:
			plans = append(plans, plan{core.OpInsertBefore, idx, end})
			inserts++
		case 1:
			plans = append(plans, plan{core.OpLookup, idx, end})
		default:
			plans = append(plans, plan{core.OpLookupSpan, idx, false})
		}
	}
	for _, w := range e.worlds {
		ops := make([]core.Op, len(plans))
		for i, p := range plans {
			switch p.kind {
			case core.OpInsertBefore:
				ops[i] = core.Op{Kind: core.OpInsertBefore, LID: w.tagAt(p.idx, p.end)}
			case core.OpLookup:
				ops[i] = core.Op{Kind: core.OpLookup, LID: w.tagAt(p.idx, p.end)}
			default:
				ops[i] = core.Op{Kind: core.OpLookupSpan, Elem: w.elems[p.idx]}
			}
		}
		results, err := w.st.ApplyBatch(ops)
		if err != nil {
			return fmt.Errorf("%s: apply-batch: %w", w.name, err)
		}
		for i, p := range plans {
			if p.kind != core.OpInsertBefore {
				continue
			}
			elem := results[i].Elem
			if err := w.oracle.InsertElementBefore(elem, w.tagAt(p.idx, p.end)); err != nil {
				return fmt.Errorf("%s: oracle batch insert: %w", w.name, err)
			}
			w.elems = append(w.elems, elem)
		}
	}
	return nil
}

// verify checks every world against its oracle and the worlds against each
// other after one operation.
func (e *Engine) verify() error {
	count := uint64(0)
	for i, w := range e.worlds {
		if err := w.oracle.CheckAgainst(w.st.Labeler(), w.ordinal); err != nil {
			return fmt.Errorf("%s diverged from oracle: %w", w.name, err)
		}
		// Each world owns a private registry and runs single-threaded, so
		// the cost ledger must balance exactly after every operation:
		// structural counters == attributed cells == global totals, and the
		// ledger's I/O kinds == the pager's own read/write counters.
		if err := w.st.CheckLedger(true); err != nil {
			return fmt.Errorf("%s: cost-ledger conservation: %w", w.name, err)
		}
		if i == 0 {
			count = w.st.Count()
		} else if got := w.st.Count(); got != count {
			return fmt.Errorf("%s holds %d labels, %s holds %d", w.name, got, e.worlds[0].name, count)
		}
	}
	return nil
}

// finalCheck runs the deep structural invariant validation on every world
// (too expensive for after-every-op use under fuzzing).
func (e *Engine) finalCheck() error {
	var errs []error
	for _, w := range e.worlds {
		if err := w.st.CheckInvariants(); err != nil {
			errs = append(errs, fmt.Errorf("%s: invariants: %w", w.name, err))
		}
	}
	return errors.Join(errs...)
}

// Ops reports how many script operations ran (for coverage-ish logging in
// the seeded property test).
func (e *Engine) Ops() int { return e.ops }
