package difftest

import (
	"testing"

	"boxes/internal/obs"
	"boxes/internal/workload"
	"boxes/internal/xmlgen"
)

// TestZooWorkloads runs every workload-zoo source against all five scheme
// worlds over each document shape: the BKS adversaries (front-packing and
// recursive bisection, adapting to the pilot world's labels), the zipfian
// skewed mix, steady-state churn, and the uniform control. Every world is
// checked against its oracle with strict ledger conservation at each
// verify point, so a pass means the paper's "any insertion sequence"
// claim survives the adversarial corner for all schemes at once.
func TestZooWorkloads(t *testing.T) {
	shapes := []struct {
		name string
		tree *xmlgen.Tree
	}{
		{"two-level", xmlgen.TwoLevel(48)},
		{"deep-chain", xmlgen.DeepChain(32)},
		{"fanout", xmlgen.Fanout(4, 3)},
		{"xmark", xmlgen.XMark(40, 7)},
	}
	sources := []func() workload.Source{
		func() workload.Source { return workload.NewFrontPack(8) },
		func() workload.Source { return workload.NewBisect(8) },
		func() workload.Source { return workload.NewZipfMix(11, 1.2, 40, 15) },
		func() workload.Source { return workload.NewChurn(13, 24) },
		func() workload.Source { return workload.NewUniform(17) },
	}
	for _, sh := range shapes {
		for _, mk := range sources {
			src := mk()
			t.Run(sh.name+"/"+src.Name(), func(t *testing.T) {
				z, err := NewZoo(sh.tree)
				if err != nil {
					t.Fatal(err)
				}
				if err := z.Run(src, 120, 8); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestZooFromEmptyDocument exercises the bootstrap path: churn starting
// with no base document must build up, drain, and re-bootstrap cleanly.
func TestZooFromEmptyDocument(t *testing.T) {
	z, err := NewZoo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Run(workload.NewChurn(3, 6), 150, 4); err != nil {
		t.Fatal(err)
	}
}

// TestChurnReachesWBoxRebuild is the steady-state churn regression: at a
// fixed document size, every delete leaves tombstones behind while the
// live count stays flat, so the dead >= live predicate must eventually
// fire the W-BOX global rebuild. The test asserts — via the cost ledger's
// rebuild counter — that the trigger was actually reached, and verifies
// after every single op, so the schemes stay oracle-equal through the
// rebuild itself.
func TestChurnReachesWBoxRebuild(t *testing.T) {
	z, err := NewZoo(xmlgen.TwoLevel(24))
	if err != nil {
		t.Fatal(err)
	}
	// 24 live elements = 48 live labels; dead grows by 2 per element
	// delete, so ~48 churn deletes (~96 balanced ops) reach dead >= live.
	// 300 ops leave comfortable margin (and cover repeat triggers).
	if err := z.Run(workload.NewChurn(5, 24), 300, 1); err != nil {
		t.Fatal(err)
	}
	if got := z.Counter("wbox", obs.CtrWBoxRebuilds); got == 0 {
		t.Fatalf("steady-state churn never reached the W-BOX global rebuild (rebuild counter = 0)")
	} else {
		t.Logf("W-BOX global rebuilds under churn: %d", got)
	}
}
