package difftest

import (
	"math/rand"
	"testing"
)

// TestDiffSeededScripts is the deterministic property test: pseudo-random
// scripts of increasing length drive all five schemes and the oracle. Any
// failure prints the script bytes, which can be dropped straight into the
// fuzz corpus.
func TestDiffSeededScripts(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			n := 32 + rng.Intn(3*maxScriptOps)
			script := make([]byte, n)
			rng.Read(script)
			if err := Exec(script); err != nil {
				t.Fatalf("seed %d script %q: %v", seed, script, err)
			}
		})
	}
}

// TestDiffDirectedScripts pins down hand-written scenarios the random
// sweep may miss: bootstrap-only, delete-to-empty-and-rebootstrap, and
// batch-heavy scripts.
func TestDiffDirectedScripts(t *testing.T) {
	cases := map[string][]byte{
		"bootstrap-only": {0},
		"insert-chain":   {0, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6},
		"subtree-churn":  {0, 1, 0, 0, 2, 1, 1, 1, 1, 3, 0, 0, 1, 2, 2, 4, 0, 1, 2},
		"batch-heavy":    {0, 5, 9, 0, 0, 1, 3, 2, 7, 5, 3, 0, 1, 0, 1, 1, 2, 5, 1, 4, 4, 2},
		"reads-mixed":    {0, 4, 1, 0, 2, 1, 4, 3, 1, 0, 0, 4, 4, 5, 6, 4, 2, 0},
	}
	for name, script := range cases {
		name, script := name, script
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := Exec(script); err != nil {
				t.Fatalf("script %v: %v", script, err)
			}
		})
	}
}

// TestDiffDeleteToEmpty drives the document empty and rebootstraps it,
// twice — the lifecycle edge the schemes must all agree on.
func TestDiffDeleteToEmpty(t *testing.T) {
	// op 0: bootstrap; kind%7==3 deletes a subtree — targeting element 0
	// (the root) empties the document; the next op rebootstraps.
	script := []byte{
		0,       // bootstrap
		3, 0, 0, // delete subtree at root -> empty
		0,       // rebootstrap
		0, 0, 0, // insert-before
		3, 0, 0, // empty again (delete root subtree)
		0, // rebootstrap again
	}
	if err := Exec(script); err != nil {
		t.Fatal(err)
	}
}

// FuzzOps is the native fuzz target: go test -fuzz=FuzzOps ./internal/difftest
func FuzzOps(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})
	f.Add([]byte{0, 1, 0, 0, 2, 1, 1, 1, 1, 3, 0, 0, 1, 2, 2, 4, 0, 1, 2})
	f.Add([]byte{0, 5, 9, 0, 0, 1, 3, 2, 7, 5, 3, 0, 1, 0, 1, 1, 2, 5, 1, 4, 4, 2})
	f.Add([]byte{0, 3, 0, 0, 0, 0, 0, 0, 3, 0, 0, 0})
	// Promoted sim-minimizer shapes (also committed under testdata/fuzz):
	// drain-to-empty-then-rebootstrap (the two-event tombstone-strand
	// repro) and a full churn hysteresis cycle.
	f.Add([]byte{1, 2, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 2, 1, 2, 3, 0, 2, 0, 0, 2, 1, 0, 2, 0, 0, 0, 0, 0, 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 4*maxScriptOps {
			script = script[:4*maxScriptOps]
		}
		if err := Exec(script); err != nil {
			t.Fatalf("script %q: %v", script, err)
		}
	})
}
