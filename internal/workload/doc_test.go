package workload_test

import (
	"testing"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/wbox"
	"boxes/internal/workload"
	"boxes/internal/xmlgen"
)

func newWBox(t *testing.T) order.Labeler {
	t.Helper()
	p, err := wbox.NewParams(512, wbox.Basic, false)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wbox.New(pager.NewMemStore(512), p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// checkDocOrder asserts the Doc's tracked element order matches the
// labeler's label order: successive start tags must carry strictly
// increasing labels, and the label count must be twice the element count.
func checkDocOrder(t *testing.T, d *workload.Doc, l order.Labeler) {
	t.Helper()
	if got, want := l.Count(), uint64(2*d.Len()); got != want {
		t.Fatalf("labeler holds %d labels, doc tracks %d elements (want %d labels)", got, d.Len(), want)
	}
	prev := order.Label(0)
	for i := 0; i < d.Len(); i++ {
		lab, err := d.Label(i)
		if err != nil {
			t.Fatalf("label of element %d: %v", i, err)
		}
		if i > 0 && lab <= prev {
			t.Fatalf("doc order broken at element %d: label %d <= %d", i, lab, prev)
		}
		prev = lab
	}
}

// TestDocDrivesLabeler runs every zoo source against a real W-BOX labeler
// through the Doc adapter and checks the positional bookkeeping stays
// consistent with the labels the scheme actually assigned.
func TestDocDrivesLabeler(t *testing.T) {
	sources := []func() workload.Source{
		func() workload.Source { return workload.NewFrontPack(12) },
		func() workload.Source { return workload.NewBisect(12) },
		func() workload.Source { return workload.NewZipfMix(21, 1.4, 50, 15) },
		func() workload.Source { return workload.NewChurn(23, 20) },
		func() workload.Source { return workload.NewUniform(25) },
	}
	for _, mk := range sources {
		src := mk()
		t.Run(src.Name(), func(t *testing.T) {
			l := newWBox(t)
			d := workload.NewDoc(l)
			if err := d.Load(xmlgen.TwoLevel(32)); err != nil {
				t.Fatal(err)
			}
			steps := 0
			err := workload.Run(d, src, 200, func(op workload.Op, apply func() error) error {
				steps++
				return apply()
			})
			if err != nil {
				t.Fatal(err)
			}
			if steps != 200 {
				t.Fatalf("wrap saw %d ops, want 200", steps)
			}
			checkDocOrder(t, d, l)
			if err := l.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDocBootstrapsFromEmpty drives churn from a completely empty labeler.
func TestDocBootstrapsFromEmpty(t *testing.T) {
	l := newWBox(t)
	d := workload.NewDoc(l)
	if err := workload.Run(d, workload.NewChurn(31, 8), 200, nil); err != nil {
		t.Fatal(err)
	}
	checkDocOrder(t, d, l)
}

// TestBisectConcentratesInserts is the behavioral contract of the BKS
// adversary: against a real scheme, its insertion points must concentrate
// (it keeps re-attacking the tightest region) where the uniform control
// spreads out. We measure concentration as the largest number of inserts
// landing between one pair of originally adjacent base elements.
func TestBisectConcentratesInserts(t *testing.T) {
	concentration := func(src workload.Source) int {
		l := newWBox(t)
		d := workload.NewDoc(l)
		if err := d.Load(xmlgen.TwoLevel(64)); err != nil {
			t.Fatal(err)
		}
		base := make(map[order.LID]bool, 64)
		for _, e := range d.Elems() {
			base[e.Start] = true
		}
		if err := workload.Run(d, src, 100, nil); err != nil {
			t.Fatal(err)
		}
		best, cur := 0, 0
		for i := 0; i < d.Len(); i++ {
			if base[d.Elems()[i].Start] {
				cur = 0
				continue
			}
			cur++
			if cur > best {
				best = cur
			}
		}
		return best
	}
	adv := concentration(workload.NewBisect(16))
	uni := concentration(workload.NewUniform(3))
	if adv < 2*uni || adv < 10 {
		t.Fatalf("bisect adversary is not concentrating: max run %d inserts vs uniform %d", adv, uni)
	}
	t.Logf("max insert run between adjacent base elements: bisect %d, uniform %d", adv, uni)
}
