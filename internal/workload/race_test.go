package workload_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"boxes/internal/core"
	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/workload"
	"boxes/internal/xmlgen"
)

// syncDoc adapts a core.SyncStore to workload.View for the single writer
// goroutine: elems is writer-private state (never shared), and every label
// read goes through the store's read lock.
type syncDoc struct {
	st    *core.SyncStore
	elems []order.ElemLIDs // start-tag document order, writer-only
}

func (d *syncDoc) Len() int { return len(d.elems) }

func (d *syncDoc) Label(pos int) (order.Label, error) {
	return d.st.Lookup(d.elems[pos].Start)
}

func (d *syncDoc) EndLabel(pos int) (order.Label, error) {
	return d.st.Lookup(d.elems[pos].End)
}

func (d *syncDoc) apply(op workload.Op) error {
	n := len(d.elems)
	pos := op.Pos
	if n > 0 {
		pos %= n
		if pos < 0 {
			pos += n
		}
	}
	switch op.Kind {
	case workload.Insert:
		if n == 0 {
			e, err := d.st.InsertFirstElement()
			if err != nil {
				return err
			}
			d.elems = append(d.elems, e)
			return nil
		}
		e, err := d.st.InsertElementBefore(d.elems[pos].Start)
		if err != nil {
			return err
		}
		d.elems = append(d.elems, order.ElemLIDs{})
		copy(d.elems[pos+1:], d.elems[pos:])
		d.elems[pos] = e
		return nil
	case workload.Delete:
		if n == 0 {
			return nil
		}
		if err := d.st.DeleteElement(d.elems[pos]); err != nil {
			return err
		}
		d.elems = append(d.elems[:pos], d.elems[pos+1:]...)
		return nil
	case workload.Lookup:
		if n == 0 {
			return nil
		}
		_, err := d.st.Lookup(d.elems[pos].Start)
		return err
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

// TestSyncStoreZipfReadersVsChurnWriter races zipfian-skewed reader
// goroutines against a churn writer on a durable file-backed SyncStore,
// with one durable close/reopen in the middle. Under -race this exercises
// the read/write lock split while the writer repeatedly crosses the
// tombstone-heavy delete bursts of the churn source (the regime that
// triggers W-BOX redistributions, so readers race whole-document
// relabels, not just point updates). Readers work from a published
// snapshot of the element set; a concurrently deleted element surfaces as
// order.ErrUnknownLID (or ErrLabelOverflow from a tombstoned label slot),
// and a live element's Compare(start, end) must report start < end no
// matter how the labels are being rewritten underneath.
func TestSyncStoreZipfReadersVsChurnWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak is not short")
	}
	path := filepath.Join(t.TempDir(), "zoo.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Open(core.Options{
		Scheme: core.SchemeWBox, BlockSize: 512,
		Backend: fb, Durable: true,
		Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewSyncStore(base)
	doc, err := st.Load(xmlgen.TwoLevel(96))
	if err != nil {
		t.Fatal(err)
	}
	d := &syncDoc{st: st, elems: append([]order.ElemLIDs(nil), doc.Elems...)}

	// published holds the reader-visible element snapshot; only the writer
	// stores, readers only load.
	var published atomic.Value
	published.Store(append([]order.ElemLIDs(nil), d.elems...))

	const (
		readers      = 4
		opsPerPhase  = 300
		churnTarget  = 96
		readerChecks = 2000
	)
	src := workload.NewChurn(7, churnTarget)

	phase := func(t *testing.T) {
		done := make(chan struct{})
		errCh := make(chan error, readers+1)
		var wg sync.WaitGroup

		wg.Add(1)
		go func() { // churn writer
			defer wg.Done()
			defer close(done)
			for i := 0; i < opsPerPhase; i++ {
				op, err := src.Next(d)
				if err != nil {
					errCh <- fmt.Errorf("writer: op %d: %w", i, err)
					return
				}
				if err := d.apply(op); err != nil {
					errCh <- fmt.Errorf("writer: op %d (%s @%d): %w", i, op.Kind, op.Pos, err)
					return
				}
				published.Store(append([]order.ElemLIDs(nil), d.elems...))
			}
		}()

		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000 + g)))
				zipf := rand.NewZipf(rng, 1.2, 1, 1<<20)
				for i := 0; i < readerChecks; i++ {
					select {
					case <-done:
						return
					default:
					}
					elems := published.Load().([]order.ElemLIDs)
					if len(elems) == 0 {
						continue
					}
					e := elems[int(zipf.Uint64())%len(elems)]
					// Compare start vs end under one read lock: atomic
					// against relabels. A deleted element answers
					// ErrUnknownLID / ErrLabelOverflow; anything else must
					// order correctly.
					c, err := st.Compare(e.Start, e.End)
					if err != nil {
						if errors.Is(err, order.ErrUnknownLID) || errors.Is(err, order.ErrLabelOverflow) {
							continue
						}
						errCh <- fmt.Errorf("reader %d: compare: %w", g, err)
						return
					}
					if c >= 0 {
						errCh <- fmt.Errorf("reader %d: start !< end (cmp=%d)", g, c)
						return
					}
					if _, err := st.Lookup(e.Start); err != nil && !errors.Is(err, order.ErrUnknownLID) && !errors.Is(err, order.ErrLabelOverflow) {
						errCh <- fmt.Errorf("reader %d: lookup: %w", g, err)
						return
					}
				}
			}(g)
		}

		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}

	phase(t)

	// Durable reopen mid-run: everything the writer returned from is on
	// disk, so the reopened store must hold exactly the writer's element
	// count, and the second phase continues the same churn source on it.
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := pager.OpenFileOpts(path, pager.FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	re, err := core.OpenExisting(fb2, core.Options{Durable: true, Durability: &pager.Durability{Every: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Count(), uint64(2*len(d.elems)); got != want {
		t.Fatalf("reopened count = %d, want %d (%d live elements)", got, want, len(d.elems))
	}
	st = core.NewSyncStore(re)
	d.st = st
	for pos := range d.elems { // labels survived the reopen in order
		if pos == 0 {
			continue
		}
		prev, err := d.Label(pos - 1)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := d.Label(pos)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= cur {
			t.Fatalf("reopened labels out of order at position %d: %d >= %d", pos, prev, cur)
		}
	}
	published.Store(append([]order.ElemLIDs(nil), d.elems...))

	phase(t)

	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(); err != nil {
		t.Fatal(err)
	}
}
