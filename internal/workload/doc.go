package workload

import (
	"errors"
	"fmt"

	"boxes/internal/order"
	"boxes/internal/xmlgen"
)

// Doc adapts one order.Labeler to the zoo: a Tracker keeps the live
// elements in start-tag document order (the coordinate system of Op.Pos)
// and Doc implements View over their current labels, so an adaptive
// Source can attack the labeler directly.
type Doc struct {
	l  order.Labeler
	tr Tracker
}

// NewDoc wraps an empty labeler.
func NewDoc(l order.Labeler) *Doc { return &Doc{l: l} }

// Load bulk-loads tree into the labeler (which must be empty). Preorder
// element order is start-tag document order, so the element slice maps
// positions directly.
func (d *Doc) Load(tree *xmlgen.Tree) error {
	elems, err := d.l.BulkLoad(tree.TagStream())
	if err != nil {
		return err
	}
	d.tr.NoteLoad(elems)
	return nil
}

// Len returns the number of live elements.
func (d *Doc) Len() int { return d.tr.Len() }

// Label returns the current label of the pos-th element's start tag.
func (d *Doc) Label(pos int) (order.Label, error) {
	return d.l.Lookup(d.tr.Elem(pos).Start)
}

// EndLabel returns the current label of the pos-th element's end tag.
func (d *Doc) EndLabel(pos int) (order.Label, error) {
	return d.l.Lookup(d.tr.Elem(pos).End)
}

// Elems exposes the live elements in document order (the Doc's own
// storage; callers must not modify it).
func (d *Doc) Elems() []order.ElemLIDs { return d.tr.Elems() }

// Apply performs one positional operation. An Insert on an empty document
// becomes the bootstrap insert; Pos is clamped into range so any source
// output is applicable.
func (d *Doc) Apply(op Op) error {
	pos := d.tr.Clamp(op.Pos)
	switch op.Kind {
	case Insert:
		if d.tr.Len() == 0 {
			e, err := d.l.InsertFirstElement()
			if err != nil {
				return fmt.Errorf("workload: bootstrap insert: %w", err)
			}
			d.tr.NoteInsert(0, e)
			return nil
		}
		e, err := d.l.InsertElementBefore(d.tr.Elem(pos).Start)
		if err != nil {
			return fmt.Errorf("workload: insert before element %d: %w", pos, err)
		}
		d.tr.NoteInsert(pos, e)
		return nil
	case Delete:
		if d.tr.Len() == 0 {
			return nil
		}
		e := d.tr.Elem(pos)
		if err := d.l.Delete(e.Start); err != nil {
			return fmt.Errorf("workload: delete start of element %d: %w", pos, err)
		}
		if err := d.l.Delete(e.End); err != nil {
			return fmt.Errorf("workload: delete end of element %d: %w", pos, err)
		}
		d.tr.NoteDelete(pos)
		return nil
	case Lookup:
		if d.tr.Len() == 0 {
			return nil
		}
		if _, err := d.l.Lookup(d.tr.Elem(pos).Start); err != nil && !errors.Is(err, order.ErrLabelOverflow) {
			return fmt.Errorf("workload: lookup element %d: %w", pos, err)
		}
		return nil
	}
	return fmt.Errorf("workload: unknown op kind %d", op.Kind)
}

// Run pulls nops operations from src and applies them to d. When wrap is
// non-nil it is called for every op with a closure performing it, so
// callers can meter or bracket specific kinds (benchmarks time inserts
// through their Recorder this way); a nil wrap applies ops directly.
func Run(d *Doc, src Source, nops int, wrap func(op Op, apply func() error) error) error {
	for i := 0; i < nops; i++ {
		op, err := src.Next(d)
		if err != nil {
			return fmt.Errorf("workload: %s: op %d: %w", src.Name(), i, err)
		}
		apply := func() error { return d.Apply(op) }
		if wrap != nil {
			err = wrap(op, apply)
		} else {
			err = apply()
		}
		if err != nil {
			return fmt.Errorf("workload: %s: op %d (%s @%d): %w", src.Name(), i, op.Kind, op.Pos, err)
		}
	}
	return nil
}
