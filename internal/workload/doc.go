package workload

import (
	"errors"
	"fmt"

	"boxes/internal/order"
	"boxes/internal/xmlgen"
)

// Doc adapts one order.Labeler to the zoo: it tracks the live elements in
// start-tag document order (the coordinate system of Op.Pos) and
// implements View over their current labels, so an adaptive Source can
// attack the labeler directly.
type Doc struct {
	l     order.Labeler
	elems []order.ElemLIDs // start-tag document order
}

// NewDoc wraps an empty labeler.
func NewDoc(l order.Labeler) *Doc { return &Doc{l: l} }

// Load bulk-loads tree into the labeler (which must be empty). Preorder
// element order is start-tag document order, so the element slice maps
// positions directly.
func (d *Doc) Load(tree *xmlgen.Tree) error {
	elems, err := d.l.BulkLoad(tree.TagStream())
	if err != nil {
		return err
	}
	d.elems = elems
	return nil
}

// Len returns the number of live elements.
func (d *Doc) Len() int { return len(d.elems) }

// Label returns the current label of the pos-th element's start tag.
func (d *Doc) Label(pos int) (order.Label, error) {
	return d.l.Lookup(d.elems[pos].Start)
}

// EndLabel returns the current label of the pos-th element's end tag.
func (d *Doc) EndLabel(pos int) (order.Label, error) {
	return d.l.Lookup(d.elems[pos].End)
}

// Elems exposes the live elements in document order (the Doc's own
// storage; callers must not modify it).
func (d *Doc) Elems() []order.ElemLIDs { return d.elems }

// Apply performs one positional operation. An Insert on an empty document
// becomes the bootstrap insert; Pos is clamped into range so any source
// output is applicable.
func (d *Doc) Apply(op Op) error {
	n := len(d.elems)
	pos := op.Pos
	if n > 0 {
		pos %= n
		if pos < 0 {
			pos += n
		}
	}
	switch op.Kind {
	case Insert:
		if n == 0 {
			e, err := d.l.InsertFirstElement()
			if err != nil {
				return fmt.Errorf("workload: bootstrap insert: %w", err)
			}
			d.elems = append(d.elems, e)
			return nil
		}
		e, err := d.l.InsertElementBefore(d.elems[pos].Start)
		if err != nil {
			return fmt.Errorf("workload: insert before element %d: %w", pos, err)
		}
		// The new element's labels precede elems[pos].Start and follow
		// every earlier start tag, so it occupies position pos.
		d.elems = append(d.elems, order.ElemLIDs{})
		copy(d.elems[pos+1:], d.elems[pos:])
		d.elems[pos] = e
		return nil
	case Delete:
		if n == 0 {
			return nil
		}
		e := d.elems[pos]
		if err := d.l.Delete(e.Start); err != nil {
			return fmt.Errorf("workload: delete start of element %d: %w", pos, err)
		}
		if err := d.l.Delete(e.End); err != nil {
			return fmt.Errorf("workload: delete end of element %d: %w", pos, err)
		}
		d.elems = append(d.elems[:pos], d.elems[pos+1:]...)
		return nil
	case Lookup:
		if n == 0 {
			return nil
		}
		if _, err := d.l.Lookup(d.elems[pos].Start); err != nil && !errors.Is(err, order.ErrLabelOverflow) {
			return fmt.Errorf("workload: lookup element %d: %w", pos, err)
		}
		return nil
	}
	return fmt.Errorf("workload: unknown op kind %d", op.Kind)
}

// Run pulls nops operations from src and applies them to d. When wrap is
// non-nil it is called for every op with a closure performing it, so
// callers can meter or bracket specific kinds (benchmarks time inserts
// through their Recorder this way); a nil wrap applies ops directly.
func Run(d *Doc, src Source, nops int, wrap func(op Op, apply func() error) error) error {
	for i := 0; i < nops; i++ {
		op, err := src.Next(d)
		if err != nil {
			return fmt.Errorf("workload: %s: op %d: %w", src.Name(), i, err)
		}
		apply := func() error { return d.Apply(op) }
		if wrap != nil {
			err = wrap(op, apply)
		} else {
			err = apply()
		}
		if err != nil {
			return fmt.Errorf("workload: %s: op %d (%s @%d): %w", src.Name(), i, op.Kind, op.Pos, err)
		}
	}
	return nil
}
