package workload

import (
	"testing"

	"boxes/internal/order"
)

// fakeView is a View over fixed start/end label slices; labels equal to 0
// (or missing end entries) are reported as overflowed (unobservable).
type fakeView struct {
	starts []order.Label
	ends   []order.Label
}

func (f fakeView) Len() int { return len(f.starts) }

func (f fakeView) Label(pos int) (order.Label, error) {
	if f.starts[pos] == 0 {
		return 0, order.ErrLabelOverflow
	}
	return f.starts[pos], nil
}

func (f fakeView) EndLabel(pos int) (order.Label, error) {
	if pos >= len(f.ends) || f.ends[pos] == 0 {
		return 0, order.ErrLabelOverflow
	}
	return f.ends[pos], nil
}

func TestFrontPackTargetsWindowMinGap(t *testing.T) {
	// Insertion gaps (start minus the preceding end) inside the window are
	// 80, 5, 20; the far tighter gap at position 5 (312-310 = 2) lies
	// outside the window and must be ignored.
	v := fakeView{
		starts: []order.Label{10, 100, 145, 200, 300, 312},
		ends:   []order.Label{20, 140, 180, 260, 310, 400},
	}
	src := NewFrontPack(3)
	op, err := src.Next(v)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != Insert || op.Pos != 2 {
		t.Fatalf("front-pack chose %s @%d, want insert @2", op.Kind, op.Pos)
	}
}

func TestBisectTargetsGlobalMinGap(t *testing.T) {
	// Starts are uniform at coarse resolution, so the strided pass
	// tie-breaks toward the middle segment, where the fine pass finds the
	// genuinely tightest insertion gap (506-504 = 2) at position 5.
	v := fakeView{
		starts: []order.Label{100, 200, 300, 400, 500, 506, 700, 800},
		ends:   []order.Label{110, 210, 310, 410, 504, 510, 710, 810},
	}
	src := NewBisect(4)
	op, err := src.Next(v)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != Insert || op.Pos != 5 {
		t.Fatalf("bisect chose %s @%d, want insert @5 (gap 504..506)", op.Kind, op.Pos)
	}
}

func TestInsertionGapPrefersPrecedingEnd(t *testing.T) {
	// Position 1's predecessor label is element 0's END tag (20), not its
	// start (10): gap must be 100-20 = 80, not 100-10 = 90.
	v := fakeView{starts: []order.Label{10, 100}, ends: []order.Label{20, 140}}
	gap, ok, err := insertionGap(v, 1)
	if err != nil || !ok || gap != 80 {
		t.Fatalf("insertionGap = (%d, %v, %v), want (80, true, nil)", gap, ok, err)
	}
	// With the end tag unobservable the scan degrades to start distance.
	v.ends[0] = 0
	gap, ok, err = insertionGap(v, 1)
	if err != nil || !ok || gap != 90 {
		t.Fatalf("insertionGap sans end = (%d, %v, %v), want (90, true, nil)", gap, ok, err)
	}
}

func TestMinGapPosSkipsOverflowedLabels(t *testing.T) {
	// The would-be tightest gaps straddle the unobservable element 2 and
	// must be skipped; the best measurable gap is 95-91 = 4 at position 5.
	v := fakeView{
		starts: []order.Label{10, 50, 0, 60, 90, 95, 300},
		ends:   []order.Label{15, 55, 0, 62, 91, 96, 301},
	}
	pos, ok, err := minGapPos(v, 0, v.Len()-1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || pos != 5 {
		t.Fatalf("minGapPos = (%d, %v), want (5, true)", pos, ok)
	}
}

func TestMinGapPosAllOverflowed(t *testing.T) {
	v := fakeView{starts: []order.Label{0, 0, 0}, ends: []order.Label{0, 0, 0}}
	if _, ok, err := minGapPos(v, 0, v.Len()-1, -1); err != nil || ok {
		t.Fatalf("minGapPos on unobservable view = (ok=%v, err=%v), want (false, nil)", ok, err)
	}
}

func TestAdversariesBootstrapEmptyView(t *testing.T) {
	for _, src := range []Source{NewFrontPack(8), NewBisect(8), NewZipfMix(1, 1.2, 50, 10), NewChurn(1, 8), NewUniform(1)} {
		op, err := src.Next(fakeView{})
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		if op.Kind != Insert || op.Pos != 0 {
			t.Fatalf("%s on empty view = %s @%d, want insert @0", src.Name(), op.Kind, op.Pos)
		}
	}
}

// staticView lets the deterministic sources be replayed without a store.
type staticView struct{ n int }

func (s staticView) Len() int { return s.n }
func (s staticView) Label(pos int) (order.Label, error) {
	return order.Label(pos+1) * 100, nil
}
func (s staticView) EndLabel(pos int) (order.Label, error) {
	return order.Label(pos+1)*100 + 50, nil
}

func TestSeededSourcesAreDeterministic(t *testing.T) {
	mk := []func() Source{
		func() Source { return NewZipfMix(42, 1.3, 40, 20) },
		func() Source { return NewChurn(42, 16) },
		func() Source { return NewUniform(42) },
	}
	for _, f := range mk {
		a, b := f(), f()
		for i := 0; i < 200; i++ {
			// Feed both the same view sequence (size wobbles with i so
			// churn's hysteresis exercises both phases).
			v := staticView{n: 8 + i%16}
			oa, errA := a.Next(v)
			ob, errB := b.Next(v)
			if errA != nil || errB != nil {
				t.Fatalf("%s: step %d: errors %v, %v", a.Name(), i, errA, errB)
			}
			if oa != ob {
				t.Fatalf("%s: step %d diverged: %+v vs %+v", a.Name(), i, oa, ob)
			}
		}
	}
}

func TestChurnOscillatesWithHysteresis(t *testing.T) {
	src := NewChurn(7, 16)
	n := 0
	deletes, inserts := 0, 0
	sawLow := false
	for i := 0; i < 400; i++ {
		op, err := src.Next(staticView{n: n})
		if err != nil {
			t.Fatal(err)
		}
		switch op.Kind {
		case Insert:
			inserts++
			n++
		case Delete:
			deletes++
			n--
		default:
			t.Fatalf("churn emitted %s", op.Kind)
		}
		if n > 16 || n < 0 {
			t.Fatalf("churn left the band: n=%d at step %d", n, i)
		}
		if n == 8 {
			sawLow = true
		}
	}
	if !sawLow {
		t.Fatal("churn never drained to the low-water mark")
	}
	if deletes == 0 || inserts == 0 {
		t.Fatalf("churn is not churning: %d inserts, %d deletes", inserts, deletes)
	}
	if diff := inserts - deletes; diff < -17 || diff > 17 {
		t.Fatalf("churn is not balanced over time: %d inserts vs %d deletes", inserts, deletes)
	}
}
