package workload

import (
	"fmt"
	"math/rand"
)

// ZipfMix is a skewed read/write mix: operation positions follow a zipfian
// rank distribution (rank 0 = document front), so a tunable fraction of
// the document absorbs most of the traffic — the hot-spot regime real
// document stores see, between the uniform control and the BKS attacks.
type ZipfMix struct {
	name      string
	rng       *rand.Rand
	zipf      *rand.Zipf
	insertPct int
	deletePct int
}

// NewZipfMix returns a zipfian mix with the given skew (s > 1; larger is
// more skewed) and operation percentages (the remainder are lookups).
func NewZipfMix(seed int64, skew float64, insertPct, deletePct int) *ZipfMix {
	if skew <= 1 {
		skew = 1.01
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfMix{
		name:      fmt.Sprintf("zipf-s%.2f", skew),
		rng:       rng,
		zipf:      rand.NewZipf(rng, skew, 1, 1<<20),
		insertPct: insertPct,
		deletePct: deletePct,
	}
}

func (z *ZipfMix) Name() string { return z.name }

func (z *ZipfMix) Next(v View) (Op, error) {
	n := v.Len()
	pos := int(z.zipf.Uint64())
	if n > 0 {
		pos %= n
	} else {
		pos = 0
	}
	p := z.rng.Intn(100)
	switch {
	case n < 2 || p < z.insertPct:
		return Op{Kind: Insert, Pos: pos}, nil
	case p < z.insertPct+z.deletePct:
		return Op{Kind: Delete, Pos: pos}, nil
	default:
		return Op{Kind: Lookup, Pos: pos}, nil
	}
}

// Churn holds the document around a fixed size with equal inserts and
// deletes over time, oscillating between target and target/2 with
// hysteresis: a burst of uniform deletes down to the low-water mark, then
// a burst of uniform inserts back up. The delete bursts matter — every
// tombstoning delete raises the dead count while nothing rewrites leaves,
// so the W-BOX dead >= live global-rebuild predicate is provably crossed
// once a burst removes a third of the live labels (1:1 alternation never
// gets there: insert-driven leaf splits compact tombstones as fast as
// deletes create them).
type Churn struct {
	rng      *rand.Rand
	target   int
	low      int
	deleting bool
}

// NewChurn returns a steady-state churn source around target elements
// (target must be at least 4).
func NewChurn(seed int64, target int) *Churn {
	if target < 4 {
		target = 4
	}
	return &Churn{rng: rand.New(rand.NewSource(seed)), target: target, low: target / 2}
}

func (c *Churn) Name() string { return fmt.Sprintf("churn-%d", c.target) }

func (c *Churn) Next(v View) (Op, error) {
	n := v.Len()
	if n == 0 {
		c.deleting = false
		return Op{Kind: Insert, Pos: 0}, nil
	}
	if c.deleting && n <= c.low {
		c.deleting = false
	} else if !c.deleting && n >= c.target {
		c.deleting = true
	}
	if c.deleting {
		return Op{Kind: Delete, Pos: c.rng.Intn(n)}, nil
	}
	return Op{Kind: Insert, Pos: c.rng.Intn(n)}, nil
}

// Uniform is the seeded uniform-insert control: every insertion point is
// drawn uniformly over the document. The adversary gates compare each
// scheme's amortized cost under BKS against this baseline.
type Uniform struct {
	rng *rand.Rand
}

// NewUniform returns a uniform insert-only source.
func NewUniform(seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed))}
}

func (u *Uniform) Name() string { return "uniform" }

func (u *Uniform) Next(v View) (Op, error) {
	n := v.Len()
	if n == 0 {
		return Op{Kind: Insert, Pos: 0}, nil
	}
	return Op{Kind: Insert, Pos: u.rng.Intn(n)}, nil
}
