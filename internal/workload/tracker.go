package workload

import "boxes/internal/order"

// Tracker mirrors the live elements of a document in start-tag document
// order — the coordinate system of Op.Pos — without holding the labeler
// itself. Doc embeds one next to a local order.Labeler; a network client
// keeps one beside its connection and splices it on each acknowledged
// reply, so the same positional Sources drive a remote store with no
// server-side cooperation. Position bookkeeping (clamping, which LID an
// op targets, the splice after the op lands) lives here exactly once.
//
// A Tracker must only be updated with *acknowledged* operations: an
// unacked op may or may not have happened, and guessing would desync the
// mirror from the store.
type Tracker struct {
	elems []order.ElemLIDs // start-tag document order
}

// Len returns the number of live elements.
func (t *Tracker) Len() int { return len(t.elems) }

// Elems exposes the live elements in document order (the Tracker's own
// storage; callers must not modify it).
func (t *Tracker) Elems() []order.ElemLIDs { return t.elems }

// Elem returns the element at pos (after Clamp).
func (t *Tracker) Elem(pos int) order.ElemLIDs { return t.elems[pos] }

// Clamp maps an arbitrary source-emitted position into [0, Len) by
// modular wrap (mirroring how Ops are defined: any position is
// applicable). On an empty document it returns 0.
func (t *Tracker) Clamp(pos int) int {
	n := len(t.elems)
	if n == 0 {
		return 0
	}
	pos %= n
	if pos < 0 {
		pos += n
	}
	return pos
}

// NoteLoad replaces the mirror wholesale after a bulk load (preorder
// element order is start-tag document order).
func (t *Tracker) NoteLoad(elems []order.ElemLIDs) { t.elems = elems }

// NoteInsert splices e in at pos (already clamped): the new element's
// labels precede the old occupant's start tag and follow every earlier
// start tag, so it occupies position pos. On an empty document it is the
// bootstrap element.
func (t *Tracker) NoteInsert(pos int, e order.ElemLIDs) {
	if len(t.elems) == 0 {
		t.elems = append(t.elems, e)
		return
	}
	t.elems = append(t.elems, order.ElemLIDs{})
	copy(t.elems[pos+1:], t.elems[pos:])
	t.elems[pos] = e
}

// NoteDelete splices out the element at pos (already clamped).
func (t *Tracker) NoteDelete(pos int) {
	t.elems = append(t.elems[:pos], t.elems[pos+1:]...)
}
