package workload

import "fmt"

// The BKS adversaries implement the two strategies of the online-labeling
// lower-bound constructions (Bulánek–Koucký–Saks; Babka et al.): always
// insert into the currently *tightest* region of label space, so any
// scheme that leaves gaps proportional to label distance is forced to
// redistribute again and again. Unlike the static adv-front/adv-bisect
// trace mixes in internal/sim, these are adaptive: every step re-reads the
// labels the scheme actually assigned and re-aims.
//
// Both adversaries reduce to a minimal insertion-gap scan. Inserting
// before element p lands the new start/end labels between start(p) and
// the label immediately preceding it — the previous element's end tag
// when p follows a closed sibling, or its start tag when p is its first
// child — so insertionGap measures exactly the room the scheme has left
// there. Hammering the minimal gap subsumes recursive bisection: after
// the adversary inserts into the minimal pair, the new minimum in that
// region is one of the two halves it just created, so subsequent steps
// keep halving the same interval until the scheme redistributes — at
// which point the scan re-aims at wherever the tightest gap moved.

// insertionGap returns the label-space room an insert-before at position
// pos (>= 1) would land in: start(pos) minus its observable predecessor
// label (end(pos-1) when that closed before pos, else start(pos-1)). ok
// is false when a needed label is unobservable (naive-k overflow).
func insertionGap(v View, pos int) (gap uint64, ok bool, err error) {
	s, okS, err := label(v, pos)
	if err != nil || !okS {
		return 0, false, err
	}
	prevS, okP, err := label(v, pos-1)
	if err != nil || !okP {
		return 0, false, err
	}
	pred := prevS
	prevE, okE, err := endLabel(v, pos-1)
	if err != nil {
		return 0, false, err
	}
	if okE && prevE < s && prevE > pred {
		pred = prevE
	}
	if s <= pred {
		return 0, false, nil
	}
	return s - pred, true, nil
}

// closerTo reports whether position a is strictly closer to center than b
// (center < 0 disables the preference, keeping the first minimum).
func closerTo(center, a, b int) bool {
	if center < 0 {
		return false
	}
	da, db := a-center, b-center
	if da < 0 {
		da = -da
	}
	if db < 0 {
		db = -db
	}
	return da < db
}

// minGapPos finds the position in (lo, hi] with the smallest insertion
// gap, breaking ties toward center (median bisection; a freshly loaded
// document has all gaps equal, and starting at the middle is what
// distinguishes recursive bisection from front packing). ok is false when
// no gap was measurable.
func minGapPos(v View, lo, hi, center int) (bestPos int, ok bool, err error) {
	bestGap := uint64(0)
	for pos := lo + 1; pos <= hi; pos++ {
		gap, measurable, err := insertionGap(v, pos)
		if err != nil {
			return 0, false, err
		}
		if !measurable {
			continue
		}
		if !ok || gap < bestGap || (gap == bestGap && closerTo(center, pos, bestPos)) {
			bestGap, bestPos, ok = gap, pos, true
		}
	}
	return bestPos, ok, nil
}

// FrontPack is the front-packing BKS adversary: it watches a fixed-size
// window at the front of the document and always inserts into the window's
// minimal insertion gap. The front of label space is squeezed
// monotonically; schemes that cannot rebalance away from the front pay
// for every insert.
type FrontPack struct {
	window int
}

// NewFrontPack returns a front-packing adversary probing the first window
// elements (window must be at least 2).
func NewFrontPack(window int) *FrontPack {
	if window < 2 {
		window = 2
	}
	return &FrontPack{window: window}
}

func (f *FrontPack) Name() string { return fmt.Sprintf("bks-front-%d", f.window) }

func (f *FrontPack) Next(v View) (Op, error) {
	n := v.Len()
	if n < 2 {
		return Op{Kind: Insert, Pos: 0}, nil
	}
	hi := f.window
	if hi > n-1 {
		hi = n - 1
	}
	pos, ok, err := minGapPos(v, 0, hi, -1)
	if err != nil {
		return Op{}, err
	}
	if !ok {
		return Op{Kind: Insert, Pos: 0}, nil
	}
	return Op{Kind: Insert, Pos: pos}, nil
}

// Bisect is the recursive-bisection BKS adversary: a two-level scan over
// the whole document (a coarse strided pass over start labels to locate
// the densest region, then a fine insertion-gap pass inside it) keeps
// each step at O(samples) probes while still landing in the tightest
// label gap it can see, anywhere in the document.
type Bisect struct {
	samples int
}

// NewBisect returns a bisection adversary using about samples probes per
// pass (samples must be at least 2).
func NewBisect(samples int) *Bisect {
	if samples < 2 {
		samples = 2
	}
	return &Bisect{samples: samples}
}

func (b *Bisect) Name() string { return fmt.Sprintf("bks-bisect-%d", b.samples) }

func (b *Bisect) Next(v View) (Op, error) {
	n := v.Len()
	if n < 2 {
		return Op{Kind: Insert, Pos: 0}, nil
	}
	lo, hi := 0, n-1
	stride := n / b.samples
	if stride > 1 {
		// Coarse pass: find the strided start-label pair packing its
		// element span into the least label space.
		segLo, ok, err := b.coarse(v, n, stride)
		if err != nil {
			return Op{}, err
		}
		if ok {
			lo = segLo
			hi = segLo + stride
			if hi > n-1 {
				hi = n - 1
			}
		}
	}
	pos, ok, err := minGapPos(v, lo, hi, n/2)
	if err != nil {
		return Op{}, err
	}
	if !ok {
		return Op{Kind: Insert, Pos: 0}, nil
	}
	return Op{Kind: Insert, Pos: pos}, nil
}

// coarse scans start labels at positions 0, stride, 2*stride, ... and
// returns the left position of the pair with the smallest label distance
// (the densest segment), breaking ties toward the document middle.
func (b *Bisect) coarse(v View, n, stride int) (segLo int, ok bool, err error) {
	prev, havePrev := uint64(0), false
	prevPos := 0
	bestGap := uint64(0)
	for pos := 0; pos < n; pos += stride {
		l, readable, err := label(v, pos)
		if err != nil {
			return 0, false, err
		}
		if !readable {
			havePrev = false
			continue
		}
		if havePrev && l > prev {
			gap := l - prev
			if !ok || gap < bestGap || (gap == bestGap && closerTo(n/2, prevPos, segLo)) {
				bestGap, segLo, ok = gap, prevPos, true
			}
		}
		prev, prevPos, havePrev = l, pos, true
	}
	return segLo, ok, nil
}
