// Package workload is the adversarial workload zoo: seeded generators for
// the insertion/deletion/lookup sequences the labeling schemes are tested
// and benchmarked under. Beyond the benign workloads of the paper's
// Section 7 (XMark build-up, uniform scattered inserts), the zoo produces
//
//   - adaptive BKS adversaries in the style of the Bulánek–Koucký–Saks
//     online-labeling lower bounds: each insertion point is chosen from
//     the labeler's *observable state* (its current labels), hammering the
//     minimal label gap so fixed-gap schemes are forced into Ω(log²)
//     relabeling while the BOX schemes must hold their amortized bounds;
//   - zipfian-skewed lookup/update mixes with a tunable skew parameter;
//   - steady-state churn (equal insert/delete around a fixed size), the
//     regime that drives tombstone accumulation into the dead >= live
//     global-rebuild path;
//   - a seeded uniform-insert control for ratio baselines.
//
// A Source is deliberately decoupled from any particular store: it sees
// the document only through the View interface (element count plus the
// current label of each element's start tag, in document order) and emits
// positional Ops. The same source therefore drives a raw order.Labeler
// (internal/bench, via Doc), the five-scheme differential harness
// (internal/difftest), and the crash-point sweep (internal/crashmatrix).
// Sources are pure functions of their seed and the observed labels, so a
// run is replayable whenever the underlying store is deterministic.
package workload

import (
	"errors"
	"fmt"

	"boxes/internal/order"
)

// Kind is the logical operation class of an Op.
type Kind uint8

const (
	// Insert inserts a new element immediately before the start tag of
	// the element at Pos (on an empty document: the bootstrap insert).
	Insert Kind = iota
	// Delete removes the element at Pos (its start/end label pair;
	// descendants are kept, as in a tag-level element delete).
	Delete
	// Lookup probes the label at Pos and must not mutate.
	Lookup
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Lookup:
		return "lookup"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one positional operation: Pos counts elements in start-tag
// document order, so the same Op means the same logical mutation in every
// scheme world applying it.
type Op struct {
	Kind Kind
	Pos  int
}

// View is the labeler state a Source may observe: the adversaries adapt to
// exactly what the paper's model lets an adversary see — the current label
// values — and nothing else (no scheme internals).
type View interface {
	// Len returns the number of live elements.
	Len() int
	// Label returns the current label of the start tag of the pos-th
	// element in document order. Schemes whose labels can outgrow 64 bits
	// (naive-k) may return order.ErrLabelOverflow; sources treat such a
	// label as unobservable rather than failing.
	Label(pos int) (order.Label, error)
	// EndLabel is Label for the element's end tag (same overflow
	// contract). The adversaries need it to measure true insertion gaps:
	// the label immediately preceding a sibling's start tag is the
	// previous sibling's END tag, not its start tag.
	EndLabel(pos int) (order.Label, error)
}

// Source produces the next operation given the observable state.
type Source interface {
	Name() string
	Next(v View) (Op, error)
}

// label reads a start-tag label, mapping order.ErrLabelOverflow to
// ok=false so gap scans skip pairs they cannot measure.
func label(v View, pos int) (order.Label, bool, error) {
	l, err := v.Label(pos)
	if err != nil {
		if errors.Is(err, order.ErrLabelOverflow) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("workload: label of element %d: %w", pos, err)
	}
	return l, true, nil
}

// endLabel is label for the end tag.
func endLabel(v View, pos int) (order.Label, bool, error) {
	l, err := v.EndLabel(pos)
	if err != nil {
		if errors.Is(err, order.ErrLabelOverflow) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("workload: end label of element %d: %w", pos, err)
	}
	return l, true, nil
}
