package query

import (
	"fmt"
	"strings"
)

// Pattern is a branching twig (tree pattern): a named node, the axis
// connecting it to its parent pattern node, and any number of child
// pattern nodes that must all be satisfied. Linear Twig patterns are the
// special case with at most one child per node.
type Pattern struct {
	Name       string
	Descendant bool // // axis from the parent (any depth); otherwise / (child)
	Children   []*Pattern
}

// ParsePattern parses a branching path pattern with XPath-style predicate
// brackets, e.g.
//
//	//open_auction[//bidder/increase][/seller]//annotation
//
// Each bracket opens a branch rooted at the preceding step; the remaining
// path continues from it as the last branch. Only element-name tests and
// the / and // axes are supported.
func ParsePattern(s string) (*Pattern, error) {
	p := &patternParser{in: s}
	root, err := p.parsePath(true)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("query: trailing input %q at %d", p.in[p.pos:], p.pos)
	}
	if root == nil {
		return nil, fmt.Errorf("query: empty pattern")
	}
	return root, nil
}

type patternParser struct {
	in  string
	pos int
}

// parsePath parses steps until the end of input or an unmatched ']',
// returning the first pattern node of the chain.
func (p *patternParser) parsePath(top bool) (*Pattern, error) {
	var first, cur *Pattern
	for p.pos < len(p.in) {
		if p.in[p.pos] == ']' {
			if top {
				return nil, fmt.Errorf("query: unexpected ']' at %d", p.pos)
			}
			break
		}
		desc := false
		if p.in[p.pos] != '/' {
			return nil, fmt.Errorf("query: expected '/' at %d", p.pos)
		}
		p.pos++
		if p.pos < len(p.in) && p.in[p.pos] == '/' {
			desc = true
			p.pos++
		}
		start := p.pos
		for p.pos < len(p.in) && p.in[p.pos] != '/' && p.in[p.pos] != '[' && p.in[p.pos] != ']' {
			p.pos++
		}
		name := strings.TrimSpace(p.in[start:p.pos])
		if name == "" {
			return nil, fmt.Errorf("query: empty step name at %d", start)
		}
		node := &Pattern{Name: name, Descendant: desc}
		if cur == nil {
			first = node
		} else {
			cur.Children = append(cur.Children, node)
		}
		cur = node
		// Predicates.
		for p.pos < len(p.in) && p.in[p.pos] == '[' {
			p.pos++
			branch, err := p.parsePath(false)
			if err != nil {
				return nil, err
			}
			if p.pos >= len(p.in) || p.in[p.pos] != ']' {
				return nil, fmt.Errorf("query: missing ']' at %d", p.pos)
			}
			p.pos++
			if branch != nil {
				cur.Children = append(cur.Children, branch)
			}
		}
	}
	return first, nil
}

// String renders the pattern back in parse syntax.
func (pt *Pattern) String() string {
	var b strings.Builder
	pt.render(&b)
	return b.String()
}

func (pt *Pattern) render(b *strings.Builder) {
	if pt.Descendant {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	b.WriteString(pt.Name)
	for i, c := range pt.Children {
		if i == len(pt.Children)-1 {
			c.render(b)
			return
		}
		b.WriteString("[")
		c.render(b)
		b.WriteString("]")
	}
}

// MatchPattern returns the indices of elements matching the pattern's root
// node with every branch satisfied, using only label-span containment.
// elems must be sorted by start label.
func MatchPattern(elems []Elem, pt *Pattern) []int {
	if pt == nil {
		return nil
	}
	memo := map[*Pattern][]int{}
	return matchNode(elems, pt, memo)
}

// matchNode computes, bottom-up with memoization, the elements satisfying
// the pattern node pt (name + all branch constraints).
func matchNode(elems []Elem, pt *Pattern, memo map[*Pattern][]int) []int {
	if got, ok := memo[pt]; ok {
		return got
	}
	var cands []int
	for i, e := range elems {
		if e.Name == pt.Name {
			cands = append(cands, i)
		}
	}
	for _, child := range pt.Children {
		sub := matchNode(elems, child, memo)
		var kept []int
		for _, ci := range cands {
			if hasWitness(elems, elems[ci].Span, child, sub) {
				kept = append(kept, ci)
			}
		}
		cands = kept
		if len(cands) == 0 {
			break
		}
	}
	memo[pt] = cands
	return cands
}

// hasWitness reports whether some element of sub (already satisfying the
// child pattern) is a descendant (or, for a / axis, an immediate child) of
// the element with span a.
func hasWitness(elems []Elem, a Span, child *Pattern, sub []int) bool {
	for _, di := range sub {
		d := elems[di].Span
		if !a.Contains(d) {
			continue
		}
		if child.Descendant {
			return true
		}
		if isParent(elems, a, d) {
			return true
		}
	}
	return false
}
