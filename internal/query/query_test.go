package query

import (
	"testing"
	"testing/quick"

	"boxes/internal/xmlgen"
)

// labelTree assigns ordinal labels to a tree and returns the elements in
// document order of start tags.
func labelTree(tr *xmlgen.Tree) []Elem {
	var elems []Elem
	var counter uint64
	var walk func(n *xmlgen.Node) Span
	walk = func(n *xmlgen.Node) Span {
		s := Span{Start: counter}
		counter++
		idx := len(elems)
		elems = append(elems, Elem{Name: n.Name})
		for _, c := range n.Children {
			walk(c)
		}
		s.End = counter
		counter++
		elems[idx].Span = s
		return s
	}
	walk(tr.Root)
	return elems
}

func TestSpanContains(t *testing.T) {
	a := Span{0, 9}
	b := Span{1, 4}
	c := Span{5, 8}
	if !a.Contains(b) || !a.Contains(c) {
		t.Fatal("outer should contain inner")
	}
	if b.Contains(c) || c.Contains(b) {
		t.Fatal("siblings must not contain each other")
	}
	if a.Contains(a) {
		t.Fatal("containment must be strict")
	}
	if !b.Before(c) {
		t.Fatal("b precedes c")
	}
}

func TestOrdinalChildPredicates(t *testing.T) {
	// <p> <a/> <b/> </p> with ordinal labels p=(0,5) a=(1,2) b=(3,4)
	p := Span{0, 5}
	a := Span{1, 2}
	b := Span{3, 4}
	if !IsFirstChildOrdinal(a, p) || IsFirstChildOrdinal(b, p) {
		t.Fatal("first-child check wrong")
	}
	if !IsLastChildOrdinal(b, p) || IsLastChildOrdinal(a, p) {
		t.Fatal("last-child check wrong")
	}
}

func naiveJoin(anc, desc []Span) map[[2]int]bool {
	out := map[[2]int]bool{}
	for i, a := range anc {
		for j, d := range desc {
			if a.Contains(d) {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

func TestContainmentJoinAgainstNaive(t *testing.T) {
	tr := xmlgen.XMark(400, 11)
	elems := labelTree(tr)
	var anc, desc []Span
	for _, e := range elems {
		if e.Name == "open_auction" {
			anc = append(anc, e.Span)
		}
		if e.Name == "increase" {
			desc = append(desc, e.Span)
		}
	}
	if len(anc) == 0 || len(desc) == 0 {
		t.Fatal("workload has no auctions/increases")
	}
	got := ContainmentJoin(anc, desc)
	want := naiveJoin(anc, desc)
	if len(got) != len(want) {
		t.Fatalf("join produced %d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		if !want[[2]int{p.Ancestor, p.Descendant}] {
			t.Fatalf("spurious pair %v", p)
		}
	}
}

func TestContainmentJoinEmptyInputs(t *testing.T) {
	if out := ContainmentJoin(nil, []Span{{1, 2}}); out != nil {
		t.Fatal("join with no ancestors must be empty")
	}
	if out := ContainmentJoin([]Span{{1, 2}}, nil); out != nil {
		t.Fatal("join with no descendants must be empty")
	}
}

func TestParseTwig(t *testing.T) {
	tw := ParseTwig("//open_auction//bidder/increase")
	if len(tw) != 3 {
		t.Fatalf("steps = %d", len(tw))
	}
	if !tw[0].Descendant || !tw[1].Descendant || tw[2].Descendant {
		t.Fatalf("axes wrong: %+v", tw)
	}
	if tw[2].Name != "increase" {
		t.Fatalf("names wrong: %+v", tw)
	}
}

func TestTwigMatchDescendantAxis(t *testing.T) {
	tr := xmlgen.XMark(600, 5)
	elems := labelTree(tr)
	got := Match(elems, ParseTwig("//open_auction//increase"))
	// Reference: increases inside open_auctions.
	want := 0
	for i, e := range elems {
		if e.Name != "increase" {
			continue
		}
		for _, a := range elems {
			if a.Name == "open_auction" && a.Span.Contains(e.Span) {
				want++
				break
			}
		}
		_ = i
	}
	if len(got) != want {
		t.Fatalf("matched %d, want %d", len(got), want)
	}
	for _, i := range got {
		if elems[i].Name != "increase" {
			t.Fatalf("matched element %q", elems[i].Name)
		}
	}
}

func TestTwigMatchChildAxis(t *testing.T) {
	tr := xmlgen.XMark(600, 6)
	elems := labelTree(tr)
	// bidder/increase: increase must be a direct child of bidder.
	got := Match(elems, ParseTwig("//bidder/increase"))
	want := 0
	for _, e := range elems {
		if e.Name != "increase" {
			continue
		}
		// Find immediate parent: tightest containing span.
		var parent *Elem
		for j := range elems {
			a := &elems[j]
			if a.Span.Contains(e.Span) && (parent == nil || parent.Span.Contains(a.Span)) {
				parent = a
			}
		}
		if parent != nil && parent.Name == "bidder" {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("matched %d, want %d", len(got), want)
	}
}

func TestTwigNoMatches(t *testing.T) {
	tr := xmlgen.XMark(200, 7)
	elems := labelTree(tr)
	if got := Match(elems, ParseTwig("//nonexistent/also_missing")); len(got) != 0 {
		t.Fatalf("matched %d elements of a nonexistent pattern", len(got))
	}
	if got := Match(elems, nil); got != nil {
		t.Fatal("empty twig must match nothing")
	}
}

// Property: the stack-based join equals the nested-loop join on random
// XMark-shaped documents and random name pairs.
func TestQuickJoinEquivalence(t *testing.T) {
	names := []string{"item", "person", "open_auction", "bidder", "description", "text"}
	f := func(seed int64, aSel, dSel uint8) bool {
		tr := xmlgen.XMark(300, seed)
		elems := labelTree(tr)
		aName := names[int(aSel)%len(names)]
		dName := names[int(dSel)%len(names)]
		var anc, desc []Span
		for _, e := range elems {
			if e.Name == aName {
				anc = append(anc, e.Span)
			}
			if e.Name == dName {
				desc = append(desc, e.Span)
			}
		}
		got := ContainmentJoin(anc, desc)
		want := naiveJoin(anc, desc)
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[[2]int{p.Ancestor, p.Descendant}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
