// Package query implements the XML query-processing primitives that
// order-based labels exist to accelerate (Section 1 of the paper):
// ancestor/descendant predicates, stack-based containment join, and twig
// (path pattern) matching. All algorithms work on label pairs only — they
// never touch the element tree, which is the point of the labeling.
package query

import (
	"sort"

	"boxes/internal/order"
)

// Span is an element's pair of labels.
type Span struct {
	Start order.Label
	End   order.Label
}

// Contains reports whether s is a proper ancestor of d: the containment
// test l<(s) < l<(d) && l>(d) < l>(s).
func (s Span) Contains(d Span) bool {
	return s.Start < d.Start && d.End < s.End
}

// Before reports whether s precedes d entirely in document order.
func (s Span) Before(d Span) bool { return s.End < d.Start }

// IsLastChildOrdinal reports whether child is parent's last child, using
// the ordinal-labeling shortcut of Section 3: l>(child)+1 == l>(parent).
// It is only meaningful on ordinal labels.
func IsLastChildOrdinal(child, parent Span) bool {
	return child.End+1 == parent.End
}

// IsFirstChildOrdinal reports whether child is parent's first child under
// ordinal labeling: l<(parent)+1 == l<(child).
func IsFirstChildOrdinal(child, parent Span) bool {
	return parent.Start+1 == child.Start
}

// Pair is one result of a containment join.
type Pair struct {
	Ancestor   int // index into the ancestors input
	Descendant int // index into the descendants input
}

// ContainmentJoin returns every (ancestor, descendant) pair with the
// ancestor span containing the descendant span, using the stack-based
// merge of Zhang et al. (the paper's reference [20]). Both inputs must be
// sorted by start label; output pairs are produced in descendant order.
// Runs in O(|A| + |D| + |output|).
func ContainmentJoin(ancestors, descendants []Span) []Pair {
	var out []Pair
	var stack []int // indices into ancestors, nested spans
	ai := 0
	for di := 0; di < len(descendants); di++ {
		d := descendants[di]
		// Push ancestors that start before d.
		for ai < len(ancestors) && ancestors[ai].Start < d.Start {
			// Pop ancestors that end before this one starts: they can
			// contain no further descendants.
			for len(stack) > 0 && ancestors[stack[len(stack)-1]].End < ancestors[ai].Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ai)
			ai++
		}
		// Pop ancestors that ended before d.
		for len(stack) > 0 && ancestors[stack[len(stack)-1]].End < d.Start {
			stack = stack[:len(stack)-1]
		}
		// Everything remaining on the stack contains d.
		for _, a := range stack {
			if ancestors[a].Contains(d) {
				out = append(out, Pair{Ancestor: a, Descendant: di})
			}
		}
	}
	return out
}

// Elem is a named, labeled element of a document, the input to twig
// matching.
type Elem struct {
	Name string
	Span Span
}

// Step is one location step of a path pattern.
type Step struct {
	Name string
	// Descendant selects the // axis (any depth); otherwise the step is
	// a / child step, which requires level information and is therefore
	// approximated by "nearest enclosing match" below — exact for
	// patterns whose consecutive names cannot nest within themselves.
	Descendant bool
}

// Twig is a linear path pattern, e.g. //open_auction//bidder/increase.
type Twig []Step

// ParseTwig parses a pattern of the form "//a/b//c".
func ParseTwig(s string) Twig {
	var twig Twig
	i := 0
	for i < len(s) {
		desc := false
		if s[i] == '/' {
			i++
			if i < len(s) && s[i] == '/' {
				desc = true
				i++
			}
		}
		j := i
		for j < len(s) && s[j] != '/' {
			j++
		}
		if j > i {
			twig = append(twig, Step{Name: s[i:j], Descendant: desc})
		}
		i = j
	}
	return twig
}

// Match returns the indices of elements matching the final step of the
// twig, with every step's containment verified through label spans only.
// elems must be sorted by start label (document order of start tags).
func Match(elems []Elem, twig Twig) []int {
	if len(twig) == 0 {
		return nil
	}
	// Candidate lists per step, in document order.
	cand := make([][]int, len(twig))
	for i, e := range elems {
		for s, step := range twig {
			if e.Name == step.Name {
				cand[s] = append(cand[s], i)
			}
		}
	}
	// Verify chains step by step: keep a candidate at step s only if some
	// candidate at step s-1 contains it (and, for a child step, no other
	// candidate of the same step s-1 name nests strictly between).
	cur := cand[0]
	for s := 1; s < len(twig); s++ {
		var next []int
		for _, di := range cand[s] {
			d := elems[di].Span
			ok := false
			for _, aiIdx := range cur {
				a := elems[aiIdx].Span
				if a.Start > d.Start {
					break // sorted: no later candidate can contain d
				}
				if !a.Contains(d) {
					continue
				}
				if twig[s].Descendant {
					ok = true
					break
				}
				// Child step: a must be the nearest containing element
				// of any name. Without levels we approximate: no other
				// candidate of step s-1 lies strictly between a and d.
				nested := false
				for _, bi := range cur {
					b := elems[bi].Span
					if b != a && a.Contains(b) && b.Contains(d) {
						nested = true
						break
					}
				}
				if !nested && isParent(elems, a, d) {
					ok = true
					break
				}
			}
			if ok {
				next = append(next, di)
			}
		}
		cur = next
	}
	return cur
}

// isParent reports whether a is d's immediate parent: no element nests
// strictly between them.
func isParent(elems []Elem, a, d Span) bool {
	// Binary search for elements starting in (a.Start, d.Start] that
	// contain d; if any differs from d itself, a is not the parent.
	i := sort.Search(len(elems), func(i int) bool { return elems[i].Span.Start > a.Start })
	for ; i < len(elems) && elems[i].Span.Start < d.Start; i++ {
		if elems[i].Span.Contains(d) {
			return false
		}
	}
	return true
}

// SortByStart orders elems by start label (document order).
func SortByStart(elems []Elem) {
	sort.Slice(elems, func(i, j int) bool { return elems[i].Span.Start < elems[j].Span.Start })
}

// SortSpansByStart orders spans by start label.
func SortSpansByStart(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
}
