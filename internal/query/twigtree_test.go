package query

import (
	"testing"
	"testing/quick"

	"boxes/internal/xmlgen"
)

func TestParsePattern(t *testing.T) {
	pt, err := ParsePattern("//open_auction[//bidder/increase][/seller]//annotation")
	if err != nil {
		t.Fatal(err)
	}
	if pt.Name != "open_auction" || !pt.Descendant {
		t.Fatalf("root = %+v", pt)
	}
	if len(pt.Children) != 3 {
		t.Fatalf("children = %d (bidder-branch, seller-branch, annotation)", len(pt.Children))
	}
	if pt.Children[0].Name != "bidder" || !pt.Children[0].Descendant {
		t.Fatalf("branch 0 = %+v", pt.Children[0])
	}
	if len(pt.Children[0].Children) != 1 || pt.Children[0].Children[0].Name != "increase" || pt.Children[0].Children[0].Descendant {
		t.Fatalf("branch 0 child = %+v", pt.Children[0].Children)
	}
	if pt.Children[1].Name != "seller" || pt.Children[1].Descendant {
		t.Fatalf("branch 1 = %+v", pt.Children[1])
	}
	if pt.Children[2].Name != "annotation" || !pt.Children[2].Descendant {
		t.Fatalf("tail = %+v", pt.Children[2])
	}
	// Round trip.
	back, err := ParsePattern(pt.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", pt.String(), err)
	}
	if back.String() != pt.String() {
		t.Fatalf("round trip %q != %q", back.String(), pt.String())
	}
}

func TestParsePatternErrors(t *testing.T) {
	for _, bad := range []string{"", "open_auction", "//a[", "//a]", "//a[]extra", "//a[//b", "///", "//a//"} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q) accepted", bad)
		}
	}
}

// refMatch is a trivially correct matcher over the actual tree structure.
func refMatch(tr *xmlgen.Tree, pt *Pattern) int {
	type frame struct {
		n *xmlgen.Node
	}
	var matches func(n *xmlgen.Node, p *Pattern) bool
	var anyDescendant func(n *xmlgen.Node, p *Pattern) bool
	anyChild := func(n *xmlgen.Node, p *Pattern) bool {
		for _, c := range n.Children {
			if matches(c, p) {
				return true
			}
		}
		return false
	}
	anyDescendant = func(n *xmlgen.Node, p *Pattern) bool {
		for _, c := range n.Children {
			if matches(c, p) || anyDescendant(c, p) {
				return true
			}
		}
		return false
	}
	matches = func(n *xmlgen.Node, p *Pattern) bool {
		if n.Name != p.Name {
			return false
		}
		for _, c := range p.Children {
			if c.Descendant {
				if !anyDescendant(n, c) {
					return false
				}
			} else if !anyChild(n, c) {
				return false
			}
		}
		return true
	}
	count := 0
	var walk func(n *xmlgen.Node)
	walk = func(n *xmlgen.Node) {
		if matches(n, pt) {
			count++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	_ = frame{}
	return count
}

func TestMatchPatternAgainstTreeReference(t *testing.T) {
	tr := xmlgen.XMark(1200, 8)
	elems := labelTree(tr)
	patterns := []string{
		"//open_auction[//bidder/increase][/seller]",
		"//person[/address/city]",
		"//item[//mailbox]//incategory",
		"//open_auction[/interval/start][/interval/end]",
		"//bidder[/date][/time][/increase]",
	}
	for _, ps := range patterns {
		pt, err := ParsePattern(ps)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		got := MatchPattern(elems, pt)
		want := refMatch(tr, pt)
		if len(got) != want {
			t.Errorf("%s: labels matched %d, tree matched %d", ps, len(got), want)
		}
		for _, i := range got {
			if elems[i].Name != pt.Name {
				t.Errorf("%s: matched a %q element", ps, elems[i].Name)
			}
		}
	}
}

func TestMatchPatternNoMatch(t *testing.T) {
	tr := xmlgen.XMark(300, 9)
	elems := labelTree(tr)
	pt, err := ParsePattern("//open_auction[/nonexistent]")
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchPattern(elems, pt); len(got) != 0 {
		t.Fatalf("matched %d", len(got))
	}
	if got := MatchPattern(elems, nil); got != nil {
		t.Fatal("nil pattern matched")
	}
}

// Property: label-based branching match equals tree-walking match on random
// documents and a pool of patterns.
func TestQuickPatternEquivalence(t *testing.T) {
	pool := []string{
		"//open_auction[//increase]",
		"//person[/profile/business]",
		"//item[/incategory][//keyword]",
		"//annotation[/author][//keyword]",
		"//closed_auction[/price]",
	}
	f := func(seed int64, sel uint8) bool {
		tr := xmlgen.XMark(400, seed)
		elems := labelTree(tr)
		pt, err := ParsePattern(pool[int(sel)%len(pool)])
		if err != nil {
			return false
		}
		return len(MatchPattern(elems, pt)) == refMatch(tr, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
