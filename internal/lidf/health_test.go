package lidf

import (
	"testing"

	"boxes/internal/order"
)

func gaugeValue(t *testing.T, f *File, name string) float64 {
	t.Helper()
	for _, g := range f.CollectGauges() {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %s not collected", name)
	return 0
}

func TestHealthGaugesTrackFragmentation(t *testing.T) {
	f := newFile(t, 256, 8)

	if got := gaugeValue(t, f, "lidf_fragmentation"); got != 0 {
		t.Fatalf("empty file fragmentation = %v", got)
	}
	if got := gaugeValue(t, f, "lidf_free_slots"); got != 0 {
		t.Fatalf("empty file free slots = %v", got)
	}

	lids := make([]order.LID, 10)
	for i := range lids {
		lid, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		lids[i] = lid
	}
	if got := gaugeValue(t, f, "lidf_records_live"); got != 10 {
		t.Fatalf("records live = %v, want 10", got)
	}
	if got := gaugeValue(t, f, "lidf_fragmentation"); got != 0 {
		t.Fatalf("fragmentation before any free = %v", got)
	}

	for _, lid := range lids[:4] {
		if err := f.Free(lid); err != nil {
			t.Fatal(err)
		}
	}
	if got := gaugeValue(t, f, "lidf_free_slots"); got != 4 {
		t.Fatalf("free slots = %v, want 4", got)
	}
	if got := gaugeValue(t, f, "lidf_fragmentation"); got != 0.4 {
		t.Fatalf("fragmentation = %v, want 0.4", got)
	}
	if got := gaugeValue(t, f, "lidf_blocks"); got != float64(f.Blocks()) {
		t.Fatalf("blocks gauge = %v, file has %d", got, f.Blocks())
	}

	// Reuse pulls slots back off the free list.
	if _, err := f.Alloc(); err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, f, "lidf_free_slots"); got != 3 {
		t.Fatalf("free slots after reuse = %v, want 3", got)
	}
}
