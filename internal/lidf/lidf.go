// Package lidf implements the immutable label ID file of Section 3 of the
// paper: a compact heap file that maps immutable label IDs (LIDs) to small
// fixed-size records.
//
// For the BOX structures each record holds the block address of the BOX
// leaf containing the label's BOX record, so that lookup(lid) costs one
// LIDF I/O plus the structure's own cost. For the naive-k baseline each
// record holds the label value itself. The record payload size is therefore
// a parameter.
//
// LIDs are stable for the lifetime of a label: they may be freely copied
// into other indexes. Freed records are chained into a free list and reused
// by later allocations, keeping the file compact (O(N/B) blocks).
package lidf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

const (
	flagFree byte = 0
	flagLive byte = 1
)

// File is an immutable label ID file over a block store.
type File struct {
	store       *pager.Store
	payloadSize int
	recordSize  int // 1 flag byte + payload
	perBlock    int

	extents  []pager.BlockID // logical LIDF block index -> store block
	next     order.LID       // next never-used LID
	freeHead order.LID       // head of the free list (NilLID if empty)
	count    uint64          // live records
}

// New creates an empty LIDF whose records carry payloadSize bytes each.
func New(store *pager.Store, payloadSize int) (*File, error) {
	if payloadSize < 8 {
		// The free list threads the next free LID through the payload.
		return nil, errors.New("lidf: payload must be at least 8 bytes")
	}
	rec := 1 + payloadSize
	per := store.BlockSize() / rec
	if per < 1 {
		return nil, fmt.Errorf("lidf: record size %d exceeds block size %d", rec, store.BlockSize())
	}
	return &File{
		store:       store,
		payloadSize: payloadSize,
		recordSize:  rec,
		perBlock:    per,
		next:        1,
		freeHead:    order.NilLID,
	}, nil
}

// PayloadSize reports the per-record payload size in bytes.
func (f *File) PayloadSize() int { return f.payloadSize }

// RecordsPerBlock reports how many LIDF records fit in one block.
func (f *File) RecordsPerBlock() int { return f.perBlock }

// Count reports the number of live records.
func (f *File) Count() uint64 { return f.count }

// Blocks reports the number of blocks the file occupies.
func (f *File) Blocks() int { return len(f.extents) }

// locate maps a LID to its block and intra-block byte offset.
func (f *File) locate(lid order.LID) (pager.BlockID, int, error) {
	if lid == order.NilLID || lid >= f.next {
		return pager.NilBlock, 0, order.ErrUnknownLID
	}
	idx := int(lid-1) / f.perBlock
	slot := int(lid-1) % f.perBlock
	return f.extents[idx], slot * f.recordSize, nil
}

// Alloc reserves a record and returns its LID. The record is marked live
// with a zeroed payload; callers typically follow with Set.
func (f *File) Alloc() (order.LID, error) {
	var lid order.LID
	if f.freeHead != order.NilLID {
		lid = f.freeHead
		blk, off, err := f.locate(lid)
		if err != nil {
			return order.NilLID, err
		}
		buf, err := f.store.Read(blk)
		if err != nil {
			return order.NilLID, err
		}
		if buf[off] != flagFree {
			return order.NilLID, fmt.Errorf("lidf: free-list head %d is live", lid)
		}
		f.freeHead = order.LID(binary.LittleEndian.Uint64(buf[off+1 : off+9]))
		buf[off] = flagLive
		for i := off + 1; i < off+f.recordSize; i++ {
			buf[i] = 0
		}
		if err := f.store.Write(blk, buf); err != nil {
			return order.NilLID, err
		}
		f.count++
		f.store.Observer().Inc(obs.CtrLIDFAllocs)
		return lid, nil
	}
	lid = f.next
	idx := int(lid-1) / f.perBlock
	if idx == len(f.extents) {
		blk, err := f.store.Allocate()
		if err != nil {
			return order.NilLID, err
		}
		f.extents = append(f.extents, blk)
	}
	blk := f.extents[idx]
	off := (int(lid-1) % f.perBlock) * f.recordSize
	buf, err := f.store.Read(blk)
	if err != nil {
		return order.NilLID, err
	}
	buf[off] = flagLive
	for i := off + 1; i < off+f.recordSize; i++ {
		buf[i] = 0
	}
	if err := f.store.Write(blk, buf); err != nil {
		return order.NilLID, err
	}
	f.next++
	f.count++
	f.store.Observer().Inc(obs.CtrLIDFAllocs)
	return lid, nil
}

// AllocPair reserves two records for an element's start and end labels. As
// the paper notes, allocating them next to each other lets a single I/O
// retrieve both; AllocPair places the pair in the same block whenever the
// tail of the file allows it.
func (f *File) AllocPair() (start, end order.LID, err error) {
	// Two consecutive allocations land in the same block whenever the
	// free list is empty (always the case during bulk loading, which is
	// when pair adjacency matters for I/O).
	s, err := f.Alloc()
	if err != nil {
		return 0, 0, err
	}
	e, err := f.Alloc()
	if err != nil {
		return 0, 0, err
	}
	return s, e, nil
}

// Get copies the payload of lid into a fresh slice.
func (f *File) Get(lid order.LID) ([]byte, error) {
	blk, off, err := f.locate(lid)
	if err != nil {
		return nil, err
	}
	buf, err := f.store.Read(blk)
	if err != nil {
		return nil, err
	}
	if buf[off] != flagLive {
		return nil, order.ErrUnknownLID
	}
	out := make([]byte, f.payloadSize)
	copy(out, buf[off+1:off+f.recordSize])
	return out, nil
}

// Set overwrites the payload of lid. data may be shorter than the payload
// size; the remainder is zeroed.
func (f *File) Set(lid order.LID, data []byte) error {
	if len(data) > f.payloadSize {
		return fmt.Errorf("lidf: payload of %d bytes exceeds record payload %d", len(data), f.payloadSize)
	}
	blk, off, err := f.locate(lid)
	if err != nil {
		return err
	}
	buf, err := f.store.Read(blk)
	if err != nil {
		return err
	}
	if buf[off] != flagLive {
		return order.ErrUnknownLID
	}
	copy(buf[off+1:off+1+len(data)], data)
	for i := off + 1 + len(data); i < off+f.recordSize; i++ {
		buf[i] = 0
	}
	return f.store.Write(blk, buf)
}

// SetU64 stores a single uint64 in the payload's first 8 bytes; it is the
// common case for BOX structures (the leaf block address).
func (f *File) SetU64(lid order.LID, v uint64) error {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return f.Set(lid, tmp[:])
}

// GetU64 reads the payload's first 8 bytes as a uint64.
func (f *File) GetU64(lid order.LID) (uint64, error) {
	p, err := f.Get(lid)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p[:8]), nil
}

// Free releases lid's record for reuse.
func (f *File) Free(lid order.LID) error {
	blk, off, err := f.locate(lid)
	if err != nil {
		return err
	}
	buf, err := f.store.Read(blk)
	if err != nil {
		return err
	}
	if buf[off] != flagLive {
		return order.ErrUnknownLID
	}
	buf[off] = flagFree
	binary.LittleEndian.PutUint64(buf[off+1:off+9], uint64(f.freeHead))
	for i := off + 9; i < off+f.recordSize; i++ {
		buf[i] = 0
	}
	if err := f.store.Write(blk, buf); err != nil {
		return err
	}
	f.freeHead = lid
	f.count--
	f.store.Observer().Inc(obs.CtrLIDFFrees)
	return nil
}

// Live reports whether lid identifies a live record, without counting as a
// data access error if it does not.
func (f *File) Live(lid order.LID) (bool, error) {
	blk, off, err := f.locate(lid)
	if err != nil {
		if errors.Is(err, order.ErrUnknownLID) {
			return false, nil
		}
		return false, err
	}
	buf, err := f.store.Read(blk)
	if err != nil {
		return false, err
	}
	return buf[off] == flagLive, nil
}
