package lidf

import (
	"boxes/internal/obs"
	"boxes/internal/pager"
)

// CollectGauges implements obs.Collector: the LIDF's health is entirely
// in-memory bookkeeping (extent count, allocation high-water mark, live
// count), so collection costs no I/O. Free-slot fragmentation is the
// fraction of ever-allocated record slots now sitting on the free list:
// high fragmentation means the file is much larger than its live contents
// and lookups are paying I/O for dead space.
func (f *File) CollectGauges() []obs.GaugeValue {
	allocated := uint64(f.next - 1) // slots ever handed out
	free := allocated - f.count
	frag := 0.0
	if allocated > 0 {
		frag = float64(free) / float64(allocated)
	}
	return []obs.GaugeValue{
		obs.G("lidf_blocks", "Blocks occupied by the label ID file.", float64(len(f.extents))),
		obs.G("lidf_records_live", "Live LIDF records.", float64(f.count)),
		obs.G("lidf_free_slots", "Allocated-then-freed LIDF record slots awaiting reuse.", float64(free)),
		obs.G("lidf_fragmentation", "Fraction of ever-allocated LIDF slots now free.", frag),
	}
}

var _ obs.Collector = (*File)(nil)

// WalkBlocks calls visit for every store block the file occupies, in
// logical order. fsck uses it to mark the LIDF's blocks reachable.
func (f *File) WalkBlocks(visit func(pager.BlockID) error) error {
	for _, blk := range f.extents {
		if err := visit(blk); err != nil {
			return err
		}
	}
	return nil
}
