package lidf

import (
	"testing"

	"boxes/internal/order"
	"boxes/internal/pager"
)

func TestMetaRoundTrip(t *testing.T) {
	store := pager.NewMemStore(256)
	f, err := New(store, 8)
	if err != nil {
		t.Fatal(err)
	}
	var lids []order.LID
	for i := 0; i < 40; i++ {
		lid, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetU64(lid, uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	for _, lid := range lids[10:20] {
		if err := f.Free(lid); err != nil {
			t.Fatal(err)
		}
	}
	meta := f.MarshalMeta()

	// A fresh File over the same store, restored from metadata, must see
	// identical state.
	f2, err := New(store, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.RestoreMeta(meta); err != nil {
		t.Fatal(err)
	}
	if f2.Count() != f.Count() || f2.Blocks() != f.Blocks() {
		t.Fatalf("count/blocks = %d/%d, want %d/%d", f2.Count(), f2.Blocks(), f.Count(), f.Blocks())
	}
	for i, lid := range lids {
		if i >= 10 && i < 20 {
			if _, err := f2.Get(lid); err == nil {
				t.Fatalf("freed lid %d readable after restore", lid)
			}
			continue
		}
		v, err := f2.GetU64(lid)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(1000+i) {
			t.Fatalf("lid %d = %d", lid, v)
		}
	}
	// Free-list continuity: new allocations reuse the freed range.
	lid, err := f2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if lid < lids[10] || lid > lids[19] {
		t.Fatalf("alloc %d did not reuse the persisted free list", lid)
	}
}

func TestRestoreMetaRejectsWrongPayload(t *testing.T) {
	store := pager.NewMemStore(256)
	f, err := New(store, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Alloc(); err != nil {
		t.Fatal(err)
	}
	meta := f.MarshalMeta()
	f2, err := New(store, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.RestoreMeta(meta); err == nil {
		t.Fatal("payload-size mismatch accepted")
	}
}
