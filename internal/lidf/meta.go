package lidf

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"boxes/internal/order"
	"boxes/internal/pager"
)

// MarshalMeta serializes the file's bookkeeping (extent table, free list
// head, allocation cursor) so the LIDF can be reopened over a persistent
// backend.
func (f *File) MarshalMeta() []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(f.payloadSize))
	binary.Write(&buf, binary.LittleEndian, uint64(f.next))
	binary.Write(&buf, binary.LittleEndian, uint64(f.freeHead))
	binary.Write(&buf, binary.LittleEndian, f.count)
	binary.Write(&buf, binary.LittleEndian, uint32(len(f.extents)))
	for _, blk := range f.extents {
		binary.Write(&buf, binary.LittleEndian, uint64(blk))
	}
	return buf.Bytes()
}

// RestoreMeta restores bookkeeping saved by MarshalMeta into a freshly
// created (empty) File over the same backend.
func (f *File) RestoreMeta(data []byte) error {
	r := bytes.NewReader(data)
	var payload uint32
	if err := binary.Read(r, binary.LittleEndian, &payload); err != nil {
		return fmt.Errorf("lidf: meta: %w", err)
	}
	if int(payload) != f.payloadSize {
		return fmt.Errorf("lidf: meta payload size %d, file configured for %d", payload, f.payloadSize)
	}
	var next, freeHead, count uint64
	var nExt uint32
	if err := binary.Read(r, binary.LittleEndian, &next); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &freeHead); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &nExt); err != nil {
		return err
	}
	extents := make([]pager.BlockID, nExt)
	for i := range extents {
		var blk uint64
		if err := binary.Read(r, binary.LittleEndian, &blk); err != nil {
			return err
		}
		extents[i] = pager.BlockID(blk)
	}
	f.next = order.LID(next)
	f.freeHead = order.LID(freeHead)
	f.count = count
	f.extents = extents
	return nil
}
