package lidf

import (
	"errors"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
)

func newFile(t *testing.T, blockSize, payload int) *File {
	t.Helper()
	f, err := New(pager.NewMemStore(blockSize), payload)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAllocSetGet(t *testing.T) {
	f := newFile(t, 256, 8)
	lid, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if lid == order.NilLID {
		t.Fatal("allocated NilLID")
	}
	if err := f.SetU64(lid, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := f.GetU64(lid)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("got %x", v)
	}
	if f.Count() != 1 {
		t.Fatalf("count = %d", f.Count())
	}
}

func TestGetUnknownLID(t *testing.T) {
	f := newFile(t, 256, 8)
	if _, err := f.Get(1); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("err = %v, want ErrUnknownLID", err)
	}
	if _, err := f.Get(order.NilLID); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("err = %v, want ErrUnknownLID", err)
	}
	lid, _ := f.Alloc()
	f.Free(lid)
	if _, err := f.Get(lid); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("freed get err = %v, want ErrUnknownLID", err)
	}
}

func TestFreeListReuse(t *testing.T) {
	f := newFile(t, 256, 8)
	var lids []order.LID
	for i := 0; i < 10; i++ {
		lid, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		lids = append(lids, lid)
	}
	blocksBefore := f.Blocks()
	for _, lid := range lids[3:7] {
		if err := f.Free(lid); err != nil {
			t.Fatal(err)
		}
	}
	if f.Count() != 6 {
		t.Fatalf("count = %d, want 6", f.Count())
	}
	seen := map[order.LID]bool{}
	for i := 0; i < 4; i++ {
		lid, err := f.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if lid < lids[3] || lid > lids[6] {
			t.Fatalf("alloc %d did not reuse freed range %d..%d", lid, lids[3], lids[6])
		}
		if seen[lid] {
			t.Fatalf("lid %d handed out twice", lid)
		}
		seen[lid] = true
	}
	if f.Blocks() != blocksBefore {
		t.Fatalf("blocks grew from %d to %d despite free list", blocksBefore, f.Blocks())
	}
}

func TestReusedRecordIsZeroed(t *testing.T) {
	f := newFile(t, 256, 16)
	lid, _ := f.Alloc()
	if err := f.Set(lid, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}); err != nil {
		t.Fatal(err)
	}
	f.Free(lid)
	lid2, _ := f.Alloc()
	if lid2 != lid {
		t.Fatalf("expected reuse")
	}
	p, err := f.Get(lid2)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range p {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestAllocPairAdjacency(t *testing.T) {
	f := newFile(t, 1024, 8) // 113 records per block
	for i := 0; i < 50; i++ {
		s, e, err := f.AllocPair()
		if err != nil {
			t.Fatal(err)
		}
		if e != s+1 {
			t.Fatalf("pair not adjacent: %d, %d", s, e)
		}
	}
}

func TestLIDStabilityAcrossOtherUpdates(t *testing.T) {
	f := newFile(t, 256, 8)
	anchor, _ := f.Alloc()
	f.SetU64(anchor, 777)
	for i := 0; i < 100; i++ {
		lid, _ := f.Alloc()
		f.SetU64(lid, uint64(i))
		if i%3 == 0 {
			f.Free(lid)
		}
	}
	v, err := f.GetU64(anchor)
	if err != nil || v != 777 {
		t.Fatalf("anchor disturbed: v=%d err=%v", v, err)
	}
}

func TestCompactness(t *testing.T) {
	// With heavy churn, the number of blocks stays proportional to the
	// live record count, not to the total number of allocations.
	f := newFile(t, 1024, 8) // 113 per block
	var live []order.LID
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			lid, err := f.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, lid)
		}
		for i := 0; i < 100 && len(live) > 0; i++ {
			lid := live[len(live)-1]
			live = live[:len(live)-1]
			if err := f.Free(lid); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Blocks() > 3 {
		t.Fatalf("LIDF not compact: %d blocks for %d live records", f.Blocks(), f.Count())
	}
}

func TestSetTooLarge(t *testing.T) {
	f := newFile(t, 256, 8)
	lid, _ := f.Alloc()
	if err := f.Set(lid, make([]byte, 9)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(pager.NewMemStore(256), 4); err == nil {
		t.Fatal("payload < 8 accepted")
	}
	if _, err := New(pager.NewMemStore(16), 64); err == nil {
		t.Fatal("record larger than block accepted")
	}
}

func TestLive(t *testing.T) {
	f := newFile(t, 256, 8)
	ok, err := f.Live(1)
	if err != nil || ok {
		t.Fatalf("Live(1) = %v, %v", ok, err)
	}
	lid, _ := f.Alloc()
	ok, err = f.Live(lid)
	if err != nil || !ok {
		t.Fatalf("Live(alloc) = %v, %v", ok, err)
	}
	f.Free(lid)
	ok, err = f.Live(lid)
	if err != nil || ok {
		t.Fatalf("Live(freed) = %v, %v", ok, err)
	}
}

// Property: arbitrary alloc/free/set sequences never alias two live
// records and always read back the last value written.
func TestQuickAllocFreeSetGet(t *testing.T) {
	type op struct {
		Kind byte
		Val  uint64
	}
	f := func(ops []op) bool {
		file, err := New(pager.NewMemStore(512), 8)
		if err != nil {
			return false
		}
		model := make(map[order.LID]uint64)
		var lids []order.LID
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // alloc
				lid, err := file.Alloc()
				if err != nil {
					return false
				}
				if _, exists := model[lid]; exists {
					return false // aliased a live record
				}
				model[lid] = 0
				lids = append(lids, lid)
			case 1: // set
				if len(lids) == 0 {
					continue
				}
				lid := lids[o.Val%uint64(len(lids))]
				if _, live := model[lid]; !live {
					continue
				}
				if err := file.SetU64(lid, o.Val); err != nil {
					return false
				}
				model[lid] = o.Val
			case 2: // free
				if len(lids) == 0 {
					continue
				}
				lid := lids[o.Val%uint64(len(lids))]
				if _, live := model[lid]; !live {
					continue
				}
				if err := file.Free(lid); err != nil {
					return false
				}
				delete(model, lid)
			}
		}
		if file.Count() != uint64(len(model)) {
			return false
		}
		for lid, want := range model {
			got, err := file.GetU64(lid)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
