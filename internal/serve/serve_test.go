package serve

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"boxes/internal/core"
	"boxes/internal/faults"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// testEnv is one served store: a durable group-committing W-BOX behind a
// loopback listener.
type testEnv struct {
	t     *testing.T
	path  string
	fb    *pager.FileBackend
	store *core.SyncStore
	srv   *Server
	addr  string
	met   *Metrics
	done  chan error
}

type envOptions struct {
	queueDepth  int
	batchMax    int
	maxSessions int
	wrapConn    func(net.Conn) net.Conn
	crash       *pager.CrashController
}

func startEnv(t *testing.T, o envOptions) *testEnv {
	t.Helper()
	path := filepath.Join(t.TempDir(), "served.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{
		BlockSize: 512, NoSync: true, CrashControl: o.crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Open(core.Options{
		Scheme: core.SchemeWBox, BlockSize: 512,
		Backend: fb, Durable: true,
		Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := core.NewSyncStore(base)
	met := NewMetrics()
	srv, err := NewServer(Config{
		Store: store, Metrics: met,
		QueueDepth: o.queueDepth, BatchMax: o.batchMax,
		MaxSessions: o.maxSessions,
		WrapConn:    o.wrapConn,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{
		t: t, path: path, fb: fb, store: store, srv: srv,
		addr: l.Addr().String(), met: met, done: make(chan error, 1),
	}
	go func() { env.done <- srv.Serve(l) }()
	return env
}

// shutdown drains the server and closes the store, asserting both are
// clean.
func (e *testEnv) shutdown() {
	e.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		e.t.Fatalf("shutdown: %v", err)
	}
	if err := <-e.done; err != nil {
		e.t.Fatalf("serve: %v", err)
	}
	if err := e.store.Close(); err != nil {
		e.t.Fatalf("store close: %v", err)
	}
}

func TestServeBasicOps(t *testing.T) {
	env := startEnv(t, envOptions{})
	ctx := context.Background()
	c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatalf("insert-first: %v", err)
	}
	a, err := c.Insert(ctx, root.End)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	b, err := c.Insert(ctx, root.End)
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	if cmp, err := c.Compare(ctx, a.Start, b.Start); err != nil || cmp != -1 {
		t.Fatalf("compare(a,b) = %d, %v; want -1", cmp, err)
	}
	if cmp, err := c.Compare(ctx, b.Start, a.Start); err != nil || cmp != 1 {
		t.Fatalf("compare(b,a) = %d, %v; want 1", cmp, err)
	}
	la, err := c.Lookup(ctx, a.Start)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	lb, err := c.Lookup(ctx, b.Start)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if la >= lb {
		t.Fatalf("labels out of order: %d >= %d", la, lb)
	}
	if err := c.DeleteElement(ctx, b); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := c.Lookup(ctx, b.Start); !errors.Is(err, order.ErrUnknownLID) {
		t.Fatalf("lookup of deleted LID: %v; want ErrUnknownLID", err)
	}

	// A batch of writes is one atomic transaction with positional results.
	res, err := c.Batch(ctx, []BatchOp{
		{Op: OpInsert, LID: root.End},
		{Op: OpInsert, LID: root.End},
		{Op: OpDeleteElement, Elem: a},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("batch results: %d; want 3", len(res))
	}
	if cmp, err := c.Compare(ctx, res[0].Elem.Start, res[1].Elem.Start); err != nil || cmp != -1 {
		t.Fatalf("batch order: %d, %v", cmp, err)
	}

	// Server-side store agrees.
	if n := env.store.Count(); n != 6 { // root + 2 batch inserts = 3 elements
		t.Fatalf("store count %d; want 6 labels", n)
	}
	env.shutdown()
}

// A full admission queue sheds with a typed overload status instead of
// queuing unboundedly; the shed is visible in metrics and to the client.
func TestServeOverloadShed(t *testing.T) {
	env := startEnv(t, envOptions{queueDepth: 1})
	ctx := context.Background()
	c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Stall the committer so admitted writes pile up behind it.
	env.fb.HoldGroupCommit(true)
	type result struct{ err error }
	results := make(chan result, 8)
	noRetry := &faults.RetryPolicy{MaxAttempts: 1}
	for i := 0; i < 8; i++ {
		go func() {
			cc, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Retry: noRetry})
			if err != nil {
				results <- result{err}
				return
			}
			defer cc.Close()
			_, err = cc.Insert(context.Background(), root.End)
			results <- result{err}
		}()
	}
	var shed, ok int
	deadline := time.After(8 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case r := <-results:
			if errors.Is(r.err, ErrOverload) {
				shed++
			} else if r.err == nil {
				ok = ok + 1
			} else {
				t.Errorf("unexpected error: %v", r.err)
			}
			if shed > 0 && i < 7 {
				// Once shed is observed, unblock the rest.
				env.fb.HoldGroupCommit(false)
			}
		case <-deadline:
			env.fb.HoldGroupCommit(false)
			t.Fatalf("timed out; %d shed, %d ok so far", shed, ok)
		}
	}
	env.fb.HoldGroupCommit(false)
	if shed == 0 {
		t.Fatal("no request was shed despite queue depth 1 and a held committer")
	}
	if got := env.met.Shed.Load(); got == 0 {
		t.Fatal("shed metric not incremented")
	}
	env.shutdown()
}

// A deadline that expires while the request is queued cancels it before
// any op runs; the op is not applied and the client sees the typed error.
func TestServeDeadlineWhileQueued(t *testing.T) {
	env := startEnv(t, envOptions{})
	ctx := context.Background()
	c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before := env.store.Count()

	// Occupy the batcher: one write blocks on the held committer, so the
	// next one waits in the queue past its deadline.
	env.fb.HoldGroupCommit(true)
	blocker := make(chan error, 1)
	go func() {
		cc, err := Dial(env.addr, ClientOptions{Timeout: 10 * time.Second})
		if err != nil {
			blocker <- err
			return
		}
		defer cc.Close()
		_, err = cc.Insert(context.Background(), root.End)
		blocker <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the blocker reach ApplyBatch

	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	c2, err := Dial(env.addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.Insert(short, root.End)
	env.fb.HoldGroupCommit(false)
	if !errors.Is(err, ErrDeadlineExpired) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued op past deadline: %v; want deadline error", err)
	}
	if berr := <-blocker; berr != nil {
		t.Fatalf("blocker insert: %v", berr)
	}
	if env.met.Deadline.Load() == 0 && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("deadline metric not incremented")
	}
	if got := env.store.Count(); got != before+2 {
		t.Fatalf("store count %d; want %d (only the blocker's insert applied)", got, before+2)
	}
	env.shutdown()
}

// Re-sending the same sequence number replays the cached response instead
// of re-applying the op — the lost-ack recovery path.
func TestServeSessionDedupReplay(t *testing.T) {
	env := startEnv(t, envOptions{})
	conn, err := net.Dial("tcp", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeClientHello(conn, clientHello{}); err != nil {
		t.Fatal(err)
	}
	if _, err := readServerHello(conn); err != nil {
		t.Fatal(err)
	}
	send := func(req *Request) *Response {
		t.Helper()
		if err := writeFrame(conn, encodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := decodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := send(&Request{Seq: 1, Op: OpInsertFirst})
	if r1.Status != StatusOK {
		t.Fatalf("insert-first: %s", r1.Msg)
	}
	count := env.store.Count()
	// "Lost ack": the client re-sends seq 1. The server must replay, not
	// re-apply.
	r1b := send(&Request{Seq: 1, Op: OpInsertFirst})
	if r1b.Status != StatusOK || r1b.Elem != r1.Elem {
		t.Fatalf("replay mismatch: %+v vs %+v", r1b, r1)
	}
	if got := env.store.Count(); got != count {
		t.Fatalf("replay re-applied the op: count %d -> %d", count, got)
	}
	// A stale (below high-water) seq is rejected, not silently applied.
	r0 := send(&Request{Seq: 0, Op: OpLookup, LID: r1.Elem.Start})
	if r0.Status != StatusOK {
		t.Fatalf("unsequenced lookup: %s", r0.Msg)
	}
	env.shutdown()
}

// rawConn is a handshaked protocol connection for tests that need to
// control seqs and framing directly.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	sess uint64
}

func dialRaw(t *testing.T, addr string, session uint64) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeClientHello(conn, clientHello{Session: session}); err != nil {
		t.Fatal(err)
	}
	hello, err := readServerHello(conn)
	if err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, conn: conn, sess: hello.Session}
}

func (r *rawConn) send(req *Request) {
	r.t.Helper()
	if err := writeFrame(r.conn, encodeRequest(req)); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawConn) recv() *Response {
	r.t.Helper()
	payload, err := readFrame(r.conn)
	if err != nil {
		r.t.Fatal(err)
	}
	resp, err := decodeResponse(payload)
	if err != nil {
		r.t.Fatal(err)
	}
	return resp
}

func (r *rawConn) roundTrip(req *Request) *Response {
	r.t.Helper()
	r.send(req)
	return r.recv()
}

// An overload rejection must NOT settle its seq in the dedup slot: the
// client retries a shed request with the SAME seq after backoff, and that
// retry has to re-execute once the queue drains — not replay the cached
// StatusOverload forever.
func TestServeOverloadRetrySameSeq(t *testing.T) {
	env := startEnv(t, envOptions{queueDepth: 1})
	a := dialRaw(t, env.addr, 0)
	defer a.conn.Close()
	b := dialRaw(t, env.addr, 0)
	defer b.conn.Close()
	c := dialRaw(t, env.addr, 0)
	defer c.conn.Close()

	rootResp := a.roundTrip(&Request{Seq: 1, Op: OpInsertFirst})
	if rootResp.Status != StatusOK {
		t.Fatalf("insert-first: %s", rootResp.Msg)
	}
	root := rootResp.Elem

	// a's insert blocks in the held committer; b's fills the depth-1
	// queue; c's is shed.
	env.fb.HoldGroupCommit(true)
	a.send(&Request{Seq: 2, Op: OpInsert, LID: root.End})
	time.Sleep(100 * time.Millisecond) // batcher picks a's op up
	b.send(&Request{Seq: 1, Op: OpInsert, LID: root.End})
	time.Sleep(100 * time.Millisecond) // b's op reaches the queue
	shed := c.roundTrip(&Request{Seq: 1, Op: OpInsert, LID: root.End})
	if shed.Status != StatusOverload {
		env.fb.HoldGroupCommit(false)
		t.Fatalf("third insert status %s; want overload", statusName(shed.Status))
	}

	env.fb.HoldGroupCommit(false)
	if ra := a.recv(); ra.Status != StatusOK {
		t.Fatalf("first insert: %s", ra.Msg)
	}
	if rb := b.recv(); rb.Status != StatusOK {
		t.Fatalf("second insert: %s", rb.Msg)
	}
	// The retry of the shed seq must execute fresh, not replay the shed.
	retry := c.roundTrip(&Request{Seq: 1, Op: OpInsert, LID: root.End})
	if retry.Status != StatusOK {
		t.Fatalf("retry of shed seq: %s (%s); want OK", statusName(retry.Status), retry.Msg)
	}
	// And a re-send after the ack replays, proving the slot now holds it.
	replay := c.roundTrip(&Request{Seq: 1, Op: OpInsert, LID: root.End})
	if replay.Status != StatusOK || replay.Elem != retry.Elem {
		t.Fatalf("replay after settle: %+v vs %+v", replay, retry)
	}
	env.shutdown()
}

// A retry racing its in-flight predecessor (original conn died with the
// op queued, client reconnected and re-sent the seq) must adopt the
// outstanding execution's result, not apply the op a second time.
func TestServeInFlightRetryAdoptsResult(t *testing.T) {
	env := startEnv(t, envOptions{})
	a := dialRaw(t, env.addr, 0)
	defer a.conn.Close()

	env.fb.HoldGroupCommit(true)
	a.send(&Request{Seq: 1, Op: OpInsertFirst})
	time.Sleep(100 * time.Millisecond) // seq 1 is now executing (pending)

	// Reconnect on the same session and re-send the in-flight seq.
	b := dialRaw(t, env.addr, a.sess)
	defer b.conn.Close()
	if b.sess != a.sess {
		t.Fatalf("session not resumed: %d vs %d", b.sess, a.sess)
	}
	b.send(&Request{Seq: 1, Op: OpInsertFirst})
	time.Sleep(100 * time.Millisecond) // the retry reaches the pending-wait
	env.fb.HoldGroupCommit(false)

	ra := a.recv()
	rb := b.recv()
	if ra.Status != StatusOK || rb.Status != StatusOK {
		t.Fatalf("statuses %s / %s; want OK / OK", statusName(ra.Status), statusName(rb.Status))
	}
	if ra.Elem != rb.Elem {
		t.Fatalf("retry re-executed: %+v vs %+v", ra.Elem, rb.Elem)
	}
	if got := env.store.Count(); got != 2 {
		t.Fatalf("store count %d; want 2 (op applied exactly once)", got)
	}
	env.shutdown()
}

// A server built without Metrics must not panic: every counter access
// goes through the defaulted private bundle.
func TestServeNilMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unmetered.boxes")
	fb, err := pager.CreateFileOpts(path, pager.FileOptions{BlockSize: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Open(core.Options{
		Scheme: core.SchemeWBox, BlockSize: 512,
		Backend: fb, Durable: true,
		Durability: &pager.Durability{Every: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := core.NewSyncStore(base)
	srv, err := NewServer(Config{Store: store}) // no Metrics
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	c, err := Dial(l.Addr().String(), ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, root.Start); err != nil {
		t.Fatal(err)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// The session table is bounded: short-lived clients churn through the
// LRU instead of growing server state without limit.
func TestServeSessionTableBounded(t *testing.T) {
	env := startEnv(t, envOptions{maxSessions: 2})
	for i := 0; i < 6; i++ {
		c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup(context.Background(), 1); err == nil {
			t.Fatal("lookup of unknown LID succeeded")
		}
		c.Close()
	}
	// Wait for the handlers to detach their sessions (releaseSession runs
	// before the ConnsActive decrement in the handler's defer chain).
	deadline := time.Now().Add(5 * time.Second)
	for env.met.ConnsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection handlers did not exit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	env.srv.mu.Lock()
	n := len(env.srv.sessions)
	env.srv.mu.Unlock()
	if n > 2 {
		t.Fatalf("session table grew to %d despite MaxSessions 2", n)
	}
	if g := env.met.Sessions.Load(); g != int64(n) {
		t.Fatalf("sessions gauge %d disagrees with table size %d", g, n)
	}
	env.shutdown()
}

// A call without a deadline must not inherit the conn deadline a previous
// deadlined call set — it has to clear it, or the next op on the same
// conn fails spuriously once the stale deadline passes.
func TestClientClearsConnDeadline(t *testing.T) {
	env := startEnv(t, envOptions{})
	noRetry := &faults.RetryPolicy{MaxAttempts: 1}
	c, err := Dial(env.addr, ClientOptions{Retry: noRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.InsertFirst(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	if _, err := c.Lookup(short, root.Start); err != nil {
		t.Fatalf("deadlined lookup: %v", err)
	}
	cancel()
	time.Sleep(600 * time.Millisecond) // the stale conn deadline passes
	// MaxAttempts 1: a stale inherited deadline cannot hide behind a
	// reconnect-and-retry.
	if _, err := c.Lookup(context.Background(), root.Start); err != nil {
		t.Fatalf("undeadlined lookup after stale deadline: %v", err)
	}
	env.shutdown()
}

// After Shutdown begins, idle connections are closed, new work is
// rejected, and an op that was in flight when the drain started is still
// acknowledged (and durable).
func TestServeDrainFinishesInFlight(t *testing.T) {
	env := startEnv(t, envOptions{})
	ctx := context.Background()
	c, err := Dial(env.addr, ClientOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Park one write mid-commit, then drain around it.
	env.fb.HoldGroupCommit(true)
	inflight := make(chan error, 1)
	go func() {
		cc, err := Dial(env.addr, ClientOptions{Timeout: 10 * time.Second})
		if err != nil {
			inflight <- err
			return
		}
		defer cc.Close()
		_, err = cc.Insert(context.Background(), root.End)
		inflight <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the insert reach the committer

	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- env.srv.Shutdown(shutCtx) }()
	time.Sleep(50 * time.Millisecond)
	env.fb.HoldGroupCommit(false)

	if err := <-inflight; err != nil {
		t.Fatalf("in-flight insert lost during drain: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drained server rejects new work: the idle conn was closed and
	// the listener no longer accepts.
	if _, err := c.Lookup(ctx, root.Start); err == nil {
		t.Fatal("lookup succeeded after drain completed")
	}
	if err := <-env.done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := env.store.Count(); got != 4 {
		t.Fatalf("store count %d; want 4 (root + drained insert)", got)
	}
	if err := env.store.Close(); err != nil {
		t.Fatal(err)
	}
	if env.met.DrainNanos.Load() <= 0 {
		t.Fatal("drain duration not recorded")
	}
}

// Corrupted frames are detected by CRC and drop the connection; the
// client's retry loop reconnects and the session dedup keeps the op
// exactly-once.
func TestServeCorruptFrameDetected(t *testing.T) {
	env := startEnv(t, envOptions{})
	sched := faults.NewSchedule(42)
	sched.FailEveryKth(3, faults.ModePermanent, faults.OpWrite)
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", env.addr)
		if err != nil {
			return nil, err
		}
		return NewFaultConn(conn, sched), nil
	}
	c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Dial: dial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	root, err := c.InsertFirst(ctx)
	if err != nil {
		t.Fatalf("insert-first through corrupting conn: %v", err)
	}
	var elems []order.ElemLIDs
	for i := 0; i < 10; i++ {
		e, err := c.Insert(ctx, root.End)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		elems = append(elems, e)
	}
	if env.met.BadFrames.Load() == 0 {
		t.Fatal("no corrupt frame reached the server despite every-3rd-write corruption")
	}
	// Exactly-once despite retransmits: root + 10 elements.
	if got := env.store.Count(); got != 22 {
		t.Fatalf("store count %d; want 22 labels", got)
	}
	env.shutdown()
}
