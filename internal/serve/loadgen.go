package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/faults"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/workload"
)

// LoadConfig configures the closed-loop load generator: N concurrent
// connections, each driving one positional workload source against its
// own private subtree of the served document (a per-worker anchor element
// under the root), so concurrent workers never invalidate each other's
// position coordinates and every op is verifiable client-side.
type LoadConfig struct {
	Addr string
	// Conns is the number of concurrent connections/workers (default 4).
	Conns int
	// Ops is the total operation budget across all workers (default 1000).
	Ops int
	// Source selects the workload profile: "zipf", "churn", "uniform",
	// "bisect", "frontpack" (default "zipf").
	Source string
	Seed   int64
	// Skew is the zipf skew parameter (default 1.1).
	Skew float64
	// ChurnTarget is the churn profile's steady-state size per worker
	// (default 64).
	ChurnTarget int
	// Timeout is the per-op deadline (default 5s).
	Timeout time.Duration
	// Retry overrides the client retry policy.
	Retry *faults.RetryPolicy
	// Dial overrides the transport (fault injection).
	Dial func() (net.Conn, error)
}

// LoadReport aggregates a load run. Latency buckets cover acknowledged
// ops only (a shed-and-retried op counts once, with its full retry wall
// time — the client-observed latency).
type LoadReport struct {
	Source    string
	Conns     int
	Attempted uint64
	Acked     uint64
	Failed    uint64
	Skipped   uint64 // no-op positions (delete/lookup on an empty tracker)
	Duration  time.Duration
	Latency   obs.HistSnapshot
	P50       time.Duration
	P99       time.Duration
	OpsPerSec float64
}

func (cfg *LoadConfig) defaults() {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 1000
	}
	if cfg.Source == "" {
		cfg.Source = "zipf"
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1.1
	}
	if cfg.ChurnTarget <= 0 {
		cfg.ChurnTarget = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
}

func newSource(cfg *LoadConfig, worker int) (workload.Source, error) {
	seed := cfg.Seed + int64(worker)*7919
	switch cfg.Source {
	case "zipf":
		return workload.NewZipfMix(seed, cfg.Skew, 40, 20), nil
	case "churn":
		return workload.NewChurn(seed, cfg.ChurnTarget), nil
	case "uniform":
		return workload.NewUniform(seed), nil
	case "bisect":
		return workload.NewBisect(16), nil
	case "frontpack":
		return workload.NewFrontPack(8), nil
	default:
		return nil, fmt.Errorf("serve: unknown load source %q", cfg.Source)
	}
}

// netView adapts a worker's tracker + client to workload.View so adaptive
// sources (bisect) can observe labels over the wire.
type netView struct {
	ctx context.Context
	c   *Client
	tr  *workload.Tracker
}

func (v *netView) Len() int { return v.tr.Len() }

func (v *netView) Label(pos int) (order.Label, error) {
	return v.c.Lookup(v.ctx, v.tr.Elem(pos).Start)
}

func (v *netView) EndLabel(pos int) (order.Label, error) {
	return v.c.Lookup(v.ctx, v.tr.Elem(pos).End)
}

// RunLoad drives cfg.Ops operations over cfg.Conns connections and
// reports client-observed latency quantiles and throughput. The store
// behind addr must be fresh or already rooted: the generator bootstraps
// the root element if the document is empty, then gives each worker its
// own anchor child to operate under.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg.defaults()
	opts := ClientOptions{Timeout: cfg.Timeout, Retry: cfg.Retry, Dial: cfg.Dial}

	setup, err := dialRetry(ctx, cfg.Addr, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: load setup dial: %w", err)
	}
	target, err := anchorTarget(ctx, setup)
	if err != nil {
		setup.Close()
		return nil, err
	}
	anchors := make([]order.ElemLIDs, cfg.Conns)
	for i := range anchors {
		a, err := setup.Insert(ctx, target)
		if err != nil {
			setup.Close()
			return nil, fmt.Errorf("serve: load anchor %d: %w", i, err)
		}
		anchors[i] = a
	}
	setup.Close()

	var (
		attempted, acked, failed, skipped atomic.Uint64
		lat                               = obs.NewDurHist()
		wg                                sync.WaitGroup
		errMu                             sync.Mutex
		firstErr                          error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	opsEach := cfg.Ops / cfg.Conns
	start := time.Now()
	for w := 0; w < cfg.Conns; w++ {
		src, err := newSource(&cfg, w)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(w int, src workload.Source, anchor order.ElemLIDs) {
			defer wg.Done()
			c, err := dialRetry(ctx, cfg.Addr, opts)
			if err != nil {
				fail(fmt.Errorf("serve: worker %d dial: %w", w, err))
				return
			}
			defer c.Close()
			tr := &workload.Tracker{}
			view := &netView{ctx: ctx, c: c, tr: tr}
			for i := 0; i < opsEach; i++ {
				if ctx.Err() != nil {
					return
				}
				op, err := src.Next(view)
				if err != nil {
					fail(fmt.Errorf("serve: worker %d source: %w", w, err))
					return
				}
				attempted.Add(1)
				pos := tr.Clamp(op.Pos)
				t0 := time.Now()
				switch op.Kind {
				case workload.Insert:
					target := anchor.End
					if tr.Len() > 0 {
						target = tr.Elem(pos).Start
					}
					e, err := c.Insert(ctx, target)
					if err != nil {
						if loadStop(err) {
							return
						}
						failed.Add(1)
						continue
					}
					tr.NoteInsert(pos, e)
				case workload.Delete:
					if tr.Len() == 0 {
						skipped.Add(1)
						continue
					}
					if err := c.DeleteElement(ctx, tr.Elem(pos)); err != nil {
						if loadStop(err) {
							return
						}
						failed.Add(1)
						continue
					}
					tr.NoteDelete(pos)
				case workload.Lookup:
					if tr.Len() == 0 {
						skipped.Add(1)
						continue
					}
					if _, err := c.Lookup(ctx, tr.Elem(pos).Start); err != nil {
						if loadStop(err) {
							return
						}
						failed.Add(1)
						continue
					}
				}
				lat.Observe(time.Since(t0))
				acked.Add(1)
			}
		}(w, src, anchors[w])
	}
	wg.Wait()
	dur := time.Since(start)

	if firstErr != nil {
		return nil, firstErr
	}
	snap := lat.Snapshot()
	rep := &LoadReport{
		Source:    cfg.Source,
		Conns:     cfg.Conns,
		Attempted: attempted.Load(),
		Acked:     acked.Load(),
		Failed:    failed.Load(),
		Skipped:   skipped.Load(),
		Duration:  dur,
		Latency:   snap,
		P50:       time.Duration(snap.Quantile(0.50)),
		P99:       time.Duration(snap.Quantile(0.99)),
	}
	if secs := dur.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Acked) / secs
	}
	return rep, nil
}

// anchorTarget returns the LID before whose tag the worker anchors are
// inserted: LID 1 (the first label ever allocated) when the document is
// non-empty, so the anchors become elements preceding it; otherwise the
// end tag of a freshly bootstrapped root, making the anchors its
// children. Either way each worker gets a private subtree.
func anchorTarget(ctx context.Context, c *Client) (order.LID, error) {
	if _, err := c.Lookup(ctx, order.LID(1)); err == nil {
		return order.LID(1), nil
	} else if !errors.Is(err, order.ErrUnknownLID) {
		return 0, fmt.Errorf("serve: load probe: %w", err)
	}
	root, err := c.InsertFirst(ctx)
	if err != nil {
		return 0, fmt.Errorf("serve: load bootstrap: %w", err)
	}
	return root.End, nil
}

// dialRetry dials under the client's retry policy. Dial handshakes
// eagerly, so under connection-fault injection the scheduled fault can
// land on the handshake itself; for a load generator every connection-
// setup failure is retryable — a fresh TCP connection is a fresh start.
func dialRetry(ctx context.Context, addr string, opts ClientOptions) (*Client, error) {
	pol := faults.DefaultRetryPolicy()
	if opts.Retry != nil {
		pol = *opts.Retry
	}
	var c *Client
	_, err := faults.NewRetrier(pol).DoCtx(ctx, func() error {
		var derr error
		c, derr = Dial(addr, opts)
		if derr != nil {
			return fmt.Errorf("%w: %w", faults.ErrTransient, derr)
		}
		return nil
	})
	return c, err
}

// loadStop reports whether a worker should stop: the server is draining
// or restarted, or the run's context died. All other failures are
// per-op and counted.
func loadStop(err error) bool {
	return errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrServerRestarted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
