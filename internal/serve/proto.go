// Package serve is the network service layer: a gateway (Server) that
// owns one durable core.SyncStore and speaks a length-prefixed native
// protocol, and the matching Client with retries, deadlines, and
// idempotent reconnect. The layer is robustness-first:
//
//   - every frame is CRC-guarded, so byte corruption on the wire is a
//     detected connection error, never a misparsed op;
//   - every request carries a deadline; requests cancel while queued but
//     never mid-WAL-commit (core.ApplyBatchCtx semantics);
//   - admission is bounded: a full write queue sheds with a typed
//     overload status instead of growing goroutines;
//   - an acknowledged op is durable (the server replies only after the
//     group-commit ticket resolves), and an unacknowledged op is atomic:
//     fully present or fully absent, never partial;
//   - sessions carry per-op sequence numbers, so a client that loses an
//     ack can re-send the same seq after reconnect and get exactly-once
//     application within one server lifetime (the handshake's epoch
//     exposes restarts, where the dedup table is gone).
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"boxes/internal/order"
)

// Frame layout: [4B length][4B CRC32-C of payload][payload]. The length
// counts payload bytes only.
const (
	frameHeaderSize = 8
	// MaxFrame bounds a single frame's payload so a corrupted or hostile
	// length prefix cannot balloon allocation.
	MaxFrame = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports a frame whose CRC did not match its payload or
// whose length prefix was out of bounds. The connection is unusable past
// it (framing is lost).
var ErrBadFrame = errors.New("serve: bad frame (corrupt length or checksum)")

// writeFrame appends the frame header to payload and writes both with a
// single Write call, so a fault injector's per-write decisions map 1:1 to
// protocol write points.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("serve: frame payload %d exceeds max %d", len(payload), MaxFrame)
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, verifying length bounds and CRC.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, ErrBadFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrBadFrame
	}
	return payload, nil
}

// Opcodes. The write set maps 1:1 onto core.Op kinds; Compare is the
// order query the labeling scheme exists to answer.
const (
	OpInsert        uint8 = 1 // insert one element before LID
	OpInsertFirst   uint8 = 2 // bootstrap insert on an empty document
	OpDeleteElement uint8 = 3 // delete an element's start+end labels
	OpDeleteSubtree uint8 = 4 // delete an element and its descendants
	OpLookup        uint8 = 5 // read the label of LID
	OpCompare       uint8 = 6 // order two LIDs by document position
	OpBatch         uint8 = 7 // several write ops as one atomic batch
)

// OpName returns the wire opcode's human name (metrics row keys).
func OpName(op uint8) string {
	switch op {
	case OpInsert:
		return "insert"
	case OpInsertFirst:
		return "insert-first"
	case OpDeleteElement:
		return "delete-element"
	case OpDeleteSubtree:
		return "delete-subtree"
	case OpLookup:
		return "lookup"
	case OpCompare:
		return "compare"
	case OpBatch:
		return "batch"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// Status codes. Every non-OK status is typed so clients can distinguish
// shed-and-retry (overload) from give-up (draining, restart) without
// parsing message strings.
const (
	StatusOK         uint8 = 0
	StatusError      uint8 = 1 // op-level failure; Msg carries the cause
	StatusOverload   uint8 = 2 // write queue full; retry with backoff
	StatusDeadline   uint8 = 3 // deadline expired while queued; not applied
	StatusDraining   uint8 = 4 // server is draining; op not applied
	StatusUnknownLID uint8 = 5 // the targeted LID does not exist
	StatusReadOnly   uint8 = 6 // store is in read-only degraded mode
	StatusBadRequest uint8 = 7 // malformed or out-of-sequence request
)

func statusName(s uint8) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusOverload:
		return "overload"
	case StatusDeadline:
		return "deadline"
	case StatusDraining:
		return "draining"
	case StatusUnknownLID:
		return "unknown-lid"
	case StatusReadOnly:
		return "read-only"
	case StatusBadRequest:
		return "bad-request"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// BatchOp is one write inside an OpBatch request.
type BatchOp struct {
	Op   uint8 // OpInsert, OpInsertFirst, OpDeleteElement, OpDeleteSubtree
	LID  order.LID
	Elem order.ElemLIDs
}

// Request is one client request. Which fields are read depends on Op.
type Request struct {
	Seq        uint64 // per-session sequence number, strictly increasing
	Op         uint8
	DeadlineMS uint32         // remaining budget in ms when sent; 0 = none
	LID        order.LID      // OpInsert, OpLookup
	Elem       order.ElemLIDs // OpDeleteElement, OpDeleteSubtree
	A, B       order.LID      // OpCompare
	Batch      []BatchOp      // OpBatch
}

// BatchResult is one positional result inside an OpBatch response.
type BatchResult struct {
	Elem order.ElemLIDs // insert results
}

// Response answers the request with the same Seq.
type Response struct {
	Seq    uint64
	Status uint8
	Elem   order.ElemLIDs // OpInsert, OpInsertFirst
	Label  order.Label    // OpLookup
	Cmp    int8           // OpCompare
	Batch  []BatchResult  // OpBatch
	Msg    string         // non-OK detail
}

// encodeRequest serializes r (little-endian, fixed field order).
func encodeRequest(r *Request) []byte {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, r.Op)
	buf = binary.LittleEndian.AppendUint32(buf, r.DeadlineMS)
	switch r.Op {
	case OpInsert, OpLookup:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.LID))
	case OpDeleteElement, OpDeleteSubtree:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Elem.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Elem.End))
	case OpCompare:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.A))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.B))
	case OpBatch:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Batch)))
		for _, b := range r.Batch {
			buf = append(buf, b.Op)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.LID))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Elem.Start))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Elem.End))
		}
	}
	return buf
}

// cursor is a bounds-checked little-endian reader; the first short read
// latches err so decoders can chain reads and check once.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || len(c.b) < 1 {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.err = io.ErrUnexpectedEOF
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *cursor) str() string {
	n := int(c.u32())
	if c.err != nil || len(c.b) < n {
		c.err = io.ErrUnexpectedEOF
		return ""
	}
	v := string(c.b[:n])
	c.b = c.b[n:]
	return v
}

func decodeRequest(payload []byte) (*Request, error) {
	c := &cursor{b: payload}
	r := &Request{}
	r.Seq = c.u64()
	r.Op = c.u8()
	r.DeadlineMS = c.u32()
	switch r.Op {
	case OpInsert, OpLookup:
		r.LID = order.LID(c.u64())
	case OpInsertFirst:
	case OpDeleteElement, OpDeleteSubtree:
		r.Elem.Start = order.LID(c.u64())
		r.Elem.End = order.LID(c.u64())
	case OpCompare:
		r.A = order.LID(c.u64())
		r.B = order.LID(c.u64())
	case OpBatch:
		n := int(c.u32())
		if c.err == nil && n > MaxFrame/17 {
			return nil, fmt.Errorf("serve: batch of %d ops exceeds frame budget", n)
		}
		if c.err == nil {
			r.Batch = make([]BatchOp, n)
			for i := range r.Batch {
				r.Batch[i].Op = c.u8()
				r.Batch[i].LID = order.LID(c.u64())
				r.Batch[i].Elem.Start = order.LID(c.u64())
				r.Batch[i].Elem.End = order.LID(c.u64())
			}
		}
	default:
		return nil, fmt.Errorf("serve: unknown opcode %d", r.Op)
	}
	if c.err != nil {
		return nil, fmt.Errorf("serve: truncated request: %w", c.err)
	}
	return r, nil
}

func encodeResponse(r *Response) []byte {
	buf := make([]byte, 0, 64)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, r.Status)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Elem.Start))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Elem.End))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Label))
	buf = append(buf, byte(r.Cmp))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Batch)))
	for _, b := range r.Batch {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Elem.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(b.Elem.End))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Msg)))
	buf = append(buf, r.Msg...)
	return buf
}

func decodeResponse(payload []byte) (*Response, error) {
	c := &cursor{b: payload}
	r := &Response{}
	r.Seq = c.u64()
	r.Status = c.u8()
	r.Elem.Start = order.LID(c.u64())
	r.Elem.End = order.LID(c.u64())
	r.Label = order.Label(c.u64())
	r.Cmp = int8(c.u8())
	n := int(c.u32())
	if c.err == nil && n > MaxFrame/16 {
		return nil, fmt.Errorf("serve: batch of %d results exceeds frame budget", n)
	}
	if c.err == nil && n > 0 {
		r.Batch = make([]BatchResult, n)
		for i := range r.Batch {
			r.Batch[i].Elem.Start = order.LID(c.u64())
			r.Batch[i].Elem.End = order.LID(c.u64())
		}
	}
	r.Msg = c.str()
	if c.err != nil {
		return nil, fmt.Errorf("serve: truncated response: %w", c.err)
	}
	return r, nil
}

// Handshake. The client opens with magic + its session ID (0 = new) +
// the last seq it sent; the server replies with magic + the granted
// session ID + its boot epoch + the last seq it has seen for that session
// (0 for a new or unknown session). A client reconnecting after a lost
// ack compares epochs: same epoch means the dedup table survived and
// re-sending the in-flight seq is exactly-once; a changed epoch means the
// server restarted and the op's outcome must be treated as unknown (but
// atomic — fully present or fully absent).
var helloMagic = [8]byte{'B', 'O', 'X', 'S', 'R', 'V', '0', '1'}

type clientHello struct {
	Session uint64
	LastSeq uint64
}

type serverHello struct {
	Session  uint64
	Epoch    uint64
	KnownSeq uint64
}

func writeClientHello(w io.Writer, h clientHello) error {
	buf := make([]byte, 0, 24)
	buf = append(buf, helloMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Session)
	buf = binary.LittleEndian.AppendUint64(buf, h.LastSeq)
	return writeFrame(w, buf)
}

func readClientHello(r io.Reader) (clientHello, error) {
	payload, err := readFrame(r)
	if err != nil {
		return clientHello{}, err
	}
	c := &cursor{b: payload}
	var magic [8]byte
	for i := range magic {
		magic[i] = c.u8()
	}
	h := clientHello{Session: c.u64(), LastSeq: c.u64()}
	if c.err != nil || magic != helloMagic {
		return clientHello{}, fmt.Errorf("serve: bad client hello")
	}
	return h, nil
}

func writeServerHello(w io.Writer, h serverHello) error {
	buf := make([]byte, 0, 32)
	buf = append(buf, helloMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, h.Session)
	buf = binary.LittleEndian.AppendUint64(buf, h.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, h.KnownSeq)
	return writeFrame(w, buf)
}

func readServerHello(r io.Reader) (serverHello, error) {
	payload, err := readFrame(r)
	if err != nil {
		return serverHello{}, err
	}
	c := &cursor{b: payload}
	var magic [8]byte
	for i := range magic {
		magic[i] = c.u8()
	}
	h := serverHello{Session: c.u64(), Epoch: c.u64(), KnownSeq: c.u64()}
	if c.err != nil || magic != helloMagic {
		return serverHello{}, fmt.Errorf("serve: bad server hello")
	}
	return h, nil
}
