package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/core"
	"boxes/internal/order"
)

// Config configures a Server. Store is required; the zero value of every
// other field selects a sane production default. The Server does NOT own
// the store's lifecycle — the caller closes it after Shutdown returns, so
// tests and the sweep can inspect the store the server just served.
type Config struct {
	Store *core.SyncStore

	// QueueDepth bounds the write admission queue; a full queue sheds
	// requests with StatusOverload instead of queuing unboundedly.
	// Default 256.
	QueueDepth int
	// BatchMax caps how many queued write requests the batcher coalesces
	// into one ApplyBatch transaction (one WAL commit). Default 32.
	BatchMax int
	// MaxSessions bounds the dedup session table: minting a session past
	// the bound evicts the least-recently-detached idle session, so
	// short-lived clients cannot grow server state without limit.
	// Default 4096.
	MaxSessions int
	// Metrics receives the server's counters and phase histograms
	// (optional; nil gets a private bundle, so metering is always safe).
	Metrics *Metrics
	// WrapConn, when set, wraps every accepted connection — the hook the
	// fault injector uses (see FaultConn). Applied after accept, before
	// the handshake.
	WrapConn func(net.Conn) net.Conn
	// Logf receives connection-level diagnostics (optional).
	Logf func(format string, args ...any)
}

// Server is the gateway: an accept loop, per-connection handlers that
// execute reads inline under the store's read lock, and a single batcher
// goroutine that drains the admission queue into ApplyBatch transactions.
type Server struct {
	cfg   Config
	epoch uint64 // boot identity, exposed in the handshake

	writeQ chan *writeReq
	stopQ  chan struct{} // closed to stop the batcher after a drain

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	sessions map[uint64]*session
	nextSess uint64
	draining atomic.Bool
	closed   bool

	wgConns   sync.WaitGroup // connection handlers
	wgBatcher sync.WaitGroup // the batcher goroutine
}

// connState tracks whether a connection handler is mid-request, so a
// drain can close idle connections (blocked in a frame read) immediately
// while busy ones finish and acknowledge their in-flight op.
type connState struct {
	busy atomic.Bool
}

// session is the dedup state enabling idempotent retries: one outstanding
// op per session, identified by a strictly increasing seq. lastResp is
// replayed verbatim when the client re-sends lastSeq after a lost ack.
// pendingSeq/pendingDone cover the window while a seq is still executing:
// a retry arriving on a fresh connection during that window (the original
// conn died with the op in the admission queue) waits for the outcome
// instead of re-executing it.
type session struct {
	id          uint64
	mu          sync.Mutex
	lastSeq     uint64
	lastResp    *Response
	pendingSeq  uint64        // seq currently executing (0 = none)
	pendingDone chan struct{} // closed when pendingSeq's execute returns

	// Guarded by the server's mu, not sess.mu:
	refs       int   // connections currently attached to this session
	lastActive int64 // UnixNano of the last detach, orders LRU eviction
}

// writeReq is one write admitted to the queue. done is buffered so the
// batcher never blocks completing a request whose conn died.
type writeReq struct {
	ops      []core.Op
	ctx      context.Context
	enqueued time.Time
	opName   string
	done     chan writeDone
}

type writeDone struct {
	results []core.OpResult
	err     error
}

// NewServer builds a server around cfg.Store.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 32
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4096
	}
	if cfg.Metrics == nil {
		// Callers that don't scrape metrics still hit the counters on
		// every path; a private bundle keeps those accesses safe.
		cfg.Metrics = NewMetrics()
	}
	s := &Server{
		cfg:      cfg,
		epoch:    uint64(time.Now().UnixNano()),
		writeQ:   make(chan *writeReq, cfg.QueueDepth),
		stopQ:    make(chan struct{}),
		conns:    make(map[net.Conn]*connState),
		sessions: make(map[uint64]*session),
	}
	cfg.Metrics.queueDepth = func() int { return len(s.writeQ) }
	s.wgBatcher.Add(1)
	go s.batcher()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("serve: server already shut down")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		if s.cfg.WrapConn != nil {
			conn = s.cfg.WrapConn(conn)
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		st := &connState{}
		s.conns[conn] = st
		s.mu.Unlock()
		s.cfg.Metrics.ConnsAccepted.Add(1)
		s.cfg.Metrics.ConnsActive.Add(1)
		s.wgConns.Add(1)
		go s.handleConn(conn, st)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.cfg.Metrics.ConnsActive.Add(-1)
	s.wgConns.Done()
}

// getSession resolves the handshake's session claim: 0 mints a fresh
// session; a known ID resumes it (the dedup path); an unknown non-zero ID
// (e.g. from before a restart) also mints fresh — the old dedup state is
// gone and the epoch change tells the client so. The handler detaches via
// releaseSession when its connection closes.
func (s *Server) getSession(id uint64) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id != 0 {
		if sess, ok := s.sessions[id]; ok {
			sess.refs++
			return sess
		}
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.evictSessionLocked()
	}
	s.nextSess++
	sess := &session{id: s.nextSess, refs: 1}
	s.sessions[sess.id] = sess
	s.cfg.Metrics.Sessions.Add(1)
	return sess
}

// evictSessionLocked drops the least-recently-detached session with no
// attached connection. If every session is attached the table grows past
// the bound rather than break a live session's dedup guarantee.
func (s *Server) evictSessionLocked() {
	var victim *session
	for _, sess := range s.sessions {
		if sess.refs > 0 {
			continue
		}
		if victim == nil || sess.lastActive < victim.lastActive {
			victim = sess
		}
	}
	if victim != nil {
		delete(s.sessions, victim.id)
		s.cfg.Metrics.Sessions.Add(-1)
	}
}

// releaseSession detaches one connection from sess, stamping the detach
// time that orders LRU eviction.
func (s *Server) releaseSession(sess *session) {
	s.mu.Lock()
	sess.refs--
	sess.lastActive = time.Now().UnixNano()
	s.mu.Unlock()
}

func (s *Server) handleConn(conn net.Conn, st *connState) {
	defer s.dropConn(conn)
	hello, err := readClientHello(conn)
	if err != nil {
		s.logf("serve: handshake: %v", err)
		if errors.Is(err, ErrBadFrame) {
			s.cfg.Metrics.BadFrames.Add(1)
		}
		return
	}
	sess := s.getSession(hello.Session)
	defer s.releaseSession(sess)
	sess.mu.Lock()
	known := sess.lastSeq
	sess.mu.Unlock()
	if err := writeServerHello(conn, serverHello{Session: sess.id, Epoch: s.epoch, KnownSeq: known}); err != nil {
		return
	}
	for {
		payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrBadFrame) {
				s.cfg.Metrics.BadFrames.Add(1)
				s.logf("serve: session %d: %v", sess.id, err)
			}
			return
		}
		req, err := decodeRequest(payload)
		if err != nil {
			s.cfg.Metrics.BadFrames.Add(1)
			s.logf("serve: session %d: %v", sess.id, err)
			return
		}
		s.cfg.Metrics.Requests.Add(1)
		st.busy.Store(true)
		resp := s.dispatch(sess, req)
		t0 := time.Now()
		err = writeFrame(conn, encodeResponse(resp))
		st.busy.Store(false)
		if err != nil {
			// The ack is lost but the op's effect stands; the session's
			// dedup entry replays it when the client retries the seq.
			s.logf("serve: session %d: response write: %v", sess.id, err)
			return
		}
		s.cfg.Metrics.observePhase(OpName(req.Op), phaseRespond, time.Since(t0))
		if s.draining.Load() {
			// The in-flight op is acknowledged; nothing more is accepted
			// on this connection, so close it rather than waiting for the
			// client to notice the drain.
			return
		}
	}
}

// dispatch routes one request: dedup check, then read-inline or
// write-through-queue, recording the session's last response on the way
// out so a re-sent seq replays instead of re-applying.
func (s *Server) dispatch(sess *session, req *Request) *Response {
	var myDone chan struct{}
	if req.Seq != 0 {
		for {
			sess.mu.Lock()
			if req.Seq == sess.lastSeq && sess.lastResp != nil {
				resp := sess.lastResp
				sess.mu.Unlock()
				return resp
			}
			if req.Seq < sess.lastSeq {
				sess.mu.Unlock()
				return &Response{Seq: req.Seq, Status: StatusBadRequest,
					Msg: fmt.Sprintf("seq %d below session high-water %d", req.Seq, sess.lastSeq)}
			}
			if sess.pendingSeq == req.Seq {
				// The seq is executing on another connection: the original
				// conn died with the op still queued and the client
				// reconnected and re-sent. Adopt that execution's outcome —
				// running it again here would double-apply the write.
				wait := sess.pendingDone
				sess.mu.Unlock()
				<-wait
				continue // replay from lastResp, or re-execute if it was shed
			}
			myDone = make(chan struct{})
			sess.pendingSeq = req.Seq
			sess.pendingDone = myDone
			sess.mu.Unlock()
			break
		}
	}

	resp := s.execute(req)

	if req.Seq != 0 {
		sess.mu.Lock()
		// Not-applied rejections (shed, queued-deadline, draining) must
		// stay OUT of the dedup slot: the client retries them with the
		// SAME seq, and a recorded rejection would replay forever even
		// after the queue drained.
		if req.Seq > sess.lastSeq && seqSettled(resp.Status) {
			sess.lastSeq = req.Seq
			sess.lastResp = resp
		}
		if sess.pendingDone == myDone {
			sess.pendingSeq = 0
			sess.pendingDone = nil
		}
		sess.mu.Unlock()
		close(myDone)
	}
	return resp
}

// seqSettled reports whether a response settles its sequence number: the
// op was applied (OK) or failed definitively. Overload, queued-deadline,
// and draining rejections left the op un-applied, and the client re-sends
// the same seq expecting a fresh execution.
func seqSettled(status uint8) bool {
	switch status {
	case StatusOverload, StatusDeadline, StatusDraining:
		return false
	}
	return true
}

func (s *Server) execute(req *Request) *Response {
	// Draining rejects every NEW request (reads too — the conn should go
	// away); retried seqs of already-applied ops never reach here, they
	// replay from the dedup cache in dispatch.
	if s.draining.Load() {
		s.cfg.Metrics.Drained.Add(1)
		return &Response{Seq: req.Seq, Status: StatusDraining, Msg: "server is draining"}
	}
	ctx := context.Background()
	var cancel context.CancelFunc
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case OpLookup:
		label, err := s.cfg.Store.Lookup(req.LID)
		if err != nil {
			return errResponse(req.Seq, err)
		}
		return &Response{Seq: req.Seq, Status: StatusOK, Label: label}
	case OpCompare:
		cmp, err := s.cfg.Store.Compare(req.A, req.B)
		if err != nil {
			return errResponse(req.Seq, err)
		}
		return &Response{Seq: req.Seq, Status: StatusOK, Cmp: int8(cmp)}
	case OpInsert, OpInsertFirst, OpDeleteElement, OpDeleteSubtree, OpBatch:
		return s.executeWrite(ctx, req)
	default:
		return &Response{Seq: req.Seq, Status: StatusBadRequest, Msg: fmt.Sprintf("unknown opcode %d", req.Op)}
	}
}

// toCoreOps maps the wire request to core batch ops.
func toCoreOps(req *Request) ([]core.Op, error) {
	one := func(op uint8, lid order.LID, elem order.ElemLIDs) (core.Op, error) {
		switch op {
		case OpInsert:
			return core.Op{Kind: core.OpInsertBefore, LID: lid}, nil
		case OpInsertFirst:
			return core.Op{Kind: core.OpInsertFirst}, nil
		case OpDeleteElement:
			return core.Op{Kind: core.OpDeleteElement, Elem: elem}, nil
		case OpDeleteSubtree:
			return core.Op{Kind: core.OpDeleteSubtree, Elem: elem}, nil
		default:
			return core.Op{}, fmt.Errorf("opcode %d not allowed in a write batch", op)
		}
	}
	if req.Op != OpBatch {
		op, err := one(req.Op, req.LID, req.Elem)
		if err != nil {
			return nil, err
		}
		return []core.Op{op}, nil
	}
	ops := make([]core.Op, len(req.Batch))
	for i, b := range req.Batch {
		op, err := one(b.Op, b.LID, b.Elem)
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return ops, nil
}

// executeWrite admits the request to the bounded write queue and waits
// for the batcher to commit it. A full queue sheds immediately; a server
// mid-drain rejects; a deadline that expires while queued cancels before
// any op runs (the batcher re-checks ctx at pickup).
func (s *Server) executeWrite(ctx context.Context, req *Request) *Response {
	ops, err := toCoreOps(req)
	if err != nil {
		return &Response{Seq: req.Seq, Status: StatusBadRequest, Msg: err.Error()}
	}
	wr := &writeReq{
		ops:      ops,
		ctx:      ctx,
		enqueued: time.Now(),
		opName:   OpName(req.Op),
		done:     make(chan writeDone, 1),
	}
	select {
	case s.writeQ <- wr:
	default:
		s.cfg.Metrics.Shed.Add(1)
		return &Response{Seq: req.Seq, Status: StatusOverload, Msg: "write queue full"}
	}
	d := <-wr.done
	if d.err != nil {
		if errors.Is(d.err, context.DeadlineExceeded) || errors.Is(d.err, context.Canceled) {
			s.cfg.Metrics.Deadline.Add(1)
			return &Response{Seq: req.Seq, Status: StatusDeadline, Msg: "deadline expired while queued"}
		}
		return errResponse(req.Seq, d.err)
	}
	return okWriteResponse(req, d.results)
}

func okWriteResponse(req *Request, results []core.OpResult) *Response {
	resp := &Response{Seq: req.Seq, Status: StatusOK}
	if req.Op == OpBatch {
		resp.Batch = make([]BatchResult, len(results))
		for i, r := range results {
			resp.Batch[i].Elem = r.Elem
		}
		return resp
	}
	if len(results) == 1 {
		resp.Elem = results[0].Elem
	}
	return resp
}

func errResponse(seq uint64, err error) *Response {
	status := StatusError
	switch {
	case errors.Is(err, order.ErrUnknownLID):
		status = StatusUnknownLID
	case errors.Is(err, core.ErrReadOnly):
		status = StatusReadOnly
	}
	return &Response{Seq: seq, Status: status, Msg: err.Error()}
}

// batcher is the single consumer of the write queue: it blocks for one
// request, greedily drains up to BatchMax-1 more without blocking, drops
// the ones whose deadline expired while queued, and commits the rest as
// ONE ApplyBatch transaction — the group-commit path with batching done
// before the WAL, not after. On a batch failure it degrades to per-request
// application so one poisoned request cannot fail its neighbors.
func (s *Server) batcher() {
	defer s.wgBatcher.Done()
	for {
		var first *writeReq
		select {
		case first = <-s.writeQ:
		case <-s.stopQ:
			// Drain stragglers admitted before the queue stopped.
			for {
				select {
				case wr := <-s.writeQ:
					s.commitGroup([]*writeReq{wr})
				default:
					return
				}
			}
		}
		group := []*writeReq{first}
		for len(group) < s.cfg.BatchMax {
			select {
			case wr := <-s.writeQ:
				group = append(group, wr)
			default:
				goto collected
			}
		}
	collected:
		s.commitGroup(group)
	}
}

// commitGroup applies a group of admitted requests. Deadlines are checked
// exactly here — after the queue, before any op runs; past this point the
// batch commits regardless of request contexts (never cancel
// mid-WAL-commit).
func (s *Server) commitGroup(group []*writeReq) {
	live := group[:0]
	now := time.Now()
	for _, wr := range group {
		s.cfg.Metrics.observePhase(wr.opName, phaseQueue, now.Sub(wr.enqueued))
		if err := wr.ctx.Err(); err != nil {
			wr.done <- writeDone{err: err}
			continue
		}
		live = append(live, wr)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		s.commitOne(live[0])
		return
	}
	ops := make([]core.Op, 0, len(live)*2)
	owner := make([]int, 0, cap(ops)) // ops index -> live index
	for i, wr := range live {
		for range wr.ops {
			owner = append(owner, i)
		}
		ops = append(ops, wr.ops...)
	}
	t0 := time.Now()
	results, err := s.cfg.Store.ApplyBatch(ops)
	if err == nil {
		d := time.Since(t0)
		off := 0
		for _, wr := range live {
			s.cfg.Metrics.observePhase(wr.opName, phaseApply, d)
			wr.done <- writeDone{results: results[off : off+len(wr.ops)]}
			off += len(wr.ops)
		}
		return
	}
	// One request's op failed (or the commit itself did): re-run each
	// request as its own transaction so only the guilty one fails. The
	// aborted combined batch left no durable state, so this is safe.
	var be *core.BatchError
	if !errors.As(err, &be) {
		// Commit-level failure (fault, read-only): everyone gets the truth.
		for _, wr := range live {
			wr.done <- writeDone{err: err}
		}
		return
	}
	for _, wr := range live {
		s.commitOne(wr)
	}
}

// commitOne applies a single request as its own transaction.
func (s *Server) commitOne(wr *writeReq) {
	t0 := time.Now()
	results, err := s.cfg.Store.ApplyBatchCtx(wr.ctx, wr.ops)
	s.cfg.Metrics.observePhase(wr.opName, phaseApply, time.Since(t0))
	var be *core.BatchError
	if errors.As(err, &be) {
		err = be.Err
	}
	wr.done <- writeDone{results: results, err: err}
}

// Shutdown drains gracefully: stop accepting, reject new work with
// StatusDraining, let every admitted (acknowledgeable) op commit and its
// response flush, then stop the batcher and close idle connections. The
// ctx deadline is the hard escape hatch: when it fires, remaining
// connections are force-closed. The store itself is NOT closed (the
// caller owns it); its group committer drains on store Close.
func (s *Server) Shutdown(ctx context.Context) error {
	start := time.Now()
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("serve: already shut down")
	}
	s.mu.Lock()
	l := s.listener
	s.closed = true
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	// Close idle connections immediately (their handlers are blocked in a
	// frame read with no op in flight — nothing is lost). Busy handlers
	// finish their op, flush the ack, see the draining flag, and exit. A
	// conn that turns busy in the instant before Close loses only an
	// unacknowledged request, which the contract already leaves atomic.
	s.mu.Lock()
	for conn, st := range s.conns {
		if !st.busy.Load() {
			conn.Close()
		}
	}
	s.mu.Unlock()

	// Wait for handlers under the hard deadline.
	done := make(chan struct{})
	go func() {
		s.wgConns.Wait()
		close(done)
	}()
	var hardStop error
	select {
	case <-done:
	case <-ctx.Done():
		hardStop = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}

	// No producers remain; stop the batcher (it drains stragglers).
	close(s.stopQ)
	s.wgBatcher.Wait()
	s.cfg.Metrics.DrainNanos.Store(int64(time.Since(start)))
	return hardStop
}
