package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"boxes/internal/faults"
	"boxes/internal/order"
)

// Typed client-visible failures. ErrOverload wraps faults.ErrTransient so
// the retrier backs off and re-sends; the rest are permanent for retry
// purposes.
var (
	// ErrOverload reports a shed request: the server's admission queue
	// was full. Transient — retried with backoff.
	ErrOverload = fmt.Errorf("serve: server overloaded: %w", faults.ErrTransient)
	// ErrDraining reports a server mid-graceful-drain; the client should
	// go away, not retry.
	ErrDraining = errors.New("serve: server is draining")
	// ErrDeadlineExpired reports a request whose deadline expired while
	// queued server-side; the op was NOT applied.
	ErrDeadlineExpired = errors.New("serve: deadline expired server-side; op not applied")
	// ErrReadOnly reports a store in read-only degraded mode.
	ErrReadOnly = errors.New("serve: store is read-only (degraded)")
	// ErrServerRestarted reports an epoch change on reconnect: the
	// session's dedup state is gone, so the in-flight op's outcome is
	// unknown (though atomic: fully present or fully absent). The client
	// has already adopted the new epoch — subsequent calls proceed.
	ErrServerRestarted = errors.New("serve: server restarted; in-flight op outcome unknown")
)

// ClientOptions tunes a Client. Zero values mean: no per-op timeout,
// DefaultRetryPolicy, net.Dial.
type ClientOptions struct {
	// Timeout is the per-op deadline applied when the caller's ctx has
	// none. It rides the wire (the server cancels the op while queued)
	// and bounds each attempt's conn I/O.
	Timeout time.Duration
	// Retry bounds the reconnect/re-send loop around transient failures
	// (conn drops, shed requests).
	Retry *faults.RetryPolicy
	// Dial overrides the transport (tests wrap conns in FaultConn here).
	Dial func() (net.Conn, error)
}

// Client is a connection to one Server with automatic reconnect and
// idempotent retries: every op carries a session-scoped sequence number,
// so re-sending after a lost ack is exactly-once within a server
// lifetime. A Client serializes its ops (one outstanding request);
// concurrency comes from multiple Clients.
type Client struct {
	addr    string
	opts    ClientOptions
	retrier *faults.Retrier

	mu      sync.Mutex
	conn    net.Conn
	session uint64
	epoch   uint64
	seq     uint64
}

// Dial connects and performs the handshake eagerly so configuration
// errors surface immediately.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	policy := faults.DefaultRetryPolicy()
	if opts.Retry != nil {
		policy = *opts.Retry
	}
	c := &Client{addr: addr, opts: opts, retrier: faults.NewRetrier(policy)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Session returns the server-granted session ID.
func (c *Client) Session() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Epoch returns the server boot epoch observed at the last handshake.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Close tears down the connection. The session lives on server-side; a
// future Dial cannot resume it (sessions are per-Client).
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// ensureConn dials and handshakes if the connection is down. Caller holds
// c.mu. An epoch change fails the call with ErrServerRestarted but leaves
// the client on the fresh session, so the next op proceeds.
func (c *Client) ensureConn() (net.Conn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	dial := c.opts.Dial
	if dial == nil {
		dial = func() (net.Conn, error) { return net.Dial("tcp", c.addr) }
	}
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w: %w", c.addr, faults.ErrTransient, err)
	}
	if err := writeClientHello(conn, clientHello{Session: c.session, LastSeq: c.seq}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake send: %w: %w", faults.ErrTransient, err)
	}
	hello, err := readServerHello(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake recv: %w: %w", faults.ErrTransient, err)
	}
	restarted := c.epoch != 0 && hello.Epoch != c.epoch
	c.session = hello.Session
	c.epoch = hello.Epoch
	if restarted {
		// The dedup table died with the old epoch; the in-flight seq can
		// no longer be settled. Adopt the fresh session and report.
		c.conn = conn
		return nil, ErrServerRestarted
	}
	c.conn = conn
	return conn, nil
}

func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// call runs one request through the retry loop: transient failures (conn
// drops, overload sheds) reconnect and re-send the SAME seq, which the
// server's session dedup makes exactly-once.
func (c *Client) call(ctx context.Context, req *Request) (*Response, error) {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	c.mu.Lock()
	c.seq++
	req.Seq = c.seq
	c.mu.Unlock()

	var resp *Response
	_, err := c.retrier.DoCtx(ctx, func() error {
		r, aerr := c.attempt(ctx, req)
		if aerr != nil {
			return aerr
		}
		resp = r
		return nil
	})
	if err != nil {
		var ex *faults.ExhaustedError
		if errors.As(err, &ex) {
			return nil, fmt.Errorf("serve: %s seq %d: %w", OpName(req.Op), req.Seq, err)
		}
		return nil, err
	}
	return resp, nil
}

// attempt performs one send/receive round trip, classifying failures for
// the retrier.
func (c *Client) attempt(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.ensureConn()
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			// A sub-millisecond (or spent) budget must still ride the
			// wire as a deadline — 0 means "none" to the server.
			ms = 1
		} else if ms > math.MaxUint32 {
			ms = math.MaxUint32
		}
		req.DeadlineMS = uint32(ms)
	} else {
		// Clear whatever deadline a previous call left on this conn, or
		// an undeadlined call fails spuriously once it passes.
		conn.SetDeadline(time.Time{})
		req.DeadlineMS = 0
	}
	if err := writeFrame(conn, encodeRequest(req)); err != nil {
		c.dropConn()
		return nil, fmt.Errorf("serve: send: %w: %w", faults.ErrTransient, err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		// Includes lost acks: the op may have applied. Reconnecting and
		// re-sending the same seq settles it via the dedup table.
		c.dropConn()
		return nil, fmt.Errorf("serve: recv: %w: %w", faults.ErrTransient, err)
	}
	resp, err := decodeResponse(payload)
	if err != nil {
		c.dropConn()
		return nil, fmt.Errorf("serve: %w: %w", faults.ErrTransient, err)
	}
	if resp.Seq != req.Seq {
		c.dropConn()
		return nil, fmt.Errorf("serve: response seq %d for request %d: %w", resp.Seq, req.Seq, faults.ErrTransient)
	}
	switch resp.Status {
	case StatusOK:
		return resp, nil
	case StatusOverload:
		return nil, ErrOverload
	case StatusDeadline:
		return nil, ErrDeadlineExpired
	case StatusDraining:
		return nil, ErrDraining
	case StatusUnknownLID:
		return nil, fmt.Errorf("serve: %s: %w", resp.Msg, order.ErrUnknownLID)
	case StatusReadOnly:
		return nil, fmt.Errorf("%w: %s", ErrReadOnly, resp.Msg)
	default:
		return nil, fmt.Errorf("serve: %s failed (%s): %s", OpName(req.Op), statusName(resp.Status), resp.Msg)
	}
}

// Insert inserts one element immediately before the tag at lid.
func (c *Client) Insert(ctx context.Context, lid order.LID) (order.ElemLIDs, error) {
	resp, err := c.call(ctx, &Request{Op: OpInsert, LID: lid})
	if err != nil {
		return order.ElemLIDs{}, err
	}
	return resp.Elem, nil
}

// InsertFirst bootstraps an empty document.
func (c *Client) InsertFirst(ctx context.Context) (order.ElemLIDs, error) {
	resp, err := c.call(ctx, &Request{Op: OpInsertFirst})
	if err != nil {
		return order.ElemLIDs{}, err
	}
	return resp.Elem, nil
}

// DeleteElement removes both labels of e.
func (c *Client) DeleteElement(ctx context.Context, e order.ElemLIDs) error {
	_, err := c.call(ctx, &Request{Op: OpDeleteElement, Elem: e})
	return err
}

// DeleteSubtree removes e and all its descendants.
func (c *Client) DeleteSubtree(ctx context.Context, e order.ElemLIDs) error {
	_, err := c.call(ctx, &Request{Op: OpDeleteSubtree, Elem: e})
	return err
}

// Lookup reads the current label of lid.
func (c *Client) Lookup(ctx context.Context, lid order.LID) (order.Label, error) {
	resp, err := c.call(ctx, &Request{Op: OpLookup, LID: lid})
	if err != nil {
		return 0, err
	}
	return resp.Label, nil
}

// Compare orders two tags by document position (-1, 0, +1).
func (c *Client) Compare(ctx context.Context, a, b order.LID) (int, error) {
	resp, err := c.call(ctx, &Request{Op: OpCompare, A: a, B: b})
	if err != nil {
		return 0, err
	}
	return int(resp.Cmp), nil
}

// Batch applies several write ops as one atomic server-side transaction.
func (c *Client) Batch(ctx context.Context, ops []BatchOp) ([]BatchResult, error) {
	resp, err := c.call(ctx, &Request{Op: OpBatch, Batch: ops})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}
