package serve

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"boxes/internal/core"
	"boxes/internal/faults"
	"boxes/internal/fsck"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// sweepOracle is the client-side ground truth of one sweep round: the
// elements acked live, in document order, plus the acked deletes.
type sweepOracle struct {
	live    []order.ElemLIDs
	deleted []order.ElemLIDs
}

// runSweepOps drives a deterministic insert/delete/lookup mix through c,
// recording every acknowledged mutation in the oracle. Every op either
// acks (and enters the oracle) or fails the round.
func runSweepOps(t *testing.T, c *Client, root order.ElemLIDs, nops int, seed int64) *sweepOracle {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	o := &sweepOracle{}
	for i := 0; i < nops; i++ {
		switch {
		case len(o.live) > 4 && rng.Intn(100) < 20: // delete
			idx := rng.Intn(len(o.live))
			e := o.live[idx]
			if err := c.DeleteElement(ctx, e); err != nil {
				t.Fatalf("sweep op %d (delete): %v", i, err)
			}
			o.live = append(o.live[:idx], o.live[idx+1:]...)
			o.deleted = append(o.deleted, e)
		case len(o.live) > 0 && rng.Intn(100) < 20: // lookup
			idx := rng.Intn(len(o.live))
			if _, err := c.Lookup(ctx, o.live[idx].Start); err != nil {
				t.Fatalf("sweep op %d (lookup): %v", i, err)
			}
		default: // insert at a random position among the live siblings
			target := root.End
			idx := len(o.live)
			if len(o.live) > 0 && rng.Intn(2) == 0 {
				idx = rng.Intn(len(o.live))
				target = o.live[idx].Start
			}
			e, err := c.Insert(ctx, target)
			if err != nil {
				t.Fatalf("sweep op %d (insert): %v", i, err)
			}
			o.live = append(o.live, order.ElemLIDs{})
			copy(o.live[idx+1:], o.live[idx:])
			o.live[idx] = e
		}
	}
	return o
}

// verifyOracle checks the server's document against the oracle over a
// fresh connection: every acked-live element present with start before
// end, sibling order exactly the oracle's, every acked-deleted element
// gone (its LID either unknown or reused by a live acked element — the
// labeler recycles deleted slots), and the store's label count exactly
// 2*(live+1) — exactly-once, no ghosts.
func verifyOracle(t *testing.T, env *testEnv, root order.ElemLIDs, o *sweepOracle) {
	t.Helper()
	ctx := context.Background()
	retry := faults.DefaultRetryPolicy()
	retry.MaxAttempts = 10
	// The verify conn goes through the same (possibly fault-wrapped)
	// listener; the eager handshake has no retry loop of its own.
	var c *Client
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		c, err = Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Retry: &retry})
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("verify dial: %v", err)
	}
	defer c.Close()
	for i, e := range o.live {
		if cmp, err := c.Compare(ctx, e.Start, e.End); err != nil || cmp != -1 {
			t.Fatalf("live elem %d: start/end order %d, %v", i, cmp, err)
		}
		if i > 0 {
			prev := o.live[i-1]
			if cmp, err := c.Compare(ctx, prev.Start, e.Start); err != nil || cmp != -1 {
				t.Fatalf("sibling order broken at %d: %d, %v", i, cmp, err)
			}
		}
	}
	liveLIDs := map[order.LID]bool{root.Start: true, root.End: true}
	for _, e := range o.live {
		liveLIDs[e.Start] = true
		liveLIDs[e.End] = true
	}
	for i, e := range o.deleted {
		if _, err := c.Lookup(ctx, e.Start); err == nil {
			if !liveLIDs[e.Start] {
				t.Fatalf("deleted elem %d still present (LID %d not reused)", i, e.Start)
			}
		} else if !errors.Is(err, order.ErrUnknownLID) {
			t.Fatalf("deleted elem %d: lookup: %v", i, err)
		}
	}
	want := uint64(2 * (len(o.live) + 1))
	if got := env.store.Count(); got != want {
		t.Fatalf("store count %d; want %d (exactly-once violated)", got, want)
	}
}

// Client-side connection faults at every protocol write point: for each
// write ordinal k, one round crashes the client's connection exactly at
// its k-th write — cleanly and with a torn (partial) frame — and the
// retry/dedup path must still land every op exactly once.
func TestSweepClientConnFaults(t *testing.T) {
	const nops = 30
	for _, torn := range []bool{false, true} {
		for k := 1; k <= 10; k++ {
			env := startEnv(t, envOptions{})
			sched := faults.NewSchedule(int64(100 + k))
			sched.CrashAtWrite(k, torn)
			var usedFault atomic.Bool
			dial := func() (net.Conn, error) {
				conn, err := net.Dial("tcp", env.addr)
				if err != nil {
					return nil, err
				}
				// Only the first connection is fault-wrapped: the round
				// injects one fault at one write point, then the client's
				// recovery runs on a clean transport.
				if !usedFault.Swap(true) {
					return NewFaultConn(conn, sched), nil
				}
				return conn, nil
			}
			c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Dial: dial})
			if err != nil {
				// The fault fired inside the eager handshake (small k).
				// Reconnecting — now on a clean transport — must succeed.
				c, err = Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Dial: dial})
				if err != nil {
					t.Fatalf("k=%d torn=%v: redial after handshake fault: %v", k, torn, err)
				}
			}
			root, err := c.InsertFirst(context.Background())
			if err != nil {
				t.Fatalf("k=%d torn=%v: root: %v", k, torn, err)
			}
			o := runSweepOps(t, c, root, nops, int64(k))
			c.Close()
			verifyOracle(t, env, root, o)
			env.shutdown()
			fsckPath(t, env.path)
		}
	}
}

// Server-side faults: stalls, byte corruption, and connection kills on
// the server's response writes (lost acks). The client's re-send of the
// same sequence number must replay from the dedup table, never
// re-applying.
func TestSweepServerConnFaults(t *testing.T) {
	const nops = 30
	cases := []struct {
		name string
		mode faults.Mode
		k    int
	}{
		{"stall-every-2", faults.ModeTransient, 2},
		{"corrupt-every-3", faults.ModePermanent, 3},
		{"corrupt-every-5", faults.ModePermanent, 5},
		{"kill-every-5", faults.ModeCrash, 5},
		{"kill-every-7", faults.ModeCrash, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := faults.NewSchedule(7)
			sched.FailEveryKth(tc.k, tc.mode, faults.OpWrite)
			env := startEnv(t, envOptions{
				wrapConn: func(conn net.Conn) net.Conn {
					fc := NewFaultConn(conn, sched)
					fc.Stall = time.Millisecond
					return fc
				},
			})
			retry := faults.DefaultRetryPolicy()
			retry.MaxAttempts = 8
			c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second, Retry: &retry})
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			root, err := c.InsertFirst(context.Background())
			if err != nil {
				t.Fatalf("root: %v", err)
			}
			o := runSweepOps(t, c, root, nops, 99)
			c.Close()
			verifyOracle(t, env, root, o)
			env.shutdown()
			fsckPath(t, env.path)
		})
	}
}

// A mid-run power cut on the server's disk: acked ops must all survive
// recovery, the at-most-one in-flight unacked op must be atomic (fully
// present or fully absent), and the store must be fsck-clean.
func TestSweepPowerCut(t *testing.T) {
	for _, crashAt := range []int{10, 25, 40, 55} {
		cc := pager.NewCrashController(crashAt, true)
		env := startEnv(t, envOptions{crash: cc})
		c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("crashAt=%d: dial: %v", crashAt, err)
		}
		ctx := context.Background()
		root, rootErr := c.InsertFirst(ctx)
		var acked []order.ElemLIDs
		if rootErr == nil {
			for i := 0; i < 60; i++ {
				e, err := c.Insert(ctx, root.End)
				if err != nil {
					break // the power cut fired mid-op
				}
				acked = append(acked, e)
			}
		}
		c.Close()
		if !cc.Crashed() {
			env.shutdown()
			t.Fatalf("crashAt=%d: power cut never fired (only %d writes)", crashAt, cc.Writes())
		}
		// Tear the server down; the store is dead (poisoned backend), so
		// Close errors are expected and ignored.
		shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		env.srv.Shutdown(shutCtx)
		cancel()
		<-env.done
		env.store.Close()

		// Offline check, then recovery.
		fsckPath(t, env.path)
		fb, err := pager.OpenFile(env.path)
		if err != nil {
			t.Fatalf("crashAt=%d: reopen: %v", crashAt, err)
		}
		st, err := core.OpenExisting(fb, core.Options{})
		if rootErr != nil {
			// The cut predated even the root commit: an empty (or absent)
			// store is the only acceptable state.
			if err != nil && !errors.Is(err, core.ErrNoSavedStore) {
				t.Fatalf("crashAt=%d: open after pre-root crash: %v", crashAt, err)
			}
			if err == nil && st.Count() > 2 {
				t.Fatalf("crashAt=%d: %d labels despite no acked ops", crashAt, st.Count())
			}
			fb.Close()
			continue
		}
		if err != nil {
			t.Fatalf("crashAt=%d: open existing: %v", crashAt, err)
		}
		// Acked => present.
		for i, e := range acked {
			if _, err := st.Lookup(e.Start); err != nil {
				t.Fatalf("crashAt=%d: acked insert %d/%d lost: %v", crashAt, i, len(acked), err)
			}
			if _, err := st.Lookup(e.End); err != nil {
				t.Fatalf("crashAt=%d: acked insert %d end lost: %v", crashAt, i, err)
			}
		}
		// Document order preserved across recovery.
		for i := 1; i < len(acked); i++ {
			if cmp, err := st.Compare(acked[i-1].Start, acked[i].Start); err != nil || cmp != -1 {
				t.Fatalf("crashAt=%d: order broken at %d: %d, %v", crashAt, i, cmp, err)
			}
		}
		// Unacked => atomic: the only permissible extra is the single
		// in-flight insert (2 labels), fully present or fully absent.
		minWant := uint64(2 * (len(acked) + 1))
		got := st.Count()
		if got != minWant && got != minWant+2 {
			t.Fatalf("crashAt=%d: count %d; want %d or %d (atomicity violated)",
				crashAt, got, minWant, minWant+2)
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("crashAt=%d: invariants after recovery: %v", crashAt, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("crashAt=%d: close after recovery: %v", crashAt, err)
		}
	}
}

// fsckPath asserts the on-disk store is clean (no structural errors).
func fsckPath(t *testing.T, path string) {
	t.Helper()
	rep, err := fsck.Check(path, fsck.Options{})
	if err != nil {
		t.Fatalf("fsck %s: %v", path, err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck %s: %d problems: %+v", path, len(rep.Problems), rep.Problems)
	}
}
