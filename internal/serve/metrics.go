package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/obs"
)

// rpcPhase partitions one request's server-side wall time. queue is the
// wait in the admission queue before the batcher picked the op up, apply
// is ApplyBatch including the group-commit durability wait (the ack
// cannot precede it), respond is the response frame write.
type rpcPhase int

const (
	phaseQueue rpcPhase = iota
	phaseApply
	phaseRespond
	numRPCPhases
)

func (p rpcPhase) String() string {
	switch p {
	case phaseQueue:
		return "queue"
	case phaseApply:
		return "apply"
	case phaseRespond:
		return "respond"
	}
	return "unknown"
}

// Metrics aggregates the server's robustness counters and per-RPC phase
// latency histograms. All methods are safe for concurrent use and
// nil-receiver-safe (an unmetered server costs only nil checks).
type Metrics struct {
	ConnsAccepted atomic.Uint64
	ConnsActive   atomic.Int64
	Requests      atomic.Uint64
	Shed          atomic.Uint64 // overload rejections
	Deadline      atomic.Uint64 // requests expired while queued
	Drained       atomic.Uint64 // requests rejected while draining
	BadFrames     atomic.Uint64 // CRC/framing violations (conns dropped)
	Sessions      atomic.Int64
	DrainNanos    atomic.Int64 // duration of the last graceful drain

	queueDepth func() int // live admission-queue depth, set by the server

	mu     sync.Mutex
	phases map[string]*[numRPCPhases]*obs.DurHist // per-opcode phase rows
}

// NewMetrics returns an empty metrics bundle.
func NewMetrics() *Metrics {
	return &Metrics{phases: make(map[string]*[numRPCPhases]*obs.DurHist)}
}

// observePhase records d under the op's phase histogram row.
func (m *Metrics) observePhase(op string, p rpcPhase, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	row := m.phases[op]
	if row == nil {
		row = new([numRPCPhases]*obs.DurHist)
		for i := range row {
			row[i] = obs.NewDurHist()
		}
		m.phases[op] = row
	}
	m.mu.Unlock()
	row[p].Observe(d)
}

// PhaseSnapshot returns the phase histogram for one opcode row, or zero
// snapshots when the row has no observations yet.
func (m *Metrics) PhaseSnapshot(op string) [numRPCPhases]obs.HistSnapshot {
	var out [numRPCPhases]obs.HistSnapshot
	if m == nil {
		return out
	}
	m.mu.Lock()
	row := m.phases[op]
	m.mu.Unlock()
	if row == nil {
		return out
	}
	for i := range row {
		out[i] = row[i].Snapshot()
	}
	return out
}

// CollectGauges implements obs.Collector: the server's health gauges,
// scraped through the store registry's /metrics endpoint.
func (m *Metrics) CollectGauges() []obs.GaugeValue {
	if m == nil {
		return nil
	}
	gs := []obs.GaugeValue{
		obs.G("serve_conns_accepted", "Connections accepted since start.", float64(m.ConnsAccepted.Load())),
		obs.G("serve_conns_active", "Connections currently open.", float64(m.ConnsActive.Load())),
		obs.G("serve_requests_total", "Requests decoded (all opcodes).", float64(m.Requests.Load())),
		obs.G("serve_shed_total", "Write requests shed with an overload status (queue full).", float64(m.Shed.Load())),
		obs.G("serve_deadline_expired_total", "Write requests whose deadline expired while queued.", float64(m.Deadline.Load())),
		obs.G("serve_drain_rejected_total", "Requests rejected because the server was draining.", float64(m.Drained.Load())),
		obs.G("serve_bad_frames_total", "Frames dropped for CRC or framing violations.", float64(m.BadFrames.Load())),
		obs.G("serve_sessions", "Live sessions in the dedup table.", float64(m.Sessions.Load())),
	}
	if qd := m.queueDepth; qd != nil {
		gs = append(gs, obs.G("serve_queue_depth", "Write requests waiting in the admission queue.", float64(qd())))
	}
	if d := m.DrainNanos.Load(); d > 0 {
		gs = append(gs, obs.G("serve_drain_seconds", "Duration of the last graceful drain.", time.Duration(d).Seconds()))
	}
	m.mu.Lock()
	ops := make([]string, 0, len(m.phases))
	for op := range m.phases {
		ops = append(ops, op)
	}
	m.mu.Unlock()
	for _, op := range ops {
		snap := m.PhaseSnapshot(op)
		for p, h := range snap {
			if h.Total() == 0 {
				continue
			}
			// Op names use '-' (delete-element); metric names must not.
			name := "serve_rpc_" + strings.ReplaceAll(op, "-", "_") + "_" + rpcPhase(p).String()
			gs = append(gs,
				obs.G(name+"_count", "Requests observed in this RPC phase row.", float64(h.Total())),
				obs.G(name+"_p50_seconds", "Median latency of this RPC phase.", time.Duration(h.Quantile(0.50)).Seconds()),
				obs.G(name+"_p99_seconds", "99th percentile latency of this RPC phase.", time.Duration(h.Quantile(0.99)).Seconds()),
			)
		}
	}
	return gs
}
