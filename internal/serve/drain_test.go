package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"boxes/internal/order"
)

// The graceful-drain contract under concurrent load (run with -race):
// clients hammer inserts while the server is told to drain mid-batch;
// every op acknowledged before or during the drain must be present in the
// store afterwards (zero acked-op loss), the drain must finish within its
// hard deadline, and the committer must shut down cleanly (store Close
// succeeds, invariants hold).
func TestDrainUnderConcurrentLoad(t *testing.T) {
	env := startEnv(t, envOptions{batchMax: 8})
	ctx := context.Background()

	setup, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	root, err := setup.InsertFirst(ctx)
	if err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const workers = 6
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked []order.ElemLIDs
	)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(env.addr, ClientOptions{Timeout: 5 * time.Second})
			if err != nil {
				return // drain may already have closed the listener
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, err := c.Insert(context.Background(), root.End)
				if err != nil {
					// Any failure during a drain means the op was NOT
					// acknowledged; it must simply be atomic, which the
					// sweep checks. Here we only track acks.
					if errors.Is(err, ErrDraining) || loadStop(err) {
						return
					}
					return
				}
				ackMu.Lock()
				acked = append(acked, e)
				ackMu.Unlock()
			}
		}()
	}

	// Let the load build, then pull the plug mid-flight.
	time.Sleep(150 * time.Millisecond)
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	start := time.Now()
	err = env.srv.Shutdown(shutCtx)
	drainTook := time.Since(start)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("drain hit the hard deadline after %v: %v", drainTook, err)
	}
	if serveErr := <-env.done; serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}

	// Zero acked-op loss: every acknowledged element is present with both
	// labels, and sibling order is consistent.
	ackMu.Lock()
	got := append([]order.ElemLIDs(nil), acked...)
	ackMu.Unlock()
	if len(got) == 0 {
		t.Fatal("no ops were acknowledged before the drain; test proves nothing")
	}
	for i, e := range got {
		if _, err := env.store.Lookup(e.Start); err != nil {
			t.Fatalf("acked op %d/%d lost: start LID %d: %v", i, len(got), e.Start, err)
		}
		if _, err := env.store.Lookup(e.End); err != nil {
			t.Fatalf("acked op %d/%d lost: end LID %d: %v", i, len(got), e.End, err)
		}
		if cmp, err := env.store.Compare(e.Start, e.End); err != nil || cmp != -1 {
			t.Fatalf("acked op %d: start/end order broken: %d, %v", i, cmp, err)
		}
	}

	// Clean committer shutdown: the store closes without error and the
	// structure is intact.
	if err := env.store.CheckInvariants(); err != nil {
		t.Fatalf("invariants after drain: %v", err)
	}
	if err := env.store.Close(); err != nil {
		t.Fatalf("store close after drain: %v", err)
	}
}
