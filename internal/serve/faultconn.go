package serve

import (
	"net"
	"time"

	"boxes/internal/faults"
)

// FaultConn wraps a net.Conn and consults a faults.Schedule before every
// Write, mapping the storage-fault vocabulary onto connection failure
// modes at protocol write points:
//
//   - ModeTransient: a stall — the write is delayed by Stall (a slow or
//     half-alive peer), then proceeds intact;
//   - ModePermanent: byte corruption — one byte of the frame is flipped
//     before the write, so the receiver's CRC check rejects it;
//   - ModeCrash: connection death — with Torn, the first half of the
//     buffer is written (a partial frame) before the close; without, the
//     conn closes with nothing written (a clean drop);
//   - ModeNoSpace: treated as a drop (no wire analogue of ENOSPC).
//
// Reads pass through untouched: every protocol exchange is a write on one
// side, so write-point coverage covers the wire. The Schedule's
// determinism (seed + op ordinals) makes a sweep over "fail the k-th
// write" exhaustive and replayable.
type FaultConn struct {
	net.Conn
	sched *faults.Schedule
	// Stall is the transient-fault delay (default 10ms).
	Stall time.Duration
}

// NewFaultConn wraps conn with the schedule. Typically installed via
// Config.WrapConn on the server, or around a client's dialed conn.
func NewFaultConn(conn net.Conn, sched *faults.Schedule) *FaultConn {
	return &FaultConn{Conn: conn, sched: sched, Stall: 10 * time.Millisecond}
}

func (f *FaultConn) Write(p []byte) (int, error) {
	d := f.sched.Decide(faults.OpWrite)
	if !d.Fail {
		return f.Conn.Write(p)
	}
	switch d.Mode {
	case faults.ModeTransient:
		time.Sleep(f.Stall)
		return f.Conn.Write(p)
	case faults.ModePermanent:
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		if len(corrupted) > 0 {
			corrupted[len(corrupted)/2] ^= 0xFF
		}
		return f.Conn.Write(corrupted)
	default: // ModeCrash, ModeNoSpace: the connection dies here
		if d.Torn && len(p) > 1 {
			f.Conn.Write(p[:len(p)/2])
		}
		f.Conn.Close()
		return 0, net.ErrClosed
	}
}
