// Package xmlgen models XML documents as element trees and generates the
// synthetic documents used by the experiments: the paper's two-level base
// document and an XMark-shaped document standing in for the XMark benchmark
// data (which is not redistributable; the labeling experiments depend only
// on tree shape, which the generator reproduces).
package xmlgen

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"boxes/internal/order"
)

// Node is one XML element.
type Node struct {
	Name     string
	Text     string // character data directly inside the element, if any
	Children []*Node
}

// AddChild appends a child element and returns it.
func (n *Node) AddChild(name string) *Node {
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// Tree is a whole XML document.
type Tree struct {
	Root *Node
}

// NewTree returns a tree with a root element of the given name.
func NewTree(rootName string) *Tree {
	return &Tree{Root: &Node{Name: rootName}}
}

// Elements counts the elements in the tree.
func (t *Tree) Elements() int {
	if t == nil || t.Root == nil {
		return 0
	}
	return countNodes(t.Root)
}

func countNodes(n *Node) int {
	c := 1
	for _, ch := range n.Children {
		c += countNodes(ch)
	}
	return c
}

// Depth returns the depth of the tree (1 for a lone root).
func (t *Tree) Depth() int {
	if t == nil || t.Root == nil {
		return 0
	}
	return nodeDepth(t.Root)
}

func nodeDepth(n *Node) int {
	d := 0
	for _, ch := range n.Children {
		if cd := nodeDepth(ch); cd > d {
			d = cd
		}
	}
	return d + 1
}

// Preorder visits every node in document order. The callback receives the
// node, its parent (nil for the root), and the node's preorder index.
func (t *Tree) Preorder(visit func(n, parent *Node, index int)) {
	if t == nil || t.Root == nil {
		return
	}
	idx := 0
	var walk func(n, parent *Node)
	walk = func(n, parent *Node) {
		visit(n, parent, idx)
		idx++
		for _, ch := range n.Children {
			walk(ch, n)
		}
	}
	walk(t.Root, nil)
}

// Nodes returns all nodes in preorder.
func (t *Tree) Nodes() []*Node {
	out := make([]*Node, 0, t.Elements())
	t.Preorder(func(n, _ *Node, _ int) { out = append(out, n) })
	return out
}

// TagStream converts the tree into the document tag stream consumed by the
// Labeler bulk-loading operations. Element indices are preorder indices.
func (t *Tree) TagStream() []order.Tag {
	tags := make([]order.Tag, 0, 2*t.Elements())
	index := make(map[*Node]int32, t.Elements())
	next := int32(0)
	var walk func(n *Node)
	walk = func(n *Node) {
		id := next
		next++
		index[n] = id
		tags = append(tags, order.Tag{Elem: id, Start: true})
		for _, ch := range n.Children {
			walk(ch)
		}
		tags = append(tags, order.Tag{Elem: id, Start: false})
	}
	if t != nil && t.Root != nil {
		walk(t.Root)
	}
	return tags
}

// TwoLevel generates the paper's base document: a root with n-1 children,
// n elements in total. n must be at least 1.
func TwoLevel(n int) *Tree {
	t := NewTree("base")
	for i := 1; i < n; i++ {
		t.Root.AddChild("item")
	}
	return t
}

// WriteXML serializes the tree as XML.
func (t *Tree) WriteXML(w io.Writer) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("xmlgen: empty tree")
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	return writeNode(w, t.Root, 0)
}

func writeNode(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	if len(n.Children) == 0 && n.Text == "" {
		_, err := fmt.Fprintf(w, "%s<%s/>\n", indent, n.Name)
		return err
	}
	if len(n.Children) == 0 {
		var buf strings.Builder
		if err := xml.EscapeText(&buf, []byte(n.Text)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Name, buf.String(), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>\n", indent, n.Name); err != nil {
		return err
	}
	if n.Text != "" {
		var buf strings.Builder
		if err := xml.EscapeText(&buf, []byte(n.Text)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s  %s\n", indent, buf.String()); err != nil {
			return err
		}
	}
	for _, ch := range n.Children {
		if err := writeNode(w, ch, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

// Parse reads an XML document into a Tree. Only element structure and
// character data are retained; attributes, comments and processing
// instructions are ignored (labels are attached to elements only).
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlgen: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Name: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmlgen: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlgen: unbalanced end tag %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					top := stack[len(stack)-1]
					if top.Text == "" {
						top.Text = s
					} else {
						top.Text += " " + s
					}
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmlgen: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlgen: %d unclosed elements", len(stack))
	}
	return &Tree{Root: root}, nil
}
