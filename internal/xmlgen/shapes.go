package xmlgen

// Shape generators for the workload zoo: the two structural extremes that
// bracket the paper's experiments. TwoLevel (flat/wide) and XMark
// (realistic) live alongside; DeepChain and Fanout cover the deep/narrow
// and exponentially wide corners, which stress subtree spans and end-tag
// placement very differently from a flat child list.

// DeepChain generates a maximally deep, narrow document: n elements in a
// single parent-child chain (depth n). n must be at least 1.
func DeepChain(n int) *Tree {
	t := NewTree("chain")
	cur := t.Root
	for i := 1; i < n; i++ {
		cur = cur.AddChild("link")
	}
	return t
}

// Fanout generates a complete tree of the given depth where every
// non-leaf element has fan children: the flat/wide extreme generalized to
// multiple levels ((fan^depth - 1) / (fan - 1) elements for fan > 1).
// depth and fan must be at least 1.
func Fanout(depth, fan int) *Tree {
	t := NewTree("fan")
	var grow func(n *Node, level int)
	grow = func(n *Node, level int) {
		if level >= depth {
			return
		}
		for i := 0; i < fan; i++ {
			grow(n.AddChild("node"), level+1)
		}
	}
	grow(t.Root, 1)
	return t
}
