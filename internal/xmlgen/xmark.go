package xmlgen

import (
	"fmt"
	"math/rand"
)

// XMark generates a deterministic document shaped like an XMark benchmark
// instance: an auction site with regions/items, categories, people, and
// open/closed auctions, with XMark-like fan-outs and element depths. The
// generator stops once at least targetElements elements exist (it may
// overshoot slightly to finish the entity it is emitting).
//
// The labeling experiments depend only on the tree *shape* of the document
// — the sequence of depths at which elements appear in document order — so
// this synthetic stand-in preserves the behaviour of the original XMark
// data for every experiment in the paper.
func XMark(targetElements int, seed int64) *Tree {
	if targetElements < 7 {
		targetElements = 7
	}
	rng := rand.New(rand.NewSource(seed))
	g := &xmarkGen{rng: rng, target: targetElements}
	return g.generate()
}

type xmarkGen struct {
	rng    *rand.Rand
	target int
	count  int
	serial int
}

func (g *xmarkGen) add(parent *Node, name string) *Node {
	g.count++
	return parent.AddChild(name)
}

func (g *xmarkGen) leaf(parent *Node, name, text string) *Node {
	n := g.add(parent, name)
	n.Text = text
	return n
}

func (g *xmarkGen) id(prefix string) string {
	g.serial++
	return fmt.Sprintf("%s%d", prefix, g.serial)
}

func (g *xmarkGen) done() bool { return g.count >= g.target }

var xmarkRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

func (g *xmarkGen) generate() *Tree {
	t := NewTree("site")
	g.count = 1
	regions := g.add(t.Root, "regions")
	regionNodes := make([]*Node, len(xmarkRegions))
	for i, r := range xmarkRegions {
		regionNodes[i] = g.add(regions, r)
	}
	categories := g.add(t.Root, "categories")
	catgraph := g.add(t.Root, "catgraph")
	people := g.add(t.Root, "people")
	open := g.add(t.Root, "open_auctions")
	closed := g.add(t.Root, "closed_auctions")

	// XMark entity ratios per "unit" (items : categories : persons :
	// open : closed ≈ 21750 : 1000 : 25500 : 12000 : 9750). We emit one
	// mixed round per iteration, preserving those proportions.
	for !g.done() {
		for i := 0; i < 9 && !g.done(); i++ {
			g.item(regionNodes[g.rng.Intn(len(regionNodes))])
		}
		if !g.done() {
			g.category(categories)
			g.edge(catgraph)
		}
		for i := 0; i < 10 && !g.done(); i++ {
			g.person(people)
		}
		for i := 0; i < 5 && !g.done(); i++ {
			g.openAuction(open)
		}
		for i := 0; i < 4 && !g.done(); i++ {
			g.closedAuction(closed)
		}
	}
	return t
}

func (g *xmarkGen) item(region *Node) {
	it := g.add(region, "item")
	g.leaf(it, "location", "United States")
	g.leaf(it, "quantity", "1")
	g.leaf(it, "name", g.id("item"))
	g.leaf(it, "payment", "Creditcard")
	g.description(it)
	g.leaf(it, "shipping", "Will ship internationally")
	for i := g.rng.Intn(3) + 1; i > 0; i-- {
		g.leaf(it, "incategory", g.id("category"))
	}
	mb := g.add(it, "mailbox")
	for i := g.rng.Intn(2); i > 0; i-- {
		mail := g.add(mb, "mail")
		g.leaf(mail, "from", g.id("person"))
		g.leaf(mail, "to", g.id("person"))
		g.leaf(mail, "date", "07/04/2000")
		g.text(mail)
	}
}

func (g *xmarkGen) description(parent *Node) {
	d := g.add(parent, "description")
	if g.rng.Intn(2) == 0 {
		g.text(d)
		return
	}
	pl := g.add(d, "parlist")
	for i := g.rng.Intn(3) + 1; i > 0; i-- {
		li := g.add(pl, "listitem")
		g.text(li)
	}
}

func (g *xmarkGen) text(parent *Node) {
	tx := g.add(parent, "text")
	for i := g.rng.Intn(2); i > 0; i-- {
		g.leaf(tx, "keyword", "rare")
	}
	if tx.Children == nil {
		tx.Text = "lorem ipsum auction text"
	}
}

func (g *xmarkGen) category(parent *Node) {
	c := g.add(parent, "category")
	g.leaf(c, "name", g.id("category"))
	g.description(c)
}

func (g *xmarkGen) edge(parent *Node) {
	g.add(parent, "edge")
}

func (g *xmarkGen) person(parent *Node) {
	p := g.add(parent, "person")
	g.leaf(p, "name", g.id("person"))
	g.leaf(p, "emailaddress", "mailto:someone@example.com")
	if g.rng.Intn(2) == 0 {
		g.leaf(p, "phone", "+1 (555) 555-0100")
	}
	if g.rng.Intn(2) == 0 {
		addr := g.add(p, "address")
		g.leaf(addr, "street", "35 McCrossin St")
		g.leaf(addr, "city", "Durham")
		g.leaf(addr, "country", "United States")
		g.leaf(addr, "zipcode", "27708")
	}
	if g.rng.Intn(3) == 0 {
		g.leaf(p, "homepage", "http://example.com/~person")
	}
	if g.rng.Intn(3) == 0 {
		g.leaf(p, "creditcard", "9941 9701 2489 4716")
	}
	prof := g.add(p, "profile")
	for i := g.rng.Intn(3); i > 0; i-- {
		g.leaf(prof, "interest", g.id("category"))
	}
	g.leaf(prof, "business", "No")
	if g.rng.Intn(2) == 0 {
		g.leaf(prof, "age", "32")
	}
	w := g.add(p, "watches")
	for i := g.rng.Intn(2); i > 0; i-- {
		g.leaf(w, "watch", g.id("open_auction"))
	}
}

func (g *xmarkGen) openAuction(parent *Node) {
	a := g.add(parent, "open_auction")
	g.leaf(a, "initial", "15.50")
	for i := g.rng.Intn(4) + 1; i > 0; i-- {
		b := g.add(a, "bidder")
		g.leaf(b, "date", "07/04/2000")
		g.leaf(b, "time", "18:21:21")
		g.leaf(b, "personref", g.id("person"))
		g.leaf(b, "increase", "4.50")
	}
	g.leaf(a, "current", "55.50")
	g.leaf(a, "itemref", g.id("item"))
	g.leaf(a, "seller", g.id("person"))
	g.annotation(a)
	g.leaf(a, "quantity", "1")
	g.leaf(a, "type", "Regular")
	iv := g.add(a, "interval")
	g.leaf(iv, "start", "07/04/2000")
	g.leaf(iv, "end", "08/04/2000")
}

func (g *xmarkGen) closedAuction(parent *Node) {
	a := g.add(parent, "closed_auction")
	g.leaf(a, "seller", g.id("person"))
	g.leaf(a, "buyer", g.id("person"))
	g.leaf(a, "itemref", g.id("item"))
	g.leaf(a, "price", "55.50")
	g.leaf(a, "date", "07/04/2000")
	g.leaf(a, "quantity", "1")
	g.leaf(a, "type", "Regular")
	g.annotation(a)
}

func (g *xmarkGen) annotation(parent *Node) {
	an := g.add(parent, "annotation")
	g.leaf(an, "author", g.id("person"))
	g.description(an)
	g.leaf(an, "happiness", "7")
}
