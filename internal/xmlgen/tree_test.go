package xmlgen

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"boxes/internal/order"
)

func TestTwoLevel(t *testing.T) {
	tr := TwoLevel(100)
	if got := tr.Elements(); got != 100 {
		t.Fatalf("elements = %d, want 100", got)
	}
	if got := tr.Depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	if len(tr.Root.Children) != 99 {
		t.Fatalf("children = %d, want 99", len(tr.Root.Children))
	}
}

func TestTwoLevelSingleton(t *testing.T) {
	tr := TwoLevel(1)
	if tr.Elements() != 1 || tr.Depth() != 1 {
		t.Fatalf("elements=%d depth=%d", tr.Elements(), tr.Depth())
	}
}

func TestTagStreamWellFormed(t *testing.T) {
	tr := XMark(500, 1)
	tags := tr.TagStream()
	if len(tags) != 2*tr.Elements() {
		t.Fatalf("tags = %d, want %d", len(tags), 2*tr.Elements())
	}
	if err := order.ValidateTagStream(tags); err != nil {
		t.Fatal(err)
	}
}

func TestTagStreamPreorderIndices(t *testing.T) {
	tr := NewTree("a")
	b := tr.Root.AddChild("b")
	b.AddChild("c")
	tr.Root.AddChild("d")
	tags := tr.TagStream()
	want := []order.Tag{
		{Elem: 0, Start: true},
		{Elem: 1, Start: true},
		{Elem: 2, Start: true},
		{Elem: 2, Start: false},
		{Elem: 1, Start: false},
		{Elem: 3, Start: true},
		{Elem: 3, Start: false},
		{Elem: 0, Start: false},
	}
	if len(tags) != len(want) {
		t.Fatalf("tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("tags[%d] = %v, want %v", i, tags[i], want[i])
		}
	}
}

func TestXMarkDeterministic(t *testing.T) {
	a := XMark(2000, 42)
	b := XMark(2000, 42)
	if a.Elements() != b.Elements() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Elements(), b.Elements())
	}
	ta, tb := a.TagStream(), b.TagStream()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("same seed, different shape at tag %d", i)
		}
	}
	c := XMark(2000, 43)
	if c.Elements() == a.Elements() {
		tc := c.TagStream()
		same := true
		for i := range ta {
			if ta[i] != tc[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical documents")
		}
	}
}

func TestXMarkSizeAndShape(t *testing.T) {
	tr := XMark(10000, 7)
	n := tr.Elements()
	if n < 10000 || n > 11000 {
		t.Fatalf("elements = %d, want ~10000", n)
	}
	d := tr.Depth()
	if d < 5 || d > 12 {
		t.Fatalf("depth = %d, want XMark-like depth in [5,12]", d)
	}
	// Top-level sections must all exist.
	var names []string
	for _, c := range tr.Root.Children {
		names = append(names, c.Name)
	}
	want := []string{"regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing section %s in %v", w, names)
		}
	}
}

func TestWriteXMLParseRoundTrip(t *testing.T) {
	tr := XMark(800, 3)
	var buf bytes.Buffer
	if err := tr.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Elements() != tr.Elements() {
		t.Fatalf("round trip elements %d != %d", back.Elements(), tr.Elements())
	}
	ta, tb := tr.TagStream(), back.TagStream()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("round trip shape differs at tag %d", i)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"no xml at all",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestParseKeepsText(t *testing.T) {
	tr, err := Parse(strings.NewReader("<a><b>hello</b><c/></a>"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Children[0].Text != "hello" {
		t.Fatalf("text = %q", tr.Root.Children[0].Text)
	}
}

func TestPreorderIndexMatchesNodesOrder(t *testing.T) {
	tr := XMark(300, 9)
	nodes := tr.Nodes()
	i := 0
	tr.Preorder(func(n, _ *Node, idx int) {
		if idx != i || nodes[idx] != n {
			t.Fatalf("preorder mismatch at %d", idx)
		}
		i++
	})
	if i != tr.Elements() {
		t.Fatalf("visited %d, want %d", i, tr.Elements())
	}
}

// Property: every generated XMark document yields a well-formed tag stream.
func TestQuickXMarkWellFormed(t *testing.T) {
	f := func(seed int64, size uint16) bool {
		n := int(size%3000) + 10
		tr := XMark(n, seed)
		return order.ValidateTagStream(tr.TagStream()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteXMLEscapesText(t *testing.T) {
	tr := NewTree("a")
	b := tr.Root.AddChild("b")
	b.Text = `5 < 6 && "quoted" <tag>`
	var buf bytes.Buffer
	if err := tr.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<tag>") {
		t.Fatalf("unescaped text in output:\n%s", buf.String())
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.Children[0].Text != b.Text {
		t.Fatalf("text round trip: %q != %q", back.Root.Children[0].Text, b.Text)
	}
}
