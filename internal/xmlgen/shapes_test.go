package xmlgen

import (
	"bytes"
	"fmt"
	"testing"

	"boxes/internal/order"
)

// shapeCase is one generator of the document-shape zoo with its expected
// structural profile. gen must be deterministic: calling it twice yields
// byte-identical tag streams.
type shapeCase struct {
	name     string
	gen      func() *Tree
	elements int // exact element count; -1 to skip (XMark overshoots its target)
	depth    int // exact depth; -1 to skip
}

func shapeCases() []shapeCase {
	return []shapeCase{
		{"two-level/1", func() *Tree { return TwoLevel(1) }, 1, 1},
		{"two-level/64", func() *Tree { return TwoLevel(64) }, 64, 2},
		{"deep-chain/1", func() *Tree { return DeepChain(1) }, 1, 1},
		{"deep-chain/40", func() *Tree { return DeepChain(40) }, 40, 40},
		{"fanout/1x5", func() *Tree { return Fanout(1, 5) }, 1, 1},
		{"fanout/3x3", func() *Tree { return Fanout(3, 3) }, 13, 3},   // 1+3+9
		{"fanout/4x2", func() *Tree { return Fanout(4, 2) }, 15, 4},   // 2^4-1
		{"fanout/2x16", func() *Tree { return Fanout(2, 16) }, 17, 2}, // wide
		{"xmark/400", func() *Tree { return XMark(400, 11) }, -1, -1},
	}
}

// TestShapeInvariants holds every zoo shape to the structural contract the
// harnesses rely on: the advertised element count and depth, a well-formed
// tag stream of exactly 2*Elements() tags, a WriteXML/Parse round trip
// preserving shape, and a deterministic generator.
func TestShapeInvariants(t *testing.T) {
	for _, sc := range shapeCases() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			tr := sc.gen()
			if sc.elements >= 0 && tr.Elements() != sc.elements {
				t.Errorf("elements = %d, want %d", tr.Elements(), sc.elements)
			}
			if sc.depth >= 0 && tr.Depth() != sc.depth {
				t.Errorf("depth = %d, want %d", tr.Depth(), sc.depth)
			}

			tags := tr.TagStream()
			if len(tags) != 2*tr.Elements() {
				t.Errorf("tag stream has %d tags, want %d", len(tags), 2*tr.Elements())
			}
			if err := order.ValidateTagStream(tags); err != nil {
				t.Errorf("tag stream ill-formed: %v", err)
			}

			// Deterministic generator: a second run is tag-identical.
			again := sc.gen().TagStream()
			if len(again) != len(tags) {
				t.Fatalf("regenerated stream has %d tags, want %d", len(again), len(tags))
			}
			for i := range tags {
				if tags[i] != again[i] {
					t.Fatalf("regenerated stream differs at tag %d: %v vs %v", i, again[i], tags[i])
				}
			}

			// Parse(WriteXML(tree)) preserves the shape exactly.
			var buf bytes.Buffer
			if err := tr.WriteXML(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Parse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			bt := back.TagStream()
			if len(bt) != len(tags) {
				t.Fatalf("round trip has %d tags, want %d", len(bt), len(tags))
			}
			for i := range tags {
				if bt[i] != tags[i] {
					t.Fatalf("round trip differs at tag %d: %v vs %v", i, bt[i], tags[i])
				}
			}
		})
	}
}

// TestDeepChainIsAChain pins the structural intent beyond the depth count:
// every non-leaf element of DeepChain has exactly one child.
func TestDeepChainIsAChain(t *testing.T) {
	tr := DeepChain(25)
	n := tr.Root
	links := 1
	for len(n.Children) > 0 {
		if len(n.Children) != 1 {
			t.Fatalf("element %d has %d children, want 1", links-1, len(n.Children))
		}
		n = n.Children[0]
		links++
	}
	if links != 25 {
		t.Fatalf("chain length = %d, want 25", links)
	}
}

// TestFanoutIsComplete checks Fanout's shape: every element above the leaf
// level has exactly fan children and all leaves sit at the same depth.
func TestFanoutIsComplete(t *testing.T) {
	const depth, fan = 4, 3
	tr := Fanout(depth, fan)
	var walk func(n *Node, level int)
	walk = func(n *Node, level int) {
		if level == depth {
			if len(n.Children) != 0 {
				t.Fatalf("leaf at level %d has %d children", level, len(n.Children))
			}
			return
		}
		if len(n.Children) != fan {
			t.Fatalf("level %d element has %d children, want %d", level, len(n.Children), fan)
		}
		for _, ch := range n.Children {
			walk(ch, level+1)
		}
	}
	walk(tr.Root, 1)
	want := (pow(fan, depth) - 1) / (fan - 1)
	if tr.Elements() != want {
		t.Fatalf("elements = %d, want %d", tr.Elements(), want)
	}
}

func pow(b, e int) int {
	p := 1
	for i := 0; i < e; i++ {
		p *= b
	}
	return p
}

// TestShapesBulkLoadDepthExtremes guards the generator contracts the
// harnesses use to pick corners: for equal element counts, DeepChain is
// strictly deeper than every other shape and TwoLevel strictly shallower.
func TestShapesBulkLoadDepthExtremes(t *testing.T) {
	const n = 31
	deep := DeepChain(n).Depth()
	flat := TwoLevel(n).Depth()
	mid := Fanout(5, 2).Depth() // 2^5-1 = 31 elements
	if !(flat < mid && mid < deep) {
		t.Fatalf("depth ordering violated: two-level %d, fanout %d, deep-chain %d", flat, mid, deep)
	}
	if got := Fanout(5, 2).Elements(); got != n {
		t.Fatalf("fanout(5,2) elements = %d, want %d", got, n)
	}
}

// TestShapeTagStreamNesting spot-checks that end tags close in LIFO order
// for the two hand-analyzable extremes (all starts then all ends for the
// chain; strictly alternating pairs under the two-level root).
func TestShapeTagStreamNesting(t *testing.T) {
	tags := DeepChain(4).TagStream()
	for i := 0; i < 4; i++ {
		if !tags[i].Start || tags[i].Elem != int32(i) {
			t.Fatalf("chain tag %d = %v, want start of element %d", i, tags[i], i)
		}
		end := tags[len(tags)-1-i]
		if end.Start || end.Elem != int32(i) {
			t.Fatalf("chain tag %d = %v, want end of element %d", len(tags)-1-i, end, i)
		}
	}

	tags = TwoLevel(4).TagStream()
	wantStr := "s0 s1 e1 s2 e2 s3 e3 e0"
	var got []byte
	for i, tg := range tags {
		if i > 0 {
			got = append(got, ' ')
		}
		c := byte('e')
		if tg.Start {
			c = 's'
		}
		got = append(got, c)
		got = append(got, []byte(fmt.Sprintf("%d", tg.Elem))...)
	}
	if string(got) != wantStr {
		t.Fatalf("two-level stream = %q, want %q", got, wantStr)
	}
}
