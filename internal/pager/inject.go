package pager

import (
	"fmt"

	"boxes/internal/faults"
)

// FaultBackend routes every data operation of a Backend through a
// faults.Injector, turning the injector's decisions into the pager's
// typed errors: transient faults wrap ErrInjected and faults.ErrTransient
// (so a Store opened WithRetry absorbs them), permanent faults wrap
// ErrInjected alone, and crash decisions kill the device with ErrCrashed —
// a torn crash persisting a half-written block image first, exactly like
// the old CrashBackend. FlakyBackend and CrashBackend are thin veneers
// over the same machinery, so the crash matrix and the retry tests share
// one seeded, deterministic fault engine (faults.Schedule).
//
// Batch and metadata capabilities pass through: when the inner backend is
// a TxBackend or MetaRooter, the wrapper delegates; otherwise BeginBatch /
// AbortBatch are no-ops, CommitBatch succeeds trivially, and the metadata
// root is kept in memory — good enough for fault-injection tests over a
// MemBackend, transparent over a FileBackend. Transaction plumbing
// (commit, batch bookkeeping) is intentionally not charged: faults fire
// at logical block operations, the same points FlakyBackend always used.
type FaultBackend struct {
	Inner    Backend
	Injector faults.Injector

	memRoot BlockID // fallback meta root when Inner is not a MetaRooter
}

// NewFaultBackend wraps inner with a fault injector.
func NewFaultBackend(inner Backend, inj faults.Injector) *FaultBackend {
	return &FaultBackend{Inner: inner, Injector: inj}
}

// charge asks the injector for a verdict on op and renders it as an error
// (nil when the operation may proceed).
func (b *FaultBackend) charge(op faults.Op) error {
	d := b.Injector.Decide(op)
	if !d.Fail {
		return nil
	}
	switch d.Mode {
	case faults.ModeCrash:
		return fmt.Errorf("%w (%s)", ErrCrashed, op)
	case faults.ModeTransient:
		return fmt.Errorf("%w (%s, %w)", ErrInjected, op, faults.ErrTransient)
	case faults.ModeNoSpace:
		return fmt.Errorf("%w (%s, %w)", ErrInjected, op, faults.ErrNoSpace)
	default:
		return fmt.Errorf("%w (%s, permanent)", ErrInjected, op)
	}
}

// BlockSize implements Backend.
func (b *FaultBackend) BlockSize() int { return b.Inner.BlockSize() }

// Allocate implements Backend.
func (b *FaultBackend) Allocate() (BlockID, error) {
	if err := b.charge(faults.OpAllocate); err != nil {
		return NilBlock, err
	}
	return b.Inner.Allocate()
}

// Free implements Backend.
func (b *FaultBackend) Free(id BlockID) error {
	if err := b.charge(faults.OpFree); err != nil {
		return err
	}
	return b.Inner.Free(id)
}

// ReadBlock implements Backend.
func (b *FaultBackend) ReadBlock(id BlockID, buf []byte) error {
	if err := b.charge(faults.OpRead); err != nil {
		return err
	}
	return b.Inner.ReadBlock(id, buf)
}

// WriteBlock implements Backend. A torn crash decision persists a merged
// half image (new first half, old second half) before the device dies.
func (b *FaultBackend) WriteBlock(id BlockID, buf []byte) error {
	d := b.Injector.Decide(faults.OpWrite)
	if !d.Fail {
		return b.Inner.WriteBlock(id, buf)
	}
	switch d.Mode {
	case faults.ModeCrash:
		if d.Torn {
			old := make([]byte, b.Inner.BlockSize())
			if err := b.Inner.ReadBlock(id, old); err == nil {
				half := len(buf) / 2
				img := make([]byte, len(buf))
				copy(img, old)
				copy(img[:half], buf[:half])
				b.Inner.WriteBlock(id, img)
			}
		}
		return fmt.Errorf("%w (block %d)", ErrCrashed, id)
	case faults.ModeTransient:
		return fmt.Errorf("%w (write block %d, %w)", ErrInjected, id, faults.ErrTransient)
	case faults.ModeNoSpace:
		return fmt.Errorf("%w (write block %d, %w)", ErrInjected, id, faults.ErrNoSpace)
	default:
		return fmt.Errorf("%w (write block %d, permanent)", ErrInjected, id)
	}
}

// NumBlocks implements Backend.
func (b *FaultBackend) NumBlocks() uint64 { return b.Inner.NumBlocks() }

// Close implements Backend: the inner backend is always closed so a
// harness can reopen the underlying file after a simulated crash.
func (b *FaultBackend) Close() error { return b.Inner.Close() }

// BeginBatch implements TxBackend by delegation (no-op otherwise).
func (b *FaultBackend) BeginBatch() {
	if tx, ok := b.Inner.(TxBackend); ok {
		tx.BeginBatch()
	}
}

// CommitBatch implements TxBackend by delegation (trivially durable
// otherwise).
func (b *FaultBackend) CommitBatch() error {
	if tx, ok := b.Inner.(TxBackend); ok {
		return tx.CommitBatch()
	}
	return nil
}

// AbortBatch implements TxBackend by delegation (no-op otherwise).
func (b *FaultBackend) AbortBatch() {
	if tx, ok := b.Inner.(TxBackend); ok {
		tx.AbortBatch()
	}
}

// SetMetaRoot implements MetaRooter by delegation, falling back to an
// in-memory root over plain backends.
func (b *FaultBackend) SetMetaRoot(id BlockID) error {
	if mr, ok := b.Inner.(MetaRooter); ok {
		return mr.SetMetaRoot(id)
	}
	b.memRoot = id
	return nil
}

// MetaRoot implements MetaRooter by delegation, falling back to an
// in-memory root over plain backends.
func (b *FaultBackend) MetaRoot() (BlockID, error) {
	if mr, ok := b.Inner.(MetaRooter); ok {
		return mr.MetaRoot()
	}
	return b.memRoot, nil
}

var (
	_ TxBackend  = (*FaultBackend)(nil)
	_ MetaRooter = (*FaultBackend)(nil)
)
