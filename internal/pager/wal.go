package pager

import (
	"encoding/binary"
	"io"
)

// The write-ahead log makes every pager batch (one logical Store operation)
// all-or-nothing across power cuts. The protocol per commit:
//
//  1. Append one block frame per staged image to <path>.wal, then a commit
//     frame carrying the frame count and the complete header state.
//  2. fsync the WAL. The operation is now durable.
//  3. Apply the images in place in the data file, update the checksum
//     sidecar, write the header, fsync data and sidecar.
//  4. Truncate the WAL back to its header.
//
// Recovery at open scans the WAL: every complete committed transaction is
// replayed in order (step 3 may have been interrupted anywhere — replay is
// pure physical redo and idempotent), an incomplete tail is discarded (the
// cut came before the commit fsync, so the operation never happened). A
// frame whose checksum fails inside a *committed* transaction is real
// corruption and surfaces as ErrCorrupt rather than being silently dropped.
//
// Group commit (see group.go) appends several transactions — each with its
// own commit record — before a single fsync, and defers the truncate, so
// the log legitimately holds a sequence of committed transactions. A crash
// anywhere inside the group leaves exactly the committed prefix: scanWAL
// returns the transactions in append order and recovery replays them all.

// walMagic identifies a FileBackend write-ahead log file.
var walMagic = [8]byte{'B', 'O', 'X', 'W', 'A', 'L', '0', '1'}

// walHeaderSize is magic (8) + block size (4) + reserved (4).
const walHeaderSize = 16

const (
	walKindBlock  = 1
	walKindCommit = 2
)

// walCommitSize is kind (1) + count (4) + next (8) + freeHead (8) +
// allocated (8) + metaRoot (8) + flags (4) + crc (4).
const walCommitSize = 45

// walFrameSize is the size of one block frame for the given block size:
// kind (1) + block ID (8) + payload + crc (4).
func walFrameSize(blockSize int) int { return 13 + blockSize }

// walImage is one staged block image inside a transaction.
type walImage struct {
	id   BlockID
	data []byte
}

// walHeaderState is the header snapshot carried by a commit frame.
type walHeaderState struct {
	next      BlockID
	freeHead  BlockID
	allocated uint64
	metaRoot  BlockID
	flags     uint32
}

// walTxn is one committed transaction recovered from the log.
type walTxn struct {
	images []walImage
	hdr    walHeaderState
}

// encodeWALHeader renders the WAL file header.
func encodeWALHeader(blockSize int) []byte {
	buf := make([]byte, walHeaderSize)
	copy(buf[:8], walMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], uint32(blockSize))
	return buf
}

// encodeWALFrame renders one block frame.
func encodeWALFrame(id BlockID, data []byte) []byte {
	buf := make([]byte, walFrameSize(len(data)))
	buf[0] = walKindBlock
	binary.LittleEndian.PutUint64(buf[1:9], uint64(id))
	copy(buf[9:], data)
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], checksum(buf[:len(buf)-4]))
	return buf
}

// encodeWALCommit renders a commit frame.
func encodeWALCommit(count int, hdr walHeaderState) []byte {
	buf := make([]byte, walCommitSize)
	buf[0] = walKindCommit
	binary.LittleEndian.PutUint32(buf[1:5], uint32(count))
	binary.LittleEndian.PutUint64(buf[5:13], uint64(hdr.next))
	binary.LittleEndian.PutUint64(buf[13:21], uint64(hdr.freeHead))
	binary.LittleEndian.PutUint64(buf[21:29], hdr.allocated)
	binary.LittleEndian.PutUint64(buf[29:37], uint64(hdr.metaRoot))
	binary.LittleEndian.PutUint32(buf[37:41], hdr.flags)
	binary.LittleEndian.PutUint32(buf[41:45], checksum(buf[:41]))
	return buf
}

// readAll reads the entire file through a blockFile (which has no Seek or
// Stat), probing forward in fixed chunks until EOF.
func readAll(f blockFile) ([]byte, error) {
	var out []byte
	buf := make([]byte, 64*1024)
	off := int64(0)
	for {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// scanWAL parses a WAL file's contents (header included). It returns every
// complete committed transaction in append order (nil if none), the number
// of trailing bytes belonging to an uncommitted tail, and an error when a
// committed transaction is unreadable (bit rot inside fsynced frames) or
// the WAL header itself is invalid. With group commit the log routinely
// holds several committed transactions; replaying them in order — pure
// idempotent physical redo — reconstructs exactly the committed prefix.
func scanWAL(data []byte, blockSize int) (txns []*walTxn, discarded int64, err error) {
	if len(data) < walHeaderSize {
		// Truncated below its own header: treat as empty (a crash during
		// WAL creation, before anything could have committed).
		return nil, int64(len(data)), nil
	}
	var magic [8]byte
	copy(magic[:], data[:8])
	if magic != walMagic {
		return nil, 0, corruptRegion("wal", "bad magic")
	}
	if bs := int(binary.LittleEndian.Uint32(data[8:12])); bs != blockSize {
		return nil, 0, corruptRegion("wal", "block size %d, store uses %d", bs, blockSize)
	}

	frameSize := walFrameSize(blockSize)
	pos := walHeaderSize
	lastCommitEnd := walHeaderSize
	var pending []walImage
	pendingBad := false
	for pos < len(data) {
		switch data[pos] {
		case walKindBlock:
			if pos+frameSize > len(data) {
				return txns, int64(len(data) - lastCommitEnd), nil // torn tail
			}
			frame := data[pos : pos+frameSize]
			if checksum(frame[:frameSize-4]) != binary.LittleEndian.Uint32(frame[frameSize-4:]) {
				// Frame size is fixed, so keep scanning: if a valid commit
				// follows, this is corruption inside a committed
				// transaction; if not, it is an ordinary torn tail.
				pendingBad = true
				pos += frameSize
				continue
			}
			id := BlockID(binary.LittleEndian.Uint64(frame[1:9]))
			img := make([]byte, blockSize)
			copy(img, frame[9:9+blockSize])
			pending = append(pending, walImage{id: id, data: img})
			pos += frameSize
		case walKindCommit:
			if pos+walCommitSize > len(data) {
				return txns, int64(len(data) - lastCommitEnd), nil // torn tail
			}
			frame := data[pos : pos+walCommitSize]
			if checksum(frame[:41]) != binary.LittleEndian.Uint32(frame[41:45]) {
				return txns, int64(len(data) - lastCommitEnd), nil // torn commit
			}
			count := int(binary.LittleEndian.Uint32(frame[1:5]))
			if pendingBad {
				return nil, 0, corruptRegion("wal", "committed transaction has %d frames but at least one fails its checksum", count)
			}
			if count != len(pending) {
				return nil, 0, corruptRegion("wal", "commit record covers %d frames, found %d", count, len(pending))
			}
			txns = append(txns, &walTxn{
				images: pending,
				hdr: walHeaderState{
					next:      BlockID(binary.LittleEndian.Uint64(frame[5:13])),
					freeHead:  BlockID(binary.LittleEndian.Uint64(frame[13:21])),
					allocated: binary.LittleEndian.Uint64(frame[21:29]),
					metaRoot:  BlockID(binary.LittleEndian.Uint64(frame[29:37])),
					flags:     binary.LittleEndian.Uint32(frame[37:41]),
				},
			})
			pending = nil
			pendingBad = false
			pos += walCommitSize
			lastCommitEnd = pos
		default:
			// Unknown kind byte: a torn append. Everything from the last
			// commit on is an uncommitted tail.
			return txns, int64(len(data) - lastCommitEnd), nil
		}
	}
	return txns, int64(pos - lastCommitEnd), nil
}

// validateWALImages rejects committed frames naming impossible blocks.
func validateWALImages(txn *walTxn, blockSize int) error {
	for _, img := range txn.images {
		if img.id == NilBlock {
			return corruptRegion("wal", "committed frame names block 0")
		}
		if img.id >= txn.hdr.next {
			return corruptRegion("wal", "committed frame names block %d beyond next=%d", img.id, txn.hdr.next)
		}
		if len(img.data) != blockSize {
			return corruptRegion("wal", "committed frame holds %d bytes, block size %d", len(img.data), blockSize)
		}
	}
	return nil
}
