package pager

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used block cache. It stores
// private copies of block contents keyed by BlockID. All methods are safe
// for concurrent use: the shared read path hits the cache from many reader
// goroutines at once.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	index    map[BlockID]*list.Element
}

type lruEntry struct {
	id   BlockID
	data []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[BlockID]*list.Element, capacity),
	}
}

// get copies the cached block into a fresh slice (returning the interior
// slice would hand concurrent readers a buffer a later put may overwrite).
func (c *lruCache) get(id BlockID) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, true
}

func (c *lruCache) put(id BlockID, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[id]; ok {
		e := el.Value.(*lruEntry)
		if &e.data[0] != &data[0] {
			copy(e.data, data)
		}
		c.order.MoveToFront(el)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	el := c.order.PushFront(&lruEntry{id: id, data: cp})
	c.index[id] = el
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(*lruEntry).id)
	}
}

func (c *lruCache) drop(id BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[id]; ok {
		c.order.Remove(el)
		delete(c.index, id)
	}
}

// clear empties the cache. Used when a batch aborts: blocks flushed before
// the failure were cached with images the abort rolled back on disk.
func (c *lruCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.index = make(map[BlockID]*list.Element, c.capacity)
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
