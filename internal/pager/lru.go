package pager

import "container/list"

// lruCache is a fixed-capacity least-recently-used block cache. It stores
// private copies of block contents keyed by BlockID.
type lruCache struct {
	capacity int
	order    *list.List // front = most recently used; values are *lruEntry
	index    map[BlockID]*list.Element
}

type lruEntry struct {
	id   BlockID
	data []byte
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[BlockID]*list.Element, capacity),
	}
}

func (c *lruCache) get(id BlockID) ([]byte, bool) {
	el, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

func (c *lruCache) put(id BlockID, data []byte) {
	if el, ok := c.index[id]; ok {
		e := el.Value.(*lruEntry)
		if &e.data[0] != &data[0] {
			copy(e.data, data)
		}
		c.order.MoveToFront(el)
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	el := c.order.PushFront(&lruEntry{id: id, data: cp})
	c.index[id] = el
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.index, back.Value.(*lruEntry).id)
	}
}

func (c *lruCache) drop(id BlockID) {
	if el, ok := c.index[id]; ok {
		c.order.Remove(el)
		delete(c.index, id)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
