package pager

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"boxes/internal/faults"
)

// fsyncgateSetup creates a small durable store with a DiskController
// attached and one committed op, returning the backend, the controller
// and the live Store. Sync points are charged (NoSync off) but never hit
// the kernel.
func fsyncgateSetup(t *testing.T, path string) (*FileBackend, *DiskController, *Store) {
	t.Helper()
	dc := NewDiskController()
	dc.SkipRealSync = true
	fb, err := CreateFileOpts(path, FileOptions{BlockSize: 128, DiskControl: dc})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	st.BeginOp()
	if _, err := st.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(1, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := st.EndOp(); err != nil {
		t.Fatal(err)
	}
	return fb, dc, st
}

// writeOp commits one rewrite of block 1 with the given fill byte.
func writeOp(st *Store, fill byte) error {
	st.BeginOp()
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = fill
	}
	if err := st.Write(1, buf); err != nil {
		st.EndOp()
		return err
	}
	return st.EndOp()
}

// TestFailedFsyncDoesNotCountDurabilityPoint is the fsyncgate audit
// regression: a failed WAL fsync must not increment the durability-point
// counters — a sync that failed is not a durability point, and counting
// it would let an operator (or the amortized-cost ledger) trust a commit
// the device never acknowledged. The backend must poison instead.
func TestFailedFsyncDoesNotCountDurabilityPoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	fb, dc, st := fsyncgateSetup(t, path)

	before := fb.WALStats()
	// The next sync point is the WAL fsync of the next commit — the
	// durability point itself.
	dc.PlanSync(dc.Syncs()+1, DiskSyncFail)

	err := writeOp(st, 0xAA)
	if err == nil {
		t.Fatal("commit with failing WAL fsync succeeded")
	}
	var se *faults.SyncError
	if !errors.As(err, &se) {
		t.Fatalf("failed fsync surfaced as %v, want a faults.SyncError", err)
	}
	after := fb.WALStats()
	if after.Syncs != before.Syncs {
		t.Fatalf("failed WAL fsync was counted as a durability point: syncs %d -> %d", before.Syncs, after.Syncs)
	}
	if after.DataSyncs != before.DataSyncs {
		t.Fatalf("failed fsync moved the data sync counter: %d -> %d", before.DataSyncs, after.DataSyncs)
	}
	if fb.Poisoned() == nil {
		t.Fatal("failed fsync did not poison the backend")
	}

	// Every later commit fails fast until reopen; no sync is attempted,
	// so the counters stay frozen.
	if err := writeOp(st, 0xBB); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit on a poisoned backend returned %v, want ErrPoisoned", err)
	}
	if got := fb.WALStats(); got.Syncs != before.Syncs {
		t.Fatalf("poisoned backend still charged durability points: %d -> %d", before.Syncs, got.Syncs)
	}
	st.Close()

	// Reopen resolves the poisoned transaction from the WAL: since the
	// injected failure was simulated (the bytes did reach the OS), the
	// commit record is present and redo completes the op.
	fb2, err := OpenFileOpts(path, FileOptions{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer fb2.Close()
	st2 := NewStore(fb2)
	blk, err := st2.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 0xAA && blk[0] != 0x00 {
		t.Fatalf("recovered block holds %#x, want the pre-op or poisoned-op image", blk[0])
	}
}

// TestFailedFsyncNotRetryableRegardlessOfErrno pins the other half of the
// fsyncgate contract: once an error has passed through a Sync call it
// must classify Permanent even if the underlying errno looks transient,
// and a Retrier must run the operation exactly once.
func TestFailedFsyncNotRetryableRegardlessOfErrno(t *testing.T) {
	serr := &faults.SyncError{Err: faults.ErrTransient}
	if got := faults.Classify(serr); got != faults.Permanent {
		t.Fatalf("Classify(SyncError{transient errno}) = %v, want Permanent", got)
	}
	attempts := 0
	r := faults.NewRetrier(faults.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}})
	_, err := r.Do(func() error {
		attempts++
		return serr
	})
	if attempts != 1 {
		t.Fatalf("Retrier ran a failed-fsync op %d times, want 1", attempts)
	}
	var got *faults.SyncError
	if !errors.As(err, &got) {
		t.Fatalf("Retrier returned %v, want the SyncError", err)
	}
}

// TestNoSpaceCommitAbortsCleanly checks the pager half of the ENOSPC
// contract: a full disk at a pre-durability write fails the commit with
// ErrNoSpace, restores the header to the pre-op snapshot, does NOT latch
// the permanent write-fault state, and the very next commit succeeds once
// space is back.
func TestNoSpaceCommitAbortsCleanly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	fb, dc, st := fsyncgateSetup(t, path)
	defer st.Close()

	// No raw I/O happens while the op stages; the first write point after
	// now is the first WAL frame of the next commit — before the
	// durability point.
	dc.PlanWrite(dc.Writes()+1, DiskNoSpace)

	err := writeOp(st, 0xCC)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("commit on a full disk returned %v, want ErrNoSpace", err)
	}
	if wf := st.WriteFault(); wf != nil {
		t.Fatalf("ENOSPC latched the permanent write-fault state: %v", wf)
	}
	if fb.Poisoned() != nil {
		t.Fatalf("pre-durability ENOSPC poisoned the backend: %v", fb.Poisoned())
	}
	blk, err := st.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 0x00 {
		t.Fatalf("aborted commit leaked its image: block starts %#x, want 0", blk[0])
	}

	// Space comes back (the plan was one-shot): the store must be
	// writable with no ceremony.
	if err := writeOp(st, 0xDD); err != nil {
		t.Fatalf("commit after ENOSPC abort failed: %v", err)
	}
	blk, err = st.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 0xDD {
		t.Fatalf("post-abort commit not visible: %#x", blk[0])
	}
}
