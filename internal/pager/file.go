package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// fileMagic identifies a FileBackend store file.
var fileMagic = [8]byte{'B', 'O', 'X', 'P', 'A', 'G', 'E', '1'}

const fileHeaderSize = 8 + 4 + 8 + 8 + 8 + 8 // magic, blockSize, next, free head, allocated, meta root

// FileBackend persists blocks in a single file. Block n occupies bytes
// [n*blockSize, (n+1)*blockSize); block 0 holds the header, so BlockID 0 is
// naturally unusable, matching NilBlock. Freed blocks are chained into a
// free list through their first 8 bytes.
type FileBackend struct {
	f         *os.File
	blockSize int
	next      BlockID // next never-used block
	freeHead  BlockID // head of the free list, NilBlock if empty
	allocated uint64
	metaRoot  BlockID // head of the store's metadata blob, NilBlock if none
	closed    bool
}

// CreateFile creates (or truncates) a file-backed store at path with the
// given block size (DefaultBlockSize if size <= 0).
func CreateFile(path string, size int) (*FileBackend, error) {
	if size <= 0 {
		size = DefaultBlockSize
	}
	if size < fileHeaderSize {
		return nil, fmt.Errorf("pager: block size %d smaller than header", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	fb := &FileBackend{f: f, blockSize: size, next: 1, freeHead: NilBlock}
	if err := fb.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fb, nil
}

// OpenFile opens an existing file-backed store created by CreateFile.
func OpenFile(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: reading header: %w", err)
	}
	var magic [8]byte
	copy(magic[:], hdr[:8])
	if magic != fileMagic {
		f.Close()
		return nil, errors.New("pager: not a box pager file")
	}
	fb := &FileBackend{
		f:         f,
		blockSize: int(binary.LittleEndian.Uint32(hdr[8:12])),
		next:      BlockID(binary.LittleEndian.Uint64(hdr[12:20])),
		freeHead:  BlockID(binary.LittleEndian.Uint64(hdr[20:28])),
		allocated: binary.LittleEndian.Uint64(hdr[28:36]),
		metaRoot:  BlockID(binary.LittleEndian.Uint64(hdr[36:44])),
	}
	return fb, nil
}

func (fb *FileBackend) writeHeader() error {
	hdr := make([]byte, fileHeaderSize)
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fb.blockSize))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(fb.next))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(fb.freeHead))
	binary.LittleEndian.PutUint64(hdr[28:36], fb.allocated)
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(fb.metaRoot))
	_, err := fb.f.WriteAt(hdr, 0)
	return err
}

// SetMetaRoot implements MetaRooter; the root is persisted immediately.
func (fb *FileBackend) SetMetaRoot(id BlockID) error {
	if fb.closed {
		return ErrClosed
	}
	fb.metaRoot = id
	return fb.writeHeader()
}

// MetaRoot implements MetaRooter.
func (fb *FileBackend) MetaRoot() (BlockID, error) {
	if fb.closed {
		return NilBlock, ErrClosed
	}
	return fb.metaRoot, nil
}

func (fb *FileBackend) offset(id BlockID) int64 {
	return int64(id) * int64(fb.blockSize)
}

// BlockSize implements Backend.
func (fb *FileBackend) BlockSize() int { return fb.blockSize }

// Allocate implements Backend.
func (fb *FileBackend) Allocate() (BlockID, error) {
	if fb.closed {
		return NilBlock, ErrClosed
	}
	var id BlockID
	if fb.freeHead != NilBlock {
		id = fb.freeHead
		buf := make([]byte, 8)
		if _, err := fb.f.ReadAt(buf, fb.offset(id)); err != nil {
			return NilBlock, err
		}
		fb.freeHead = BlockID(binary.LittleEndian.Uint64(buf))
	} else {
		id = fb.next
		fb.next++
	}
	// Zero the block so allocation semantics match MemBackend.
	zero := make([]byte, fb.blockSize)
	if _, err := fb.f.WriteAt(zero, fb.offset(id)); err != nil {
		return NilBlock, err
	}
	fb.allocated++
	return id, nil
}

// Free implements Backend.
func (fb *FileBackend) Free(id BlockID) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: free of invalid block %d", id)
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(fb.freeHead))
	if _, err := fb.f.WriteAt(buf, fb.offset(id)); err != nil {
		return err
	}
	fb.freeHead = id
	fb.allocated--
	return nil
}

// ReadBlock implements Backend.
func (fb *FileBackend) ReadBlock(id BlockID, buf []byte) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: read of invalid block %d", id)
	}
	if len(buf) != fb.blockSize {
		return fmt.Errorf("pager: read buffer of %d bytes, want %d", len(buf), fb.blockSize)
	}
	_, err := fb.f.ReadAt(buf, fb.offset(id))
	return err
}

// WriteBlock implements Backend.
func (fb *FileBackend) WriteBlock(id BlockID, buf []byte) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: write of invalid block %d", id)
	}
	if len(buf) != fb.blockSize {
		return fmt.Errorf("pager: write buffer of %d bytes, want %d", len(buf), fb.blockSize)
	}
	_, err := fb.f.WriteAt(buf, fb.offset(id))
	return err
}

// NumBlocks implements Backend.
func (fb *FileBackend) NumBlocks() uint64 { return fb.allocated }

// Sync flushes the header and file contents to stable storage.
func (fb *FileBackend) Sync() error {
	if fb.closed {
		return ErrClosed
	}
	if err := fb.writeHeader(); err != nil {
		return err
	}
	return fb.f.Sync()
}

// Close implements Backend, persisting the header first.
func (fb *FileBackend) Close() error {
	if fb.closed {
		return nil
	}
	fb.closed = true
	if err := fb.writeHeader(); err != nil {
		fb.f.Close()
		return err
	}
	return fb.f.Close()
}
