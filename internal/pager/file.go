package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"boxes/internal/faults"
	"boxes/internal/obs"
)

// fileMagic identifies a FileBackend store file (format 2: checksummed
// header, optional per-block CRC sidecar and write-ahead log).
var fileMagic = [8]byte{'B', 'O', 'X', 'P', 'A', 'G', 'E', '2'}

// fileHeaderSize is magic (8) + blockSize (4) + next (8) + free head (8) +
// allocated (8) + meta root (8) + flags (4) + header crc (4).
const fileHeaderSize = 52

// Header feature flags.
const (
	flagChecksums = 1 << 0
	flagWAL       = 1 << 1
)

// crcFileHeaderSize is the sidecar header: magic (8) + blockSize (4) +
// reserved (4). Entries are 4 bytes per block, indexed by block ID.
const crcFileHeaderSize = 16

var crcFileMagic = [8]byte{'B', 'O', 'X', 'C', 'R', 'C', '0', '1'}

// FileOptions configures CreateFileOpts/OpenFileOpts. The zero value is
// the durable default: CRC32-C checksums verified on every read and a
// write-ahead log making every batch all-or-nothing across power cuts.
type FileOptions struct {
	// BlockSize is the block size for CreateFileOpts (DefaultBlockSize if
	// <= 0). Ignored by OpenFileOpts, which reads it from the header.
	BlockSize int
	// NoChecksums creates the file without the CRC sidecar (create only;
	// opening honors the header flags).
	NoChecksums bool
	// NoWAL creates the file without a write-ahead log: writes go in place
	// immediately and a crash mid-operation leaves whatever subset of
	// blocks happened to reach the disk (create only).
	NoWAL bool
	// NoSync skips fsync calls. The commit protocol and its I/O pattern
	// are unchanged, so benchmarks measure the WAL's write amplification
	// without paying for a CI runner's fsync latency. Never use it when
	// the data matters.
	NoSync bool
	// CrashControl injects a simulated power cut at a precise raw write
	// point (tests only). See CrashController.
	CrashControl *CrashController
	// DiskControl injects a pre-planned schedule of composed disk faults
	// (crashes, torn writes, ENOSPC, transient flakes, fsync failures) at
	// precise raw write and sync points (tests and the simulator only).
	// See DiskController. Composes with CrashControl: the crash
	// controller wraps outermost, so both charge the same point order.
	DiskControl *DiskController
}

// ErrNoSpace marks a write that failed because the device is out of
// space (faults.ErrNoSpace re-exported at the pager surface). Unlike
// other permanent write faults it aborts the current transaction cleanly
// — header and staged state roll back to the pre-op snapshot — and the
// store stays writable: the next commit may succeed once space is
// reclaimed, so core must not latch read-only degraded mode on it.
var ErrNoSpace = faults.ErrNoSpace

// ErrPoisoned is returned by every commit attempted after a commit
// failed past a point where the durable state became ambiguous or ran
// ahead of the apply — a failed fsync (the kernel may have dropped the
// dirty pages: fsyncgate), or a phase-2/3 failure that left a committed
// transaction unapplied in the WAL. Accepting further commits in either
// state could truncate a WAL whose images were never applied, silently
// corrupting the store; instead the backend fails every later commit
// fast and the path must be reopened, which resolves the ambiguity by
// redoing (or discarding) the WAL tail.
var ErrPoisoned = errors.New("pager: backend poisoned by a failed commit; reopen to recover from the WAL")

// WALStats counts the physical I/O the durability machinery performs on
// top of the logical block writes, so write amplification is observable.
type WALStats struct {
	Commits       uint64 // committed transactions
	Frames        uint64 // block frames appended to the WAL
	WALBytes      uint64 // bytes appended to the WAL (frames + commits)
	DataBytes     uint64 // bytes applied in place (blocks + headers)
	LogicalWrites uint64 // WriteBlock calls (the paper's counted writes)
	HeaderWrites  uint64 // header rewrites
	Truncations   uint64 // WAL resets after apply

	// Syncs counts WAL fsyncs — the durability points. They are counted
	// even under NoSync so benchmarks measure the fsync *pattern* (one per
	// transaction when committing synchronously, one per group otherwise)
	// without paying a CI runner's fsync latency.
	Syncs uint64
	// DataSyncs counts data/sidecar fsyncs after in-place apply.
	DataSyncs uint64
	// GroupCommits counts commit groups flushed by the group-commit
	// committer; GroupedTxns sums their sizes, so GroupedTxns/GroupCommits
	// is the mean group size.
	GroupCommits uint64
	GroupedTxns  uint64

	// SizeBytes is the current WAL file size (append offset): a point-in-
	// time gauge, not a cumulative counter. It grows with every commit and
	// resets to the header size when the log is truncated after apply, so
	// operators can watch WAL growth between checkpoints.
	SizeBytes uint64
}

// MeanGroupSize returns the average number of transactions per flushed
// commit group (0 before the first group).
func (w WALStats) MeanGroupSize() float64 {
	if w.GroupCommits == 0 {
		return 0
	}
	return float64(w.GroupedTxns) / float64(w.GroupCommits)
}

// WriteAmplification is physical bytes written (WAL + data + checksums)
// per logical block byte, ~2x by construction when the WAL is on: every
// block is written once to the log and once in place.
func (w WALStats) WriteAmplification(blockSize int) float64 {
	logical := w.LogicalWrites * uint64(blockSize)
	if logical == 0 {
		return 0
	}
	return float64(w.WALBytes+w.DataBytes) / float64(logical)
}

// RecoveryInfo reports what OpenFile found in the write-ahead log.
type RecoveryInfo struct {
	Replayed       bool  // one or more committed transactions were applied at open
	ReplayedTxns   int   // committed transactions replayed (a group-commit prefix)
	ReplayedFrames int   // block images the replay wrote
	DiscardedBytes int64 // uncommitted WAL tail discarded at open
	SidecarRebuilt bool  // the checksum sidecar was missing and rebuilt
}

// FileBackend persists blocks in a single file. Block n occupies bytes
// [n*blockSize, (n+1)*blockSize); block 0 holds the header, so BlockID 0
// is naturally unusable, matching NilBlock. Freed blocks are chained into
// a free list through their first 8 bytes.
//
// By default every block carries a CRC32-C in a sidecar (<path>.crc)
// verified on each read, and all writes flow through a write-ahead log
// (<path>.wal): a batch of writes (one Store operation) is staged in
// memory, logged with a commit record, fsynced, and only then applied in
// place, so a power cut at any instant leaves the store at a clean
// operation boundary. OpenFile replays or discards the WAL tail.
type FileBackend struct {
	path      string
	f         blockFile // data file
	wal       blockFile // write-ahead log, nil when NoWAL
	crc       blockFile // checksum sidecar, nil when NoChecksums
	blockSize int
	flags     uint32
	nosync    bool

	next      BlockID // next never-used block
	freeHead  BlockID // head of the free list, NilBlock if empty
	allocated uint64
	metaRoot  BlockID // head of the store's metadata blob, NilBlock if none

	inBatch  bool
	stage    map[BlockID][]byte // staged images of the open batch
	snap     walHeaderState     // header state at BeginBatch, for abort
	walSize  int64              // current WAL append offset
	walSizeA atomic.Int64       // mirror of walSize for lock-free WALStats scrapes

	recovery RecoveryInfo
	statsMu  sync.Mutex // stats are written by the committer goroutine too
	stats    WALStats
	obs      *obs.Registry // nil-safe
	closed   bool

	// poison is set (under poisonMu) the moment a commit fails in a way
	// that leaves the durable state ambiguous or the WAL ahead of the
	// data file: a failed fsync, or any phase-2/3 failure. Every later
	// commit fails fast with it; see ErrPoisoned.
	poisonMu sync.Mutex
	poison   error

	// applyMu serializes in-place block rewrites (phase 2 of a commit,
	// scrub repairs) against the scrubber's raw disk reads, which bypass
	// the staged-image and group-commit overlays (see scrub.go).
	applyMu sync.Mutex

	gc groupState // group-commit machinery (see group.go)
}

// CreateFile creates (or truncates) a file-backed store at path with the
// given block size (DefaultBlockSize if size <= 0), with checksums and the
// write-ahead log enabled.
func CreateFile(path string, size int) (*FileBackend, error) {
	return CreateFileOpts(path, FileOptions{BlockSize: size})
}

// CreateFileOpts creates (or truncates) a file-backed store at path.
func CreateFileOpts(path string, opts FileOptions) (*FileBackend, error) {
	size := opts.BlockSize
	if size <= 0 {
		size = DefaultBlockSize
	}
	if size < fileHeaderSize {
		return nil, fmt.Errorf("pager: block size %d smaller than header", size)
	}
	fb := &FileBackend{
		path:      path,
		blockSize: size,
		next:      1,
		nosync:    opts.NoSync,
	}
	if !opts.NoChecksums {
		fb.flags |= flagChecksums
	}
	if !opts.NoWAL {
		fb.flags |= flagWAL
	}
	f, err := openRaw(path, true, opts.CrashControl, opts.DiskControl)
	if err != nil {
		return nil, err
	}
	fb.f = f
	if fb.flags&flagChecksums != 0 {
		c, err := openRaw(path+".crc", true, opts.CrashControl, opts.DiskControl)
		if err != nil {
			fb.f.Close()
			return nil, err
		}
		fb.crc = c
		if _, err := fb.crc.WriteAt(encodeCRCHeader(size), 0); err != nil {
			fb.closeFiles()
			return nil, err
		}
	}
	if fb.flags&flagWAL != 0 {
		w, err := openRaw(path+".wal", true, opts.CrashControl, opts.DiskControl)
		if err != nil {
			fb.closeFiles()
			return nil, err
		}
		fb.wal = w
		if _, err := fb.wal.WriteAt(encodeWALHeader(size), 0); err != nil {
			fb.closeFiles()
			return nil, err
		}
		fb.setWALSize(walHeaderSize)
	}
	if err := fb.writeHeader(); err != nil {
		fb.closeFiles()
		return nil, err
	}
	if err := fb.syncAll(); err != nil {
		fb.closeFiles()
		return nil, err
	}
	return fb, nil
}

// OpenFile opens an existing file-backed store created by CreateFile,
// replaying or discarding the write-ahead log tail so the store is at a
// clean operation boundary before the first read.
func OpenFile(path string) (*FileBackend, error) {
	return OpenFileOpts(path, FileOptions{})
}

// OpenFileOpts opens an existing store. Durability features come from the
// stored header flags; only NoSync and CrashControl are honored here.
func OpenFileOpts(path string, opts FileOptions) (*FileBackend, error) {
	f, err := openRaw(path, false, opts.CrashControl, opts.DiskControl)
	if err != nil {
		return nil, err
	}
	fb := &FileBackend{path: path, f: f, nosync: opts.NoSync}

	hdr := make([]byte, fileHeaderSize)
	hdrErr := func() error {
		if _, err := fb.f.ReadAt(hdr, 0); err != nil {
			return corruptRegion("header", "reading: %v", err)
		}
		return fb.decodeHeader(hdr)
	}()
	if hdrErr != nil {
		// A torn header is recoverable when the WAL holds a committed
		// transaction: its commit frame carries the full header state.
		if rerr := fb.recoverHeaderFromWAL(path, opts.CrashControl, opts.DiskControl); rerr != nil {
			fb.f.Close()
			if errors.Is(hdrErr, ErrCorrupt) {
				return nil, hdrErr
			}
			return nil, rerr
		}
	}

	if err := fb.validateGeometry(); err != nil {
		fb.f.Close()
		return nil, err
	}
	if fb.flags&flagChecksums != 0 && fb.crc == nil {
		if err := fb.openSidecar(opts.CrashControl, opts.DiskControl); err != nil {
			fb.closeFiles()
			return nil, err
		}
	}
	if fb.flags&flagWAL != 0 {
		if fb.wal == nil {
			if err := fb.openWAL(opts.CrashControl, opts.DiskControl); err != nil {
				fb.closeFiles()
				return nil, err
			}
		}
		if err := fb.recoverWAL(); err != nil {
			fb.closeFiles()
			return nil, err
		}
	}
	if err := fb.validateGeometry(); err != nil { // replay may have grown the file
		fb.closeFiles()
		return nil, err
	}
	return fb, nil
}

// openRaw opens one of the store's files, optionally routed through a
// disk and/or crash controller (the crash controller wraps outermost).
func openRaw(path string, create bool, ctrl *CrashController, dc *DiskController) (blockFile, error) {
	mode := os.O_RDWR
	if create {
		mode |= os.O_CREATE | os.O_TRUNC
	}
	var f blockFile
	osf, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	f = osf
	if dc != nil {
		f = &diskFile{f: f, ctrl: dc}
	}
	if ctrl != nil {
		f = &crashFile{f: f, ctrl: ctrl}
	}
	return f, nil
}

func encodeCRCHeader(blockSize int) []byte {
	buf := make([]byte, crcFileHeaderSize)
	copy(buf[:8], crcFileMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], uint32(blockSize))
	return buf
}

// decodeHeader parses and verifies the 52-byte header.
func (fb *FileBackend) decodeHeader(hdr []byte) error {
	var magic [8]byte
	copy(magic[:], hdr[:8])
	if magic != fileMagic {
		return errors.New("pager: not a box pager file")
	}
	if got, want := binary.LittleEndian.Uint32(hdr[48:52]), checksum(hdr[:48]); got != want {
		return corruptRegion("header", "checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	fb.blockSize = int(binary.LittleEndian.Uint32(hdr[8:12]))
	fb.next = BlockID(binary.LittleEndian.Uint64(hdr[12:20]))
	fb.freeHead = BlockID(binary.LittleEndian.Uint64(hdr[20:28]))
	fb.allocated = binary.LittleEndian.Uint64(hdr[28:36])
	fb.metaRoot = BlockID(binary.LittleEndian.Uint64(hdr[36:44]))
	fb.flags = binary.LittleEndian.Uint32(hdr[44:48])
	return nil
}

// validateGeometry rejects a header inconsistent with the file itself
// instead of letting later reads return garbage.
func (fb *FileBackend) validateGeometry() error {
	if fb.blockSize < fileHeaderSize {
		return corruptRegion("header", "block size %d smaller than header", fb.blockSize)
	}
	if fb.next < 1 {
		return corruptRegion("header", "next block %d out of range", fb.next)
	}
	if fb.allocated > uint64(fb.next-1) {
		return corruptRegion("header", "%d blocks allocated but only %d ever existed", fb.allocated, fb.next-1)
	}
	if fb.freeHead >= fb.next {
		return corruptRegion("header", "free list head %d beyond next=%d", fb.freeHead, fb.next)
	}
	size, err := fileSize(fb.f)
	if err != nil {
		return err
	}
	required := int64(fileHeaderSize)
	if fb.next > 1 {
		required = int64(fb.next) * int64(fb.blockSize)
	}
	if size < required {
		return corruptRegion("header", "header claims %d blocks of %d bytes but the file holds %d bytes",
			fb.next, fb.blockSize, size)
	}
	return nil
}

// rawFiler lets injection wrappers (crashFile, diskFile) expose the file
// they wrap, so fileSize can reach the real *os.File underneath any
// wrapper stack.
type rawFiler interface{ rawFile() blockFile }

// fileSize probes a blockFile's length (blockFile has no Stat).
func fileSize(f blockFile) (int64, error) {
	for {
		if osf, ok := f.(*os.File); ok {
			st, err := osf.Stat()
			if err != nil {
				return 0, err
			}
			return st.Size(), nil
		}
		rf, ok := f.(rawFiler)
		if !ok {
			break
		}
		f = rf.rawFile()
	}
	data, err := readAll(f)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// openSidecar opens (or rebuilds) the checksum sidecar.
func (fb *FileBackend) openSidecar(ctrl *CrashController, dc *DiskController) error {
	if _, err := os.Stat(fb.path + ".crc"); err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		// The sidecar is gone (deleted, or never copied along with the
		// store). Rebuild it from the data we have: no verification is
		// possible for the rebuilt entries, but every later write is
		// protected again.
		c, err := openRaw(fb.path+".crc", true, ctrl, dc)
		if err != nil {
			return err
		}
		fb.crc = c
		if _, err := fb.crc.WriteAt(encodeCRCHeader(fb.blockSize), 0); err != nil {
			return err
		}
		buf := make([]byte, fb.blockSize)
		for id := BlockID(1); id < fb.next; id++ {
			if _, err := fb.f.ReadAt(buf, fb.offset(id)); err != nil {
				return err
			}
			if err := fb.writeCRCEntry(id, checksum(buf)); err != nil {
				return err
			}
		}
		fb.recovery.SidecarRebuilt = true
		return fb.sync(fb.crc)
	}
	c, err := openRaw(fb.path+".crc", false, ctrl, dc)
	if err != nil {
		return err
	}
	fb.crc = c
	hdr := make([]byte, crcFileHeaderSize)
	if _, err := fb.crc.ReadAt(hdr, 0); err != nil {
		return corruptRegion("checksum-file", "reading header: %v", err)
	}
	var magic [8]byte
	copy(magic[:], hdr[:8])
	if magic != crcFileMagic {
		return corruptRegion("checksum-file", "bad magic")
	}
	if bs := int(binary.LittleEndian.Uint32(hdr[8:12])); bs != fb.blockSize {
		return corruptRegion("checksum-file", "block size %d, store uses %d", bs, fb.blockSize)
	}
	return nil
}

// openWAL opens (or creates) the write-ahead log file.
func (fb *FileBackend) openWAL(ctrl *CrashController, dc *DiskController) error {
	_, statErr := os.Stat(fb.path + ".wal")
	missing := os.IsNotExist(statErr)
	if statErr != nil && !missing {
		return statErr
	}
	w, err := openRaw(fb.path+".wal", missing, ctrl, dc)
	if err != nil {
		return err
	}
	fb.wal = w
	if missing {
		if _, err := fb.wal.WriteAt(encodeWALHeader(fb.blockSize), 0); err != nil {
			return err
		}
	}
	fb.setWALSize(walHeaderSize)
	return nil
}

// recoverHeaderFromWAL rebuilds a torn header from the committed
// transaction in the WAL, if there is one. The WAL header supplies the
// block size the store header could not.
func (fb *FileBackend) recoverHeaderFromWAL(path string, ctrl *CrashController, dc *DiskController) error {
	if _, err := os.Stat(path + ".wal"); err != nil {
		return err
	}
	w, err := openRaw(path+".wal", false, ctrl, dc)
	if err != nil {
		return err
	}
	fb.wal = w
	data, err := readAll(fb.wal)
	if err != nil {
		return err
	}
	if len(data) < walHeaderSize {
		return corruptRegion("header", "header unreadable and WAL empty")
	}
	var magic [8]byte
	copy(magic[:], data[:8])
	if magic != walMagic {
		return corruptRegion("wal", "bad magic")
	}
	fb.blockSize = int(binary.LittleEndian.Uint32(data[8:12]))
	txns, _, err := scanWAL(data, fb.blockSize)
	if err != nil {
		return err
	}
	if len(txns) == 0 {
		return corruptRegion("header", "header unreadable and WAL holds no committed transaction")
	}
	// The last committed transaction carries the newest header state; the
	// replay in recoverWAL (called by OpenFileOpts) rewrites the header
	// from it.
	last := txns[len(txns)-1]
	fb.next = last.hdr.next
	fb.freeHead = last.hdr.freeHead
	fb.allocated = last.hdr.allocated
	fb.metaRoot = last.hdr.metaRoot
	fb.flags = last.hdr.flags
	fb.setWALSize(walHeaderSize)
	return nil
}

// recoverWAL scans the log, replays every committed transaction in append
// order (a group-commit crash leaves several), and discards an uncommitted
// tail, leaving the WAL empty.
func (fb *FileBackend) recoverWAL() error {
	data, err := readAll(fb.wal)
	if err != nil {
		return err
	}
	txns, discarded, err := scanWAL(data, fb.blockSize)
	if err != nil {
		return err
	}
	fb.recovery.DiscardedBytes = discarded
	if len(txns) > 0 {
		// Header state comes from the last commit record; each replayed
		// image is pure physical redo, so replaying every transaction in
		// order is idempotent and lands on the committed prefix exactly.
		last := txns[len(txns)-1]
		fb.next = last.hdr.next
		fb.freeHead = last.hdr.freeHead
		fb.allocated = last.hdr.allocated
		fb.metaRoot = last.hdr.metaRoot
		fb.flags = last.hdr.flags
		frames := 0
		for _, txn := range txns {
			if err := validateWALImages(txn, fb.blockSize); err != nil {
				return err
			}
			for _, img := range txn.images {
				if _, err := fb.f.WriteAt(img.data, fb.offset(img.id)); err != nil {
					return err
				}
				if err := fb.writeCRCEntry(img.id, checksum(img.data)); err != nil {
					return err
				}
				frames++
			}
		}
		if err := fb.writeHeader(); err != nil {
			return err
		}
		if err := fb.sync(fb.f); err != nil {
			return err
		}
		if fb.crc != nil {
			if err := fb.sync(fb.crc); err != nil {
				return err
			}
		}
		fb.recovery.Replayed = true
		fb.recovery.ReplayedTxns = len(txns)
		fb.recovery.ReplayedFrames = frames
	}
	if len(data) > walHeaderSize {
		if err := fb.wal.Truncate(walHeaderSize); err != nil {
			return err
		}
	}
	fb.setWALSize(walHeaderSize)
	return nil
}

// RecoveryInfo reports what the open-time WAL scan found.
func (fb *FileBackend) RecoveryInfo() RecoveryInfo { return fb.recovery }

// WALStats reports cumulative durability I/O counters. Safe to call
// concurrently with a running group committer.
func (fb *FileBackend) WALStats() WALStats {
	fb.statsMu.Lock()
	defer fb.statsMu.Unlock()
	st := fb.stats
	st.SizeBytes = uint64(fb.walSizeA.Load())
	return st
}

// setWALSize moves the WAL append offset and its atomic mirror together.
// The offset itself is only touched with the backend quiescent (open,
// recovery) or from the single committing goroutine, but WALStats scrapes
// race with the committer, so they read the mirror.
func (fb *FileBackend) setWALSize(n int64) {
	fb.walSize = n
	fb.walSizeA.Store(n)
}

// ChecksumsEnabled reports whether per-block CRCs are verified on read.
func (fb *FileBackend) ChecksumsEnabled() bool { return fb.flags&flagChecksums != 0 }

// WALEnabled reports whether writes flow through the write-ahead log.
func (fb *FileBackend) WALEnabled() bool { return fb.flags&flagWAL != 0 }

// Bound returns the exclusive upper bound of ever-allocated block IDs.
func (fb *FileBackend) Bound() BlockID { return fb.next }

// Path returns the store file's path.
func (fb *FileBackend) Path() string { return fb.path }

// SetObserver attaches a metrics registry for WAL/commit/corruption
// counters. NewStore propagates its own observer automatically.
func (fb *FileBackend) SetObserver(r *obs.Registry) { fb.obs = r }

func (fb *FileBackend) writeHeader() error {
	return fb.writeHeaderState(fb.headerState())
}

// writeHeaderState writes a specific header snapshot in place — the group
// committer persists the last *committed* transaction's header, which may
// trail the live in-memory fields.
func (fb *FileBackend) writeHeaderState(st walHeaderState) error {
	hdr := make([]byte, fileHeaderSize)
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fb.blockSize))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(st.next))
	binary.LittleEndian.PutUint64(hdr[20:28], uint64(st.freeHead))
	binary.LittleEndian.PutUint64(hdr[28:36], st.allocated)
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(st.metaRoot))
	binary.LittleEndian.PutUint32(hdr[44:48], st.flags)
	binary.LittleEndian.PutUint32(hdr[48:52], checksum(hdr[:48]))
	_, err := fb.f.WriteAt(hdr, 0)
	if err == nil {
		fb.statsMu.Lock()
		fb.stats.HeaderWrites++
		fb.stats.DataBytes += fileHeaderSize
		fb.statsMu.Unlock()
	}
	return err
}

// writeCRCEntry records a block's checksum in the sidecar.
func (fb *FileBackend) writeCRCEntry(id BlockID, sum uint32) error {
	if fb.crc == nil {
		return nil
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], sum)
	_, err := fb.crc.WriteAt(buf[:], crcEntryOffset(id))
	return err
}

func crcEntryOffset(id BlockID) int64 {
	return crcFileHeaderSize + 4*int64(id)
}

// readCRCEntry fetches a block's stored checksum.
func (fb *FileBackend) readCRCEntry(id BlockID) (uint32, error) {
	var buf [4]byte
	if _, err := fb.crc.ReadAt(buf[:], crcEntryOffset(id)); err != nil {
		return 0, corruptBlock(id, "checksum entry unreadable: %v", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (fb *FileBackend) offset(id BlockID) int64 {
	return int64(id) * int64(fb.blockSize)
}

// Poisoned returns the error that poisoned the backend, or nil. A
// poisoned backend fails every commit fast (see ErrPoisoned); reads keep
// working so degraded-mode lookups can continue until the reopen.
func (fb *FileBackend) Poisoned() error {
	fb.poisonMu.Lock()
	defer fb.poisonMu.Unlock()
	return fb.poison
}

// poisonWith latches cause as the backend's poison (first cause wins).
func (fb *FileBackend) poisonWith(cause error) {
	fb.poisonMu.Lock()
	defer fb.poisonMu.Unlock()
	if fb.poison == nil {
		fb.poison = fmt.Errorf("%w: %w", ErrPoisoned, cause)
		fb.obs.Inc(obs.CtrPagerPoisoned)
	}
}

// sync fsyncs one of the store's files. The durability counter (WAL vs
// data) is charged only on success: a failed fsync is NOT a durability
// point, and trusting a retried one would be the fsyncgate bug — after a
// failed fsync the kernel may have dropped the dirty pages, so a later
// clean return proves nothing about these writes. A failure is therefore
// wrapped in faults.SyncError (classified Permanent regardless of errno,
// so the retry layer never re-runs it) and poisons the backend: the
// commit in flight is unresolved until a reopen replays or discards it
// from the WAL. Under NoSync the call trivially succeeds and is still
// counted, so the fsync *pattern* stays measurable in fsync-free
// benchmark runs.
func (fb *FileBackend) sync(f blockFile) error {
	if f == nil {
		return nil
	}
	if !fb.nosync {
		if err := f.Sync(); err != nil {
			serr := &faults.SyncError{Err: err}
			fb.poisonWith(serr)
			return serr
		}
	}
	fb.statsMu.Lock()
	if f == fb.wal {
		fb.stats.Syncs++
	} else {
		fb.stats.DataSyncs++
	}
	fb.statsMu.Unlock()
	if f == fb.wal {
		fb.obs.Inc(obs.CtrPagerWALSyncs)
	}
	return nil
}

func (fb *FileBackend) syncAll() error {
	if err := fb.sync(fb.f); err != nil {
		return err
	}
	if err := fb.sync(fb.crc); err != nil {
		return err
	}
	return fb.sync(fb.wal)
}

func (fb *FileBackend) closeFiles() {
	if fb.f != nil {
		fb.f.Close()
	}
	if fb.crc != nil {
		fb.crc.Close()
	}
	if fb.wal != nil {
		fb.wal.Close()
	}
}

// SetMetaRoot implements MetaRooter. Inside a batch the new root commits
// with the batch; outside it commits immediately.
func (fb *FileBackend) SetMetaRoot(id BlockID) error {
	if fb.closed {
		return ErrClosed
	}
	pre := fb.headerState()
	fb.metaRoot = id
	if fb.inBatch {
		return nil
	}
	if fb.WALEnabled() {
		return fb.commit(nil, pre)
	}
	return fb.writeHeader()
}

// MetaRoot implements MetaRooter.
func (fb *FileBackend) MetaRoot() (BlockID, error) {
	if fb.closed {
		return NilBlock, ErrClosed
	}
	return fb.metaRoot, nil
}

// BlockSize implements Backend.
func (fb *FileBackend) BlockSize() int { return fb.blockSize }

// headerState snapshots the in-memory header fields.
func (fb *FileBackend) headerState() walHeaderState {
	return walHeaderState{
		next:      fb.next,
		freeHead:  fb.freeHead,
		allocated: fb.allocated,
		metaRoot:  fb.metaRoot,
		flags:     fb.flags,
	}
}

func (fb *FileBackend) restoreHeaderState(s walHeaderState) {
	fb.next = s.next
	fb.freeHead = s.freeHead
	fb.allocated = s.allocated
	fb.metaRoot = s.metaRoot
	fb.flags = s.flags
}

// BeginBatch implements TxBackend: subsequent writes, allocations and
// frees stage in memory and commit together at CommitBatch. No I/O.
func (fb *FileBackend) BeginBatch() {
	if !fb.WALEnabled() || fb.inBatch {
		return
	}
	fb.inBatch = true
	fb.stage = make(map[BlockID][]byte, 8)
	fb.snap = fb.headerState()
}

// AbortBatch implements TxBackend: staged state is dropped and the header
// fields roll back, as if the batch never started.
func (fb *FileBackend) AbortBatch() {
	if !fb.inBatch {
		return
	}
	fb.inBatch = false
	fb.stage = nil
	fb.restoreHeaderState(fb.snap)
}

// CommitBatch implements TxBackend: the staged images are logged with a
// commit record, fsynced, applied in place, and the WAL is reset.
func (fb *FileBackend) CommitBatch() error {
	if !fb.inBatch {
		return nil
	}
	fb.inBatch = false
	stage := fb.stage
	fb.stage = nil
	if len(stage) == 0 && fb.headerState() == fb.snap {
		return nil // read-only batch: nothing to commit
	}
	return fb.commit(stage, fb.snap)
}

// commitImplicit wraps a single mutation in its own transaction. The
// caller is responsible for rolling back its header mutation on error
// (commit only restores to pre, the state passed in).
func (fb *FileBackend) commitImplicit(stage map[BlockID][]byte) error {
	return fb.commit(stage, fb.headerState())
}

// mapNoSpace surfaces an out-of-space write failure as the typed
// ErrNoSpace so callers can tell a full-but-healthy disk (clean abort,
// stay writable) from a broken one (degrade).
func mapNoSpace(err error) error {
	if err == nil || errors.Is(err, faults.ErrNoSpace) {
		return err
	}
	if errors.Is(err, syscall.ENOSPC) {
		return fmt.Errorf("%w (%v)", faults.ErrNoSpace, err)
	}
	return err
}

// commit runs the WAL protocol for a set of staged images plus the current
// header state. On failure before the commit record is durable the header
// fields roll back to pre — the abort is clean, the store stays usable,
// and an ENOSPC surfaces as the typed ErrNoSpace. A failed WAL fsync or
// any failure after the durability point instead poisons the backend
// (see ErrPoisoned): in the first case durability of the commit record is
// unknowable, in the second the WAL holds a committed transaction the
// data file does not — either way a later successful commit would
// truncate the WAL over it, so no later commit is allowed until a reopen
// resolves the log.
func (fb *FileBackend) commit(stage map[BlockID][]byte, pre walHeaderState) error {
	if err := fb.Poisoned(); err != nil {
		fb.restoreHeaderState(pre)
		return err
	}
	if fb.gc.on.Load() {
		// While group commit runs every commit funnels through the
		// committer goroutine — the WAL's single appender — and this
		// synchronous path just waits for its group.
		return fb.gcSyncCommit(stage)
	}
	images := sortedImages(stage)

	// Inline commits attribute the same "wal"-row phases as the group
	// committer (frame_write, fsync, apply); here they nest inside the
	// operation's wal_commit phase and, when tracing, appear as writer-lane
	// child spans of the operation.
	section := func(ph obs.Phase, start time.Time) {
		if fb.obs == nil {
			return
		}
		d := time.Since(start)
		fb.obs.ObservePhaseWAL(ph, d)
		if tr := fb.obs.Tracer(); tr.Enabled() {
			tr.RecordAuto(false, ph.String(), start, d)
		}
	}

	// Phase 1: log. Each frame is one raw write, then the commit record,
	// then fsync — the durability point.
	t0 := time.Now()
	logged := 0
	for _, img := range images {
		frame := encodeWALFrame(img.id, img.data)
		if _, err := fb.wal.WriteAt(frame, fb.walSize+int64(logged)); err != nil {
			fb.restoreHeaderState(pre)
			return mapNoSpace(err)
		}
		logged += len(frame)
	}
	commitFrame := encodeWALCommit(len(images), fb.headerState())
	if _, err := fb.wal.WriteAt(commitFrame, fb.walSize+int64(logged)); err != nil {
		fb.restoreHeaderState(pre)
		return mapNoSpace(err)
	}
	logged += len(commitFrame)
	section(obs.PhaseFrameWrite, t0)
	t0 = time.Now()
	if err := fb.sync(fb.wal); err != nil {
		fb.restoreHeaderState(pre)
		return err
	}
	section(obs.PhaseFsync, t0)
	fb.setWALSize(fb.walSize + int64(logged))
	fb.statsMu.Lock()
	fb.stats.Commits++
	fb.stats.Frames += uint64(len(images))
	fb.stats.WALBytes += uint64(logged)
	fb.statsMu.Unlock()
	fb.obs.Inc(obs.CtrPagerWALCommits)
	fb.obs.Add(obs.CtrPagerWALFrames, uint64(len(images)))

	// Phase 2: apply in place. Failures past this point leave a committed
	// transaction in the WAL; recovery at next open completes the apply.
	// applyMu keeps the scrubber's raw reads off blocks mid-overwrite.
	t0 = time.Now()
	defer func() { section(obs.PhaseApply, t0) }()
	if err := func() error {
		fb.applyMu.Lock()
		defer fb.applyMu.Unlock()
		for _, img := range images {
			if _, err := fb.f.WriteAt(img.data, fb.offset(img.id)); err != nil {
				return err
			}
			fb.statsMu.Lock()
			fb.stats.DataBytes += uint64(len(img.data))
			fb.statsMu.Unlock()
			if err := fb.writeCRCEntry(img.id, checksum(img.data)); err != nil {
				return err
			}
		}
		if err := fb.writeHeader(); err != nil {
			return err
		}
		if err := fb.sync(fb.f); err != nil {
			return err
		}
		if fb.crc != nil {
			if err := fb.sync(fb.crc); err != nil {
				return err
			}
		}
		return nil
	}(); err != nil {
		// The commit record is durable but the apply was cut short: the
		// WAL is ahead of the data file. Poison so no later commit can
		// truncate the log over the unapplied images.
		fb.poisonWith(err)
		return err
	}

	// Phase 3: reset the log. If the truncate is lost to a crash the
	// committed transaction replays at next open — pure redo, idempotent.
	if err := fb.wal.Truncate(walHeaderSize); err != nil {
		fb.poisonWith(err)
		return err
	}
	fb.setWALSize(walHeaderSize)
	fb.statsMu.Lock()
	fb.stats.Truncations++
	fb.statsMu.Unlock()
	return nil
}

func sortedImages(stage map[BlockID][]byte) []walImage {
	if len(stage) == 0 {
		return nil
	}
	images := make([]walImage, 0, len(stage))
	for id, data := range stage {
		images = append(images, walImage{id: id, data: data})
	}
	for i := 1; i < len(images); i++ { // insertion sort: batches are small
		for j := i; j > 0 && images[j].id < images[j-1].id; j-- {
			images[j], images[j-1] = images[j-1], images[j]
		}
	}
	return images
}

// readRaw fetches a block image: the open batch's staged copy first, then
// the group-commit overlay (transactions committed to the queue but not
// yet applied in place — consulting it keeps concurrent readers off blocks
// the committer is mid-overwrite), then the data file.
func (fb *FileBackend) readRaw(id BlockID, buf []byte) error {
	if fb.inBatch {
		if img, ok := fb.stage[id]; ok {
			copy(buf, img)
			return nil
		}
	}
	if fb.gcReadOverlay(id, buf) {
		return nil
	}
	if _, err := fb.f.ReadAt(buf, fb.offset(id)); err != nil {
		return err
	}
	if fb.crc != nil {
		want, err := fb.readCRCEntry(id)
		if err != nil {
			fb.obs.Inc(obs.CtrPagerChecksumFailures)
			return err
		}
		if got := checksum(buf); got != want {
			fb.obs.Inc(obs.CtrPagerChecksumFailures)
			return corruptBlock(id, "checksum mismatch (stored %08x, computed %08x)", want, got)
		}
	}
	return nil
}

// stageWrite records a block image into the open batch or commits it as a
// single-write transaction.
func (fb *FileBackend) stageWrite(id BlockID, data []byte) error {
	img := make([]byte, len(data))
	copy(img, data)
	if fb.inBatch {
		fb.stage[id] = img
		return nil
	}
	return fb.commitImplicit(map[BlockID][]byte{id: img})
}

// Allocate implements Backend.
func (fb *FileBackend) Allocate() (BlockID, error) {
	if fb.closed {
		return NilBlock, ErrClosed
	}
	var id BlockID
	pre := fb.headerState()
	if fb.freeHead != NilBlock {
		id = fb.freeHead
		buf := make([]byte, fb.blockSize)
		if err := fb.readRaw(id, buf); err != nil {
			return NilBlock, err
		}
		fb.freeHead = BlockID(binary.LittleEndian.Uint64(buf[:8]))
	} else {
		id = fb.next
		fb.next++
	}
	fb.allocated++
	zero := make([]byte, fb.blockSize)
	if fb.WALEnabled() {
		// Zeroing is staged: it becomes durable with the batch's commit.
		if err := fb.stageWrite(id, zero); err != nil {
			fb.restoreHeaderState(pre)
			return NilBlock, err
		}
		return id, nil
	}
	// Legacy in-place path: zero the block so allocation semantics match
	// MemBackend, and fsync growth before the block's first use so a crash
	// cannot surface a block the header already points past.
	grew := id == fb.next-1
	if _, err := fb.f.WriteAt(zero, fb.offset(id)); err != nil {
		fb.restoreHeaderState(pre)
		return NilBlock, err
	}
	if err := fb.writeCRCEntry(id, checksum(zero)); err != nil {
		fb.restoreHeaderState(pre)
		return NilBlock, err
	}
	if grew {
		if err := fb.sync(fb.f); err != nil {
			fb.restoreHeaderState(pre)
			return NilBlock, err
		}
	}
	return id, nil
}

// Free implements Backend: the block is chained into the free list through
// its first 8 bytes.
func (fb *FileBackend) Free(id BlockID) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: free of invalid block %d", id)
	}
	pre := fb.headerState()
	img := make([]byte, fb.blockSize)
	binary.LittleEndian.PutUint64(img[:8], uint64(fb.freeHead))
	fb.freeHead = id
	fb.allocated--
	if fb.WALEnabled() {
		if err := fb.stageWrite(id, img); err != nil {
			fb.restoreHeaderState(pre)
			return err
		}
		return nil
	}
	if _, err := fb.f.WriteAt(img, fb.offset(id)); err != nil {
		fb.restoreHeaderState(pre)
		return err
	}
	if err := fb.writeCRCEntry(id, checksum(img)); err != nil {
		fb.restoreHeaderState(pre)
		return err
	}
	return nil
}

// ReadBlock implements Backend, verifying the block's checksum.
func (fb *FileBackend) ReadBlock(id BlockID, buf []byte) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: read of invalid block %d", id)
	}
	if len(buf) != fb.blockSize {
		return fmt.Errorf("pager: read buffer of %d bytes, want %d", len(buf), fb.blockSize)
	}
	return fb.readRaw(id, buf)
}

// WriteBlock implements Backend. With the WAL enabled the write stages
// into the open batch (or commits alone); without it the write goes in
// place immediately.
func (fb *FileBackend) WriteBlock(id BlockID, buf []byte) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: write of invalid block %d", id)
	}
	if len(buf) != fb.blockSize {
		return fmt.Errorf("pager: write buffer of %d bytes, want %d", len(buf), fb.blockSize)
	}
	fb.statsMu.Lock()
	fb.stats.LogicalWrites++
	fb.statsMu.Unlock()
	if fb.WALEnabled() {
		return fb.stageWrite(id, buf)
	}
	if _, err := fb.f.WriteAt(buf, fb.offset(id)); err != nil {
		return err
	}
	fb.statsMu.Lock()
	fb.stats.DataBytes += uint64(len(buf))
	fb.statsMu.Unlock()
	return fb.writeCRCEntry(id, checksum(buf))
}

// VerifyBlock reads a block and checks its checksum without returning the
// contents (boxfsck's per-block scan).
func (fb *FileBackend) VerifyBlock(id BlockID) error {
	buf := make([]byte, fb.blockSize)
	return fb.ReadBlock(id, buf)
}

// FreeBlocks walks the free list and returns every block on it. A cycle,
// an out-of-range ID, or an unreadable link surfaces as an error wrapping
// ErrCorrupt.
func (fb *FileBackend) FreeBlocks() ([]BlockID, error) {
	if fb.closed {
		return nil, ErrClosed
	}
	var out []BlockID
	seen := make(map[BlockID]bool)
	buf := make([]byte, fb.blockSize)
	for id := fb.freeHead; id != NilBlock; {
		if id >= fb.next {
			return out, corruptBlock(id, "free list references block beyond next=%d", fb.next)
		}
		if seen[id] {
			return out, corruptBlock(id, "free list cycle")
		}
		seen[id] = true
		out = append(out, id)
		if err := fb.readRaw(id, buf); err != nil {
			return out, err
		}
		id = BlockID(binary.LittleEndian.Uint64(buf[:8]))
	}
	return out, nil
}

// NumBlocks implements Backend.
func (fb *FileBackend) NumBlocks() uint64 { return fb.allocated }

// Sync commits the current header state durably: with the WAL on this is
// a (possibly empty) committed transaction so even a torn header write
// stays recoverable; without it, a plain header write plus fsync.
func (fb *FileBackend) Sync() error {
	if fb.closed {
		return ErrClosed
	}
	if fb.inBatch {
		return errors.New("pager: sync inside an open batch")
	}
	if fb.WALEnabled() {
		if err := fb.commitImplicit(nil); err != nil {
			return err
		}
		return fb.sync(fb.f)
	}
	if err := fb.writeHeader(); err != nil {
		return err
	}
	if err := fb.sync(fb.f); err != nil {
		return err
	}
	return fb.sync(fb.crc)
}

// Close implements Backend, making the header durable first.
func (fb *FileBackend) Close() error {
	if fb.closed {
		return nil
	}
	if fb.inBatch {
		fb.AbortBatch()
	}
	err := fb.StopGroupCommit() // drains and flushes any queued groups
	if serr := fb.Sync(); err == nil {
		err = serr
	}
	fb.closed = true
	if cerr := fb.f.Close(); err == nil {
		err = cerr
	}
	if fb.crc != nil {
		if cerr := fb.crc.Close(); err == nil {
			err = cerr
		}
	}
	if fb.wal != nil {
		if cerr := fb.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var _ TxBackend = (*FileBackend)(nil)
