package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MetaRooter is implemented by backends that can remember the block ID of
// a metadata blob across restarts (FileBackend persists it in its header;
// MemBackend keeps it in memory for symmetry in tests).
type MetaRooter interface {
	SetMetaRoot(id BlockID) error
	MetaRoot() (BlockID, error)
}

// blobHeaderSize is the per-block overhead of a chained blob: next block
// pointer (8) + payload length in this block (4).
const blobHeaderSize = 12

// WriteBlob stores data as a chain of blocks and returns the head block.
// Blobs hold structure metadata (roots, counts, the LIDF extent table) so
// a labeling store can be closed and reopened.
func (s *Store) WriteBlob(data []byte) (BlockID, error) {
	payload := s.BlockSize() - blobHeaderSize
	if payload <= 0 {
		return NilBlock, errors.New("pager: block too small for blobs")
	}
	// Allocate the chain first so each block can point at its successor.
	nblocks := (len(data) + payload - 1) / payload
	if nblocks == 0 {
		nblocks = 1
	}
	ids := make([]BlockID, nblocks)
	for i := range ids {
		id, err := s.Allocate()
		if err != nil {
			return NilBlock, err
		}
		ids[i] = id
	}
	for i := 0; i < nblocks; i++ {
		buf := make([]byte, s.BlockSize())
		next := NilBlock
		if i+1 < nblocks {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint64(buf[0:8], uint64(next))
		chunk := data
		if len(chunk) > payload {
			chunk = chunk[:payload]
		}
		binary.LittleEndian.PutUint32(buf[8:12], uint32(len(chunk)))
		copy(buf[blobHeaderSize:], chunk)
		data = data[len(chunk):]
		if err := s.Write(ids[i], buf); err != nil {
			return NilBlock, err
		}
	}
	return ids[0], nil
}

// ReadBlob reassembles a blob written by WriteBlob.
func (s *Store) ReadBlob(head BlockID) ([]byte, error) {
	var out []byte
	seen := 0
	for id := head; id != NilBlock; {
		buf, err := s.Read(id)
		if err != nil {
			return nil, err
		}
		next := BlockID(binary.LittleEndian.Uint64(buf[0:8]))
		n := int(binary.LittleEndian.Uint32(buf[8:12]))
		if n > s.BlockSize()-blobHeaderSize {
			return nil, fmt.Errorf("pager: blob block %d claims %d payload bytes", id, n)
		}
		out = append(out, buf[blobHeaderSize:blobHeaderSize+n]...)
		id = next
		seen++
		if seen > 1<<24 {
			return nil, errors.New("pager: blob chain too long (cycle?)")
		}
	}
	return out, nil
}

// BlobBlocks returns the block IDs of a blob chain in order, without
// freeing or copying the payload. fsck uses it to mark the metadata blob's
// blocks reachable.
func (s *Store) BlobBlocks(head BlockID) ([]BlockID, error) {
	var out []BlockID
	for id := head; id != NilBlock; {
		if len(out) > 1<<24 {
			return nil, errors.New("pager: blob chain too long (cycle?)")
		}
		out = append(out, id)
		buf, err := s.Read(id)
		if err != nil {
			return out, err
		}
		id = BlockID(binary.LittleEndian.Uint64(buf[0:8]))
	}
	return out, nil
}

// FreeBlob releases a blob chain.
func (s *Store) FreeBlob(head BlockID) error {
	for id := head; id != NilBlock; {
		buf, err := s.Read(id)
		if err != nil {
			return err
		}
		next := BlockID(binary.LittleEndian.Uint64(buf[0:8]))
		if err := s.Free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}
