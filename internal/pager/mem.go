package pager

import (
	"fmt"
)

// MemBackend keeps all blocks in memory. It is the backend used by the
// benchmarks: costs are reported in counted block I/Os, not in seconds, so
// an in-memory device is faithful to the paper's metric while keeping the
// experiments fast.
type MemBackend struct {
	blockSize int
	blocks    [][]byte // index 0 unused; BlockID n lives at blocks[n]
	free      []BlockID
	metaRoot  BlockID
	closed    bool
}

// SetMetaRoot implements MetaRooter.
func (m *MemBackend) SetMetaRoot(id BlockID) error {
	if m.closed {
		return ErrClosed
	}
	m.metaRoot = id
	return nil
}

// MetaRoot implements MetaRooter.
func (m *MemBackend) MetaRoot() (BlockID, error) {
	if m.closed {
		return NilBlock, ErrClosed
	}
	return m.metaRoot, nil
}

// NewMemBackend creates an in-memory backend with the given block size
// (DefaultBlockSize if size <= 0).
func NewMemBackend(size int) *MemBackend {
	if size <= 0 {
		size = DefaultBlockSize
	}
	return &MemBackend{
		blockSize: size,
		blocks:    make([][]byte, 1), // slot 0 reserved for NilBlock
	}
}

// BlockSize implements Backend.
func (m *MemBackend) BlockSize() int { return m.blockSize }

// Allocate implements Backend.
func (m *MemBackend) Allocate() (BlockID, error) {
	if m.closed {
		return NilBlock, ErrClosed
	}
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		m.blocks[id] = make([]byte, m.blockSize)
		return id, nil
	}
	m.blocks = append(m.blocks, make([]byte, m.blockSize))
	return BlockID(len(m.blocks) - 1), nil
}

// Free implements Backend.
func (m *MemBackend) Free(id BlockID) error {
	if m.closed {
		return ErrClosed
	}
	if err := m.check(id); err != nil {
		return err
	}
	m.blocks[id] = nil
	m.free = append(m.free, id)
	return nil
}

// ReadBlock implements Backend.
func (m *MemBackend) ReadBlock(id BlockID, buf []byte) error {
	if m.closed {
		return ErrClosed
	}
	if err := m.check(id); err != nil {
		return err
	}
	if len(buf) != m.blockSize {
		return fmt.Errorf("pager: read buffer of %d bytes, want %d", len(buf), m.blockSize)
	}
	copy(buf, m.blocks[id])
	return nil
}

// WriteBlock implements Backend.
func (m *MemBackend) WriteBlock(id BlockID, buf []byte) error {
	if m.closed {
		return ErrClosed
	}
	if err := m.check(id); err != nil {
		return err
	}
	if len(buf) != m.blockSize {
		return fmt.Errorf("pager: write buffer of %d bytes, want %d", len(buf), m.blockSize)
	}
	copy(m.blocks[id], buf)
	return nil
}

// NumBlocks implements Backend.
func (m *MemBackend) NumBlocks() uint64 {
	return uint64(len(m.blocks) - 1 - len(m.free))
}

// Close implements Backend.
func (m *MemBackend) Close() error {
	m.closed = true
	m.blocks = nil
	m.free = nil
	return nil
}

func (m *MemBackend) check(id BlockID) error {
	if id == NilBlock || int(id) >= len(m.blocks) {
		return fmt.Errorf("pager: block %d out of range", id)
	}
	if m.blocks[id] == nil {
		return fmt.Errorf("pager: block %d is not allocated", id)
	}
	return nil
}
