package pager

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/obs"
)

// Group commit amortizes the WAL fsync — the dominant cost of the durable
// path — over concurrently committing transactions. Instead of running the
// three-phase commit protocol inline, CommitBatchAsync hands the staged
// images plus a header snapshot to a dedicated committer goroutine and
// returns a CommitTicket. The committer drains its queue into one group:
//
//  1. Append every queued transaction's block frames and its own commit
//     record to the WAL, then fsync once — the group's shared durability
//     point.
//  2. Apply the newest image of each touched block in place (a block
//     written by several transactions in the group is applied once),
//     write the last transaction's header, fsync data and sidecar.
//  3. Truncate the WAL and resolve every ticket.
//
// Because each transaction keeps its own commit record, a crash anywhere
// inside phase 1 leaves a clean *prefix* of the group: recovery replays
// the transactions whose commit records are complete and discards the
// torn tail. No interleaving can surface a partial transaction.
//
// Between enqueue and phase 2 the committed images live in an overlay map
// consulted by readRaw, so the enqueuing writer immediately reads its own
// committed state and concurrent shared-path readers never observe a block
// mid-overwrite. Entries are removed — under the same lock — only after
// the in-place write completes, which orders "file holds the new image"
// before "readers go to the file".
//
// Latency policy: a transaction that finds the queue empty and the
// committer idle is marked solo and commits immediately (the sync
// fallback — an uncontended writer pays no added latency). Otherwise the
// committer waits for up to Durability.Every transactions or MaxDelay,
// whichever comes first.

// Durability tunes the group committer started by StartGroupCommit.
type Durability struct {
	// Every is the target group size: the committer flushes as soon as
	// this many transactions are queued. Values <= 1 disable the
	// coalescing wait — each flush takes whatever the queue holds.
	Every int
	// MaxDelay bounds how long a queued transaction waits for company
	// before the group flushes anyway (default 2ms when Every > 1).
	MaxDelay time.Duration
}

// defaultMaxDelay is the coalescing window when Durability.MaxDelay is 0.
const defaultMaxDelay = 2 * time.Millisecond

// CommitTicket is the handle to one asynchronously committing transaction.
// The zero ticket is not meaningful; a nil *CommitTicket waits as resolved
// success, so synchronous paths can hand out nil.
type CommitTicket struct {
	done chan struct{}
	err  error
}

// Wait blocks until the transaction's group is durable and applied, and
// returns the commit error if the group failed.
func (t *CommitTicket) Wait() error {
	if t == nil {
		return nil
	}
	<-t.done
	return t.err
}

// WaitCtx is Wait with a bail-out: it returns ctx.Err() if the context
// expires first. The commit itself is NOT cancelled — the group committer
// owns the transaction and will flush it regardless; the caller merely
// stops waiting for the outcome. Server deadline paths use this to give
// up on a slow flush without ever aborting one mid-commit.
func (t *CommitTicket) WaitCtx(ctx context.Context) error {
	if t == nil {
		return nil
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done returns a channel closed when the ticket resolves (select-friendly
// form of Wait). Err is valid only after Done is closed.
func (t *CommitTicket) Done() <-chan struct{} { return t.done }

// Err returns the commit error; call only after Wait or Done.
func (t *CommitTicket) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

func resolvedTicket(err error) *CommitTicket {
	t := &CommitTicket{done: make(chan struct{}), err: err}
	close(t.done)
	return t
}

// AsyncTxBackend is implemented by backends whose batches can commit
// asynchronously through a group committer (FileBackend after
// StartGroupCommit). Store.EndOp prefers CommitBatchAsync when
// GroupCommitEnabled reports true, parking the ticket for TakeTicket.
type AsyncTxBackend interface {
	TxBackend
	// GroupCommitEnabled reports whether a committer goroutine is running.
	GroupCommitEnabled() bool
	// CommitBatchAsync is CommitBatch minus the inline fsync: the batch is
	// queued for the committer and the returned ticket resolves when it is
	// durable and applied. A read-only batch resolves immediately.
	CommitBatchAsync() (*CommitTicket, error)
}

// groupTxn is one queued transaction awaiting its group.
type groupTxn struct {
	images []walImage     // sorted staged images
	hdr    walHeaderState // header snapshot at enqueue (commit-record payload)
	seq    uint64
	solo   bool // queue was empty and committer idle at enqueue
	ticket *CommitTicket
	enq    time.Time // enqueue instant, for the queue_wait phase
	opSpan uint64    // enqueuing operation's span ID (0 when not tracing)
}

// overlayEntry is a committed-but-not-yet-applied block image.
type overlayEntry struct {
	data []byte
	seq  uint64
}

// groupState is the committer's shared state, embedded in FileBackend.
type groupState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	on       atomic.Bool // fast-path check for readRaw and commit routing
	dur      Durability
	queue    []*groupTxn
	overlay  map[BlockID]overlayEntry
	seq      uint64
	inflight int  // transactions currently being flushed
	hold     bool // test hook: committer pauses before taking a group
	stop     bool
	err      error // sticky: first committer failure poisons later commits
	done     chan struct{}
}

// StartGroupCommit launches the committer goroutine. It requires the WAL
// (the group protocol is a WAL protocol) and no open batch. Durability
// zero values get defaults; see Durability.
func (fb *FileBackend) StartGroupCommit(d Durability) error {
	if fb.closed {
		return ErrClosed
	}
	if !fb.WALEnabled() {
		return errors.New("pager: group commit requires the write-ahead log")
	}
	if fb.inBatch {
		return errors.New("pager: group commit started inside an open batch")
	}
	gc := &fb.gc
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.on.Load() {
		return errors.New("pager: group commit already running")
	}
	if gc.cond == nil {
		gc.cond = sync.NewCond(&gc.mu)
	}
	if d.Every > 1 && d.MaxDelay <= 0 {
		d.MaxDelay = defaultMaxDelay
	}
	gc.dur = d
	gc.overlay = make(map[BlockID]overlayEntry, 32)
	gc.stop = false
	gc.err = nil
	gc.done = make(chan struct{})
	gc.on.Store(true)
	go fb.committer()
	return nil
}

// StopGroupCommit drains the queue, flushes a final group if needed, and
// stops the committer. It returns the sticky committer error, if any.
// Afterwards commits run synchronously again.
func (fb *FileBackend) StopGroupCommit() error {
	gc := &fb.gc
	gc.mu.Lock()
	if !gc.on.Load() {
		gc.mu.Unlock()
		return nil
	}
	gc.stop = true
	gc.cond.Broadcast()
	done := gc.done
	gc.mu.Unlock()
	<-done
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.on.Store(false)
	gc.stop = false
	return gc.err
}

// GroupCommitEnabled implements AsyncTxBackend.
func (fb *FileBackend) GroupCommitEnabled() bool { return fb.gc.on.Load() }

// HoldGroupCommit pauses (true) or resumes (false) the committer before it
// takes its next group. Test hook: holding, enqueuing N transactions, and
// releasing yields one deterministic group of N.
func (fb *FileBackend) HoldGroupCommit(hold bool) {
	gc := &fb.gc
	gc.mu.Lock()
	gc.hold = hold
	if gc.cond != nil {
		gc.cond.Broadcast()
	}
	gc.mu.Unlock()
}

// CommitBatchAsync implements AsyncTxBackend. Without a running committer
// it degenerates to CommitBatch and returns a resolved ticket.
func (fb *FileBackend) CommitBatchAsync() (*CommitTicket, error) {
	if !fb.inBatch {
		return resolvedTicket(nil), nil
	}
	if !fb.gc.on.Load() {
		err := fb.CommitBatch()
		return resolvedTicket(err), err
	}
	fb.inBatch = false
	stage := fb.stage
	fb.stage = nil
	if len(stage) == 0 && fb.headerState() == fb.snap {
		return resolvedTicket(nil), nil // read-only batch: nothing to commit
	}
	return fb.gcEnqueue(sortedImages(stage)), nil
}

// gcEnqueue hands a transaction (its sorted images plus the current header
// snapshot) to the committer. Must be called from the exclusive writer.
func (fb *FileBackend) gcEnqueue(images []walImage) *CommitTicket {
	gc := &fb.gc
	t := &CommitTicket{done: make(chan struct{})}
	if err := fb.Poisoned(); err != nil {
		// A poisoned backend must not accept new transactions: flushing
		// them would truncate a WAL that still holds unapplied images.
		t.err = err
		close(t.done)
		return t
	}
	gc.mu.Lock()
	if gc.err != nil {
		err := gc.err
		gc.mu.Unlock()
		t.err = err
		close(t.done)
		return t
	}
	gc.seq++
	txn := &groupTxn{
		images: images,
		hdr:    fb.headerState(),
		seq:    gc.seq,
		solo:   len(gc.queue) == 0 && gc.inflight == 0,
		ticket: t,
		enq:    time.Now(),
		opSpan: fb.obs.Tracer().WriterSpanID(),
	}
	for _, img := range images {
		gc.overlay[img.id] = overlayEntry{data: img.data, seq: txn.seq}
	}
	gc.queue = append(gc.queue, txn)
	gc.cond.Broadcast()
	gc.mu.Unlock()
	return t
}

// GroupQueueStats is a point-in-time view of the group committer's backlog.
type GroupQueueStats struct {
	// QueueDepth counts transactions enqueued or currently being flushed.
	QueueDepth int
	// OverlayBlocks counts committed-but-unapplied block images held in the
	// overlay map (memory pinned until the in-place apply).
	OverlayBlocks int
}

// GroupQueueStats snapshots the committer's backlog (zeros when group
// commit is off).
func (fb *FileBackend) GroupQueueStats() GroupQueueStats {
	gc := &fb.gc
	if !gc.on.Load() {
		return GroupQueueStats{}
	}
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return GroupQueueStats{QueueDepth: len(gc.queue) + gc.inflight, OverlayBlocks: len(gc.overlay)}
}

// gcReadOverlay copies a committed-but-unapplied image of id into buf,
// reporting whether one exists. Safe from concurrent reader goroutines.
func (fb *FileBackend) gcReadOverlay(id BlockID, buf []byte) bool {
	gc := &fb.gc
	if !gc.on.Load() {
		return false
	}
	gc.mu.Lock()
	e, ok := gc.overlay[id]
	if ok {
		copy(buf, e.data)
	}
	gc.mu.Unlock()
	return ok
}

// gcSyncCommit routes a synchronous commit request (Sync, SetMetaRoot or a
// single out-of-batch write) through the committer and waits for it, so
// the WAL has exactly one appender while group commit runs.
func (fb *FileBackend) gcSyncCommit(stage map[BlockID][]byte) error {
	return fb.gcEnqueue(sortedImages(stage)).Wait()
}

// gcTimedWake broadcasts the committer's condition variable after d, so a
// cond.Wait can honor the MaxDelay deadline.
func (fb *FileBackend) gcTimedWake(d time.Duration) *time.Timer {
	return time.AfterFunc(d, func() {
		fb.gc.mu.Lock()
		fb.gc.cond.Broadcast()
		fb.gc.mu.Unlock()
	})
}

// committer is the group-commit loop: wait for work, optionally linger for
// company, flush the group, resolve tickets.
func (fb *FileBackend) committer() {
	gc := &fb.gc
	defer close(gc.done)
	for {
		gc.mu.Lock()
		for (len(gc.queue) == 0 || gc.hold) && !gc.stop {
			gc.cond.Wait()
		}
		if len(gc.queue) == 0 && gc.stop {
			gc.mu.Unlock()
			return
		}
		// Coalescing wait: unless the head transaction was alone at
		// enqueue (solo → sync fallback), give followers up to MaxDelay
		// to fill the group to Every.
		if n := gc.dur.Every; n > 1 && !gc.stop && !gc.hold && !gc.queue[0].solo && len(gc.queue) < n {
			deadline := time.Now().Add(gc.dur.MaxDelay)
			timer := fb.gcTimedWake(gc.dur.MaxDelay)
			for len(gc.queue) < n && !gc.stop && !gc.hold && time.Now().Before(deadline) {
				gc.cond.Wait()
			}
			timer.Stop()
		}
		group := gc.queue
		gc.queue = nil
		gc.inflight = len(group)
		prevErr := gc.err
		gc.mu.Unlock()

		// Each transaction's wait from enqueue to pickup is the queue_wait
		// phase: with coalescing it is the price of company. Recorded on the
		// "wal" row (the op-level fsync_wait already contains it), and as a
		// commit-queue-lane span parented to the enqueuing op's span.
		if fb.obs != nil {
			pickup := time.Now()
			tr := fb.obs.Tracer()
			for _, txn := range group {
				wait := pickup.Sub(txn.enq)
				fb.obs.ObservePhaseWAL(obs.PhaseQueueWait, wait)
				if tr.Enabled() {
					tr.RecordSpan(obs.LaneQueue, "queue_wait", txn.opSpan, txn.enq, wait, 0, nil)
				}
			}
		}

		err := prevErr
		if err == nil {
			err = fb.applyGroup(group)
		}

		gc.mu.Lock()
		if err != nil && gc.err == nil {
			gc.err = err
		}
		if err == nil {
			// Drop overlay entries the apply made visible in the file.
			// An entry re-staged by a *newer* transaction (higher seq)
			// stays: its image is not on disk yet.
			maxSeq := group[len(group)-1].seq
			for _, txn := range group {
				for _, img := range txn.images {
					if e, ok := gc.overlay[img.id]; ok && e.seq <= maxSeq {
						delete(gc.overlay, img.id)
					}
				}
			}
		}
		gc.inflight = 0
		gc.cond.Broadcast()
		gc.mu.Unlock()

		for _, txn := range group {
			txn.ticket.err = err
			close(txn.ticket.done)
		}
	}
}

// applyGroup runs the WAL protocol for a whole group: every transaction's
// frames and commit record, one fsync, a deduplicated in-place apply, the
// last transaction's header, and the log reset. Runs only on the committer
// goroutine — the sole WAL appender while group commit is on. Each protocol
// section is attributed to a "wal"-row phase (frame_write, fsync, apply)
// and, when tracing, recorded as committer-lane spans under one
// commit_group span — so a trace shows several op spans resolving against a
// single fsync span, the coalescing the group committer exists for.
func (fb *FileBackend) applyGroup(group []*groupTxn) (err error) {
	inst := fb.obs != nil
	tr := fb.obs.Tracer()
	var gsp obs.Span
	if tr.Enabled() {
		gsp = tr.StartLane(obs.LaneCommitter, "commit_group", 0)
		defer func() { gsp.EndCount(len(group), err) }()
	}
	section := func(ph obs.Phase, start time.Time) {
		if !inst {
			return
		}
		d := time.Since(start)
		fb.obs.ObservePhaseWAL(ph, d)
		if tr.Enabled() {
			tr.RecordSpan(obs.LaneCommitter, ph.String(), gsp.ID(), start, d, 0, nil)
		}
	}

	// Phase 1: log the group, fsync once.
	t0 := time.Now()
	start := fb.walSize
	logged := 0
	frames := 0
	for _, txn := range group {
		for _, img := range txn.images {
			frame := encodeWALFrame(img.id, img.data)
			if _, err = fb.wal.WriteAt(frame, start+int64(logged)); err != nil {
				return err
			}
			logged += len(frame)
			frames++
		}
		cf := encodeWALCommit(len(txn.images), txn.hdr)
		if _, err = fb.wal.WriteAt(cf, start+int64(logged)); err != nil {
			return err
		}
		logged += len(cf)
	}
	section(obs.PhaseFrameWrite, t0)
	t0 = time.Now()
	if err = fb.sync(fb.wal); err != nil {
		return err
	}
	section(obs.PhaseFsync, t0)
	fb.setWALSize(fb.walSize + int64(logged))
	fb.statsMu.Lock()
	fb.stats.Commits += uint64(len(group))
	fb.stats.Frames += uint64(frames)
	fb.stats.WALBytes += uint64(logged)
	fb.stats.GroupCommits++
	fb.stats.GroupedTxns += uint64(len(group))
	fb.statsMu.Unlock()
	fb.obs.Add(obs.CtrPagerWALCommits, uint64(len(group)))
	fb.obs.Add(obs.CtrPagerWALFrames, uint64(frames))
	fb.obs.Inc(obs.CtrPagerWALGroups)

	// Phase 2: apply in place, newest image per block. Failures past the
	// fsync leave committed transactions in the WAL; recovery replays them.
	// applyMu keeps the scrubber's raw reads off blocks mid-overwrite.
	t0 = time.Now()
	defer func() { section(obs.PhaseApply, t0) }()
	merged := make(map[BlockID][]byte, frames)
	for _, txn := range group {
		for _, img := range txn.images {
			merged[img.id] = img.data
		}
	}
	if err = func() error {
		fb.applyMu.Lock()
		defer fb.applyMu.Unlock()
		for _, img := range sortedImages(merged) {
			if _, err := fb.f.WriteAt(img.data, fb.offset(img.id)); err != nil {
				return err
			}
			fb.statsMu.Lock()
			fb.stats.DataBytes += uint64(len(img.data))
			fb.statsMu.Unlock()
			if err := fb.writeCRCEntry(img.id, checksum(img.data)); err != nil {
				return err
			}
		}
		if err := fb.writeHeaderState(group[len(group)-1].hdr); err != nil {
			return err
		}
		if err := fb.sync(fb.f); err != nil {
			return err
		}
		if fb.crc != nil {
			if err := fb.sync(fb.crc); err != nil {
				return err
			}
		}
		return nil
	}(); err != nil {
		// Committed-but-unapplied transactions are in the WAL: poison so
		// no later (sync or group) commit truncates the log over them.
		fb.poisonWith(err)
		return err
	}

	// Phase 3: reset the log. Only the committer appends while group
	// commit runs, so everything logged is now applied; losing the
	// truncate to a crash just replays the group — idempotent redo.
	if err = fb.wal.Truncate(walHeaderSize); err != nil {
		fb.poisonWith(err)
		return err
	}
	fb.setWALSize(walHeaderSize)
	fb.statsMu.Lock()
	fb.stats.Truncations++
	fb.statsMu.Unlock()
	return nil
}

var _ AsyncTxBackend = (*FileBackend)(nil)
