package pager

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error returned by a FlakyBackend once its budget is
// exhausted.
var ErrInjected = errors.New("pager: injected I/O failure")

// FlakyBackend wraps a Backend and starts failing every data operation
// after a configurable number of successful ones. It exists for failure
// injection in tests: structures built on the pager must surface the error
// cleanly instead of panicking or silently corrupting their in-memory
// bookkeeping.
//
// A FlakyBackend is safe for concurrent use (to the extent the wrapped
// backend is): its counters are mutex-guarded, and a Store layered on top
// additionally counts each injected failure in its error metrics
// (pager_injected_failures_total), so fault-injection runs are observable.
type FlakyBackend struct {
	Inner Backend
	// Budget is the number of ReadBlock/WriteBlock/Allocate/Free calls
	// that succeed before every further call fails. It models a device
	// that dies and stays dead; for a transient fault that heals, use
	// FailNext instead (which takes precedence while armed).
	Budget int

	mu       sync.Mutex
	ops      int
	injected int
	failNext int // transient mode: fail this many ops, then heal
}

// NewFlakyBackend wraps inner with an operation budget.
func NewFlakyBackend(inner Backend, budget int) *FlakyBackend {
	return &FlakyBackend{Inner: inner, Budget: budget}
}

// NewTransientFlakyBackend wraps inner with no permanent budget; arm
// transient faults with FailNext.
func NewTransientFlakyBackend(inner Backend) *FlakyBackend {
	return &FlakyBackend{Inner: inner, Budget: int(^uint(0) >> 1)}
}

// FailNext arms a transient fault: the next n data operations fail with
// ErrInjected, after which the backend heals and operations succeed again
// (budget permitting). It is how retry-after-transient-error paths are
// exercised: arm, watch the failure surface, then retry and succeed.
func (f *FlakyBackend) FailNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext = n
}

// Healed reports whether no transient fault is currently armed.
func (f *FlakyBackend) Healed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failNext == 0
}

// Ops reports the number of operations attempted so far.
func (f *FlakyBackend) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected reports the number of failures injected so far.
func (f *FlakyBackend) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func (f *FlakyBackend) charge(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.failNext > 0 {
		f.failNext--
		f.injected++
		return fmt.Errorf("%w (%s, transient)", ErrInjected, op)
	}
	if f.ops > f.Budget {
		f.injected++
		return fmt.Errorf("%w (%s after %d ops)", ErrInjected, op, f.Budget)
	}
	return nil
}

// BlockSize implements Backend.
func (f *FlakyBackend) BlockSize() int { return f.Inner.BlockSize() }

// Allocate implements Backend.
func (f *FlakyBackend) Allocate() (BlockID, error) {
	if err := f.charge("allocate"); err != nil {
		return NilBlock, err
	}
	return f.Inner.Allocate()
}

// Free implements Backend.
func (f *FlakyBackend) Free(id BlockID) error {
	if err := f.charge("free"); err != nil {
		return err
	}
	return f.Inner.Free(id)
}

// ReadBlock implements Backend.
func (f *FlakyBackend) ReadBlock(id BlockID, buf []byte) error {
	if err := f.charge("read"); err != nil {
		return err
	}
	return f.Inner.ReadBlock(id, buf)
}

// WriteBlock implements Backend.
func (f *FlakyBackend) WriteBlock(id BlockID, buf []byte) error {
	if err := f.charge("write"); err != nil {
		return err
	}
	return f.Inner.WriteBlock(id, buf)
}

// NumBlocks implements Backend.
func (f *FlakyBackend) NumBlocks() uint64 { return f.Inner.NumBlocks() }

// Close implements Backend.
func (f *FlakyBackend) Close() error { return f.Inner.Close() }
