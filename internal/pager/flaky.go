package pager

import (
	"errors"
	"fmt"

	"boxes/internal/faults"
)

// ErrInjected is the error returned by a FlakyBackend once its budget is
// exhausted.
var ErrInjected = errors.New("pager: injected I/O failure")

// FlakyBackend wraps a Backend and starts failing every data operation
// after a configurable number of successful ones. It exists for failure
// injection in tests: structures built on the pager must surface the error
// cleanly instead of panicking or silently corrupting their in-memory
// bookkeeping.
//
// Decisions are delegated to a seeded faults.Schedule — the same engine
// behind CrashBackend and FaultBackend — so flaky runs compose with the
// other injection shapes and replay deterministically. Transient failures
// (FailNext) wrap faults.ErrTransient, so a Store opened WithRetry absorbs
// them; budget failures are permanent and surface.
//
// A FlakyBackend is safe for concurrent use (to the extent the wrapped
// backend is): the schedule is mutex-guarded, and a Store layered on top
// additionally counts each injected failure in its error metrics
// (pager_injected_failures_total), so fault-injection runs are observable.
type FlakyBackend struct {
	Inner Backend
	// Budget is the number of ReadBlock/WriteBlock/Allocate/Free calls
	// that succeed before every further call fails. It models a device
	// that dies and stays dead; for a transient fault that heals, use
	// FailNext instead (which takes precedence while armed). The field is
	// read before every operation, so tests may adjust it mid-run.
	Budget int

	sched *faults.Schedule
}

// NewFlakyBackend wraps inner with an operation budget.
func NewFlakyBackend(inner Backend, budget int) *FlakyBackend {
	return &FlakyBackend{Inner: inner, Budget: budget, sched: faults.NewSchedule(1)}
}

// NewTransientFlakyBackend wraps inner with no permanent budget; arm
// transient faults with FailNext.
func NewTransientFlakyBackend(inner Backend) *FlakyBackend {
	return NewFlakyBackend(inner, int(^uint(0)>>1))
}

// Schedule exposes the underlying fault schedule, so tests can compose
// further shapes (every-k-th faults, seeded probabilities) on a flaky run.
func (f *FlakyBackend) Schedule() *faults.Schedule { return f.sched }

// FailNext arms a transient fault: the next n data operations fail with
// ErrInjected (marked transient), after which the backend heals and
// operations succeed again (budget permitting). It is how
// retry-after-transient-error paths are exercised: arm, watch the failure
// surface — or a retrying Store absorb it — then succeed.
func (f *FlakyBackend) FailNext(n int) { f.sched.ArmFailNext(n) }

// Healed reports whether no transient fault is currently armed.
func (f *FlakyBackend) Healed() bool { return f.sched.Armed() == 0 }

// Ops reports the number of operations attempted so far.
func (f *FlakyBackend) Ops() int { return f.sched.Ops() }

// Injected reports the number of failures injected so far.
func (f *FlakyBackend) Injected() int { return f.sched.Injected() }

func (f *FlakyBackend) charge(op faults.Op) error {
	f.sched.SetBudget(f.Budget)
	d := f.sched.Decide(op)
	if !d.Fail {
		return nil
	}
	if d.Mode == faults.ModeTransient {
		return fmt.Errorf("%w (%s, %w)", ErrInjected, op, faults.ErrTransient)
	}
	return fmt.Errorf("%w (%s after %d ops)", ErrInjected, op, f.Budget)
}

// BlockSize implements Backend.
func (f *FlakyBackend) BlockSize() int { return f.Inner.BlockSize() }

// Allocate implements Backend.
func (f *FlakyBackend) Allocate() (BlockID, error) {
	if err := f.charge(faults.OpAllocate); err != nil {
		return NilBlock, err
	}
	return f.Inner.Allocate()
}

// Free implements Backend.
func (f *FlakyBackend) Free(id BlockID) error {
	if err := f.charge(faults.OpFree); err != nil {
		return err
	}
	return f.Inner.Free(id)
}

// ReadBlock implements Backend.
func (f *FlakyBackend) ReadBlock(id BlockID, buf []byte) error {
	if err := f.charge(faults.OpRead); err != nil {
		return err
	}
	return f.Inner.ReadBlock(id, buf)
}

// WriteBlock implements Backend.
func (f *FlakyBackend) WriteBlock(id BlockID, buf []byte) error {
	if err := f.charge(faults.OpWrite); err != nil {
		return err
	}
	return f.Inner.WriteBlock(id, buf)
}

// NumBlocks implements Backend.
func (f *FlakyBackend) NumBlocks() uint64 { return f.Inner.NumBlocks() }

// Close implements Backend.
func (f *FlakyBackend) Close() error { return f.Inner.Close() }
