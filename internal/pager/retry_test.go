package pager

import (
	"errors"
	"testing"
	"time"

	"boxes/internal/faults"
	"boxes/internal/obs"
)

func testRetryPolicy() faults.RetryPolicy {
	return faults.RetryPolicy{
		MaxAttempts:    4,
		InitialBackoff: time.Microsecond,
		MaxBackoff:     10 * time.Microsecond,
		Multiplier:     2,
		Seed:           1,
		Sleep:          func(time.Duration) {},
	}
}

// A store with retries absorbs every-k-th transient write faults without
// surfacing a single error.
func TestRetryAbsorbsEveryKthTransientFault(t *testing.T) {
	sched := faults.NewSchedule(3)
	sched.FailEveryKth(3, faults.ModeTransient, faults.OpWrite)
	fb := NewFaultBackend(NewMemBackend(512), sched)
	reg := obs.NewRegistry()
	st := NewStore(fb, WithRetry(testRetryPolicy()), WithObserver(reg))

	var ids []BlockID
	for i := 0; i < 20; i++ {
		id, err := st.Allocate()
		if err != nil {
			t.Fatalf("allocate %d: %v", i, err)
		}
		buf := make([]byte, 512)
		buf[0] = byte(i)
		if err := st.Write(id, buf); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		data, err := st.Read(id)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if data[0] != byte(i) {
			t.Fatalf("block %d holds %d, want %d", id, data[0], i)
		}
	}
	if sched.Injected() == 0 {
		t.Fatalf("schedule injected nothing; the test exercised no faults")
	}
	if got := reg.Counter(obs.CtrPagerRetries); got == 0 {
		t.Fatalf("pager_retries_total = 0, want > 0")
	}
	if got := reg.Counter(obs.CtrPagerRetrySuccesses); got == 0 {
		t.Fatalf("pager_retry_successes_total = 0, want > 0")
	}
	if st.WriteFault() != nil {
		t.Fatalf("absorbed transients latched a write fault: %v", st.WriteFault())
	}
}

// A transient burst longer than the attempt budget exhausts the retries:
// the error surfaces as a permanent ExhaustedError wrapping ErrInjected,
// and the write-fault latch trips.
func TestRetryExhaustionLatchesWriteFault(t *testing.T) {
	flaky := NewTransientFlakyBackend(NewMemBackend(512))
	reg := obs.NewRegistry()
	st := NewStore(flaky, WithRetry(testRetryPolicy()), WithObserver(reg))

	id, err := st.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	flaky.FailNext(100) // far beyond MaxAttempts
	err = st.Write(id, make([]byte, 512))
	if err == nil {
		t.Fatalf("write should have exhausted its retries")
	}
	var ex *faults.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted error should wrap the injected cause, got %v", err)
	}
	if faults.Classify(err) != faults.Permanent {
		t.Fatalf("exhausted retries must classify permanent")
	}
	if st.WriteFault() == nil {
		t.Fatalf("exhausted write retries must latch the write fault")
	}
	if got := reg.Counter(obs.CtrPagerRetryExhausted); got != 1 {
		t.Fatalf("pager_retry_exhausted_total = %d, want 1", got)
	}

	// The device heals (burst drained by the retries themselves plus
	// subsequent ops): new writes succeed, but the latch stays until
	// explicitly cleared.
	flaky.FailNext(0)
	if err := st.Write(id, make([]byte, 512)); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if st.WriteFault() == nil {
		t.Fatalf("write fault latch must be sticky")
	}
	st.ClearWriteFault()
	if st.WriteFault() != nil {
		t.Fatalf("ClearWriteFault did not clear")
	}
}

// Reads of a quarantined block fail fast with a typed corruption error;
// a successful rewrite lifts the quarantine.
func TestQuarantineFastFailAndLift(t *testing.T) {
	st := NewMemStore(512)
	id, err := st.Allocate()
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if err := st.Write(id, make([]byte, 512)); err != nil {
		t.Fatalf("write: %v", err)
	}
	st.Quarantine(id, errors.New("checksum mismatch"))
	if got := st.QuarantinedBlocks(); len(got) != 1 || got[0] != id {
		t.Fatalf("QuarantinedBlocks = %v", got)
	}
	_, err = st.Read(id)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of quarantined block: %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Block != id {
		t.Fatalf("corrupt error should carry the block id, got %v", err)
	}
	if err := st.Write(id, make([]byte, 512)); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got := st.QuarantinedBlocks(); len(got) != 0 {
		t.Fatalf("rewrite should lift the quarantine, still have %v", got)
	}
	if _, err := st.Read(id); err != nil {
		t.Fatalf("read after lift: %v", err)
	}
}
