package pager

import (
	"errors"
	"fmt"
)

// BackupTo writes a consistent logical snapshot of the store to a fresh
// file at path (plus its .crc / .wal sidecars, matching the source's
// geometry and feature flags). Every block image is read through readRaw —
// which consults the group-commit overlay and verifies checksums — so the
// copy reflects exactly the committed state at the moment of the call and
// a corrupt source block aborts the backup rather than propagating rot.
// The destination gets a freshly computed checksum sidecar and an empty
// WAL: restore is plain file copy (or opening the backup directly), no
// replay needed.
//
// The caller must exclude writers for the duration (a SyncStore read lock
// does); the group-commit committer may keep applying already-committed
// transactions concurrently — those are part of the snapshot either way,
// served from the overlay before the apply and from disk after.
func (fb *FileBackend) BackupTo(path string) error {
	if fb.closed {
		return ErrClosed
	}
	if fb.inBatch {
		return errors.New("pager: backup with an open batch")
	}
	if path == fb.path {
		return errors.New("pager: backup target is the store itself")
	}
	st := fb.headerState()

	dst, err := CreateFileOpts(path, FileOptions{
		BlockSize:   fb.blockSize,
		NoChecksums: fb.crc == nil,
		NoWAL:       fb.wal == nil,
	})
	if err != nil {
		return err
	}
	copyBlocks := func() error {
		buf := make([]byte, fb.blockSize)
		for id := BlockID(1); id < st.next; id++ {
			if err := fb.readRaw(id, buf); err != nil {
				return fmt.Errorf("backup: source block %d: %w", id, err)
			}
			if _, err := dst.f.WriteAt(buf, dst.offset(id)); err != nil {
				return err
			}
			if dst.crc != nil {
				if err := dst.writeCRCEntry(id, checksum(buf)); err != nil {
					return err
				}
			}
		}
		dst.next = st.next
		dst.freeHead = st.freeHead
		dst.allocated = st.allocated
		dst.metaRoot = st.metaRoot
		if err := dst.writeHeader(); err != nil {
			return err
		}
		return dst.syncAll()
	}
	if err := copyBlocks(); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}
