package pager

import "boxes/internal/obs"

// CollectGauges implements obs.Collector for the block store: backend
// footprint, LRU cache fill, and the cumulative hit ratio (derived from
// the observer's hit/miss counters, so it reflects the same accounting the
// paper's caching-on experiments use). Collection reads in-memory state
// only.
func (s *Store) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("pager_blocks", "Blocks currently allocated in the backend.", float64(s.backend.NumBlocks())),
	}
	if s.cache != nil {
		gs = append(gs,
			obs.G("pager_cache_blocks", "Blocks held by the global LRU cache.", float64(s.cache.len())),
			obs.G("pager_cache_capacity", "Capacity of the global LRU cache in blocks.", float64(s.cache.capacity)),
		)
	}
	hits := s.obs.Counter(obs.CtrPagerCacheHits)
	misses := s.obs.Counter(obs.CtrPagerCacheMisses)
	if total := hits + misses; total > 0 {
		gs = append(gs, obs.G("pager_cache_hit_ratio",
			"Cumulative LRU hit fraction over all cache-eligible reads.",
			float64(hits)/float64(total)))
	}
	if ws, ok := s.backend.(WALStatser); ok {
		st := ws.WALStats()
		gs = append(gs,
			obs.G("pager_wal_commits", "Write-ahead log transactions committed.", float64(st.Commits)),
			obs.G("pager_wal_frames", "Block images appended to the write-ahead log.", float64(st.Frames)),
			obs.G("pager_wal_bytes", "Bytes appended to the write-ahead log.", float64(st.WALBytes)),
			obs.G("pager_wal_data_bytes", "Bytes applied in place after commit.", float64(st.DataBytes)),
			obs.G("pager_wal_write_amplification",
				"Physical bytes written (WAL + data + header) per logical block byte.",
				st.WriteAmplification(s.backend.BlockSize())),
			obs.G("pager_wal_syncs", "Write-ahead log fsyncs (durability points).", float64(st.Syncs)),
			obs.G("pager_wal_data_syncs", "Data/sidecar fsyncs after in-place apply.", float64(st.DataSyncs)),
			obs.G("pager_wal_group_commits", "Commit groups flushed by the group committer.", float64(st.GroupCommits)),
			obs.G("pager_wal_group_size", "Mean transactions per flushed commit group.", st.MeanGroupSize()),
			obs.G("pager_wal_size_bytes",
				"Current write-ahead log file size in bytes (grows between truncations).",
				float64(st.SizeBytes)),
		)
		if st.Commits > 0 {
			gs = append(gs, obs.G("pager_wal_syncs_per_commit",
				"WAL fsyncs per committed transaction (group commit amortizes below 1).",
				float64(st.Syncs)/float64(st.Commits)))
		}
	}
	if qs, ok := s.backend.(GroupQueueStatser); ok {
		q := qs.GroupQueueStats()
		gs = append(gs,
			obs.G("pager_gc_queue_depth", "Transactions queued or in flight at the group committer.", float64(q.QueueDepth)),
			obs.G("pager_gc_overlay_blocks", "Committed-but-unapplied block images in the group-commit overlay.", float64(q.OverlayBlocks)),
		)
	}
	return gs
}

// GroupQueueStatser is implemented by backends running a group committer
// (FileBackend). Store surfaces the backlog as pager_gc_* gauges.
type GroupQueueStatser interface {
	GroupQueueStats() GroupQueueStats
}

// WALStatser is implemented by backends that track durability I/O
// (FileBackend). Store surfaces the stats as pager_wal_* gauges.
type WALStatser interface {
	WALStats() WALStats
}

var _ obs.Collector = (*Store)(nil)
