package pager

import "boxes/internal/obs"

// CollectGauges implements obs.Collector for the block store: backend
// footprint, LRU cache fill, and the cumulative hit ratio (derived from
// the observer's hit/miss counters, so it reflects the same accounting the
// paper's caching-on experiments use). Collection reads in-memory state
// only.
func (s *Store) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("pager_blocks", "Blocks currently allocated in the backend.", float64(s.backend.NumBlocks())),
	}
	if s.cache != nil {
		gs = append(gs,
			obs.G("pager_cache_blocks", "Blocks held by the global LRU cache.", float64(s.cache.len())),
			obs.G("pager_cache_capacity", "Capacity of the global LRU cache in blocks.", float64(s.cache.capacity)),
		)
	}
	hits := s.obs.Counter(obs.CtrPagerCacheHits)
	misses := s.obs.Counter(obs.CtrPagerCacheMisses)
	if total := hits + misses; total > 0 {
		gs = append(gs, obs.G("pager_cache_hit_ratio",
			"Cumulative LRU hit fraction over all cache-eligible reads.",
			float64(hits)/float64(total)))
	}
	return gs
}

var _ obs.Collector = (*Store)(nil)
