package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The durability tests share one tiny scripted workload: a root block
// holding an op counter, four data blocks rewritten round-robin, one
// free-then-reallocate cycle. Small enough that a full crash-point sweep
// stays fast, rich enough to cover writes, growth, free-list churn and
// meta-root updates in every transaction position.

const (
	scriptBlockSize = 128
	scriptOps       = 10
)

// scriptSetup creates the store and its initial blocks (root=1, data=2..5)
// without crash injection, so the sweep's crash points all land inside the
// scripted ops rather than file creation.
func scriptSetup(t *testing.T, path string, opts FileOptions) {
	t.Helper()
	opts.BlockSize = scriptBlockSize
	fb, err := CreateFileOpts(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	st.BeginOp()
	for i := 0; i < 5; i++ {
		if _, err := st.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, scriptBlockSize)
	for id := BlockID(1); id <= 5; id++ {
		if err := st.Write(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndOp(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// scriptOp applies the i-th op (1-based) to the store. Every op bumps the
// root counter and rewrites one data block; op 4 frees block 5 and op 7
// reallocates it.
func scriptOp(st *Store, i int) error {
	st.BeginOp()
	root, err := st.Read(1)
	if err != nil {
		st.EndOp()
		return err
	}
	binary.LittleEndian.PutUint64(root[:8], uint64(i))
	if err := st.Write(1, root); err != nil {
		st.EndOp()
		return err
	}
	target := BlockID(2 + (i % 3)) // blocks 2..4 (5 may be freed)
	buf := make([]byte, scriptBlockSize)
	for j := range buf {
		buf[j] = byte(i)
	}
	if err := st.Write(target, buf); err != nil {
		st.EndOp()
		return err
	}
	switch i {
	case 4:
		if err := st.Free(5); err != nil {
			st.EndOp()
			return err
		}
	case 7:
		id, err := st.Allocate()
		if err != nil {
			st.EndOp()
			return err
		}
		if err := st.Write(id, buf); err != nil {
			st.EndOp()
			return err
		}
	}
	return st.EndOp()
}

// scriptState is the externally observable store state after k ops.
type scriptState struct {
	counter uint64
	blocks  map[BlockID][]byte // live blocks only
	free    []BlockID
	num     uint64
}

// captureState reads the observable state of an open backend.
func captureState(t *testing.T, fb *FileBackend) scriptState {
	t.Helper()
	free, err := fb.FreeBlocks()
	if err != nil {
		t.Fatalf("free list walk: %v", err)
	}
	isFree := make(map[BlockID]bool)
	for _, id := range free {
		isFree[id] = true
	}
	s := scriptState{blocks: make(map[BlockID][]byte), free: free, num: fb.NumBlocks()}
	for id := BlockID(1); id < fb.Bound(); id++ {
		if isFree[id] {
			continue
		}
		buf := make([]byte, fb.BlockSize())
		if err := fb.ReadBlock(id, buf); err != nil {
			t.Fatalf("read block %d: %v", id, err)
		}
		s.blocks[id] = buf
	}
	s.counter = binary.LittleEndian.Uint64(s.blocks[1][:8])
	return s
}

func statesEqual(a, b scriptState) bool {
	if a.counter != b.counter || a.num != b.num || len(a.blocks) != len(b.blocks) || len(a.free) != len(b.free) {
		return false
	}
	for id, buf := range a.blocks {
		if !bytes.Equal(buf, b.blocks[id]) {
			return false
		}
	}
	for i, id := range a.free {
		if b.free[i] != id {
			return false
		}
	}
	return true
}

// goldenStates runs the script with no crash injection, capturing the
// state after each op: goldenStates[k] is the state after k successful ops.
func goldenStates(t *testing.T, dir string) []scriptState {
	t.Helper()
	path := filepath.Join(dir, "golden.box")
	scriptSetup(t, path, FileOptions{})
	states := make([]scriptState, 0, scriptOps+1)
	for k := 0; k <= scriptOps; k++ {
		fb, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 {
			if err := scriptOp(NewStore(fb), k); err != nil {
				t.Fatalf("golden op %d: %v", k, err)
			}
		}
		states = append(states, captureState(t, fb))
		if err := fb.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return states
}

// countScriptWrites runs the whole script under a counting controller and
// reports the number of raw write points.
func countScriptWrites(t *testing.T, dir string) int {
	t.Helper()
	path := filepath.Join(dir, "count.box")
	scriptSetup(t, path, FileOptions{})
	ctrl := NewCrashController(0, false)
	fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	for i := 1; i <= scriptOps; i++ {
		if err := scriptOp(st, i); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	writes := ctrl.Writes() // before Close, which writes too
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return writes
}

// TestCrashPointSweep is the pager-level crash matrix: the scripted
// workload is killed at every raw write point (full cut and torn write),
// the store is reopened with plain OpenFile, and the recovered state must
// match the golden state after k or k+1 ops, where k ops returned success
// before the cut (k+1 when the dying op's commit record was already
// durable).
func TestCrashPointSweep(t *testing.T) {
	dir := t.TempDir()
	golden := goldenStates(t, dir)
	writes := countScriptWrites(t, dir)
	if writes < scriptOps {
		t.Fatalf("only %d write points for %d ops", writes, scriptOps)
	}
	for _, torn := range []bool{false, true} {
		for at := 1; at <= writes; at++ {
			name := fmt.Sprintf("crash@%d", at)
			if torn {
				name = fmt.Sprintf("torn@%d", at)
			}
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "sweep.box")
				scriptSetup(t, path, FileOptions{})
				ctrl := NewCrashController(at, torn)
				fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
				if err != nil {
					t.Fatal(err)
				}
				st := NewStore(fb)
				k := 0
				for i := 1; i <= scriptOps; i++ {
					if err := scriptOp(st, i); err != nil {
						if !errors.Is(err, ErrCrashed) {
							t.Fatalf("op %d failed with %v, want ErrCrashed", i, err)
						}
						break
					}
					k++
				}
				if !ctrl.Crashed() {
					t.Fatalf("controller never fired (crashAt=%d, %d writes)", at, ctrl.Writes())
				}
				st.Close() // descriptors must not leak; errors expected

				rec, err := OpenFile(path)
				if err != nil {
					t.Fatalf("recovery open after crash@%d: %v", at, err)
				}
				defer rec.Close()
				got := captureState(t, rec)
				if !statesEqual(got, golden[k]) && !statesEqual(got, golden[k+1]) {
					t.Fatalf("recovered state (counter=%d) matches neither golden[%d] nor golden[%d]",
						got.counter, k, k+1)
				}
				// Every block — live or free — must verify cleanly.
				for id := BlockID(1); id < rec.Bound(); id++ {
					if err := rec.VerifyBlock(id); err != nil {
						t.Fatalf("block %d fails verification after recovery: %v", id, err)
					}
				}
			})
		}
	}
}

// TestCrashDuringSetupStillOpens covers the one scenario the sweep skips:
// a cut during file creation. The store may be unusable, but opening it
// must fail cleanly, never panic.
func TestCrashDuringSetupStillOpens(t *testing.T) {
	for at := 1; at <= 6; at++ {
		path := filepath.Join(t.TempDir(), "young.box")
		ctrl := NewCrashController(at, true)
		fb, err := CreateFileOpts(path, FileOptions{BlockSize: scriptBlockSize, CrashControl: ctrl})
		if err == nil {
			fb.Close()
		}
		if _, statErr := os.Stat(path); statErr != nil {
			continue // the data file never came to exist
		}
		rec, err := OpenFile(path)
		if err == nil {
			rec.Close()
		}
	}
}

func TestRecoveryReplaysCommittedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.box")
	scriptSetup(t, path, FileOptions{})

	// Find the write point where the op's commit record is durable but the
	// apply has not begun, by crashing right after the WAL fsync: frames for
	// the op (root + data block) plus a commit record = 3 WAL writes.
	ctrl := NewCrashController(4, false) // 3 WAL appends, then die on first apply
	fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	err = scriptOp(st, 1)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op survived: %v", err)
	}
	st.Close()

	rec, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	info := rec.RecoveryInfo()
	if !info.Replayed || info.ReplayedFrames == 0 {
		t.Fatalf("recovery did not replay: %+v", info)
	}
	buf := make([]byte, scriptBlockSize)
	if err := rec.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if c := binary.LittleEndian.Uint64(buf[:8]); c != 1 {
		t.Fatalf("counter = %d after replay, want 1", c)
	}
}

func TestRecoveryDiscardsUncommittedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "discard.box")
	scriptSetup(t, path, FileOptions{})

	ctrl := NewCrashController(2, false) // die before the commit record
	fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	err = scriptOp(st, 1)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op survived: %v", err)
	}
	st.Close()

	rec, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	info := rec.RecoveryInfo()
	if info.Replayed {
		t.Fatalf("uncommitted tail was replayed: %+v", info)
	}
	if info.DiscardedBytes == 0 {
		t.Fatalf("no tail discarded: %+v", info)
	}
	buf := make([]byte, scriptBlockSize)
	if err := rec.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if c := binary.LittleEndian.Uint64(buf[:8]); c != 0 {
		t.Fatalf("counter = %d after discard, want 0", c)
	}
}

func TestChecksumCatchesBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.box")
	scriptSetup(t, path, FileOptions{})

	// Flip one byte in the middle of block 3's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(3*scriptBlockSize + 17)
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x40
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	buf := make([]byte, scriptBlockSize)
	err = fb.ReadBlock(3, buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Block != 3 {
		t.Fatalf("corruption error does not carry the block ID: %v", err)
	}
	// Other blocks stay readable.
	if err := fb.ReadBlock(2, buf); err != nil {
		t.Fatalf("healthy block unreadable: %v", err)
	}
}

func TestHeaderBitFlipRejectedAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdrflip.box")
	scriptSetup(t, path, FileOptions{})

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, 20); err != nil { // inside the freeHead field
		t.Fatal(err)
	}
	one[0] ^= 0x01
	if _, err := f.WriteAt(one, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = OpenFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt header accepted: %v", err)
	}
}

func TestWALTailGarbageDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.box")
	scriptSetup(t, path, FileOptions{})

	w, err := os.OpenFile(path+".wal", os.O_RDWR|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(bytes.Repeat([]byte{0xEE}, 37)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("garbage WAL tail blocked open: %v", err)
	}
	defer fb.Close()
	if d := fb.RecoveryInfo().DiscardedBytes; d != 37 {
		t.Fatalf("discarded %d bytes, want 37", d)
	}
}

func TestOpenRejectsTruncatedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.box")
	scriptSetup(t, path, FileOptions{})

	if err := os.Truncate(path, int64(3*scriptBlockSize)); err != nil {
		t.Fatal(err)
	}
	// The WAL is empty (clean close), so the intact header now disagrees
	// with the file size.
	_, err := OpenFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file accepted: %v", err)
	}
}

func TestSidecarRebuiltWhenMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nocrc.box")
	scriptSetup(t, path, FileOptions{})
	if err := os.Remove(path + ".crc"); err != nil {
		t.Fatal(err)
	}
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatalf("open without sidecar: %v", err)
	}
	defer fb.Close()
	if !fb.RecoveryInfo().SidecarRebuilt {
		t.Fatal("sidecar not flagged as rebuilt")
	}
	for id := BlockID(1); id < fb.Bound(); id++ {
		if err := fb.VerifyBlock(id); err != nil {
			t.Fatalf("block %d fails after rebuild: %v", id, err)
		}
	}
}

func TestNoWALTornWriteDetectedByChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nowal.box")
	scriptSetup(t, path, FileOptions{NoWAL: true})

	ctrl := NewCrashController(1, true) // first in-place block write tears
	fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	if fb.WALEnabled() {
		t.Fatal("NoWAL store reopened with WAL enabled")
	}
	st := NewStore(fb)
	err = scriptOp(st, 1)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("op survived: %v", err)
	}
	st.Close()

	rec, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// Without a WAL the torn block stays torn: the checksum must catch it
	// rather than hand back a half-old half-new image.
	sawCorrupt := false
	buf := make([]byte, scriptBlockSize)
	for id := BlockID(1); id < rec.Bound(); id++ {
		if err := rec.ReadBlock(id, buf); errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("torn in-place write went undetected (this is the damage the WAL exists to prevent)")
	}
}

func TestWALWriteAmplificationBounded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "amp.box")
	scriptSetup(t, path, FileOptions{})
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	for i := 1; i <= scriptOps; i++ {
		if err := scriptOp(st, i); err != nil {
			t.Fatal(err)
		}
	}
	stats := fb.WALStats()
	amp := stats.WriteAmplification(fb.BlockSize())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if amp <= 1.0 {
		t.Fatalf("write amplification %.2f <= 1, stats not plausible: %+v", amp, stats)
	}
	// Each block is written twice (WAL + in place) plus per-txn commit and
	// header records; with tiny test blocks the fixed overhead is larger
	// than it would be at 8 KB, so the bound here is loose.
	if amp > 4.0 {
		t.Fatalf("write amplification %.2f > 4, WAL writing too much: %+v", amp, stats)
	}
}

func TestCrashBackendPowerCut(t *testing.T) {
	inner := NewMemBackend(64)
	cb := NewCrashBackend(inner, 2, false)
	a, err := cb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{1}, 64)
	if err := cb.WriteBlock(a, buf); err != nil {
		t.Fatal(err)
	}
	err = cb.WriteBlock(b, buf)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("second write survived: %v", err)
	}
	if !cb.Crashed() {
		t.Fatal("backend not marked crashed")
	}
	// Everything after the cut fails, reads included.
	if err := cb.ReadBlock(a, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if _, err := cb.Allocate(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("allocate after crash: %v", err)
	}
	// The block the fatal write targeted kept its old contents (full cut).
	out := make([]byte, 64)
	if err := inner.ReadBlock(b, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, make([]byte, 64)) {
		t.Fatal("full-cut write partially applied")
	}
}

func TestCrashBackendTornWrite(t *testing.T) {
	inner := NewMemBackend(64)
	cb := NewCrashBackend(inner, 2, true)
	id, _ := cb.Allocate()
	old := bytes.Repeat([]byte{0xAA}, 64)
	if err := cb.WriteBlock(id, old); err != nil {
		t.Fatal(err)
	}
	niu := bytes.Repeat([]byte{0xBB}, 64)
	if err := cb.WriteBlock(id, niu); !errors.Is(err, ErrCrashed) {
		t.Fatalf("fatal write returned %v", err)
	}
	out := make([]byte, 64)
	if err := inner.ReadBlock(id, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:32], niu[:32]) || !bytes.Equal(out[32:], old[32:]) {
		t.Fatal("torn write did not produce half-new half-old image")
	}
}

func TestFlakyBackendHeals(t *testing.T) {
	inner := NewMemBackend(64)
	fl := NewTransientFlakyBackend(inner)
	id, err := fl.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	fl.FailNext(2)
	if err := fl.WriteBlock(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("first armed op: %v", err)
	}
	if err := fl.ReadBlock(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second armed op: %v", err)
	}
	if !fl.Healed() {
		t.Fatal("fault still armed after two failures")
	}
	if err := fl.WriteBlock(id, buf); err != nil {
		t.Fatalf("op after heal: %v", err)
	}
	if got := fl.Injected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
}

func TestStoreRetriesAfterTransientFault(t *testing.T) {
	inner := NewMemBackend(64)
	fl := NewTransientFlakyBackend(inner)
	st := NewStore(fl)
	id, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{7}, 64)

	fl.FailNext(1)
	st.BeginOp()
	if err := st.Write(id, buf); err != nil {
		t.Fatal(err) // staged, no backend I/O yet
	}
	if err := st.EndOp(); !errors.Is(err, ErrInjected) {
		t.Fatalf("flush with armed fault: %v", err)
	}

	// The device healed; the same logical op retried now succeeds.
	st.BeginOp()
	if err := st.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := st.EndOp(); err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	got, err := st.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("retried write not visible")
	}
}

func TestNoChecksumFileSkipsSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.box")
	scriptSetup(t, path, FileOptions{NoChecksums: true, NoWAL: true})
	if _, err := os.Stat(path + ".crc"); !os.IsNotExist(err) {
		t.Fatal("sidecar created despite NoChecksums")
	}
	if _, err := os.Stat(path + ".wal"); !os.IsNotExist(err) {
		t.Fatal("WAL created despite NoWAL")
	}
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.ChecksumsEnabled() || fb.WALEnabled() {
		t.Fatal("feature flags not honored from header")
	}
}
