package pager

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// groupSetup creates a store with blocks 1..n pre-allocated and zeroed, so
// group-commit transactions mutate existing blocks without header churn.
func groupSetup(t *testing.T, path string, n int) {
	t.Helper()
	fb, err := CreateFileOpts(path, FileOptions{BlockSize: scriptBlockSize})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	st.BeginOp()
	for i := 0; i < n; i++ {
		if _, err := st.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndOp(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func fill(b byte) []byte {
	buf := make([]byte, scriptBlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// TestGroupCommitDurable runs the scripted workload with the committer on,
// waiting on each ticket, and checks the recovered state matches the
// synchronous golden run.
func TestGroupCommitDurable(t *testing.T) {
	dir := t.TempDir()
	golden := goldenStates(t, dir)

	path := filepath.Join(dir, "group.box")
	scriptSetup(t, path, FileOptions{})
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.StartGroupCommit(Durability{Every: 4, MaxDelay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	for i := 1; i <= scriptOps; i++ {
		if err := scriptOp(st, i); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := st.TakeTicket().Wait(); err != nil {
			t.Fatalf("op %d ticket: %v", i, err)
		}
	}
	ws := fb.WALStats()
	if ws.GroupCommits == 0 {
		t.Fatal("no commit groups flushed")
	}
	if ws.GroupedTxns < scriptOps {
		t.Fatalf("GroupedTxns = %d, want >= %d", ws.GroupedTxns, scriptOps)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	got := captureState(t, fb2)
	if !statesEqual(got, golden[scriptOps]) {
		t.Fatalf("state after group-commit run diverges from golden: counter=%d want %d",
			got.counter, golden[scriptOps].counter)
	}
}

// TestGroupCommitCoalescesFsyncs holds the committer, queues several
// transactions, releases, and checks they flushed as ONE group with ONE
// WAL fsync.
func TestGroupCommitCoalescesFsyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coalesce.box")
	groupSetup(t, path, 8)
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if err := fb.StartGroupCommit(Durability{Every: 4}); err != nil {
		t.Fatal(err)
	}
	fb.HoldGroupCommit(true)
	pre := fb.WALStats()

	const n = 5
	tickets := make([]*CommitTicket, 0, n)
	for i := 1; i <= n; i++ {
		fb.BeginBatch()
		if err := fb.WriteBlock(BlockID(i), fill(byte(i))); err != nil {
			t.Fatal(err)
		}
		tk, err := fb.CommitBatchAsync()
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	fb.HoldGroupCommit(false)
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}

	ws := fb.WALStats()
	if got := ws.GroupCommits - pre.GroupCommits; got != 1 {
		t.Fatalf("GroupCommits delta = %d, want 1", got)
	}
	if got := ws.GroupedTxns - pre.GroupedTxns; got != n {
		t.Fatalf("GroupedTxns delta = %d, want %d", got, n)
	}
	if got := ws.Syncs - pre.Syncs; got != 1 {
		t.Fatalf("WAL fsyncs delta = %d, want 1 (the group's shared durability point)", got)
	}
	if got := ws.Commits - pre.Commits; got != n {
		t.Fatalf("Commits delta = %d, want %d (each txn keeps its own commit record)", got, n)
	}

	buf := make([]byte, scriptBlockSize)
	for i := 1; i <= n; i++ {
		if err := fb.ReadBlock(BlockID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, fill(byte(i))) {
			t.Fatalf("block %d: wrong contents after group flush", i)
		}
	}
}

// TestGroupCommitSoloFastPath checks the sync fallback: an uncontended
// transaction must not sit out the coalescing window.
func TestGroupCommitSoloFastPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solo.box")
	groupSetup(t, path, 2)
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	// A delay long enough that waiting it out would trip the test timeout
	// guard below, but only if the solo path is broken.
	if err := fb.StartGroupCommit(Durability{Every: 64, MaxDelay: 30 * time.Second}); err != nil {
		t.Fatal(err)
	}
	fb.BeginBatch()
	if err := fb.WriteBlock(1, fill(0xAB)); err != nil {
		t.Fatal(err)
	}
	tk, err := fb.CommitBatchAsync()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("solo transaction waited %v for a group that never comes", d)
	}
	if fb.WALStats().GroupedTxns != 1 {
		t.Fatalf("GroupedTxns = %d, want 1", fb.WALStats().GroupedTxns)
	}
}

// TestGroupCommitOverlayVisible checks that a committed-but-unapplied
// transaction is readable (its writes live in the overlay) while the
// committer is held, and still readable after the apply.
func TestGroupCommitOverlayVisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overlay.box")
	groupSetup(t, path, 2)
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if err := fb.StartGroupCommit(Durability{}); err != nil {
		t.Fatal(err)
	}
	fb.HoldGroupCommit(true)

	want := fill(0x5A)
	fb.BeginBatch()
	if err := fb.WriteBlock(1, want); err != nil {
		t.Fatal(err)
	}
	tk, err := fb.CommitBatchAsync()
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, scriptBlockSize)
	if err := fb.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("overlay read did not surface the committed-but-unapplied image")
	}

	fb.HoldGroupCommit(false)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := fb.ReadBlock(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("block contents wrong after in-place apply")
	}
}

// TestGroupCommitSyncPathsRoute checks that Sync and out-of-batch
// SetMetaRoot work while the committer runs (they funnel through it).
func TestGroupCommitSyncPathsRoute(t *testing.T) {
	path := filepath.Join(t.TempDir(), "route.box")
	groupSetup(t, path, 2)
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.StartGroupCommit(Durability{Every: 8}); err != nil {
		t.Fatal(err)
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fb.SetMetaRoot(2); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	root, err := fb2.MetaRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root != 2 {
		t.Fatalf("meta root = %d after reopen, want 2", root)
	}
}

// TestGroupCommitCloseDrains checks that Close flushes transactions still
// queued behind a held committer.
func TestGroupCommitCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.box")
	groupSetup(t, path, 4)
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.StartGroupCommit(Durability{Every: 16}); err != nil {
		t.Fatal(err)
	}
	fb.HoldGroupCommit(true)
	for i := 1; i <= 3; i++ {
		fb.BeginBatch()
		if err := fb.WriteBlock(BlockID(i), fill(byte(0x10 * i))); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.CommitBatchAsync(); err != nil {
			t.Fatal(err)
		}
	}
	// Close must drain the queue despite the hold (stop overrides it).
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	buf := make([]byte, scriptBlockSize)
	for i := 1; i <= 3; i++ {
		if err := fb2.ReadBlock(BlockID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, fill(byte(0x10*i))) {
			t.Fatalf("block %d lost on close: queued transaction not drained", i)
		}
	}
}

// TestGroupCommitCrashPrefix sweeps a simulated power cut over every raw
// write point of one group flush: recovery must land on a clean prefix of
// the group — never a partial transaction, never txn i+1 without txn i.
func TestGroupCommitCrashPrefix(t *testing.T) {
	const txCount = 4

	run := func(t *testing.T, countdown int, torn bool) (applied int, steps int) {
		t.Helper()
		dir := t.TempDir()
		path := filepath.Join(dir, "crash.box")
		groupSetup(t, path, txCount)
		ctrl := NewCrashController(countdown, torn)
		fb, err := OpenFileOpts(path, FileOptions{CrashControl: ctrl})
		if err != nil {
			t.Fatal(err)
		}
		if err := fb.StartGroupCommit(Durability{Every: txCount}); err != nil {
			t.Fatal(err)
		}
		fb.HoldGroupCommit(true)
		tickets := make([]*CommitTicket, 0, txCount)
		for i := 1; i <= txCount; i++ {
			fb.BeginBatch()
			if err := fb.WriteBlock(BlockID(i), fill(byte(i))); err != nil {
				t.Fatal(err)
			}
			tk, err := fb.CommitBatchAsync()
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		fb.HoldGroupCommit(false)
		crashed := false
		for _, tk := range tickets {
			if err := tk.Wait(); err != nil {
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("ticket failed with %v, want ErrCrashed", err)
				}
				crashed = true
			}
		}
		if countdown > 0 && !crashed && ctrl.Crashed() {
			// The cut landed after the group's WAL fsync: every ticket
			// legitimately resolved clean even though later raw writes died.
			// (commit errors past the durability point surface as sticky
			// committer errors, checked via Close below)
			_ = crashed
		}
		steps = ctrl.Writes()
		fb.Close() // drains; errors expected after a crash

		rec, err := OpenFile(path)
		if err != nil {
			t.Fatalf("countdown %d (torn=%v): reopen: %v", countdown, torn, err)
		}
		defer rec.Close()
		buf := make([]byte, scriptBlockSize)
		applied = 0
		sawGap := false
		for i := 1; i <= txCount; i++ {
			if err := rec.ReadBlock(BlockID(i), buf); err != nil {
				t.Fatalf("countdown %d: read block %d: %v", countdown, i, err)
			}
			switch {
			case bytes.Equal(buf, fill(byte(i))):
				if sawGap {
					t.Fatalf("countdown %d (torn=%v): txn %d applied but an earlier one was not — not a prefix", countdown, torn, i)
				}
				applied++
			case bytes.Equal(buf, make([]byte, scriptBlockSize)):
				sawGap = true
			default:
				t.Fatalf("countdown %d (torn=%v): block %d holds a partial image", countdown, torn, i)
			}
		}
		return applied, steps
	}

	// Pass 0: count the flush's raw write points without crashing.
	_, total := run(t, 0, false)
	if total < txCount*2 {
		t.Fatalf("implausibly few raw writes in a group flush: %d", total)
	}
	for _, torn := range []bool{false, true} {
		for cut := 1; cut <= total; cut++ {
			applied, _ := run(t, cut, torn)
			if applied < 0 || applied > txCount {
				t.Fatalf("cut %d (torn=%v): %d transactions applied", cut, torn, applied)
			}
		}
	}
}
