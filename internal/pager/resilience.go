package pager

import (
	"errors"
	"sort"
	"time"

	"boxes/internal/faults"
	"boxes/internal/obs"
)

// WithRetry enables bounded retries of raw backend calls: each ReadBlock,
// WriteBlock, Allocate and Free that fails with a transient error (see
// faults.Classify) is re-issued under the policy's exponential backoff
// with seeded jitter. Permanent errors return immediately; an exhausted
// budget surfaces as a faults.ExhaustedError wrapping the last transient
// cause. Retries are off by default: fault-injection tests rely on
// injected errors surfacing verbatim.
//
// Backoff sleeps are attributed to the retry_backoff phase of the current
// operation (and recorded as spans when tracing). They overlap the
// enclosing block_read/block_write phase by construction — retries happen
// inside the timed backend call — so retry_backoff quantifies how much of
// that phase was sleeping rather than doing I/O.
func WithRetry(p faults.RetryPolicy) Option {
	return func(s *Store) {
		inner := p.Sleep
		if inner == nil {
			inner = time.Sleep
		}
		p.Sleep = func(d time.Duration) {
			if s.obs == nil {
				inner(d)
				return
			}
			reader := s.readerOp()
			start := time.Now()
			inner(d)
			el := time.Since(start)
			s.obs.ObservePhaseAuto(reader, obs.PhaseRetryBackoff, el)
			if t := s.obs.Tracer(); t.Enabled() {
				t.RecordAuto(reader, obs.PhaseRetryBackoff.String(), start, el)
			}
		}
		s.retry = faults.NewRetrier(p)
	}
}

// RetryEnabled reports whether a retry policy is attached.
func (s *Store) RetryEnabled() bool { return s.retry != nil }

// retryBackend runs one raw backend call under the store's retry policy
// (or directly when none is attached), recording retry metrics.
func (s *Store) retryBackend(fn func() error) error {
	if s.retry == nil {
		return fn()
	}
	retries, err := s.retry.Do(fn)
	if retries > 0 {
		s.obs.Add(obs.CtrPagerRetries, uint64(retries))
		if err == nil {
			s.obs.Inc(obs.CtrPagerRetrySuccesses)
		}
	}
	if err != nil {
		var ex *faults.ExhaustedError
		if errors.As(err, &ex) {
			s.obs.Inc(obs.CtrPagerRetryExhausted)
		}
	}
	return err
}

// writeFault is the boxed first permanent write-path failure.
type writeFault struct{ err error }

// NoteWriteFault latches err as the store's write fault if it is a
// permanent failure (transient errors are the retry layer's business;
// ErrNoSpace is excluded too — a full disk aborts the op cleanly and the
// store must stay writable for when space returns, so it never latches
// degraded mode). The pager calls it on every failed mutation path —
// immediate writes, EndOp flushes and commits, allocations and frees;
// core also reports asynchronous commit-ticket failures here. Only the
// first fault is kept.
func (s *Store) NoteWriteFault(err error) {
	if err == nil || faults.Classify(err) != faults.Permanent {
		return
	}
	if errors.Is(err, ErrNoSpace) {
		return
	}
	s.wfault.CompareAndSwap(nil, &writeFault{err: err})
}

// WriteFault returns the first permanent write-path failure recorded since
// open (or the last ClearWriteFault), or nil. A non-nil result is the
// pager-level signal on which core flips into read-only degraded mode.
func (s *Store) WriteFault() error {
	if f := s.wfault.Load(); f != nil {
		return f.err
	}
	return nil
}

// ClearWriteFault resets the write-fault latch (after an operator repaired
// the underlying device and cleared degraded mode).
func (s *Store) ClearWriteFault() { s.wfault.Store(nil) }

// Quarantine marks a block as known-corrupt: reads of it fail fast with a
// typed *CorruptError instead of re-reading (and re-failing on) the bad
// image, so lookups keep serving from clean blocks. A successful write of
// the block — a scrubber repair or a normal update rewriting it — lifts
// the quarantine.
func (s *Store) Quarantine(id BlockID, cause error) {
	detail := "unreadable"
	if cause != nil {
		detail = cause.Error()
	}
	if _, loaded := s.quar.LoadOrStore(id, detail); !loaded {
		s.nquar.Add(1)
	}
}

// Unquarantine clears a block's quarantine mark.
func (s *Store) Unquarantine(id BlockID) {
	if _, loaded := s.quar.LoadAndDelete(id); loaded {
		s.nquar.Add(-1)
	}
}

// QuarantinedBlocks lists the currently quarantined blocks in ascending
// order.
func (s *Store) QuarantinedBlocks() []BlockID {
	var ids []BlockID
	s.quar.Range(func(k, _ any) bool {
		ids = append(ids, k.(BlockID))
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// quarantineErr returns the fast-fail error for a quarantined block, or
// nil. The counter fast path keeps the common case (no quarantine) to one
// atomic load.
func (s *Store) quarantineErr(id BlockID) error {
	if s.nquar.Load() == 0 {
		return nil
	}
	if v, ok := s.quar.Load(id); ok {
		return &CorruptError{Block: id, Region: "block", Detail: "quarantined: " + v.(string)}
	}
	return nil
}

// liftQuarantine drops a block's quarantine after a successful write of a
// full fresh image.
func (s *Store) liftQuarantine(id BlockID) {
	if s.nquar.Load() != 0 {
		s.Unquarantine(id)
	}
}
