package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemBackendAllocateFreeReuse(t *testing.T) {
	m := NewMemBackend(128)
	a, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a == NilBlock || b == NilBlock || a == b {
		t.Fatalf("bad ids a=%d b=%d", a, b)
	}
	if got := m.NumBlocks(); got != 2 {
		t.Fatalf("NumBlocks = %d, want 2", got)
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if got := m.NumBlocks(); got != 1 {
		t.Fatalf("NumBlocks after free = %d, want 1", got)
	}
	c, err := m.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("freed block not reused: got %d, want %d", c, a)
	}
}

func TestMemBackendFreshBlockIsZero(t *testing.T) {
	m := NewMemBackend(64)
	id, _ := m.Allocate()
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := m.WriteBlock(id, buf); err != nil {
		t.Fatal(err)
	}
	m.Free(id)
	id2, _ := m.Allocate()
	if id2 != id {
		t.Fatalf("expected reuse of %d, got %d", id, id2)
	}
	out := make([]byte, 64)
	if err := m.ReadBlock(id2, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, make([]byte, 64)) {
		t.Fatal("reallocated block is not zeroed")
	}
}

func TestMemBackendErrors(t *testing.T) {
	m := NewMemBackend(64)
	buf := make([]byte, 64)
	if err := m.ReadBlock(NilBlock, buf); err == nil {
		t.Fatal("read of nil block succeeded")
	}
	if err := m.ReadBlock(99, buf); err == nil {
		t.Fatal("read of unallocated block succeeded")
	}
	id, _ := m.Allocate()
	if err := m.ReadBlock(id, make([]byte, 3)); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := m.WriteBlock(id, make([]byte, 3)); err == nil {
		t.Fatal("short write buffer accepted")
	}
	m.Free(id)
	if err := m.ReadBlock(id, buf); err == nil {
		t.Fatal("read of freed block succeeded")
	}
}

func TestStoreCountsReadsAndWrites(t *testing.T) {
	s := NewMemStore(128)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	buf[0] = 42
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("read back %d, want 42", got[0])
	}
	st := s.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("stats = %v, want 1 read 1 write", st)
	}
}

func TestStoreOpPinsBlocks(t *testing.T) {
	s := NewMemStore(128)
	id, _ := s.Allocate()
	buf := make([]byte, 128)
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()

	s.BeginOp()
	for i := 0; i < 10; i++ {
		b, err := s.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		b[0]++
		if err := s.Write(id, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 1 {
		t.Errorf("op reads = %d, want 1 (block revisits are free)", st.Reads)
	}
	if st.Writes != 1 {
		t.Errorf("op writes = %d, want 1 (dirty flush once)", st.Writes)
	}
	b, _ := s.Read(id)
	if b[0] != 10 {
		t.Errorf("final value = %d, want 10", b[0])
	}
}

func TestStoreOpFreshAllocationCostsNoRead(t *testing.T) {
	s := NewMemStore(128)
	s.BeginOp()
	id, _ := s.Allocate()
	b, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	b[5] = 7
	if err := s.Write(id, b); err != nil {
		t.Fatal(err)
	}
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 0 {
		t.Errorf("reads = %d, want 0 for a freshly allocated block", st.Reads)
	}
	if st.Writes != 1 {
		t.Errorf("writes = %d, want 1", st.Writes)
	}
}

func TestStoreNestedOps(t *testing.T) {
	s := NewMemStore(128)
	id, _ := s.Allocate()
	s.BeginOp()
	s.BeginOp()
	buf := make([]byte, 128)
	buf[0] = 1
	if err := s.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Writes != 0 {
		t.Fatal("inner EndOp flushed; should flush only at outermost")
	}
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Writes != 1 {
		t.Fatalf("writes = %d, want 1 after outer EndOp", s.Stats().Writes)
	}
}

func TestStoreFreeInsideOp(t *testing.T) {
	s := NewMemStore(128)
	id, _ := s.Allocate()
	if err := s.Write(id, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	s.BeginOp()
	if _, err := s.Read(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); err == nil {
		t.Fatal("read of freed block inside op succeeded")
	}
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	if w := s.Stats().Writes; w != 0 {
		t.Fatalf("writes = %d, want 0 (freed dirty block must not flush)", w)
	}
}

func TestStoreCacheMakesRereadsFree(t *testing.T) {
	s := NewMemStore(128, WithCache(8))
	id, _ := s.Allocate()
	if err := s.Write(id, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	for i := 0; i < 5; i++ {
		if _, err := s.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	if r := s.Stats().Reads; r != 0 {
		t.Fatalf("reads = %d, want 0 (block cached by write)", r)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	if _, ok := c.get(1); !ok {
		t.Fatal("block 1 missing")
	}
	c.put(3, []byte{3}) // evicts 2 (least recently used)
	if _, ok := c.get(2); ok {
		t.Fatal("block 2 should have been evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("block 1 should remain")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("block 3 should be present")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.drop(1)
	if _, ok := c.get(1); ok {
		t.Fatal("dropped block still present")
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.box")
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	bufA := bytes.Repeat([]byte{0xAA}, 256)
	bufB := bytes.Repeat([]byte{0xBB}, 256)
	if err := fb.WriteBlock(a, bufA); err != nil {
		t.Fatal(err)
	}
	if err := fb.WriteBlock(b, bufB); err != nil {
		t.Fatal(err)
	}
	if err := fb.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	if fb2.BlockSize() != 256 {
		t.Fatalf("block size = %d, want 256", fb2.BlockSize())
	}
	if fb2.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d, want 1", fb2.NumBlocks())
	}
	out := make([]byte, 256)
	if err := fb2.ReadBlock(b, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, bufB) {
		t.Fatal("block B corrupted across close/open")
	}
	// The freed block must be reused.
	c, err := fb2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("free list not persisted: got %d, want %d", c, a)
	}
	if err := fb2.ReadBlock(c, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, make([]byte, 256)) {
		t.Fatal("reallocated file block is not zeroed")
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeJunk(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a non-store file")
	}
}

func writeJunk(path string) error {
	fb, err := CreateFile(path, 128)
	if err != nil {
		return err
	}
	if err := fb.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte("NOTMAGIC"), 0); err != nil {
		return err
	}
	return f.Close()
}

// TestStoreWriteThenReadQuick property: any sequence of (block, byte)
// writes is readable back, with the last write winning.
func TestStoreWriteThenReadQuick(t *testing.T) {
	f := func(vals []byte) bool {
		s := NewMemStore(32)
		ids := make([]BlockID, 4)
		for i := range ids {
			id, err := s.Allocate()
			if err != nil {
				return false
			}
			ids[i] = id
		}
		want := make(map[BlockID]byte)
		for i, v := range vals {
			id := ids[i%len(ids)]
			buf := make([]byte, 32)
			buf[0] = v
			if err := s.Write(id, buf); err != nil {
				return false
			}
			want[id] = v
		}
		for id, v := range want {
			got, err := s.Read(id)
			if err != nil || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSub(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 7}
	b := IOStats{Reads: 4, Writes: 2}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 5 || d.Total() != 11 {
		t.Fatalf("Sub = %v", d)
	}
}
