package pager

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"boxes/internal/obs"
)

const scrubBS = 256

// scrubStore builds a file-backed store with a handful of written blocks
// and returns the store, the backend, and the block ids.
func scrubStore(t *testing.T, n int) (*Store, *FileBackend, []BlockID) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.box")
	fb, err := CreateFile(path, scrubBS)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb, WithObserver(obs.NewRegistry()))
	t.Cleanup(func() { st.Close() })
	ids := make([]BlockID, 0, n)
	for i := 0; i < n; i++ {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, scrubBS)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := st.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return st, fb, ids
}

// rot flips bytes of a block's on-disk image behind the pager's back,
// leaving the checksum sidecar stale — silent media corruption.
func rot(t *testing.T, fb *FileBackend, id BlockID) {
	t.Helper()
	junk := make([]byte, scrubBS)
	for i := range junk {
		junk[i] = 0xAA
	}
	if _, err := fb.f.WriteAt(junk, fb.offset(id)); err != nil {
		t.Fatal(err)
	}
}

// A scrub pass over a clean store finds nothing; after silent on-disk
// corruption it detects the block, quarantines it (reads fail fast with a
// typed error), and a fresh write through the store lifts the quarantine.
func TestScrubDetectsAndQuarantines(t *testing.T) {
	st, fb, ids := scrubStore(t, 8)
	sc, err := st.NewScrubber(ScrubConfig{BatchBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sc.RunPass(); n != 0 {
		t.Fatalf("clean store scrubbed %d corrupt blocks", n)
	}
	victim := ids[4]
	rot(t, fb, victim)
	n, _ := sc.RunPass()
	if n != 1 {
		t.Fatalf("scrub found %d corrupt blocks, want 1", n)
	}
	if got := st.QuarantinedBlocks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("QuarantinedBlocks = %v, want [%d]", got, victim)
	}
	_, err = st.Read(victim)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of rotted block: %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Block != victim {
		t.Fatalf("corrupt error should name block %d, got %v", victim, err)
	}
	p := sc.Progress()
	if p.Passes != 2 || p.Corrupt != 1 || p.Scanned == 0 || p.LastErr == "" {
		t.Fatalf("unexpected progress: %+v", p)
	}
	reg := st.Observer()
	if reg.Counter(obs.CtrPagerScrubCorrupt) != 1 || reg.Counter(obs.CtrPagerScrubPasses) != 2 {
		t.Fatalf("scrub counters off: corrupt=%d passes=%d",
			reg.Counter(obs.CtrPagerScrubCorrupt), reg.Counter(obs.CtrPagerScrubPasses))
	}

	// A rewrite through the store heals the block and lifts the quarantine.
	if err := st.Write(victim, make([]byte, scrubBS)); err != nil {
		t.Fatalf("healing rewrite: %v", err)
	}
	if got := st.QuarantinedBlocks(); len(got) != 0 {
		t.Fatalf("rewrite should lift the quarantine, still have %v", got)
	}
	if n, _ := sc.RunPass(); n != 0 {
		t.Fatalf("healed store still scrubs %d corrupt blocks", n)
	}
}

// A corrupt block whose last committed image still sits in the WAL tail is
// repaired in place: scrub detects, reconstructs from the log, re-verifies,
// and lifts the quarantine — the read path never sees the rot.
func TestScrubRepairsFromWALTail(t *testing.T) {
	st, fb, ids := scrubStore(t, 4)
	victim := ids[2]
	good, err := st.Read(victim)
	if err != nil {
		t.Fatal(err)
	}

	// Stage the committed image in the WAL by hand, simulating the window
	// where a commit fsynced its frames but the truncate has not happened
	// (the exact window online repair exists for).
	frame := encodeWALFrame(victim, good)
	commit := encodeWALCommit(1, fb.headerState())
	if _, err := fb.wal.WriteAt(frame, walHeaderSize); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.wal.WriteAt(commit, walHeaderSize+int64(len(frame))); err != nil {
		t.Fatal(err)
	}
	rot(t, fb, victim)

	sc, err := st.NewScrubber(ScrubConfig{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sc.RunPass(); n != 0 {
		t.Fatalf("%d blocks stayed quarantined; WAL repair should have healed", n)
	}
	p := sc.Progress()
	if p.Corrupt != 1 || p.Repaired != 1 {
		t.Fatalf("progress = %+v, want corrupt=1 repaired=1", p)
	}
	data, err := st.Read(victim)
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	for i := range data {
		if data[i] != good[i] {
			t.Fatalf("repaired image differs at byte %d", i)
		}
	}
	if st.Observer().Counter(obs.CtrPagerScrubRepairs) != 1 {
		t.Fatalf("pager_scrub_repairs_total = %d, want 1", st.Observer().Counter(obs.CtrPagerScrubRepairs))
	}
}

// While a committed transaction waits in the group-commit overlay, its
// disk image is stale by design: raw verify treats the block as clean, and
// RepairBlock can rewrite the disk image from the overlay ahead of the
// committer's own apply.
func TestScrubOverlayMasksAndRepairs(t *testing.T) {
	_, fb, ids := scrubStore(t, 3)
	if err := fb.StartGroupCommit(Durability{Every: 4}); err != nil {
		t.Fatal(err)
	}
	fb.HoldGroupCommit(true)
	victim := ids[1]
	img := make([]byte, scrubBS)
	for i := range img {
		img[i] = 0x5C
	}
	fb.BeginBatch()
	if err := fb.WriteBlock(victim, img); err != nil {
		t.Fatal(err)
	}
	tk, err := fb.CommitBatchAsync()
	if err != nil {
		t.Fatal(err)
	}

	rot(t, fb, victim)
	if err := fb.VerifyBlockRaw(victim); err != nil {
		t.Fatalf("overlay-resident block should verify clean, got %v", err)
	}
	fixed, err := fb.RepairBlock(victim)
	if err != nil || !fixed {
		t.Fatalf("RepairBlock = (%v, %v), want (true, nil)", fixed, err)
	}
	buf := make([]byte, scrubBS)
	if _, err := fb.f.ReadAt(buf, fb.offset(victim)); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != img[i] {
			t.Fatalf("overlay repair wrote wrong image at byte %d", i)
		}
	}

	fb.HoldGroupCommit(false)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := fb.StopGroupCommit(); err != nil {
		t.Fatal(err)
	}
}

// Unrecoverable rot (no overlay image, no WAL tail) stays quarantined even
// with repair enabled.
func TestScrubUnrepairableStaysQuarantined(t *testing.T) {
	st, fb, ids := scrubStore(t, 3)
	rot(t, fb, ids[0])
	sc, err := st.NewScrubber(ScrubConfig{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sc.RunPass(); n != 1 {
		t.Fatalf("scrub quarantined %d blocks, want 1", n)
	}
	if p := sc.Progress(); p.Repaired != 0 {
		t.Fatalf("nothing should be repairable, progress = %+v", p)
	}
}

// The background loop walks the store continuously and stops cleanly.
func TestScrubBackgroundLoop(t *testing.T) {
	st, _, _ := scrubStore(t, 16)
	sc, err := st.NewScrubber(ScrubConfig{BatchBlocks: 4, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sc.Start()
	deadline := time.Now().Add(5 * time.Second)
	for sc.Progress().Passes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber made no full pass in 5s")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Stop()
	sc.Stop() // idempotent
	if sc.Progress().Scanned == 0 {
		t.Fatal("no blocks scanned")
	}
}

// Scrubbing requires a raw-verifiable backend and checksums.
func TestScrubRequiresFileBackendWithChecksums(t *testing.T) {
	mem := NewMemStore(256)
	if _, err := mem.NewScrubber(ScrubConfig{}); err == nil {
		t.Fatal("MemBackend store should not scrub")
	}
	path := filepath.Join(t.TempDir(), "nocrc.box")
	fb, err := CreateFileOpts(path, FileOptions{BlockSize: 256, NoChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(fb)
	defer st.Close()
	if _, err := st.NewScrubber(ScrubConfig{}); err == nil {
		t.Fatal("checksum-less store should not scrub")
	}
}
