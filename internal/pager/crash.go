package pager

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"boxes/internal/faults"
)

// ErrCrashed is returned by every operation of a crashed CrashBackend or
// CrashController: the simulated machine lost power, so nothing succeeds
// until the store file is reopened by a fresh process.
var ErrCrashed = errors.New("pager: simulated power cut")

// ---------------------------------------------------------------------------
// File-level crash injection (every raw write of a FileBackend is a point).
// ---------------------------------------------------------------------------

// blockFile is the raw file surface FileBackend performs I/O through.
// *os.File implements it; a CrashController wraps it to simulate power
// cuts at precise write points.
type blockFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// CrashController simulates a power cut underneath a FileBackend. Every
// raw write the backend performs — WAL frame appends, commit records,
// in-place block applies, header and checksum updates, WAL truncations —
// counts as one write point, in deterministic order. At the configured
// point the write is cut short (persisting only a prefix when Torn) and
// from then on every file operation fails with ErrCrashed, exactly as if
// the machine died: whatever reached the file stays, nothing else does.
//
// Attach one controller to a FileBackend via FileOptions.CrashControl,
// run a workload until ErrCrashed surfaces, drop the backend, and reopen
// the path with a plain OpenFile to exercise recovery. With CrashAt = 0
// the controller never fires and simply counts write points, which is how
// a crash-matrix harness discovers the sweep range.
type CrashController struct {
	mu      sync.Mutex
	crashAt int  // 1-based write point that dies; 0 = never
	torn    bool // the dying write persists only its first half
	writes  int
	crashed bool
}

// NewCrashController returns a controller that cuts power at the crashAt-th
// raw write (0 = never crash, only count). With torn set, the fatal write
// persists only the first half of its buffer — a torn sector write.
func NewCrashController(crashAt int, torn bool) *CrashController {
	return &CrashController{crashAt: crashAt, torn: torn}
}

// Writes reports how many raw write points have been attempted so far.
func (c *CrashController) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Crashed reports whether the power cut has fired.
func (c *CrashController) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// step charges one write point and reports how to treat the write:
// ok (full write), torn (persist a prefix then die), or dead (already
// crashed, nothing persists).
func (c *CrashController) step() (torn, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return false, true
	}
	c.writes++
	if c.crashAt > 0 && c.writes == c.crashAt {
		c.crashed = true
		return c.torn, false
	}
	return false, false
}

func (c *CrashController) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// crashFile routes one file's I/O through a CrashController.
type crashFile struct {
	f    blockFile
	ctrl *CrashController
}

func (cf *crashFile) rawFile() blockFile { return cf.f }

func (cf *crashFile) ReadAt(p []byte, off int64) (int, error) {
	if cf.ctrl.dead() {
		return 0, ErrCrashed
	}
	return cf.f.ReadAt(p, off)
}

func (cf *crashFile) WriteAt(p []byte, off int64) (int, error) {
	torn, dead := cf.ctrl.step()
	if dead {
		return 0, ErrCrashed
	}
	if torn {
		// Persist only the first half of the buffer, then die: the classic
		// torn page write a checksum must catch.
		if n := len(p) / 2; n > 0 {
			cf.f.WriteAt(p[:n], off)
		}
		return 0, fmt.Errorf("%w (torn write of %d bytes at offset %d)", ErrCrashed, len(p), off)
	}
	if cf.ctrl.dead() { // this write was the crash point (full cut)
		return 0, fmt.Errorf("%w (write of %d bytes at offset %d)", ErrCrashed, len(p), off)
	}
	return cf.f.WriteAt(p, off)
}

func (cf *crashFile) Truncate(size int64) error {
	_, dead := cf.ctrl.step()
	if dead || cf.ctrl.dead() {
		return ErrCrashed
	}
	return cf.f.Truncate(size)
}

func (cf *crashFile) Sync() error {
	if cf.ctrl.dead() {
		return ErrCrashed
	}
	return cf.f.Sync()
}

// Close always closes the real file: the harness reopens the path with a
// fresh backend, so descriptors must not leak even after a simulated cut.
func (cf *crashFile) Close() error { return cf.f.Close() }

// ---------------------------------------------------------------------------
// Backend-level crash injection (sibling of FlakyBackend).
// ---------------------------------------------------------------------------

// CrashBackend wraps a Backend and simulates a power cut at the i-th
// block write: the fatal write optionally persists only a torn half block,
// and every operation after it — reads included — fails with ErrCrashed.
// It is FlakyBackend's deterministic sibling: FlakyBackend models a
// transient device that keeps limping along, CrashBackend models a machine
// that dies mid-operation and must be restarted. Both delegate their
// decisions to the same seeded faults.Schedule engine (via FaultBackend),
// so crash-matrix and retry tests share deterministic fault schedules.
//
// Over a MemBackend it verifies that the structures surface a mid-flush
// power cut cleanly; over a FileBackend opened with NoWAL it demonstrates
// (and lets tests assert) the torn on-disk state a write-ahead log
// prevents. Torn mode writes through to the inner backend, so it must not
// be combined with a WAL-enabled FileBackend, whose own batching would
// commit the torn image atomically and mask the tear; use a
// CrashController for intra-commit crash points instead.
type CrashBackend struct {
	*FaultBackend
	CrashAt int  // 1-based write that dies; 0 = never
	Torn    bool // the fatal write persists a half-block prefix
}

// NewCrashBackend wraps inner, cutting power at the crashAt-th WriteBlock.
func NewCrashBackend(inner Backend, crashAt int, torn bool) *CrashBackend {
	sched := faults.NewSchedule(1)
	sched.CrashAtWrite(crashAt, torn)
	return &CrashBackend{
		FaultBackend: NewFaultBackend(inner, sched),
		CrashAt:      crashAt,
		Torn:         torn,
	}
}

// Writes reports the number of block writes attempted so far.
func (c *CrashBackend) Writes() int { return c.sched().Writes() }

// Crashed reports whether the power cut has fired.
func (c *CrashBackend) Crashed() bool { return c.sched().Dead() }

func (c *CrashBackend) sched() *faults.Schedule { return c.Injector.(*faults.Schedule) }
