package pager

import (
	"errors"
	"sync"
	"testing"

	"boxes/internal/obs"
)

// recordingBackend wraps a Backend and records the order of WriteBlock
// calls.
type recordingBackend struct {
	Backend
	writes []BlockID
}

func (r *recordingBackend) WriteBlock(id BlockID, buf []byte) error {
	r.writes = append(r.writes, id)
	return r.Backend.WriteBlock(id, buf)
}

func TestEndOpFlushesInSortedOrder(t *testing.T) {
	rb := &recordingBackend{Backend: NewMemBackend(512)}
	s := NewStore(rb)
	var ids []BlockID
	for i := 0; i < 8; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	buf := make([]byte, 512)
	s.BeginOp()
	// Dirty the blocks in descending order; the flush must still ascend.
	for i := len(ids) - 1; i >= 0; i-- {
		buf[0] = byte(i)
		if err := s.Write(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	rb.writes = nil
	if err := s.EndOp(); err != nil {
		t.Fatal(err)
	}
	if len(rb.writes) != len(ids) {
		t.Fatalf("flushed %d blocks, want %d", len(rb.writes), len(ids))
	}
	for i := 1; i < len(rb.writes); i++ {
		if rb.writes[i-1] >= rb.writes[i] {
			t.Fatalf("flush order not ascending: %v", rb.writes)
		}
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore(NewMemBackend(512), WithCache(1), WithObserver(reg))
	id1, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := s.Write(id1, buf); err != nil { // cache: {id1}
		t.Fatal(err)
	}
	if _, err := s.Read(id1); err != nil { // hit
		t.Fatal(err)
	}
	if err := s.Write(id2, buf); err != nil { // evicts id1
		t.Fatal(err)
	}
	if _, err := s.Read(id1); err != nil { // miss
		t.Fatal(err)
	}
	if hits := reg.Counter(obs.CtrPagerCacheHits); hits != 1 {
		t.Errorf("pager_cache_hits_total = %d, want 1", hits)
	}
	if misses := reg.Counter(obs.CtrPagerCacheMisses); misses != 1 {
		t.Errorf("pager_cache_misses_total = %d, want 1", misses)
	}
}

func TestInjectedFailureCounters(t *testing.T) {
	reg := obs.NewRegistry()
	flaky := NewFlakyBackend(NewMemBackend(512), 2)
	s := NewStore(flaky, WithObserver(reg))
	id, err := s.Allocate() // op 1
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(id, make([]byte, 512)); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrInjected) { // op 3: injected
		t.Fatalf("read err = %v, want injected", err)
	}
	if got := reg.Counter(obs.CtrPagerInjectedFailures); got != 1 {
		t.Errorf("pager_injected_failures_total = %d, want 1", got)
	}
	if got := reg.Counter(obs.CtrPagerIOErrors); got != 1 {
		t.Errorf("pager_io_errors_total = %d, want 1", got)
	}
	if flaky.Injected() != 1 {
		t.Errorf("flaky.Injected() = %d, want 1", flaky.Injected())
	}
}

// nopBackend is an inherently concurrency-safe Backend stub, so the race
// detector only sees FlakyBackend's own bookkeeping.
type nopBackend struct{ size int }

func (nopBackend) Allocate() (BlockID, error)      { return 1, nil }
func (nopBackend) Free(BlockID) error              { return nil }
func (nopBackend) ReadBlock(BlockID, []byte) error { return nil }
func (nopBackend) WriteBlock(BlockID, []byte) error {
	return nil
}
func (b nopBackend) BlockSize() int  { return b.size }
func (nopBackend) NumBlocks() uint64 { return 1 }
func (nopBackend) Close() error      { return nil }

// TestFlakyBackendConcurrentCharge exercises the mutex-guarded counters
// from many goroutines; run under -race this is the concurrency-safety
// regression test.
func TestFlakyBackendConcurrentCharge(t *testing.T) {
	const (
		workers = 8
		perG    = 50
		budget  = 100
	)
	flaky := NewFlakyBackend(nopBackend{size: 512}, budget)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					_ = flaky.WriteBlock(1, buf)
				} else {
					_ = flaky.ReadBlock(1, buf)
				}
			}
		}()
	}
	wg.Wait()
	wantOps := workers * perG
	if flaky.Ops() != wantOps {
		t.Errorf("ops = %d, want %d (lost updates)", flaky.Ops(), wantOps)
	}
	if want := wantOps - budget; flaky.Injected() != want {
		t.Errorf("injected = %d, want %d", flaky.Injected(), want)
	}
}
