package pager

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"boxes/internal/obs"
)

// RawVerifier is the backend surface the online scrubber needs: checksum
// verification of the on-disk image (bypassing any in-memory overlay) and
// best-effort repair from still-available redundancy (the group-commit
// overlay or the committed WAL tail). FileBackend implements it.
type RawVerifier interface {
	VerifyBlockRaw(id BlockID) error
	RepairBlock(id BlockID) (bool, error)
	Bound() BlockID
}

// VerifyBlockRaw verifies the on-disk image of id against its sidecar
// checksum, bypassing the open-batch stage and the group-commit overlay.
// A block whose newest committed image still sits in the overlay is
// reported clean: its disk bytes are stale by design and will be
// overwritten when the committer applies the group. Returns nil when
// checksums are disabled (nothing to verify against).
func (fb *FileBackend) VerifyBlockRaw(id BlockID) error {
	if fb.closed {
		return ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return fmt.Errorf("pager: raw verify of invalid block %d", id)
	}
	if fb.crc == nil {
		return nil
	}
	scratch := make([]byte, fb.blockSize)
	if fb.gcReadOverlay(id, scratch) {
		return nil
	}
	fb.applyMu.Lock()
	defer fb.applyMu.Unlock()
	if _, err := fb.f.ReadAt(scratch, fb.offset(id)); err != nil {
		return corruptBlock(id, "raw read: %v", err)
	}
	want, err := fb.readCRCEntry(id)
	if err != nil {
		return err
	}
	if got := checksum(scratch); got != want {
		fb.obs.Inc(obs.CtrPagerChecksumFailures)
		return corruptBlock(id, "scrub checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return nil
}

// RepairBlock tries to reconstruct the on-disk image of id from still-live
// redundancy: the group-commit overlay first (committed images awaiting
// their in-place apply), then the newest committed image in the WAL tail.
// It reports whether a source was found and the block rewritten; (false,
// nil) means the corruption is unrecoverable online and the block should
// stay quarantined.
func (fb *FileBackend) RepairBlock(id BlockID) (bool, error) {
	if fb.closed {
		return false, ErrClosed
	}
	if id == NilBlock || id >= fb.next {
		return false, fmt.Errorf("pager: repair of invalid block %d", id)
	}
	img := make([]byte, fb.blockSize)
	if fb.gcReadOverlay(id, img) {
		return true, fb.rewriteRaw(id, img)
	}
	if fb.wal != nil {
		data, err := readAll(fb.wal)
		if err != nil {
			return false, err
		}
		// A torn tail (the committer appending concurrently) scans as an
		// uncommitted suffix and is ignored; only fsynced commits repair.
		txns, _, err := scanWAL(data, fb.blockSize)
		if err == nil {
			var found []byte
			for _, txn := range txns {
				for _, w := range txn.images {
					if w.id == id {
						found = w.data
					}
				}
			}
			if found != nil {
				return true, fb.rewriteRaw(id, found)
			}
		}
	}
	return false, nil
}

// rewriteRaw durably rewrites one block image and its checksum in place,
// serialized against commit applies and scrub reads.
func (fb *FileBackend) rewriteRaw(id BlockID, data []byte) error {
	fb.applyMu.Lock()
	defer fb.applyMu.Unlock()
	if _, err := fb.f.WriteAt(data, fb.offset(id)); err != nil {
		return err
	}
	if err := fb.writeCRCEntry(id, checksum(data)); err != nil {
		return err
	}
	if err := fb.sync(fb.f); err != nil {
		return err
	}
	if fb.crc != nil {
		return fb.sync(fb.crc)
	}
	return nil
}

// ScrubConfig paces the online scrubber.
type ScrubConfig struct {
	// BatchBlocks is the number of blocks verified per batch (default 64).
	BatchBlocks int
	// Interval is the pause between batches (default 50ms). The pause
	// bounds the scrubber's steady-state I/O share.
	Interval time.Duration
	// Repair enables reconstruction of corrupt blocks from the overlay or
	// the WAL tail; without it corrupt blocks are only quarantined.
	Repair bool
	// Guard, when set, brackets each batch — a SyncStore wires its read
	// lock here so batches never race label mutations. Nil runs batches
	// unguarded (single-writer contract applies, as everywhere else).
	Guard func(func())
}

func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.BatchBlocks <= 0 {
		c.BatchBlocks = 64
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Guard == nil {
		c.Guard = func(fn func()) { fn() }
	}
	return c
}

// ScrubProgress is a snapshot of the scrubber's counters.
type ScrubProgress struct {
	Passes   uint64  // completed full passes over the block range
	Scanned  uint64  // blocks verified (cumulative across passes)
	Corrupt  uint64  // checksum failures found
	Repaired uint64  // corrupt blocks successfully reconstructed
	Cursor   BlockID // next block the background loop will verify
	LastErr  string  // most recent corruption/repair error, "" when clean
}

// Scrubber walks a store's blocks in the background, verifying on-disk
// checksums at a configurable pace. Corrupt blocks are quarantined (reads
// fail fast with a typed *CorruptError instead of re-reading rot) and,
// when enabled, repaired from the group-commit overlay or the committed
// WAL tail — the only redundancy that exists while the store is online.
type Scrubber struct {
	st  *Store
	rv  RawVerifier
	cfg ScrubConfig

	mu       sync.Mutex
	cursor   BlockID
	passes   uint64
	scanned  uint64
	corrupt  uint64
	repaired uint64
	lastErr  error

	stop chan struct{}
	done chan struct{}
}

// NewScrubber builds a scrubber over the store. The store's backend must
// implement RawVerifier (FileBackend does; MemBackend has no on-disk state
// to scrub).
func (s *Store) NewScrubber(cfg ScrubConfig) (*Scrubber, error) {
	rv, ok := s.backend.(RawVerifier)
	if !ok {
		return nil, errors.New("pager: backend does not support raw verification (scrubbing needs a FileBackend)")
	}
	if fb, ok := s.backend.(*FileBackend); ok && !fb.ChecksumsEnabled() {
		return nil, errors.New("pager: scrubbing needs checksums (store opened with NoChecksums)")
	}
	return &Scrubber{st: s, rv: rv, cfg: cfg.withDefaults(), cursor: 1}, nil
}

// Progress reports a consistent snapshot of the scrubber's counters.
func (sc *Scrubber) Progress() ScrubProgress {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	p := ScrubProgress{
		Passes:   sc.passes,
		Scanned:  sc.scanned,
		Corrupt:  sc.corrupt,
		Repaired: sc.repaired,
		Cursor:   sc.cursor,
	}
	if sc.lastErr != nil {
		p.LastErr = sc.lastErr.Error()
	}
	return p
}

// batchSpan opens instrumentation for one scrub batch — the scrub_batch
// phase ("scrub" row) plus a scrubber-lane span when tracing. The returned
// func closes both with the number of blocks verified.
func (sc *Scrubber) batchSpan() func(n int) {
	reg := sc.st.obs
	if reg == nil {
		return func(int) {}
	}
	start := time.Now()
	sp := reg.Tracer().StartLane(obs.LaneScrubber, "scrub_batch", 0)
	return func(n int) {
		reg.ObservePhaseScrub(time.Since(start))
		sp.EndCount(n, nil)
	}
}

// scrubBlock verifies one block, quarantining and (optionally) repairing
// on failure. It runs inside the Guard.
func (sc *Scrubber) scrubBlock(id BlockID) {
	err := sc.rv.VerifyBlockRaw(id)
	sc.st.obs.Inc(obs.CtrPagerScrubBlocks)
	sc.mu.Lock()
	sc.scanned++
	sc.mu.Unlock()
	if err == nil {
		return
	}
	sc.st.obs.Inc(obs.CtrPagerScrubCorrupt)
	sc.mu.Lock()
	sc.corrupt++
	sc.lastErr = err
	sc.mu.Unlock()

	// Quarantine before repairing: concurrent readers fail fast with a
	// typed error instead of racing the in-place rewrite. A reader that
	// slips past the quarantine check mid-repair still cannot observe a
	// wrong image — the rewrite is CRC-covered, so a torn read fails its
	// checksum like any other corruption.
	sc.st.Quarantine(id, err)
	if !sc.cfg.Repair {
		return
	}
	fixed, rerr := sc.rv.RepairBlock(id)
	if rerr != nil || !fixed {
		if rerr != nil {
			sc.mu.Lock()
			sc.lastErr = fmt.Errorf("repair block %d: %w", id, rerr)
			sc.mu.Unlock()
		}
		return
	}
	if sc.rv.VerifyBlockRaw(id) == nil {
		sc.st.obs.Inc(obs.CtrPagerScrubRepairs)
		sc.mu.Lock()
		sc.repaired++
		sc.mu.Unlock()
		sc.st.Unquarantine(id)
	}
}

// RunPass synchronously verifies every allocated block once, batch by
// batch under the Guard, and reports how many corrupt blocks it found
// (after repairs, quarantined ones remain counted).
func (sc *Scrubber) RunPass() (corrupt int, err error) {
	var id BlockID = 1
	for done := false; !done; {
		sc.cfg.Guard(func() {
			bound := sc.rv.Bound()
			end := id + BlockID(sc.cfg.BatchBlocks)
			if end >= bound {
				end = bound
				done = true // bound reached: this is the last batch
			}
			finish := sc.batchSpan()
			n := 0
			for ; id < end; id++ {
				sc.scrubBlock(id)
				n++
			}
			finish(n)
		})
	}
	sc.mu.Lock()
	sc.passes++
	sc.mu.Unlock()
	sc.st.obs.Inc(obs.CtrPagerScrubPasses)
	return len(sc.st.QuarantinedBlocks()), nil
}

// Start launches the background scrub loop: BatchBlocks blocks per tick,
// one tick per Interval, wrapping around at the allocation bound so the
// whole store is re-verified continuously. Stop halts it.
func (sc *Scrubber) Start() {
	if sc.stop != nil {
		return
	}
	sc.stop = make(chan struct{})
	sc.done = make(chan struct{})
	go sc.loop()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// when the scrubber was never started.
func (sc *Scrubber) Stop() {
	if sc.stop == nil {
		return
	}
	close(sc.stop)
	<-sc.done
	sc.stop = nil
	sc.done = nil
}

func (sc *Scrubber) loop() {
	defer close(sc.done)
	t := time.NewTicker(sc.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-sc.stop:
			return
		case <-t.C:
		}
		sc.cfg.Guard(func() {
			bound := sc.rv.Bound()
			sc.mu.Lock()
			id := sc.cursor
			sc.mu.Unlock()
			if id >= bound {
				id = 1
			}
			end := id + BlockID(sc.cfg.BatchBlocks)
			if end > bound {
				end = bound
			}
			finish := sc.batchSpan()
			n := 0
			for ; id < end; id++ {
				sc.scrubBlock(id)
				n++
			}
			finish(n)
			sc.mu.Lock()
			if id >= bound {
				sc.cursor = 1
				sc.passes++
				sc.st.obs.Inc(obs.CtrPagerScrubPasses)
			} else {
				sc.cursor = id
			}
			sc.mu.Unlock()
		})
	}
}
