package pager

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBlobRoundTripSizes(t *testing.T) {
	s := NewMemStore(128) // payload 116 per block
	sizes := []int{0, 1, 115, 116, 117, 500, 5000}
	for _, n := range sizes {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		head, err := s.WriteBlob(data)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		got, err := s.ReadBlob(head)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch (got %d bytes)", n, len(got))
		}
		if err := s.FreeBlob(head); err != nil {
			t.Fatalf("size %d: free: %v", n, err)
		}
	}
}

func TestFreeBlobReleasesAllBlocks(t *testing.T) {
	s := NewMemStore(128)
	before := s.NumBlocks()
	head, err := s.WriteBlob(make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks() == before {
		t.Fatal("blob allocated no blocks")
	}
	if err := s.FreeBlob(head); err != nil {
		t.Fatal(err)
	}
	if got := s.NumBlocks(); got != before {
		t.Fatalf("blocks = %d after free, want %d", got, before)
	}
}

func TestMemBackendMetaRoot(t *testing.T) {
	m := NewMemBackend(128)
	root, err := m.MetaRoot()
	if err != nil || root != NilBlock {
		t.Fatalf("fresh meta root = %d, %v", root, err)
	}
	if err := m.SetMetaRoot(42); err != nil {
		t.Fatal(err)
	}
	root, err = m.MetaRoot()
	if err != nil || root != 42 {
		t.Fatalf("meta root = %d, %v", root, err)
	}
}

func TestFileBackendMetaRootPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "meta.box")
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fb.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.SetMetaRoot(id); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	fb2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	root, err := fb2.MetaRoot()
	if err != nil || root != id {
		t.Fatalf("meta root after reopen = %d, %v (want %d)", root, err, id)
	}
}

func TestQuickBlobRoundTrip(t *testing.T) {
	s := NewMemStore(64)
	f := func(data []byte) bool {
		head, err := s.WriteBlob(data)
		if err != nil {
			return false
		}
		got, err := s.ReadBlob(head)
		if err != nil {
			return false
		}
		ok := bytes.Equal(got, data) || (len(data) == 0 && len(got) == 0)
		return s.FreeBlob(head) == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
