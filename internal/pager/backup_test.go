package pager

import (
	"bytes"
	"path/filepath"
	"testing"
)

// A backup taken from a live store opens clean, serves identical block
// images, and preserves the allocation state (free list included) so new
// allocations behave exactly like the source's would.
func TestBackupRoundTrip(t *testing.T) {
	st, fb, ids := scrubStore(t, 10)
	// Free a couple of blocks so the backup must carry the free list.
	if err := st.Free(ids[3]); err != nil {
		t.Fatal(err)
	}
	if err := st.Free(ids[7]); err != nil {
		t.Fatal(err)
	}
	live := ids[:3]
	want := make(map[BlockID][]byte)
	for _, id := range live {
		data, err := st.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = data
	}

	bpath := filepath.Join(t.TempDir(), "backup.box")
	if err := fb.BackupTo(bpath); err != nil {
		t.Fatalf("backup: %v", err)
	}

	bfb, err := OpenFile(bpath)
	if err != nil {
		t.Fatalf("open backup: %v", err)
	}
	bst := NewStore(bfb)
	defer bst.Close()
	if bfb.RecoveryInfo().Replayed {
		t.Fatal("backup should carry an empty WAL, nothing to replay")
	}
	if bfb.Bound() != fb.Bound() || bfb.NumBlocks() != fb.NumBlocks() {
		t.Fatalf("backup geometry: bound %d/%d, allocated %d/%d",
			bfb.Bound(), fb.Bound(), bfb.NumBlocks(), fb.NumBlocks())
	}
	for id, data := range want {
		got, err := bst.Read(id)
		if err != nil {
			t.Fatalf("backup read %d: %v", id, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("backup block %d differs from source", id)
		}
	}
	// The freed blocks must be re-allocatable from the copied free list.
	a1, err := bst.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := bst.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != ids[7] || a2 != ids[3] {
		t.Fatalf("backup free list yields %d,%d; want %d,%d", a1, a2, ids[7], ids[3])
	}
}

// A backup sees through the group-commit overlay: transactions committed
// but not yet applied in place are part of the snapshot.
func TestBackupIncludesOverlayState(t *testing.T) {
	_, fb, ids := scrubStore(t, 4)
	if err := fb.StartGroupCommit(Durability{Every: 8}); err != nil {
		t.Fatal(err)
	}
	fb.HoldGroupCommit(true)
	img := make([]byte, scrubBS)
	for i := range img {
		img[i] = 0xE7
	}
	fb.BeginBatch()
	if err := fb.WriteBlock(ids[0], img); err != nil {
		t.Fatal(err)
	}
	tk, err := fb.CommitBatchAsync()
	if err != nil {
		t.Fatal(err)
	}

	bpath := filepath.Join(t.TempDir(), "backup.box")
	if err := fb.BackupTo(bpath); err != nil {
		t.Fatalf("backup: %v", err)
	}
	fb.HoldGroupCommit(false)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := fb.StopGroupCommit(); err != nil {
		t.Fatal(err)
	}

	bfb, err := OpenFile(bpath)
	if err != nil {
		t.Fatal(err)
	}
	defer bfb.Close()
	buf := make([]byte, scrubBS)
	if err := bfb.ReadBlock(ids[0], buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		t.Fatal("backup missed the overlay-resident committed image")
	}
}

// A corrupt source block aborts the backup instead of copying rot.
func TestBackupRefusesCorruptSource(t *testing.T) {
	_, fb, ids := scrubStore(t, 4)
	rot(t, fb, ids[2])
	bpath := filepath.Join(t.TempDir(), "backup.box")
	if err := fb.BackupTo(bpath); err == nil {
		t.Fatal("backup of a corrupt store must fail")
	}
}

// Backups are rejected mid-batch and onto the store's own path.
func TestBackupGuards(t *testing.T) {
	_, fb, _ := scrubStore(t, 2)
	if err := fb.BackupTo(fb.Path()); err == nil {
		t.Fatal("backup onto the live store path must fail")
	}
	fb.BeginBatch()
	if err := fb.BackupTo(filepath.Join(t.TempDir(), "b.box")); err == nil {
		t.Fatal("backup with an open batch must fail")
	}
	fb.AbortBatch()
}
