// Package pager provides a fixed-size block store with honest I/O
// accounting, the storage substrate shared by every BOX structure.
//
// The paper measures the cost of each operation in block I/Os with
// main-memory caching turned off, while still allowing "a small number of
// memory blocks ... for buffering blocks that need to be immediately
// revisited" within a single operation. Store models exactly that:
//
//   - Every block fetched from the backend counts one read; every block
//     flushed to the backend counts one write.
//   - Between BeginOp and EndOp, blocks already touched by the current
//     operation are pinned and re-access is free. Dirty blocks are written
//     back (and counted) once, when the operation ends.
//   - An optional global LRU cache can be enabled to model cross-operation
//     caching; it is off by default, matching the paper's experiments.
//
// Two backends are provided: MemBackend (blocks held in memory, used by the
// benchmarks) and FileBackend (blocks persisted in a single file with a
// free-list, usable for real storage).
package pager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"boxes/internal/faults"
	"boxes/internal/obs"
)

// BlockID identifies a block within a Store. The zero value is reserved and
// never names a valid block; it plays the role of a nil pointer on disk.
type BlockID uint64

// NilBlock is the invalid block ID, used as a nil pointer in on-disk
// structures.
const NilBlock BlockID = 0

// DefaultBlockSize is the block size used throughout the paper's
// experiments (8 KB).
const DefaultBlockSize = 8192

// ErrClosed is returned by operations on a closed Store or Backend.
var ErrClosed = errors.New("pager: store is closed")

// IOStats counts block-level I/O performed against the backend.
type IOStats struct {
	Reads  uint64 // blocks fetched from the backend
	Writes uint64 // blocks flushed to the backend
}

// Total returns reads plus writes.
func (s IOStats) Total() uint64 { return s.Reads + s.Writes }

// Sub returns the element-wise difference s - t. It is used to charge an
// interval of work: snapshot before, snapshot after, subtract.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes}
}

func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d total=%d", s.Reads, s.Writes, s.Total())
}

// Backend is the raw block device under a Store.
type Backend interface {
	// BlockSize reports the fixed size in bytes of every block.
	BlockSize() int
	// Allocate reserves a new zeroed block and returns its ID (never 0).
	Allocate() (BlockID, error)
	// Free releases a block for reuse by a later Allocate.
	Free(id BlockID) error
	// ReadBlock copies the block's contents into buf, which must be
	// exactly BlockSize bytes long.
	ReadBlock(id BlockID, buf []byte) error
	// WriteBlock stores buf, which must be exactly BlockSize bytes long,
	// as the block's contents.
	WriteBlock(id BlockID, buf []byte) error
	// NumBlocks reports how many blocks are currently allocated.
	NumBlocks() uint64
	// Close releases any resources held by the backend.
	Close() error
}

// TxBackend is implemented by backends that can make a batch of writes
// atomic (FileBackend with its write-ahead log). Store opens a batch lazily
// at the first mutation inside an outermost BeginOp/EndOp pair and commits
// it at EndOp, so one mutating logical operation becomes one all-or-nothing
// transaction on disk while read-only operations touch no batch state.
type TxBackend interface {
	Backend
	// BeginBatch starts staging writes. It performs no I/O and cannot fail.
	BeginBatch()
	// CommitBatch makes every staged write (and any allocation/free/meta
	// mutation since BeginBatch) durable atomically.
	CommitBatch() error
	// AbortBatch discards the staged writes and rolls back allocation and
	// free-list state, as if the batch never started.
	AbortBatch()
}

// observerSetter is implemented by backends that report their own metrics
// (FileBackend's WAL/checksum counters). Store propagates its registry.
type observerSetter interface {
	SetObserver(*obs.Registry)
}

type opBlock struct {
	data  []byte
	dirty bool
	freed bool
}

// Store wraps a Backend with I/O accounting, per-operation pinning, and an
// optional global LRU cache.
//
// A Store is safe for use by a single goroutine at a time by default. With
// SetShared(true) it additionally supports one writer XOR many concurrent
// readers, provided the caller enforces that discipline with its own
// read/write lock (core.SyncStore does): the I/O counters are atomic, the
// LRU cache locks internally, and operations outside a BeginWrite bracket
// skip the per-op pin map entirely.
type Store struct {
	backend Backend
	reads   atomic.Uint64
	writes  atomic.Uint64
	cache   *lruCache
	obs     *obs.Registry // optional; nil-safe via obs method receivers

	// Writer-side state: guarded by the caller's exclusive section (the
	// single-goroutine contract, or a SyncStore write lock).
	op        map[BlockID]*opBlock
	opDepth   int
	batchOpen bool          // a TxBackend batch is open (lazily, at first mutation)
	ticket    *CommitTicket // pending group-commit ticket from the last EndOp

	shared  bool        // shared read mode enabled (SetShared)
	writing atomic.Bool // inside a BeginWrite/EndWrite bracket
	closed  bool

	// Cumulative instrumented phase time (see PhaseStats): every timed
	// backend section adds its nanoseconds here, so core can compute the
	// residual "structure" phase of an operation by snapshot difference.
	phaseRead   atomic.Int64
	phaseWrite  atomic.Int64
	phaseCommit atomic.Int64

	// Resilience state (see resilience.go): optional bounded retries of
	// raw backend calls, the first permanent write-path fault (core's
	// degraded-mode trigger), and the set of quarantined corrupt blocks.
	retry  *faults.Retrier
	wfault atomic.Pointer[writeFault]
	quar   sync.Map // BlockID -> string (corruption detail)
	nquar  atomic.Int64
}

// Option configures a Store.
type Option func(*Store)

// WithCache enables a global LRU cache holding up to capacity blocks.
// Capacity 0 disables the cache (the default, matching the paper's
// caching-off experiments).
func WithCache(capacity int) Option {
	return func(s *Store) {
		if capacity > 0 {
			s.cache = newLRUCache(capacity)
		} else {
			s.cache = nil
		}
	}
}

// WithObserver attaches a metrics registry: the store reports LRU cache
// hits/misses and backend I/O errors into it, and every structure layered
// on the store (LIDF, the BOXes) reaches the same registry through
// Observer.
func WithObserver(r *obs.Registry) Option {
	return func(s *Store) { s.obs = r }
}

// NewStore creates a Store over backend.
func NewStore(backend Backend, opts ...Option) *Store {
	s := &Store{backend: backend}
	for _, o := range opts {
		o(s)
	}
	if os, ok := backend.(observerSetter); ok {
		os.SetObserver(s.obs)
	}
	return s
}

// NewMemStore is shorthand for a Store over a fresh MemBackend with the
// given block size (DefaultBlockSize if size <= 0).
func NewMemStore(size int, opts ...Option) *Store {
	if size <= 0 {
		size = DefaultBlockSize
	}
	return NewStore(NewMemBackend(size), opts...)
}

// BlockSize reports the block size in bytes.
func (s *Store) BlockSize() int { return s.backend.BlockSize() }

// Backend returns the underlying block device (e.g. to reach persistence
// features like MetaRooter or FileBackend.Sync).
func (s *Store) Backend() Backend { return s.backend }

// NumBlocks reports how many blocks are currently allocated in the backend.
func (s *Store) NumBlocks() uint64 { return s.backend.NumBlocks() }

// SetObserver attaches (or, with nil, detaches) a metrics registry after
// construction. See WithObserver.
func (s *Store) SetObserver(r *obs.Registry) {
	s.obs = r
	if os, ok := s.backend.(observerSetter); ok {
		os.SetObserver(r)
	}
}

// Observer returns the attached metrics registry, or nil. The result is
// safe to use directly: obs.Registry methods are nil-receiver-safe.
func (s *Store) Observer() *obs.Registry { return s.obs }

// countIOError records a backend I/O failure, distinguishing injected
// faults so fault-injection runs are observable.
func (s *Store) countIOError(err error) {
	s.obs.Inc(obs.CtrPagerIOErrors)
	if errors.Is(err, ErrInjected) {
		s.obs.Inc(obs.CtrPagerInjectedFailures)
	}
	// Checksum mismatches are counted by the backend at the point of
	// detection (CtrPagerChecksumFailures); here they are just I/O errors.
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() IOStats {
	return IOStats{Reads: s.reads.Load(), Writes: s.writes.Load()}
}

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
}

// countRead/countWrite bump the store's I/O counters and feed the cost
// ledger and block heat map: the I/O is attributed to the operation in the
// registry's writer slot (or the lookup row on the shared read path) and
// sampled at its block id. Counter first, ledger second — the order the
// conservation invariant relies on.
func (s *Store) countRead(id BlockID) {
	s.reads.Add(1)
	s.obs.CostIO(s.readerOp(), false, uint64(id))
}

func (s *Store) countWrite(id BlockID) {
	s.writes.Add(1)
	s.obs.CostIO(s.readerOp(), true, uint64(id))
}

// SetShared enables (or disables) the shared read path. When on, BeginOp,
// EndOp and AbortOp called outside a BeginWrite/EndWrite bracket are
// no-ops, so reader goroutines run lookups without touching the per-op pin
// map or the backend's batch state. The caller must serialize writers
// against readers itself (core.SyncStore's RWMutex); SetShared must be
// called before any concurrency starts. Reader operations are unpinned:
// a block revisited within one lookup is re-counted, so shared-mode
// counted I/O is an upper bound on the paper's pinned accounting.
func (s *Store) SetShared(on bool) { s.shared = on }

// BeginWrite marks the start of an exclusive writer section (the caller
// must hold its write lock). Inside the bracket BeginOp/EndOp behave
// normally: blocks pin, dirty blocks flush once, and the backend batch
// commits atomically.
func (s *Store) BeginWrite() { s.writing.Store(true) }

// EndWrite ends the bracket opened by BeginWrite.
func (s *Store) EndWrite() { s.writing.Store(false) }

// readerOp reports whether the current call runs outside the writer
// bracket in shared mode and must therefore skip per-op state.
func (s *Store) readerOp() bool { return s.shared && !s.writing.Load() }

// Shared reports whether the shared read path is enabled (SetShared).
func (s *Store) Shared() bool { return s.shared }

// PhaseNanos is a snapshot of the store's cumulative instrumented phase
// time: nanoseconds spent in backend block reads, block writes, and commit
// calls. Core subtracts two snapshots to attribute an operation's residual
// (in-memory "structure") time.
type PhaseNanos struct {
	Read   int64
	Write  int64
	Commit int64
}

// Total returns the sum of all instrumented phase time.
func (p PhaseNanos) Total() int64 { return p.Read + p.Write + p.Commit }

// Sub returns the element-wise difference p - q.
func (p PhaseNanos) Sub(q PhaseNanos) PhaseNanos {
	return PhaseNanos{Read: p.Read - q.Read, Write: p.Write - q.Write, Commit: p.Commit - q.Commit}
}

// PhaseStats snapshots the cumulative instrumented phase time. All zeros
// when no observer is attached (timing is skipped entirely then).
func (s *Store) PhaseStats() PhaseNanos {
	return PhaseNanos{Read: s.phaseRead.Load(), Write: s.phaseWrite.Load(), Commit: s.phaseCommit.Load()}
}

// timedPhase runs one backend call with phase instrumentation: its duration
// goes into the (current op, ph) histogram, the store's cumulative phase
// counter, and — when span recording is on — a span on the current
// operation's lane. Without an observer the call runs bare.
func (s *Store) timedPhase(ph obs.Phase, acc *atomic.Int64, fn func() error) error {
	if s.obs == nil {
		return fn()
	}
	reader := s.readerOp()
	start := time.Now()
	err := fn()
	d := time.Since(start)
	acc.Add(int64(d))
	s.obs.ObservePhaseAuto(reader, ph, d)
	if t := s.obs.Tracer(); t.Enabled() {
		t.RecordAuto(reader, ph.String(), start, d)
	}
	return err
}

// BeginOp starts a logical operation. Until the matching EndOp, each block
// is fetched from (and counted against) the backend at most once, and dirty
// blocks are flushed once at EndOp. Calls nest; only the outermost pair
// delimits the pinned region.
//
// The backend batch is NOT opened here: it starts lazily at the first
// mutation (Allocate, Free, or a staged Write), so read-only operations —
// including every lookup on the shared read path — never touch the
// TxBackend's batch state.
func (s *Store) BeginOp() {
	if s.readerOp() {
		return
	}
	if s.opDepth == 0 {
		s.op = make(map[BlockID]*opBlock, 16)
	}
	s.opDepth++
}

// ensureBatch opens the backend batch if an operation is in progress and a
// mutation is about to happen. Idempotent per operation.
func (s *Store) ensureBatch() {
	if s.opDepth == 0 || s.batchOpen {
		return
	}
	if tx, ok := s.backend.(TxBackend); ok {
		tx.BeginBatch()
		s.batchOpen = true
	}
}

// EndOp ends the current logical operation, flushing and counting dirty
// blocks. It returns the first flush error encountered, if any.
func (s *Store) EndOp() error {
	if s.readerOp() {
		return nil
	}
	if s.opDepth == 0 {
		return errors.New("pager: EndOp without BeginOp")
	}
	s.opDepth--
	if s.opDepth > 0 {
		return nil
	}
	// Flush in ascending BlockID order (Go map iteration is randomized)
	// so write traces and injected-failure tests are deterministic and
	// replayable.
	dirty := 0
	for _, ob := range s.op {
		if !ob.freed && ob.dirty {
			dirty++
		}
	}
	var firstErr error
	if dirty > 0 {
		ids := make([]BlockID, 0, dirty)
		for id, ob := range s.op {
			if !ob.freed && ob.dirty {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			ob := s.op[id]
			err := s.timedPhase(obs.PhaseBlockWrite, &s.phaseWrite, func() error {
				return s.retryBackend(func() error { return s.backend.WriteBlock(id, ob.data) })
			})
			if err != nil {
				s.countIOError(err)
				s.NoteWriteFault(err)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.countWrite(id)
			s.liftQuarantine(id)
			if s.cache != nil {
				s.cache.put(id, ob.data)
			}
		}
	}
	s.op = nil
	if s.batchOpen {
		s.batchOpen = false
		tx := s.backend.(TxBackend)
		if firstErr != nil {
			tx.AbortBatch()
			// Blocks flushed (and cached) before the failure carry images
			// the abort just rolled back on disk.
			s.InvalidateCache()
		} else if atx, ok := tx.(AsyncTxBackend); ok && atx.GroupCommitEnabled() {
			var t *CommitTicket
			err := s.timedPhase(obs.PhaseWALCommit, &s.phaseCommit, func() (e error) {
				t, e = atx.CommitBatchAsync()
				return e
			})
			if err != nil {
				s.countIOError(err)
				s.NoteWriteFault(err)
				firstErr = err
				// The flush loop above cached the dirty images; a failed
				// commit means disk rolled back (or never advanced), so
				// those entries are phantoms.
				s.InvalidateCache()
			}
			s.ticket = t
		} else if err := s.timedPhase(obs.PhaseWALCommit, &s.phaseCommit, tx.CommitBatch); err != nil {
			s.countIOError(err)
			s.NoteWriteFault(err)
			firstErr = err
			s.InvalidateCache()
		}
	}
	return firstErr
}

// AbortOp abandons the current logical operation at any nesting depth:
// pinned blocks and staged writes are dropped and the backend batch rolls
// back, leaving the store at the state of the last committed operation.
// Used by batch executors whose partial work must not reach disk.
func (s *Store) AbortOp() {
	if s.readerOp() || s.opDepth == 0 {
		return
	}
	s.opDepth = 0
	s.op = nil
	if s.batchOpen {
		s.batchOpen = false
		if tx, ok := s.backend.(TxBackend); ok {
			tx.AbortBatch()
		}
		s.InvalidateCache()
	}
}

// InvalidateCache empties the global LRU cache. The abort paths call it
// because blocks flushed (and cached) ahead of a failed commit carry images
// the abort rolled back on disk; degraded-mode entry calls it too, covering
// group commits that abort asynchronously after EndOp already returned.
func (s *Store) InvalidateCache() {
	if s.cache != nil {
		s.cache.clear()
	}
}

// TakeTicket returns (and clears) the commit ticket of the most recent
// EndOp, or nil when the last operation committed synchronously. With
// group commit enabled the operation is durable only once the ticket's
// Wait returns; callers that must not lose acknowledged updates wait on
// it — ideally after releasing their locks, so concurrent transactions
// coalesce into one fsync.
func (s *Store) TakeTicket() *CommitTicket {
	t := s.ticket
	s.ticket = nil
	return t
}

// EndOpInto ends the current logical operation like EndOp, storing any
// flush error into *err unless *err already holds one. It is meant for
// deferred use with a named return value, so flush failures are never
// silently dropped:
//
//	func (x *T) Op() (err error) {
//		s.BeginOp()
//		defer s.EndOpInto(&err)
//		...
//	}
func (s *Store) EndOpInto(err *error) {
	if e := s.EndOp(); e != nil && *err == nil {
		*err = e
	}
}

// InOp reports whether a logical operation is currently open.
func (s *Store) InOp() bool { return s.opDepth > 0 }

// Allocate reserves a new zeroed block. Allocation itself performs no
// counted I/O; the block is charged when first written.
func (s *Store) Allocate() (BlockID, error) {
	if s.closed {
		return NilBlock, ErrClosed
	}
	s.ensureBatch()
	var id BlockID
	err := s.retryBackend(func() (e error) { id, e = s.backend.Allocate(); return e })
	if err != nil {
		s.countIOError(err)
		s.NoteWriteFault(err)
		return NilBlock, err
	}
	if s.opDepth > 0 {
		// A freshly allocated block is known-zero; pin it so that the
		// usual read-modify-write cycle does not charge a read for
		// contents that never existed.
		s.op[id] = &opBlock{data: make([]byte, s.backend.BlockSize())}
	}
	return id, nil
}

// Free releases a block. Freeing is a metadata operation and is not counted
// as an I/O, consistent with the paper's accounting.
func (s *Store) Free(id BlockID) error {
	if s.closed {
		return ErrClosed
	}
	s.ensureBatch()
	if s.opDepth > 0 {
		if ob, ok := s.op[id]; ok {
			ob.freed = true
			ob.dirty = false
		} else {
			s.op[id] = &opBlock{freed: true}
		}
	}
	if s.cache != nil {
		s.cache.drop(id)
	}
	if err := s.retryBackend(func() error { return s.backend.Free(id) }); err != nil {
		s.countIOError(err)
		s.NoteWriteFault(err)
		return err
	}
	return nil
}

// Read returns the contents of a block. Inside an operation the returned
// slice is the pinned copy: the caller may mutate it and then call Write
// with the same ID to mark it dirty. Outside an operation a private copy is
// returned.
func (s *Store) Read(id BlockID) ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if id == NilBlock {
		return nil, errors.New("pager: read of nil block")
	}
	if s.opDepth > 0 {
		if ob, ok := s.op[id]; ok {
			if ob.freed {
				return nil, fmt.Errorf("pager: read of freed block %d", id)
			}
			return ob.data, nil
		}
	}
	if s.cache != nil {
		if data, ok := s.cache.get(id); ok {
			// get returns a private copy, safe to hand out directly.
			s.obs.Inc(obs.CtrPagerCacheHits)
			if s.opDepth > 0 {
				s.op[id] = &opBlock{data: data}
			}
			return data, nil
		}
		s.obs.Inc(obs.CtrPagerCacheMisses)
	}
	if qerr := s.quarantineErr(id); qerr != nil {
		return nil, qerr
	}
	buf := make([]byte, s.backend.BlockSize())
	err := s.timedPhase(obs.PhaseBlockRead, &s.phaseRead, func() error {
		return s.retryBackend(func() error { return s.backend.ReadBlock(id, buf) })
	})
	if err != nil {
		s.countIOError(err)
		return nil, err
	}
	s.countRead(id)
	if s.opDepth > 0 {
		s.op[id] = &opBlock{data: buf}
	} else if s.cache != nil {
		s.cache.put(id, buf)
	}
	return buf, nil
}

// Write stores buf as the contents of the block. Inside an operation the
// write is staged and flushed (and counted) once at EndOp; outside it is
// written through immediately.
func (s *Store) Write(id BlockID, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if id == NilBlock {
		return errors.New("pager: write of nil block")
	}
	if len(buf) != s.backend.BlockSize() {
		return fmt.Errorf("pager: write of %d bytes, want %d", len(buf), s.backend.BlockSize())
	}
	if s.opDepth > 0 {
		s.ensureBatch() // a dirty block will flush into the backend at EndOp
		if ob, ok := s.op[id]; ok {
			if ob.freed {
				return fmt.Errorf("pager: write of freed block %d", id)
			}
			if &ob.data[0] != &buf[0] {
				copy(ob.data, buf)
			}
			ob.dirty = true
			return nil
		}
		data := make([]byte, len(buf))
		copy(data, buf)
		s.op[id] = &opBlock{data: data, dirty: true}
		return nil
	}
	err := s.timedPhase(obs.PhaseBlockWrite, &s.phaseWrite, func() error {
		return s.retryBackend(func() error { return s.backend.WriteBlock(id, buf) })
	})
	if err != nil {
		s.countIOError(err)
		s.NoteWriteFault(err)
		return err
	}
	s.countWrite(id)
	s.liftQuarantine(id)
	if s.cache != nil {
		s.cache.put(id, buf)
	}
	return nil
}

// Close flushes nothing (operations must be closed first) and releases the
// backend.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	if s.opDepth > 0 {
		return errors.New("pager: close with open operation")
	}
	s.closed = true
	return s.backend.Close()
}
