package pager

import (
	"fmt"
	"sync"

	"boxes/internal/faults"
)

// DiskFaultKind is one fault a DiskController can inject at a planned raw
// write or sync point.
type DiskFaultKind int

const (
	// DiskCrash cuts power at the planned point: the write is lost and
	// every later file operation fails with ErrCrashed until reopen.
	DiskCrash DiskFaultKind = iota
	// DiskTornCrash cuts power mid-write: the first half of the buffer
	// persists, then the device dies.
	DiskTornCrash
	// DiskNoSpace fails the planned write with faults.ErrNoSpace, one
	// shot: the device is full for that write and healthy afterward.
	DiskNoSpace
	// DiskTransient fails the planned point with faults.ErrTransient, one
	// shot — a flake a bounded retry is allowed to absorb.
	DiskTransient
	// DiskSyncFail fails the planned fsync with a nominally transient
	// cause. FileBackend wraps it into a faults.SyncError, which
	// classifies Permanent no matter the errno — the fsyncgate contract.
	DiskSyncFail
)

func (k DiskFaultKind) String() string {
	switch k {
	case DiskCrash:
		return "crash"
	case DiskTornCrash:
		return "torn-crash"
	case DiskNoSpace:
		return "nospace"
	case DiskTransient:
		return "transient"
	case DiskSyncFail:
		return "syncfail"
	default:
		return "disk?"
	}
}

// DiskController injects a pre-planned schedule of disk faults underneath
// a FileBackend. Like CrashController it counts every raw write (WriteAt
// and Truncate across the data file, CRC sidecar and WAL) as one global,
// deterministically ordered write point, and every fsync as one sync
// point; unlike CrashController, which models exactly one power cut, the
// plan maps any subset of points to any DiskFaultKind — so one controller
// expresses a composed history: a transient flake at write 7, ENOSPC at
// write 19, a torn power cut at write 30, an fsync failure at sync 3.
//
// The plan is fixed up front (maps of 1-based indices), which is what
// makes a simulated history byte-identically replayable: the same plan
// over the same workload charges the same indices in the same order.
// Attach via FileOptions.DiskControl. With an empty plan the controller
// only counts, which is how a harness discovers the sweep range.
type DiskController struct {
	// WriteFaults maps 1-based write-point indices to faults. Crash kinds
	// latch the dead state; other kinds are one-shot by construction
	// (each index is passed at most once).
	WriteFaults map[int]DiskFaultKind
	// SyncFaults maps 1-based sync-point indices to faults; only
	// DiskSyncFail and the crash kinds are meaningful here.
	SyncFaults map[int]DiskFaultKind
	// SkipRealSync makes fault-free fsyncs succeed without touching the
	// kernel. The simulator opens stores with NoSync off — so sync points
	// exist, are counted, and can fail — but thousands of histories
	// cannot afford thousands of real fsyncs.
	SkipRealSync bool

	mu      sync.Mutex
	writes  int
	syncs   int
	crashed bool
}

// NewDiskController returns a controller with an empty (count-only) plan.
func NewDiskController() *DiskController {
	return &DiskController{
		WriteFaults: make(map[int]DiskFaultKind),
		SyncFaults:  make(map[int]DiskFaultKind),
	}
}

// Writes reports how many raw write points have been charged so far.
func (c *DiskController) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Syncs reports how many sync points have been charged so far.
func (c *DiskController) Syncs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

// Crashed reports whether a planned crash has fired.
func (c *DiskController) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// PlanWrite adds kind at the 1-based write point idx, unless that point is
// already planned or already in the past. It reports whether the fault was
// armed. Safe to call between operations on a live backend — this is how
// the simulator plans faults "a few writes into the future".
func (c *DiskController) PlanWrite(idx int, kind DiskFaultKind) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx <= c.writes {
		return false
	}
	if _, ok := c.WriteFaults[idx]; ok {
		return false
	}
	c.WriteFaults[idx] = kind
	return true
}

// PlanSync adds kind at the 1-based sync point idx; same contract as
// PlanWrite.
func (c *DiskController) PlanSync(idx int, kind DiskFaultKind) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx <= c.syncs {
		return false
	}
	if _, ok := c.SyncFaults[idx]; ok {
		return false
	}
	c.SyncFaults[idx] = kind
	return true
}

// stepWrite charges one write point and returns the planned fault, if any.
func (c *DiskController) stepWrite() (kind DiskFaultKind, fault, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, false, true
	}
	c.writes++
	k, ok := c.WriteFaults[c.writes]
	if ok && (k == DiskCrash || k == DiskTornCrash) {
		c.crashed = true
	}
	return k, ok, false
}

// stepSync charges one sync point and returns the planned fault, if any.
func (c *DiskController) stepSync() (kind DiskFaultKind, fault, dead bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, false, true
	}
	c.syncs++
	k, ok := c.SyncFaults[c.syncs]
	if ok && (k == DiskCrash || k == DiskTornCrash) {
		c.crashed = true
	}
	return k, ok, false
}

func (c *DiskController) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// diskFile routes one file's I/O through a DiskController.
type diskFile struct {
	f    blockFile
	ctrl *DiskController
}

func (df *diskFile) rawFile() blockFile { return df.f }

func (df *diskFile) ReadAt(p []byte, off int64) (int, error) {
	if df.ctrl.dead() {
		return 0, ErrCrashed
	}
	return df.f.ReadAt(p, off)
}

func (df *diskFile) WriteAt(p []byte, off int64) (int, error) {
	kind, fault, dead := df.ctrl.stepWrite()
	if dead {
		return 0, ErrCrashed
	}
	if !fault {
		return df.f.WriteAt(p, off)
	}
	switch kind {
	case DiskTornCrash:
		if n := len(p) / 2; n > 0 {
			df.f.WriteAt(p[:n], off)
		}
		return 0, fmt.Errorf("%w (torn write of %d bytes at offset %d)", ErrCrashed, len(p), off)
	case DiskCrash:
		return 0, fmt.Errorf("%w (write of %d bytes at offset %d)", ErrCrashed, len(p), off)
	case DiskNoSpace:
		return 0, fmt.Errorf("disk: write of %d bytes at offset %d: %w", len(p), off, faults.ErrNoSpace)
	default: // DiskTransient and anything mapped oddly: a retryable flake
		return 0, fmt.Errorf("disk: injected write flake at offset %d: %w", off, faults.ErrTransient)
	}
}

func (df *diskFile) Truncate(size int64) error {
	kind, fault, dead := df.ctrl.stepWrite()
	if dead {
		return ErrCrashed
	}
	if !fault {
		return df.f.Truncate(size)
	}
	switch kind {
	case DiskCrash, DiskTornCrash:
		return fmt.Errorf("%w (truncate to %d)", ErrCrashed, size)
	case DiskNoSpace:
		return fmt.Errorf("disk: truncate to %d: %w", size, faults.ErrNoSpace)
	default:
		return fmt.Errorf("disk: injected truncate flake: %w", faults.ErrTransient)
	}
}

func (df *diskFile) Sync() error {
	kind, fault, dead := df.ctrl.stepSync()
	if dead {
		return ErrCrashed
	}
	if fault {
		switch kind {
		case DiskCrash, DiskTornCrash:
			return ErrCrashed
		default:
			// A deliberately transient-looking cause: the whole point of
			// the fsyncgate contract is that even this must not be
			// retried once it has passed through a Sync call.
			return fmt.Errorf("disk: injected fsync failure: %w", faults.ErrTransient)
		}
	}
	if df.ctrl.SkipRealSync {
		return nil
	}
	return df.f.Sync()
}

// Close always closes the real file so a harness can reopen the path
// after a simulated crash without leaking descriptors.
func (df *diskFile) Close() error { return df.f.Close() }
