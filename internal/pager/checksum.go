package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Block checksums use CRC32-C (Castagnoli), the polynomial with hardware
// support on every platform Go targets and the one used by iSCSI, ext4 and
// Btrfs for exactly this job: catching torn writes and bit rot on fixed
// size pages.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the CRC32-C of a block image.
func checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrCorrupt is the sentinel all corruption detections wrap: a block whose
// checksum does not match its contents, a header that disagrees with the
// file, or a write-ahead log whose committed frames cannot be replayed.
// Callers match it with errors.Is and recover the block ID (if any) with
// errors.As on *CorruptError.
var ErrCorrupt = errors.New("pager: corruption detected")

// CorruptError reports a specific corrupted region of a store file. It
// wraps ErrCorrupt, so errors.Is(err, ErrCorrupt) matches.
type CorruptError struct {
	Block  BlockID // corrupted block, NilBlock when the region is not a block
	Region string  // "block", "header", "wal", "checksum-file"
	Detail string
}

func (e *CorruptError) Error() string {
	if e.Block != NilBlock {
		return fmt.Sprintf("pager: corrupt %s (block %d): %s", e.Region, e.Block, e.Detail)
	}
	return fmt.Sprintf("pager: corrupt %s: %s", e.Region, e.Detail)
}

// Unwrap makes errors.Is(err, ErrCorrupt) hold.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// corruptBlock builds a block-level corruption error.
func corruptBlock(id BlockID, format string, args ...any) error {
	return &CorruptError{Block: id, Region: "block", Detail: fmt.Sprintf(format, args...)}
}

// corruptRegion builds a non-block corruption error.
func corruptRegion(region, format string, args ...any) error {
	return &CorruptError{Region: region, Detail: fmt.Sprintf(format, args...)}
}
