package wbox

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// BulkLoad implements order.Labeler. A single pass over the document tag
// stream produces all leaves in order; internal levels are packed greedily
// by weight, so no relabeling is ever needed during loading: O(N/B) I/Os.
func (l *Labeler) BulkLoad(tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if l.root != pager.NilBlock {
		return nil, order.ErrNotEmpty
	}
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	elems := make([]order.ElemLIDs, len(tags)/2)
	recs := make([]record, len(tags))
	for i, t := range tags {
		if t.Start {
			s, e, err := l.file.AllocPair()
			if err != nil {
				return nil, err
			}
			elems[t.Elem] = order.ElemLIDs{Start: s, End: e}
			recs[i] = record{lid: s, isStart: true, partnerLID: e}
		} else {
			recs[i] = record{lid: elems[t.Elem].End, partnerLID: elems[t.Elem].Start}
		}
	}
	if err := l.buildFromRecords(recs); err != nil {
		return nil, err
	}
	return elems, nil
}

// buildFromRecords replaces the entire structure with a fresh tree holding
// recs in order. LIDF pointers (and, in the PairOptimized variant, partner
// blocks and end-label copies) are rewritten for every record.
func (l *Labeler) buildFromRecords(recs []record) error {
	if len(recs) == 0 {
		l.root = pager.NilBlock
		l.height = 0
		l.live = 0
		l.dead = 0
		return nil
	}
	leaves, err := l.packLeaves(recs)
	if err != nil {
		return err
	}
	top, height, err := l.buildInternal(leaves)
	if err != nil {
		return err
	}
	l.root = top.blk
	l.height = height
	l.live = uint64(len(recs))
	l.dead = 0
	var fixes []endFix
	if err := l.relabelSubtree(top, 0, &fixes); err != nil {
		return err
	}
	return l.applyEndFixes(fixes, nil)
}

// packLeaves distributes recs into full leaves (the last two are
// rebalanced so no leaf underflows), allocates their blocks, points the
// LIDF at them, and resolves partner block pointers.
func (l *Labeler) packLeaves(recs []record) ([]*node, error) {
	n := len(recs)
	fill := l.p.LeafCap
	numLeaves := (n + fill - 1) / fill
	leaves := make([]*node, 0, numLeaves)
	for off := 0; off < n; off += fill {
		end := off + fill
		if end > n {
			end = n
		}
		leaf, err := l.allocNode(0, 0)
		if err != nil {
			return nil, err
		}
		leaf.recs = append(leaf.recs, recs[off:end]...)
		leaves = append(leaves, leaf)
	}
	l.rebalanceTail(leaves)
	// Resolve partner blocks now that every record has a home, then point
	// the LIDF at the leaves and write them (relabelSubtree re-writes
	// them with final ranges; inside one operation that costs nothing
	// extra).
	if l.p.Variant == PairOptimized {
		home := make(map[order.LID]pager.BlockID, n)
		for _, leaf := range leaves {
			for i := range leaf.recs {
				if !leaf.recs[i].deleted {
					home[leaf.recs[i].lid] = leaf.blk
				}
			}
		}
		for _, leaf := range leaves {
			for i := range leaf.recs {
				r := &leaf.recs[i]
				if r.deleted || r.partnerLID == 0 {
					continue
				}
				if pb, ok := home[r.partnerLID]; ok {
					r.partnerBlk = pb
					continue
				}
				// The partner lives outside the packed region; its own
				// block is unchanged, but its pointer back at this record
				// must follow the record to its new leaf.
				if r.partnerBlk == pager.NilBlock {
					continue
				}
				ext, err := l.readNode(r.partnerBlk)
				if err != nil {
					return nil, err
				}
				if pi := ext.findRec(r.partnerLID); pi >= 0 {
					ext.recs[pi].partnerBlk = leaf.blk
					if err := l.writeNode(ext); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for _, leaf := range leaves {
		for i := range leaf.recs {
			if leaf.recs[i].deleted {
				continue
			}
			if err := l.file.SetU64(leaf.recs[i].lid, uint64(leaf.blk)); err != nil {
				return nil, err
			}
		}
		if err := l.writeNode(leaf); err != nil {
			return nil, err
		}
	}
	return leaves, nil
}

// rebalanceTail evens out the last two leaves so the final one cannot
// underflow (each ends with at least half a full leaf).
func (l *Labeler) rebalanceTail(leaves []*node) {
	if len(leaves) < 2 {
		return
	}
	last := leaves[len(leaves)-1]
	prev := leaves[len(leaves)-2]
	if len(last.recs) >= l.p.K {
		return
	}
	combined := append(append([]record(nil), prev.recs...), last.recs...)
	half := (len(combined) + 1) / 2
	prev.recs = append(prev.recs[:0:0], combined[:half]...)
	last.recs = append(last.recs[:0:0], combined[half:]...)
}

// planLevel groups the ordered child weights of one level into parent
// nodes: children are packed greedily while the parent's weight stays below
// the level's limit (and fan-out below b), and the trailing group is
// rebalanced with its left neighbour so it cannot underflow. It returns the
// group sizes, in order. It is a pure function of the weights, so callers
// can predict the exact shape a build will produce.
func (p Params) planLevel(weights []uint64, level int) ([]int, error) {
	limit, ok := p.weightLimit(level)
	if !ok {
		return nil, order.ErrLabelOverflow
	}
	var groups []int
	cnt := 0
	var cw uint64
	for _, w := range weights {
		if cnt > 0 && (cw+w >= limit || cnt >= p.B) {
			groups = append(groups, cnt)
			cnt, cw = 0, 0
		}
		cnt++
		cw += w
	}
	groups = append(groups, cnt)
	if len(groups) < 2 {
		return groups, nil
	}
	// Rebalance the tail: if the last group underflows, merge it with its
	// left neighbour and split the union at its weight midpoint.
	lastStart := len(weights) - groups[len(groups)-1]
	var lastW uint64
	for _, w := range weights[lastStart:] {
		lastW += w
	}
	if lastW > p.weightMin(level) {
		return groups, nil
	}
	prevStart := lastStart - groups[len(groups)-2]
	var total uint64
	for _, w := range weights[prevStart:] {
		total += w
	}
	var w uint64
	split := 0
	for i := prevStart; i < len(weights); i++ {
		if w >= (total+1)/2 {
			break
		}
		w += weights[i]
		split = i - prevStart + 1
	}
	if split == 0 {
		split = 1
	}
	if split == len(weights)-prevStart {
		split = len(weights) - prevStart - 1
	}
	groups[len(groups)-2] = split
	groups[len(groups)-1] = len(weights) - prevStart - split
	return groups, nil
}

// planHeight reports the level at which packing the given leaf weights
// terminates with a single node.
func (p Params) planHeight(weights []uint64) (int, error) {
	level := 0
	for len(weights) > 1 {
		level++
		groups, err := p.planLevel(weights, level)
		if err != nil {
			return 0, err
		}
		next := make([]uint64, 0, len(groups))
		i := 0
		for _, g := range groups {
			var sum uint64
			for _, w := range weights[i : i+g] {
				sum += w
			}
			next = append(next, sum)
			i += g
		}
		weights = next
	}
	return level, nil
}

// predictPackCounts mirrors packLeaves: the record counts of the leaves
// that packing n records will produce.
func (p Params) predictPackCounts(n int) []int {
	fill := p.LeafCap
	var counts []int
	for off := 0; off < n; off += fill {
		c := fill
		if off+c > n {
			c = n - off
		}
		counts = append(counts, c)
	}
	if len(counts) >= 2 && counts[len(counts)-1] < p.K {
		total := counts[len(counts)-2] + counts[len(counts)-1]
		half := (total + 1) / 2
		counts[len(counts)-2] = half
		counts[len(counts)-1] = total - half
	}
	return counts
}

// buildInternal materializes planLevel's packing over the given ordered
// level-0 nodes up to the natural height. Slots and ranges are NOT assigned
// here; callers follow with relabelSubtree.
func (l *Labeler) buildInternal(level0 []*node) (*node, int, error) {
	cur := level0
	level := 0
	for len(cur) > 1 {
		level++
		weights := make([]uint64, len(cur))
		for i, c := range cur {
			weights[i] = c.weight()
		}
		groups, err := l.p.planLevel(weights, level)
		if err != nil {
			return nil, 0, err
		}
		next := make([]*node, 0, len(groups))
		i := 0
		for _, g := range groups {
			cn, err := l.allocNode(uint16(level), 0)
			if err != nil {
				return nil, 0, err
			}
			for _, child := range cur[i : i+g] {
				cn.ents = append(cn.ents, entry{child: child.blk, weight: child.weight(), size: child.size()})
			}
			i += g
			// Writing happens here so relabelSubtree can re-read children.
			if err := l.writeNode(cn); err != nil {
				return nil, 0, err
			}
			next = append(next, cn)
		}
		cur = next
	}
	return cur[0], level + 1, nil
}

// rebuildAll rebuilds the whole structure from its live records: the
// "global rebuilding" step triggered once tombstones reach half the tree.
func (l *Labeler) rebuildAll() error {
	if l.root == pager.NilBlock {
		return nil
	}
	l.store.Observer().Inc(obs.CtrWBoxRebuilds)
	leaves, err := l.collectLeaves(l.root, true)
	if err != nil {
		return err
	}
	var recs []record
	for _, leaf := range leaves {
		for i := range leaf.recs {
			if !leaf.recs[i].deleted {
				recs = append(recs, leaf.recs[i])
			}
		}
		if err := l.store.Free(leaf.blk); err != nil {
			return err
		}
	}
	l.logInvalidate(0, ^uint64(0))
	return l.buildFromRecords(recs)
}

// collectLeaves gathers the leaf nodes below blk's subtree in order. If
// freeInternal is set, internal blocks of the subtree are freed as they are
// visited (the caller is rebuilding).
func (l *Labeler) collectLeaves(blk pager.BlockID, freeInternal bool) ([]*node, error) {
	n, err := l.readNode(blk)
	if err != nil {
		return nil, err
	}
	return l.collectLeavesNode(n, freeInternal)
}

func (l *Labeler) collectLeavesNode(n *node, freeInternal bool) ([]*node, error) {
	if n.isLeaf() {
		return []*node{n}, nil
	}
	var out []*node
	for i := range n.ents {
		sub, err := l.collectLeaves(n.ents[i].child, freeInternal)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	if freeInternal {
		if err := l.store.Free(n.blk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InsertSubtreeBefore implements order.Labeler (Section 4, "Bulk loading
// and subtree insert/delete"): find the lowest ancestor of the insertion
// leaf with enough empty weight capacity for the new labels and rebuild
// just that subtree; if none has room, rebuild the whole tree. Existing
// leaves outside the insertion leaf keep their blocks, so LIDF updates are
// limited to the new records and the split insertion leaf.
func (l *Labeler) InsertSubtreeBefore(lidOld order.LID, tags []order.Tag) (_ []order.ElemLIDs, err error) {
	if err := order.ValidateTagStream(tags); err != nil {
		return nil, err
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	leaf, j, err := l.leafOf(lidOld)
	if err != nil {
		return nil, err
	}
	path, taken, err := l.descend(leaf.lo + uint64(j))
	if err != nil {
		return nil, err
	}
	nNew := uint64(len(tags))
	if l.p.Ordinal && l.ologger != nil {
		// All ordinals at or after the insertion point shift by the
		// subtree size — exact even though the operation rebuilds nodes.
		l.logOrdinalShift(ordinalAt(path, taken, j), int64(nNew))
	}

	// New records and LIDs.
	elems := make([]order.ElemLIDs, len(tags)/2)
	newRecs := make([]record, len(tags))
	for i, t := range tags {
		if t.Start {
			s, e, err := l.file.AllocPair()
			if err != nil {
				return nil, err
			}
			elems[t.Elem] = order.ElemLIDs{Start: s, End: e}
			newRecs[i] = record{lid: s, isStart: true, partnerLID: e}
		} else {
			newRecs[i] = record{lid: elems[t.Elem].End, partnerLID: elems[t.Elem].Start}
		}
	}

	// Lowest ancestor with room for nNew more records whose subtree, once
	// repacked with the new records, lands back at the same level.
	chosenIdx := -1
	for i := len(path) - 1; i > 0; i-- {
		limit, ok := l.p.weightLimit(int(path[i].level))
		if !ok {
			return nil, order.ErrLabelOverflow
		}
		if path[i].weight()+nNew >= limit {
			continue
		}
		ok, err := l.repackFeasible(path[i], leaf.blk, len(newRecs), int(path[i].level))
		if err != nil {
			return nil, err
		}
		if ok {
			chosenIdx = i
			break
		}
	}

	if chosenIdx <= 0 {
		// No suitable ancestor: rebuild the whole tree from leaf runs,
		// splicing the new records at the insertion point.
		leaves, err := l.collectLeaves(l.root, true)
		if err != nil {
			return nil, err
		}
		if err := l.spliceAndRebuild(leaves, leaf.blk, j, newRecs, nil, 0); err != nil {
			return nil, err
		}
		return elems, nil
	}

	chosen := path[chosenIdx]
	parent := path[chosenIdx-1]
	pIdx := taken[chosenIdx-1]
	leaves, err := l.collectLeavesNode(chosen, true)
	if err != nil {
		return nil, err
	}
	if err := l.spliceAndRebuild(leaves, leaf.blk, j, newRecs, parent, pIdx); err != nil {
		return nil, err
	}
	// Ancestors above chosen gained nNew records. The parent's own entry
	// for chosen was recomputed exactly by spliceAndRebuild, so only the
	// entries strictly above it need the increment.
	for i := 0; i < chosenIdx-1; i++ {
		path[i].ents[taken[i]].weight += nNew
		path[i].ents[taken[i]].size += nNew
		if err := l.writeNode(path[i]); err != nil {
			return nil, err
		}
	}
	l.live += nNew
	// Adding a large batch may push ancestors past their weight limits;
	// restore the constraints with ordinary splits along the path.
	if err := l.splitUntilValid(elems[0].Start); err != nil {
		return nil, err
	}
	return elems, nil
}

// repackFeasible predicts whether repacking the leaves under chosen with
// nNew extra records spliced into the boundary leaf yields a packing whose
// natural top lands exactly at targetLevel.
func (l *Labeler) repackFeasible(chosen *node, boundaryBlk pager.BlockID, nNew, targetLevel int) (bool, error) {
	leaves, err := l.collectLeavesNode(chosen, false)
	if err != nil {
		return false, err
	}
	var weights []uint64
	for _, lf := range leaves {
		if lf.blk == boundaryBlk {
			for _, c := range l.p.predictPackCounts(len(lf.recs) + nNew) {
				weights = append(weights, uint64(c))
			}
			continue
		}
		weights = append(weights, lf.weight())
	}
	h, err := l.p.planHeight(weights)
	if err != nil {
		return false, err
	}
	return h == targetLevel, nil
}

// spliceAndRebuild rebuilds the subtree whose ordered leaves are given,
// replacing the boundary leaf (block boundaryBlk) by a repacked run that
// has newRecs inserted before its j-th record. With parent == nil the whole
// tree is rebuilt; otherwise the packed top replaces parent.ents[pIdx]
// (packing is guaranteed by repackFeasible to land at the right level).
func (l *Labeler) spliceAndRebuild(leaves []*node, boundaryBlk pager.BlockID, j int, newRecs []record, parent *node, pIdx int) error {
	bi := -1
	for i, lf := range leaves {
		if lf.blk == boundaryBlk {
			bi = i
			break
		}
	}
	if bi < 0 {
		return fmt.Errorf("wbox: boundary leaf %d not under rebuilt subtree", boundaryBlk)
	}
	boundary := leaves[bi]
	region := make([]record, 0, len(boundary.recs)+len(newRecs))
	region = append(region, boundary.recs[:j]...)
	region = append(region, newRecs...)
	region = append(region, boundary.recs[j:]...)
	if err := l.store.Free(boundary.blk); err != nil {
		return err
	}
	packed, err := l.packLeaves(region)
	if err != nil {
		return err
	}
	all := make([]*node, 0, len(leaves)-1+len(packed))
	all = append(all, leaves[:bi]...)
	all = append(all, packed...)
	all = append(all, leaves[bi+1:]...)

	var oldLo uint64
	targetLevel := 0
	if parent != nil {
		targetLevel = int(parent.level) - 1
		childLen, ok := l.p.rangeLen(targetLevel)
		if !ok {
			return order.ErrLabelOverflow
		}
		oldLo = parent.lo + uint64(parent.ents[pIdx].slot)*childLen
	}

	top, height, err := l.buildInternal(all)
	if err != nil {
		return err
	}
	var fixes []endFix
	if parent == nil {
		l.root = top.blk
		l.height = height
		l.live += uint64(len(newRecs))
		if err := l.relabelSubtree(top, 0, &fixes); err != nil {
			return err
		}
		l.logInvalidate(0, ^uint64(0))
	} else {
		if height-1 != targetLevel {
			return fmt.Errorf("wbox: repack landed at level %d, want %d", height-1, targetLevel)
		}
		parent.ents[pIdx].child = top.blk
		parent.ents[pIdx].weight = top.weight()
		parent.ents[pIdx].size = top.size()
		if err := l.writeNode(parent); err != nil {
			return err
		}
		if err := l.relabelSubtree(top, oldLo, &fixes); err != nil {
			return err
		}
		rl, _ := l.p.rangeLen(targetLevel)
		l.logInvalidate(oldLo, oldLo+rl-1)
	}
	return l.applyEndFixes(fixes, nil)
}

// splitUntilValid runs the insert split loop (without a pending record)
// along the path to lid's leaf until no node on it violates its weight
// limit.
func (l *Labeler) splitUntilValid(lid order.LID) error {
	for {
		leaf, j, err := l.leafOf(lid)
		if err != nil {
			return err
		}
		path, taken, err := l.descend(leaf.lo + uint64(j))
		if err != nil {
			return err
		}
		vIdx := -1
		for i, n := range path {
			limit, ok := l.p.weightLimit(int(n.level))
			if !ok {
				return order.ErrLabelOverflow
			}
			if n.weight() >= limit {
				vIdx = i
				break
			}
		}
		if vIdx < 0 {
			return nil
		}
		if err := l.splitNode(path, taken, vIdx); err != nil {
			return err
		}
	}
}
