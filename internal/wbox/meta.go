package wbox

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"boxes/internal/pager"
)

// MarshalMeta serializes the W-BOX's root pointer, height, counters, and
// LIDF bookkeeping so the structure can be reopened over a persistent
// backend.
func (l *Labeler) MarshalMeta() []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint8(l.p.Variant))
	binary.Write(&buf, binary.LittleEndian, boolByte(l.p.Ordinal))
	binary.Write(&buf, binary.LittleEndian, uint64(l.root))
	binary.Write(&buf, binary.LittleEndian, uint32(l.height))
	binary.Write(&buf, binary.LittleEndian, l.live)
	binary.Write(&buf, binary.LittleEndian, l.dead)
	lm := l.file.MarshalMeta()
	binary.Write(&buf, binary.LittleEndian, uint32(len(lm)))
	buf.Write(lm)
	return buf.Bytes()
}

// RestoreMeta restores state saved by MarshalMeta into a freshly created
// (empty) W-BOX with identical parameters over the same backend.
func (l *Labeler) RestoreMeta(data []byte) error {
	r := bytes.NewReader(data)
	var variant, ordinal uint8
	if err := binary.Read(r, binary.LittleEndian, &variant); err != nil {
		return fmt.Errorf("wbox: meta: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &ordinal); err != nil {
		return err
	}
	if Variant(variant) != l.p.Variant || (ordinal == 1) != l.p.Ordinal {
		return fmt.Errorf("wbox: meta variant/ordinal (%d,%d) do not match parameters (%d,%v)",
			variant, ordinal, l.p.Variant, l.p.Ordinal)
	}
	var root uint64
	var height uint32
	if err := binary.Read(r, binary.LittleEndian, &root); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &height); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &l.live); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &l.dead); err != nil {
		return err
	}
	var lmLen uint32
	if err := binary.Read(r, binary.LittleEndian, &lmLen); err != nil {
		return err
	}
	lm := make([]byte, lmLen)
	if _, err := r.Read(lm); err != nil {
		return err
	}
	if err := l.file.RestoreMeta(lm); err != nil {
		return err
	}
	l.root = pager.BlockID(root)
	l.height = int(height)
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
