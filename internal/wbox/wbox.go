package wbox

import (
	"errors"
	"fmt"

	"boxes/internal/lidf"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// ErrPairVariant is returned by single-label insertion on a PairOptimized
// W-BOX, whose leaf records carry per-element linkage; use
// InsertElementBefore instead.
var ErrPairVariant = errors.New("wbox: W-BOX-O requires element-level insertion")

// Labeler is a W-BOX: a weight-balanced B-tree maintaining a dynamic
// order-based labeling. It implements order.Labeler.
type Labeler struct {
	store *pager.Store
	file  *lidf.File
	p     Params

	root   pager.BlockID // NilBlock when empty
	height int           // levels (1 = a single leaf); 0 when empty

	live uint64 // live labels
	dead uint64 // tombstoned labels awaiting global rebuild

	logger  order.UpdateLogger
	ologger order.UpdateLogger // ordinal-label effects (requires Ordinal)
}

// New creates an empty W-BOX over store with the given parameters.
func New(store *pager.Store, p Params) (*Labeler, error) {
	if p.BlockSize != store.BlockSize() {
		return nil, fmt.Errorf("wbox: params block size %d != store block size %d", p.BlockSize, store.BlockSize())
	}
	f, err := lidf.New(store, 8) // payload: BOX leaf block address
	if err != nil {
		return nil, err
	}
	return &Labeler{store: store, file: f, p: p}, nil
}

// NewDefault creates an empty basic W-BOX with parameters derived from the
// store's block size.
func NewDefault(store *pager.Store) (*Labeler, error) {
	p, err := NewParams(store.BlockSize(), Basic, false)
	if err != nil {
		return nil, err
	}
	return New(store, p)
}

// Params returns the structural parameters in use.
func (l *Labeler) Params() Params { return l.p }

// SetLogger implements order.LoggingLabeler.
func (l *Labeler) SetLogger(lg order.UpdateLogger) { l.logger = lg }

// SetOrdinalLogger implements order.OrdinalLoggingLabeler: lg receives
// ordinal-label effects ("[o, ∞): ±1"). Requires ordinal support; ordinal
// labels are never affected by relabeling, so every effect is succinct.
func (l *Labeler) SetOrdinalLogger(lg order.UpdateLogger) { l.ologger = lg }

// ordinalAt computes the ordinal position of the record at index idx of
// the final path node, using the (pre-update) size fields along the path.
func ordinalAt(path []*node, taken []int, idx int) uint64 {
	var ord uint64
	for i := range path[:len(path)-1] {
		for q := 0; q < taken[i]; q++ {
			ord += path[i].ents[q].size
		}
	}
	tail := path[len(path)-1]
	for q := 0; q < idx && q < len(tail.recs); q++ {
		if !tail.recs[q].deleted {
			ord++
		}
	}
	return ord
}

func (l *Labeler) logOrdinalShift(ord uint64, delta int64) {
	if l.ologger != nil {
		l.ologger.LogShift(ord, ^uint64(0), delta)
	}
}

// Count implements order.Labeler.
func (l *Labeler) Count() uint64 { return l.live }

// Height implements order.Labeler.
func (l *Labeler) Height() int { return l.height }

// LabelBits implements order.Labeler: the bits needed to express the
// current root range.
func (l *Labeler) LabelBits() int {
	if l.height == 0 {
		return 0
	}
	r, ok := l.p.rangeLen(l.height - 1)
	if !ok {
		return 64
	}
	bits := 0
	for v := r - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

func (l *Labeler) logShift(lo, hi uint64, delta int64) {
	if l.logger != nil && lo <= hi {
		l.logger.LogShift(lo, hi, delta)
	}
}

func (l *Labeler) logInvalidate(lo, hi uint64) {
	if l.logger != nil {
		l.logger.LogInvalidate(lo, hi)
	}
}

// leafOf reads the leaf currently holding lid's record via the LIDF.
func (l *Labeler) leafOf(lid order.LID) (*node, int, error) {
	blkU, err := l.file.GetU64(lid)
	if err != nil {
		return nil, 0, err
	}
	leaf, err := l.readNode(pager.BlockID(blkU))
	if err != nil {
		return nil, 0, err
	}
	idx := leaf.findRec(lid)
	if idx < 0 {
		return nil, 0, fmt.Errorf("wbox: LIDF points lid %d at block %d, record missing", lid, leaf.blk)
	}
	if leaf.recs[idx].deleted {
		return nil, 0, order.ErrUnknownLID
	}
	return leaf, idx, nil
}

// Lookup implements order.Labeler. Cost: one LIDF I/O plus one leaf I/O.
func (l *Labeler) Lookup(lid order.LID) (_ order.Label, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf, idx, err := l.leafOf(lid)
	if err != nil {
		return 0, err
	}
	return leaf.lo + uint64(idx), nil
}

// LookupPair returns both labels of the element whose start label is
// startLID. On a PairOptimized W-BOX this costs one LIDF I/O plus one leaf
// I/O (the end label is cached in the start record); on a basic W-BOX it
// falls back to two lookups.
func (l *Labeler) LookupPair(startLID, endLID order.LID) (start, end order.Label, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf, idx, err := l.leafOf(startLID)
	if err != nil {
		return 0, 0, err
	}
	start = leaf.lo + uint64(idx)
	if l.p.Variant == PairOptimized && leaf.recs[idx].isStart && leaf.recs[idx].partnerBlk != pager.NilBlock {
		return start, leaf.recs[idx].endCopy, nil
	}
	leafE, idxE, err := l.leafOf(endLID)
	if err != nil {
		return 0, 0, err
	}
	return start, leafE.lo + uint64(idxE), nil
}

// descend walks from the root to the leaf whose range contains label,
// returning the path (root first) and, for each internal path node, the
// entry index taken.
func (l *Labeler) descend(label uint64) (path []*node, taken []int, err error) {
	if l.root == pager.NilBlock {
		return nil, nil, order.ErrEmpty
	}
	blk := l.root
	for {
		n, err := l.readNode(blk)
		if err != nil {
			return nil, nil, err
		}
		path = append(path, n)
		if n.isLeaf() {
			return path, taken, nil
		}
		childLen, ok := l.p.rangeLen(int(n.level) - 1)
		if !ok {
			return nil, nil, order.ErrLabelOverflow
		}
		ci := n.childIndexByLabel(label, childLen)
		if ci < 0 {
			return nil, nil, fmt.Errorf("wbox: label %d outside node %d range", label, n.blk)
		}
		taken = append(taken, ci)
		blk = n.ents[ci].child
	}
}

// InsertBefore implements order.Labeler for the basic variant.
func (l *Labeler) InsertBefore(lidOld order.LID) (_ order.LID, err error) {
	if l.p.Variant == PairOptimized {
		return order.NilLID, ErrPairVariant
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	lid, err := l.file.Alloc()
	if err != nil {
		return order.NilLID, err
	}
	if err := l.insertOne(lid, lidOld, record{lid: lid}); err != nil {
		return order.NilLID, err
	}
	return lid, nil
}

// InsertElementBefore implements order.Labeler.
func (l *Labeler) InsertElementBefore(lidOld order.LID) (_ order.ElemLIDs, err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	startLID, endLID, err := l.file.AllocPair()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	// Insert the end label before lidOld, then the start label before the
	// end label (Section 3's implementation of insert-element-before).
	endRec := record{lid: endLID}
	startRec := record{lid: startLID, isStart: true}
	if err := l.insertOne(endLID, lidOld, endRec); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.insertOne(startLID, endLID, startRec); err != nil {
		return order.ElemLIDs{}, err
	}
	if l.p.Variant == PairOptimized {
		if err := l.linkPair(startLID, endLID); err != nil {
			return order.ElemLIDs{}, err
		}
	}
	return order.ElemLIDs{Start: startLID, End: endLID}, nil
}

// linkPair records the partner linkage between a freshly inserted start and
// end record and caches the end label in the start record.
func (l *Labeler) linkPair(startLID, endLID order.LID) error {
	leafS, idxS, err := l.leafOf(startLID)
	if err != nil {
		return err
	}
	leafE, idxE, err := l.leafOf(endLID)
	if err != nil {
		return err
	}
	if leafS.blk == leafE.blk {
		leafE = leafS // operate on one image
		idxE = leafE.findRec(endLID)
	}
	leafS.recs[idxS].partnerBlk = leafE.blk
	leafS.recs[idxS].partnerLID = endLID
	leafS.recs[idxS].endCopy = leafE.lo + uint64(idxE)
	leafE.recs[idxE].partnerBlk = leafS.blk
	leafE.recs[idxE].partnerLID = startLID
	if err := l.writeNode(leafS); err != nil {
		return err
	}
	if leafE != leafS {
		if err := l.writeNode(leafE); err != nil {
			return err
		}
	}
	return nil
}

// InsertFirstElement implements order.Labeler.
func (l *Labeler) InsertFirstElement() (_ order.ElemLIDs, err error) {
	if l.root != pager.NilBlock {
		return order.ElemLIDs{}, order.ErrNotEmpty
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	startLID, endLID, err := l.file.AllocPair()
	if err != nil {
		return order.ElemLIDs{}, err
	}
	leaf, err := l.allocNode(0, 0)
	if err != nil {
		return order.ElemLIDs{}, err
	}
	leaf.recs = []record{
		{lid: startLID, isStart: true},
		{lid: endLID},
	}
	if l.p.Variant == PairOptimized {
		leaf.recs[0].partnerBlk = leaf.blk
		leaf.recs[0].partnerLID = endLID
		leaf.recs[0].endCopy = 1
		leaf.recs[1].partnerBlk = leaf.blk
		leaf.recs[1].partnerLID = startLID
	}
	if err := l.writeNode(leaf); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.file.SetU64(startLID, uint64(leaf.blk)); err != nil {
		return order.ElemLIDs{}, err
	}
	if err := l.file.SetU64(endLID, uint64(leaf.blk)); err != nil {
		return order.ElemLIDs{}, err
	}
	l.root = leaf.blk
	l.height = 1
	l.live = 2
	return order.ElemLIDs{Start: startLID, End: endLID}, nil
}

// Delete implements order.Labeler: the record is tombstoned (global
// rebuilding technique); weights are not decremented, so no splitting can
// occur. Once tombstones reach half the structure it is rebuilt.
func (l *Labeler) Delete(lid order.LID) (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf, idx, err := l.leafOf(lid)
	if err != nil {
		return err
	}
	if l.p.Ordinal {
		// Maintain size fields along the root-to-leaf path; this is what
		// makes ordinal deletion O(log_B N) instead of O(1).
		label := leaf.lo + uint64(idx)
		path, taken, err := l.descend(label)
		if err != nil {
			return err
		}
		leaf = path[len(path)-1]
		idx = leaf.findRec(lid)
		if idx < 0 {
			return fmt.Errorf("wbox: record %d vanished during delete", lid)
		}
		l.logOrdinalShift(ordinalAt(path, taken, idx), -1)
		for i, n := range path[:len(path)-1] {
			n.ents[taken[i]].size--
			if err := l.writeNode(n); err != nil {
				return err
			}
		}
	}
	if l.p.Variant == PairOptimized {
		if err := l.unlinkPartner(leaf, &leaf.recs[idx]); err != nil {
			return err
		}
	}
	leaf.recs[idx].deleted = true
	leaf.recs[idx].lid = 0 // LIDs of tombstones are meaningless; avoid aliasing
	leaf.recs[idx].isStart = false
	leaf.recs[idx].partnerBlk = pager.NilBlock
	leaf.recs[idx].partnerLID = 0
	leaf.recs[idx].endCopy = 0
	if err := l.writeNode(leaf); err != nil {
		return err
	}
	if err := l.file.Free(lid); err != nil {
		return err
	}
	l.live--
	l.dead++
	if rebuildTriggered(l.dead, l.live) {
		return l.rebuildAll()
	}
	return nil
}

// unlinkPartner clears the partner linkage pointing back at a record that
// is about to disappear, so later fix-ups never chase a dangling pointer.
// home is the caller's in-memory image of the leaf holding r; when the
// partner is co-located the edit happens on that image (which the caller
// will write), never on a second image that the caller's write would undo.
func (l *Labeler) unlinkPartner(home *node, r *record) error {
	if r.partnerBlk == pager.NilBlock {
		return nil
	}
	pn := home
	if r.partnerBlk != home.blk {
		var err error
		pn, err = l.readNode(r.partnerBlk)
		if err != nil {
			return err
		}
	}
	pi := pn.findRec(r.partnerLID)
	if pi < 0 {
		return nil // partner already deleted
	}
	pn.recs[pi].partnerBlk = pager.NilBlock
	pn.recs[pi].partnerLID = 0
	pn.recs[pi].endCopy = 0
	if pn == home {
		return nil // caller writes home
	}
	return l.writeNode(pn)
}

// OrdinalLookup implements order.Labeler: a regular lookup followed by a
// top-down traversal accumulating the size fields left of the path
// (Section 4, "Ordinal labeling support").
func (l *Labeler) OrdinalLookup(lid order.LID) (_ uint64, err error) {
	if !l.p.Ordinal {
		return 0, order.ErrNoOrdinal
	}
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)
	leaf, idx, err := l.leafOf(lid)
	if err != nil {
		return 0, err
	}
	label := leaf.lo + uint64(idx)
	path, taken, err := l.descend(label)
	if err != nil {
		return 0, err
	}
	var ord uint64
	for i, n := range path[:len(path)-1] {
		for j := 0; j < taken[i]; j++ {
			ord += n.ents[j].size
		}
	}
	tail := path[len(path)-1]
	for j := 0; j < idx; j++ {
		if !tail.recs[j].deleted {
			ord++
		}
	}
	return ord, nil
}

var _ order.Labeler = (*Labeler)(nil)
var _ order.LoggingLabeler = (*Labeler)(nil)
var _ order.OrdinalLoggingLabeler = (*Labeler)(nil)
