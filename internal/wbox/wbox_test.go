package wbox

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
	"boxes/internal/xmlgen"
)

func newLabeler(t *testing.T, blockSize int, variant Variant, ordinal bool) *Labeler {
	t.Helper()
	store := pager.NewMemStore(blockSize)
	p, err := NewParams(blockSize, variant, ordinal)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func allVariants(t *testing.T, f func(t *testing.T, l *Labeler)) {
	t.Helper()
	cases := []struct {
		name    string
		variant Variant
		ordinal bool
	}{
		{"basic", Basic, false},
		{"ordinal", Basic, true},
		{"pair", PairOptimized, false},
		{"pair-ordinal", PairOptimized, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f(t, newLabeler(t, 512, c.variant, c.ordinal))
		})
	}
}

func TestParamsDerivation(t *testing.T) {
	p, err := NewParams(8192, Basic, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.B < 300 || p.B > 320 {
		t.Errorf("b = %d, want ~314 for 8KB blocks", p.B)
	}
	if 2*p.A+3+ceilDiv(8, p.A-2) > p.B {
		t.Errorf("a = %d inconsistent with b = %d", p.A, p.B)
	}
	if 2*(p.A+1)+3+ceilDiv(8, p.A-1) <= p.B {
		t.Errorf("a = %d is not maximal for b = %d", p.A, p.B)
	}
	if p.LeafCap != 2*p.K-1 {
		t.Errorf("leaf cap %d != 2k-1 (k=%d)", p.LeafCap, p.K)
	}
	if _, err := NewParams(64, Basic, false); err == nil {
		t.Error("tiny block size accepted")
	}
}

func TestWeightBounds(t *testing.T) {
	p, _ := NewParams(512, Basic, false)
	lim0, _ := p.weightLimit(0)
	if lim0 != uint64(2*p.K) {
		t.Errorf("leaf limit = %d, want %d", lim0, 2*p.K)
	}
	lim1, _ := p.weightLimit(1)
	if lim1 != uint64(2*p.A*p.K) {
		t.Errorf("level-1 limit = %d, want %d", lim1, 2*p.A*p.K)
	}
	if p.weightMin(1) != uint64(p.A*p.K-2*p.K) {
		t.Errorf("level-1 min = %d, want %d", p.weightMin(1), p.A*p.K-2*p.K)
	}
	if p.weightMin(0) >= uint64(p.K) {
		t.Errorf("leaf min %d should be below k=%d", p.weightMin(0), p.K)
	}
}

func TestInsertFirstElement(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		e, err := l.InsertFirstElement()
		if err != nil {
			t.Fatal(err)
		}
		s, err := l.Lookup(e.Start)
		if err != nil {
			t.Fatal(err)
		}
		en, err := l.Lookup(e.End)
		if err != nil {
			t.Fatal(err)
		}
		if s >= en {
			t.Fatalf("start %d >= end %d", s, en)
		}
		if _, err := l.InsertFirstElement(); !errors.Is(err, order.ErrNotEmpty) {
			t.Fatalf("second InsertFirstElement err = %v", err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// loadAndTrack bulk loads tags and returns an oracle tracking LID order.
func loadAndTrack(t *testing.T, l *Labeler, tags []order.Tag) ([]order.ElemLIDs, *order.Oracle) {
	t.Helper()
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	lids := make([]order.LID, len(tags))
	for i, tg := range tags {
		if tg.Start {
			lids[i] = elems[tg.Elem].Start
		} else {
			lids[i] = elems[tg.Elem].End
		}
	}
	o := order.NewOracle()
	o.Load(lids)
	return elems, o
}

func TestBulkLoadXMark(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := xmlgen.XMark(400, 1).TagStream()
		_, o := loadAndTrack(t, l, tags)
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
		if l.Count() != uint64(len(tags)) {
			t.Fatalf("count = %d, want %d", l.Count(), len(tags))
		}
	})
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	if _, err := l.BulkLoad(order.TagStreamFromPairs(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.BulkLoad(order.TagStreamFromPairs(3)); !errors.Is(err, order.ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
}

// squeeze performs the paper's concentrated insertion sequence: pairs of
// elements repeatedly inserted at the centre of a growing sibling list.
func squeeze(t *testing.T, l *Labeler, o *order.Oracle, anchor order.LID, pairs int) {
	t.Helper()
	right := anchor
	for i := 0; i < pairs; i++ {
		left, err := l.InsertElementBefore(right)
		if err != nil {
			t.Fatalf("pair %d left: %v", i, err)
		}
		if err := o.InsertElementBefore(left, right); err != nil {
			t.Fatal(err)
		}
		rightE, err := l.InsertElementBefore(right)
		if err != nil {
			t.Fatalf("pair %d right: %v", i, err)
		}
		if err := o.InsertElementBefore(rightE, right); err != nil {
			t.Fatal(err)
		}
		right = rightE.Start
	}
}

func TestConcentratedInsertion(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := order.TagStreamFromPairs(50)
		elems, o := loadAndTrack(t, l, tags)
		// Insert a subtree root as last child of the document root, then
		// squeeze pairs into its centre.
		sub, err := l.InsertElementBefore(elems[0].End)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.InsertElementBefore(sub, elems[0].End); err != nil {
			t.Fatal(err)
		}
		squeeze(t, l, o, sub.End, 150)
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
		if l.Height() < 2 {
			t.Fatalf("height = %d; squeeze should have grown the tree", l.Height())
		}
	})
}

func TestLookupCostIsTwoIOs(t *testing.T) {
	store := pager.NewMemStore(512)
	p, _ := NewParams(512, Basic, false)
	l, err := New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	tags := order.TagStreamFromPairs(2000)
	elems, err := l.BulkLoad(tags)
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() < 3 {
		t.Fatalf("height %d too small for a meaningful test", l.Height())
	}
	for _, e := range []order.LID{elems[0].Start, elems[999].Start, elems[1999].End} {
		before := store.Stats()
		if _, err := l.Lookup(e); err != nil {
			t.Fatal(err)
		}
		d := store.Stats().Sub(before)
		if d.Total() != 2 {
			t.Fatalf("lookup cost = %v, want exactly 2 I/Os regardless of height", d)
		}
	}
}

func TestLookupPairCostWBoxO(t *testing.T) {
	store := pager.NewMemStore(512)
	p, _ := NewParams(512, PairOptimized, false)
	l, err := New(store, p)
	if err != nil {
		t.Fatal(err)
	}
	elems, err := l.BulkLoad(order.TagStreamFromPairs(500))
	if err != nil {
		t.Fatal(err)
	}
	e := elems[250]
	before := store.Stats()
	s, en, err := l.LookupPair(e.Start, e.End)
	if err != nil {
		t.Fatal(err)
	}
	d := store.Stats().Sub(before)
	if d.Total() != 2 {
		t.Fatalf("pair lookup cost = %v, want 2 I/Os", d)
	}
	gotS, _ := l.Lookup(e.Start)
	gotE, _ := l.Lookup(e.End)
	if s != gotS || en != gotE {
		t.Fatalf("pair lookup (%d,%d) != lookups (%d,%d)", s, en, gotS, gotE)
	}
}

func TestDeleteAndReclaim(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := order.TagStreamFromPairs(40)
		elems, o := loadAndTrack(t, l, tags)
		victim := elems[7]
		if err := l.Delete(victim.Start); err != nil {
			t.Fatal(err)
		}
		if err := l.Delete(victim.End); err != nil {
			t.Fatal(err)
		}
		if err := o.Delete(victim.Start); err != nil {
			t.Fatal(err)
		}
		if err := o.Delete(victim.End); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Lookup(victim.Start); !errors.Is(err, order.ErrUnknownLID) {
			t.Fatalf("deleted lookup err = %v", err)
		}
		// The next insertion into that leaf must reclaim a tombstone
		// (elems[6].End sits in the same leaf as the tombstones for every
		// variant's leaf capacity).
		dead := l.dead
		ne, err := l.InsertElementBefore(elems[6].End)
		if err != nil {
			t.Fatal(err)
		}
		if err := o.InsertElementBefore(ne, elems[6].End); err != nil {
			t.Fatal(err)
		}
		if l.dead >= dead {
			t.Fatalf("tombstones %d -> %d; insertion should have reclaimed", dead, l.dead)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestGlobalRebuildAfterManyDeletes(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := order.TagStreamFromPairs(300)
		elems, o := loadAndTrack(t, l, tags)
		// Delete two thirds of the elements; the structure must rebuild
		// (dead >= live) and stay valid.
		for i := 1; i < 201; i++ {
			for _, lid := range []order.LID{elems[i].Start, elems[i].End} {
				if err := l.Delete(lid); err != nil {
					t.Fatal(err)
				}
				if err := o.Delete(lid); err != nil {
					t.Fatal(err)
				}
			}
		}
		if l.dead >= l.live {
			t.Fatalf("rebuild never triggered: dead=%d live=%d", l.dead, l.live)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOrdinalLookup(t *testing.T) {
	l := newLabeler(t, 512, Basic, true)
	tags := xmlgen.XMark(300, 2).TagStream()
	_, o := loadAndTrack(t, l, tags)
	if err := o.CheckAgainst(l, true); err != nil {
		t.Fatal(err)
	}
}

func TestOrdinalUnsupported(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.OrdinalLookup(e.Start); !errors.Is(err, order.ErrNoOrdinal) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertBeforeRejectedOnPairVariant(t *testing.T) {
	l := newLabeler(t, 512, PairOptimized, false)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.InsertBefore(e.End); !errors.Is(err, ErrPairVariant) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubtreeInsert(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := order.TagStreamFromPairs(200)
		elems, o := loadAndTrack(t, l, tags)
		sub := xmlgen.XMark(120, 3).TagStream()
		newElems, err := l.InsertSubtreeBefore(elems[50].Start, sub)
		if err != nil {
			t.Fatal(err)
		}
		newLids := make([]order.LID, len(sub))
		for i, tg := range sub {
			if tg.Start {
				newLids[i] = newElems[tg.Elem].Start
			} else {
				newLids[i] = newElems[tg.Elem].End
			}
		}
		if err := o.InsertSliceBefore(newLids, elems[50].Start); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSubtreeInsertLarge(t *testing.T) {
	// Forces the whole-tree rebuild path: the subtree outweighs every
	// ancestor's remaining capacity.
	allVariants(t, func(t *testing.T, l *Labeler) {
		tags := order.TagStreamFromPairs(100)
		elems, o := loadAndTrack(t, l, tags)
		sub := xmlgen.TwoLevel(3000).TagStream()
		newElems, err := l.InsertSubtreeBefore(elems[50].Start, sub)
		if err != nil {
			t.Fatal(err)
		}
		newLids := make([]order.LID, len(sub))
		for i, tg := range sub {
			if tg.Start {
				newLids[i] = newElems[tg.Elem].Start
			} else {
				newLids[i] = newElems[tg.Elem].End
			}
		}
		if err := o.InsertSliceBefore(newLids, elems[50].Start); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSubtreeDelete(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		tree := xmlgen.XMark(500, 4)
		tags := tree.TagStream()
		elems, o := loadAndTrack(t, l, tags)
		// Element 1 is "regions", a large subtree.
		if err := l.DeleteSubtree(elems[1].Start, elems[1].End); err != nil {
			t.Fatal(err)
		}
		if err := o.DeleteRange(elems[1].Start, elems[1].End); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := o.CheckAgainst(l, l.p.Ordinal); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSubtreeDeleteEverythingButRoot(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	tags := order.TagStreamFromPairs(500)
	elems, o := loadAndTrack(t, l, tags)
	// Delete elements 1..499 one subtree at a time (they are siblings).
	for i := 1; i < 500; i++ {
		if err := l.DeleteSubtree(elems[i].Start, elems[i].End); err != nil {
			t.Fatalf("subtree %d: %v", i, err)
		}
		if err := o.DeleteRange(elems[i].Start, elems[i].End); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckAgainst(l, false); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 2 {
		t.Fatalf("count = %d, want 2", l.Count())
	}
}

func TestLabelBitsBound(t *testing.T) {
	// Theorem 4.4: a W-BOX label needs no more than
	// log N + 1 + ceil(log(2+4/a)·log_a(N/k) + log b) bits.
	l := newLabeler(t, 512, Basic, false)
	tags := order.TagStreamFromPairs(5000)
	elems, _ := loadAndTrack(t, l, tags)
	// Stress with concentrated inserts to grow the range.
	right := elems[0].End
	for i := 0; i < 2000; i++ {
		e, err := l.InsertElementBefore(right)
		if err != nil {
			t.Fatal(err)
		}
		right = e.Start
	}
	n := float64(l.Count())
	a, k, b := float64(l.p.A), float64(l.p.K), float64(l.p.B)
	bound := log2(n) + 1 + ceilF(log2(2+4/a)*(log2(n/k)/log2(a))+log2(b))
	if got := float64(l.LabelBits()); got > bound {
		t.Fatalf("label bits %v exceed Theorem 4.4 bound %v", got, bound)
	}
}

func log2(x float64) float64 {
	// crude but dependency-free log2 via math is fine; tests only
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	// linear interpolation for the fractional part
	return l + (x - 1)
}

func ceilF(x float64) float64 {
	i := float64(int64(x))
	if x > i {
		return i + 1
	}
	return i
}

// Property: random element insert/delete sequences keep the labeling valid
// and all invariants intact, across variants.
func TestQuickRandomOps(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		variant := Basic
		if sel%2 == 1 {
			variant = PairOptimized
		}
		ordinal := (sel/2)%2 == 1
		store := pager.NewMemStore(512)
		p, err := NewParams(512, variant, ordinal)
		if err != nil {
			return false
		}
		l, err := New(store, p)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		o := order.NewOracle()
		e, err := l.InsertFirstElement()
		if err != nil {
			return false
		}
		if err := o.InsertFirstElement(e); err != nil {
			return false
		}
		live := []order.ElemLIDs{e}
		for i := 0; i < 150; i++ {
			switch {
			case len(live) > 1 && rng.Intn(4) == 0:
				idx := 1 + rng.Intn(len(live)-1)
				v := live[idx]
				if err := l.Delete(v.Start); err != nil {
					return false
				}
				if err := l.Delete(v.End); err != nil {
					return false
				}
				if o.Delete(v.Start) != nil || o.Delete(v.End) != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			default:
				target := live[rng.Intn(len(live))]
				anchor := target.Start
				if rng.Intn(2) == 0 {
					anchor = target.End
				}
				ne, err := l.InsertElementBefore(anchor)
				if err != nil {
					return false
				}
				if err := o.InsertElementBefore(ne, anchor); err != nil {
					return false
				}
				live = append(live, ne)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		if err := o.CheckAgainst(l, ordinal); err != nil {
			t.Logf("oracle: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
