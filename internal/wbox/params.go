// Package wbox implements W-BOX, the weight-balanced B-tree for ordering
// XML of Section 4 of the paper, together with its W-BOX-O variant
// (optimized for retrieving start/end label pairs) and optional ordinal
// labeling support.
//
// Labels are stored implicitly: every node carries the low end of its
// assigned range, each child entry carries the subrange slot assigned to
// the child, and within a leaf the i-th record's label is lo+i (the
// "labeling within each leaf is ordinal" requirement of Section 6, which
// costs nothing and makes update logging effective). Relabeling a subtree
// therefore rewrites one word per node, but still touches every block below
// the subtree root, so the I/O costs are exactly the paper's.
package wbox

import (
	"fmt"
)

// Variant selects the leaf record format.
type Variant int

const (
	// Basic is the plain W-BOX of Section 4.
	Basic Variant = iota
	// PairOptimized is W-BOX-O: each start record additionally stores a
	// pointer to the block holding its end record and a copy of the end
	// label, so that both labels of an element are retrieved with a
	// single W-BOX I/O.
	PairOptimized
)

const (
	nodeHeaderSize = 16 // type(1) count(2) level(2) pad(3) lo(8)
	intEntrySize   = 26 // child(8) weight(8) size(8) slot(2)

	leafRecSizeBasic = 9  // lid(8) flags(1)
	leafRecSizePair  = 33 // lid(8) flags(1) partnerBlk(8) partnerLID(8) endCopy(8)
)

// Params holds the derived structural parameters of a W-BOX.
//
// Following Section 4: b is the maximum internal fan-out dictated by the
// block size; the branching parameter a is the largest value satisfying
// 2a+3+ceil(8/(a-2)) <= b; the leaf parameter k is chosen so that 2k-1 is
// the number of leaf records a block can hold. A node at level i (leaves at
// level 0) must have weight strictly less than 2·a^i·k, and (unless it is
// the root) strictly greater than a^i·k − 2·a^{i−1}·k.
type Params struct {
	BlockSize int
	Variant   Variant
	Ordinal   bool // maintain size fields for ordinal labeling

	B         int    // max internal fan-out (the paper's b)
	A         int    // branching parameter (the paper's a)
	K         int    // leaf parameter (the paper's k)
	LeafCap   int    // 2K-1, max records per leaf
	LeafRange uint64 // length of the range assigned to a leaf (= LeafCap)

	recSize int
}

// NewParams derives W-BOX parameters from the block size and variant.
func NewParams(blockSize int, variant Variant, ordinal bool) (Params, error) {
	recSize := leafRecSizeBasic
	if variant == PairOptimized {
		recSize = leafRecSizePair
	}
	b := (blockSize - nodeHeaderSize) / intEntrySize
	leafCap := (blockSize - nodeHeaderSize) / recSize
	if leafCap%2 == 0 {
		leafCap-- // LeafCap = 2K-1 must be odd
	}
	k := (leafCap + 1) / 2
	a := 0
	for cand := 3; 2*cand+3+ceilDiv(8, cand-2) <= b; cand++ {
		a = cand
	}
	if a < 3 || k < 4 {
		return Params{}, fmt.Errorf("wbox: block size %d too small (b=%d, k=%d)", blockSize, b, k)
	}
	return Params{
		BlockSize: blockSize,
		Variant:   variant,
		Ordinal:   ordinal,
		B:         b,
		A:         a,
		K:         k,
		LeafCap:   leafCap,
		LeafRange: uint64(leafCap),
		recSize:   recSize,
	}, nil
}

func ceilDiv(x, y int) int { return (x + y - 1) / y }

// weightLimit returns 2·a^level·k, the exclusive upper weight bound for a
// node at the given level. The second result is false on overflow.
func (p Params) weightLimit(level int) (uint64, bool) {
	w := uint64(2) * uint64(p.K)
	for i := 0; i < level; i++ {
		next := w * uint64(p.A)
		if next/uint64(p.A) != w {
			return 0, false
		}
		w = next
	}
	return w, true
}

// weightMin returns the exclusive lower weight bound a^level·k −
// 2·a^{level−1}·k for a non-root node at the given level (0 for leaves of
// a single-leaf tree).
func (p Params) weightMin(level int) uint64 {
	if level == 0 {
		// a^0·k − 2·a^{−1}·k = k − 2k/a.
		return uint64(p.K) - 2*uint64(p.K)/uint64(p.A)
	}
	ai1 := uint64(1) // a^{level-1}
	for i := 0; i < level-1; i++ {
		ai1 *= uint64(p.A)
	}
	return ai1*uint64(p.A)*uint64(p.K) - 2*ai1*uint64(p.K)
}

// rangeLen returns the length of the range assigned to a node at the given
// level: LeafRange · b^level. The second result is false on overflow.
func (p Params) rangeLen(level int) (uint64, bool) {
	r := p.LeafRange
	for i := 0; i < level; i++ {
		next := r * uint64(p.B)
		if next/uint64(p.B) != r {
			return 0, false
		}
		r = next
	}
	return r, true
}
