package wbox

import (
	"testing"

	"boxes/internal/order"
)

// TestLookupPairAfterPartnerDeleted verifies that W-BOX-O degrades
// gracefully when one label of an element is deleted: the surviving
// record's linkage is cleared and pair lookups fall back to two lookups
// for it.
func TestLookupPairAfterPartnerDeleted(t *testing.T) {
	l := newLabeler(t, 512, PairOptimized, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(30))
	if err != nil {
		t.Fatal(err)
	}
	victim := elems[10]
	if err := l.Delete(victim.End); err != nil {
		t.Fatal(err)
	}
	// Looking up the start label alone still works.
	if _, err := l.Lookup(victim.Start); err != nil {
		t.Fatal(err)
	}
	// The pair lookup of the half-deleted element must error on the dead
	// end LID rather than returning a stale cached copy.
	if _, _, err := l.LookupPair(victim.Start, victim.End); err == nil {
		t.Fatal("pair lookup of half-deleted element returned stale data")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Other elements' pairs are unaffected.
	s, e, err := l.LookupPair(elems[11].Start, elems[11].End)
	if err != nil {
		t.Fatal(err)
	}
	if s >= e {
		t.Fatalf("pair (%d, %d) out of order", s, e)
	}
}

// TestLookupPairConsistencyUnderChurn hammers W-BOX-O with concentrated
// churn and verifies after every operation batch that the cached end copy
// served by LookupPair matches the true end label.
func TestLookupPairConsistencyUnderChurn(t *testing.T) {
	l := newLabeler(t, 512, PairOptimized, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(60))
	if err != nil {
		t.Fatal(err)
	}
	live := append([]order.ElemLIDs(nil), elems...)
	anchor := elems[30].Start
	for round := 0; round < 40; round++ {
		for i := 0; i < 5; i++ {
			ne, err := l.InsertElementBefore(anchor)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, ne)
			anchor = ne.Start
		}
		for _, e := range live {
			s, en, err := l.LookupPair(e.Start, e.End)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := l.Lookup(e.Start)
			if err != nil {
				t.Fatal(err)
			}
			de, err := l.Lookup(e.End)
			if err != nil {
				t.Fatal(err)
			}
			if s != ds || en != de {
				t.Fatalf("round %d: pair (%d,%d) != direct (%d,%d)", round, s, en, ds, de)
			}
		}
	}
}
