package wbox

import (
	"boxes/internal/obs"
	"boxes/internal/pager"
)

// CollectGauges implements obs.Collector: it walks the whole tree and
// reports the structural health of the W-BOX — height, per-level node
// counts and occupancy distributions, the minimum weight-balance slack per
// level (distance to the Section 4 split and merge thresholds), label-space
// utilization, and the LIDF's fragmentation. The walk reads every block,
// like CheckInvariants; run it on a quiescent structure (or behind the
// caller's lock) and expect O(N/B) I/Os.
func (l *Labeler) CollectGauges() []obs.GaugeValue {
	gs := []obs.GaugeValue{
		obs.G("boxes_tree_height", "Tree height in levels (0 = empty).", float64(l.height)),
		obs.G("boxes_labels_live", "Live labels in the structure.", float64(l.live)),
		obs.G("boxes_labels_dead", "Tombstoned labels awaiting global rebuild.", float64(l.dead)),
	}
	if l.height > 0 {
		if r, ok := l.p.rangeLen(l.height - 1); ok && r > 0 {
			gs = append(gs, obs.G("boxes_label_space_utilization",
				"Fraction of the root's label range occupied by records (live and dead).",
				float64(l.live+l.dead)/float64(r)))
		}
	}
	gs = append(gs, l.file.CollectGauges()...)
	if l.root == pager.NilBlock {
		return gs
	}

	t := obs.NewTreeStats(l.height)
	func() {
		var err error
		l.store.BeginOp()
		defer l.store.EndOpInto(&err)
		root, rerr := l.readNode(l.root)
		if rerr != nil {
			t.AddError()
			return
		}
		l.healthNode(root, true, t)
	}()
	return append(gs, t.Gauges()...)
}

// healthNode records one node's statistics and recurses into its children.
func (l *Labeler) healthNode(n *node, isRoot bool, t *obs.TreeStats) {
	lv := int(n.level)
	var occ float64
	if n.isLeaf() {
		occ = float64(len(n.recs)) / float64(l.p.LeafCap)
	} else {
		occ = float64(len(n.ents)) / float64(l.p.B)
	}
	// Slack to the nearest weight threshold: a node splits when its weight
	// reaches weightLimit and (unless it is the root) violates balance when
	// it sinks to weightMin, so the min of both distances is how close the
	// node is to triggering structural work.
	weight := n.weight()
	slack, haveSlack := uint64(0), false
	if limit, ok := l.p.weightLimit(lv); ok {
		if weight < limit {
			slack = limit - weight
		}
		haveSlack = true
		if !isRoot {
			if m := l.p.weightMin(lv); weight > m {
				if d := weight - m; d < slack {
					slack = d
				}
			} else {
				slack = 0
			}
		}
	}
	t.Observe(lv, occ, slack, haveSlack)
	if n.isLeaf() {
		return
	}
	for i := range n.ents {
		child, err := l.readNode(n.ents[i].child)
		if err != nil {
			t.AddError()
			continue
		}
		l.healthNode(child, false, t)
	}
}

var _ obs.Collector = (*Labeler)(nil)

// WalkBlocks calls visit for every store block the structure occupies:
// the LIDF's extents and every tree node reachable from the root. fsck
// uses it to cross-check on-disk reachability against the free list.
func (l *Labeler) WalkBlocks(visit func(pager.BlockID) error) error {
	if err := l.file.WalkBlocks(visit); err != nil {
		return err
	}
	if l.root == pager.NilBlock {
		return nil
	}
	return l.walkNodeBlocks(l.root, visit)
}

func (l *Labeler) walkNodeBlocks(blk pager.BlockID, visit func(pager.BlockID) error) error {
	if err := visit(blk); err != nil {
		return err
	}
	n, err := l.readNode(blk)
	if err != nil {
		return err
	}
	if n.isLeaf() {
		return nil
	}
	for i := range n.ents {
		if err := l.walkNodeBlocks(n.ents[i].child, visit); err != nil {
			return err
		}
	}
	return nil
}
