package wbox

import (
	"encoding/binary"
	"fmt"

	"boxes/internal/order"
	"boxes/internal/pager"
)

const (
	nodeTypeLeaf     = 1
	nodeTypeInternal = 2

	flagDeleted = 1 << 0
	flagIsStart = 1 << 1
)

// record is one leaf entry: the label's LID plus, in the PairOptimized
// variant, the partner linkage and (for start records) the cached end
// label. The record's label value is implicit: leaf.lo + record index.
type record struct {
	lid     order.LID
	deleted bool
	isStart bool // PairOptimized only

	partnerBlk pager.BlockID // PairOptimized: block holding the partner record
	partnerLID order.LID     // PairOptimized: LID of the partner record
	endCopy    uint64        // PairOptimized, start records: current end label
}

// entry is one child entry of an internal node.
type entry struct {
	child  pager.BlockID
	weight uint64 // leaf records (including tombstones) below child
	size   uint64 // live leaf records below child (ordinal support)
	slot   uint16 // subrange index within the parent's range
}

// node is the in-memory image of one W-BOX block.
type node struct {
	blk   pager.BlockID
	level uint16 // 0 = leaf
	lo    uint64 // low end of the node's assigned range

	recs []record // leaf
	ents []entry  // internal
}

func (n *node) isLeaf() bool { return n.level == 0 }

// weight computes the node's weight from its contents: record count for a
// leaf, sum of entry weights for an internal node.
func (n *node) weight() uint64 {
	if n.isLeaf() {
		return uint64(len(n.recs))
	}
	var w uint64
	for i := range n.ents {
		w += n.ents[i].weight
	}
	return w
}

// size computes the number of live records below the node.
func (n *node) size() uint64 {
	if n.isLeaf() {
		var s uint64
		for i := range n.recs {
			if !n.recs[i].deleted {
				s++
			}
		}
		return s
	}
	var s uint64
	for i := range n.ents {
		s += n.ents[i].size
	}
	return s
}

// findRec returns the index of the record with the given LID, or -1.
func (n *node) findRec(lid order.LID) int {
	for i := range n.recs {
		if n.recs[i].lid == lid {
			return i
		}
	}
	return -1
}

// findTombstone returns the index of a deleted record, or -1.
func (n *node) findTombstone() int {
	for i := range n.recs {
		if n.recs[i].deleted {
			return i
		}
	}
	return -1
}

// childIndexByLabel returns the index of the entry whose assigned subrange
// contains the given label. childLen is the subrange length at this node.
func (n *node) childIndexByLabel(label uint64, childLen uint64) int {
	if label < n.lo {
		return -1
	}
	slot := (label - n.lo) / childLen
	for i := range n.ents {
		if uint64(n.ents[i].slot) == slot {
			return i
		}
	}
	return -1
}

func (l *Labeler) readNode(blk pager.BlockID) (*node, error) {
	buf, err := l.store.Read(blk)
	if err != nil {
		return nil, err
	}
	return l.decodeNode(blk, buf)
}

func (l *Labeler) decodeNode(blk pager.BlockID, buf []byte) (*node, error) {
	typ := buf[0]
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	level := binary.LittleEndian.Uint16(buf[3:5])
	lo := binary.LittleEndian.Uint64(buf[8:16])
	n := &node{blk: blk, level: level, lo: lo}
	switch typ {
	case nodeTypeLeaf:
		if level != 0 {
			return nil, fmt.Errorf("wbox: leaf block %d at level %d", blk, level)
		}
		if count > l.p.LeafCap {
			return nil, fmt.Errorf("wbox: leaf block %d holds %d records, cap %d", blk, count, l.p.LeafCap)
		}
		n.recs = make([]record, count)
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			r := &n.recs[i]
			r.lid = order.LID(binary.LittleEndian.Uint64(buf[off : off+8]))
			flags := buf[off+8]
			r.deleted = flags&flagDeleted != 0
			r.isStart = flags&flagIsStart != 0
			if l.p.Variant == PairOptimized {
				r.partnerBlk = pager.BlockID(binary.LittleEndian.Uint64(buf[off+9 : off+17]))
				r.partnerLID = order.LID(binary.LittleEndian.Uint64(buf[off+17 : off+25]))
				r.endCopy = binary.LittleEndian.Uint64(buf[off+25 : off+33])
			}
			off += l.p.recSize
		}
	case nodeTypeInternal:
		if level == 0 {
			return nil, fmt.Errorf("wbox: internal block %d at level 0", blk)
		}
		if count > l.p.B {
			return nil, fmt.Errorf("wbox: internal block %d holds %d entries, fan-out %d", blk, count, l.p.B)
		}
		n.ents = make([]entry, count)
		off := nodeHeaderSize
		for i := 0; i < count; i++ {
			e := &n.ents[i]
			e.child = pager.BlockID(binary.LittleEndian.Uint64(buf[off : off+8]))
			e.weight = binary.LittleEndian.Uint64(buf[off+8 : off+16])
			e.size = binary.LittleEndian.Uint64(buf[off+16 : off+24])
			e.slot = binary.LittleEndian.Uint16(buf[off+24 : off+26])
			off += intEntrySize
		}
	default:
		return nil, fmt.Errorf("wbox: block %d has unknown node type %d", blk, typ)
	}
	return n, nil
}

func (l *Labeler) writeNode(n *node) error {
	buf := make([]byte, l.p.BlockSize)
	if n.isLeaf() {
		buf[0] = nodeTypeLeaf
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.recs)))
	} else {
		buf[0] = nodeTypeInternal
		binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.ents)))
	}
	binary.LittleEndian.PutUint16(buf[3:5], n.level)
	binary.LittleEndian.PutUint64(buf[8:16], n.lo)
	off := nodeHeaderSize
	if n.isLeaf() {
		if len(n.recs) > l.p.LeafCap {
			return fmt.Errorf("wbox: leaf %d overflow: %d records", n.blk, len(n.recs))
		}
		for i := range n.recs {
			r := &n.recs[i]
			binary.LittleEndian.PutUint64(buf[off:off+8], uint64(r.lid))
			var flags byte
			if r.deleted {
				flags |= flagDeleted
			}
			if r.isStart {
				flags |= flagIsStart
			}
			buf[off+8] = flags
			if l.p.Variant == PairOptimized {
				binary.LittleEndian.PutUint64(buf[off+9:off+17], uint64(r.partnerBlk))
				binary.LittleEndian.PutUint64(buf[off+17:off+25], uint64(r.partnerLID))
				binary.LittleEndian.PutUint64(buf[off+25:off+33], r.endCopy)
			}
			off += l.p.recSize
		}
	} else {
		if len(n.ents) > l.p.B {
			return fmt.Errorf("wbox: internal %d overflow: %d entries", n.blk, len(n.ents))
		}
		for i := range n.ents {
			e := &n.ents[i]
			binary.LittleEndian.PutUint64(buf[off:off+8], uint64(e.child))
			binary.LittleEndian.PutUint64(buf[off+8:off+16], e.weight)
			binary.LittleEndian.PutUint64(buf[off+16:off+24], e.size)
			binary.LittleEndian.PutUint16(buf[off+24:off+26], e.slot)
			off += intEntrySize
		}
	}
	return l.store.Write(n.blk, buf)
}

func (l *Labeler) allocNode(level uint16, lo uint64) (*node, error) {
	blk, err := l.store.Allocate()
	if err != nil {
		return nil, err
	}
	return &node{blk: blk, level: level, lo: lo}, nil
}
