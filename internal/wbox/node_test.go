package wbox

import (
	"reflect"
	"testing"
	"testing/quick"

	"boxes/internal/order"
	"boxes/internal/pager"
)

// roundTrip writes a node and decodes it back through the block layer.
func roundTrip(t *testing.T, l *Labeler, n *node) *node {
	t.Helper()
	if err := l.writeNode(n); err != nil {
		t.Fatal(err)
	}
	out, err := l.readNode(n.blk)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLeafSerializationRoundTrip(t *testing.T) {
	for _, variant := range []Variant{Basic, PairOptimized} {
		l := newLabeler(t, 512, variant, true)
		n, err := l.allocNode(0, 12345)
		if err != nil {
			t.Fatal(err)
		}
		n.recs = []record{
			{lid: 7, isStart: true, partnerBlk: 9, partnerLID: 8, endCopy: 4242},
			{lid: 8, partnerBlk: 9, partnerLID: 7},
			{deleted: true}, // tombstone: lid zeroed
			{lid: 11},
		}
		got := roundTrip(t, l, n)
		if got.lo != n.lo || got.level != 0 {
			t.Fatalf("header: lo=%d level=%d", got.lo, got.level)
		}
		if len(got.recs) != len(n.recs) {
			t.Fatalf("recs = %d", len(got.recs))
		}
		for i := range n.recs {
			want := n.recs[i]
			if variant == Basic {
				// Partner fields are not stored in the basic format.
				want.partnerBlk, want.partnerLID, want.endCopy = 0, 0, 0
			}
			if !reflect.DeepEqual(got.recs[i], want) {
				t.Fatalf("variant %d rec %d = %+v, want %+v", variant, i, got.recs[i], want)
			}
		}
	}
}

func TestInternalSerializationRoundTrip(t *testing.T) {
	l := newLabeler(t, 512, Basic, true)
	n, err := l.allocNode(3, 999)
	if err != nil {
		t.Fatal(err)
	}
	n.ents = []entry{
		{child: 4, weight: 100, size: 90, slot: 0},
		{child: 5, weight: 200, size: 180, slot: 7},
		{child: 6, weight: 50, size: 50, slot: 17},
	}
	got := roundTrip(t, l, n)
	if got.level != 3 || got.lo != 999 {
		t.Fatalf("header: level=%d lo=%d", got.level, got.lo)
	}
	if !reflect.DeepEqual(got.ents, n.ents) {
		t.Fatalf("ents = %+v", got.ents)
	}
}

func TestWriteNodeRejectsOverflow(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	n, _ := l.allocNode(0, 0)
	n.recs = make([]record, l.p.LeafCap+1)
	if err := l.writeNode(n); err == nil {
		t.Fatal("overflowing leaf accepted")
	}
	m, _ := l.allocNode(1, 0)
	m.ents = make([]entry, l.p.B+1)
	if err := l.writeNode(m); err == nil {
		t.Fatal("overflowing internal node accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	blk, err := l.store.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// Freshly allocated zeroed block: type byte 0 is invalid.
	if err := l.store.Write(blk, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.readNode(blk); err == nil {
		t.Fatal("decoded a zeroed block")
	}
}

// Property: arbitrary leaf contents survive the serialization round trip.
func TestQuickLeafRoundTrip(t *testing.T) {
	l := newLabeler(t, 512, PairOptimized, false)
	f := func(lids []uint64, flags []bool) bool {
		if len(lids) > l.p.LeafCap {
			lids = lids[:l.p.LeafCap]
		}
		n, err := l.allocNode(0, 77)
		if err != nil {
			return false
		}
		for i, v := range lids {
			r := record{lid: order.LID(v)}
			if i < len(flags) && flags[i] {
				r.isStart = true
				r.partnerBlk = pager.BlockID(v + 1)
				r.partnerLID = order.LID(v + 2)
				r.endCopy = v + 3
			}
			n.recs = append(n.recs, r)
		}
		if err := l.writeNode(n); err != nil {
			return false
		}
		got, err := l.readNode(n.blk)
		if err != nil {
			return false
		}
		if len(n.recs) == 0 {
			return len(got.recs) == 0
		}
		return reflect.DeepEqual(got.recs, n.recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
