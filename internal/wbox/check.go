package wbox

import (
	"fmt"

	"boxes/internal/pager"
)

// CheckInvariants implements order.Labeler: it validates every structural
// promise of Section 4 — weight constraints at every node, range/slot
// consistency, LIDF pointer correctness, and (PairOptimized) exact partner
// linkage. It reads the whole structure and is intended for tests.
func (l *Labeler) CheckInvariants() (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	if l.root == pager.NilBlock {
		if l.live != 0 || l.dead != 0 {
			return fmt.Errorf("wbox: empty tree with live=%d dead=%d", l.live, l.dead)
		}
		if l.file.Count() != 0 {
			return fmt.Errorf("wbox: empty tree but LIDF holds %d records", l.file.Count())
		}
		return nil
	}
	root, err := l.readNode(l.root)
	if err != nil {
		return err
	}
	if int(root.level) != l.height-1 {
		return fmt.Errorf("wbox: root at level %d, height %d", root.level, l.height)
	}
	if !root.isLeaf() && len(root.ents) < 2 {
		return fmt.Errorf("wbox: internal root with %d children", len(root.ents))
	}
	var live, dead uint64
	if err := l.checkNode(root, true, &live, &dead); err != nil {
		return err
	}
	if live != l.live {
		return fmt.Errorf("wbox: counted %d live records, tracking %d", live, l.live)
	}
	if dead != l.dead {
		return fmt.Errorf("wbox: counted %d tombstones, tracking %d", dead, l.dead)
	}
	if l.file.Count() != l.live {
		return fmt.Errorf("wbox: LIDF holds %d records, live count %d", l.file.Count(), l.live)
	}
	return nil
}

func (l *Labeler) checkNode(n *node, isRoot bool, live, dead *uint64) error {
	limit, ok := l.p.weightLimit(int(n.level))
	if !ok {
		return fmt.Errorf("wbox: node %d level %d beyond label width", n.blk, n.level)
	}
	w := n.weight()
	if w >= limit {
		return fmt.Errorf("wbox: node %d weight %d >= limit %d (level %d)", n.blk, w, limit, n.level)
	}
	if !isRoot && w <= l.p.weightMin(int(n.level)) {
		return fmt.Errorf("wbox: node %d weight %d <= min %d (level %d)", n.blk, w, l.p.weightMin(int(n.level)), n.level)
	}

	if n.isLeaf() {
		if len(n.recs) > l.p.LeafCap {
			return fmt.Errorf("wbox: leaf %d holds %d records, cap %d", n.blk, len(n.recs), l.p.LeafCap)
		}
		for i := range n.recs {
			r := &n.recs[i]
			if r.deleted {
				*dead++
				continue
			}
			*live++
			got, err := l.file.GetU64(r.lid)
			if err != nil {
				return fmt.Errorf("wbox: leaf %d record %d (lid %d): LIDF: %w", n.blk, i, r.lid, err)
			}
			if pager.BlockID(got) != n.blk {
				return fmt.Errorf("wbox: lid %d LIDF points at block %d, record lives in %d", r.lid, got, n.blk)
			}
			if l.p.Variant == PairOptimized {
				if err := l.checkPartner(n, i); err != nil {
					return err
				}
			}
		}
		return nil
	}

	childLen, ok := l.p.rangeLen(int(n.level) - 1)
	if !ok {
		return fmt.Errorf("wbox: node %d child range overflow", n.blk)
	}
	prevSlot := -1
	for i := range n.ents {
		e := n.ents[i]
		if int(e.slot) <= prevSlot {
			return fmt.Errorf("wbox: node %d slots not increasing at entry %d", n.blk, i)
		}
		if int(e.slot) >= l.p.B {
			return fmt.Errorf("wbox: node %d entry %d slot %d >= b=%d", n.blk, i, e.slot, l.p.B)
		}
		prevSlot = int(e.slot)
		child, err := l.readNode(e.child)
		if err != nil {
			return err
		}
		if int(child.level) != int(n.level)-1 {
			return fmt.Errorf("wbox: node %d (level %d) has child %d at level %d", n.blk, n.level, child.blk, child.level)
		}
		wantLo := n.lo + uint64(e.slot)*childLen
		if child.lo != wantLo {
			return fmt.Errorf("wbox: child %d lo = %d, want %d (parent %d slot %d)", child.blk, child.lo, wantLo, n.blk, e.slot)
		}
		if cw := child.weight(); cw != e.weight {
			return fmt.Errorf("wbox: node %d entry %d weight %d, child actual %d", n.blk, i, e.weight, cw)
		}
		if l.p.Ordinal {
			if cs := child.size(); cs != e.size {
				return fmt.Errorf("wbox: node %d entry %d size %d, child actual %d", n.blk, i, e.size, cs)
			}
		}
		if err := l.checkNode(child, false, live, dead); err != nil {
			return err
		}
	}
	return nil
}

// checkPartner validates the PairOptimized linkage of n.recs[i].
func (l *Labeler) checkPartner(n *node, i int) error {
	r := &n.recs[i]
	if r.partnerBlk == pager.NilBlock {
		return nil // element's partner was deleted; linkage cleared
	}
	pn := n
	if r.partnerBlk != n.blk {
		var err error
		pn, err = l.readNode(r.partnerBlk)
		if err != nil {
			return fmt.Errorf("wbox: lid %d partner block %d: %w", r.lid, r.partnerBlk, err)
		}
	}
	pi := pn.findRec(r.partnerLID)
	if pi < 0 {
		return fmt.Errorf("wbox: lid %d partner lid %d missing from block %d", r.lid, r.partnerLID, r.partnerBlk)
	}
	p := &pn.recs[pi]
	if p.partnerLID != r.lid || p.partnerBlk != n.blk {
		return fmt.Errorf("wbox: lid %d partner linkage not symmetric (partner %d points at lid %d block %d)", r.lid, r.partnerLID, p.partnerLID, p.partnerBlk)
	}
	if r.isStart == p.isStart {
		return fmt.Errorf("wbox: lid %d and partner %d are both %v records", r.lid, r.partnerLID, r.isStart)
	}
	if r.isStart {
		endLabel := pn.lo + uint64(pi)
		if r.endCopy != endLabel {
			return fmt.Errorf("wbox: start lid %d cached end label %d, actual %d", r.lid, r.endCopy, endLabel)
		}
	}
	return nil
}
