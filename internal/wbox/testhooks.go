package wbox

// HookStrandEmptyTree re-introduces, when set, the PR-4
// tombstone-stranded-empty-tree bug for harness validation: the dead >=
// live global-rebuild trigger skips the live == 0 case, so deleting the
// last live record leaves a tree of pure tombstones instead of rebuilding
// to the genuinely empty tree — the exact defect the differential fuzzer
// originally found (see delete_empty_test.go). Default off; only the
// simulator's find-the-known-bug acceptance test flips it, to prove the
// harness detects, minimizes, and replays the failure from its seed.
// Never set it outside tests.
var HookStrandEmptyTree = false

// rebuildTriggered applies the dead >= live global-rebuild condition,
// honoring the test hook that suppresses the live == 0 case.
func rebuildTriggered(dead, live uint64) bool {
	if dead < live {
		return false
	}
	if HookStrandEmptyTree && live == 0 {
		return false
	}
	return true
}
