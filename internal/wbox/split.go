package wbox

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// endFix is a deferred update of a start record's cached end-label copy
// (PairOptimized variant): the start record identified by startLID, living
// in block blk, must have its endCopy set to newEnd.
type endFix struct {
	blk      pager.BlockID
	startLID order.LID
	newEnd   uint64
}

// insertOne inserts rec (whose LID is already allocated and equals rec.lid)
// immediately before lidOld. It maintains weights, sizes, and the weight
// constraints via splits, and performs all PairOptimized fix-ups except the
// new record's own partner linkage (done by the caller once both records of
// an element are in place).
func (l *Labeler) insertOne(newLID, lidOld order.LID, rec record) error {
	leaf, j, err := l.leafOf(lidOld)
	if err != nil {
		return err
	}

	// Tombstone reclamation (Section 4, deletion handling): if the leaf
	// holds a "deleted" record, reuse its slot without touching weights,
	// so no split can occur.
	if t := leaf.findTombstone(); t >= 0 {
		return l.insertReclaim(newLID, rec, leaf, j, t)
	}

	// Phase 1: split every node that the insertion would push to its
	// weight limit, topmost first. Each split may relabel records and
	// move them between blocks, so the leaf position is re-derived from
	// the LIDF after every split.
	for {
		leaf, j, err = l.leafOf(lidOld)
		if err != nil {
			return err
		}
		path, taken, err := l.descend(leaf.lo + uint64(j))
		if err != nil {
			return err
		}
		if path[len(path)-1].blk != leaf.blk {
			return fmt.Errorf("wbox: descent for lid %d reached block %d, LIDF says %d", lidOld, path[len(path)-1].blk, leaf.blk)
		}
		vIdx := -1
		for i, n := range path {
			limit, ok := l.p.weightLimit(int(n.level))
			if !ok {
				return order.ErrLabelOverflow
			}
			if n.weight()+1 >= limit {
				vIdx = i
				break
			}
		}
		if vIdx < 0 {
			break
		}
		if err := l.splitNode(path, taken, vIdx); err != nil {
			return err
		}
	}

	// Phase 2: physical insertion into the leaf.
	leaf, j, err = l.leafOf(lidOld)
	if err != nil {
		return err
	}
	oldLast := leaf.lo + uint64(len(leaf.recs)) - 1
	leaf.recs = append(leaf.recs, record{})
	copy(leaf.recs[j+1:], leaf.recs[j:])
	leaf.recs[j] = rec
	if err := l.writeNode(leaf); err != nil {
		return err
	}
	if err := l.file.SetU64(newLID, uint64(leaf.blk)); err != nil {
		return err
	}
	l.logShift(leaf.lo+uint64(j), oldLast, +1)
	l.store.Observer().HeatLabelInsert(leaf.lo + uint64(j))
	if l.p.Variant == PairOptimized {
		// Shifted end records moved up by one label; repair the cached
		// copies held by their start partners. Partners outside this
		// leaf lie on one root path of the element tree, so there are at
		// most D of them (Theorem 4.7).
		var fixes []endFix
		for i := j + 1; i < len(leaf.recs); i++ {
			r := &leaf.recs[i]
			if r.deleted || r.isStart || r.partnerBlk == pager.NilBlock {
				continue
			}
			fixes = append(fixes, endFix{blk: r.partnerBlk, startLID: r.partnerLID, newEnd: leaf.lo + uint64(i)})
		}
		if err := l.applyEndFixes(fixes, leaf); err != nil {
			return err
		}
	}

	// Phase 3: weight and size maintenance along the (post-split) path.
	path, taken, err := l.descend(leaf.lo + uint64(j))
	if err != nil {
		return err
	}
	if l.p.Ordinal && l.ologger != nil {
		// Ordinal effect of this insertion: everything at or after the
		// new record's position moves up by one. Sizes along the path
		// are still pre-increment here.
		l.logOrdinalShift(ordinalAt(path, taken, j), +1)
	}
	for i := range path[:len(path)-1] {
		path[i].ents[taken[i]].weight++
		if l.p.Ordinal {
			path[i].ents[taken[i]].size++
		}
		if err := l.writeNode(path[i]); err != nil {
			return err
		}
	}
	l.live++
	return nil
}

// insertReclaim consumes the tombstone at index t to make room for rec
// immediately before the record currently at index j. No weight changes.
func (l *Labeler) insertReclaim(newLID order.LID, rec record, leaf *node, j, t int) error {
	l.store.Observer().Inc(obs.CtrWBoxReclaims)
	var shiftLo, shiftHi uint64
	var shiftDelta int64
	var insertAt int
	switch {
	case t == j:
		copy(leaf.recs[t:], leaf.recs[t+1:])
		insertAt = j
	case t > j:
		// Records j..t-1 shift right; labels +1.
		shiftLo, shiftHi, shiftDelta = leaf.lo+uint64(j), leaf.lo+uint64(t)-1, +1
		copy(leaf.recs[j+1:t+1], leaf.recs[j:t])
		insertAt = j
	default: // t < j
		// Records t+1..j-1 shift left; labels -1.
		shiftLo, shiftHi, shiftDelta = leaf.lo+uint64(t)+1, leaf.lo+uint64(j)-1, -1
		copy(leaf.recs[t:j-1], leaf.recs[t+1:j])
		insertAt = j - 1
	}
	leaf.recs[insertAt] = rec
	if err := l.writeNode(leaf); err != nil {
		return err
	}
	if err := l.file.SetU64(newLID, uint64(leaf.blk)); err != nil {
		return err
	}
	l.store.Observer().HeatLabelInsert(leaf.lo + uint64(insertAt))
	if shiftDelta != 0 {
		l.logShift(shiftLo, shiftHi, shiftDelta)
	}
	if l.p.Variant == PairOptimized && shiftDelta != 0 {
		// Recompute end-label copies for every end record in the leaf;
		// scanning the in-memory image is free and simpler than tracking
		// exactly which indices moved.
		var fixes []endFix
		for i := range leaf.recs {
			r := &leaf.recs[i]
			if r.deleted || r.isStart || r.partnerBlk == pager.NilBlock {
				continue
			}
			fixes = append(fixes, endFix{blk: r.partnerBlk, startLID: r.partnerLID, newEnd: leaf.lo + uint64(i)})
		}
		if err := l.applyEndFixes(fixes, leaf); err != nil {
			return err
		}
	}
	if l.p.Ordinal {
		// The reclaim did not change weights, but live counts grew.
		idx := leaf.findRec(rec.lid)
		path, taken, err := l.descend(leaf.lo + uint64(idx))
		if err != nil {
			return err
		}
		if l.ologger != nil {
			l.logOrdinalShift(ordinalAt(path, taken, idx), +1)
		}
		for i := range path[:len(path)-1] {
			path[i].ents[taken[i]].size++
			if err := l.writeNode(path[i]); err != nil {
				return err
			}
		}
	}
	l.live++
	l.dead--
	return nil
}

// applyEndFixes sets endCopy on the start records named by fixes. hint, if
// non-nil, is an in-memory leaf image to search first (so that same-leaf
// fixes update the image the caller is about to keep using).
func (l *Labeler) applyEndFixes(fixes []endFix, hint *node) error {
	for _, f := range fixes {
		var n *node
		if hint != nil && f.blk == hint.blk {
			n = hint
		} else {
			var err error
			n, err = l.readNode(f.blk)
			if err != nil {
				return err
			}
		}
		i := n.findRec(f.startLID)
		if i < 0 || !n.recs[i].isStart {
			continue // partner deleted meanwhile
		}
		n.recs[i].endCopy = f.newEnd
		if err := l.writeNode(n); err != nil {
			return err
		}
	}
	return nil
}

// splitNode splits path[vIdx], which is at (or about to exceed) its weight
// limit. path[0] is the root.
func (l *Labeler) splitNode(path []*node, taken []int, vIdx int) error {
	l.store.Observer().Inc(obs.CtrWBoxSplits)
	u := path[vIdx]
	level := int(u.level)

	var p *node
	var eIdx int
	if vIdx == 0 {
		// Splitting the root: a new root is created above it; the new
		// root's range extends u's by a factor of b, with u's range as
		// its first subrange, so u must sit at slot 0.
		if _, ok := l.p.rangeLen(level + 1); !ok {
			return order.ErrLabelOverflow
		}
		nr, err := l.allocNode(uint16(level+1), u.lo)
		if err != nil {
			return err
		}
		nr.ents = []entry{{child: u.blk, weight: u.weight(), size: u.size(), slot: 0}}
		if err := l.writeNode(nr); err != nil {
			return err
		}
		l.root = nr.blk
		l.height++
		p = nr
		eIdx = 0
	} else {
		p = path[vIdx-1]
		eIdx = taken[vIdx-1]
	}
	if p.ents[eIdx].child != u.blk {
		return fmt.Errorf("wbox: split: parent %d entry %d does not point at %d", p.blk, eIdx, u.blk)
	}

	childLen, ok := l.p.rangeLen(level)
	if !ok {
		return order.ErrLabelOverflow
	}
	s := int(p.ents[eIdx].slot)

	// Split point: for a leaf, half the records; for an internal node,
	// the largest m for which the left part's weight stays <= a^level·k.
	var m int
	if u.isLeaf() {
		m = (len(u.recs) + 1) / 2
	} else {
		half := uint64(l.p.K)
		for i := 0; i < level; i++ {
			half *= uint64(l.p.A)
		}
		var w uint64
		m = 0
		for i := range u.ents {
			if w+u.ents[i].weight > half {
				break
			}
			w += u.ents[i].weight
			m = i + 1
		}
		if m == 0 {
			m = 1
		}
		if m == len(u.ents) {
			m = len(u.ents) - 1
		}
	}

	rightFree := s+1 < l.p.B && (eIdx == len(p.ents)-1 || int(p.ents[eIdx+1].slot) > s+1)
	leftFree := s-1 >= 0 && (eIdx == 0 || int(p.ents[eIdx-1].slot) < s-1)

	v, err := l.allocNode(uint16(level), 0)
	if err != nil {
		return err
	}

	switch {
	case rightFree:
		v.lo = p.lo + uint64(s+1)*childLen
		if err := l.moveTail(u, v, m); err != nil {
			return err
		}
		ve := entry{child: v.blk, weight: v.weight(), size: v.size(), slot: uint16(s + 1)}
		p.ents = insertEntry(p.ents, eIdx+1, ve)
	case leftFree:
		v.lo = p.lo + uint64(s-1)*childLen
		if err := l.moveHead(u, v, m); err != nil {
			return err
		}
		ve := entry{child: v.blk, weight: v.weight(), size: v.size(), slot: uint16(s - 1)}
		p.ents = insertEntry(p.ents, eIdx, ve)
		eIdx++ // u's entry moved one to the right
	default:
		// Worst case: both adjacent subranges are taken. Reassign all of
		// parent(u)'s children equally spaced subranges and relabel the
		// entire subtree rooted at parent(u).
		v.lo = 0 // assigned by the relabel below
		if err := l.moveTail(u, v, m); err != nil {
			return err
		}
		ve := entry{child: v.blk, weight: v.weight(), size: v.size(), slot: 0}
		p.ents = insertEntry(p.ents, eIdx+1, ve)
		if len(p.ents) > l.p.B {
			return fmt.Errorf("wbox: parent %d fan-out %d exceeds b=%d after split", p.blk, len(p.ents), l.p.B)
		}
		// relabelSubtree re-reads children from the store, so the split
		// halves must be durable first.
		if err := l.writeNode(u); err != nil {
			return err
		}
		if err := l.writeNode(v); err != nil {
			return err
		}
		l.store.Observer().Inc(obs.CtrWBoxRelabels)
		var fixes []endFix
		if err := l.relabelSubtree(p, p.lo, &fixes); err != nil {
			return err
		}
		if err := l.applyEndFixes(fixes, nil); err != nil {
			return err
		}
		pLen, _ := l.p.rangeLen(level + 1)
		l.logInvalidate(p.lo, p.lo+pLen-1)
		l.refreshEntry(p, eIdx, u)
		return l.writeNode(p)
	}

	// Adjacent-slot placement: only v's subtree needs relabeling (u's
	// entries keep their range; in the left-placement leaf case the kept
	// records shifted within u and moveHead repaired them).
	if !u.isLeaf() {
		l.store.Observer().Inc(obs.CtrWBoxRelabels)
		var fixes []endFix
		if err := l.relabelSubtree(v, v.lo, &fixes); err != nil {
			return err
		}
		if err := l.applyEndFixes(fixes, nil); err != nil {
			return err
		}
	} else {
		if err := l.writeNode(v); err != nil {
			return err
		}
	}
	if err := l.writeNode(u); err != nil {
		return err
	}
	l.refreshEntry(p, eIdx, u)
	pLen, _ := l.p.rangeLen(level + 1)
	l.logInvalidate(p.lo, p.lo+pLen-1)
	return l.writeNode(p)
}

// refreshEntry updates p.ents[eIdx]'s weight and size from u's contents.
func (l *Labeler) refreshEntry(p *node, eIdx int, u *node) {
	p.ents[eIdx].weight = u.weight()
	p.ents[eIdx].size = u.size()
	p.ents[eIdx].child = u.blk
}

func insertEntry(ents []entry, at int, e entry) []entry {
	ents = append(ents, entry{})
	copy(ents[at+1:], ents[at:])
	ents[at] = e
	return ents
}

// moveTail moves u's contents from index m onward into v (v takes the
// right part). For leaves it updates the moved records' LIDF pointers and
// partner linkage.
func (l *Labeler) moveTail(u, v *node, m int) error {
	if u.isLeaf() {
		v.recs = append(v.recs, u.recs[m:]...)
		u.recs = u.recs[:m]
		return l.fixMovedLeafRecords(u, v)
	}
	v.ents = append(v.ents, u.ents[m:]...)
	u.ents = u.ents[:m]
	return nil
}

// moveHead moves u's contents up to index m into v (v takes the left
// part); u keeps the rest. In a leaf the kept records change position (and
// therefore label), so their partners are repaired too.
func (l *Labeler) moveHead(u, v *node, m int) error {
	if u.isLeaf() {
		v.recs = append(v.recs, u.recs[:m]...)
		u.recs = append(u.recs[:0:0], u.recs[m:]...)
		return l.fixMovedLeafRecords(u, v)
	}
	v.ents = append(v.ents, u.ents[:m]...)
	u.ents = append(u.ents[:0:0], u.ents[m:]...)
	return nil
}

// fixMovedLeafRecords repairs LIDF pointers for the records now in v, and
// (PairOptimized) partner pointers and cached end labels for every record
// whose block or label changed in the split of u.
func (l *Labeler) fixMovedLeafRecords(u, v *node) error {
	for _, r := range v.recs {
		if r.deleted {
			continue
		}
		if err := l.file.SetU64(r.lid, uint64(v.blk)); err != nil {
			return err
		}
	}
	if l.p.Variant != PairOptimized {
		return nil
	}
	// Every record in both u and v may have a new (block, label); repair
	// partner linkage in both directions. Partner records inside u or v
	// are patched on the in-memory images; external partners cost one I/O
	// each, O(B) per split as in the paper.
	fix := func(home *node) error {
		for i := range home.recs {
			r := &home.recs[i]
			if r.deleted || r.partnerBlk == pager.NilBlock {
				continue
			}
			newLabel := home.lo + uint64(i)
			var pn *node
			if pi := u.findRec(r.partnerLID); pi >= 0 {
				pn = u
			} else if pi := v.findRec(r.partnerLID); pi >= 0 {
				pn = v
			}
			if pn != nil {
				pi := pn.findRec(r.partnerLID)
				pn.recs[pi].partnerBlk = home.blk
				if !r.isStart {
					pn.recs[pi].endCopy = newLabel
				}
				r.partnerBlk = pn.blk
				continue
			}
			// External partner.
			ext, err := l.readNode(r.partnerBlk)
			if err != nil {
				return err
			}
			pi := ext.findRec(r.partnerLID)
			if pi < 0 {
				continue
			}
			ext.recs[pi].partnerBlk = home.blk
			if !r.isStart {
				ext.recs[pi].endCopy = newLabel
			}
			if err := l.writeNode(ext); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fix(v); err != nil {
		return err
	}
	if err := fix(u); err != nil {
		return err
	}
	if err := l.writeNode(u); err != nil {
		return err
	}
	return l.writeNode(v)
}

// relabelSubtree assigns newLo as n's range base and recursively reassigns
// equally spaced subrange slots to its children, rewriting every node
// below. For PairOptimized leaves it collects the end-label fixes that must
// be applied once the walk completes. This is the relabeling operation
// whose cost O(w(n)/B) the weight-balanced analysis amortizes away.
func (l *Labeler) relabelSubtree(n *node, newLo uint64, fixes *[]endFix) error {
	n.lo = newLo
	if n.isLeaf() {
		if l.p.Variant == PairOptimized {
			for i := range n.recs {
				r := &n.recs[i]
				if r.deleted || r.isStart || r.partnerBlk == pager.NilBlock {
					continue
				}
				*fixes = append(*fixes, endFix{blk: r.partnerBlk, startLID: r.partnerLID, newEnd: newLo + uint64(i)})
			}
		}
		// Charge the records this sweep actually rewrote to the cost
		// ledger — the quantity the O(w(n)/B) amortization is about.
		l.store.Observer().CostRelabeled(uint64(len(n.recs)))
		return l.writeNode(n)
	}
	childLen, ok := l.p.rangeLen(int(n.level) - 1)
	if !ok {
		return order.ErrLabelOverflow
	}
	cnt := len(n.ents)
	for j := range n.ents {
		n.ents[j].slot = uint16(j * l.p.B / cnt)
		child, err := l.readNode(n.ents[j].child)
		if err != nil {
			return err
		}
		if err := l.relabelSubtree(child, newLo+uint64(n.ents[j].slot)*childLen, fixes); err != nil {
			return err
		}
	}
	return l.writeNode(n)
}
