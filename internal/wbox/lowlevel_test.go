package wbox

import (
	"testing"

	"boxes/internal/order"
)

// TestInsertBeforeSingleLabels exercises the low-level insert-before
// primitive on the basic variant, including enough volume to force leaf
// and internal splits.
func TestInsertBeforeSingleLabels(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	e, err := l.InsertFirstElement()
	if err != nil {
		t.Fatal(err)
	}
	prev := e.Start
	for i := 0; i < 500; i++ {
		lid, err := l.InsertBefore(e.End)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		lp, err := l.Lookup(prev)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := l.Lookup(lid)
		if err != nil {
			t.Fatal(err)
		}
		le, err := l.Lookup(e.End)
		if err != nil {
			t.Fatal(err)
		}
		if !(lp < ln && ln < le) {
			t.Fatalf("insert %d: order violated: %d, %d, %d", i, lp, ln, le)
		}
		prev = lid
	}
	if l.Count() != 502 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.Height() < 2 {
		t.Fatalf("height = %d; the chain should have split leaves", l.Height())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWorstCaseSplitPath drives enough adjacent-slot pressure to hit the
// "both adjacent subranges taken" branch, where all of the parent's
// children are reassigned equally spaced subranges and the whole subtree
// relabels.
func TestWorstCaseSplitPath(t *testing.T) {
	l := newLabeler(t, 512, Basic, false)
	elems, err := l.BulkLoad(order.TagStreamFromPairs(40))
	if err != nil {
		t.Fatal(err)
	}
	o := order.NewOracle()
	lids := make([]order.LID, 0, 80)
	lids = append(lids, elems[0].Start)
	for _, e := range elems[1:] {
		lids = append(lids, e.Start, e.End)
	}
	lids = append(lids, elems[0].End)
	o.Load(lids)
	// Squeeze at several distinct spots so sibling slots fill up and at
	// least some splits find both neighbours occupied.
	anchors := []order.LID{elems[5].Start, elems[15].Start, elems[25].Start, elems[35].Start}
	for round := 0; round < 120; round++ {
		a := anchors[round%len(anchors)]
		ne, err := l.InsertElementBefore(a)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := o.InsertElementBefore(ne, a); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := o.CheckAgainst(l, false); err != nil {
		t.Fatal(err)
	}
}
