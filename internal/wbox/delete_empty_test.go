package wbox

import (
	"testing"

	"boxes/internal/order"
)

// TestDeleteSubtreeEmptiesDocument regresses a double free: removeRange
// frees every block it empties (including the root), and DeleteSubtree
// used to free the root again when the whole document was deleted,
// failing with "block is not allocated". The document must empty cleanly
// and accept a fresh bootstrap afterwards — twice, to cover the
// re-emptied state too.
func TestDeleteSubtreeEmptiesDocument(t *testing.T) {
	allVariants(t, func(t *testing.T, l *Labeler) {
		for round := 0; round < 2; round++ {
			e, err := l.InsertFirstElement()
			if err != nil {
				t.Fatalf("round %d bootstrap: %v", round, err)
			}
			// Grow a few siblings so the delete spans more than one record.
			for i := 0; i < 4; i++ {
				if _, err := l.InsertElementBefore(e.End); err != nil {
					t.Fatalf("round %d insert %d: %v", round, i, err)
				}
			}
			if err := l.DeleteSubtree(e.Start, e.End); err != nil {
				t.Fatalf("round %d delete whole doc: %v", round, err)
			}
			if c := l.Count(); c != 0 {
				t.Fatalf("round %d count after empty = %d, want 0", round, c)
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("round %d invariants on empty tree: %v", round, err)
			}
			if _, err := l.Lookup(e.Start); err != order.ErrUnknownLID {
				t.Fatalf("round %d lookup on empty tree: err = %v, want ErrUnknownLID", round, err)
			}
		}
	})
}
