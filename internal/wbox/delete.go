package wbox

import (
	"fmt"

	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// DeleteSubtree implements order.Labeler: delete the contiguous label range
// from start's label to end's label, i.e. an element together with all its
// descendants (Section 4, "Bulk loading and subtree insert/delete"). Whole
// leaves inside the range are dropped in O(N'/B) I/Os; the two boundary
// leaves are edited in place; if the removal violates a weight constraint
// anywhere, the tree is rebuilt from its leaf runs (the paper's O(N/B)
// worst case).
func (l *Labeler) DeleteSubtree(start, end order.LID) (err error) {
	l.store.BeginOp()
	defer l.store.EndOpInto(&err)

	leafS, si, err := l.leafOf(start)
	if err != nil {
		return err
	}
	l1 := leafS.lo + uint64(si)
	leafE, ei, err := l.leafOf(end)
	if err != nil {
		return err
	}
	l2 := leafE.lo + uint64(ei)
	if l1 > l2 {
		return fmt.Errorf("wbox: delete range start %d after end %d", l1, l2)
	}
	if l.p.Variant == PairOptimized {
		// The range must be one element's subtree, so its endpoints are
		// partners; this guarantees partner pointers never dangle.
		if leafS.recs[si].partnerLID != end {
			return fmt.Errorf("wbox: DeleteSubtree endpoints are not one element's start/end labels")
		}
	}

	if l.p.Ordinal && l.ologger != nil {
		o1, err := l.OrdinalLookup(start)
		if err != nil {
			return err
		}
		o2, err := l.OrdinalLookup(end)
		if err != nil {
			return err
		}
		l.ologger.LogInvalidate(o1, o2)
		l.logOrdinalShift(o2+1, -int64(o2-o1+1))
	}
	root, err := l.readNode(l.root)
	if err != nil {
		return err
	}
	var violated bool
	remW, remS, empty, err := l.removeRange(root, l1, l2, true, &violated)
	if err != nil {
		return err
	}
	l.live -= remS
	l.dead -= remW - remS
	l.logInvalidate(l1, ^uint64(0))

	if empty {
		// removeRange already freed every emptied block, root included.
		l.root = pager.NilBlock
		l.height = 0
		return nil
	}
	// Collapse the root while it has a single child (the root must have
	// more than one child).
	for {
		root, err = l.readNode(l.root)
		if err != nil {
			return err
		}
		if root.isLeaf() || len(root.ents) > 1 {
			break
		}
		child := root.ents[0].child
		if err := l.store.Free(root.blk); err != nil {
			return err
		}
		l.root = child
		l.height--
	}
	if violated {
		if err := l.rebuildFromLeafRuns(); err != nil {
			return err
		}
	}
	// Global rebuilding invariant (same trigger as Delete): the range
	// removal drops live records but keeps boundary-leaf tombstones, so it
	// can push the dead fraction past half — including the live == 0 case,
	// where rebuildAll resets to the genuinely empty tree.
	if rebuildTriggered(l.dead, l.live) && l.dead > 0 {
		return l.rebuildAll()
	}
	return nil
}

// removeRange removes every record with a label in [l1, l2] from n's
// subtree, returning the removed (total, live) record counts and whether n
// became empty. violated is set when a surviving non-root node ends up at
// or below its minimum weight.
func (l *Labeler) removeRange(n *node, l1, l2 uint64, isRoot bool, violated *bool) (remW, remS uint64, empty bool, err error) {
	if n.isLeaf() {
		kept := n.recs[:0:0]
		removedLive := uint64(0)
		removedAll := uint64(0)
		shiftFrom := -1
		for i := range n.recs {
			label := n.lo + uint64(i)
			if label < l1 || label > l2 {
				if removedAll > 0 && shiftFrom < 0 {
					shiftFrom = i
				}
				kept = append(kept, n.recs[i])
				continue
			}
			removedAll++
			if !n.recs[i].deleted {
				removedLive++
				if err := l.file.Free(n.recs[i].lid); err != nil {
					return 0, 0, false, err
				}
			}
		}
		if removedAll == 0 {
			return 0, 0, false, nil
		}
		if len(kept) == 0 {
			if err := l.store.Free(n.blk); err != nil {
				return 0, 0, false, err
			}
			return removedAll, removedLive, true, nil
		}
		n.recs = kept
		if shiftFrom >= 0 {
			// Records after the removed range slid down by removedAll.
			l.logShift(l2+1, n.lo+uint64(len(kept))+removedAll-1, -int64(removedAll))
		}
		if err := l.writeNode(n); err != nil {
			return 0, 0, false, err
		}
		if l.p.Variant == PairOptimized && shiftFrom >= 0 {
			var fixes []endFix
			for i := range n.recs {
				r := &n.recs[i]
				if r.deleted || r.isStart || r.partnerBlk == pager.NilBlock {
					continue
				}
				fixes = append(fixes, endFix{blk: r.partnerBlk, startLID: r.partnerLID, newEnd: n.lo + uint64(i)})
			}
			if err := l.applyEndFixes(fixes, n); err != nil {
				return 0, 0, false, err
			}
		}
		if !isRoot && uint64(len(n.recs)) <= l.p.weightMin(0) {
			*violated = true
		}
		return removedAll, removedLive, false, nil
	}

	childLen, ok := l.p.rangeLen(int(n.level) - 1)
	if !ok {
		return 0, 0, false, order.ErrLabelOverflow
	}
	keptEnts := n.ents[:0:0]
	for i := range n.ents {
		e := n.ents[i]
		clo := n.lo + uint64(e.slot)*childLen
		chi := clo + childLen - 1
		if chi < l1 || clo > l2 {
			keptEnts = append(keptEnts, e)
			continue
		}
		if l1 <= clo && chi <= l2 {
			w, s, err := l.freeSubtree(e.child)
			if err != nil {
				return 0, 0, false, err
			}
			remW += w
			remS += s
			continue
		}
		child, err := l.readNode(e.child)
		if err != nil {
			return 0, 0, false, err
		}
		w, s, childEmpty, err := l.removeRange(child, l1, l2, false, violated)
		if err != nil {
			return 0, 0, false, err
		}
		remW += w
		remS += s
		if childEmpty {
			continue
		}
		e.weight -= w
		e.size -= s
		keptEnts = append(keptEnts, e)
	}
	if len(keptEnts) == 0 {
		if err := l.store.Free(n.blk); err != nil {
			return 0, 0, false, err
		}
		return remW, remS, true, nil
	}
	n.ents = keptEnts
	if err := l.writeNode(n); err != nil {
		return 0, 0, false, err
	}
	if !isRoot && n.weight() <= l.p.weightMin(int(n.level)) {
		*violated = true
	}
	return remW, remS, false, nil
}

// freeSubtree releases every block of blk's subtree and the LIDF records of
// its live labels, returning the (total, live) record counts removed.
func (l *Labeler) freeSubtree(blk pager.BlockID) (remW, remS uint64, err error) {
	n, err := l.readNode(blk)
	if err != nil {
		return 0, 0, err
	}
	if n.isLeaf() {
		for i := range n.recs {
			if !n.recs[i].deleted {
				remS++
				if err := l.file.Free(n.recs[i].lid); err != nil {
					return 0, 0, err
				}
			}
		}
		remW = uint64(len(n.recs))
	} else {
		for i := range n.ents {
			w, s, err := l.freeSubtree(n.ents[i].child)
			if err != nil {
				return 0, 0, err
			}
			remW += w
			remS += s
		}
	}
	if err := l.store.Free(n.blk); err != nil {
		return 0, 0, err
	}
	return remW, remS, nil
}

// rebuildFromLeafRuns rebuilds the internal structure over the existing
// leaves, repacking only leaves that underflow (so LIDF updates stay
// bounded by the damage).
func (l *Labeler) rebuildFromLeafRuns() error {
	l.store.Observer().Inc(obs.CtrWBoxRebuilds)
	leaves, err := l.collectLeaves(l.root, true)
	if err != nil {
		return err
	}
	repaired, err := l.repairLeafRuns(leaves)
	if err != nil {
		return err
	}
	top, height, err := l.buildInternal(repaired)
	if err != nil {
		return err
	}
	l.root = top.blk
	l.height = height
	var fixes []endFix
	if err := l.relabelSubtree(top, 0, &fixes); err != nil {
		return err
	}
	l.logInvalidate(0, ^uint64(0))
	return l.applyEndFixes(fixes, nil)
}

// repairLeafRuns merges underfull leaves with a neighbour, repacking each
// pair into one or two valid leaves, until no leaf (other than a lone root
// leaf) underflows.
func (l *Labeler) repairLeafRuns(leaves []*node) ([]*node, error) {
	minLeaf := l.p.weightMin(0)
	for {
		if len(leaves) <= 1 {
			return leaves, nil
		}
		bad := -1
		for i, lf := range leaves {
			if uint64(len(lf.recs)) <= minLeaf {
				bad = i
				break
			}
		}
		if bad < 0 {
			return leaves, nil
		}
		buddy := bad + 1
		if buddy == len(leaves) {
			buddy = bad - 1
		}
		a, b := leaves[bad], leaves[buddy]
		if buddy < bad {
			a, b = b, a
		}
		combined := make([]record, 0, len(a.recs)+len(b.recs))
		combined = append(combined, a.recs...)
		combined = append(combined, b.recs...)
		if err := l.store.Free(a.blk); err != nil {
			return nil, err
		}
		if err := l.store.Free(b.blk); err != nil {
			return nil, err
		}
		packed, err := l.packLeaves(combined)
		if err != nil {
			return nil, err
		}
		lo := bad
		if buddy < bad {
			lo = buddy
		}
		next := make([]*node, 0, len(leaves)-2+len(packed))
		next = append(next, leaves[:lo]...)
		next = append(next, packed...)
		next = append(next, leaves[lo+2:]...)
		leaves = next
	}
}
