// Package sim is the deterministic simulation harness: it runs long
// randomized operation histories — insert/delete/lookup/batch mixes plus
// adversarial insertion patterns in the style of Bulánek–Koucký–Saks lower
// bounds — against every labeling scheme over a durable file-backed store,
// while a single seeded RNG drives a composed fault schedule of torn
// writes, crash-restart loops (including crashes injected during WAL
// redo), ENOSPC at arbitrary write points, fsync failures, and transient
// I/O flakes. An in-memory oracle is checked after every recovery, so any
// divergence between the recovered structure and an exact operation
// boundary is a failure. Every history is a pure function of its seed and
// config: a failure replays byte-identically from the printed seed, and
// the built-in minimizer (see Minimize) shrinks a failing history to a
// near-minimal prefix of operations and faults.
package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
)

// EventKind distinguishes the three trace event classes.
type EventKind uint8

const (
	// EvOp applies one logical operation to the store under test.
	EvOp EventKind = iota
	// EvFault plans one disk fault a few I/O points into the future of
	// the currently open backend.
	EvFault
	// EvRedoCrash queues a crash to be injected during the WAL redo of
	// the next restart, whenever that restart happens.
	EvRedoCrash
)

// OpKind is the logical operation of an EvOp event. Operands are
// positional (reduced modulo the live element count at execution time), so
// any subsequence of a valid trace is itself a valid trace — the property
// the minimizer relies on.
type OpKind uint8

const (
	// KInsertBefore inserts one element before a positionally chosen tag.
	KInsertBefore OpKind = iota
	// KInsertFirst bootstraps an empty document. The executor also
	// rewrites any mutating op on an empty document into KInsertFirst.
	KInsertFirst
	// KDeleteElement removes both labels of a positionally chosen
	// element (tombstone-leaving single-label deletes underneath).
	KDeleteElement
	// KDeleteSubtree removes a positionally chosen element with all its
	// descendants.
	KDeleteSubtree
	// KLookup cross-checks Compare / Lookup / OrdinalLookup between the
	// store and the oracle; it never mutates.
	KLookup
	// KBatch applies several insert-before ops as one ApplyBatch
	// transaction (one WAL commit, all-or-nothing).
	KBatch
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case KInsertBefore:
		return "insert-before"
	case KInsertFirst:
		return "insert-first"
	case KDeleteElement:
		return "delete-element"
	case KDeleteSubtree:
		return "delete-subtree"
	case KLookup:
		return "lookup"
	case KBatch:
		return "batch"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// FaultKind is the disk fault class of an EvFault event.
type FaultKind uint8

const (
	// FCrash cuts power at a future raw write point.
	FCrash FaultKind = iota
	// FTorn cuts power mid-write, persisting only the first half of the
	// cut block.
	FTorn
	// FNoSpace fails one future write with ENOSPC semantics.
	FNoSpace
	// FTransient fails one future write with a retryable error.
	FTransient
	// FSyncFail fails one future fsync (with a transient-looking errno,
	// to prove the fsyncgate contract ignores the errno).
	FSyncFail
	numFaultKinds
)

func (f FaultKind) String() string {
	switch f {
	case FCrash:
		return "crash"
	case FTorn:
		return "torn"
	case FNoSpace:
		return "nospace"
	case FTransient:
		return "transient"
	case FSyncFail:
		return "syncfail"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Target-mode bits of Event.B for insert ops (bits 1-2; bit 0 picks the
// start/end label of the target element). Adversarial mixes stamp the mode
// into the event itself, so a minimized trace stays self-contained.
const (
	targetPositional = 0 // element A mod len(elems)
	targetFront      = 1 // first element of the document (BKS-style front hammering)
	targetBack       = 2 // most recently inserted element (bisection nesting)
)

// Event is one step of a trace. The whole struct is positional data: it
// never references concrete LIDs or block numbers, so it stays valid when
// events before it are removed.
type Event struct {
	Kind  EventKind `json:"k"`
	Op    OpKind    `json:"op,omitempty"`
	A     uint32    `json:"a,omitempty"` // positional operand (target element)
	B     uint32    `json:"b,omitempty"` // side/mode bits, batch size
	Fault FaultKind `json:"f,omitempty"`
	Delay uint32    `json:"d,omitempty"` // fault: I/O points into the future; redo crash: redo write point
	Torn  bool      `json:"torn,omitempty"`
}

// Mixes. Each mix is a weighted op-kind distribution plus the targeting
// policy stamped into insert events.
const (
	MixMixed     = "mixed"      // balanced insert/delete/lookup/batch
	MixChurn     = "churn"      // delete-heavy; repeatedly drains the document
	MixAdvFront  = "adv-front"  // hammer insertions at the document front
	MixAdvBisect = "adv-bisect" // always insert inside the newest element
	MixZipf      = "zipf"       // zipfian-skewed positions: a hot front region
	MixSteady    = "steady"     // 1:1 insert/delete at steady state (tombstone churn)
)

// Mixes lists the supported operation mixes.
func Mixes() []string {
	return []string{MixMixed, MixChurn, MixAdvFront, MixAdvBisect, MixZipf, MixSteady}
}

// Zipf parameters of MixZipf: skew s = 1.2 over 2^20 ranks, so rank 0 (the
// document front after positional reduction) absorbs most operations while
// the tail still gets occasional hits.
const (
	zipfSkew  = 1.2
	zipfRange = 1 << 20
)

type opWeight struct {
	kind   OpKind
	weight int
	// fixedB, when >= 0, overrides the random B operand (adversarial
	// targeting); bit 0 side, bits 1-2 target mode.
	fixedB int
}

func mixWeights(mix string) ([]opWeight, error) {
	switch mix {
	case MixMixed:
		return []opWeight{
			{KInsertBefore, 45, -1},
			{KDeleteElement, 12, -1},
			{KDeleteSubtree, 8, -1},
			{KLookup, 25, -1},
			{KBatch, 10, -1},
		}, nil
	case MixChurn:
		return []opWeight{
			{KInsertBefore, 28, -1},
			{KDeleteElement, 34, -1},
			{KDeleteSubtree, 22, -1},
			{KLookup, 10, -1},
			{KBatch, 6, -1},
		}, nil
	case MixAdvFront:
		// Insert before the first tag of the document, every time: the
		// front gap shrinks monotonically, forcing relabels.
		return []opWeight{
			{KInsertBefore, 80, targetFront << 1},
			{KDeleteElement, 5, -1},
			{KLookup, 10, -1},
			{KBatch, 5, -1},
		}, nil
	case MixAdvBisect:
		// Insert before the start tag of the newest element: each insert
		// bisects the most recently created gap, the classic worst case
		// for fixed-length order labels.
		return []opWeight{
			{KInsertBefore, 85, targetBack << 1},
			{KLookup, 10, -1},
			{KDeleteSubtree, 5, -1},
		}, nil
	case MixZipf:
		// The mixed distribution, but positional operands are drawn
		// zipfian (see zipfSkew): after modular reduction the low
		// positions form a hot region absorbing most updates, the skewed
		// regime of internal/workload.ZipfMix under fault schedules.
		return []opWeight{
			{KInsertBefore, 40, -1},
			{KDeleteElement, 15, -1},
			{KLookup, 35, -1},
			{KBatch, 10, -1},
		}, nil
	case MixSteady:
		// Steady-state churn: balanced single-element inserts and deletes
		// hold the document at a roughly fixed size while every delete
		// leaves tombstones, the regime that drives the W-BOX dead >= live
		// global-rebuild path (no subtree deletes — those drain the
		// document instead of churning it).
		return []opWeight{
			{KInsertBefore, 40, -1},
			{KDeleteElement, 40, -1},
			{KLookup, 20, -1},
		}, nil
	}
	return nil, fmt.Errorf("sim: unknown mix %q (want one of %v)", mix, Mixes())
}

// GenTrace generates the event trace for cfg as a pure function of
// (Seed, Mix, Ops, FaultRate): the same config always yields the same
// trace, on any machine. Faults are interleaved between ops at FaultRate
// per op slot; about one in seven planned faults is a redo-phase crash.
func GenTrace(cfg Config) ([]Event, error) {
	weights, err := mixWeights(cfg.Mix)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, w := range weights {
		total += w.weight
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Mix == MixZipf {
		zipf = rand.NewZipf(rng, zipfSkew, 1, zipfRange)
	}
	evs := make([]Event, 0, cfg.Ops+cfg.Ops/8)
	for ops := 0; ops < cfg.Ops; ops++ {
		if rng.Float64() < cfg.FaultRate {
			if rng.Intn(7) == 0 {
				evs = append(evs, Event{
					Kind:  EvRedoCrash,
					Delay: uint32(rng.Intn(8)),
					Torn:  rng.Intn(2) == 1,
				})
			} else {
				f := FaultKind(rng.Intn(int(numFaultKinds)))
				evs = append(evs, Event{
					Kind:  EvFault,
					Fault: f,
					Delay: uint32(rng.Intn(40)),
				})
			}
		}
		pick := rng.Intn(total)
		var w opWeight
		for _, cand := range weights {
			if pick < cand.weight {
				w = cand
				break
			}
			pick -= cand.weight
		}
		ev := Event{Kind: EvOp, Op: w.kind, A: rng.Uint32(), B: rng.Uint32()}
		if zipf != nil {
			// The skew is baked into the event operand, so a minimized
			// subsequence keeps its hot-region shape.
			ev.A = uint32(zipf.Uint64())
		}
		if w.fixedB >= 0 {
			ev.B = uint32(w.fixedB)
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// TraceDigest is the SHA-256 of the canonical binary encoding of the
// config identity and the event list: two runs with equal digests execute
// the exact same schedule.
func TraceDigest(cfg Config, trace []Event) string {
	h := sha256.New()
	fmt.Fprintf(h, "boxsim/v1|%s|%s|%d|", cfg.Scheme, cfg.Mix, cfg.VerifyEvery)
	var buf [16]byte
	for _, ev := range trace {
		buf[0] = byte(ev.Kind)
		buf[1] = byte(ev.Op)
		buf[2] = byte(ev.Fault)
		buf[3] = 0
		if ev.Torn {
			buf[3] = 1
		}
		binary.LittleEndian.PutUint32(buf[4:], ev.A)
		binary.LittleEndian.PutUint32(buf[8:], ev.B)
		binary.LittleEndian.PutUint32(buf[12:], ev.Delay)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TraceFile is the JSON artifact boxsim writes for a failing history (full
// and minimized), and the input of replay mode.
type TraceFile struct {
	Version int     `json:"version"`
	Config  Config  `json:"config"`
	Events  []Event `json:"events"`
}

// SaveTrace writes a replayable trace artifact to path.
func SaveTrace(path string, cfg Config, trace []Event) error {
	data, err := json.MarshalIndent(TraceFile{Version: 1, Config: cfg, Events: trace}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTrace reads a trace artifact written by SaveTrace.
func LoadTrace(path string) (Config, []Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, nil, err
	}
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return Config{}, nil, fmt.Errorf("sim: parse trace %s: %w", path, err)
	}
	if tf.Version != 1 {
		return Config{}, nil, fmt.Errorf("sim: trace %s has unsupported version %d", path, tf.Version)
	}
	return tf.Config, tf.Events, nil
}
