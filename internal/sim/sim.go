package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"os"
	"path/filepath"

	"boxes/internal/core"
	"boxes/internal/difftest"
	"boxes/internal/faults"
	"boxes/internal/fsck"
	"boxes/internal/obs"
	"boxes/internal/order"
	"boxes/internal/pager"
)

// simBlockSize matches the crash-matrix harness: small blocks mean many
// raw write points per operation, so fault plans land in interesting
// places even on short histories.
const simBlockSize = 512

// Config identifies one simulated history. Seed, Scheme, Mix, Ops and
// FaultRate fully determine the trace; everything else tunes checking and
// artifact output without changing the schedule.
type Config struct {
	Seed      int64   `json:"seed"`
	Scheme    string  `json:"scheme"` // a difftest.Configs() name: wbox, wbox-o, bbox, bbox-o, naive-8
	Mix       string  `json:"mix"`
	Ops       int     `json:"ops"`
	FaultRate float64 `json:"fault_rate"`

	// VerifyEvery runs the full oracle check every that many committed
	// ops (0 = 64). Recoveries are always fully verified regardless.
	VerifyEvery int `json:"verify_every,omitempty"`

	// Dir hosts the store files (a fresh temp dir when empty). The run
	// removes its files unless KeepFiles is set.
	Dir       string `json:"-"`
	KeepFiles bool   `json:"-"`
	// ArtifactDir, when set, is passed to the store as CrashDir so
	// operation failures leave flight-recorder dumps next to the traces.
	ArtifactDir string `json:"-"`
	// Metrics receives the sim_* counters (a private registry when nil).
	Metrics *obs.Registry `json:"-"`
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Mix == "" {
		out.Mix = MixMixed
	}
	if out.Ops <= 0 {
		out.Ops = 200
	}
	if out.VerifyEvery <= 0 {
		out.VerifyEvery = 64
	}
	return out
}

// Stats summarizes what one history exercised.
type Stats struct {
	Ops          int `json:"ops"`           // committed operations
	Lookups      int `json:"lookups"`       // read-only cross-checks
	Aborts       int `json:"aborts"`        // clean aborts (ENOSPC, transient commit faults)
	OpsLost      int `json:"ops_lost"`      // in-flight ops a recovery resolved at boundary k
	OpsRecovered int `json:"ops_recovered"` // in-flight ops a recovery resolved at boundary k+1
	Restarts     int `json:"restarts"`      // crash-restart cycles (incl. redo-crash re-restarts)
	RedoCrashes  int `json:"redo_crashes"`  // crashes injected during WAL redo
	Faults       int `json:"faults"`        // fault points armed
}

// Failure describes why a history failed; Class is stable across replays
// of the same trace, Msg carries the detail.
type Failure struct {
	Class      string `json:"class"`
	Msg        string `json:"msg"`
	EventIndex int    `json:"event_index"` // trace index at which the failure surfaced (len(trace) = final check)
}

func (f *Failure) Error() string {
	return fmt.Sprintf("sim failure [%s] at event %d: %s", f.Class, f.EventIndex, f.Msg)
}

// Report is the outcome of one history.
type Report struct {
	Config      Config   `json:"config"`
	TraceDigest string   `json:"trace_digest"`
	ExecDigest  string   `json:"exec_digest"` // hash of every observed result; equal digests = byte-identical replay
	Stats       Stats    `json:"stats"`
	Failure     *Failure `json:"failure,omitempty"`
}

// Run generates the trace for cfg and executes it. The returned error is
// reserved for harness-setup problems (temp dir, unknown scheme/mix);
// store misbehavior lands in Report.Failure.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	trace, err := GenTrace(cfg)
	if err != nil {
		return nil, err
	}
	return RunTrace(cfg, trace)
}

// RunTrace executes an explicit event trace (replay and minimization).
func RunTrace(cfg Config, trace []Event) (*Report, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	defer r.cleanup()
	rep := &Report{Config: cfg, TraceDigest: TraceDigest(cfg, trace)}
	rep.Failure = r.execute(trace)
	rep.Stats = r.stats
	rep.ExecDigest = hex.EncodeToString(r.exec.Sum(nil))
	return rep, nil
}

// pendingOp is an operation with its positional operands resolved to
// concrete targets — the form that can be replayed against the shadow
// store to reconstruct boundary k+1 after a crash.
type pendingOp struct {
	kind  OpKind
	at    order.LID      // KInsertBefore target
	elem  order.ElemLIDs // delete target
	batch []order.LID    // KBatch insert-before targets
}

type redoPlan struct {
	delay uint32
	torn  bool
}

type runner struct {
	cfg    Config
	dcfg   difftest.Config
	dir    string
	ownDir bool
	path   string
	reg    *obs.Registry
	exec   hash.Hash

	fb *pager.FileBackend
	dc *pager.DiskController
	st *core.Store

	// shadow mirrors the committed state on a memory backend: after a
	// crash that recovered at boundary k+1, replaying the in-flight op on
	// the shadow reconstructs the LIDs the lost store handed out, because
	// LID allocation is a deterministic function of the structure state.
	shadow *core.Store

	oracle *order.Oracle
	elems  []order.ElemLIDs

	pendingRedo []redoPlan
	stats       Stats
}

func newRunner(cfg Config) (*runner, error) {
	var dcfg *difftest.Config
	for _, c := range difftest.Configs() {
		if c.Name == cfg.Scheme {
			cc := c
			dcfg = &cc
			break
		}
	}
	if dcfg == nil {
		var names []string
		for _, c := range difftest.Configs() {
			names = append(names, c.Name)
		}
		return nil, fmt.Errorf("sim: unknown scheme %q (want one of %v)", cfg.Scheme, names)
	}
	if _, err := mixWeights(cfg.Mix); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	dir := cfg.Dir
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "boxsim-*")
		if err != nil {
			return nil, err
		}
		dir = d
		ownDir = true
	}
	r := &runner{
		cfg:    cfg,
		dcfg:   *dcfg,
		dir:    dir,
		ownDir: ownDir,
		path:   filepath.Join(dir, "sim.box"),
		reg:    reg,
		exec:   sha256.New(),
		oracle: order.NewOracle(),
	}
	reg.Inc(obs.CtrSimHistories)
	return r, nil
}

func (r *runner) ordinal() bool { return r.dcfg.Ordinal }

// structuralOpts are the create-time options of the store under test.
func (r *runner) structuralOpts() core.Options {
	opts := r.dcfg.Opts
	opts.BlockSize = simBlockSize
	return opts
}

// runtimeOpts are the options of every open, initial and recovery alike:
// durable synchronous commits with the reflog cache and a small block LRU
// in play, mirroring the crash matrix.
func (r *runner) runtimeOpts() core.Options {
	return core.Options{
		Durable:     true,
		Caching:     core.CachingLogged,
		LogK:        16,
		CacheBlocks: 8,
		Metrics:     r.reg,
		CrashDir:    r.cfg.ArtifactDir,
	}
}

func (r *runner) cleanup() {
	r.closeStore()
	if r.shadow != nil {
		r.shadow.Close()
		r.shadow = nil
	}
	if !r.cfg.KeepFiles {
		for _, suffix := range []string{"", ".crc", ".wal"} {
			os.Remove(r.path + suffix)
		}
		if r.ownDir {
			os.Remove(r.dir)
		}
	}
}

func (r *runner) closeStore() {
	if r.st != nil {
		r.st.Close() // error ignored: the backend may be simulated-dead
		r.st = nil
		r.fb = nil
		r.dc = nil
	} else if r.fb != nil {
		r.fb.Close()
		r.fb = nil
		r.dc = nil
	}
}

func (r *runner) fail(i int, class, format string, args ...any) *Failure {
	return &Failure{Class: class, Msg: fmt.Sprintf(format, args...), EventIndex: i}
}

// setup creates the store, its memory shadow, and commits one bootstrap
// element through the normal path, so the first crash always finds a
// committed metadata blob to recover.
func (r *runner) setup() *Failure {
	dc := pager.NewDiskController()
	dc.SkipRealSync = true
	fb, err := pager.CreateFileOpts(r.path, pager.FileOptions{BlockSize: simBlockSize, DiskControl: dc})
	if err != nil {
		return r.fail(0, "setup", "create store file: %v", err)
	}
	opts := r.structuralOpts()
	rt := r.runtimeOpts()
	opts.Durable = rt.Durable
	opts.Caching = rt.Caching
	opts.LogK = rt.LogK
	opts.CacheBlocks = rt.CacheBlocks
	opts.Metrics = rt.Metrics
	opts.CrashDir = rt.CrashDir
	opts.Backend = fb
	st, err := core.Open(opts)
	if err != nil {
		fb.Close()
		return r.fail(0, "setup", "open store: %v", err)
	}
	r.fb, r.dc, r.st = fb, dc, st

	shadowOpts := r.structuralOpts()
	shadowOpts.Backend = pager.NewMemBackend(simBlockSize)
	shadow, err := core.Open(shadowOpts)
	if err != nil {
		return r.fail(0, "setup", "open shadow store: %v", err)
	}
	r.shadow = shadow

	boot := &pendingOp{kind: KInsertFirst}
	lids, err := applyOp(r.st, boot)
	if err != nil {
		return r.fail(0, "setup", "bootstrap insert: %v", err)
	}
	return r.commitToModel(0, boot, lids)
}

func (r *runner) execute(trace []Event) *Failure {
	if f := r.setup(); f != nil {
		return f
	}
	for i, ev := range trace {
		switch ev.Kind {
		case EvFault:
			r.planFault(ev)
		case EvRedoCrash:
			r.pendingRedo = append(r.pendingRedo, redoPlan{delay: ev.Delay, torn: ev.Torn})
			r.stats.Faults++
		case EvOp:
			if f := r.execOp(i, ev); f != nil {
				return f
			}
		default:
			return r.fail(i, "harness", "unknown event kind %d", ev.Kind)
		}
	}
	// Final barrier: one last restart (consuming any queued redo crash),
	// then a full verification, a clean close, and a clean fsck.
	if f := r.restart(len(trace), nil); f != nil {
		return f
	}
	if f := r.fullVerify(len(trace)); f != nil {
		return f
	}
	st := r.st
	r.st, r.fb, r.dc = nil, nil, nil
	if err := st.Close(); err != nil {
		return r.fail(len(trace), "close", "final close: %v", err)
	}
	if f := r.fsck(len(trace)); f != nil {
		return f
	}
	return nil
}

// planFault arms one disk fault a few I/O points into the future of the
// live controller.
func (r *runner) planFault(ev Event) {
	var armed bool
	switch ev.Fault {
	case FSyncFail:
		idx := r.dc.Syncs() + 1 + int(ev.Delay)%6
		armed = r.dc.PlanSync(idx, pager.DiskSyncFail)
		if armed {
			r.reg.Inc(obs.CtrSimFaultsSyncFail)
		}
	case FCrash, FTorn:
		kind := pager.DiskCrash
		if ev.Fault == FTorn {
			kind = pager.DiskTornCrash
		}
		idx := r.dc.Writes() + 1 + int(ev.Delay)%40
		armed = r.dc.PlanWrite(idx, kind)
		if armed {
			r.reg.Inc(obs.CtrSimFaultsCrash)
		}
	case FNoSpace:
		idx := r.dc.Writes() + 1 + int(ev.Delay)%40
		armed = r.dc.PlanWrite(idx, pager.DiskNoSpace)
		if armed {
			r.reg.Inc(obs.CtrSimFaultsNoSpace)
		}
	case FTransient:
		idx := r.dc.Writes() + 1 + int(ev.Delay)%40
		armed = r.dc.PlanWrite(idx, pager.DiskTransient)
		if armed {
			r.reg.Inc(obs.CtrSimFaultsTransient)
		}
	}
	if armed {
		r.stats.Faults++
	}
}

// resolveOp turns an event's positional operands into concrete targets.
// It returns nil for ops that are no-ops in the current state (lookups on
// an empty document). Any mutating op on an empty document becomes
// KInsertFirst — that is what makes every event subsequence a valid trace.
func (r *runner) resolveOp(ev Event) *pendingOp {
	n := len(r.elems)
	if n == 0 {
		if ev.Op == KLookup {
			return nil
		}
		return &pendingOp{kind: KInsertFirst}
	}
	switch ev.Op {
	case KInsertFirst:
		// Positional rewrite: a non-empty document has no first insert;
		// treat it as an insert before the front.
		return &pendingOp{kind: KInsertBefore, at: r.elems[0].Start}
	case KInsertBefore:
		var e order.ElemLIDs
		switch (ev.B >> 1) & 3 {
		case targetFront:
			e = r.elems[0]
		case targetBack:
			e = r.elems[n-1]
		default:
			e = r.elems[int(ev.A)%n]
		}
		at := e.Start
		if ev.B&1 == 1 {
			at = e.End
		}
		return &pendingOp{kind: KInsertBefore, at: at}
	case KDeleteElement:
		return &pendingOp{kind: KDeleteElement, elem: r.elems[int(ev.A)%n]}
	case KDeleteSubtree:
		return &pendingOp{kind: KDeleteSubtree, elem: r.elems[int(ev.A)%n]}
	case KLookup:
		return &pendingOp{kind: KLookup, at: r.elems[int(ev.A)%n].Start,
			elem: r.elems[int(ev.B)%n]}
	case KBatch:
		size := 2 + int(ev.B)%4
		targets := make([]order.LID, size)
		for i := 0; i < size; i++ {
			e := r.elems[(int(ev.A)+i*2654435761)%n]
			if (ev.B>>(1+uint(i)))&1 == 1 {
				targets[i] = e.End
			} else {
				targets[i] = e.Start
			}
		}
		return &pendingOp{kind: KBatch, batch: targets}
	}
	return nil
}

// applyOp runs p against a store, returning the inserted elements (nil
// for deletes). It is the single code path shared by the store under test
// and the shadow, so both observe identical operations.
func applyOp(st *core.Store, p *pendingOp) ([]order.ElemLIDs, error) {
	switch p.kind {
	case KInsertFirst:
		e, err := st.InsertFirstElement()
		if err != nil {
			return nil, err
		}
		return []order.ElemLIDs{e}, nil
	case KInsertBefore:
		e, err := st.InsertElementBefore(p.at)
		if err != nil {
			return nil, err
		}
		return []order.ElemLIDs{e}, nil
	case KDeleteElement:
		return nil, st.DeleteElement(p.elem)
	case KDeleteSubtree:
		return nil, st.DeleteSubtree(p.elem)
	case KBatch:
		ops := make([]core.Op, len(p.batch))
		for i, at := range p.batch {
			ops[i] = core.Op{Kind: core.OpInsertBefore, LID: at}
		}
		res, err := st.ApplyBatch(ops)
		if err != nil {
			return nil, err
		}
		out := make([]order.ElemLIDs, len(res))
		for i := range res {
			out[i] = res[i].Elem
		}
		return out, nil
	}
	return nil, fmt.Errorf("applyOp: bad kind %v", p.kind)
}

func sameElems(a, b []order.ElemLIDs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// commitToModel mirrors a committed op into the shadow store, checks LID
// determinism, and registers the result in the oracle and element list.
func (r *runner) commitToModel(i int, p *pendingOp, lids []order.ElemLIDs) *Failure {
	slids, err := applyOp(r.shadow, p)
	if err != nil {
		return r.fail(i, "harness", "shadow apply of %v: %v", p.kind, err)
	}
	if !sameElems(lids, slids) {
		return r.fail(i, "determinism", "%v returned LIDs %v on the store but %v on the shadow", p.kind, lids, slids)
	}
	if f := r.registerOp(i, p, lids); f != nil {
		return f
	}
	r.noteExec(p, lids)
	r.stats.Ops++
	r.reg.Inc(obs.CtrSimOps)
	return nil
}

// registerOp applies a committed op to the oracle and element list.
func (r *runner) registerOp(i int, p *pendingOp, lids []order.ElemLIDs) *Failure {
	switch p.kind {
	case KInsertFirst:
		if err := r.oracle.InsertFirstElement(lids[0]); err != nil {
			return r.fail(i, "harness", "oracle insert-first: %v", err)
		}
		r.elems = append(r.elems, lids[0])
	case KInsertBefore:
		if err := r.oracle.InsertElementBefore(lids[0], p.at); err != nil {
			return r.fail(i, "harness", "oracle insert-before: %v", err)
		}
		r.elems = append(r.elems, lids[0])
	case KBatch:
		for j, e := range lids {
			if err := r.oracle.InsertElementBefore(e, p.batch[j]); err != nil {
				return r.fail(i, "harness", "oracle batch insert %d: %v", j, err)
			}
			r.elems = append(r.elems, e)
		}
	case KDeleteElement:
		if err := r.oracle.Delete(p.elem.Start); err != nil {
			return r.fail(i, "harness", "oracle delete start: %v", err)
		}
		if err := r.oracle.Delete(p.elem.End); err != nil {
			return r.fail(i, "harness", "oracle delete end: %v", err)
		}
		for j, e := range r.elems {
			if e == p.elem {
				r.elems = append(r.elems[:j], r.elems[j+1:]...)
				break
			}
		}
	case KDeleteSubtree:
		if err := r.oracle.DeleteRange(p.elem.Start, p.elem.End); err != nil {
			return r.fail(i, "harness", "oracle delete range: %v", err)
		}
		kept := r.elems[:0]
		for _, e := range r.elems {
			if r.oracle.Position(e.Start) >= 0 {
				kept = append(kept, e)
			}
		}
		r.elems = kept
	}
	return nil
}

// noteExec folds an observed result into the execution digest.
func (r *runner) noteExec(p *pendingOp, lids []order.ElemLIDs) {
	var buf [8]byte
	r.exec.Write([]byte{byte(p.kind)})
	for _, e := range lids {
		binary.LittleEndian.PutUint64(buf[:], uint64(e.Start))
		r.exec.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e.End))
		r.exec.Write(buf[:])
	}
}

func (r *runner) execOp(i int, ev Event) *Failure {
	p := r.resolveOp(ev)
	if p == nil {
		return nil
	}
	if p.kind == KLookup {
		return r.execLookup(i, p)
	}
	lids, err := applyOp(r.st, p)
	if err != nil {
		return r.handleOpError(i, p, err)
	}
	if f := r.commitToModel(i, p, lids); f != nil {
		return f
	}
	if r.stats.Ops%r.cfg.VerifyEvery == 0 {
		return r.fullVerify(i)
	}
	return nil
}

// execLookup cross-checks the read path against the oracle: document
// order via Compare, and ordinal positions on ordinal-enabled schemes.
func (r *runner) execLookup(i int, p *pendingOp) *Failure {
	a, b := p.at, p.elem.Start
	got, err := r.st.Compare(a, b)
	if err != nil {
		return r.fail(i, "lookup-error", "compare(%d, %d): %v", a, b, err)
	}
	pa, pb := r.oracle.Position(a), r.oracle.Position(b)
	want := 0
	switch {
	case pa < pb:
		want = -1
	case pa > pb:
		want = 1
	}
	if got != want {
		return r.fail(i, "order-mismatch", "compare(%d, %d) = %d, oracle positions %d vs %d", a, b, got, pa, pb)
	}
	if r.ordinal() {
		ord, err := r.st.OrdinalLookup(a)
		if err != nil {
			return r.fail(i, "lookup-error", "ordinal lookup of %d: %v", a, err)
		}
		if int(ord) != pa {
			return r.fail(i, "order-mismatch", "ordinal of %d = %d, oracle position %d", a, ord, pa)
		}
	}
	var buf [8]byte
	r.exec.Write([]byte{0xfe, byte(got + 1)})
	binary.LittleEndian.PutUint64(buf[:], uint64(a))
	r.exec.Write(buf[:])
	r.stats.Lookups++
	return nil
}

// handleOpError classifies a failed mutation per the failure-semantics
// contract (DESIGN.md §13): crash/poison/degrade → restart and resolve the
// boundary; ENOSPC and transient commit faults → clean abort, the store
// must still match boundary k and stay writable; anything else is a bug.
func (r *runner) handleOpError(i int, p *pendingOp, err error) *Failure {
	crashed := errors.Is(err, pager.ErrCrashed)
	poisoned := errors.Is(err, pager.ErrPoisoned) || r.fb.Poisoned() != nil
	if crashed || poisoned || r.st.Degraded() || (r.dc != nil && r.dc.Crashed()) {
		return r.restart(i, p)
	}
	if errors.Is(err, pager.ErrNoSpace) || errors.Is(err, faults.ErrTransient) {
		if cerr := r.oracle.CheckAgainst(r.st.Labeler(), r.ordinal()); cerr != nil {
			return r.fail(i, "abort-divergence", "after clean abort of %v (%v): %v", p.kind, err, cerr)
		}
		r.exec.Write([]byte{0xfd})
		r.stats.Aborts++
		return nil
	}
	return r.fail(i, "op-error", "%v failed with no fault to blame: %v", p.kind, err)
}

// fsck verifies the closed store files are boxfsck-clean.
func (r *runner) fsck(i int) *Failure {
	rep, err := fsck.Check(r.path, fsck.Options{})
	if err != nil {
		return r.fail(i, "fsck", "fsck: %v", err)
	}
	if !rep.Clean() {
		return r.fail(i, "fsck", "fsck unclean: %v", rep.Problems)
	}
	if len(rep.Orphans) != 0 {
		return r.fail(i, "fsck", "fsck found %d orphaned blocks", len(rep.Orphans))
	}
	return nil
}

// restart is the crash-recovery protocol: close (ignoring errors from the
// simulated-dead device), fsck, reopen through WAL redo — possibly with a
// queued crash cutting the redo itself, in which case fsck and reopen
// again — then verify the recovered state sits at an exact op boundary: k
// (in-flight op lost) or k+1 (its commit record was already durable).
// resolve is the in-flight op, nil when the restart is a scheduled barrier
// rather than a mid-op crash.
func (r *runner) restart(i int, resolve *pendingOp) *Failure {
	r.closeStore()
	r.stats.Restarts++
	r.reg.Inc(obs.CtrSimRestarts)
	for attempt := 0; ; attempt++ {
		if attempt > 100 {
			return r.fail(i, "restart-loop", "restart did not converge after %d attempts", attempt)
		}
		if f := r.fsck(i); f != nil {
			return f
		}
		dc := pager.NewDiskController()
		dc.SkipRealSync = true
		if len(r.pendingRedo) > 0 {
			plan := r.pendingRedo[0]
			r.pendingRedo = r.pendingRedo[1:]
			kind := pager.DiskCrash
			if plan.torn {
				kind = pager.DiskTornCrash
			}
			dc.PlanWrite(1+int(plan.delay)%8, kind)
			r.stats.RedoCrashes++
			r.reg.Inc(obs.CtrSimRedoCrashes)
		}
		fb, err := pager.OpenFileOpts(r.path, pager.FileOptions{DiskControl: dc})
		if err != nil {
			if errors.Is(err, pager.ErrCrashed) || dc.Crashed() {
				r.stats.Restarts++
				r.reg.Inc(obs.CtrSimRestarts)
				continue
			}
			return r.fail(i, "reopen", "reopen after crash: %v", err)
		}
		st, err := core.OpenExisting(fb, r.runtimeOpts())
		if err != nil {
			fb.Close()
			if errors.Is(err, pager.ErrCrashed) || dc.Crashed() {
				r.stats.Restarts++
				r.reg.Inc(obs.CtrSimRestarts)
				continue
			}
			return r.fail(i, "reopen", "OpenExisting after crash: %v", err)
		}
		r.fb, r.dc, r.st = fb, dc, st
		break
	}
	if err := r.st.CheckInvariants(); err != nil {
		return r.fail(i, "invariants", "after recovery: %v", err)
	}
	return r.resolveBoundary(i, resolve)
}

// resolveBoundary decides which exact boundary the recovery landed on.
func (r *runner) resolveBoundary(i int, resolve *pendingOp) *Failure {
	errK := r.oracle.CheckAgainst(r.st.Labeler(), r.ordinal())
	if errK == nil {
		// Boundary k: the in-flight op (if any) never became durable.
		if resolve != nil {
			r.stats.OpsLost++
			r.exec.Write([]byte{0xfc, 0})
		}
		return r.sweepLookups(i)
	}
	if resolve == nil {
		return r.fail(i, "recovery-divergence", "recovered state diverged from committed boundary: %v", errK)
	}
	// Boundary k+1: the in-flight op's commit record was durable. Replay
	// it on the shadow to reconstruct the LIDs the lost store returned.
	lids, err := applyOp(r.shadow, resolve)
	if err != nil {
		return r.fail(i, "recovery-divergence",
			"recovered state matches neither k (%v) nor k+1 (shadow replay of %v failed: %v)", errK, resolve.kind, err)
	}
	if f := r.registerOp(i, resolve, lids); f != nil {
		return f
	}
	if err := r.oracle.CheckAgainst(r.st.Labeler(), r.ordinal()); err != nil {
		return r.fail(i, "recovery-divergence",
			"recovered state matches neither k (%v) nor k+1 (%v)", errK, err)
	}
	r.noteExec(resolve, lids)
	r.stats.Ops++
	r.stats.OpsRecovered++
	r.reg.Inc(obs.CtrSimOps)
	r.exec.Write([]byte{0xfc, 1})
	return r.sweepLookups(i)
}

// sweepLookups re-reads every live label through the store's cached
// lookup path (the reflog cache the runtime options enable) and checks
// strict document order — CheckAgainst goes through the labeler directly,
// so this is the only coverage the cache layer gets after recovery.
func (r *runner) sweepLookups(i int) *Failure {
	var prev order.Label
	for j, lid := range r.oracle.LIDs() {
		lab, err := r.st.Lookup(lid)
		if err != nil {
			return r.fail(i, "lookup-error", "cached lookup of %d after recovery: %v", lid, err)
		}
		if j > 0 && lab <= prev {
			return r.fail(i, "order-mismatch", "cached lookups out of order at position %d", j)
		}
		prev = lab
	}
	return nil
}

// fullVerify is the strong check: oracle equality through the labeler,
// the cached-lookup sweep, and structural invariants.
func (r *runner) fullVerify(i int) *Failure {
	if err := r.oracle.CheckAgainst(r.st.Labeler(), r.ordinal()); err != nil {
		return r.fail(i, "oracle-mismatch", "%v", err)
	}
	if f := r.sweepLookups(i); f != nil {
		return f
	}
	if err := r.st.CheckInvariants(); err != nil {
		return r.fail(i, "invariants", "%v", err)
	}
	return nil
}
