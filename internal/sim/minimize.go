package sim

import (
	"boxes/internal/obs"
)

// MinimizeResult is the outcome of shrinking a failing trace.
type MinimizeResult struct {
	Events []Event // the minimized trace (any subsequence of the input)
	Report *Report // the failing run of the minimized trace
	Runs   int     // histories executed while shrinking
}

// DefaultMinimizeBudget caps how many histories Minimize may execute.
const DefaultMinimizeBudget = 400

// Minimize shrinks a failing trace to a near-minimal subsequence that
// still fails, ddmin style: first truncate everything after the event the
// failure surfaced at, then repeatedly try removing chunks of shrinking
// size, restarting whenever a removal succeeds. Operands are positional,
// so every subsequence is a valid trace; any still-failing variant is
// accepted (the minimal history may fail differently than the original).
// budget <= 0 uses DefaultMinimizeBudget.
func Minimize(cfg Config, trace []Event, failure *Failure, budget int) (*MinimizeResult, error) {
	cfg = cfg.withDefaults()
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	res := &MinimizeResult{}
	var lastFail *Report
	run := func(t []Event) (*Report, error) {
		res.Runs++
		reg.Inc(obs.CtrSimMinimizeRuns)
		return RunTrace(cfg, t)
	}

	// Everything after the failing event is noise by construction.
	cur := trace
	if failure != nil && failure.EventIndex+1 < len(cur) {
		cand := cur[:failure.EventIndex+1]
		rep, err := run(cand)
		if err != nil {
			return nil, err
		}
		if rep.Failure != nil {
			cur, lastFail = cand, rep
		}
	}
	if lastFail == nil {
		rep, err := run(cur)
		if err != nil {
			return nil, err
		}
		if rep.Failure == nil {
			// The input does not fail (flaky caller); report it as is.
			res.Events = cur
			res.Report = rep
			return res, nil
		}
		lastFail = rep
	}

	// ddmin over subsequences: remove one of n chunks at a time.
	n := 2
	for len(cur) > 1 && res.Runs < budget {
		chunk := (len(cur) + n - 1) / n
		removedAny := false
		for start := 0; start < len(cur) && res.Runs < budget; start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			rep, err := run(cand)
			if err != nil {
				return nil, err
			}
			if rep.Failure != nil {
				cur, lastFail = cand, rep
				removedAny = true
				break
			}
		}
		if removedAny {
			if n > 2 {
				n--
			}
			continue
		}
		if chunk == 1 {
			break
		}
		n *= 2
		if n > len(cur) {
			n = len(cur)
		}
	}
	res.Events = cur
	res.Report = lastFail
	reg.Add(obs.CtrSimMinimizeEventsIn, uint64(len(trace)))
	reg.Add(obs.CtrSimMinimizeEventsOut, uint64(len(cur)))
	return res, nil
}
